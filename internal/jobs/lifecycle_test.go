package jobs

import (
	"errors"
	"fmt"
	"testing"
)

func testJob(name string) Job {
	return Job{Name: name, Kind: KindTSA, Query: validQuery()}
}

func TestStateMachineShape(t *testing.T) {
	for _, s := range []State{StatePending, StateRunning, StateDone, StateFailed, StateCancelled} {
		if !s.Valid() {
			t.Errorf("%s not Valid", s)
		}
	}
	if State("bogus").Valid() {
		t.Error("bogus state Valid")
	}
	terminal := map[State]bool{StateDone: true, StateFailed: true, StateCancelled: true}
	for s, want := range map[State]bool{
		StatePending: false, StateRunning: false,
		StateDone: true, StateFailed: true, StateCancelled: true,
	} {
		if s.Terminal() != want {
			t.Errorf("%s.Terminal() = %v, want %v", s, s.Terminal(), want)
		}
	}
	// Terminal states are absorbing.
	for from := range terminal {
		for _, to := range []State{StatePending, StateRunning, StateDone, StateFailed, StateCancelled} {
			if CanTransition(from, to) {
				t.Errorf("terminal %s allows transition to %s", from, to)
			}
		}
	}
	if !CanTransition(StatePending, StateRunning) || !CanTransition(StateRunning, StateDone) {
		t.Error("happy path transitions rejected")
	}
	if CanTransition(StatePending, StateDone) {
		t.Error("Pending → Done allowed without running")
	}
}

func TestClaimFIFO(t *testing.T) {
	m := NewManager()
	for _, n := range []string{"c-job", "a-job", "b-job"} {
		if _, err := m.Register(testJob(n)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	for {
		st, ok := m.Claim()
		if !ok {
			break
		}
		if st.State != StateRunning || st.Attempts != 1 {
			t.Errorf("claimed %q in state %s attempts %d", st.Job.Name, st.State, st.Attempts)
		}
		got = append(got, st.Job.Name)
	}
	want := []string{"c-job", "a-job", "b-job"} // submission order, not name order
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("claim order %v, want %v", got, want)
	}
}

func TestCompleteAndCostAccounting(t *testing.T) {
	m := NewManager()
	m.Register(testJob("j"))
	m.Claim()
	if _, err := m.SetProgress("j", 0.5, 1.25); err != nil {
		t.Fatal(err)
	}
	st, _ := m.Status("j")
	if st.Progress != 0.5 || st.Cost != 1.25 {
		t.Errorf("mid-run status = %+v", st)
	}
	if _, err := m.Complete("j", 2.5); err != nil {
		t.Fatal(err)
	}
	st, _ = m.Status("j")
	if st.State != StateDone || st.Progress != 1 || st.Cost != 2.5 {
		t.Errorf("done status = %+v", st)
	}
	// Absorbing: nothing moves a Done job.
	if _, err := m.Cancel("j"); !errors.Is(err, ErrBadTransition) {
		t.Errorf("Cancel(done) err = %v, want ErrBadTransition", err)
	}
	if _, _, err := m.Fail("j", errors.New("x"), 0); !errors.Is(err, ErrBadTransition) {
		t.Errorf("Fail(done) err = %v, want ErrBadTransition", err)
	}
}

func TestRetryBudgetAndCostAccumulation(t *testing.T) {
	m := NewManager()
	m.SetMaxAttempts(3)
	m.Register(testJob("flaky"))
	for attempt := 1; attempt <= 3; attempt++ {
		st, ok := m.Claim()
		if !ok {
			t.Fatalf("attempt %d: nothing to claim", attempt)
		}
		if st.Attempts != attempt {
			t.Errorf("attempt %d recorded as %d", attempt, st.Attempts)
		}
		_, requeued, err := m.Fail("flaky", fmt.Errorf("boom %d", attempt), 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if wantRequeue := attempt < 3; requeued != wantRequeue {
			t.Errorf("attempt %d requeued = %v, want %v", attempt, requeued, wantRequeue)
		}
	}
	st, _ := m.Status("flaky")
	if st.State != StateFailed {
		t.Errorf("state after exhausted retries = %s, want failed", st.State)
	}
	if st.Error != "boom 3" {
		t.Errorf("Error = %q, want last failure", st.Error)
	}
	// Money spent on failed attempts is real: costs accumulate.
	if st.Cost != 3.0 {
		t.Errorf("Cost = %v, want 3.0 across attempts", st.Cost)
	}
	if _, ok := m.Claim(); ok {
		t.Error("failed job still claimable")
	}
}

func TestCancelPendingAndRunning(t *testing.T) {
	m := NewManager()
	m.Register(testJob("p"))
	m.Register(testJob("r"))
	if _, err := m.Cancel("p"); err != nil {
		t.Fatal(err)
	}
	st, _ := m.Status("p")
	if st.State != StateCancelled {
		t.Errorf("pending cancel → %s", st.State)
	}
	claimed, _ := m.Claim()
	if claimed.Job.Name != "r" {
		t.Fatalf("claimed %q, want r (p was cancelled)", claimed.Job.Name)
	}
	if _, err := m.Cancel("r"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Cancel(unknown) err = %v", err)
	}
}

func TestRequeuePreservesAttempts(t *testing.T) {
	m := NewManager()
	m.Register(testJob("j"))
	m.Claim()
	if _, err := m.Requeue("j"); err != nil {
		t.Fatal(err)
	}
	st, _ := m.Status("j")
	if st.State != StatePending || st.Attempts != 1 {
		t.Errorf("after requeue: %+v", st)
	}
	st2, ok := m.Claim()
	if !ok || st2.Attempts != 2 {
		t.Errorf("reclaim attempts = %d, want 2", st2.Attempts)
	}
	// Requeue of a non-running job is illegal.
	if _, err := m.Complete("j", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Requeue("j"); !errors.Is(err, ErrBadTransition) {
		t.Errorf("Requeue of done job: err = %v, want ErrBadTransition", err)
	}
}

func TestUnclaimRevertsAttempt(t *testing.T) {
	m := NewManager()
	m.Register(testJob("j"))
	st, _ := m.Claim()
	if st.Attempts != 1 {
		t.Fatalf("claim attempts = %d", st.Attempts)
	}
	m.unclaim("j")
	got, _ := m.Status("j")
	if got.State != StatePending || got.Attempts != 0 {
		t.Errorf("after unclaim: %+v, want pending with 0 attempts", got)
	}
	// unclaim is a no-op on anything but a Running job.
	m.unclaim("j")
	got, _ = m.Status("j")
	if got.Attempts != 0 {
		t.Errorf("unclaim on pending mutated attempts: %+v", got)
	}
}

func TestProgressClampsAndRejectsNonRunning(t *testing.T) {
	m := NewManager()
	m.Register(testJob("j"))
	if _, err := m.SetProgress("j", 0.5, 0); !errors.Is(err, ErrBadTransition) {
		t.Errorf("progress on pending job: err = %v", err)
	}
	m.Claim()
	m.SetProgress("j", 2.5, 0)
	st, _ := m.Status("j")
	if st.Progress != 1 {
		t.Errorf("progress not clamped: %v", st.Progress)
	}
	m.SetProgress("j", -3, 0)
	st, _ = m.Status("j")
	if st.Progress != 0 {
		t.Errorf("negative progress not clamped: %v", st.Progress)
	}
}
