// Package client is the Go SDK for the CDAS v1 API. It speaks the
// typed wire contract of cdas/api: every method returns the contract's
// DTOs, every non-2xx response decodes into a *api.Error the caller
// can errors.As on, job listings auto-paginate through an iterator, and
// WatchQuery turns the server's SSE stream into a channel of query
// states.
//
//	c := client.New("http://localhost:8080")
//	st, err := c.SubmitJob(ctx, api.JobSubmission{...})
//	for ev := range watch { ... }
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"iter"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"cdas/api"
)

// Client calls the CDAS v1 API. The zero value is not usable; construct
// with New. Safe for concurrent use.
type Client struct {
	baseURL string
	hc      *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles). The default is http.DefaultClient.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a Client for the server at baseURL (scheme://host[:port],
// with or without a trailing slash).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{baseURL: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do runs one JSON round-trip: method path, optional in body, decoded
// into out when non-nil. Non-2xx responses return the decoded
// *api.Error envelope (or a synthesized one when the body isn't the
// envelope, e.g. a proxy error page).
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, body)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("Accept", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// decodeError turns a non-2xx response into a *api.Error.
func decodeError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var envelope api.ErrorResponse
	if err := json.Unmarshal(b, &envelope); err == nil && envelope.Error != nil && envelope.Error.Code != "" {
		if envelope.Error.Status == 0 {
			envelope.Error.Status = resp.StatusCode
		}
		return envelope.Error
	}
	return &api.Error{
		Code:    "http_" + strconv.Itoa(resp.StatusCode),
		Status:  resp.StatusCode,
		Message: http.StatusText(resp.StatusCode),
		Detail:  strings.TrimSpace(string(b)),
	}
}

// jobPath escapes a job name into its /v1/jobs/{name} path.
func jobPath(name string) string { return "/v1/jobs/" + url.PathEscape(name) }

// SubmitJob registers a new analytics job and returns its initial
// status.
func (c *Client) SubmitJob(ctx context.Context, sub api.JobSubmission) (api.JobStatus, error) {
	var st api.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", sub, &st)
	return st, err
}

// Job fetches one job's lifecycle record and live results.
func (c *Client) Job(ctx context.Context, name string) (api.JobStatus, error) {
	var st api.JobStatus
	err := c.do(ctx, http.MethodGet, jobPath(name), nil, &st)
	return st, err
}

// CancelJob cancels a pending, parked or running job and returns its
// final record.
func (c *Client) CancelJob(ctx context.Context, name string) (api.JobStatus, error) {
	var st api.JobStatus
	err := c.do(ctx, http.MethodDelete, jobPath(name), nil, &st)
	return st, err
}

// UnparkJob resumes a budget-parked job.
func (c *Client) UnparkJob(ctx context.Context, name string) (api.JobStatus, error) {
	var st api.JobStatus
	err := c.do(ctx, http.MethodPost, jobPath(name)+":unpark", nil, &st)
	return st, err
}

// ListJobsOptions filters and paginates ListJobs.
type ListJobsOptions struct {
	// Limit bounds the page size (server default and cap apply).
	Limit int
	// PageToken resumes after a previous page's NextPageToken.
	PageToken string
	// State keeps only jobs in the given lifecycle state.
	State api.JobState
	// Kind keeps only jobs of the given kind (api.KindBatch matches
	// every one-shot kind; api.KindContinuous and api.KindEnumeration
	// match exactly). Ignored by ListEnumerations, whose surface is
	// enumeration-only already.
	Kind string
}

func (o ListJobsOptions) query() string {
	q := url.Values{}
	if o.Limit > 0 {
		q.Set("limit", strconv.Itoa(o.Limit))
	}
	if o.PageToken != "" {
		q.Set("page_token", o.PageToken)
	}
	if o.State != "" {
		q.Set("state", string(o.State))
	}
	if o.Kind != "" {
		q.Set("kind", o.Kind)
	}
	if len(q) == 0 {
		return ""
	}
	return "?" + q.Encode()
}

// ListJobs fetches one page of the job list.
func (c *Client) ListJobs(ctx context.Context, opts ListJobsOptions) (api.JobList, error) {
	var page api.JobList
	err := c.do(ctx, http.MethodGet, "/v1/jobs"+opts.query(), nil, &page)
	return page, err
}

// Jobs iterates every job matching opts, fetching pages as needed —
// range over it and stop early whenever you like:
//
//	for st, err := range c.Jobs(ctx, client.ListJobsOptions{}) {
//		if err != nil { ... }
//	}
//
// A transport or server error is yielded once as the final element.
func (c *Client) Jobs(ctx context.Context, opts ListJobsOptions) iter.Seq2[api.JobStatus, error] {
	return func(yield func(api.JobStatus, error) bool) {
		for {
			page, err := c.ListJobs(ctx, opts)
			if err != nil {
				yield(api.JobStatus{}, err)
				return
			}
			for _, st := range page.Jobs {
				if !yield(st, nil) {
					return
				}
			}
			if page.NextPageToken == "" {
				return
			}
			opts.PageToken = page.NextPageToken
		}
	}
}

// Queries lists every live query state.
func (c *Client) Queries(ctx context.Context) ([]api.QueryState, error) {
	var list api.QueryList
	err := c.do(ctx, http.MethodGet, "/v1/queries", nil, &list)
	return list.Queries, err
}

// Query fetches one query's live state.
func (c *Client) Query(ctx context.Context, name string) (api.QueryState, error) {
	var st api.QueryState
	err := c.do(ctx, http.MethodGet, "/v1/queries/"+url.PathEscape(name), nil, &st)
	return st, err
}

// Aggregators lists the registered answer-aggregation methods — the
// names a JobSubmission.Aggregator may pick — plus the default.
func (c *Client) Aggregators(ctx context.Context) (api.AggregatorList, error) {
	var list api.AggregatorList
	err := c.do(ctx, http.MethodGet, "/v1/aggregators", nil, &list)
	return list, err
}

// SchedulerState reports the cross-query scheduler's batching, cache
// and budget state.
func (c *Client) SchedulerState(ctx context.Context) (api.SchedulerState, error) {
	var st api.SchedulerState
	err := c.do(ctx, http.MethodGet, "/v1/scheduler", nil, &st)
	return st, err
}

// Metrics fetches the operational counters.
func (c *Client) Metrics(ctx context.Context) (api.Metrics, error) {
	var m api.Metrics
	err := c.do(ctx, http.MethodGet, "/v1/metrics", nil, &m)
	return m, err
}

// Health probes liveness.
func (c *Client) Health(ctx context.Context) (api.Health, error) {
	var h api.Health
	err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &h)
	return h, err
}
