package tsa

import (
	"testing"
	"time"

	"cdas/internal/crowd"
	"cdas/internal/engine"
	"cdas/internal/textgen"
)

var queryStart = time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)

func testEngine(t *testing.T, seed uint64) *engine.Engine {
	t.Helper()
	cfg := crowd.DefaultConfig(seed)
	cfg.Workers = 200
	p, err := crowd.NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(engine.CrowdPlatform{Platform: p}, nil, engine.Config{
		JobName:          "tsa",
		RequiredAccuracy: 0.9,
		SamplingRate:     0.2,
		HITSize:          50,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func testStream(t *testing.T, seed uint64, movies []string, perMovie int) []textgen.Tweet {
	t.Helper()
	tweets, err := textgen.Generate(textgen.Config{Seed: seed, Movies: movies, TweetsPerMovie: perMovie})
	if err != nil {
		t.Fatal(err)
	}
	return tweets
}

func TestQueryConstruction(t *testing.T) {
	q := Query("Thor", 0.95, queryStart, 24*time.Hour)
	if err := q.Validate(); err != nil {
		t.Fatalf("query invalid: %v", err)
	}
	if len(q.Domain) != 3 || q.Domain[0] != textgen.LabelPositive {
		t.Errorf("domain = %v", q.Domain)
	}
}

func TestFilterTweetsSelectsMovie(t *testing.T) {
	stream := testStream(t, 1, []string{"Thor", "Roommate"}, 50)
	q := Query("Thor", 0.9, queryStart, 24*time.Hour)
	got := FilterTweets(stream, q)
	if len(got) == 0 {
		t.Fatal("no tweets matched")
	}
	for _, tw := range got {
		if tw.Movie != "Thor" {
			t.Fatalf("foreign tweet matched: %+v", tw)
		}
	}
}

func TestGoldenQuestionsPrefixed(t *testing.T) {
	stream := testStream(t, 2, []string{"Thor"}, 5)
	for _, q := range GoldenQuestions(stream) {
		if q.ID[:7] != "golden/" {
			t.Errorf("golden id %q not prefixed", q.ID)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	eng := testEngine(t, 3)
	stream := testStream(t, 4, []string{"Thor", "Roommate"}, 60)
	golden := testStream(t, 5, []string{"Social Network"}, 40)
	q := Query("Thor", 0.9, queryStart, 24*time.Hour)
	res, err := Run(eng, q, stream, golden)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tweets == 0 {
		t.Fatal("no tweets processed")
	}
	if res.Accuracy < 0.8 {
		t.Errorf("TSA accuracy %v below expectation for C=0.9", res.Accuracy)
	}
	total := 0.0
	for _, l := range textgen.Labels {
		total += res.Summary.Percentages[l]
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("percentages sum to %v", total)
	}
	if len(res.Summary.Reasons) == 0 {
		t.Error("no reasons extracted")
	}
	if len(res.Batches) == 0 {
		t.Error("no batch results recorded")
	}
}

func TestRunValidation(t *testing.T) {
	eng := testEngine(t, 6)
	stream := testStream(t, 7, []string{"Thor"}, 10)
	q := Query("Thor", 0.9, queryStart, 24*time.Hour)
	if _, err := Run(nil, q, stream, stream); err == nil {
		t.Error("nil engine accepted")
	}
	badQ := q
	badQ.Keywords = nil
	if _, err := Run(eng, badQ, stream, stream); err == nil {
		t.Error("invalid query accepted")
	}
	noMatch := Query("Nonexistent Movie XYZ", 0.9, queryStart, 24*time.Hour)
	if _, err := Run(eng, noMatch, stream, stream); err == nil {
		t.Error("zero-match query should error")
	}
}

func TestSplitByMovie(t *testing.T) {
	stream := testStream(t, 8, []string{"Thor", "Roommate", "District 9"}, 10)
	test, train := SplitByMovie(stream, []string{"Thor"})
	if len(test) != 10 || len(train) != 20 {
		t.Fatalf("split sizes: test=%d train=%d", len(test), len(train))
	}
	for _, tw := range test {
		if tw.Movie != "Thor" {
			t.Fatal("test split contaminated")
		}
	}
}

func TestCorpus(t *testing.T) {
	stream := testStream(t, 9, []string{"Thor"}, 5)
	docs, labels := Corpus(stream)
	if len(docs) != 5 || len(labels) != 5 {
		t.Fatalf("corpus sizes: %d/%d", len(docs), len(labels))
	}
	for i := range docs {
		if docs[i] != stream[i].Text || labels[i] != stream[i].Truth {
			t.Fatal("corpus misaligned")
		}
	}
}

func TestValidateDomain(t *testing.T) {
	if err := ValidateDomain(textgen.Labels); err != nil {
		t.Fatalf("default labels rejected: %v", err)
	}
	if err := ValidateDomain(append(append([]string(nil), textgen.Labels...), "Abstain01")); err != nil {
		t.Fatalf("superset rejected: %v", err)
	}
	if err := ValidateDomain([]string{"good", "bad"}); err == nil {
		t.Fatal("domain without the sentiment labels accepted")
	}
}
