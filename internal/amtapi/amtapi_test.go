package amtapi

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cdas/internal/crowd"
	"cdas/internal/engine"
)

func newRig(t *testing.T, seed uint64) (*Client, *crowd.Platform) {
	t.Helper()
	cfg := crowd.DefaultConfig(seed)
	cfg.Workers = 120
	platform, err := crowd.NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(platform).Handler())
	t.Cleanup(srv.Close)
	return NewClient(srv.URL, srv.Client()), platform
}

func sampleQuestions(n int) []crowd.Question {
	qs := make([]crowd.Question, n)
	for i := range qs {
		qs[i] = crowd.Question{
			ID:     "q" + string(rune('a'+i)),
			Text:   "pick",
			Domain: []string{"yes", "no"},
			Truth:  "yes",
		}
	}
	return qs
}

func TestPublishAndStream(t *testing.T) {
	client, _ := newRig(t, 1)
	run, err := client.Publish(crowd.HIT{Title: "t", Questions: sampleQuestions(3)}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if run.HIT().ID == "" {
		t.Fatal("no HIT ID assigned")
	}
	seen := map[string]bool{}
	count := 0
	prev := -1.0
	for {
		a, ok := run.Next()
		if !ok {
			break
		}
		count++
		if seen[a.Worker.ID] {
			t.Fatalf("worker %s delivered twice", a.Worker.ID)
		}
		seen[a.Worker.ID] = true
		if a.SubmitTime < prev {
			t.Fatal("assignments out of submit-time order")
		}
		prev = a.SubmitTime
		if got := a.AnswerTo("qa"); got != "yes" && got != "no" {
			t.Fatalf("answer %q outside domain", got)
		}
	}
	if count != 7 {
		t.Errorf("delivered %d assignments, want 7", count)
	}
	// Exhausted runs keep reporting done.
	if _, ok := run.Next(); ok {
		t.Error("Next after exhaustion should be done")
	}
}

func TestChargingOverTheWire(t *testing.T) {
	client, platform := newRig(t, 2)
	run, err := client.Publish(crowd.HIT{Questions: sampleQuestions(1)}, 5)
	if err != nil {
		t.Fatal(err)
	}
	run.Next()
	run.Next()
	fee := platform.Config().Economics.PerAssignment()
	if got, want := run.Charged(), 2*fee; got != want {
		t.Errorf("Charged = %v, want %v", got, want)
	}
	run.Cancel()
	st, err := client.Status(run.HIT().ID)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cancelled || st.Outstanding != 0 || st.Delivered != 2 {
		t.Errorf("status after cancel = %+v", st)
	}
	if _, ok := run.Next(); ok {
		t.Error("Next after Cancel should be done")
	}
}

func TestWorkerAccuracyDoesNotCrossTheWire(t *testing.T) {
	client, _ := newRig(t, 3)
	run, err := client.Publish(crowd.HIT{Questions: sampleQuestions(1)}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for {
		a, ok := run.Next()
		if !ok {
			break
		}
		if a.Worker.Accuracy != 0 {
			t.Fatal("true worker accuracy leaked over the API")
		}
		if a.Worker.ApprovalRate == 0 {
			t.Error("approval rate should be visible (it is public on AMT)")
		}
	}
}

func TestServerErrors(t *testing.T) {
	client, _ := newRig(t, 4)
	// Too many assignments for the population.
	if _, err := client.Publish(crowd.HIT{Questions: sampleQuestions(1)}, 10000); err == nil {
		t.Error("oversubscribed HIT accepted")
	}
	// Unknown HIT.
	if _, err := client.Status("nope"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown HIT status err = %v", err)
	}
	// Malformed create body.
	srvURL := client.base
	resp, err := http.Post(srvURL+"/v1/hits", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status = %d", resp.StatusCode)
	}
}

func TestEngineOverHTTP(t *testing.T) {
	// The headline integration: the full CDAS engine driving the crowd
	// through the REST protocol, including golden-question sampling and
	// early termination (which exercises DELETE).
	client, platform := newRig(t, 5)
	eng, err := engine.New(client, nil, engine.Config{
		JobName:          "http-tsa",
		RequiredAccuracy: 0.9,
		SamplingRate:     0.2,
		HITSize:          20,
	})
	if err != nil {
		t.Fatal(err)
	}
	real := make([]crowd.Question, 8)
	for i := range real {
		real[i] = crowd.Question{
			ID:     "r" + string(rune('a'+i)),
			Domain: []string{"pos", "neu", "neg"},
			Truth:  "pos",
		}
	}
	golden := make([]crowd.Question, 10)
	for i := range golden {
		golden[i] = crowd.Question{
			ID:     "g" + string(rune('a'+i)),
			Domain: []string{"pos", "neu", "neg"},
			Truth:  []string{"pos", "neu", "neg"}[i%3],
		}
	}
	res, err := eng.ProcessBatch(real, golden)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 8 {
		t.Fatalf("results = %d, want 8", len(res.Results))
	}
	correct := 0
	for _, qr := range res.Results {
		if qr.Answer == qr.Question.Truth {
			correct++
		}
	}
	// With C=0.9 and 8 questions the expected miss count is ~1; allow 2
	// (the assertion is wiring, not model quality — Figure 8 covers that).
	if correct < 6 {
		t.Errorf("engine-over-HTTP accuracy %d/8, want >= 6", correct)
	}
	if res.Cost <= 0 {
		t.Error("cost did not propagate over the wire")
	}
	if platform.TotalSpent() <= 0 {
		t.Error("server-side accounting missing")
	}
}

func TestClientBaseURLNormalisation(t *testing.T) {
	c := NewClient("http://example.test///", nil)
	if !strings.HasSuffix(c.base, "example.test") {
		t.Errorf("base not normalised: %q", c.base)
	}
	if c.http == nil {
		t.Error("nil http client not defaulted")
	}
}
