// The LSM engine: a durable key/value store with bounded-time recovery,
// built for the job service's "millions of jobs" regime where the
// append-only Log's replay-the-world recovery becomes a boot-time and
// memory cliff.
//
// Shape (classic log-structured merge tree, one level):
//
//   - Writes are framed into a WAL (fsynced batch-atomically), then
//     applied to the memtable. A batch's ops commit together or not at
//     all: the batch is one CRC-framed WAL record.
//   - When the memtable outgrows its budget (or on an explicit
//     Checkpoint) it is flushed into an immutable sorted run — CRC-framed
//     blocks, a block index and a Bloom filter (run.go) — installed by
//     atomic rename, after which a new MANIFEST records the live run set
//     and the WAL sequence watermark the runs cover, and the WAL is
//     truncated.
//   - Compaction merges the run stack into one run (dropping tombstones)
//     once it grows past MaxRuns, synchronously by default or in the
//     background when BackgroundCompaction is set.
//   - Open reads the MANIFEST, opens each run's footer/index/bloom
//     (O(runs), not O(records)), deletes orphan files from interrupted
//     installs, and replays only the WAL tail past the manifest
//     watermark — checkpoint + tail, never seq-zero replay.
//
// Every fsync and rename on this path is guarded by a named failpoint
// (failpoint.go); the crash-equivalence tests drive op sequences with a
// crash injected at each one and assert recovery always matches a
// reference model.
package jobstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
)

// LSM file names. They are disjoint from the Log's (wal.dat,
// snapshot.dat), so pointing one engine at the other's directory finds
// an empty store instead of corrupting it.
const (
	lsmWALName      = "lsm.wal"
	manifestName    = "MANIFEST"
	manifestTmpName = "MANIFEST.tmp"
	runTmpName      = "run.tmp"
)

func runFileName(id uint64) string { return fmt.Sprintf("run-%08d.run", id) }

// Op is one mutation in an atomic batch: a put, or a delete when
// Delete is set.
type Op struct {
	Key    string
	Value  []byte
	Delete bool
}

// LSMConfig tunes OpenLSM. Only Dir is required.
type LSMConfig struct {
	// Dir roots the store's files.
	Dir string
	// MemtableBytes is the flush threshold (default 4 MiB).
	MemtableBytes int
	// MaxRuns triggers compaction when the run stack grows past it
	// (default 4; minimum 1).
	MaxRuns int
	// BlockSize is the sorted-run block payload target (default 4 KiB).
	BlockSize int
	// NoSync skips fsyncs — bulk loading and benchmarks only; a crash
	// can lose acknowledged writes.
	NoSync bool
	// BackgroundCompaction runs compaction in a goroutine instead of
	// synchronously inside the triggering checkpoint.
	BackgroundCompaction bool
	// Fail is the failpoint hook (tests only; see failpoint.go).
	Fail FailFunc
}

// BootStats describes what recovery did — the observable difference
// between checkpoint+tail boot and replay-the-world.
type BootStats struct {
	// Runs is the number of sorted runs opened from the manifest.
	Runs int
	// RunRecords is the total record count the runs hold (from their
	// footers; the records themselves are not read at boot).
	RunRecords int
	// TailRecords is the number of WAL frames replayed past the
	// manifest watermark — the only part of boot proportional to
	// un-checkpointed writes.
	TailRecords int
	// TailTruncated reports a torn WAL tail was cut off.
	TailTruncated bool
}

// lsmManifest is the durable run-set record.
type lsmManifest struct {
	// Runs lists live run IDs, oldest first.
	Runs []uint64 `json:"runs"`
	// WalSeq is the watermark: WAL frames at or below it are covered by
	// the runs and skipped on replay.
	WalSeq uint64 `json:"wal_seq"`
	// NextRun is the next run ID to allocate.
	NextRun uint64 `json:"next_run"`
}

// LSM is the engine handle. It is safe for concurrent use.
type LSM struct {
	mu  sync.Mutex
	cfg LSMConfig
	dir string

	wal      *os.File
	walSeq   uint64
	manifest lsmManifest
	runs     []*runReader // parallel to manifest.Runs (oldest first)
	mem      *memtable

	boot       BootStats
	compacting bool
	closed     bool
}

// OpenLSM opens (creating if needed) the store at cfg.Dir and recovers
// it: manifest, run skeletons, orphan cleanup, WAL tail replay.
func OpenLSM(cfg LSMConfig) (*LSM, error) {
	if cfg.Dir == "" {
		return nil, errors.New("jobstore: dir is required")
	}
	if cfg.MemtableBytes <= 0 {
		cfg.MemtableBytes = 4 << 20
	}
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = 4
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = defaultBlockSize
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	l := &LSM{cfg: cfg, dir: cfg.Dir, mem: newMemtable()}
	if err := l.recover(); err != nil {
		if l.wal != nil {
			l.wal.Close()
		}
		for _, r := range l.runs {
			r.close()
		}
		return nil, err
	}
	return l, nil
}

// recover loads the manifest and runs, removes orphans and replays the
// WAL tail.
func (l *LSM) recover() error {
	// Lock first: the WAL file doubles as the single-writer flock, like
	// the Log's.
	wal, err := os.OpenFile(filepath.Join(l.dir, lsmWALName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := syscall.Flock(int(wal.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		wal.Close()
		return fmt.Errorf("%w (%s): %v", ErrLocked, filepath.Join(l.dir, lsmWALName), err)
	}
	l.wal = wal

	if err := l.loadManifest(); err != nil {
		return err
	}
	if l.manifest.NextRun == 0 {
		// Run IDs start at 1: installManifest uses 0 as "no new run".
		l.manifest.NextRun = 1
	}
	live := make(map[string]bool, len(l.manifest.Runs)+2)
	for _, id := range l.manifest.Runs {
		live[runFileName(id)] = true
	}
	for _, id := range l.manifest.Runs {
		r, err := openRun(filepath.Join(l.dir, runFileName(id)))
		if err != nil {
			return err
		}
		l.runs = append(l.runs, r)
		l.boot.RunRecords += r.count
	}
	l.boot.Runs = len(l.runs)
	// Orphans: run files an interrupted install left behind (present on
	// disk, absent from the manifest) and temp files. Removing them is
	// safe — the manifest is the commit point.
	names, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	for _, de := range names {
		name := de.Name()
		orphanRun := strings.HasPrefix(name, "run-") && strings.HasSuffix(name, ".run") && !live[name]
		if orphanRun || name == runTmpName || name == manifestTmpName {
			os.Remove(filepath.Join(l.dir, name))
		}
	}
	return l.replayTail()
}

// loadManifest reads the MANIFEST, tolerating absence (empty store).
func (l *LSM) loadManifest() error {
	data, err := os.ReadFile(filepath.Join(l.dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	_, payload, size, ok := parseFrame(data)
	if !ok || size != len(data) {
		return fmt.Errorf("%w: manifest failed validation (%s)", ErrCorruptRun, filepath.Join(l.dir, manifestName))
	}
	if err := json.Unmarshal(payload, &l.manifest); err != nil {
		return fmt.Errorf("jobstore: decoding manifest: %w", err)
	}
	l.walSeq = l.manifest.WalSeq
	return nil
}

// replayTail scans the WAL, applying batches past the manifest
// watermark to the memtable and truncating any torn tail.
func (l *LSM) replayTail() error {
	data, err := io.ReadAll(l.wal)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	offset := 0
	for offset < len(data) {
		seq, payload, size, ok := parseFrame(data[offset:])
		if !ok {
			break
		}
		if seq > l.manifest.WalSeq {
			ops, err := decodeEntries(payload)
			if err != nil {
				// A CRC-valid frame with undecodable ops is corruption,
				// not a torn tail.
				return fmt.Errorf("jobstore: WAL record %d: %w", seq, err)
			}
			for _, e := range ops {
				l.mem.apply(e)
			}
			l.boot.TailRecords++
		}
		if seq > l.walSeq {
			l.walSeq = seq
		}
		offset += size
	}
	if offset < len(data) {
		l.boot.TailTruncated = true
		if err := l.wal.Truncate(int64(offset)); err != nil {
			return fmt.Errorf("jobstore: tail truncate: %w", err)
		}
	}
	if _, err := l.wal.Seek(int64(offset), io.SeekStart); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	return nil
}

// BootStats reports what recovery did at Open.
func (l *LSM) BootStats() BootStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.boot
}

// Runs reports the current run count (tests and compaction policy
// introspection).
func (l *LSM) Runs() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.runs)
}

// Put commits a single-key write.
func (l *LSM) Put(key string, value []byte) error {
	return l.Apply([]Op{{Key: key, Value: value}})
}

// Delete commits a single-key delete (a tombstone shadowing any older
// run's value).
func (l *LSM) Delete(key string) error {
	return l.Apply([]Op{{Key: key, Delete: true}})
}

// Apply commits a batch atomically: one CRC-framed WAL record holds
// every op, so recovery sees all of them or none. When Apply returns
// nil the batch is durable (unless NoSync). An error after the WAL
// fsync (from checkpoint housekeeping) still means the batch itself
// committed; callers that need to distinguish should reopen and read.
func (l *LSM) Apply(batch []Op) error {
	if len(batch) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("jobstore: store is closed")
	}
	var payload []byte
	for _, op := range batch {
		if op.Key == "" {
			return errors.New("jobstore: empty key")
		}
		payload = appendEntry(payload, kvEntry{key: op.Key, val: op.Value, del: op.Delete})
	}
	if len(payload) > maxRecordSize {
		return fmt.Errorf("jobstore: batch of %d bytes exceeds the %d byte cap", len(payload), maxRecordSize)
	}
	seq := l.walSeq + 1
	if err := tornWrite(l.wal, frame(seq, payload), FailWALWrite, l.cfg.Fail); err != nil {
		return err
	}
	if err := l.syncWAL(); err != nil {
		return err
	}
	l.walSeq = seq
	for _, op := range batch {
		l.mem.apply(kvEntry{key: op.Key, val: op.Value, del: op.Delete})
	}
	if l.mem.bytes >= l.cfg.MemtableBytes {
		return l.checkpointLocked()
	}
	return nil
}

func (l *LSM) syncWAL() error {
	if err := l.cfg.Fail.fail(FailWALSync); err != nil {
		return err
	}
	if l.cfg.NoSync {
		return nil
	}
	if err := l.wal.Sync(); err != nil {
		return fmt.Errorf("jobstore: wal fsync: %w", err)
	}
	return nil
}

// Get returns the newest value for key: memtable first, then runs from
// newest to oldest, with each run's Bloom filter short-circuiting
// definite misses.
func (l *LSM) Get(key string) ([]byte, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e, ok := l.mem.get(key); ok {
		if e.del {
			return nil, false, nil
		}
		return append([]byte(nil), e.val...), true, nil
	}
	for i := len(l.runs) - 1; i >= 0; i-- {
		e, ok, err := l.runs[i].get(key)
		if err != nil {
			return nil, false, err
		}
		if ok {
			if e.del {
				return nil, false, nil
			}
			return append([]byte(nil), e.val...), true, nil
		}
	}
	return nil, false, nil
}

// Scan streams live entries with lo <= key < hi (hi == "" means no
// upper bound) in ascending key order, merging the memtable and every
// run with newest-wins shadowing; tombstoned keys are skipped. fn
// returning false stops the scan. fn must not call back into the
// store.
func (l *LSM) Scan(lo, hi string, fn func(key string, value []byte) bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.scanLocked(lo, hi, fn)
}

func (l *LSM) scanLocked(lo, hi string, fn func(key string, value []byte) bool) error {
	// Sources in priority order: memtable shadows runs, newer runs
	// shadow older ones.
	type source struct {
		entries []kvEntry // memtable source
		pos     int
		it      *runIterator // run source
		cur     kvEntry
		ok      bool
	}
	var sources []*source
	mem := &source{}
	for _, e := range l.mem.sorted() {
		if e.key >= lo {
			mem.entries = append(mem.entries, e)
		}
	}
	mem.ok = len(mem.entries) > 0
	if mem.ok {
		mem.cur = mem.entries[0]
		mem.pos = 1
	}
	sources = append(sources, mem)
	for i := len(l.runs) - 1; i >= 0; i-- {
		it := l.runs[i].iterator(lo)
		s := &source{it: it}
		s.cur, s.ok = it.next()
		if it.err != nil {
			return it.err
		}
		sources = append(sources, s)
	}
	advance := func(s *source) error {
		if s.it == nil {
			if s.pos < len(s.entries) {
				s.cur = s.entries[s.pos]
				s.pos++
			} else {
				s.ok = false
			}
			return nil
		}
		s.cur, s.ok = s.it.next()
		return s.it.err
	}
	for {
		// Minimum key among live sources.
		minKey := ""
		found := false
		for _, s := range sources {
			if s.ok && (!found || s.cur.key < minKey) {
				minKey = s.cur.key
				found = true
			}
		}
		if !found || (hi != "" && minKey >= hi) {
			return nil
		}
		// Highest-priority source holding minKey wins; every source at
		// minKey advances.
		var winner kvEntry
		taken := false
		for _, s := range sources {
			if s.ok && s.cur.key == minKey {
				if !taken {
					winner = s.cur
					taken = true
				}
				if err := advance(s); err != nil {
					return err
				}
			}
		}
		if !winner.del {
			if !fn(winner.key, append([]byte(nil), winner.val...)) {
				return nil
			}
		}
	}
}

// Checkpoint flushes the memtable into a new sorted run, installs a
// manifest covering every committed write, and truncates the WAL —
// after which recovery boots from the run stack plus an empty tail.
// Compaction runs when the stack is past MaxRuns.
func (l *LSM) Checkpoint() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("jobstore: store is closed")
	}
	return l.checkpointLocked()
}

func (l *LSM) checkpointLocked() error {
	if l.mem.len() > 0 {
		id := l.manifest.NextRun
		if err := l.writeRunFile(id, l.mem.sorted()); err != nil {
			return err
		}
		next := lsmManifest{
			Runs:    append(append([]uint64(nil), l.manifest.Runs...), id),
			WalSeq:  l.walSeq,
			NextRun: id + 1,
		}
		r, err := l.installManifest(next, id)
		if err != nil {
			return err
		}
		l.runs = append(l.runs, r)
		l.manifest = next
		l.mem.reset()
		if err := l.truncateWAL(); err != nil {
			return err
		}
	}
	if len(l.runs) > l.cfg.MaxRuns {
		if l.cfg.BackgroundCompaction {
			l.kickCompaction()
			return nil
		}
		return l.compactLocked()
	}
	return nil
}

// writeRunFile writes entries into run-<id>.run via the temp file +
// fsync + rename + dirsync protocol, every step failpoint-guarded.
func (l *LSM) writeRunFile(id uint64, entries []kvEntry) error {
	tmp := filepath.Join(l.dir, runTmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("jobstore: run: %w", err)
	}
	if _, err := writeRun(f, entries, l.cfg.BlockSize, l.cfg.Fail); err != nil {
		f.Close()
		return err
	}
	if err := l.cfg.Fail.fail(FailRunSync); err != nil {
		f.Close()
		return err
	}
	if !l.cfg.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("jobstore: run fsync: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("jobstore: run: %w", err)
	}
	if err := l.cfg.Fail.fail(FailRunRename); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, runFileName(id))); err != nil {
		return fmt.Errorf("jobstore: run install: %w", err)
	}
	return l.syncDirFP()
}

// installManifest durably replaces the MANIFEST and opens the freshly
// installed run newID (when nonzero it must be in next.Runs).
func (l *LSM) installManifest(next lsmManifest, newID uint64) (*runReader, error) {
	payload, err := json.Marshal(next)
	if err != nil {
		return nil, fmt.Errorf("jobstore: encoding manifest: %w", err)
	}
	tmp := filepath.Join(l.dir, manifestTmpName)
	if err := l.cfg.Fail.fail(FailManifestWrite); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobstore: manifest: %w", err)
	}
	if _, err := f.Write(frame(next.WalSeq, payload)); err != nil {
		f.Close()
		return nil, fmt.Errorf("jobstore: manifest: %w", err)
	}
	if err := l.cfg.Fail.fail(FailManifestSync); err != nil {
		f.Close()
		return nil, err
	}
	if !l.cfg.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("jobstore: manifest fsync: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("jobstore: manifest: %w", err)
	}
	// The new run must be readable before the manifest points at it: a
	// failed open here aborts the install with the old manifest intact.
	var r *runReader
	if newID != 0 {
		r, err = openRun(filepath.Join(l.dir, runFileName(newID)))
		if err != nil {
			return nil, err
		}
	}
	if err := l.cfg.Fail.fail(FailManifestRename); err != nil {
		if r != nil {
			r.close()
		}
		return nil, err
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, manifestName)); err != nil {
		if r != nil {
			r.close()
		}
		return nil, fmt.Errorf("jobstore: manifest install: %w", err)
	}
	if err := l.syncDirFP(); err != nil {
		if r != nil {
			r.close()
		}
		return nil, err
	}
	return r, nil
}

func (l *LSM) truncateWAL() error {
	if err := l.cfg.Fail.fail(FailWALTruncate); err != nil {
		return err
	}
	if err := l.wal.Truncate(0); err != nil {
		return fmt.Errorf("jobstore: wal truncate: %w", err)
	}
	if _, err := l.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("jobstore: wal seek: %w", err)
	}
	if !l.cfg.NoSync {
		if err := l.wal.Sync(); err != nil {
			return fmt.Errorf("jobstore: wal fsync: %w", err)
		}
	}
	return nil
}

func (l *LSM) syncDirFP() error {
	if err := l.cfg.Fail.fail(FailDirSync); err != nil {
		return err
	}
	if l.cfg.NoSync {
		return nil
	}
	return syncDir(l.dir)
}

// kickCompaction starts one background compaction if none is running.
// The caller holds l.mu.
func (l *LSM) kickCompaction() {
	if l.compacting {
		return
	}
	l.compacting = true
	go func() {
		defer func() {
			l.mu.Lock()
			l.compacting = false
			l.mu.Unlock()
		}()
		l.Compact()
	}()
}

// Compact merges the whole run stack into a single run, dropping
// tombstones (the output is the bottom level), and installs a manifest
// pointing at it. The memtable and WAL are untouched: the watermark
// does not move.
func (l *LSM) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("jobstore: store is closed")
	}
	return l.compactLocked()
}

func (l *LSM) compactLocked() error {
	if len(l.runs) <= 1 {
		return nil
	}
	// Merge runs only (newest wins), keeping no tombstones: anything
	// deleted is gone from the bottom level.
	merged, err := l.mergeRuns()
	if err != nil {
		return err
	}
	id := l.manifest.NextRun
	if err := l.writeRunFile(id, merged); err != nil {
		return err
	}
	next := lsmManifest{Runs: []uint64{id}, WalSeq: l.manifest.WalSeq, NextRun: id + 1}
	r, err := l.installManifest(next, id)
	if err != nil {
		return err
	}
	old := l.runs
	oldIDs := l.manifest.Runs
	l.runs = []*runReader{r}
	l.manifest = next
	// The old runs are garbage now; removal failures are harmless —
	// recovery deletes orphans.
	for _, or := range old {
		or.close()
	}
	for _, oid := range oldIDs {
		os.Remove(filepath.Join(l.dir, runFileName(oid)))
	}
	return nil
}

// mergeRuns k-way merges every run, newest-wins, dropping tombstones.
func (l *LSM) mergeRuns() ([]kvEntry, error) {
	var out []kvEntry
	type src struct {
		it  *runIterator
		cur kvEntry
		ok  bool
	}
	// Priority order: newest run first.
	var sources []*src
	for i := len(l.runs) - 1; i >= 0; i-- {
		it := l.runs[i].iterator("")
		s := &src{it: it}
		s.cur, s.ok = it.next()
		if it.err != nil {
			return nil, it.err
		}
		sources = append(sources, s)
	}
	for {
		minKey := ""
		found := false
		for _, s := range sources {
			if s.ok && (!found || s.cur.key < minKey) {
				minKey = s.cur.key
				found = true
			}
		}
		if !found {
			sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
			return out, nil
		}
		taken := false
		for _, s := range sources {
			if s.ok && s.cur.key == minKey {
				if !taken {
					if !s.cur.del {
						out = append(out, s.cur)
					}
					taken = true
				}
				s.cur, s.ok = s.it.next()
				if s.it.err != nil {
					return nil, s.it.err
				}
			}
		}
	}
}

// Close releases the WAL handle and run readers. Mutations fail after
// Close.
func (l *LSM) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var first error
	for _, r := range l.runs {
		if err := r.close(); err != nil && first == nil {
			first = err
		}
	}
	if err := l.wal.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
