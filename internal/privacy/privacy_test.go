package privacy

import (
	"strings"
	"testing"

	"cdas/internal/crowd"
)

func TestSanitizeHandles(t *testing.T) {
	m := NewManager()
	got := m.Sanitize("hey @alice have you seen @bob_42's post?")
	if strings.Contains(got, "@alice") || strings.Contains(got, "@bob_42") {
		t.Errorf("handles not masked: %q", got)
	}
	if !strings.Contains(got, MaskHandle) {
		t.Errorf("mask absent: %q", got)
	}
}

func TestSanitizeEmailBeforeHandle(t *testing.T) {
	m := NewManager()
	got := m.Sanitize("contact me at jane.doe@example.com please")
	if strings.Contains(got, "example.com") || strings.Contains(got, "jane") {
		t.Errorf("email not fully masked: %q", got)
	}
	if !strings.Contains(got, MaskEmail) {
		t.Errorf("email mask absent: %q", got)
	}
	if strings.Contains(got, MaskHandle) {
		t.Errorf("email leaked into handle mask: %q", got)
	}
}

func TestSanitizeURLAndPhone(t *testing.T) {
	m := NewManager()
	got := m.Sanitize("see https://example.com/x?y=1 or call +65 9123 4567 now")
	if strings.Contains(got, "example.com") {
		t.Errorf("URL not masked: %q", got)
	}
	if strings.Contains(got, "9123") {
		t.Errorf("phone not masked: %q", got)
	}
	if !strings.Contains(got, MaskURL) || !strings.Contains(got, MaskPhone) {
		t.Errorf("masks absent: %q", got)
	}
}

func TestSanitizePlainTextUntouched(t *testing.T) {
	m := NewManager()
	in := "Green Lantern was a terrible movie, like Lost In Space terrible."
	if got := m.Sanitize(in); got != in {
		t.Errorf("plain text modified: %q", got)
	}
}

func TestSanitizeQuestionPreservesSemantics(t *testing.T) {
	m := NewManager()
	q := crowd.Question{
		ID:     "q1",
		Text:   "Is @someone's review of https://movie.example positive?",
		Domain: []string{"pos", "neg"},
		Truth:  "pos",
	}
	got := m.SanitizeQuestion(q)
	if strings.Contains(got.Text, "someone") || strings.Contains(got.Text, "movie.example") {
		t.Errorf("question text not masked: %q", got.Text)
	}
	if got.Truth != q.Truth || len(got.Domain) != len(q.Domain) || got.ID != q.ID {
		t.Error("sanitisation must not alter id, domain or truth")
	}
}

func TestBlockUnblock(t *testing.T) {
	m := NewManager()
	if m.Blocked("w1") {
		t.Error("fresh manager blocks nobody")
	}
	m.BlockWorker("w1")
	if !m.Blocked("w1") {
		t.Error("w1 should be blocked")
	}
	m.UnblockWorker("w1")
	if m.Blocked("w1") {
		t.Error("w1 should be unblocked")
	}
}

func TestNilManagerBlocksNobody(t *testing.T) {
	var m *Manager
	if m.Blocked("anyone") {
		t.Error("nil manager must block nobody")
	}
}

func TestZeroValueManager(t *testing.T) {
	var m Manager
	m.BlockWorker("w") // must not panic on nil map
	if !m.Blocked("w") {
		t.Error("zero-value manager should support blocking")
	}
}
