package textutil

import (
	"strings"
	"testing"
)

// refContainsAny is a naive reference for ContainsAny over ASCII
// inputs: manual byte-wise lower-casing and an O(n·m) substring scan,
// sharing no code with the implementation.
func refContainsAny(text string, keywords []string) bool {
	lower := func(s string) []byte {
		b := []byte(s)
		for i := range b {
			if b[i] >= 'A' && b[i] <= 'Z' {
				b[i] += 'a' - 'A'
			}
		}
		return b
	}
	t := lower(text)
	for _, k := range keywords {
		if k == "" {
			continue
		}
		kb := lower(k)
		for i := 0; i+len(kb) <= len(t); i++ {
			match := true
			for j := range kb {
				if t[i+j] != kb[j] {
					match = false
					break
				}
			}
			if match {
				return true
			}
		}
	}
	return false
}

func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// FuzzContainsAny: never panics on arbitrary input, and on ASCII input
// agrees with the naive reference. (Non-ASCII is excluded from the
// agreement check only because Unicode case folding legitimately
// differs from byte-wise lowering — e.g. the Kelvin sign.)
func FuzzContainsAny(f *testing.F) {
	f.Add("loving my new iphone4s!!", "iPhone4S|iPhone 4S")
	f.Add("android forever", "iPhone4S|iPhone 4S")
	f.Add("", "")
	f.Add("some text", "|||")
	f.Add("ALL CAPS TEXT", "caps")
	f.Add("unicode ünïcödé", "ÜNÏCÖDÉ")
	f.Add("a", "a|b|c|d|e|f")

	f.Fuzz(func(t *testing.T, text, joined string) {
		keywords := strings.Split(joined, "|")
		got := ContainsAny(text, keywords) // must not panic
		if !isASCII(text) || !isASCII(joined) {
			return
		}
		if want := refContainsAny(text, keywords); got != want {
			t.Errorf("ContainsAny(%q, %q) = %v, reference says %v", text, keywords, got, want)
		}
	})
}
