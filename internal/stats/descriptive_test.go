package stats

import (
	"math"
	"testing"
)

func TestHarmonicKnownValues(t *testing.T) {
	cases := []struct {
		k    int
		want float64
	}{
		{0, 0}, {1, 1}, {2, 1.5}, {3, 1.5 + 1.0/3}, {4, 25.0 / 12},
	}
	for _, c := range cases {
		if got := Harmonic(c.k); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Harmonic(%d) = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestHarmonicAsymptoticAgreement(t *testing.T) {
	// The direct sum and the asymptotic branch must agree near the cutoff.
	direct := 0.0
	for i := 1; i <= 2000; i++ {
		direct += 1 / float64(i)
	}
	if got := Harmonic(2000); math.Abs(got-direct) > 1e-9 {
		t.Errorf("Harmonic(2000) = %v, direct sum = %v", got, direct)
	}
}

func TestHarmonicMonotone(t *testing.T) {
	prev := 0.0
	for k := 1; k <= 3000; k += 7 {
		h := Harmonic(k)
		if h <= prev {
			t.Fatalf("Harmonic not strictly increasing at k=%d", k)
		}
		prev = h
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty-slice stats should be 0")
	}
}

func TestMeanAbsError(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{2, 2, 1}
	if got := MeanAbsError(a, b); got != 1 {
		t.Errorf("MeanAbsError = %v, want 1", got)
	}
	if got := MeanAbsError(nil, nil); got != 0 {
		t.Errorf("MeanAbsError(empty) = %v, want 0", got)
	}
	assertPanics(t, func() { MeanAbsError(a, b[:2]) }, "MeanAbsError mismatch")
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %v, want 5", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q25 = %v, want 2", got)
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Error("Quantile mutated its input")
	}
	assertPanics(t, func() { Quantile(nil, 0.5) }, "Quantile empty")
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 4)
	for _, v := range []float64{5, 30, 55, 80, 99, -10, 150} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	// -10 clamps into bin 0; 150 clamps into bin 3.
	want := []int{2, 1, 1, 3}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bin %d = %d, want %d (all: %v)", i, c, want[i], h.Counts)
		}
	}
	fr := h.Fractions()
	sum := 0.0
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("fractions sum to %v", sum)
	}
	if got := h.BinLabel(1); got != "25-50" {
		t.Errorf("BinLabel(1) = %q, want \"25-50\"", got)
	}
}

func TestHistogramEmptyFractions(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	for _, f := range h.Fractions() {
		if f != 0 {
			t.Error("empty histogram fractions should be zero")
		}
	}
}

func TestHistogramConstructorValidation(t *testing.T) {
	assertPanics(t, func() { NewHistogram(0, 1, 0) }, "bins=0")
	assertPanics(t, func() { NewHistogram(1, 0, 3) }, "inverted bounds")
}
