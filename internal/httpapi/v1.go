// The versioned v1 surface: resource-oriented routes speaking the typed
// wire contract of the cdas/api package. Every error path here returns
// a structured api.Error envelope; GET /v1/jobs paginates and filters;
// the SSE stream lives in sse.go.
package httpapi

import (
	"encoding/base64"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
	"unicode/utf8"

	"cdas/api"
	"cdas/internal/core/aggregate"
	"cdas/internal/jobs"
)

// Pagination bounds for GET /v1/jobs.
const (
	defaultPageSize = 100
	maxPageSize     = 500
)

// unparkVerb is the custom-method suffix of POST /v1/jobs/{name}:unpark.
const unparkVerb = ":unpark"

// v1Route is one versioned-surface registration: the mux method and
// pattern plus the openapi.yaml path the route is documented under
// (empty doc = documented under the mux path itself).
type v1Route struct {
	method  string
	path    string
	doc     string
	handler http.HandlerFunc
}

// v1Routes is the authoritative table of the versioned surface. mountV1
// registers exactly these routes, and the openapi lint test checks
// every entry against api/openapi.yaml — a served route the spec does
// not document fails the build.
func (s *Server) v1Routes() []v1Route {
	return []v1Route{
		{"GET", "/v1/healthz", "", s.v1Health},
		{"GET", "/v1/metrics", "", s.v1Metrics},
		{"GET", "/v1/scheduler", "", s.v1Scheduler},
		{"GET", "/v1/aggregators", "", s.v1Aggregators},
		{"GET", "/v1/queries", "", s.v1Queries},
		{"GET", "/v1/queries/{name}", "", s.v1Query},
		{"GET", "/v1/queries/{name}/events", "", s.v1QueryEvents},
		// The /v1/streams group is a deprecated alias of the unified
		// kind-discriminated job surface: historical bodies, Deprecation
		// header, successor-version Link.
		{"POST", "/v1/streams", "", deprecated("/v1/jobs", s.v1SubmitStream)},
		{"GET", "/v1/streams", "", deprecated("/v1/jobs?kind=continuous", s.v1ListStreams)},
		{"GET", "/v1/streams/{name}", "", deprecated("/v1/jobs/{name}", s.v1GetStream)},
		{"GET", "/v1/streams/{name}/events", "", deprecated("/v1/queries/{name}/events", s.v1StreamEvents)},
		{"DELETE", "/v1/streams/{name}", "", deprecated("/v1/jobs/{name}", s.v1CancelStream)},
		{"GET", "/v1/enumerations", "", s.v1ListEnums},
		{"GET", "/v1/enumerations/{name}", "", s.v1GetEnum},
		{"GET", "/v1/enumerations/{name}/events", "", s.v1EnumEvents},
		{"POST", "/v1/jobs", "", s.v1SubmitJob},
		{"GET", "/v1/jobs", "", s.v1ListJobs},
		{"GET", "/v1/jobs/{name}", "", s.v1GetJob},
		{"DELETE", "/v1/jobs/{name}", "", s.v1CancelJob},
		// ServeMux wildcards span whole segments, so the AIP-style custom
		// method POST /v1/jobs/{name}:unpark arrives with "name:unpark" as
		// the segment; v1JobAction splits the verb off.
		{"POST", "/v1/jobs/{nameAction}", "/v1/jobs/{name}:unpark", s.v1JobAction},
	}
}

func (s *Server) mountV1(mux *http.ServeMux) {
	for _, r := range s.v1Routes() {
		mux.HandleFunc(r.method+" "+r.path, r.handler)
	}
	// Everything else under /v1 is a structured 404, not a plain-text
	// mux miss.
	mux.HandleFunc("/v1/", s.v1NotFound)
}

func (s *Server) v1NotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, api.NotFound("no route %s %s", r.Method, r.URL.Path))
}

func (s *Server) v1Health(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, api.Health{Status: "ok", Version: api.Version})
}

func (s *Server) v1Metrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	reg := s.counters
	s.mu.RUnlock()
	writeJSON(w, api.Metrics{Counters: reg.Snapshot()})
}

func (s *Server) v1Scheduler(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	sched := s.sched
	s.mu.RUnlock()
	if sched == nil {
		writeError(w, api.Unavailable("no scheduler attached"))
		return
	}
	st := sched.State()
	out := api.SchedulerState{
		Generations:        st.Generations,
		PendingJobs:        st.PendingJobs,
		DedupEnabled:       st.DedupEnabled,
		CacheEntries:       st.CacheEntries,
		CacheHits:          st.CacheHits,
		CacheMisses:        st.CacheMisses,
		QuestionsEnqueued:  st.QuestionsEnqueued,
		QuestionsPublished: st.QuestionsPublished,
		QuestionsDeduped:   st.QuestionsDeduped,
		BatchesPublished:   st.BatchesPublished,
		JobsAdmitted:       st.JobsAdmitted,
		JobsParked:         st.JobsParked,
		Budget: api.BudgetSnapshot{
			GlobalLimit: st.Budget.GlobalLimit,
			GlobalSpent: st.Budget.GlobalSpent,
		},
	}
	for _, line := range st.Budget.Jobs {
		out.Budget.Jobs = append(out.Budget.Jobs, api.JobBudgetLine{
			Job: line.Job, Limit: line.Limit, Spent: line.Spent,
		})
	}
	writeJSON(w, out)
}

// v1Aggregators serves the answer-aggregation registry: the discovery
// counterpart of JobSubmission.Aggregator, so clients can enumerate the
// methods before picking one.
func (s *Server) v1Aggregators(w http.ResponseWriter, _ *http.Request) {
	infos := aggregate.Infos()
	out := api.AggregatorList{
		Default:     aggregate.DefaultName,
		Aggregators: make([]api.AggregatorInfo, 0, len(infos)),
	}
	for _, info := range infos {
		out.Aggregators = append(out.Aggregators, api.AggregatorInfo{
			Name:         info.Name,
			Incremental:  info.Incremental,
			ResponseType: info.ResponseType,
			Description:  info.Description,
		})
	}
	writeJSON(w, out)
}

func (s *Server) v1Queries(w http.ResponseWriter, _ *http.Request) {
	out := api.QueryList{Queries: []QueryState{}}
	for _, n := range s.Names() {
		if st, ok := s.Get(n); ok {
			out.Queries = append(out.Queries, st)
		}
	}
	writeJSON(w, out)
}

func (s *Server) v1Query(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	st, ok := s.Get(name)
	if !ok {
		writeError(w, api.NotFound("no such query %q", name))
		return
	}
	writeJSON(w, st)
}

// requireJobs fetches the controller or serves the 503 envelope.
func (s *Server) requireJobs(w http.ResponseWriter) (JobController, bool) {
	ctl := s.jobs()
	if ctl == nil {
		writeError(w, api.Unavailable("no job service attached"))
		return nil, false
	}
	return ctl, true
}

func (s *Server) v1SubmitJob(w http.ResponseWriter, r *http.Request) {
	s.submitJob(w, r, "/v1/jobs/")
}

// listJobsParams are the validated pagination and filter parameters of
// GET /v1/jobs.
type listJobsParams struct {
	limit     int
	afterName string
	state     api.JobState
	tenant    string
	kind      string
}

// parseListJobs extracts and validates the pagination and filter
// parameters of GET /v1/jobs.
func parseListJobs(r *http.Request) (listJobsParams, *api.Error) {
	q := r.URL.Query()
	p := listJobsParams{limit: defaultPageSize}
	if v := q.Get("limit"); v != "" {
		n, perr := strconv.Atoi(v)
		if perr != nil || n < 1 {
			return p, api.InvalidArgument("limit must be a positive integer, got %q", v)
		}
		p.limit = min(n, maxPageSize)
	}
	if v := q.Get("page_token"); v != "" {
		raw, derr := base64.RawURLEncoding.DecodeString(v)
		if derr != nil {
			return p, api.InvalidArgument("bad page_token %q", v)
		}
		// A token is always the base64 of a job name this server issued,
		// so its payload must satisfy the same rules submission enforces;
		// anything else is a forged or corrupted token, rejected rather
		// than passed to the index as an arbitrary range bound.
		p.afterName = string(raw)
		if !utf8.ValidString(p.afterName) || checkJobName(p.afterName) != nil {
			return p, api.InvalidArgument("page_token %q does not decode to a valid job name", v)
		}
	}
	if v := q.Get("state"); v != "" {
		p.state = api.JobState(v)
		if !p.state.Valid() {
			return p, api.InvalidArgument("unknown state filter %q", v)
		}
	}
	p.tenant = q.Get("tenant")
	if v := q.Get("kind"); v != "" {
		switch v {
		case api.KindBatch, api.KindTSA, api.KindImageTag, api.KindCustom,
			api.KindContinuous, api.KindEnumeration:
			p.kind = v
		default:
			return p, api.InvalidArgument("unknown kind filter %q", v)
		}
	}
	return p, nil
}

// kindMatches applies the ?kind= filter: "batch" matches every one-shot
// plan kind, anything else matches exactly.
func kindMatches(filter string, kind jobs.Kind) bool {
	if filter == api.KindBatch {
		return kind != jobs.KindContinuous && kind != jobs.KindEnumeration
	}
	return string(kind) == filter
}

func (s *Server) v1ListJobs(w http.ResponseWriter, r *http.Request) {
	ctl, ok := s.requireJobs(w)
	if !ok {
		return
	}
	p, aerr := parseListJobs(r)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	out := api.JobList{Jobs: []api.JobStatus{}}
	if p.kind == "" {
		// One index range-read serves the page: names are index-ordered, so
		// the page token is the last returned name and a page picks up where
		// the previous one stopped even when jobs were inserted or removed
		// in between.
		page, more := ctl.StatusesPage(p.afterName, p.limit, jobs.State(p.state), p.tenant)
		for _, st := range page {
			out.Jobs = append(out.Jobs, s.jobStatus(st))
		}
		if more && len(out.Jobs) > 0 {
			out.NextPageToken = base64.RawURLEncoding.EncodeToString(
				[]byte(out.Jobs[len(out.Jobs)-1].Name))
		}
		writeJSON(w, out)
		return
	}
	// The kind filter has no secondary index; keep paging the indexed
	// range and sieve until the page fills. The token stays "last name
	// returned", so it composes with insertions and the other filters
	// exactly like the unfiltered path.
	after := p.afterName
	for len(out.Jobs) < p.limit {
		page, more := ctl.StatusesPage(after, p.limit, jobs.State(p.state), p.tenant)
		for _, st := range page {
			if !kindMatches(p.kind, st.Job.Kind) {
				continue
			}
			out.Jobs = append(out.Jobs, s.jobStatus(st))
			if len(out.Jobs) == p.limit {
				break
			}
		}
		if !more || len(page) == 0 {
			break
		}
		if len(out.Jobs) == p.limit {
			out.NextPageToken = base64.RawURLEncoding.EncodeToString(
				[]byte(out.Jobs[len(out.Jobs)-1].Name))
			break
		}
		after = page[len(page)-1].Job.Name
	}
	writeJSON(w, out)
}

func (s *Server) v1GetJob(w http.ResponseWriter, r *http.Request) {
	ctl, ok := s.requireJobs(w)
	if !ok {
		return
	}
	name := r.PathValue("name")
	st, found := ctl.Status(name)
	if !found {
		writeError(w, api.NotFound("no such job %q", name))
		return
	}
	writeJSON(w, s.jobStatus(st))
}

func (s *Server) v1CancelJob(w http.ResponseWriter, r *http.Request) {
	ctl, ok := s.requireJobs(w)
	if !ok {
		return
	}
	name := r.PathValue("name")
	if err := ctl.Cancel(name); err != nil {
		writeError(w, jobError(err))
		return
	}
	st, _ := ctl.Status(name)
	writeJSON(w, s.jobStatus(st))
}

// v1JobAction dispatches AIP-style custom methods: POST
// /v1/jobs/{name}:verb. Only :unpark exists today.
func (s *Server) v1JobAction(w http.ResponseWriter, r *http.Request) {
	seg := r.PathValue("nameAction")
	name, verb, found := strings.Cut(seg, ":")
	if !found {
		writeError(w, api.NotFound("no route POST /v1/jobs/%s (custom methods use /v1/jobs/{name}:verb)", seg))
		return
	}
	if ":"+verb != unparkVerb {
		writeError(w, api.InvalidArgument("unknown action %q on job %q", verb, name))
		return
	}
	ctl, ok := s.requireJobs(w)
	if !ok {
		return
	}
	if err := ctl.Unpark(name); err != nil {
		writeError(w, jobError(err))
		return
	}
	st, _ := ctl.Status(name)
	writeJSON(w, s.jobStatus(st))
}

// jobError maps job-service errors onto the structured envelope.
func jobError(err error) *api.Error {
	switch {
	case errors.Is(err, jobs.ErrUnknownJob):
		return api.NotFound("%v", err)
	case errors.Is(err, jobs.ErrDuplicateJob):
		return api.Conflict("%v", err)
	case errors.Is(err, jobs.ErrBadTransition):
		return api.Conflict("%v", err)
	default:
		return api.Internal("%v", err)
	}
}

// jobFromSubmission converts the kind-discriminated wire submission
// into a jobs.Job (semantic validation happens at registration). The
// kind selects which fields apply: every kind except "enumeration"
// needs a window, "continuous" carries the stream spec block,
// "enumeration" the enum block. Kind/spec cross-checks (a stream block
// on a batch job, a missing enum block) are registration's job — the
// mapping here is mechanical.
func jobFromSubmission(sub api.JobSubmission) (jobs.Job, error) {
	kind := jobs.Kind(sub.Kind)
	switch sub.Kind {
	case "", api.KindBatch:
		// "batch" is the documented alias for the default one-shot plan.
		kind = jobs.KindTSA
	}
	var window time.Duration
	var err error
	if kind != jobs.KindEnumeration || sub.Window != "" {
		if window, err = time.ParseDuration(sub.Window); err != nil {
			return jobs.Job{}, fmt.Errorf("bad window %q: %w", sub.Window, err)
		}
	}
	start := time.Now().UTC()
	if sub.Start != "" {
		start, err = time.Parse(time.RFC3339, sub.Start)
		if err != nil {
			return jobs.Job{}, fmt.Errorf("bad start %q (want RFC 3339): %w", sub.Start, err)
		}
	}
	job := jobs.Job{
		Name:       sub.Name,
		Kind:       kind,
		Priority:   sub.Priority,
		Budget:     sub.Budget,
		Aggregator: sub.Aggregator,
		Tenant:     sub.Tenant,
		Query: jobs.Query{
			Keywords:         sub.Keywords,
			RequiredAccuracy: sub.RequiredAccuracy,
			Domain:           sub.Domain,
			Start:            start,
			Window:           window,
		},
	}
	if sub.Stream != nil {
		spec, err := streamSpecFromWire(*sub.Stream)
		if err != nil {
			return jobs.Job{}, err
		}
		job.Stream = &spec
	}
	if sub.Enum != nil {
		spec := enumSpecFromWire(*sub.Enum)
		job.Enum = &spec
	}
	return job, nil
}

// streamSpecFromWire maps the wire stream block onto the internal spec,
// parsing the duration strings.
func streamSpecFromWire(w api.StreamSpec) (jobs.StreamSpec, error) {
	spec := jobs.StreamSpec{
		WindowCapacity: w.WindowCapacity,
		MaxBacklog:     w.MaxBacklog,
		Items:          w.Items,
		Rate:           w.Rate,
		SourceSeed:     w.SourceSeed,
	}
	var err error
	if w.Lateness != "" {
		if spec.Lateness, err = time.ParseDuration(w.Lateness); err != nil {
			return jobs.StreamSpec{}, fmt.Errorf("bad lateness %q: %w", w.Lateness, err)
		}
	}
	if w.TargetFill != "" {
		if spec.TargetFill, err = time.ParseDuration(w.TargetFill); err != nil {
			return jobs.StreamSpec{}, fmt.Errorf("bad target_fill %q: %w", w.TargetFill, err)
		}
	}
	return spec, nil
}

// enumSpecFromWire maps the wire enum block onto the internal spec.
func enumSpecFromWire(w api.EnumSpec) jobs.EnumSpec {
	return jobs.EnumSpec{
		ItemValue:      w.ItemValue,
		TargetCoverage: w.TargetCoverage,
		MaxBatches:     w.MaxBatches,
		HITWorkers:     w.HITWorkers,
		PerWorker:      w.PerWorker,
		Universe:       w.Universe,
		Popularity:     w.Popularity,
		SourceSeed:     w.SourceSeed,
	}
}
