// Read API for the cross-query crowd scheduler: GET /api/scheduler
// reports batching, dedup-cache and budget state, and POST
// /jobs/{name}/unpark resumes a budget-parked job.
package httpapi

import (
	"errors"
	"net/http"

	"cdas/internal/jobs"
	"cdas/internal/scheduler"
)

// SchedulerReporter is the slice of the scheduler the API needs.
// *scheduler.Scheduler satisfies it.
type SchedulerReporter interface {
	State() scheduler.State
}

// SetScheduler attaches the cross-query scheduler behind GET
// /api/scheduler. A Server without one answers the route with 503.
func (s *Server) SetScheduler(r SchedulerReporter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sched = r
}

func (s *Server) handleScheduler(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	sched := s.sched
	s.mu.RUnlock()
	if sched == nil {
		http.Error(w, "no scheduler attached", http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, sched.State())
}

func (s *Server) handleUnparkJob(w http.ResponseWriter, r *http.Request) {
	ctl := s.jobs()
	if ctl == nil {
		http.Error(w, "no job service attached", http.StatusServiceUnavailable)
		return
	}
	name := r.PathValue("name")
	if err := ctl.Unpark(name); err != nil {
		switch {
		case errors.Is(err, jobs.ErrUnknownJob):
			http.Error(w, err.Error(), http.StatusNotFound)
		case errors.Is(err, jobs.ErrBadTransition):
			http.Error(w, err.Error(), http.StatusConflict)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	st, _ := ctl.Status(name)
	writeJSON(w, s.jobStatus(st))
}
