package imagetag

import (
	"math"
	"testing"
)

func TestGenerateShape(t *testing.T) {
	imgs, err := Generate(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(imgs) != len(Subjects())*20 {
		t.Fatalf("generated %d images, want %d", len(imgs), len(Subjects())*20)
	}
	ids := map[string]bool{}
	for _, img := range imgs {
		if ids[img.ID] {
			t.Fatalf("duplicate image id %q", img.ID)
		}
		ids[img.ID] = true
		if len(img.Features) != FeatureDim {
			t.Fatalf("image %s has %d features", img.ID, len(img.Features))
		}
		if len(img.Candidates) != 8 {
			t.Fatalf("image %s has %d candidates, want 8", img.ID, len(img.Candidates))
		}
		found := false
		for _, c := range img.Candidates {
			if c == img.TrueTag {
				found = true
			}
		}
		if !found {
			t.Fatalf("image %s candidates %v missing true tag %q", img.ID, img.Candidates, img.TrueTag)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].TrueTag != b[i].TrueTag || a[i].Features[0] != b[i].Features[0] {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Subjects: []string{"nonexistent"}}); err == nil {
		t.Error("unknown subject accepted")
	}
	if _, err := Generate(Config{CandidateCount: 1}); err == nil {
		t.Error("candidate count 1 accepted")
	}
	if _, err := Generate(Config{FeatureNoise: -1}); err == nil {
		t.Error("negative noise accepted")
	}
	if _, err := Generate(Config{ImagesPerSubject: -1}); err == nil {
		t.Error("negative image count accepted")
	}
}

func TestCandidatesContainNoise(t *testing.T) {
	imgs, err := Generate(Config{Seed: 2, Subjects: []string{"apple"}, ImagesPerSubject: 30})
	if err != nil {
		t.Fatal(err)
	}
	noise := map[string]bool{}
	for _, nt := range noiseTags {
		noise[nt] = true
	}
	withNoise := 0
	for _, img := range imgs {
		for _, c := range img.Candidates {
			if noise[c] {
				withNoise++
				break
			}
		}
		for _, c := range img.Candidates {
			if noise[c] && c == img.TrueTag {
				t.Fatalf("noise tag %q became a truth", c)
			}
		}
	}
	if withNoise == 0 {
		t.Error("no image carries an embedded noise tag")
	}
}

func TestTagEmbeddingProperties(t *testing.T) {
	a := TagEmbedding("sunset")
	b := TagEmbedding("sunset")
	for d := range a {
		if a[d] != b[d] {
			t.Fatal("embedding not deterministic")
		}
	}
	norm := 0.0
	for _, v := range a {
		norm += v * v
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("embedding norm^2 = %v, want 1", norm)
	}
	c := TagEmbedding("walrus")
	dot := 0.0
	for d := range a {
		dot += a[d] * c[d]
	}
	if math.Abs(dot) > 0.95 {
		t.Errorf("distinct tags nearly collinear: dot=%v", dot)
	}
}

func TestQuestionConversion(t *testing.T) {
	imgs, err := Generate(Config{Seed: 3, Subjects: []string{"sun"}, ImagesPerSubject: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, img := range imgs {
		q := img.Question()
		if err := q.Validate(); err != nil {
			t.Fatalf("question for %s invalid: %v", img.ID, err)
		}
		if len(q.Domain) != len(img.Candidates) {
			t.Fatalf("domain size %d != candidates %d", len(q.Domain), len(img.Candidates))
		}
	}
}

func TestSplit(t *testing.T) {
	imgs, err := Generate(Config{Seed: 4, ImagesPerSubject: 3})
	if err != nil {
		t.Fatal(err)
	}
	test, train := Split(imgs, []string{"apple", "sun"})
	if len(test) != 6 {
		t.Fatalf("test split = %d, want 6", len(test))
	}
	if len(train) != len(imgs)-6 {
		t.Fatalf("train split = %d", len(train))
	}
	for _, img := range test {
		if img.Subject != "apple" && img.Subject != "sun" {
			t.Fatal("test split contaminated")
		}
	}
}

func TestFigure17SubjectsKnown(t *testing.T) {
	for _, s := range Figure17Subjects {
		if _, ok := subjectTags[s]; !ok {
			t.Errorf("Figure 17 subject %q has no tag vocabulary", s)
		}
	}
}
