// Majority voting on the Aggregator contract: the Section 5 baseline
// that treats every worker as equally trustworthy. Where the
// verification.MajorityVoting baseline reports "no answer" on a tie
// (the Figure 9/10 outcome), the aggregator must always decide, so ties
// break deterministically towards the lexicographically smallest
// answer; on untied votes the winner is identical to the baseline's.
package aggregate

import (
	"fmt"
	"sort"

	"cdas/internal/core/verification"
)

// MajorityName is the majority-voting aggregator's registry key.
const MajorityName = "majority"

func init() {
	Register(majorityAggregator{}, "unweighted majority voting; confidence is the winning answer's vote share")
}

type majorityAggregator struct{}

func (majorityAggregator) Name() string { return MajorityName }

func (majorityAggregator) Aggregate(b Batch) (Result, error) {
	verdicts := make(map[string]Verdict, len(b.Questions))
	for _, q := range b.Questions {
		votes := b.Votes[q.ID]
		if len(votes) == 0 {
			continue
		}
		counts := make(map[string]float64, 4)
		for _, v := range votes {
			counts[v.Answer]++
		}
		verdicts[q.ID] = shareVerdict(counts)
	}
	return Result{Verdicts: verdicts, WorkerQuality: agreementQuality(b, verdicts)}, nil
}

func (majorityAggregator) NewFolder(spec Spec) (Folder, error) {
	if spec.Planned < 1 {
		return nil, fmt.Errorf("aggregate: planned assignments must be >= 1, got %d", spec.Planned)
	}
	return &majorityFolder{planned: spec.Planned, counts: make(map[string]float64, 4)}, nil
}

// majorityFolder folds votes into per-answer counts — the incremental
// form is exact because majority voting is a running tally.
type majorityFolder struct {
	planned  int
	received int
	counts   map[string]float64
}

func (f *majorityFolder) Fold(vote Vote) error {
	if f.received >= f.planned {
		return ErrOverfilled
	}
	f.received++
	f.counts[vote.Answer]++
	return nil
}

func (f *majorityFolder) Received() int { return f.received }

func (f *majorityFolder) Verdict() (Verdict, error) {
	if f.received == 0 {
		return Verdict{}, verification.ErrNoVotes
	}
	return shareVerdict(f.counts), nil
}

// ErrOverfilled reports more folds than planned assignments — the same
// protocol violation online.ErrOverfilled flags on the CDAS path.
var ErrOverfilled = fmt.Errorf("aggregate: more votes than planned assignments")

// shareVerdict ranks answers by their (possibly weighted) vote share:
// confidence of answer r is score(r) / Σ scores, ties broken by answer
// string. Weighted-voting methods (majority with weight 1, Wawa and
// Zero-Based Skill with skills) all rank through this one routine, so
// equal weights provably reduce them to plain majority.
func shareVerdict(scores map[string]float64) Verdict {
	total := 0.0
	answers := make([]string, 0, len(scores))
	for a, s := range scores {
		answers = append(answers, a)
		total += s
	}
	sort.Strings(answers)
	ranked := make([]verification.Scored, 0, len(answers))
	if total > 0 {
		for _, a := range answers {
			ranked = append(ranked, verification.Scored{Answer: a, Confidence: scores[a] / total})
		}
	} else {
		// Degenerate all-zero weights: fall back to the uniform share so
		// the verdict stays defined and deterministic.
		for _, a := range answers {
			ranked = append(ranked, verification.Scored{Answer: a, Confidence: 1 / float64(len(answers))})
		}
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].Confidence != ranked[j].Confidence {
			return ranked[i].Confidence > ranked[j].Confidence
		}
		return ranked[i].Answer < ranked[j].Answer
	})
	best := ranked[0]
	return Verdict{Answer: best.Answer, Confidence: best.Confidence, Ranked: ranked}
}
