// Package tsa implements the Twitter sentiment analytics application of
// the paper (Sections 2.2 and 5.1): queries of the form (S, C, R, t, w)
// are matched against a tweet stream by the program executor, candidate
// tweets are batched into HITs by the crowdsourcing engine, and accepted
// answers are summarised into the percentages-plus-reasons presentation
// of Table 1 / Figure 4.
package tsa

import (
	"errors"
	"fmt"
	"time"

	"cdas/internal/crowd"
	"cdas/internal/engine"
	"cdas/internal/exec"
	"cdas/internal/jobs"
	"cdas/internal/textgen"
)

// Query builds the TSA query of Definition 1 for one movie: keywords
// {title}, the required accuracy, domain {Positive, Neutral, Negative},
// and the time window.
func Query(movie string, requiredAccuracy float64, start time.Time, window time.Duration) jobs.Query {
	return jobs.Query{
		Keywords:         []string{movie},
		RequiredAccuracy: requiredAccuracy,
		Domain:           append([]string(nil), textgen.Labels...),
		Start:            start,
		Window:           window,
	}
}

// FilterTweets applies the query's keyword and window filters to the
// stream — the executor half of the TSA plan.
func FilterTweets(tweets []textgen.Tweet, q jobs.Query) []textgen.Tweet {
	out := make([]textgen.Tweet, 0, len(tweets))
	for _, t := range tweets {
		if q.Matches(t.Text, t.At) {
			out = append(out, t)
		}
	}
	return out
}

// Questions converts tweets to crowd questions.
func Questions(tweets []textgen.Tweet) []crowd.Question {
	qs := make([]crowd.Question, len(tweets))
	for i, t := range tweets {
		qs[i] = t.Question()
	}
	return qs
}

// GoldenQuestions builds the golden pool from tweets whose labels the
// requester has verified (the paper embeds αB such questions per HIT).
// Golden IDs are prefixed to avoid colliding with live questions.
func GoldenQuestions(tweets []textgen.Tweet) []crowd.Question {
	qs := make([]crowd.Question, len(tweets))
	for i, t := range tweets {
		q := t.Question()
		q.ID = "golden/" + q.ID
		qs[i] = q
	}
	return qs
}

// Result is one processed TSA query.
type Result struct {
	Query   jobs.Query
	Summary exec.Summary
	// Accuracy is the fraction of filtered tweets whose accepted answer
	// matches ground truth (the paper's evaluation metric).
	Accuracy float64
	// Tweets is the number of tweets that passed the filter.
	Tweets  int
	Batches []engine.BatchResult
}

// Run executes one TSA query end to end: filter → batch → crowdsource →
// verify → summarise. golden supplies the ground-truth pool for accuracy
// sampling.
func Run(eng *engine.Engine, q jobs.Query, stream, golden []textgen.Tweet) (Result, error) {
	if eng == nil {
		return Result{}, errors.New("tsa: engine is required")
	}
	if err := q.Validate(); err != nil {
		return Result{}, err
	}
	matched := FilterTweets(stream, q)
	if len(matched) == 0 {
		return Result{}, fmt.Errorf("tsa: no tweets matched query %v", q.Keywords)
	}
	batches, err := eng.ProcessAll(Questions(matched), GoldenQuestions(golden))
	if err != nil {
		return Result{}, err
	}

	truths := make(map[string]string, len(matched))
	texts := make(map[string]string, len(matched))
	for _, t := range matched {
		truths[t.ID] = t.Truth
		texts[t.ID] = t.Text
	}
	outcomes := make([]exec.Outcome, 0, len(matched))
	correct := 0
	for _, br := range batches {
		for _, qr := range br.Results {
			outcomes = append(outcomes, exec.Outcome{ItemID: qr.Question.ID, Accepted: qr.Answer})
			if qr.Answer == truths[qr.Question.ID] {
				correct++
			}
		}
	}
	res := Result{
		Query:   q,
		Summary: exec.Summarise(q.Domain, outcomes, texts, q.Keywords...),
		Tweets:  len(matched),
		Batches: batches,
	}
	if len(outcomes) > 0 {
		res.Accuracy = float64(correct) / float64(len(outcomes))
	}
	return res, nil
}

// SplitByMovie partitions tweets into those about the given movies and
// the rest — the train/test split of the Figure 5 SVM comparison (test on
// 5 movies, train on the other 195).
func SplitByMovie(tweets []textgen.Tweet, testMovies []string) (test, train []textgen.Tweet) {
	isTest := make(map[string]bool, len(testMovies))
	for _, m := range testMovies {
		isTest[m] = true
	}
	for _, t := range tweets {
		if isTest[t.Movie] {
			test = append(test, t)
		} else {
			train = append(train, t)
		}
	}
	return test, train
}

// Corpus flattens tweets into parallel document/label slices for the SVM
// baseline.
func Corpus(tweets []textgen.Tweet) (docs, labels []string) {
	docs = make([]string, len(tweets))
	labels = make([]string, len(tweets))
	for i, t := range tweets {
		docs[i] = t.Text
		labels[i] = t.Truth
	}
	return docs, labels
}
