package randx

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
	c := New(43)
	same := 0
	a2 := New(42)
	for i := 0; i < 100; i++ {
		if a2.Float64() == c.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("different seeds produced %d/100 identical draws", same)
	}
}

func TestSplitIndependentOfCallOrder(t *testing.T) {
	s1 := New(7)
	a := s1.Split("alpha")
	b := s1.Split("beta")
	s2 := New(7)
	b2 := s2.Split("beta")
	a2 := s2.Split("alpha")
	for i := 0; i < 50; i++ {
		if a.Float64() != a2.Float64() || b.Float64() != b2.Float64() {
			t.Fatal("Split streams must be a pure function of (seed, label)")
		}
	}
}

func TestSplitDistinctLabels(t *testing.T) {
	s := New(7)
	a, b := s.Split("x"), s.Split("y")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("distinct labels produced %d/100 identical draws", same)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	s := New(1)
	for i := 0; i < 10000; i++ {
		v := s.TruncNormal(0.7, 0.15, 0.25, 1.0)
		if v < 0.25 || v > 1.0 {
			t.Fatalf("TruncNormal out of bounds: %v", v)
		}
	}
}

func TestTruncNormalDegenerateFallback(t *testing.T) {
	s := New(1)
	// Mean far outside a tiny window: rejection gives up and clamps.
	v := s.TruncNormal(100, 0.001, 0, 1)
	if v < 0 || v > 1 {
		t.Fatalf("fallback clamp out of bounds: %v", v)
	}
}

func TestTruncNormalPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(1).TruncNormal(0, 1, 2, 1)
}

func TestBetaMoments(t *testing.T) {
	s := New(99)
	const n = 50000
	alpha, beta := 8.0, 3.0
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Beta(alpha, beta)
		if v < 0 || v > 1 {
			t.Fatalf("Beta draw out of [0,1]: %v", v)
		}
		sum += v
	}
	mean := sum / n
	want := alpha / (alpha + beta)
	if math.Abs(mean-want) > 0.01 {
		t.Errorf("Beta(8,3) sample mean %v, want ~%v", mean, want)
	}
}

func TestBetaSmallShapes(t *testing.T) {
	s := New(5)
	for i := 0; i < 2000; i++ {
		v := s.Beta(0.5, 0.5)
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("Beta(0.5,0.5) invalid draw: %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(3)
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exp(2.0)
		if v < 0 {
			t.Fatalf("Exp draw negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Exp(2) sample mean %v, want ~0.5", mean)
	}
}

func TestWeightedChoiceDistribution(t *testing.T) {
	s := New(11)
	weights := []float64{1, 3, 0, 6}
	counts := make([]int, 4)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.WeightedChoice(weights)]++
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight bin chosen %d times", counts[2])
	}
	for i, want := range []float64{0.1, 0.3, 0, 0.6} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("bin %d frequency %v, want ~%v", i, got, want)
		}
	}
}

func TestWeightedChoiceAllZeroUniform(t *testing.T) {
	s := New(12)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[s.WeightedChoice([]float64{0, 0, 0})]++
	}
	for i, c := range counts {
		if f := float64(c) / 30000; math.Abs(f-1.0/3) > 0.02 {
			t.Errorf("all-zero weights bin %d frequency %v, want ~1/3", i, f)
		}
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	s := New(1)
	for name, f := range map[string]func(){
		"empty":    func() { s.WeightedChoice(nil) },
		"negative": func() { s.WeightedChoice([]float64{1, -1}) },
		"nan":      func() { s.WeightedChoice([]float64{math.NaN()}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(8)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	Shuffle(s, xs)
	seen := make(map[int]bool)
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 10 {
		t.Errorf("shuffle lost elements: %v", xs)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	s := New(4)
	idx := s.SampleWithoutReplacement(10, 4)
	if len(idx) != 4 {
		t.Fatalf("got %d indices, want 4", len(idx))
	}
	seen := make(map[int]bool)
	for _, i := range idx {
		if i < 0 || i >= 10 || seen[i] {
			t.Fatalf("invalid or duplicate index %d in %v", i, idx)
		}
		seen[i] = true
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k > n")
		}
	}()
	s.SampleWithoutReplacement(3, 4)
}

func TestChoice(t *testing.T) {
	s := New(2)
	xs := []string{"a", "b", "c"}
	got := Choice(s, xs)
	if got != "a" && got != "b" && got != "c" {
		t.Errorf("Choice returned foreign element %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty Choice")
		}
	}()
	Choice(s, []int{})
}
