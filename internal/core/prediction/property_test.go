package prediction

import (
	"math/rand/v2"
	"testing"
)

// Property sweep for the Algorithm 2 planner over a seeded random grid:
//
//	(1) RequiredWorkers always returns an odd n >= 1;
//	(2) the returned n actually meets C (E[P_{n/2}] >= C) and is
//	    minimal (n-2 misses C);
//	(3) n is monotonically non-decreasing in the required accuracy C;
//	(4) n is monotonically non-increasing in the mean accuracy μ;
//	(5) the refined estimate never exceeds the Chernoff estimate.
func TestRequiredWorkersProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xcda5, 42))
	for trial := 0; trial < 300; trial++ {
		mu := 0.51 + 0.48*rng.Float64()
		c := 0.01 + 0.98*rng.Float64()
		m, err := New(mu)
		if err != nil {
			t.Fatalf("New(%v): %v", mu, err)
		}
		n, err := m.RequiredWorkers(c)
		if err != nil {
			t.Fatalf("RequiredWorkers(μ=%v, C=%v): %v", mu, c, err)
		}
		if n < 1 || n%2 == 0 {
			t.Fatalf("μ=%v C=%v: n = %d, want odd >= 1", mu, c, n)
		}
		if got := m.ExpectedAccuracy(n); got < c {
			t.Errorf("μ=%v C=%v: E[P] at n=%d is %v < C", mu, c, n, got)
		}
		if n > 2 {
			if got := m.ExpectedAccuracy(n - 2); got >= c {
				t.Errorf("μ=%v C=%v: n=%d not minimal, n-2 already has E[P]=%v", mu, c, n, got)
			}
		}
		cons, err := m.ConservativeWorkers(c)
		if err != nil {
			t.Fatal(err)
		}
		if n > cons {
			t.Errorf("μ=%v C=%v: refined n=%d exceeds Chernoff n=%d", mu, c, n, cons)
		}

		// (3) raise C, fix μ: need at least as many workers.
		c2 := c + (0.999-c)*rng.Float64()
		n2, err := m.RequiredWorkers(c2)
		if err != nil {
			t.Fatal(err)
		}
		if n2 < n {
			t.Errorf("monotonicity in C broken: n(C=%v)=%d > n(C=%v)=%d at μ=%v", c, n, c2, n2, mu)
		}

		// (4) raise μ, fix C: need at most as many workers.
		mu2 := mu + (0.999-mu)*rng.Float64()
		mBetter, err := New(mu2)
		if err != nil {
			t.Fatal(err)
		}
		n3, err := mBetter.RequiredWorkers(c)
		if err != nil {
			t.Fatal(err)
		}
		if n3 > n {
			t.Errorf("monotonicity in μ broken: n(μ=%v)=%d < n(μ=%v)=%d at C=%v", mu, n, mu2, n3, c)
		}
	}
}

// The planner must reject non-informative crowds and out-of-range C for
// every input, not just the documented examples.
func TestPlannerRejectsDegenerateInputs(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 100; trial++ {
		if _, err := New(rng.Float64() * 0.5); err == nil {
			t.Fatal("New accepted μ <= 0.5")
		}
		m, _ := New(0.75)
		for _, c := range []float64{0, 1, -rng.Float64(), 1 + rng.Float64()} {
			if _, err := m.RequiredWorkers(c); err == nil {
				t.Fatalf("RequiredWorkers accepted C=%v", c)
			}
		}
	}
}
