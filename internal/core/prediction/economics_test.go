package prediction

import (
	"math"
	"testing"
)

func TestEconomicsHITCost(t *testing.T) {
	e := Economics{WorkerFee: 0.01, PlatformFee: 0.002}
	if got := e.PerAssignment(); math.Abs(got-0.012) > 1e-12 {
		t.Errorf("PerAssignment = %v, want 0.012", got)
	}
	if got := e.HITCost(5); math.Abs(got-0.06) > 1e-12 {
		t.Errorf("HITCost(5) = %v, want 0.06", got)
	}
}

func TestEconomicsQueryCost(t *testing.T) {
	e := Economics{WorkerFee: 0.01, PlatformFee: 0.002}
	// Paper formula (m_c+m_s) n K w with one item per HIT.
	if got, want := e.QueryCost(3, 10, 4, 1), 0.012*3*10*4; math.Abs(got-want) > 1e-9 {
		t.Errorf("QueryCost per-item = %v, want %v", got, want)
	}
	// Batching 100 items per HIT: 40 items -> 1 HIT.
	if got, want := e.QueryCost(3, 10, 4, 100), 0.012*3; math.Abs(got-want) > 1e-9 {
		t.Errorf("QueryCost batched = %v, want %v", got, want)
	}
	// hitSize <= 0 falls back to per-item.
	if got, want := e.QueryCost(3, 10, 4, 0), e.QueryCost(3, 10, 4, 1); got != want {
		t.Errorf("QueryCost(hitSize=0) = %v, want %v", got, want)
	}
	// Ceiling: 101 items at 100/HIT -> 2 HITs.
	if got, want := e.QueryCost(1, 101, 1, 100), 0.012*2; math.Abs(got-want) > 1e-9 {
		t.Errorf("QueryCost ceil = %v, want %v", got, want)
	}
}

func TestEconomicsValidate(t *testing.T) {
	if err := DefaultEconomics.Validate(); err != nil {
		t.Errorf("DefaultEconomics invalid: %v", err)
	}
	bad := []Economics{
		{WorkerFee: -1},
		{PlatformFee: math.NaN()},
		{WorkerFee: math.Inf(1)},
	}
	for _, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", e)
		}
	}
}

func TestPlanCost(t *testing.T) {
	m := mustModel(t, 0.7)
	n, cost, err := m.PlanCost(DefaultEconomics, 0.75, 200, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("planned workers = %d, want 3", n)
	}
	// 200 items, 100/HIT -> 2 HITs * 3 workers * 0.012.
	if want := 0.012 * 3 * 2; math.Abs(cost-want) > 1e-9 {
		t.Errorf("cost = %v, want %v", cost, want)
	}
}

func TestPlanCostPropagatesErrors(t *testing.T) {
	m := mustModel(t, 0.7)
	if _, _, err := m.PlanCost(Economics{WorkerFee: -1}, 0.75, 1, 1, 1); err == nil {
		t.Error("invalid economics should fail PlanCost")
	}
	if _, _, err := m.PlanCost(DefaultEconomics, 1.5, 1, 1, 1); err == nil {
		t.Error("invalid C should fail PlanCost")
	}
}

func TestCostScalesWithAccuracy(t *testing.T) {
	// Higher required accuracy must never be cheaper.
	m := mustModel(t, 0.7)
	_, lo, err := m.PlanCost(DefaultEconomics, 0.7, 100, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	_, hi, err := m.PlanCost(DefaultEconomics, 0.95, 100, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if hi < lo {
		t.Errorf("cost(0.95)=%v < cost(0.7)=%v", hi, lo)
	}
}
