package metrics

import (
	"sync"
	"testing"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	r.Inc("a")
	r.Add("a", 2)
	r.Add("b", 5)
	if got := r.Get("a"); got != 3 {
		t.Errorf("Get(a) = %d, want 3", got)
	}
	if got := r.Get("missing"); got != 0 {
		t.Errorf("Get(missing) = %d, want 0", got)
	}
	snap := r.Snapshot()
	if snap["a"] != 3 || snap["b"] != 5 {
		t.Errorf("Snapshot = %v", snap)
	}
	snap["a"] = 99
	if r.Get("a") != 3 {
		t.Error("Snapshot aliases registry state")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Inc("a") // must not panic
	r.Add("a", 5)
	if r.Get("a") != 0 {
		t.Error("nil registry returned a count")
	}
	if got := r.Snapshot(); len(got) != 0 {
		t.Errorf("nil Snapshot = %v", got)
	}
	if got := r.Names(); got != nil {
		t.Errorf("nil Names = %v", got)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Inc("n")
			}
		}()
	}
	wg.Wait()
	if got := r.Get("n"); got != 8000 {
		t.Errorf("Get(n) = %d, want 8000", got)
	}
}

// TestRegistryConcurrentHammer drives many writers over overlapping
// counter names — including first-use creation races — interleaved with
// readers, and asserts not a single increment is lost. Run with -race
// in CI, this is the lock-free registry's correctness proof.
func TestRegistryConcurrentHammer(t *testing.T) {
	const (
		writers = 16
		perName = 2500
	)
	names := []string{"a", "b", "c", "d"}
	r := NewRegistry()
	var wg sync.WaitGroup
	stopReaders := make(chan struct{})
	// Concurrent readers: Snapshot/Get/Names must never block or corrupt
	// the writers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				_ = r.Snapshot()
				_ = r.Get("a")
				_ = r.Names()
			}
		}()
	}
	var writerWG sync.WaitGroup
	for g := 0; g < writers; g++ {
		writerWG.Add(1)
		go func(g int) {
			defer writerWG.Done()
			for i := 0; i < perName; i++ {
				for _, n := range names {
					if (g+i)%2 == 0 {
						r.Inc(n)
					} else {
						r.Add(n, 1)
					}
				}
			}
		}(g)
	}
	writerWG.Wait()
	close(stopReaders)
	wg.Wait()
	want := int64(writers * perName)
	for _, n := range names {
		if got := r.Get(n); got != want {
			t.Errorf("counter %q lost increments: got %d, want %d", n, got, want)
		}
	}
	snap := r.Snapshot()
	for _, n := range names {
		if snap[n] != want {
			t.Errorf("snapshot %q = %d, want %d", n, snap[n], want)
		}
	}
}
