// Package stream implements continuous query processing for CDAS: items
// (tweets, images) flow in, the executor's filter and buffer feed
// HIT-sized batches to the crowdsourcing engine as they fill, and the
// running summary is re-published after every batch — the live result
// view of the paper's Figure 4 ("the results are updated as new tweets
// are being streamed into TSA").
package stream

import (
	"errors"
	"fmt"

	"cdas/internal/core/sampling"
	"cdas/internal/crowd"
	"cdas/internal/engine"
	"cdas/internal/exec"
	"cdas/internal/jobs"
)

// Sink receives summary updates; *httpapi.Server satisfies it.
type Sink interface {
	UpdateFromSummary(name string, sum exec.Summary, progress float64, done bool)
}

// Convert turns a stream item into the crowd question the engine
// publishes. The application owns the mapping (TSA: tweet text over the
// sentiment domain; IT: candidate tags).
type Convert func(exec.Item) crowd.Question

// Config assembles a Processor.
type Config struct {
	// Name identifies the query at the sink.
	Name string
	// Query filters the stream (keywords + window).
	Query jobs.Query
	// Engine processes batches. Required.
	Engine *engine.Engine
	// Golden is the golden-question pool handed to every batch.
	Golden []crowd.Question
	// Convert maps items to questions. Required.
	Convert Convert
	// BatchSize is the number of filtered items per engine batch. It
	// defaults to, and must not exceed, the engine's real (non-golden)
	// slots per HIT.
	BatchSize int
	// ExpectedItems, when positive, drives the progress fraction
	// reported to the sink; otherwise progress stays 0 until Flush.
	ExpectedItems int
	// Sink receives updates; may be nil (summaries still accumulate).
	Sink Sink
	// OnOutcome, when set, observes every engine verdict as it folds
	// into the summary. The processor retains no outcomes itself (its
	// summary state is a constant-memory fold), so consumers needing
	// per-item verdicts — accuracy audits, window accounting — hook in
	// here.
	OnOutcome func(exec.Outcome)
}

// Processor is a single-query streaming pipeline. Not safe for
// concurrent use; one goroutine owns a Processor.
type Processor struct {
	cfg      Config
	buffer   *exec.Buffer
	fold     *exec.Fold
	texts    map[string]string // texts of buffered, not-yet-processed items only
	seen     int
	matched  int
	answered int
	done     bool
	// Spent accumulates engine batch costs.
	Spent float64
}

// NewProcessor validates the configuration and builds a Processor.
func NewProcessor(cfg Config) (*Processor, error) {
	if cfg.Engine == nil {
		return nil, errors.New("stream: engine is required")
	}
	if cfg.Convert == nil {
		return nil, errors.New("stream: convert function is required")
	}
	if cfg.Name == "" {
		return nil, errors.New("stream: query name is required")
	}
	if err := cfg.Query.Validate(); err != nil {
		return nil, err
	}
	ec := cfg.Engine.Config()
	realSlots := ec.HITSize - sampling.GoldenCount(ec.HITSize, ec.SamplingRate)
	if cfg.BatchSize == 0 {
		cfg.BatchSize = realSlots
	}
	if cfg.BatchSize < 1 {
		return nil, fmt.Errorf("stream: batch size must be positive, got %d", cfg.BatchSize)
	}
	if cfg.BatchSize > realSlots {
		return nil, fmt.Errorf("stream: batch size %d exceeds the engine's %d real slots per HIT",
			cfg.BatchSize, realSlots)
	}
	return &Processor{
		cfg:    cfg,
		buffer: exec.NewBuffer(cfg.BatchSize),
		fold:   exec.NewFold(cfg.Query.Domain, cfg.Query.Keywords...),
		texts:  make(map[string]string),
	}, nil
}

// ErrDone reports offers after Flush.
var ErrDone = errors.New("stream: processor already flushed")

// Offer feeds one stream item: items failing the query filter are
// dropped; matching items buffer up and trigger an engine batch when the
// buffer fills.
func (p *Processor) Offer(item exec.Item) error {
	if p.done {
		return ErrDone
	}
	p.seen++
	if !p.cfg.Query.Matches(item.Text, item.At) {
		return nil
	}
	p.matched++
	p.texts[item.ID] = item.Text
	if batch, full := p.buffer.Add(item); full {
		return p.process(batch)
	}
	return nil
}

// Flush processes any buffered remainder and marks the query done.
func (p *Processor) Flush() error {
	if p.done {
		return ErrDone
	}
	rest := p.buffer.Flush()
	if len(rest) > 0 {
		if err := p.process(rest); err != nil {
			return err
		}
	}
	p.done = true
	p.publish()
	return nil
}

// process sends one batch through the engine, folds the outcomes into
// the running summary and publishes it. Each item's text is evicted as
// its outcome folds — the fold keeps only the per-answer word tallies,
// so a long-running stream's memory stays bounded by the buffered batch
// instead of growing with every matched item ever seen.
func (p *Processor) process(items []exec.Item) error {
	questions := make([]crowd.Question, len(items))
	for i, it := range items {
		questions[i] = p.cfg.Convert(it)
	}
	res, err := p.cfg.Engine.ProcessBatch(questions, p.cfg.Golden)
	if err != nil {
		return fmt.Errorf("stream: batch: %w", err)
	}
	p.Spent += res.Cost
	for _, qr := range res.Results {
		id := qr.Question.ID
		oc := exec.Outcome{ItemID: id, Accepted: qr.Answer}
		p.fold.Observe(oc, p.texts[id])
		delete(p.texts, id)
		p.answered++
		if p.cfg.OnOutcome != nil {
			p.cfg.OnOutcome(oc)
		}
	}
	p.publish()
	return nil
}

func (p *Processor) publish() {
	if p.cfg.Sink == nil {
		return
	}
	p.cfg.Sink.UpdateFromSummary(p.cfg.Name, p.Summary(), p.Progress(), p.done)
}

// Summary returns the running percentages-plus-reasons presentation.
func (p *Processor) Summary() exec.Summary {
	return p.fold.Summary()
}

// Progress reports the fraction of expected items already answered, or 0
// when no expectation was configured (1 after Flush).
func (p *Processor) Progress() float64 {
	if p.done {
		return 1
	}
	if p.cfg.ExpectedItems <= 0 {
		return 0
	}
	f := float64(p.answered) / float64(p.cfg.ExpectedItems)
	if f > 1 {
		f = 1
	}
	return f
}

// Stats reports stream counters: items seen, items matching the filter,
// and items already answered.
func (p *Processor) Stats() (seen, matched, answered int) {
	return p.seen, p.matched, p.answered
}

// bufferedTexts reports how many item texts the processor currently
// retains — a test probe for the eviction contract (texts are held only
// while their items await a batch, never after their outcomes fold).
func (p *Processor) bufferedTexts() int { return len(p.texts) }

// Done reports whether Flush has run.
func (p *Processor) Done() bool { return p.done }
