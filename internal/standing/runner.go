package standing

import (
	"context"
	"errors"
	"fmt"

	"cdas/internal/exec"
	"cdas/internal/jobs"
	"cdas/internal/metrics"
	"cdas/internal/scheduler"
)

// MarkStore persists window high-water marks; satisfied by
// *jobs.Service. A nil store runs volatile (tests, ephemeral demos).
type MarkStore interface {
	// StreamMarkFor returns the stream's committed mark, if any.
	StreamMarkFor(name string) (jobs.StreamMark, bool)
	// CommitStreamMark durably records a closed window's mark; it must
	// reject window regressions.
	CommitStreamMark(name string, mark jobs.StreamMark) error
}

// PublishFunc receives stream progress for the live-results surface:
// one call per closed window (win != nil, done false) and one terminal
// call (win == nil, done true). sum is the running whole-stream fold.
type PublishFunc func(job jobs.Job, win *WindowResult, mark jobs.StreamMark, sum exec.Summary, progress float64, done bool)

// RunnerConfig wires NewRunner.
type RunnerConfig struct {
	// Scheduler coalesces window batches with every other job's.
	// Required.
	Scheduler *scheduler.Scheduler
	// Coord aligns window closes into scheduler generations. Required.
	Coord *Coordinator
	// Source builds each job's arrival stream; defaults to
	// TextgenSource.
	Source SourceFactory
	// Marks persists window marks across restarts; nil runs volatile.
	Marks MarkStore
	// Counters receives stream metrics. Optional.
	Counters *metrics.Registry
	// Publish receives per-window and terminal updates. Optional.
	Publish PublishFunc
}

// NewRunner builds the jobs.Runner for KindContinuous jobs: restore
// the committed window mark, stream the source through a windowed
// processor, and commit each closed window's mark before reporting it
// — so a kill -9 resumes after the last committed window without
// re-charging its spend. Cost reported to the job lifecycle is this
// attempt's spend only (total minus the resumed mark's), matching the
// lifecycle's baseCost+attempt accounting; a budget-refused window
// surfaces jobs.ErrParked with every prior window already durable.
func NewRunner(cfg RunnerConfig) jobs.Runner {
	if cfg.Source == nil {
		cfg.Source = TextgenSource
	}
	serviceAcc := cfg.Scheduler.ServiceAccuracy()
	return func(ctx context.Context, job jobs.Job, report func(progress, cost float64)) error {
		if job.Kind != jobs.KindContinuous || job.Stream == nil {
			return fmt.Errorf("%w: standing: job %q is not a continuous job", jobs.ErrPermanent, job.Name)
		}
		if job.Query.RequiredAccuracy > serviceAcc+1e-9 {
			return fmt.Errorf("%w: standing: job requires accuracy %v above the service level %v",
				jobs.ErrPermanent, job.Query.RequiredAccuracy, serviceAcc)
		}
		source, convert, err := cfg.Source(job)
		if err != nil {
			// Source construction is deterministic (bad spec, bad
			// domain): retrying replays it.
			return fmt.Errorf("%w: standing: %w", jobs.ErrPermanent, err)
		}
		mark := jobs.StreamMark{Window: -1}
		if cfg.Marks != nil {
			if m, ok := cfg.Marks.StreamMarkFor(job.Name); ok {
				mark = m
			}
		}
		startSpent := mark.Spent

		var proc *Processor
		progress := func() float64 {
			if job.Stream.Items <= 0 {
				return 0
			}
			f := float64(proc.Seen()) / float64(job.Stream.Items)
			if f > 1 {
				f = 1
			}
			return f
		}
		proc, err = NewProcessor(Config{
			Job:      job,
			Sched:    cfg.Scheduler,
			Tick:     func(ctx context.Context) error { return cfg.Coord.Tick(ctx, job.Name) },
			Convert:  convert,
			Counters: cfg.Counters,
			Resume:   mark,
			OnWindow: func(res WindowResult) error {
				m := proc.Mark()
				if cfg.Marks != nil {
					if err := cfg.Marks.CommitStreamMark(job.Name, m); err != nil {
						return fmt.Errorf("standing: committing window %d mark: %w", res.Window, err)
					}
				}
				// The mark is durable before the window is reported:
				// a crash after this point replays nothing.
				report(progress(), proc.Spent()-startSpent)
				if cfg.Publish != nil {
					cfg.Publish(job, &res, m, proc.Summary(), progress(), false)
				}
				return nil
			},
		})
		if err != nil {
			return fmt.Errorf("%w: %w", jobs.ErrPermanent, err)
		}

		cfg.Coord.Register(job.Name)
		defer cfg.Coord.Deregister(job.Name)
		for {
			it, ok := source.Next()
			if !ok {
				break
			}
			if err := proc.Offer(ctx, it); err != nil {
				return streamErr(ctx, err, proc, startSpent, progress, report)
			}
		}
		if err := proc.Drain(ctx); err != nil {
			return streamErr(ctx, err, proc, startSpent, progress, report)
		}
		report(1, proc.Spent()-startSpent)
		if cfg.Publish != nil {
			cfg.Publish(job, nil, proc.Mark(), proc.Summary(), 1, true)
		}
		return nil
	}
}

// streamErr maps a mid-stream failure onto the dispatcher's error
// contract: budget refusals park (resumable from the committed mark),
// cancellation propagates as-is, and anything else fails after
// reporting the partial spend this attempt accrued.
func streamErr(ctx context.Context, err error, proc *Processor, startSpent float64, progress func() float64, report func(progress, cost float64)) error {
	if errors.Is(err, scheduler.ErrParked) {
		// No cost report: Park refunds the attempt's lifecycle cost by
		// design. The refused window's spend (if any) stays visible in
		// the durable budget ledger and the committed stream mark.
		return fmt.Errorf("%w: %w", jobs.ErrParked, err)
	}
	if errors.Is(err, ctx.Err()) && ctx.Err() != nil {
		return err
	}
	if spent := proc.Spent() - startSpent; spent > 0 {
		report(progress(), spent)
	}
	return err
}
