package jobs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"cdas/internal/metrics"
)

func openTestService(t *testing.T, dir string, mutate ...func(*ServiceConfig)) *Service {
	t.Helper()
	cfg := ServiceConfig{Dir: dir}
	for _, f := range mutate {
		f(&cfg)
	}
	s, err := OpenService(cfg)
	if err != nil {
		t.Fatalf("OpenService: %v", err)
	}
	return s
}

func TestServiceSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := openTestService(t, dir)
	if !s.Durable() {
		t.Fatal("service with Dir not durable")
	}
	if _, err := s.Submit(testJob("done-job")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(testJob("pending-job")); err != nil {
		t.Fatal(err)
	}
	st, ok := s.Claim()
	if !ok || st.Job.Name != "done-job" {
		t.Fatalf("claimed %v", st)
	}
	if err := s.Progress("done-job", 0.5, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := s.Complete("done-job", 3.25); err != nil {
		t.Fatal(err)
	}
	// Simulated kill -9: Close only releases the store lock and writes
	// nothing, so the on-disk image is exactly what a dead process
	// leaves behind.
	s.Close()
	s2 := openTestService(t, dir)
	defer s2.Close()
	st, ok = s2.Status("done-job")
	if !ok || st.State != StateDone || st.Cost != 3.25 || st.Progress != 1 {
		t.Errorf("done-job after replay: %+v", st)
	}
	st, ok = s2.Status("pending-job")
	if !ok || st.State != StatePending {
		t.Errorf("pending-job after replay: %+v", st)
	}
	if got := s2.Resumed(); len(got) != 0 {
		t.Errorf("Resumed = %v, want none (no job was running)", got)
	}
	// Query validation data survives too.
	if st.Job.Query.RequiredAccuracy != 0.95 || len(st.Job.Query.Keywords) != 2 {
		t.Errorf("query fields lost in replay: %+v", st.Job.Query)
	}
}

func TestServiceResumesRunningJobs(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	s := openTestService(t, dir)
	s.Submit(testJob("interrupted"))
	s.Claim()
	s.Progress("interrupted", 0.7, 2.0)
	// kill -9 while running (Close writes nothing; it only frees the
	// store lock so the next incarnation can open the same image).
	s.Close()
	s2 := openTestService(t, dir, func(c *ServiceConfig) { c.Counters = reg })
	defer s2.Close()
	if got := s2.Resumed(); len(got) != 1 || got[0] != "interrupted" {
		t.Fatalf("Resumed = %v", got)
	}
	st, _ := s2.Status("interrupted")
	if st.State != StatePending {
		t.Errorf("resumed job state = %s, want pending", st.State)
	}
	if st.Attempts != 1 {
		t.Errorf("resume burned an attempt: %d", st.Attempts)
	}
	if st.Cost != 2.0 {
		t.Errorf("cost of crashed attempt lost: %v", st.Cost)
	}
	if reg.Get(metrics.CounterJobsResumed) != 1 {
		t.Error("resume counter not incremented")
	}
	// The resumed job is claimable and completable.
	st, ok := s2.Claim()
	if !ok || st.Job.Name != "interrupted" || st.Attempts != 2 {
		t.Fatalf("reclaim: %+v ok=%v", st, ok)
	}
	if err := s2.Complete("interrupted", 1.0); err != nil {
		t.Fatal(err)
	}
	st, _ = s2.Status("interrupted")
	// Cost = crashed attempt's 2.0 + finishing attempt's 1.0.
	if st.Cost != 3.0 {
		t.Errorf("final cost = %v, want 3.0", st.Cost)
	}
}

func TestServiceSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	s := openTestService(t, dir, func(c *ServiceConfig) {
		c.SnapshotEvery = 5
		c.Counters = reg
	})
	for i := 0; i < 4; i++ {
		name := string(rune('a'+i)) + "-job"
		s.Submit(testJob(name))
		s.Claim()
		s.Complete(name, 1)
	}
	s.Close()
	if reg.Get(metrics.CounterWALSnapshots) == 0 {
		t.Fatal("no snapshot written despite SnapshotEvery=5 and 12 events")
	}
	// The WAL must have been compacted below the full event count.
	wal, err := os.ReadFile(filepath.Join(dir, "wal.dat"))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := os.ReadFile(filepath.Join(dir, "snapshot.dat"))
	if err != nil || len(snap) == 0 {
		t.Fatalf("snapshot file missing: %v", err)
	}
	if len(wal) >= len(snap)*3 {
		t.Errorf("WAL looks uncompacted: %d bytes vs snapshot %d", len(wal), len(snap))
	}
	// Full state survives the compaction boundary.
	s2 := openTestService(t, dir)
	defer s2.Close()
	sts := s2.Statuses()
	if len(sts) != 4 {
		t.Fatalf("replayed %d jobs, want 4", len(sts))
	}
	for _, st := range sts {
		if st.State != StateDone || st.Cost != 1 {
			t.Errorf("replayed %s: %+v", st.Job.Name, st)
		}
	}
	// Terminal jobs must not be claimable after replay (no double runs).
	if st, ok := s2.Claim(); ok {
		t.Errorf("claimed terminal job %q after replay", st.Job.Name)
	}
}

func TestServiceVolatileMode(t *testing.T) {
	s := openTestService(t, "")
	defer s.Close()
	if s.Durable() {
		t.Error("empty Dir reported durable")
	}
	if _, err := s.Submit(testJob("j")); err != nil {
		t.Fatal(err)
	}
	st, ok := s.Claim()
	if !ok || st.Job.Name != "j" {
		t.Fatalf("claim: %+v", st)
	}
	if err := s.Complete("j", 0); err != nil {
		t.Fatal(err)
	}
}

func TestServiceDuplicateSubmitRejected(t *testing.T) {
	s := openTestService(t, t.TempDir())
	defer s.Close()
	s.Submit(testJob("j"))
	if _, err := s.Submit(testJob("j")); !errors.Is(err, ErrDuplicateJob) {
		t.Errorf("duplicate submit err = %v", err)
	}
}

func TestServiceWakeSignal(t *testing.T) {
	s := openTestService(t, "")
	defer s.Close()
	s.Submit(testJob("j"))
	select {
	case <-s.Wake():
	default:
		t.Fatal("Submit did not signal the wake channel")
	}
}

// TestServiceRevertsOnLogFailure: a transition the log refuses must
// not stick in memory — the API would otherwise acknowledge state the
// WAL never saw.
func TestServiceRevertsOnLogFailure(t *testing.T) {
	dir := t.TempDir()
	s := openTestService(t, dir)
	s.Submit(testJob("j"))
	if _, ok := s.Claim(); !ok {
		t.Fatal("nothing claimed")
	}
	s.Progress("j", 0.25, 0.5)
	// Kill the log underneath the service: every append now fails.
	s.Close()
	if err := s.Complete("j", 9.9); err == nil {
		t.Fatal("Complete succeeded on a closed log")
	}
	got, _ := s.Status("j")
	if got.State != StateRunning || got.Cost != 0.5 || got.Progress != 0.25 {
		t.Errorf("state after failed commit = %+v, want the pre-Complete running record", got)
	}
	// Claim rollback: the failed-append path must also revert attempts.
	s2 := openTestService(t, "")
	s2.Submit(testJob("k"))
	s2.log = s.log // closed log: appends fail
	if _, ok := s2.Claim(); ok {
		t.Error("Claim succeeded against a closed log")
	}
	got, _ = s2.Status("k")
	if got.State != StatePending || got.Attempts != 0 {
		t.Errorf("after failed claim: %+v, want untouched pending record", got)
	}
}

func TestServiceCancelIsDurable(t *testing.T) {
	dir := t.TempDir()
	s := openTestService(t, dir)
	s.Submit(testJob("j"))
	if err := s.Cancel("j"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openTestService(t, dir)
	defer s2.Close()
	st, _ := s2.Status("j")
	if st.State != StateCancelled {
		t.Errorf("cancelled state lost in replay: %s", st.State)
	}
	if _, ok := s2.Claim(); ok {
		t.Error("cancelled job claimable after replay")
	}
}
