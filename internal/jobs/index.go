// In-memory secondary indexes over the Manager's status table. The
// Manager's map gives O(1) point lookups but nothing else; every list
// endpoint used to sort the whole table per request and Claim scanned
// it linearly. The indexes here make those queries range-reads:
//
//   - a name-ordered skiplist over all jobs (primary iteration order,
//     shared by pagination),
//   - one name-ordered skiplist per lifecycle state (state-filtered
//     pagination without touching other states' records),
//   - one per tenant (tenant-filtered pagination),
//   - a min-heap of pending jobs keyed by FIFO seq (O(log n) Claim
//     instead of a full-table scan).
//
// Every mutation path in the Manager funnels through enterIndexes /
// leaveIndexes / moveState below, so the indexes cannot drift from the
// table; the property tests drive random op interleavings and assert
// exactly that.
package jobs

import (
	"container/heap"
	"math/rand"
)

// skipMaxLevel bounds the skiplist height; 2^14 expected capacity per
// level-14 node is far above any realistic in-memory job count.
const skipMaxLevel = 14

type skipNode struct {
	name string
	next [skipMaxLevel]*skipNode
}

// nameIndex is a name-ordered set of job names: an ordinary skiplist,
// chosen over a sorted slice so restores of very large stores insert in
// O(log n) regardless of arrival order.
type nameIndex struct {
	head  skipNode
	level int
	n     int
	rng   *rand.Rand
}

func newNameIndex(rng *rand.Rand) *nameIndex {
	return &nameIndex{level: 1, rng: rng}
}

func (ix *nameIndex) randomLevel() int {
	lvl := 1
	for lvl < skipMaxLevel && ix.rng.Intn(4) == 0 {
		lvl++
	}
	return lvl
}

// insert adds name (no-op when present).
func (ix *nameIndex) insert(name string) {
	var update [skipMaxLevel]*skipNode
	x := &ix.head
	for i := ix.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].name < name {
			x = x.next[i]
		}
		update[i] = x
	}
	if next := update[0].next[0]; next != nil && next.name == name {
		return
	}
	lvl := ix.randomLevel()
	for i := ix.level; i < lvl; i++ {
		update[i] = &ix.head
	}
	if lvl > ix.level {
		ix.level = lvl
	}
	node := &skipNode{name: name}
	for i := 0; i < lvl; i++ {
		node.next[i] = update[i].next[i]
		update[i].next[i] = node
	}
	ix.n++
}

// remove deletes name (no-op when absent).
func (ix *nameIndex) remove(name string) {
	var update [skipMaxLevel]*skipNode
	x := &ix.head
	for i := ix.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].name < name {
			x = x.next[i]
		}
		update[i] = x
	}
	target := update[0].next[0]
	if target == nil || target.name != name {
		return
	}
	for i := 0; i < ix.level; i++ {
		if update[i].next[i] == target {
			update[i].next[i] = target.next[i]
		}
	}
	for ix.level > 1 && ix.head.next[ix.level-1] == nil {
		ix.level--
	}
	ix.n--
}

// ascend walks names > after in ascending order until fn returns false.
func (ix *nameIndex) ascend(after string, fn func(name string) bool) {
	x := &ix.head
	for i := ix.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].name <= after {
			x = x.next[i]
		}
	}
	for x = x.next[0]; x != nil; x = x.next[0] {
		if !fn(x.name) {
			return
		}
	}
}

func (ix *nameIndex) len() int { return ix.n }

// pendingEntry is one claimable job in FIFO order.
type pendingEntry struct {
	seq  uint64
	name string
}

// pendingHeap orders claimable jobs by submission seq. Entries are
// lazily invalidated: a pop must be checked against the live record
// (still pending, same seq) before use, because jobs can leave Pending
// without visiting the heap (e.g. cancel) and re-enter it (requeue)
// while a stale entry is still queued.
type pendingHeap []pendingEntry

func (h pendingHeap) Len() int            { return len(h) }
func (h pendingHeap) Less(i, j int) bool  { return h[i].seq < h[j].seq }
func (h pendingHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pendingHeap) Push(x interface{}) { *h = append(*h, x.(pendingEntry)) }
func (h *pendingHeap) Pop() interface{} {
	old := *h
	e := old[len(old)-1]
	*h = old[:len(old)-1]
	return e
}

// indexes is the Manager's index bundle. All access is under the
// Manager's lock.
type indexes struct {
	primary  *nameIndex
	byState  map[State]*nameIndex
	byTenant map[string]*nameIndex
	pending  pendingHeap
	rng      *rand.Rand
}

func newIndexes() *indexes {
	// A fixed seed keeps skiplist shapes reproducible run to run; the
	// seed only influences performance, never results.
	rng := rand.New(rand.NewSource(0x5d1f))
	return &indexes{
		primary:  newNameIndex(rng),
		byState:  make(map[State]*nameIndex),
		byTenant: make(map[string]*nameIndex),
		rng:      rng,
	}
}

func (ix *indexes) stateIndex(s State) *nameIndex {
	idx, ok := ix.byState[s]
	if !ok {
		idx = newNameIndex(ix.rng)
		ix.byState[s] = idx
	}
	return idx
}

func (ix *indexes) tenantIndex(t string) *nameIndex {
	idx, ok := ix.byTenant[t]
	if !ok {
		idx = newNameIndex(ix.rng)
		ix.byTenant[t] = idx
	}
	return idx
}

// enter indexes a record that just joined the table (or was restored
// into it). Idempotent: skiplist inserts ignore duplicates and the
// pending heap is lazily validated.
func (ix *indexes) enter(rec *Status) {
	ix.primary.insert(rec.Job.Name)
	ix.stateIndex(rec.State).insert(rec.Job.Name)
	if rec.Job.Tenant != "" {
		ix.tenantIndex(rec.Job.Tenant).insert(rec.Job.Name)
	}
	if rec.State == StatePending {
		heap.Push(&ix.pending, pendingEntry{seq: rec.seq, name: rec.Job.Name})
	}
}

// leave removes a record that left the table.
func (ix *indexes) leave(rec *Status) {
	ix.primary.remove(rec.Job.Name)
	ix.stateIndex(rec.State).remove(rec.Job.Name)
	if rec.Job.Tenant != "" {
		ix.tenantIndex(rec.Job.Tenant).remove(rec.Job.Name)
	}
	// A stale pending entry, if any, dies at the next pop's liveness
	// check.
}

// move re-files a record whose state changed from old. The caller has
// already updated rec.State.
func (ix *indexes) move(rec *Status, old State) {
	if old == rec.State {
		return
	}
	ix.stateIndex(old).remove(rec.Job.Name)
	ix.stateIndex(rec.State).insert(rec.Job.Name)
	if rec.State == StatePending {
		heap.Push(&ix.pending, pendingEntry{seq: rec.seq, name: rec.Job.Name})
	}
}

// popPending returns the oldest genuinely-pending job, discarding stale
// heap entries. recs is the live table; the caller holds the lock.
func (ix *indexes) popPending(recs map[string]*Status) (*Status, bool) {
	for ix.pending.Len() > 0 {
		e := heap.Pop(&ix.pending).(pendingEntry)
		rec, ok := recs[e.name]
		if ok && rec.State == StatePending && rec.seq == e.seq {
			return rec, true
		}
	}
	return nil, false
}

// StatusesPage returns up to limit lifecycle records in name order,
// strictly after the given name, optionally filtered to one state
// and/or tenant; more reports whether records beyond the page remain.
// The scan is an index range-read: the narrowest applicable index is
// walked and only matching records are touched.
func (m *Manager) StatusesPage(after string, limit int, state State, tenant string) (page []Status, more bool) {
	if limit <= 0 {
		return nil, false
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	// Plain map reads only: lazily-created indexes must not be
	// materialised under the read lock.
	var idx *nameIndex
	switch {
	case state != "":
		idx = m.ix.byState[state]
	case tenant != "":
		idx = m.ix.byTenant[tenant]
	default:
		idx = m.ix.primary
	}
	if idx == nil {
		return nil, false
	}
	idx.ascend(after, func(name string) bool {
		rec := m.recs[name]
		if rec == nil {
			return true
		}
		if state != "" && rec.State != state {
			return true
		}
		if tenant != "" && rec.Job.Tenant != tenant {
			return true
		}
		if len(page) == limit {
			more = true
			return false
		}
		page = append(page, *rec)
		return true
	})
	return page, more
}
