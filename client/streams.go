// Stream methods: the SDK side of /v1/streams. Standing (continuous)
// queries are submitted like jobs, but their results arrive window by
// window — WatchStream turns the server's per-window SSE events into a
// channel a caller can range over.
package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"cdas/api"
)

// streamPath escapes a stream name into its /v1/streams/{name} path.
func streamPath(name string) string { return "/v1/streams/" + url.PathEscape(name) }

// SubmitStream registers a standing query and returns its initial
// status (no windows closed yet).
func (c *Client) SubmitStream(ctx context.Context, sub api.StreamSubmission) (api.StreamStatus, error) {
	var st api.StreamStatus
	err := c.do(ctx, http.MethodPost, "/v1/streams", sub, &st)
	return st, err
}

// Stream fetches one standing query's window accounting and live
// results.
func (c *Client) Stream(ctx context.Context, name string) (api.StreamStatus, error) {
	var st api.StreamStatus
	err := c.do(ctx, http.MethodGet, streamPath(name), nil, &st)
	return st, err
}

// ListStreams lists every standing query's status.
func (c *Client) ListStreams(ctx context.Context) ([]api.StreamStatus, error) {
	var list api.StreamList
	err := c.do(ctx, http.MethodGet, "/v1/streams", nil, &list)
	return list.Streams, err
}

// CancelStream cancels a standing query and returns its final record.
func (c *Client) CancelStream(ctx context.Context, name string) (api.StreamStatus, error) {
	var st api.StreamStatus
	err := c.do(ctx, http.MethodDelete, streamPath(name), nil, &st)
	return st, err
}

// StreamEvent is one delivery from WatchStream's channel.
type StreamEvent struct {
	// ID is the stream state's revision number (the SSE event id).
	ID int64
	// Type is api.EventWindow when a window just closed, api.EventState
	// for replayed or synthesized snapshots, and api.EventDone for the
	// terminal one.
	Type string
	// Event carries the stream status and, on window events, the closed
	// window's accounting.
	Event api.StreamEvent
	// Err, when non-nil, reports why the watch ended early (transport
	// drop, decode failure, cancelled context). It is always the last
	// event on the channel.
	Err error
}

// WatchStream subscribes to a standing query's SSE stream and returns
// a channel of its window closes. The channel closes after the
// terminal "done" event, after a delivery with Err set, or once ctx is
// cancelled; the caller should consume until close. The first delivery
// is the current state (unless suppressed via WatchOptions.LastEventID),
// so a watcher renders immediately instead of waiting for the next
// window to close.
func (c *Client) WatchStream(ctx context.Context, name string, opts ...WatchOptions) (<-chan StreamEvent, error) {
	path := streamPath(name) + "/events"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+path, nil)
	if err != nil {
		return nil, fmt.Errorf("client: building watch request: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("Cache-Control", "no-cache")
	for _, o := range opts {
		if o.LastEventID > 0 {
			req.Header.Set("Last-Event-ID", strconv.FormatInt(o.LastEventID, 10))
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: watch stream %s: %w", name, err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		resp.Body.Close()
		return nil, fmt.Errorf("client: watch stream %s: unexpected Content-Type %q", name, ct)
	}

	out := make(chan StreamEvent)
	go func() {
		defer close(out)
		defer resp.Body.Close()
		err := parseSSEFrames(resp.Body, func(fr sseFrame) (bool, error) {
			ev := StreamEvent{ID: fr.id, Type: fr.kind}
			if ev.Type == "" {
				ev.Type = api.EventState
			}
			if err := json.Unmarshal([]byte(fr.data), &ev.Event); err != nil {
				return false, fmt.Errorf("client: decoding SSE data: %w", err)
			}
			select {
			case out <- ev:
			case <-ctx.Done():
				return false, nil
			}
			return ev.Type != api.EventDone, nil
		})
		if err != nil && ctx.Err() == nil {
			select {
			case out <- StreamEvent{Err: err}:
			case <-ctx.Done():
			}
		}
	}()
	return out, nil
}
