// Enumeration methods: the SDK side of /v1/enumerations. Enumeration
// jobs are submitted through SubmitJob with kind api.KindEnumeration
// and an api.EnumSpec block; these methods read the growing result set
// back, and WatchEnumeration turns the server's per-batch SSE events
// into a channel a caller can range over.
package client

import (
	"context"
	"encoding/json"
	"fmt"
	"iter"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"cdas/api"
)

// enumPath escapes a job name into its /v1/enumerations/{name} path.
func enumPath(name string) string { return "/v1/enumerations/" + url.PathEscape(name) }

// Enumeration fetches one enumeration's result set, live Chao92
// estimate and stop state.
func (c *Client) Enumeration(ctx context.Context, name string) (api.EnumStatus, error) {
	var st api.EnumStatus
	err := c.do(ctx, http.MethodGet, enumPath(name), nil, &st)
	return st, err
}

// ListEnumerations fetches one page of the enumeration list. The list
// grammar is shared with ListJobs (Limit, PageToken, State); Kind is
// ignored — the surface is enumeration-only.
func (c *Client) ListEnumerations(ctx context.Context, opts ListJobsOptions) (api.EnumList, error) {
	opts.Kind = ""
	var page api.EnumList
	err := c.do(ctx, http.MethodGet, "/v1/enumerations"+opts.query(), nil, &page)
	return page, err
}

// Enumerations iterates every enumeration matching opts, fetching
// pages as needed. A transport or server error is yielded once as the
// final element.
func (c *Client) Enumerations(ctx context.Context, opts ListJobsOptions) iter.Seq2[api.EnumStatus, error] {
	return func(yield func(api.EnumStatus, error) bool) {
		for {
			page, err := c.ListEnumerations(ctx, opts)
			if err != nil {
				yield(api.EnumStatus{}, err)
				return
			}
			for _, st := range page.Enumerations {
				if !yield(st, nil) {
					return
				}
			}
			if page.NextPageToken == "" {
				return
			}
			opts.PageToken = page.NextPageToken
		}
	}
}

// EnumWatchEvent is one delivery from WatchEnumeration's channel.
type EnumWatchEvent struct {
	// ID is the enumeration state's revision number (the SSE event id).
	ID int64
	// Type is api.EventBatch when a HIT batch just completed,
	// api.EventState for replayed or synthesized snapshots, and
	// api.EventDone for the terminal one.
	Type string
	// Event carries the status snapshot and, on batch events, the batch
	// that just completed with its newly discovered items.
	Event api.EnumEvent
	// Err, when non-nil, reports why the watch ended early (transport
	// drop, decode failure, cancelled context). It is always the last
	// event on the channel.
	Err error
}

// WatchEnumeration subscribes to an enumeration's SSE stream and
// returns a channel of its batch completions. The channel closes after
// the terminal "done" event, after a delivery with Err set, or once
// ctx is cancelled; the caller should consume until close. The first
// delivery is the current state (unless suppressed via
// WatchOptions.LastEventID), so a watcher renders immediately instead
// of waiting for the next batch.
func (c *Client) WatchEnumeration(ctx context.Context, name string, opts ...WatchOptions) (<-chan EnumWatchEvent, error) {
	path := enumPath(name) + "/events"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+path, nil)
	if err != nil {
		return nil, fmt.Errorf("client: building watch request: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("Cache-Control", "no-cache")
	for _, o := range opts {
		if o.LastEventID > 0 {
			req.Header.Set("Last-Event-ID", strconv.FormatInt(o.LastEventID, 10))
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: watch enumeration %s: %w", name, err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		resp.Body.Close()
		return nil, fmt.Errorf("client: watch enumeration %s: unexpected Content-Type %q", name, ct)
	}

	out := make(chan EnumWatchEvent)
	go func() {
		defer close(out)
		defer resp.Body.Close()
		err := parseSSEFrames(resp.Body, func(fr sseFrame) (bool, error) {
			ev := EnumWatchEvent{ID: fr.id, Type: fr.kind}
			if ev.Type == "" {
				ev.Type = api.EventState
			}
			if err := json.Unmarshal([]byte(fr.data), &ev.Event); err != nil {
				return false, fmt.Errorf("client: decoding SSE data: %w", err)
			}
			select {
			case out <- ev:
			case <-ctx.Done():
				return false, nil
			}
			return ev.Type != api.EventDone, nil
		})
		if err != nil && ctx.Err() == nil {
			select {
			case out <- EnumWatchEvent{Err: err}:
			case <-ctx.Done():
			}
		}
	}()
	return out, nil
}
