// The harness: boots the full CDAS stack in-process (or targets a
// remote server) and drives the workload purely through the cdas/client
// SDK — exactly the traffic a fleet of real tenants would produce:
// POST /v1/jobs submissions on an arrival process, SSE watchers on the
// live result streams, and job-list polling for settlement.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cdas/api"
	"cdas/client"
	"cdas/internal/crowd"
	"cdas/internal/engine"
	"cdas/internal/enum"
	"cdas/internal/httpapi"
	"cdas/internal/jobs"
	"cdas/internal/metrics"
	"cdas/internal/scheduler"
	"cdas/internal/standing"
	"cdas/internal/tsa"
)

// Config wires a Run.
type Config struct {
	// Profile is the workload shape (validated by Run).
	Profile Profile
	// Addr, when non-empty, targets a running cdas-server
	// (scheme://host:port) instead of booting one in-process. Remote
	// runs are never Deterministic — the harness cannot coordinate the
	// remote scheduler's flush generations.
	Addr string
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
	// DrainTimeout bounds the graceful SSE-watcher drain on shutdown or
	// interruption (default 5s).
	DrainTimeout time.Duration
	// PollInterval is the settlement poll cadence (default 2ms
	// in-process, 50ms remote).
	PollInterval time.Duration
	// StallTimeout aborts the run when no job settles and no generation
	// flushes for this long (default 60s) — the partial report then
	// still lands instead of the harness hanging.
	StallTimeout time.Duration
}

// ErrInterrupted reports a run cut short by context cancellation or
// deadline; the returned report is partial.
var ErrInterrupted = errors.New("loadgen: run interrupted")

// ErrStalled reports a run aborted by the stall detector.
var ErrStalled = errors.New("loadgen: no progress")

// Run executes the profile and returns its report. On interruption
// (ctx cancelled or deadline) the SSE watchers are drained with a
// deadline and a partial report is returned alongside ErrInterrupted —
// callers get data, not a hang.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	p, err := cfg.Profile.Validate()
	if err != nil {
		return nil, err
	}
	w, err := BuildWorkload(p)
	if err != nil {
		return nil, err
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	drain := cfg.DrainTimeout
	if drain <= 0 {
		drain = 5 * time.Second
	}
	stall := cfg.StallTimeout
	if stall <= 0 {
		stall = 60 * time.Second
	}

	base := cfg.Addr
	effDisp := p.Dispatchers
	var srv *inprocServer
	if base == "" {
		if p.Deterministic() && effDisp < p.Tenants {
			// A closed-loop wave must be able to block in one generation
			// entirely; with a wider pool the -dispatchers flag changes
			// goroutine scheduling only, never batch composition.
			effDisp = p.Tenants
		}
		srv, err = startInproc(p, w, effDisp)
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		base = srv.base
		logf("loadgen: in-process server on %s (%d dispatchers)", base, effDisp)
	}
	poll := cfg.PollInterval
	if poll <= 0 {
		// In-process polls are loopback-cheap; keep them tight so short
		// gated runs aren't quantised by the poll cadence.
		poll = 2 * time.Millisecond
		if srv == nil {
			poll = 50 * time.Millisecond
		}
	}

	rep := newReport(p, cfg.Addr, effDisp, srv != nil)
	c := client.New(base)
	if err := waitHealthy(ctx, c); err != nil {
		return nil, err
	}
	schedBase, schedOK := baselineScheduler(ctx, c)

	rec := &recorder{
		submitStart: make(map[string]time.Time),
		settled:     make(map[string]time.Time),
		watcherE2E:  make(map[string]time.Duration),
	}
	watchCtx, stopWatchers := context.WithCancel(ctx)
	defer stopWatchers()
	var watchers sync.WaitGroup

	start := time.Now()
	var runErr error
rounds:
	for round := 0; round < p.Rounds; round++ {
		roundStart := time.Now()
		var names []string
		for _, t := range w.Tenants {
			if t.ArrivalOffset > 0 {
				if !sleepUntil(ctx, roundStart.Add(t.ArrivalOffset)) {
					runErr = ctx.Err()
					break rounds
				}
			}
			if ctx.Err() != nil {
				runErr = ctx.Err()
				break rounds
			}
			name := w.JobName(t, round)
			t0 := time.Now()
			switch {
			case p.Stream:
				_, err = c.SubmitStream(ctx, w.StreamSubmission(t))
			case p.Enum:
				_, err = c.SubmitJob(ctx, w.EnumSubmission(t))
			default:
				_, err = c.SubmitJob(ctx, w.Submission(t, round))
			}
			if err != nil {
				if ctx.Err() != nil {
					runErr = ctx.Err()
					break rounds
				}
				rec.addError(fmt.Sprintf("submit %s: %v", name, err))
				continue
			}
			rec.recordSubmit(name, t0, time.Since(t0))
			names = append(names, name)
			if t.Watcher {
				rec.watchers.Add(1)
				rec.openWatchers.Add(1)
				watchers.Add(1)
				go func() {
					defer watchers.Done()
					defer rec.openWatchers.Add(-1)
					switch {
					case p.Stream:
						watchStream(watchCtx, c, name, t0, rec)
					case p.Enum:
						watchEnum(watchCtx, c, name, t0, rec)
					default:
						watchJob(watchCtx, c, name, t0, rec)
					}
				}()
			}
		}
		logf("loadgen: round %d: %d jobs submitted, waiting for settlement", round, len(names))
		if err := awaitSettled(ctx, c, srv, names, rec, poll, stall); err != nil {
			runErr = err
			break rounds
		}
	}
	wall := time.Since(start)

	// Graceful drain: cancel the watchers and give them a bounded window
	// to unwind — an unfinished SSE stream must never hang the harness.
	stopWatchers()
	drained := make(chan struct{})
	go func() { watchers.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(drain):
		rec.addError(fmt.Sprintf("%d SSE watcher(s) still open after %v drain deadline", rec.openWatchers.Load(), drain))
	}

	// Final sweep on a fresh context: a cancelled run still reports
	// whatever settled.
	sweepCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	assembleReport(sweepCtx, c, rep, w, rec, wall, schedBase, schedOK)
	if runErr != nil {
		rep.Partial = true
		if errors.Is(runErr, ErrStalled) {
			return rep, runErr
		}
		return rep, fmt.Errorf("%w: %v", ErrInterrupted, runErr)
	}
	return rep, nil
}

// recorder accumulates run observations under one lock (the SDK calls
// themselves dominate; this is not a hot path).
type recorder struct {
	mu          sync.Mutex
	submitMS    []float64
	submitStart map[string]time.Time
	settled     map[string]time.Time
	watcherE2E  map[string]time.Duration
	errs        []string
	sseEvents   atomic.Int64
	// watchers counts every watcher ever started (the report's total);
	// openWatchers tracks the ones still running (the drain-deadline
	// diagnostic).
	watchers     atomic.Int64
	openWatchers atomic.Int64
}

func (r *recorder) recordSubmit(name string, t0 time.Time, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.submitStart[name] = t0
	r.submitMS = append(r.submitMS, float64(d)/float64(time.Millisecond))
}

func (r *recorder) recordSettled(name string, at time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.settled[name]; ok {
		return false
	}
	r.settled[name] = at
	return true
}

func (r *recorder) recordWatcherDone(name string, e2e time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.watcherE2E[name]; !ok {
		r.watcherE2E[name] = e2e
	}
}

const maxReportedErrors = 20

func (r *recorder) addError(msg string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.errs) < maxReportedErrors {
		r.errs = append(r.errs, msg)
	}
}

// settledState reports whether a job stopped consuming the crowd: the
// terminal states plus Parked (resumable, but inert until unparked).
func settledState(s api.JobState) bool { return s.Terminal() || s == api.JobParked }

// watchJob consumes one job's SSE stream end to end, recording event
// counts and the done-event end-to-end latency.
func watchJob(ctx context.Context, c *client.Client, name string, t0 time.Time, rec *recorder) {
	events, err := c.WatchQuery(ctx, name)
	if err != nil {
		if ctx.Err() == nil {
			rec.addError(fmt.Sprintf("watch %s: %v", name, err))
		}
		return
	}
	for ev := range events {
		if ev.Err != nil {
			if ctx.Err() == nil {
				rec.addError(fmt.Sprintf("watch %s: %v", name, ev.Err))
			}
			return
		}
		rec.sseEvents.Add(1)
		if ev.Type == api.EventDone {
			rec.recordWatcherDone(name, time.Since(t0))
		}
	}
}

// watchStream consumes one standing query's per-window SSE stream end
// to end, recording event counts and the done-event latency.
func watchStream(ctx context.Context, c *client.Client, name string, t0 time.Time, rec *recorder) {
	events, err := c.WatchStream(ctx, name)
	if err != nil {
		if ctx.Err() == nil {
			rec.addError(fmt.Sprintf("watch stream %s: %v", name, err))
		}
		return
	}
	for ev := range events {
		if ev.Err != nil {
			if ctx.Err() == nil {
				rec.addError(fmt.Sprintf("watch stream %s: %v", name, ev.Err))
			}
			return
		}
		rec.sseEvents.Add(1)
		if ev.Type == api.EventDone {
			rec.recordWatcherDone(name, time.Since(t0))
		}
	}
}

// watchEnum consumes one enumeration's per-batch SSE stream end to
// end, recording event counts and the done-event latency.
func watchEnum(ctx context.Context, c *client.Client, name string, t0 time.Time, rec *recorder) {
	events, err := c.WatchEnumeration(ctx, name)
	if err != nil {
		if ctx.Err() == nil {
			rec.addError(fmt.Sprintf("watch enum %s: %v", name, err))
		}
		return
	}
	for ev := range events {
		if ev.Err != nil {
			if ctx.Err() == nil {
				rec.addError(fmt.Sprintf("watch enum %s: %v", name, ev.Err))
			}
			return
		}
		rec.sseEvents.Add(1)
		if ev.Type == api.EventDone {
			rec.recordWatcherDone(name, time.Since(t0))
		}
	}
}

// sleepUntil sleeps until the deadline or ctx; it reports false on
// cancellation.
func sleepUntil(ctx context.Context, at time.Time) bool {
	d := time.Until(at)
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// waitHealthy probes /v1/healthz until the server answers.
func waitHealthy(ctx context.Context, c *client.Client) error {
	deadline := time.Now().Add(5 * time.Second)
	for {
		hctx, cancel := context.WithTimeout(ctx, time.Second)
		h, err := c.Health(hctx)
		cancel()
		if err == nil && h.Status == "ok" {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: server not healthy: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// baselineScheduler snapshots the scheduler state so remote runs report
// deltas, not lifetime totals.
func baselineScheduler(ctx context.Context, c *client.Client) (api.SchedulerState, bool) {
	sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	st, err := c.SchedulerState(sctx)
	return st, err == nil
}

// awaitSettled polls the job list until every named job settles. For a
// closed-loop in-process run it also drives the scheduler: once every
// unsettled job of the wave is blocked in the pending generation, it
// flushes — making generation composition a pure function of the
// profile rather than of timing.
func awaitSettled(ctx context.Context, c *client.Client, srv *inprocServer, names []string, rec *recorder, poll, stall time.Duration) error {
	expected := make(map[string]bool, len(names))
	for _, n := range names {
		expected[n] = true
	}
	settled := 0
	lastProgress := time.Now()
	lastPending := -1
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		now := time.Now()
		for st, err := range c.Jobs(ctx, client.ListJobsOptions{}) {
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				rec.addError(fmt.Sprintf("list jobs: %v", err))
				break
			}
			if expected[st.Name] && settledState(st.State) && rec.recordSettled(st.Name, now) {
				settled++
				lastProgress = now
			}
		}
		if settled == len(names) {
			return nil
		}
		if srv != nil && srv.barrier {
			pending := srv.sched.State().PendingJobs
			if pending != lastPending {
				lastPending = pending
				lastProgress = now
			}
			if pending > 0 && pending == len(names)-settled {
				// The whole remaining wave is enqueued: run the
				// generation. Engine failures surface per affected job;
				// the wave still settles.
				if err := srv.sched.Flush(ctx); err != nil && !errors.Is(err, context.Canceled) {
					rec.addError(fmt.Sprintf("flush: %v", err))
				}
				lastProgress = time.Now()
				continue
			}
		}
		if time.Since(lastProgress) > stall {
			return fmt.Errorf("%w for %v (%d/%d jobs settled)", ErrStalled, stall, settled, len(names))
		}
		if !sleepUntil(ctx, now.Add(poll)) {
			return ctx.Err()
		}
	}
}

// assembleReport fills the report from the final API sweep.
func assembleReport(ctx context.Context, c *client.Client, rep *Report, w *Workload, rec *recorder, wall time.Duration, schedBase api.SchedulerState, schedOK bool) {
	rec.mu.Lock()
	submitMS := append([]float64(nil), rec.submitMS...)
	submitStart := make(map[string]time.Time, len(rec.submitStart))
	for k, v := range rec.submitStart {
		submitStart[k] = v
	}
	settled := make(map[string]time.Time, len(rec.settled))
	for k, v := range rec.settled {
		settled[k] = v
	}
	watcherE2E := make(map[string]time.Duration, len(rec.watcherE2E))
	for k, v := range rec.watcherE2E {
		watcherE2E[k] = v
	}
	rep.Errors = append([]string(nil), rec.errs...)
	rec.mu.Unlock()

	p := w.Profile
	expected := make(map[string]bool, w.TotalJobs())
	for round := 0; round < p.Rounds; round++ {
		for _, t := range w.Tenants {
			expected[w.JobName(t, round)] = true
		}
	}

	var sts []api.JobStatus
	for st, err := range c.Jobs(ctx, client.ListJobsOptions{}) {
		if err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("final sweep: %v", err))
			break
		}
		if expected[st.Name] {
			sts = append(sts, st)
		}
	}

	rep.WallSeconds = wall.Seconds()
	rep.Jobs.Total = w.TotalJobs()
	seen := 0
	var spendJobs float64
	for _, st := range sts {
		seen++
		switch st.State {
		case api.JobDone:
			rep.Jobs.Done++
		case api.JobParked:
			rep.Jobs.Parked++
		case api.JobFailed:
			rep.Jobs.Failed++
		case api.JobCancelled:
			rep.Jobs.Cancelled++
		default:
			rep.Jobs.Unsettled++
		}
	}
	rep.Jobs.Unsettled += rep.Jobs.Total - seen
	// Deterministic accumulation order for the spend sum: name order.
	sorted := append([]api.JobStatus(nil), sts...)
	sortJobs(sorted)
	for _, st := range sorted {
		spendJobs += st.Cost
	}

	// Stream runs hash the windowed results instead of the batch job
	// records, and count stream items in place of submitted questions;
	// enum runs likewise hash the final result sets and count crowd
	// contributions.
	var streams []api.StreamStatus
	var enums []api.EnumStatus
	switch {
	case p.Stream:
		names := make([]string, 0, len(expected))
		for name := range expected {
			names = append(names, name)
		}
		sort.Strings(names)
		var seen int64
		for _, name := range names {
			st, err := c.Stream(ctx, name)
			if err != nil {
				rep.Errors = append(rep.Errors, fmt.Sprintf("stream sweep %s: %v", name, err))
				continue
			}
			streams = append(streams, st)
			seen += st.Seen
		}
		rep.QuestionsSubmitted = int(seen)
	case p.Enum:
		names := make([]string, 0, len(expected))
		for name := range expected {
			names = append(names, name)
		}
		sort.Strings(names)
		var contribs int64
		for _, name := range names {
			st, err := c.Enumeration(ctx, name)
			if err != nil {
				rep.Errors = append(rep.Errors, fmt.Sprintf("enum sweep %s: %v", name, err))
				continue
			}
			enums = append(enums, st)
			contribs += st.Contributions
		}
		rep.QuestionsSubmitted = int(contribs)
		rep.Enum = summarizeEnums(enums, p.TenantBudget)
	default:
		rep.QuestionsSubmitted = len(submitStart) * p.QuestionsPerTenant
	}
	if rep.WallSeconds > 0 {
		rep.QuestionsPerSec = float64(rep.QuestionsSubmitted) / rep.WallSeconds
	}
	rep.Submit = summarize(submitMS)
	var e2eMS []float64
	for name, t0 := range submitStart {
		if d, ok := watcherE2E[name]; ok {
			e2eMS = append(e2eMS, float64(d)/float64(time.Millisecond))
			continue
		}
		if at, ok := settled[name]; ok {
			e2eMS = append(e2eMS, float64(at.Sub(t0))/float64(time.Millisecond))
		}
	}
	rep.E2E = summarize(e2eMS)
	rep.Watchers = int(rec.watchers.Load())
	rep.SSEEvents = rec.sseEvents.Load()

	rep.SpendJobs = spendJobs
	if rep.QuestionsSubmitted > 0 {
		rep.SpendPerQuestion = spendJobs / float64(rep.QuestionsSubmitted)
	}
	if schedOK {
		if now, ok := baselineScheduler(ctx, c); ok {
			rep.SpendLedger = now.Budget.GlobalSpent - schedBase.Budget.GlobalSpent
			rep.Sched = SchedStats{
				Generations: now.Generations - schedBase.Generations,
				Enqueued:    now.QuestionsEnqueued - schedBase.QuestionsEnqueued,
				Published:   now.QuestionsPublished - schedBase.QuestionsPublished,
				Deduped:     now.QuestionsDeduped - schedBase.QuestionsDeduped,
				CacheHits:   now.CacheHits - schedBase.CacheHits,
				CacheMisses: now.CacheMisses - schedBase.CacheMisses,
				Batches:     now.BatchesPublished - schedBase.BatchesPublished,
			}
			if rep.Sched.Enqueued > 0 {
				rep.DedupSavedPct = 100 * float64(rep.Sched.CacheHits+rep.Sched.Deduped) / float64(rep.Sched.Enqueued)
			}
		}
	}
	switch {
	case p.Stream:
		rep.ResultsHash = hashStreamResults(streams)
	case p.Enum:
		rep.ResultsHash = hashEnumResults(enums)
	default:
		rep.ResultsHash = hashResults(sorted)
	}
}

// sortJobs orders statuses by name.
func sortJobs(sts []api.JobStatus) {
	sort.Slice(sts, func(i, j int) bool { return sts[i].Name < sts[j].Name })
}

// inprocServer is the embedded full stack: simulated crowd platform →
// engine → cross-query scheduler → durable job service → dispatcher
// pool → v1 HTTP API on a loopback port.
type inprocServer struct {
	base    string
	barrier bool
	sched   *scheduler.Scheduler
	disp    *jobs.Dispatcher
	svc     *jobs.Service
	web     *http.Server
}

// startInproc assembles the same stack cmd/cdas-server runs, tuned by
// the profile. In closed-loop mode the scheduler has no flush timer —
// the harness flushes at wave barriers instead.
func startInproc(p Profile, w *Workload, dispatchers int) (*inprocServer, error) {
	platform, err := crowd.NewPlatform(crowd.DefaultConfig(p.Seed))
	if err != nil {
		return nil, err
	}
	counters := metrics.NewRegistry()
	svc, err := jobs.OpenService(jobs.ServiceConfig{Counters: counters})
	if err != nil {
		return nil, err
	}
	var flushInterval time.Duration
	if !p.Deterministic() {
		flushInterval = 25 * time.Millisecond
	}
	web := httpapi.NewServer()
	sched, err := scheduler.New(scheduler.Config{
		Platform: engine.CrowdPlatform{Platform: platform},
		Engine: engine.Config{
			RequiredAccuracy: p.RequiredAccuracy,
			HITSize:          p.HITSize,
			MaxInflightHITs:  p.Inflight,
			Seed:             p.Seed,
		},
		Golden:        tsa.GoldenQuestions(w.Golden),
		GlobalBudget:  p.GlobalBudget,
		DisableDedup:  p.DisableDedup,
		FlushInterval: flushInterval,
		OnCharge: func(job string, amount float64) {
			_ = svc.ChargeBudget(job, amount)
		},
		Counters: counters,
	})
	if err != nil {
		svc.Close()
		return nil, err
	}
	tsaRunner := tsa.NewScheduledJobRunner(tsa.ScheduledRunnerConfig{
		Scheduler: sched,
		Stream:    w.Stream,
		API:       web,
	})
	runner := tsaRunner
	switch {
	case p.Stream:
		// Standing queries close windows through the generation barrier.
		// Closed-loop mode uses the full barrier (deadline 0) and expects
		// every tenant's stream, so window-k batches of all streams share
		// one scheduler generation regardless of dispatcher scheduling.
		deadline := 200 * time.Millisecond
		if p.Deterministic() {
			deadline = 0
		}
		coord := standing.NewCoordinator(sched, deadline)
		if p.Deterministic() {
			coord.Expect(p.Tenants)
		}
		standingRunner := standing.NewRunner(standing.RunnerConfig{
			Scheduler: sched,
			Coord:     coord,
			Marks:     svc,
			Counters:  counters,
			Publish:   web.StandingPublisher(),
		})
		runner = func(ctx context.Context, job jobs.Job, report func(progress, cost float64)) error {
			if job.Kind == jobs.KindContinuous {
				return standingRunner(ctx, job, report)
			}
			return tsaRunner(ctx, job, report)
		}
	case p.Enum:
		enumRunner := enum.NewRunner(enum.RunnerConfig{
			Scheduler: sched,
			Marks:     svc,
			OnCharge: func(job string, amount float64) {
				_ = svc.ChargeBudget(job, amount)
			},
			Counters: counters,
			Publish:  web.EnumPublisher(),
		})
		runner = func(ctx context.Context, job jobs.Job, report func(progress, cost float64)) error {
			if job.Kind == jobs.KindEnumeration {
				return enumRunner(ctx, job, report)
			}
			return tsaRunner(ctx, job, report)
		}
	}
	disp, err := jobs.NewDispatcher(svc, runner, dispatchers)
	if err != nil {
		sched.Close()
		svc.Close()
		return nil, err
	}
	web.SetJobs(disp)
	web.SetCounters(counters)
	web.SetScheduler(sched)
	disp.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		disp.Stop()
		sched.Close()
		svc.Close()
		return nil, err
	}
	hs := httpapi.NewHTTPServer(ln.Addr().String(), web.Handler())
	go func() { _ = hs.Serve(ln) }()
	return &inprocServer{
		base: "http://" + ln.Addr().String(),
		// Stream runs leave flushing to the window coordinator — a
		// harness-driven flush would split a window generation. Enum
		// runners never enqueue scheduler questions at all (each buys its
		// own HIT batches), so there is nothing for the harness to flush.
		barrier: p.Deterministic() && !p.Stream && !p.Enum,
		sched:   sched,
		disp:    disp,
		svc:     svc,
		web:     hs,
	}, nil
}

// Close tears the stack down: dispatchers drain first (running jobs
// requeue), then the listener, scheduler and service.
func (s *inprocServer) Close() {
	s.disp.Stop()
	s.web.Close()
	s.sched.Close()
	s.svc.Close()
}
