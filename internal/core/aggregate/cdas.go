// The paper's probability-based verification model (Section 4) on the
// Aggregator contract. The batch form is verification.Verify per
// question; the incremental form wraps online.Verifier verbatim, so the
// engine's default path — including the early-termination bounds of
// Section 4.2.2 — is bit-identical to the pre-interface code.
package aggregate

import (
	"fmt"

	"cdas/internal/core/online"
	"cdas/internal/core/verification"
)

func init() {
	Register(cdasAggregator{}, "probability-weighted voting over worker accuracies (the paper's Eq. 4 model); supports online early termination")
}

// cdasAggregator is the CDAS verification model.
type cdasAggregator struct{}

func (cdasAggregator) Name() string { return DefaultName }

// Aggregate runs Equation 4 independently per question — exactly
// verification.Verify over each question's votes.
func (cdasAggregator) Aggregate(b Batch) (Result, error) {
	verdicts := make(map[string]Verdict, len(b.Questions))
	for _, q := range b.Questions {
		votes := b.Votes[q.ID]
		if len(votes) == 0 {
			continue
		}
		res, err := verification.Verify(toVerificationVotes(votes), q.M)
		if err != nil {
			return Result{}, fmt.Errorf("aggregate: question %s: %w", q.ID, err)
		}
		verdicts[q.ID] = verdictFromResult(res)
	}
	return Result{Verdicts: verdicts, WorkerQuality: agreementQuality(b, verdicts)}, nil
}

// NewFolder implements Incremental by wrapping an online.Verifier: the
// same construction, fold and ranking code the engine ran before the
// interface existed.
func (cdasAggregator) NewFolder(spec Spec) (Folder, error) {
	v, err := online.NewVerifier(spec.Planned, spec.M, spec.MeanAccuracy)
	if err != nil {
		return nil, err
	}
	return &cdasFolder{v: v}, nil
}

// cdasFolder adapts online.Verifier to the Folder contract. It also
// exposes Terminated so the engine's early-termination loop keeps
// working through the interface.
type cdasFolder struct{ v *online.Verifier }

func (f *cdasFolder) Fold(vote Vote) error {
	return f.v.Add(verification.Vote{Worker: vote.Worker, Accuracy: vote.Accuracy, Answer: vote.Answer})
}

func (f *cdasFolder) Received() int { return f.v.Received() }

func (f *cdasFolder) Verdict() (Verdict, error) {
	res, err := f.v.Current()
	if err != nil {
		return Verdict{}, err
	}
	return verdictFromResult(res), nil
}

// Terminated reports the online early-termination predicate of
// Section 4.2.2 (see online.Verifier.Terminated).
func (f *cdasFolder) Terminated(s online.Strategy) bool { return f.v.Terminated(s) }

// toVerificationVotes converts aggregate votes to the verification
// package's vote shape.
func toVerificationVotes(votes []Vote) []verification.Vote {
	out := make([]verification.Vote, len(votes))
	for i, v := range votes {
		out[i] = verification.Vote{Worker: v.Worker, Accuracy: v.Accuracy, Answer: v.Answer}
	}
	return out
}

// verdictFromResult converts a verification result into a Verdict.
func verdictFromResult(res verification.Result) Verdict {
	best := res.Best()
	return Verdict{Answer: best.Answer, Confidence: best.Confidence, Ranked: res.Ranked}
}
