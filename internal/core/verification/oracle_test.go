package verification

import (
	"math"
	"testing"
	"testing/quick"
)

// bayesOracle computes P(r|Ω) directly from the paper's Equation 3 with
// explicit probability products over the full domain — no logs, no
// softmax — as a correctness oracle for the log-space implementation.
func bayesOracle(votes []Vote, domain []string, m int) map[string]float64 {
	likelihood := func(r string) float64 {
		p := 1.0
		for _, v := range votes {
			a := v.Accuracy
			if a < 1e-4 {
				a = 1e-4
			}
			if a > 1-1e-4 {
				a = 1 - 1e-4
			}
			if v.Answer == r {
				p *= a
			} else {
				p *= (1 - a) / float64(m-1)
			}
		}
		return p
	}
	total := 0.0
	per := make(map[string]float64, len(domain))
	for _, r := range domain {
		l := likelihood(r)
		per[r] = l
		total += l
	}
	for r := range per {
		per[r] /= total
	}
	return per
}

func TestVerifyMatchesBayesOracle(t *testing.T) {
	domain := []string{"a", "b", "c", "d"}
	f := func(accs []float64, picks []uint8) bool {
		n := len(accs)
		if n == 0 {
			return true
		}
		if n > 8 {
			n = 8
		}
		votes := make([]Vote, 0, n)
		for i := 0; i < n; i++ {
			if i >= len(picks) {
				break
			}
			acc := math.Abs(math.Mod(accs[i], 1))
			votes = append(votes, Vote{
				Worker:   "w",
				Accuracy: acc,
				Answer:   domain[int(picks[i])%len(domain)],
			})
		}
		if len(votes) == 0 {
			return true
		}
		res, err := Verify(votes, len(domain))
		if err != nil {
			return false
		}
		oracle := bayesOracle(votes, domain, len(domain))
		for _, s := range res.Ranked {
			if math.Abs(s.Confidence-oracle[s.Answer]) > 1e-9 {
				return false
			}
		}
		// The unobserved mass must equal the oracle mass of unvoted
		// answers.
		voted := make(map[string]bool)
		for _, v := range votes {
			voted[v.Answer] = true
		}
		unobs := 0.0
		for _, r := range domain {
			if !voted[r] {
				unobs += oracle[r]
			}
		}
		return math.Abs(res.UnobservedMass-unobs) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVerifyOracleFixedCase(t *testing.T) {
	// A hand-checkable case: two workers disagree in a binary domain.
	votes := []Vote{
		{Accuracy: 0.9, Answer: "x"},
		{Accuracy: 0.6, Answer: "y"},
	}
	// P(x) ∝ 0.9*0.4 = 0.36; P(y) ∝ 0.1*0.6 = 0.06.
	res, err := Verify(votes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Confidence("x"), 0.36/0.42; math.Abs(got-want) > 1e-12 {
		t.Errorf("P(x) = %v, want %v", got, want)
	}
	if got, want := res.Confidence("y"), 0.06/0.42; math.Abs(got-want) > 1e-12 {
		t.Errorf("P(y) = %v, want %v", got, want)
	}
}
