package textgen

// Sentiment lexicons and phrase templates for the synthetic tweet stream.
//
// Template design rule: every template is shared across the classes that
// can instantiate it — the ONLY class signal a bag-of-words learner can
// extract is the polarity word filling the {w} slots. Combined with
// misspelling distortion (humans read through "terrrible"; a unigram
// model sees an unknown token), this caps machine accuracy the way real
// tweet noise capped LIBSVM in the paper's Figure 5, without rigging the
// classifier itself.

var positiveWords = []string{
	"amazing", "awesome", "brilliant", "fantastic", "superb", "stunning",
	"gorgeous", "hilarious", "gripping", "epic", "perfect",
	"beautiful", "touching", "thrilling", "unforgettable", "magnificent",
	"delightful", "wonderful", "flawless", "captivating", "breathtaking",
}

var negativeWords = []string{
	"terrible", "awful", "horrible", "boring", "dreadful", "lame",
	"disappointing", "messy", "disastrous", "painful", "unwatchable",
	"sloppy", "pointless", "bland", "cringeworthy", "forgettable", "dull",
	"atrocious", "laughable", "insufferable", "clumsy",
}

var neutralWords = []string{
	"tonight", "tickets", "trailer", "cinema", "screening", "premiere",
	"weekend", "sequel", "director", "cast", "runtime", "soundtrack",
	"subtitles", "matinee", "release", "showtimes",
}

// polarityTemplates carry exactly one {w} slot and are used verbatim for
// BOTH positive and negative tweets (and, inverted, for hard ones).
var polarityTemplates = []string{
	"{m} was {w}",
	"just watched {m}: {w}",
	"{m} is {w}, full stop",
	"the most {w} film of the year: {m}",
	"{m} review: {w}",
	"that {m} screening was {w}",
	"honestly {m} felt {w} to me",
	"two hours of {m} and all i can say is {w}",
	"{w}. that is {m} in one word",
}

// mixedPolarityTemplates carry a {w1} and a {w2} slot filled with words
// of OPPOSITE polarity; the truth is the class of the {w2} (final-clause)
// word. Both label variants instantiate the same template, so the bag of
// words is perfectly balanced and only reading order disambiguates.
var mixedPolarityTemplates = []string{
	"{m} started {w1} but ended up {w2}",
	"everyone said {m} would be {w1}; i found it {w2}",
	"{m}: {w1} trailer, {w2} movie",
	"expected something {w1} from {m} and got something {w2}",
}

// weakTemplates carry no lexicon words; sentiment lives in tone that a
// unigram model (and, mostly, a hurried worker) cannot recover. Their
// labels are assigned randomly between positive and negative.
var weakTemplates = []string{
	"well. {m}. that sure was a movie",
	"{m}... yeah... wow",
	"i have no words for {m}",
	"so that happened: {m}",
	"{m}. again. tomorrow. maybe",
	"everyone is talking about {m} and i get it now",
}

// neutralTemplates carry one {w} slot filled from the neutral lexicon.
var neutralTemplates = []string{
	"watching {m} {w}",
	"anyone got {w} for {m}?",
	"the {m} {w} just dropped",
	"{m} opens this {w} at the cinema",
	"is {m} playing near me? checking {w}",
	"queueing for the {m} {w}",
}

// tingedNeutralTemplates are factual tweets quoting a polarity word —
// label noise for lexicon-based classifiers. {w} draws from either
// polarity lexicon; the truth stays Neutral.
var tingedNeutralTemplates = []string{
	"people call {m} {w}; just here for the trailer",
	"'{w}' they said. anyway, {m} tickets booked",
	"reviews range from {w} to {w}; seeing {m} myself tonight",
	"the {w} buzz around {m} continues, screening at nine",
}
