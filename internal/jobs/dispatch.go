// Dispatcher worker pool: pulls Pending jobs off the durable Service
// and runs them with per-job context cancellation — the execution half
// of Figure 2's job manager. Workers block on the service's wake
// channel (with a polling fallback) so submissions start promptly
// without busy loops.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Runner executes one claimed job. It must honour ctx — cancellation is
// how DELETE /jobs and shutdown interrupt a run — and may call report
// as work proceeds with the completed fraction in [0, 1] and the cost
// charged so far in this attempt. report is safe for concurrent use.
type Runner func(ctx context.Context, job Job, report func(progress, cost float64)) error

// Dispatcher drains a Service's Pending queue through a fixed worker
// pool. Construct with NewDispatcher, then Start.
type Dispatcher struct {
	svc     *Service
	run     Runner
	workers int
	poll    time.Duration

	ctx  context.Context
	stop context.CancelFunc
	wg   sync.WaitGroup

	mu        sync.Mutex
	cancels   map[string]context.CancelFunc
	requested map[string]bool // cancellation asked for while running
	started   bool
}

// NewDispatcher builds a pool of workers (minimum 1) executing jobs
// with run.
func NewDispatcher(svc *Service, run Runner, workers int) (*Dispatcher, error) {
	if svc == nil {
		return nil, errors.New("jobs: dispatcher needs a service")
	}
	if run == nil {
		return nil, errors.New("jobs: dispatcher needs a runner")
	}
	if workers < 1 {
		workers = 1
	}
	ctx, stop := context.WithCancel(context.Background())
	return &Dispatcher{
		svc:       svc,
		run:       run,
		workers:   workers,
		poll:      50 * time.Millisecond,
		ctx:       ctx,
		stop:      stop,
		cancels:   make(map[string]context.CancelFunc),
		requested: make(map[string]bool),
	}, nil
}

// Start launches the worker pool. It is idempotent.
func (d *Dispatcher) Start() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.started {
		return
	}
	d.started = true
	for i := 0; i < d.workers; i++ {
		d.wg.Add(1)
		go d.worker()
	}
}

// Stop shuts the pool down gracefully and permanently: in-flight jobs
// are interrupted and requeued to Pending, then Stop waits for every
// worker to finish committing. A stopped Dispatcher cannot be
// restarted — the requeued jobs are picked up by a new Dispatcher on
// the same Service, or after a restart's WAL replay. Safe to call more
// than once.
func (d *Dispatcher) Stop() {
	d.stop()
	d.wg.Wait()
}

// Cancel stops a job: Pending jobs move straight to Cancelled; Running
// jobs have their context cancelled and are committed as Cancelled once
// the runner unwinds. Unknown names return ErrUnknownJob; jobs already
// in a terminal state return ErrBadTransition.
func (d *Dispatcher) Cancel(name string) error {
	// The whole decision runs under d.mu, mirroring execute's
	// register-then-check: either we see the run's cancel func here, or
	// our service-level Cancel commits before the worker's registration
	// check — which then observes the Cancelled state and never starts
	// the runner. No window lets a cancelled job keep executing.
	d.mu.Lock()
	defer d.mu.Unlock()
	if cancel, running := d.cancels[name]; running {
		// Commit the Cancelled state to the log BEFORE acknowledging
		// and unwinding the runner: a crash right after this call must
		// replay as cancelled, never resurrect the job.
		if err := d.svc.Cancel(name); err != nil {
			return err
		}
		d.requested[name] = true
		cancel()
		return nil
	}
	return d.svc.Cancel(name)
}

// Submit registers a job with the service (the pool wakes on its own).
func (d *Dispatcher) Submit(job Job) (Plan, error) { return d.svc.Submit(job) }

// Unpark resumes a budget-parked job: Parked → Pending, after which the
// pool claims it like any other pending job.
func (d *Dispatcher) Unpark(name string) error { return d.svc.Unpark(name) }

// Status returns a job's lifecycle record.
func (d *Dispatcher) Status(name string) (Status, bool) { return d.svc.Status(name) }

// StreamMarkFor exposes a continuous job's committed stream position,
// so API consumers can report a recovered stream's windows and spend
// before (or without) any in-process window publish.
func (d *Dispatcher) StreamMarkFor(name string) (StreamMark, bool) { return d.svc.StreamMarkFor(name) }

// Statuses lists every job's lifecycle record, sorted by name. It is
// assembled by paging StatusesPage — each service call stays O(page),
// and the commit lock is released between pages — so callers that can
// consume pages directly should; this is the convenience form.
func (d *Dispatcher) Statuses() []Status {
	var out []Status
	after := ""
	for {
		page, more := d.svc.StatusesPage(after, statusesPageSize, "", "")
		out = append(out, page...)
		if !more {
			return out
		}
		after = page[len(page)-1].Job.Name
	}
}

// statusesPageSize is the chunk Dispatcher.Statuses pages with.
const statusesPageSize = 500

// StatusesPage lists up to limit records in name order after the given
// name, optionally filtered by state and/or tenant — an index
// range-read over the service's status table.
func (d *Dispatcher) StatusesPage(after string, limit int, state State, tenant string) ([]Status, bool) {
	return d.svc.StatusesPage(after, limit, state, tenant)
}

func (d *Dispatcher) worker() {
	defer d.wg.Done()
	ticker := time.NewTicker(d.poll)
	defer ticker.Stop()
	for {
		if d.ctx.Err() != nil {
			return
		}
		st, ok := d.svc.Claim()
		if !ok {
			select {
			case <-d.ctx.Done():
				return
			case <-d.svc.Wake():
			case <-ticker.C:
			}
			continue
		}
		d.execute(st)
	}
}

// execute runs one claimed job and commits its outcome.
func (d *Dispatcher) execute(st Status) {
	name := st.Job.Name
	jctx, cancel := context.WithCancel(d.ctx)
	defer cancel()
	d.mu.Lock()
	// A Cancel may have slipped in between our Claim and this
	// registration; it found nothing in d.cancels and committed the
	// cancellation at the service. Checking the state under the same
	// lock closes the race — one of the two sides must lose.
	if cur, ok := d.svc.Status(name); !ok || cur.State != StateRunning {
		d.mu.Unlock()
		return
	}
	if d.ctx.Err() != nil {
		// Stop slipped in between the worker's shutdown check and its
		// Claim: hand the job straight back — with the attempt refunded,
		// since the runner never started — instead of launching it under
		// an already-dead context. The error is ignored on purpose: a
		// concurrent Cancel may have beaten us to a terminal state,
		// which then stands.
		d.mu.Unlock()
		_ = d.svc.VoidClaim(name)
		return
	}
	d.cancels[name] = cancel
	d.mu.Unlock()

	var costMu sync.Mutex
	var lastCost float64
	err := d.run(jctx, st.Job, func(progress, cost float64) {
		costMu.Lock()
		lastCost = cost
		costMu.Unlock()
		// A progress report races benignly with terminal commits; the
		// state machine rejects it then, which is fine.
		d.svc.Progress(name, progress, cost)
	})

	d.mu.Lock()
	delete(d.cancels, name)
	wasRequested := d.requested[name]
	delete(d.requested, name)
	d.mu.Unlock()
	costMu.Lock()
	cost := lastCost
	costMu.Unlock()

	switch {
	case wasRequested:
		// Cancel already committed the Cancelled state before cancelling
		// our context; whatever the runner returned, the acknowledged
		// cancellation stands.
	case err == nil:
		// The run finished: completed work is reported as Done. Commit
		// failure here means the job went terminal some other way (or
		// the log is down, in which case the state reverts to Running
		// and a restart will requeue it); nothing more to do.
		d.svc.Complete(name, cost)
	case errors.Is(err, ErrParked):
		// Budget admission refused the run: park the job — resumable
		// via Unpark, no retry burned, not a failure. A commit error
		// means a concurrent terminal transition won; it stands.
		_ = d.svc.Park(name)
	case d.ctx.Err() != nil && errors.Is(err, context.Canceled):
		// Shutdown, not user cancellation: hand the job back for the
		// next incarnation.
		d.svc.Requeue(name)
	default:
		d.svc.Fail(name, fmt.Errorf("run: %w", err), cost)
	}
}
