package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"cdas/internal/metrics"
)

// TestDispatcherParksBudgetRefusedJob: a runner surfacing ErrParked
// sends the job to Parked — no retry burned, resumable via Unpark —
// and the parked state survives WAL replay.
func TestDispatcherParksBudgetRefusedJob(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	s := openTestService(t, dir, func(c *ServiceConfig) { c.Counters = reg })
	var overBudget atomic.Bool
	overBudget.Store(true)
	var runs atomic.Int64
	runner := func(ctx context.Context, job Job, report func(float64, float64)) error {
		runs.Add(1)
		if overBudget.Load() {
			return fmt.Errorf("%w: estimated 0.5 over the cap", ErrParked)
		}
		report(1, 0.25)
		return nil
	}
	d, err := NewDispatcher(s, runner, 2)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	if _, err := d.Submit(testJob("strapped")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job parked", func() bool {
		st, _ := d.Status("strapped")
		return st.State == StateParked
	})
	st, _ := d.Status("strapped")
	if st.Attempts != 0 {
		t.Errorf("parking burned an attempt: %d", st.Attempts)
	}
	if reg.Get(metrics.CounterJobsParked) != 1 {
		t.Errorf("parked counter = %d", reg.Get(metrics.CounterJobsParked))
	}
	d.Stop()
	s.Close()

	// Replay: parked stays parked — not resumed, not requeued.
	s2 := openTestService(t, dir, func(c *ServiceConfig) { c.Counters = reg })
	if got := s2.Resumed(); len(got) != 0 {
		t.Errorf("parked job resumed on replay: %v", got)
	}
	st, _ = s2.Status("strapped")
	if st.State != StateParked {
		t.Fatalf("replayed state = %s, want parked", st.State)
	}

	// Unpark: back to Pending, claimed and completed once budget allows.
	overBudget.Store(false)
	d2, err := NewDispatcher(s2, runner, 2)
	if err != nil {
		t.Fatal(err)
	}
	d2.Start()
	defer d2.Stop()
	defer s2.Close()
	if err := d2.Unpark("strapped"); err != nil {
		t.Fatal(err)
	}
	if reg.Get(metrics.CounterJobsUnparked) != 1 {
		t.Errorf("unparked counter = %d", reg.Get(metrics.CounterJobsUnparked))
	}
	waitFor(t, "unparked job done", func() bool {
		st, _ := d2.Status("strapped")
		return st.State == StateDone
	})
	if runs.Load() != 2 {
		t.Errorf("runner invoked %d times, want 2 (parked once, completed once)", runs.Load())
	}
}

func TestParkTransitions(t *testing.T) {
	s := openTestService(t, "")
	defer s.Close()
	if _, err := s.Submit(testJob("j")); err != nil {
		t.Fatal(err)
	}
	// Pending cannot park (only a refused *run* parks).
	if err := s.Park("j"); !errors.Is(err, ErrBadTransition) {
		t.Errorf("Park(pending) = %v, want ErrBadTransition", err)
	}
	if _, ok := s.Claim(); !ok {
		t.Fatal("claim failed")
	}
	if err := s.Park("j"); err != nil {
		t.Fatal(err)
	}
	// Parked is not terminal, not claimable, and cancellable.
	if st, _ := s.Status("j"); st.State.Terminal() {
		t.Error("parked counted as terminal")
	}
	if _, ok := s.Claim(); ok {
		t.Error("claimed a parked job")
	}
	if err := s.Unpark("j"); err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Status("j"); st.State != StatePending {
		t.Errorf("after unpark: %s", st.State)
	}
	if err := s.Unpark("j"); !errors.Is(err, ErrBadTransition) {
		t.Errorf("Unpark(pending) = %v, want ErrBadTransition", err)
	}
	if _, ok := s.Claim(); !ok {
		t.Fatal("reclaim failed")
	}
	if err := s.Park("j"); err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel("j"); err != nil {
		t.Errorf("Cancel(parked) = %v, want nil", err)
	}
	if err := s.Unpark("missing"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Unpark(unknown) = %v", err)
	}
}

// TestBudgetStateSurvivesReplay: charges committed through the service
// reappear after a crash, through both WAL replay and snapshots.
func TestBudgetStateSurvivesReplay(t *testing.T) {
	dir := t.TempDir()
	s := openTestService(t, dir)
	if err := s.ChargeBudget("a", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := s.ChargeBudget("a", 0.25); err != nil {
		t.Fatal(err)
	}
	if err := s.ChargeBudget("b", 1.0); err != nil {
		t.Fatal(err)
	}
	if err := s.ChargeBudget("ignored", 0); err != nil {
		t.Fatal(err)
	}
	b := s.Budget()
	if b.GlobalSpent != 1.75 || b.Jobs["a"] != 0.75 || b.Jobs["b"] != 1.0 {
		t.Fatalf("budget = %+v", b)
	}
	if _, zeroRecorded := b.Jobs["ignored"]; zeroRecorded {
		t.Error("zero charge created a ledger line")
	}
	s.Close()

	s2 := openTestService(t, dir)
	b = s2.Budget()
	if b.GlobalSpent != 1.75 || b.Jobs["a"] != 0.75 || b.Jobs["b"] != 1.0 {
		t.Errorf("replayed budget = %+v", b)
	}
	// Returned state is a copy: mutating it must not leak back.
	b.Jobs["a"] = 99
	if got := s2.Budget().Jobs["a"]; got != 0.75 {
		t.Errorf("Budget() aliases internal state: %v", got)
	}
	s2.Close()

	// Snapshot compaction preserves the ledger too.
	s3 := openTestService(t, dir, func(c *ServiceConfig) { c.SnapshotEvery = 1 })
	if err := s3.ChargeBudget("c", 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := s3.Submit(testJob("trigger")); err != nil { // forces a compaction pass
		t.Fatal(err)
	}
	s3.Close()
	s4 := openTestService(t, dir)
	defer s4.Close()
	b = s4.Budget()
	if !floatEq(b.GlobalSpent, 1.85) || b.Jobs["c"] != 0.1 {
		t.Errorf("post-compaction budget = %+v", b)
	}
}

func floatEq(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// TestVoidClaimRefundsAttempt: the shutdown-window reversal returns the
// job to Pending with the attempt refunded, durably.
func TestVoidClaimRefundsAttempt(t *testing.T) {
	dir := t.TempDir()
	s := openTestService(t, dir)
	if _, err := s.Submit(testJob("j")); err != nil {
		t.Fatal(err)
	}
	st, ok := s.Claim()
	if !ok || st.Attempts != 1 {
		t.Fatalf("claim: %+v ok=%v", st, ok)
	}
	if err := s.VoidClaim("j"); err != nil {
		t.Fatal(err)
	}
	st, _ = s.Status("j")
	if st.State != StatePending || st.Attempts != 0 {
		t.Errorf("after void claim: state=%s attempts=%d, want pending/0", st.State, st.Attempts)
	}
	if err := s.VoidClaim("j"); !errors.Is(err, ErrBadTransition) {
		t.Errorf("VoidClaim(pending) = %v, want ErrBadTransition", err)
	}
	s.Close()
	s2 := openTestService(t, dir)
	defer s2.Close()
	st, _ = s2.Status("j")
	if st.State != StatePending || st.Attempts != 0 {
		t.Errorf("replayed void claim: state=%s attempts=%d", st.State, st.Attempts)
	}
}
