// The memtable: the LSM engine's mutable in-memory level. Writes land
// here (after their WAL frame is durable) and are served from here
// until a checkpoint flushes the table into an immutable sorted run.
// Deletes are buffered as tombstones so they shadow older runs.
package jobstore

import "sort"

type memtable struct {
	entries map[string]kvEntry
	bytes   int // approximate payload footprint, drives flush policy
}

func newMemtable() *memtable {
	return &memtable{entries: make(map[string]kvEntry)}
}

// apply upserts one op (put or tombstone).
func (m *memtable) apply(e kvEntry) {
	if old, ok := m.entries[e.key]; ok {
		m.bytes -= len(old.key) + len(old.val)
	}
	m.entries[e.key] = e
	m.bytes += len(e.key) + len(e.val)
}

func (m *memtable) get(key string) (kvEntry, bool) {
	e, ok := m.entries[key]
	return e, ok
}

func (m *memtable) len() int { return len(m.entries) }

// sorted returns the entries in ascending key order — the flush input.
func (m *memtable) sorted() []kvEntry {
	out := make([]kvEntry, 0, len(m.entries))
	for _, e := range m.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

func (m *memtable) reset() {
	m.entries = make(map[string]kvEntry)
	m.bytes = 0
}
