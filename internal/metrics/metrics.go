// Package metrics provides the evaluation measures used when comparing
// CDAS's verification models, voting baselines and machine classifiers
// against ground truth: accuracy, per-class precision/recall/F1 and
// confusion matrices.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Confusion is a label confusion matrix: counts[truth][predicted].
type Confusion struct {
	counts map[string]map[string]int
	total  int
}

// NewConfusion returns an empty matrix.
func NewConfusion() *Confusion {
	return &Confusion{counts: make(map[string]map[string]int)}
}

// Add records one (truth, predicted) observation. Empty predictions are
// legal and count as a distinct "(none)" label — the voting models'
// no-answer outcome.
func (c *Confusion) Add(truth, predicted string) {
	if predicted == "" {
		predicted = "(none)"
	}
	row := c.counts[truth]
	if row == nil {
		row = make(map[string]int)
		c.counts[truth] = row
	}
	row[predicted]++
	c.total++
}

// Total reports the number of observations.
func (c *Confusion) Total() int { return c.total }

// Count returns counts[truth][predicted].
func (c *Confusion) Count(truth, predicted string) int {
	return c.counts[truth][predicted]
}

// Accuracy is the fraction of observations on the diagonal.
func (c *Confusion) Accuracy() float64 {
	if c.total == 0 {
		return 0
	}
	correct := 0
	for truth, row := range c.counts {
		correct += row[truth]
	}
	return float64(correct) / float64(c.total)
}

// Labels lists all labels seen as truth or prediction, sorted.
func (c *Confusion) Labels() []string {
	set := make(map[string]struct{})
	for truth, row := range c.counts {
		set[truth] = struct{}{}
		for pred := range row {
			set[pred] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// ClassScores holds one label's precision, recall and F1.
type ClassScores struct {
	Label     string
	Precision float64
	Recall    float64
	F1        float64
	Support   int // observations whose truth is Label
}

// PerClass computes precision/recall/F1 per truth label.
func (c *Confusion) PerClass() []ClassScores {
	labels := c.Labels()
	out := make([]ClassScores, 0, len(labels))
	for _, label := range labels {
		tp := c.counts[label][label]
		support, predicted := 0, 0
		for _, row := range c.counts {
			predicted += row[label]
		}
		for _, n := range c.counts[label] {
			support += n
		}
		if support == 0 && predicted == 0 {
			continue // label only appears as the "(none)" bucket etc.
		}
		s := ClassScores{Label: label, Support: support}
		if predicted > 0 {
			s.Precision = float64(tp) / float64(predicted)
		}
		if support > 0 {
			s.Recall = float64(tp) / float64(support)
		}
		if s.Precision+s.Recall > 0 {
			s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
		}
		out = append(out, s)
	}
	return out
}

// MacroF1 averages F1 over the truth labels (labels never appearing as
// truth are excluded).
func (c *Confusion) MacroF1() float64 {
	sum, n := 0.0, 0
	for _, s := range c.PerClass() {
		if s.Support == 0 {
			continue
		}
		sum += s.F1
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// String renders the matrix with truth rows and predicted columns.
func (c *Confusion) String() string {
	labels := c.Labels()
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "truth\\pred")
	for _, l := range labels {
		fmt.Fprintf(&b, " %10s", l)
	}
	b.WriteByte('\n')
	for _, truth := range labels {
		if len(c.counts[truth]) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-12s", truth)
		for _, pred := range labels {
			fmt.Fprintf(&b, " %10d", c.counts[truth][pred])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
