// Job lifecycle state machine. A registered job moves through
//
//	Pending ──► Running ──► Done
//	   │           │  ├───► Failed     (attempts exhausted)
//	   │           │  ├───► Pending    (retry / requeue after a crash)
//	   │           │  └───► Parked     (budget exhausted; resumable)
//	   │           │           │
//	   │           │           └─────► Pending (unpark)
//	   └───────────┴───────────┴─────► Cancelled
//
// Terminal states (Done, Failed, Cancelled) are absorbing: no
// transition leaves them, which is what makes replaying a job's event
// log idempotent and a restarted server unable to double-run a
// finished job. Parked is NOT terminal: it holds jobs the budget
// admission refused, out of the dispatcher's claim queue but one
// Unpark away from running again.
package jobs

import (
	"errors"
	"fmt"
)

// State is a job's lifecycle position.
type State string

// Lifecycle states.
const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StateParked    State = "parked"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Valid reports whether s is one of the defined states.
func (s State) Valid() bool {
	switch s {
	case StatePending, StateRunning, StateParked, StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// Terminal reports whether s is absorbing: Done, Failed or Cancelled.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// transitions lists the legal moves of the state machine.
var transitions = map[State]map[State]bool{
	StatePending: {StateRunning: true, StateCancelled: true},
	StateRunning: {StateDone: true, StateFailed: true, StatePending: true, StateParked: true, StateCancelled: true},
	StateParked:  {StatePending: true, StateCancelled: true},
}

// CanTransition reports whether from → to is a legal lifecycle move.
func CanTransition(from, to State) bool { return transitions[from][to] }

// ErrBadTransition reports an illegal lifecycle move (e.g. cancelling a
// job that already finished).
var ErrBadTransition = errors.New("jobs: illegal state transition")

// ErrParked marks a job run refused by budget admission: a runner that
// wraps its error with this sentinel sends the job to Parked — kept out
// of the claim queue but resumable via Unpark once budget frees up —
// instead of burning retries or failing.
var ErrParked = errors.New("jobs: job parked: budget exhausted")

// ErrPermanent marks a job failure as not retryable: a runner that
// wraps its error with this sentinel (fmt.Errorf("%w: ...",
// jobs.ErrPermanent)) sends the job straight to Failed regardless of
// remaining attempts — for deterministic failures (bad query, nothing
// to process) where retrying would only replay the same outcome.
var ErrPermanent = errors.New("jobs: permanent job failure")

// Status is a job's full lifecycle record.
type Status struct {
	Job   Job
	State State
	// Attempts counts how many times the job has been claimed by a
	// dispatcher (including the current run).
	Attempts int
	// Progress is the completed fraction in [0, 1] of the current run.
	Progress float64
	// Cost is the total crowdsourcing fee charged across all attempts.
	Cost float64
	// Error holds the most recent failure, empty while healthy.
	Error string

	// seq orders jobs for FIFO claiming; baseCost carries the fees of
	// earlier attempts so a retry's running cost accumulates.
	seq      uint64
	baseCost float64
}

// Status returns a job's lifecycle record.
func (m *Manager) Status(name string) (Status, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	rec, ok := m.recs[name]
	if !ok {
		return Status{}, false
	}
	return *rec, true
}

// Statuses lists every job's lifecycle record, sorted by name.
func (m *Manager) Statuses() []Status {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Status, 0, len(m.recs))
	for _, rec := range m.recs {
		out = append(out, *rec)
	}
	sortStatuses(out)
	return out
}

// Claim atomically moves the oldest Pending job to Running and returns
// it; ok is false when nothing is pending. The claim counts as an
// attempt. The oldest pending job comes off the FIFO index heap —
// O(log n), not a table scan.
func (m *Manager) Claim() (Status, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldest, ok := m.ix.popPending(m.recs)
	if !ok {
		return Status{}, false
	}
	m.setState(oldest, StateRunning)
	oldest.Attempts++
	oldest.Progress = 0
	oldest.baseCost = oldest.Cost
	return *oldest, true
}

// setState applies a state change and re-files the record in the
// secondary indexes — the single choke point keeping them consistent
// with the table. Callers hold m.mu and have validated the transition.
func (m *Manager) setState(rec *Status, to State) {
	old := rec.State
	rec.State = to
	m.ix.move(rec, old)
}

// Complete moves a Running job to Done, recording the final cost of the
// finishing attempt.
func (m *Manager) Complete(name string, cost float64) (Status, error) {
	return m.finish(name, StateDone, "", cost)
}

// Fail records a Running job's failure. While the job has attempts left
// and the cause is not marked ErrPermanent it is requeued to Pending
// (requeued = true); otherwise it lands in Failed.
func (m *Manager) Fail(name string, cause error, cost float64) (st Status, requeued bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[name]
	if !ok {
		return Status{}, false, fmt.Errorf("%w: %q", ErrUnknownJob, name)
	}
	if !CanTransition(rec.State, StateFailed) {
		return Status{}, false, fmt.Errorf("%w: %s → %s for %q", ErrBadTransition, rec.State, StateFailed, name)
	}
	rec.Cost = rec.baseCost + cost
	if cause != nil {
		rec.Error = cause.Error()
	} else {
		rec.Error = "unknown failure"
	}
	if rec.Attempts < m.maxAttempts && !errors.Is(cause, ErrPermanent) {
		m.setState(rec, StatePending)
		rec.Progress = 0
		return *rec, true, nil
	}
	m.setState(rec, StateFailed)
	return *rec, false, nil
}

// Cancel moves a Pending or Running job to Cancelled.
func (m *Manager) Cancel(name string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[name]
	if !ok {
		return Status{}, fmt.Errorf("%w: %q", ErrUnknownJob, name)
	}
	if !CanTransition(rec.State, StateCancelled) {
		return Status{}, fmt.Errorf("%w: %s → %s for %q", ErrBadTransition, rec.State, StateCancelled, name)
	}
	m.setState(rec, StateCancelled)
	return *rec, nil
}

// Park moves a Running job to Parked: budget admission refused the run,
// so it leaves the claim queue without consuming its attempt as a
// failure. The claim's attempt increment is undone — a parked run never
// executed, and parking must not erode the retry budget.
func (m *Manager) Park(name string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[name]
	if !ok {
		return Status{}, fmt.Errorf("%w: %q", ErrUnknownJob, name)
	}
	if !CanTransition(rec.State, StateParked) {
		return Status{}, fmt.Errorf("%w: %s → %s for %q", ErrBadTransition, rec.State, StateParked, name)
	}
	m.setState(rec, StateParked)
	rec.Progress = 0
	if rec.Attempts > 0 {
		rec.Attempts--
	}
	return *rec, nil
}

// Unpark moves a Parked job back to Pending so a dispatcher can claim
// it again.
func (m *Manager) Unpark(name string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[name]
	if !ok {
		return Status{}, fmt.Errorf("%w: %q", ErrUnknownJob, name)
	}
	if rec.State != StateParked {
		return Status{}, fmt.Errorf("%w: %s → %s for %q", ErrBadTransition, rec.State, StatePending, name)
	}
	m.setState(rec, StatePending)
	return *rec, nil
}

// Requeue moves a Running job back to Pending without charging an
// attempt's failure — the restart path for jobs a dead dispatcher left
// behind.
func (m *Manager) Requeue(name string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[name]
	if !ok {
		return Status{}, fmt.Errorf("%w: %q", ErrUnknownJob, name)
	}
	if !CanTransition(rec.State, StatePending) {
		return Status{}, fmt.Errorf("%w: %s → %s for %q", ErrBadTransition, rec.State, StatePending, name)
	}
	m.setState(rec, StatePending)
	rec.Progress = 0
	return *rec, nil
}

// SetProgress updates a Running job's progress fraction and the cost
// charged so far in the current attempt.
func (m *Manager) SetProgress(name string, progress, cost float64) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[name]
	if !ok {
		return Status{}, fmt.Errorf("%w: %q", ErrUnknownJob, name)
	}
	if rec.State != StateRunning {
		return Status{}, fmt.Errorf("%w: progress on %s job %q", ErrBadTransition, rec.State, name)
	}
	rec.Progress = clamp01(progress)
	rec.Cost = rec.baseCost + cost
	return *rec, nil
}

// finish applies a terminal completion under the transition rules.
func (m *Manager) finish(name string, to State, errMsg string, cost float64) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[name]
	if !ok {
		return Status{}, fmt.Errorf("%w: %q", ErrUnknownJob, name)
	}
	if !CanTransition(rec.State, to) {
		return Status{}, fmt.Errorf("%w: %s → %s for %q", ErrBadTransition, rec.State, to, name)
	}
	m.setState(rec, to)
	rec.Error = errMsg
	rec.Cost = rec.baseCost + cost
	if to == StateDone {
		rec.Progress = 1
	}
	return *rec, nil
}

// refundClaim is the shared claim reversal: back to Pending with the
// claim's attempt increment undone — an attempt that never reached a
// verdict must not erode the retry budget. Callers hold m.mu and have
// verified rec is Running.
func (m *Manager) refundClaim(rec *Status) {
	m.setState(rec, StatePending)
	rec.Progress = 0
	if rec.Attempts > 0 {
		rec.Attempts--
	}
}

// voidClaim reverts a committed Claim whose runner never started (the
// dispatcher lost the race with its own shutdown).
func (m *Manager) voidClaim(name string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[name]
	if !ok {
		return Status{}, fmt.Errorf("%w: %q", ErrUnknownJob, name)
	}
	if rec.State != StateRunning {
		return Status{}, fmt.Errorf("%w: %s → %s for %q", ErrBadTransition, rec.State, StatePending, name)
	}
	m.refundClaim(rec)
	return *rec, nil
}

// unclaim reverts a Claim that could not be committed to the log, so
// transient storage failures never consume the retry budget.
func (m *Manager) unclaim(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[name]
	if !ok || rec.State != StateRunning {
		return
	}
	m.refundClaim(rec)
}

// revert restores a job's record to a previously captured Status —
// the rollback for a state transition whose log commit failed. The
// copy carries the unexported seq and baseCost, so the revert is exact.
func (m *Manager) revert(prev Status) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rec, ok := m.recs[prev.Job.Name]; ok {
		m.ix.leave(rec)
		*rec = prev
		m.ix.enter(rec)
	}
}

// restore overwrites a job's record from a trusted replay source,
// bypassing transition checks (the log already validated them when the
// events were first applied).
func (m *Manager) restore(st Status) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[st.Job.Name]
	if !ok {
		rec = &Status{}
		m.recs[st.Job.Name] = rec
	} else {
		m.ix.leave(rec)
	}
	*rec = st
	rec.baseCost = st.Cost
	m.ix.enter(rec)
	if st.seq >= m.nextSeq {
		m.nextSeq = st.seq + 1
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
