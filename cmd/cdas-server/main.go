// Command cdas-server runs the Figure 4-style result service: it executes
// a few TSA queries on the simulated platform through the engine's
// concurrent HIT pipeline and serves their live summaries over HTTP — the
// page updates as HITs finish, not after the whole query completes.
//
// Usage:
//
//	cdas-server [-addr :8080] [-seed 1] [-accuracy 0.9] [-inflight 4]
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"time"

	"cdas/internal/crowd"
	"cdas/internal/engine"
	"cdas/internal/httpapi"
	"cdas/internal/textgen"
	"cdas/internal/tsa"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		accuracy = flag.Float64("accuracy", 0.9, "required accuracy C")
		inflight = flag.Int("inflight", 4, "HITs published and draining at once per query")
	)
	flag.Parse()

	server := httpapi.NewServer()
	go func() {
		if err := runQueries(server, *seed, *accuracy, *inflight); err != nil {
			log.Printf("cdas-server: %v", err)
		}
	}()
	log.Printf("cdas-server: serving CDAS results on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, server.Handler()))
}

func runQueries(server *httpapi.Server, seed uint64, accuracy float64, inflight int) error {
	platform, err := crowd.NewPlatform(crowd.DefaultConfig(seed))
	if err != nil {
		return err
	}
	movies := []string{"Kung Fu Panda 2", "Thor", "Green Latern"}
	stream, err := textgen.Generate(textgen.Config{
		Seed:           seed + 1,
		Movies:         movies,
		TweetsPerMovie: 60,
	})
	if err != nil {
		return err
	}
	golden, err := textgen.Generate(textgen.Config{
		Seed:           seed + 2,
		Movies:         []string{"The Calibration Reel"},
		TweetsPerMovie: 40,
	})
	if err != nil {
		return err
	}
	start := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
	for i, movie := range movies {
		eng, err := engine.New(engine.CrowdPlatform{Platform: platform}, nil, engine.Config{
			JobName:          "tsa",
			RequiredAccuracy: accuracy,
			HITSize:          50,
			MaxInflightHITs:  inflight,
			// Distinct per-query seeds keep the queries' worker draws
			// independent: pipeline HITs are named after (JobName, Seed,
			// batch index), and the platform samples workers as a pure
			// function of that name.
			Seed: seed + uint64(i),
		})
		if err != nil {
			return err
		}
		q := tsa.Query(movie, accuracy, start, 24*time.Hour)
		m := tsa.Match(q, stream)
		if len(m.Tweets) == 0 {
			log.Printf("%s: no tweets matched; query not registered", movie)
			continue
		}
		// Stream the query's HITs through the concurrent pipeline; Follow
		// republishes the summary after every finished HIT, so the page
		// shows results accumulating while later HITs are still draining.
		ch, err := eng.Stream(context.Background(), tsa.Questions(m.Tweets), tsa.GoldenQuestions(golden))
		if err != nil {
			return err
		}
		batches, err := server.Follow(movie, q.Domain, m.Texts, len(m.Tweets), ch, q.Keywords...)
		if err != nil {
			return err
		}
		if acc, answered := tsa.Accuracy(batches, m.Truths); answered > 0 {
			log.Printf("%s: %d tweets in %d HITs, accuracy vs ground truth %.3f",
				movie, answered, len(batches), acc)
		}
	}
	return nil
}
