// Package dawidskene implements one-coin Dawid–Skene expectation
// maximisation: jointly estimating worker accuracies and true answers
// from the votes alone, with no golden questions.
//
// CDAS estimates worker accuracy by embedding golden questions
// (Section 3.3); the quality-management literature its related work cites
// (Ipeirotis et al.) instead infers accuracies from inter-worker
// agreement. This package provides that alternative so the two can be
// compared (see BenchmarkAblationDawidSkene): it alternates
//
//	E-step: P(z_q = r | votes, a) ∝ (1/m) · Π_j [ a_j if vote_jq = r,
//	        else (1-a_j)/(m-1) ]          (the same likelihood as Eq. 2)
//	M-step: a_j = Σ_q P(z_q = vote_jq) / |votes_j|
//
// until the accuracy estimates stabilise. The model is exactly the
// paper's worker model (one accuracy per worker, errors uniform over the
// m-1 wrong answers), so EM is a drop-in replacement for golden sampling
// wherever ground truth is unavailable.
package dawidskene

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"cdas/internal/stats"
)

// Vote is one worker's answer to one question.
type Vote struct {
	Question string
	Worker   string
	Answer   string
}

// Options tunes the EM loop. Zero fields take the documented defaults.
type Options struct {
	// MaxIterations bounds the EM loop; default 50.
	MaxIterations int
	// Tolerance stops the loop once no worker accuracy moves more than
	// this; default 1e-4.
	Tolerance float64
	// InitialAccuracy seeds every worker's accuracy; default 0.7 (a
	// weakly informative better-than-chance prior that breaks the
	// everyone-is-wrong symmetry).
	InitialAccuracy float64
}

func (o Options) withDefaults() Options {
	if o.MaxIterations == 0 {
		o.MaxIterations = 50
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-4
	}
	if o.InitialAccuracy == 0 {
		o.InitialAccuracy = 0.7
	}
	return o
}

// Result holds the EM estimates.
type Result struct {
	// WorkerAccuracy is the estimated accuracy per worker.
	WorkerAccuracy map[string]float64
	// Answers is the maximum-a-posteriori answer per question.
	Answers map[string]string
	// Posteriors maps each question to its posterior over observed
	// answers (the unobserved domain answers share the remaining mass).
	Posteriors map[string]map[string]float64
	// Iterations actually performed.
	Iterations int
}

// Estimate runs EM over the votes. m is the answer-domain size |R| and
// must be at least 2 and at least the number of distinct answers observed
// for any single question.
func Estimate(votes []Vote, m int, opts Options) (Result, error) {
	if len(votes) == 0 {
		return Result{}, errors.New("dawidskene: no votes")
	}
	if m < 2 {
		return Result{}, fmt.Errorf("dawidskene: domain size must be >= 2, got %d", m)
	}
	opts = opts.withDefaults()
	if opts.InitialAccuracy <= 1.0/float64(m) || opts.InitialAccuracy >= 1 {
		return Result{}, fmt.Errorf("dawidskene: initial accuracy %v must be in (1/m, 1)", opts.InitialAccuracy)
	}

	// Index the votes.
	type qvote struct {
		worker string
		answer string
	}
	byQuestion := make(map[string][]qvote)
	perWorker := make(map[string]int)
	for _, v := range votes {
		byQuestion[v.Question] = append(byQuestion[v.Question], qvote{v.Worker, v.Answer})
		perWorker[v.Worker]++
	}
	for q, vs := range byQuestion {
		distinct := make(map[string]struct{}, len(vs))
		for _, v := range vs {
			distinct[v.answer] = struct{}{}
		}
		if len(distinct) > m {
			return Result{}, fmt.Errorf("dawidskene: question %q has %d distinct answers > m=%d", q, len(distinct), m)
		}
	}

	acc := make(map[string]float64, len(perWorker))
	for w := range perWorker {
		acc[w] = opts.InitialAccuracy
	}

	questions := make([]string, 0, len(byQuestion))
	for q := range byQuestion {
		questions = append(questions, q)
	}
	sort.Strings(questions) // deterministic iteration

	posteriors := make(map[string]map[string]float64, len(byQuestion))
	iterations := 0
	for iter := 0; iter < opts.MaxIterations; iter++ {
		iterations = iter + 1

		// E-step: per-question posterior over answers.
		for _, q := range questions {
			vs := byQuestion[q]
			// Collect distinct observed answers.
			answers := make([]string, 0, len(vs))
			seen := make(map[string]struct{}, len(vs))
			for _, v := range vs {
				if _, dup := seen[v.answer]; !dup {
					seen[v.answer] = struct{}{}
					answers = append(answers, v.answer)
				}
			}
			sort.Strings(answers)
			k := len(answers)
			// Log-likelihood of each observed answer being true, plus
			// one representative unobserved answer (they all share the
			// same likelihood: every vote is wrong).
			logits := make([]float64, k, k+1)
			for ai, a := range answers {
				ll := 0.0
				for _, v := range vs {
					aj := stats.ClampProb(acc[v.worker])
					if v.answer == a {
						ll += math.Log(aj)
					} else {
						ll += math.Log((1 - aj) / float64(m-1))
					}
				}
				logits[ai] = ll
			}
			unobserved := m - k
			if unobserved > 0 {
				ll := 0.0
				for _, v := range vs {
					aj := stats.ClampProb(acc[v.worker])
					_ = v
					ll += math.Log((1 - aj) / float64(m-1))
				}
				// Fold the multiplicity of the m-k unobserved answers in
				// as a log weight.
				logits = append(logits, ll+math.Log(float64(unobserved)))
			}
			lse := stats.LogSumExp(logits)
			post := make(map[string]float64, k)
			for ai, a := range answers {
				post[a] = math.Exp(logits[ai] - lse)
			}
			posteriors[q] = post
		}

		// M-step: re-estimate worker accuracies.
		sums := make(map[string]float64, len(acc))
		for _, q := range questions {
			post := posteriors[q]
			for _, v := range byQuestion[q] {
				sums[v.worker] += post[v.answer]
			}
		}
		maxDelta := 0.0
		for w := range acc {
			next := stats.ClampProb(sums[w] / float64(perWorker[w]))
			if d := math.Abs(next - acc[w]); d > maxDelta {
				maxDelta = d
			}
			acc[w] = next
		}
		if maxDelta < opts.Tolerance {
			break
		}
	}

	answers := make(map[string]string, len(byQuestion))
	for q, post := range posteriors {
		best, bestP := "", -1.0
		// Deterministic tie-break by answer string.
		keys := make([]string, 0, len(post))
		for a := range post {
			keys = append(keys, a)
		}
		sort.Strings(keys)
		for _, a := range keys {
			if post[a] > bestP {
				best, bestP = a, post[a]
			}
		}
		answers[q] = best
	}
	return Result{
		WorkerAccuracy: acc,
		Answers:        answers,
		Posteriors:     posteriors,
		Iterations:     iterations,
	}, nil
}
