// Budget ledger: global and per-job crowd-spend accounting backing the
// scheduler's priority-aware admission. The ledger only counts money —
// parking decisions (what to do when a job doesn't fit) live in the
// scheduler's flush loop, and durable persistence lives in jobs.Service
// (the ledger is rebuilt from its WAL-replayed budget state on restart).
package scheduler

import (
	"fmt"
	"sort"
	"sync"
)

// Ledger tracks crowd spend against a global limit and optional per-job
// limits. It is safe for concurrent use. A zero limit means unlimited.
type Ledger struct {
	mu          sync.Mutex
	globalLimit float64
	globalSpent float64
	jobs        map[string]*jobLedger
}

type jobLedger struct{ limit, spent float64 }

// NewLedger builds a ledger with the given global limit (0 = unlimited).
func NewLedger(globalLimit float64) *Ledger {
	return &Ledger{globalLimit: globalLimit, jobs: make(map[string]*jobLedger)}
}

// SetJobLimit records a job's spend cap (0 = unlimited). Lowering a
// limit below the job's spend doesn't claw anything back; it only blocks
// further admission.
func (l *Ledger) SetJobLimit(job string, limit float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.job(job).limit = limit
}

// Charge records amount of actual crowd spend against the job and the
// global total. Charges are facts, not requests: they are applied even
// past a limit (the crowd was already paid); limits gate admission of
// future work, not settlement of finished work.
func (l *Ledger) Charge(job string, amount float64) {
	if amount == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.globalSpent += amount
	l.job(job).spent += amount
}

// Restore seeds the ledger from persisted state (WAL replay): global
// spend and per-job limit/spend pairs.
func (l *Ledger) Restore(globalSpent float64, jobs map[string]JobBudget) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.globalSpent = globalSpent
	for name, jb := range jobs {
		rec := l.job(name)
		rec.limit = jb.Limit
		rec.spent = jb.Spent
	}
}

// Admissible reports whether charging the job an estimated amount would
// stay inside both the job's own limit and the global limit.
// globalReserved is budget already promised to any peer admitted in the
// same scheduling round but not yet settled; jobReserved is the part of
// it promised to this same job (two tickets under one name must not
// jointly blow the job's cap). A peer's reservation never shrinks
// another job's own cap.
func (l *Ledger) Admissible(job string, estimate, globalReserved, jobReserved float64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.globalLimit > 0 && l.globalSpent+globalReserved+estimate > l.globalLimit {
		return false
	}
	if rec, ok := l.jobs[job]; ok && rec.limit > 0 && rec.spent+jobReserved+estimate > rec.limit {
		return false
	}
	return true
}

// MarginalDecision is the outcome of pricing an enumeration job's next
// HIT batch against its expected yield.
type MarginalDecision int

const (
	// MarginalAdmit: the batch is worth buying and fits the budget.
	MarginalAdmit MarginalDecision = iota
	// MarginalStop: the expected value of the batch no longer covers its
	// price — discovery has dried up. The job should finish, not park:
	// more budget would not change the economics.
	MarginalStop
	// MarginalPark: the batch is still worth buying but doesn't fit the
	// job or global budget. The job parks and can resume once budget is
	// raised.
	MarginalPark
)

// AdmitMarginal prices an enumeration job's next HIT batch: admit only
// while E[new items per batch] x per-item value exceeds the batch
// price. This is the open-ended counterpart of the Eq.4 accuracy bound —
// a principled stop for queries with no known answer set. Value is
// checked before budget so a dried-up job finishes Done instead of
// parking on a budget it would never productively spend.
func (l *Ledger) AdmitMarginal(job string, price, expectedNewItems, itemValue float64) MarginalDecision {
	if expectedNewItems*itemValue <= price {
		return MarginalStop
	}
	if !l.Admissible(job, price, 0, 0) {
		return MarginalPark
	}
	return MarginalAdmit
}

// JobBudget is one job's budget line: its cap and what it has spent.
type JobBudget struct {
	Limit float64 `json:"limit"` // 0 = unlimited
	Spent float64 `json:"spent"`
}

// JobBudgetLine is a named budget line in a snapshot.
type JobBudgetLine struct {
	Job string `json:"job"`
	JobBudget
}

// BudgetSnapshot is the ledger's state for reporting (/api/scheduler).
type BudgetSnapshot struct {
	GlobalLimit float64         `json:"global_limit"` // 0 = unlimited
	GlobalSpent float64         `json:"global_spent"`
	Jobs        []JobBudgetLine `json:"jobs,omitempty"` // sorted by job name
}

// Snapshot copies the ledger's state, job lines sorted by name.
func (l *Ledger) Snapshot() BudgetSnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := BudgetSnapshot{GlobalLimit: l.globalLimit, GlobalSpent: l.globalSpent}
	for name, rec := range l.jobs {
		out.Jobs = append(out.Jobs, JobBudgetLine{
			Job:       name,
			JobBudget: JobBudget{Limit: rec.limit, Spent: rec.spent},
		})
	}
	sort.Slice(out.Jobs, func(i, j int) bool { return out.Jobs[i].Job < out.Jobs[j].Job })
	return out
}

// Spent reports the global spend so far.
func (l *Ledger) Spent() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.globalSpent
}

// String summarises the ledger for logs.
func (l *Ledger) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.globalLimit <= 0 {
		return fmt.Sprintf("spent %.3f (unlimited)", l.globalSpent)
	}
	return fmt.Sprintf("spent %.3f of %.3f", l.globalSpent, l.globalLimit)
}

// job returns (creating if needed) a job's ledger line. Callers hold mu.
func (l *Ledger) job(name string) *jobLedger {
	rec, ok := l.jobs[name]
	if !ok {
		rec = &jobLedger{}
		l.jobs[name] = rec
	}
	return rec
}
