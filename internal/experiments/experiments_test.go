package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// f parses a table cell as a float (percentages included).
func f(t *testing.T, cell string) float64 {
	t.Helper()
	cell = strings.TrimSuffix(cell, "%")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", cell, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 15 {
		t.Fatalf("registry has %d experiments, want 15 (table4 + fig5..fig18)", len(ids))
	}
	for _, id := range ids {
		if _, ok := Lookup(id); !ok {
			t.Errorf("Lookup(%q) failed", id)
		}
	}
	if _, ok := Lookup("fig99"); ok {
		t.Error("Lookup of unknown ID succeeded")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{
		ID:      "fig0",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   "a note",
	}
	s := tbl.String()
	for _, want := range []string{"FIG0", "demo", "a", "bb", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	tbl, err := Table4(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tbl.Rows))
	}
	ver := tbl.Rows[2]
	if ver[4] != "neg" {
		t.Errorf("verification answer = %q, paper picks neg", ver[4])
	}
	for i, want := range []float64{0.329, 0.176, 0.495} {
		got := f(t, ver[1+i])
		if got < want-0.001 || got > want+0.001 {
			t.Errorf("verification confidence %d = %v, paper reports %v", i, got, want)
		}
	}
	if tbl.Rows[0][4] != "pos" || tbl.Rows[1][4] != "pos" {
		t.Error("both voting baselines should pick pos")
	}
}

func TestFigure6Shape(t *testing.T) {
	tbl, err := Figure6(1)
	if err != nil {
		t.Fatal(err)
	}
	prevCons, prevRef := 0.0, 0.0
	for _, row := range tbl.Rows {
		c := f(t, row[0])
		cons, ref := f(t, row[1]), f(t, row[2])
		if ref > cons {
			t.Errorf("C=%v: refined %v exceeds conservative %v", c, ref, cons)
		}
		// The paper's claim: refined is less than half the conservative.
		// It holds through C≈0.95; at the extreme right the ratio tends
		// to ~0.55 (the Chernoff constant), so allow that much there.
		if c >= 0.75 && c <= 0.95 && ref > cons/2 {
			t.Errorf("C=%v: refined %v not below half of conservative %v", c, ref, cons)
		}
		if ref > 0.56*cons {
			t.Errorf("C=%v: refined %v above 0.56x conservative %v", c, ref, cons)
		}
		if cons < prevCons || ref < prevRef {
			t.Errorf("C=%v: estimates not monotone", c)
		}
		prevCons, prevRef = cons, ref
	}
}

func TestFigure7Shape(t *testing.T) {
	tbl, err := Figure7(1)
	if err != nil {
		t.Fatal(err)
	}
	first, last := tbl.Rows[0], tbl.Rows[len(tbl.Rows)-1]
	if f(t, last[3]) <= f(t, first[3]) {
		t.Error("verification accuracy should grow with workers")
	}
	for _, row := range tbl.Rows {
		n := f(t, row[0])
		maj, half, ver := f(t, row[1]), f(t, row[2]), f(t, row[3])
		if n >= 5 && ver+0.02 < maj {
			t.Errorf("n=%v: verification %v clearly below majority %v", n, ver, maj)
		}
		if n >= 5 && ver+0.02 < half {
			t.Errorf("n=%v: verification %v clearly below half %v", n, ver, half)
		}
	}
	if f(t, last[3]) < 0.9 {
		t.Errorf("verification at 29 workers = %v, want >= 0.9", f(t, last[3]))
	}
}

func TestFigure8VerificationMeetsRequirement(t *testing.T) {
	tbl, err := Figure8(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		req, ver := f(t, row[0]), f(t, row[4])
		if ver+0.01 < req {
			t.Errorf("required %v: verification %v below requirement", req, ver)
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	tbl, err := Figure9(1)
	if err != nil {
		t.Fatal(err)
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	majEnd, halfEnd := f(t, last[1]), f(t, last[2])
	if majEnd > halfEnd {
		t.Errorf("at 29 workers majority no-answer %v should be below half's %v", majEnd, halfEnd)
	}
	if halfEnd < 2 {
		t.Errorf("half-voting no-answer at 29 workers = %v%%, should stay substantial", halfEnd)
	}
	// Majority's ratio at the end must be well below its peak.
	peak := 0.0
	for _, row := range tbl.Rows {
		if v := f(t, row[1]); v > peak {
			peak = v
		}
	}
	if peak > 0 && majEnd > peak/2 {
		t.Errorf("majority no-answer did not dissolve: end %v vs peak %v", majEnd, peak)
	}
}

func TestFigure10Flat(t *testing.T) {
	tbl, err := Figure10(1)
	if err != nil {
		t.Fatal(err)
	}
	// Beyond the first rows (tiny denominators), ratios stay in a narrow
	// band.
	var ratios []float64
	for _, row := range tbl.Rows {
		if f(t, row[0]) >= 100 {
			ratios = append(ratios, f(t, row[2]))
		}
	}
	lo, hi := ratios[0], ratios[0]
	for _, r := range ratios {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if hi-lo > 8 {
		t.Errorf("half-voting no-answer ratio swings %v..%v points; should be flat", lo, hi)
	}
}

func TestFigure11Shape(t *testing.T) {
	tbl, err := Figure11(1)
	if err != nil {
		t.Fatal(err)
	}
	first := tbl.Rows[0]
	bestFirst, worstFirst := f(t, first[2]), f(t, first[4])
	if bestFirst <= worstFirst {
		t.Errorf("best-first start %v should beat worst-first %v", bestFirst, worstFirst)
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	final := f(t, last[1])
	for i := 2; i <= 4; i++ {
		if diff := f(t, last[i]) - final; diff > 0.02 || diff < -0.02 {
			t.Errorf("sequences did not converge: col %d final %v vs %v", i, f(t, last[i]), final)
		}
	}
}

func TestFigures12And13Shape(t *testing.T) {
	workers, accs, err := earlyTermination(1)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range workers.Rows {
		planned := f(t, row[1])
		minExp, minMax, expMax := f(t, row[2]), f(t, row[3]), f(t, row[4])
		for _, used := range []float64{minExp, minMax, expMax} {
			if used > planned {
				t.Errorf("row %d: strategy used %v > planned %v", i, used, planned)
			}
		}
		if planned >= 5 && minMax > 0.9*planned {
			t.Errorf("row %d: MinMax saved under 10%% (%v of %v)", i, minMax, planned)
		}
		if expMax > minMax {
			t.Errorf("row %d: ExpMax %v used more than MinMax %v", i, expMax, minMax)
		}
	}
	for _, row := range accs.Rows {
		req := f(t, row[0])
		minMax, expMax := f(t, row[2]), f(t, row[3])
		if minMax+0.01 < req {
			t.Errorf("required %v: MinMax accuracy %v below requirement", req, minMax)
		}
		if expMax+0.01 < req {
			t.Errorf("required %v: ExpMax accuracy %v below requirement", req, expMax)
		}
	}
}

func TestFigure14Divergence(t *testing.T) {
	tbl, err := Figure14(1)
	if err != nil {
		t.Fatal(err)
	}
	// Rows are ordered high bins first; the top two bins are 95-100 and
	// 90-95.
	topApproval := f(t, tbl.Rows[0][2]) + f(t, tbl.Rows[1][2])
	topAccuracy := f(t, tbl.Rows[0][1]) + f(t, tbl.Rows[1][1])
	if topApproval < 60 {
		t.Errorf("top-bin approval mass = %v%%, want >= 60%%", topApproval)
	}
	if topAccuracy > 25 {
		t.Errorf("top-bin accuracy mass = %v%%, want <= 25%%", topAccuracy)
	}
}

func TestFigure15ErrorShrinks(t *testing.T) {
	tbl, err := Figure15(1)
	if err != nil {
		t.Fatal(err)
	}
	firstErr := f(t, tbl.Rows[0][2])
	lastErr := f(t, tbl.Rows[len(tbl.Rows)-1][2])
	if lastErr != 0 {
		t.Errorf("error at 100%% sampling = %v, want 0", lastErr)
	}
	if firstErr <= 0.05 {
		t.Errorf("error at lowest rate = %v; should be visibly larger", firstErr)
	}
	mid := f(t, tbl.Rows[2][2]) // 20% rate
	if mid >= firstErr {
		t.Errorf("error did not shrink: %v at 20%% vs %v at 5%%", mid, firstErr)
	}
}

func TestFigure16SamplingRates(t *testing.T) {
	tbl, err := Figure16(1)
	if err != nil {
		t.Fatal(err)
	}
	var diff20, diff5 float64
	for _, row := range tbl.Rows {
		req := f(t, row[0])
		r20, r100 := f(t, row[4]), f(t, row[5])
		diff20 += abs(r20 - r100)
		diff5 += abs(f(t, row[1]) - r100)
		if r20+0.02 < req {
			t.Errorf("required %v: 20%% sampling accuracy %v misses it", req, r20)
		}
	}
	n := float64(len(tbl.Rows))
	if diff20/n > 0.03 {
		t.Errorf("20%% sampling deviates %v on average from 100%%", diff20/n)
	}
	if diff5 < diff20 {
		t.Errorf("5%% sampling (%v) should deviate more than 20%% (%v)", diff5, diff20)
	}
}

func TestFigure17CrowdBeatsALIPR(t *testing.T) {
	tbl, err := Figure17(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 subjects", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		aliprAcc, one, five := f(t, row[1]), f(t, row[2]), f(t, row[4])
		if aliprAcc > 0.45 {
			t.Errorf("%s: ALIPR %v implausibly strong", row[0], aliprAcc)
		}
		if one < aliprAcc+0.3 {
			t.Errorf("%s: 1 worker (%v) should clearly beat ALIPR (%v)", row[0], one, aliprAcc)
		}
		if one < 0.7 {
			t.Errorf("%s: 1-worker accuracy %v, want >= 0.7", row[0], one)
		}
		if five < one-0.05 {
			t.Errorf("%s: 5 workers (%v) clearly below 1 worker (%v)", row[0], five, one)
		}
	}
}

func TestFigure18MeetsRequirement(t *testing.T) {
	tbl, err := Figure18(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		req, acc := f(t, row[0]), f(t, row[2])
		if acc+0.01 < req {
			t.Errorf("required %v: accuracy %v below requirement", req, acc)
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5 trains the SVM baseline; skipped in -short")
	}
	tbl, err := Figure5(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 movies", len(tbl.Rows))
	}
	oneWins := 0
	for _, row := range tbl.Rows {
		svmAcc := f(t, row[1])
		one, three, five := f(t, row[2]), f(t, row[3]), f(t, row[4])
		if svmAcc < 0.45 || svmAcc > 0.85 {
			t.Errorf("%s: SVM accuracy %v outside plausible band", row[0], svmAcc)
		}
		if one > svmAcc {
			oneWins++
		}
		if three+0.02 < svmAcc {
			t.Errorf("%s: 3 workers (%v) clearly below SVM (%v)", row[0], three, svmAcc)
		}
		if five <= svmAcc {
			t.Errorf("%s: 5 workers (%v) must beat SVM (%v)", row[0], five, svmAcc)
		}
		if five+0.05 < one {
			t.Errorf("%s: 5 workers (%v) clearly below 1 worker (%v)", row[0], five, one)
		}
	}
	// "even if only one worker is employed ... in most cases".
	if oneWins < 3 {
		t.Errorf("1 worker beats SVM on only %d/5 movies, want >= 3", oneWins)
	}
}

func TestRunAllProducesAllTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment; skipped in -short")
	}
	tables, err := RunAll(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(IDs()) {
		t.Fatalf("RunAll returned %d tables, want %d", len(tables), len(IDs()))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: empty table", tbl.ID)
		}
		if tbl.Title == "" || len(tbl.Columns) == 0 {
			t.Errorf("%s: missing title/columns", tbl.ID)
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Columns) {
				t.Errorf("%s: ragged row %v", tbl.ID, row)
			}
		}
	}
}
