package exec

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestAccumulatorMatchesSummarise: feeding outcomes incrementally — from
// several goroutines, as the pipeline collector does — must land on the
// same Summary as one batch Summarise call.
func TestAccumulatorMatchesSummarise(t *testing.T) {
	domain := []string{"pos", "neu", "neg"}
	texts := make(map[string]string)
	var outcomes []Outcome
	for i := 0; i < 60; i++ {
		id := fmt.Sprintf("t%02d", i)
		texts[id] = fmt.Sprintf("tweet %d was wonderful fun", i)
		outcomes = append(outcomes, Outcome{ItemID: id, Accepted: domain[i%3]})
	}

	acc := NewAccumulator(domain, "tweet")
	for id, text := range texts {
		acc.AddText(id, text)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g * 15; i < (g+1)*15; i++ {
				acc.Observe(outcomes[i])
			}
		}(g)
	}
	wg.Wait()

	got := acc.Summary()
	want := Summarise(domain, outcomes, texts, "tweet")
	if !reflect.DeepEqual(got.Percentages, want.Percentages) {
		t.Errorf("percentages: got %v, want %v", got.Percentages, want.Percentages)
	}
	if !reflect.DeepEqual(got.Reasons, want.Reasons) {
		t.Errorf("reasons: got %v, want %v", got.Reasons, want.Reasons)
	}
	if got.Items != want.Items || acc.Items() != 60 {
		t.Errorf("items: got %d/%d, want 60", got.Items, acc.Items())
	}
	if n := len(acc.Outcomes()); n != 60 {
		t.Errorf("outcomes copy has %d entries, want 60", n)
	}
}
