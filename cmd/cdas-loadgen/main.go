// Command cdas-loadgen drives the full CDAS stack under a
// deterministic, seedable multi-tenant workload and reports latency
// percentiles, throughput, crowd spend and dedup savings.
//
// By default it boots a complete in-process server (simulated crowd →
// engine → cross-query scheduler → job service → dispatchers → v1 API)
// and talks to it purely through the cdas/client SDK; -addr points it
// at a running cdas-server instead.
//
// Usage:
//
//	cdas-loadgen [-profile smoke|contention|dedup|budget|stream|enum] [-out BENCH_e2e.json]
//	             [-seed N] [-tenants N] [-questions N] [-overlap F] [-domains N]
//	             [-rounds N] [-watchers F] [-arrival DUR] [-dispatchers N]
//	             [-priorities N] [-tenant-budget F] [-global-budget F]
//	             [-accuracy F] [-hitsize N] [-inflight N] [-dedup=true]
//	             [-aggregator NAME] [-matrix] [-addr URL] [-timeout DUR] [-quiet]
//
// -aggregator runs every submitted job under the named answer-
// aggregation method (see GET /v1/aggregators); -matrix additionally
// attaches the engine-direct accuracy-vs-cost sweep over
// (aggregator × assignment overlap) to the report, which the bench
// gate then pins.
//
// With -arrival 0 (the default for every named profile) the run is
// closed-loop and deterministic: a fixed seed reproduces the same
// aggregate spend, job outcomes and results hash across repeats and
// across -dispatchers settings. A positive -arrival switches to timed
// mode: tenants arrive on a seeded exponential process against a
// periodically flushing server, which measures realistic latency at the
// price of reproducible attribution.
//
// On SIGINT or -timeout the run stops, SSE watchers are drained with a
// bounded deadline, the partial report is still written (marked
// "partial": true) and the exit status is 2 — never a hang, never a
// silent empty report. Exit status is 0 on success and 1 on
// configuration or setup errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cdas/internal/loadgen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the testable entry point. sigCh, when non-nil, substitutes the
// process signal feed.
func run(args []string, stdout, stderr io.Writer, sig <-chan os.Signal) int {
	fs := flag.NewFlagSet("cdas-loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		profileName  = fs.String("profile", "smoke", "named workload profile: "+strings.Join(loadgen.ProfileNames(), "|"))
		list         = fs.Bool("list", false, "list the named profiles and exit")
		seed         = fs.Uint64("seed", 0, "override the profile's seed")
		tenants      = fs.Int("tenants", 0, "override the tenant count")
		questions    = fs.Int("questions", 0, "override questions per tenant")
		overlap      = fs.Float64("overlap", -1, "override the shared-question overlap fraction")
		domains      = fs.Int("domains", 0, "override the domain-variant count")
		rounds       = fs.Int("rounds", 0, "override the round count")
		watchers     = fs.Float64("watchers", -1, "override the SSE watcher fraction")
		arrival      = fs.Duration("arrival", 0, "mean inter-arrival gap (0: closed-loop deterministic mode)")
		dispatchers  = fs.Int("dispatchers", 0, "override the dispatcher pool size")
		priorities   = fs.Int("priorities", -1, "override the priority level count")
		tenantBudget = fs.Float64("tenant-budget", -1, "override the per-job budget (0: unlimited)")
		globalBudget = fs.Float64("global-budget", -1, "override the global budget (0: unlimited)")
		accuracy     = fs.Float64("accuracy", 0, "override the required accuracy")
		hitSize      = fs.Int("hitsize", 0, "override the HIT size")
		inflight     = fs.Int("inflight", 0, "override max in-flight HITs per engine")
		dedup        = fs.Bool("dedup", true, "coalesce identical questions across jobs")
		aggregator   = fs.String("aggregator", "", "answer-aggregation method for every job (empty: server default)")
		matrix       = fs.Bool("matrix", false, "attach the accuracy-vs-cost (aggregator x overlap) matrix to the report")
		addr         = fs.String("addr", "", "drive a running cdas-server at this base URL instead of in-process")
		out          = fs.String("out", "", "write the machine-readable report (BENCH_e2e.json schema) here")
		timeout      = fs.Duration("timeout", 10*time.Minute, "abort the run after this long (partial report, exit 2)")
		quiet        = fs.Bool("quiet", false, "suppress progress logging")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *list {
		for _, n := range loadgen.ProfileNames() {
			p, _ := loadgen.Named(n)
			fmt.Fprintf(stdout, "%-12s %3d tenants x %3d questions x %d rounds, overlap %.0f%%, %d domains, watchers %.0f%%\n",
				n, p.Tenants, p.QuestionsPerTenant, p.Rounds, 100*p.Overlap, p.Domains, 100*p.WatcherFraction)
		}
		return 0
	}
	p, ok := loadgen.Named(*profileName)
	if !ok {
		fmt.Fprintf(stderr, "cdas-loadgen: unknown profile %q (have: %s)\n", *profileName, strings.Join(loadgen.ProfileNames(), ", "))
		return 1
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["seed"] {
		p.Seed = *seed
	}
	if set["tenants"] {
		p.Tenants = *tenants
	}
	if set["questions"] {
		p.QuestionsPerTenant = *questions
	}
	if set["overlap"] {
		p.Overlap = *overlap
	}
	if set["domains"] {
		p.Domains = *domains
	}
	if set["rounds"] {
		p.Rounds = *rounds
	}
	if set["watchers"] {
		p.WatcherFraction = *watchers
	}
	if set["arrival"] {
		p.ArrivalMean = *arrival
	}
	if set["dispatchers"] {
		p.Dispatchers = *dispatchers
	}
	if set["priorities"] {
		p.PriorityLevels = *priorities
	}
	if set["tenant-budget"] {
		p.TenantBudget = *tenantBudget
	}
	if set["global-budget"] {
		p.GlobalBudget = *globalBudget
	}
	if set["accuracy"] {
		p.RequiredAccuracy = *accuracy
	}
	if set["hitsize"] {
		p.HITSize = *hitSize
	}
	if set["inflight"] {
		p.Inflight = *inflight
	}
	p.DisableDedup = !*dedup
	if set["aggregator"] {
		p.Aggregator = *aggregator
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if sig == nil {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(ch)
		sig = ch
	}
	go func() {
		select {
		case s := <-sig:
			fmt.Fprintf(stderr, "cdas-loadgen: %v — draining and writing the partial report\n", s)
			cancel()
		case <-ctx.Done():
		}
	}()

	cfg := loadgen.Config{Profile: p, Addr: *addr}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) { fmt.Fprintf(stderr, format+"\n", args...) }
	}
	rep, err := loadgen.Run(ctx, cfg)
	if rep != nil && *matrix {
		m, merr := loadgen.RunMatrix(loadgen.MatrixConfig{Seed: p.Seed})
		if merr != nil {
			fmt.Fprintf(stderr, "cdas-loadgen: %v\n", merr)
			return 1
		}
		rep.Matrix = m
	}
	if rep != nil {
		fmt.Fprint(stdout, rep.Table())
		if *out != "" {
			if werr := rep.WriteJSON(*out); werr != nil {
				fmt.Fprintf(stderr, "cdas-loadgen: %v\n", werr)
				return 1
			}
			fmt.Fprintf(stderr, "cdas-loadgen: report written to %s\n", *out)
		}
	}
	switch {
	case err == nil:
		return 0
	case errors.Is(err, loadgen.ErrInterrupted), errors.Is(err, loadgen.ErrStalled):
		fmt.Fprintf(stderr, "cdas-loadgen: %v\n", err)
		return 2
	default:
		fmt.Fprintf(stderr, "cdas-loadgen: %v\n", err)
		return 1
	}
}
