package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"cdas/internal/loadgen"
)

func TestList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut, nil); code != 0 {
		t.Fatalf("-list returned %d: %s", code, errOut.String())
	}
	for _, name := range loadgen.ProfileNames() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list missing profile %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownProfile(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-profile", "nope"}, &out, &errOut, nil); code != 1 {
		t.Fatalf("unknown profile returned %d", code)
	}
	if !strings.Contains(errOut.String(), "unknown profile") {
		t.Fatalf("missing error: %s", errOut.String())
	}
}

// TestRunSmallProfile drives a scaled-down run end to end through the
// CLI, with enough overrides to cover the flag plumbing, and checks the
// report lands on disk.
func TestRunSmallProfile(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "report.json")
	var out, errOut strings.Builder
	code := run([]string{
		"-profile", "smoke",
		"-seed", "7",
		"-tenants", "2",
		"-questions", "8",
		"-overlap", "0.5",
		"-domains", "1",
		"-rounds", "1",
		"-watchers", "0.5",
		"-dispatchers", "2",
		"-priorities", "2",
		"-tenant-budget", "0",
		"-global-budget", "0",
		"-accuracy", "0.8",
		"-hitsize", "20",
		"-inflight", "2",
		"-quiet",
		"-out", outPath,
	}, &out, &errOut, nil)
	if code != 0 {
		t.Fatalf("run returned %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Profile.Seed != 7 || rep.Profile.Tenants != 2 || rep.Jobs.Done != 2 {
		t.Fatalf("report does not reflect overrides: %+v", rep.Profile)
	}
	if !strings.Contains(out.String(), "results hash") {
		t.Fatalf("table missing from stdout: %s", out.String())
	}
}

// TestRunInterrupted feeds a synthetic SIGINT into a timed-mode run:
// the CLI must exit 2 and still write the partial report.
func TestRunInterrupted(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "partial.json")
	sig := make(chan os.Signal, 1)
	go func() {
		time.Sleep(300 * time.Millisecond)
		sig <- syscall.SIGINT
	}()
	var out, errOut strings.Builder
	code := run([]string{
		"-profile", "contention",
		"-arrival", "500ms",
		"-quiet",
		"-out", outPath,
	}, &out, &errOut, sig)
	if code != 2 {
		t.Fatalf("interrupted run returned %d\nstderr: %s", code, errOut.String())
	}
	rep, err := loadgen.LoadReport(outPath)
	if err != nil {
		t.Fatalf("partial report unreadable: %v", err)
	}
	if !rep.Partial {
		t.Fatalf("report not marked partial: %+v", rep)
	}
}
