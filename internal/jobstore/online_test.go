package jobstore

// Tests for the online (off-commit-path) checkpoint mode: commits keep
// flowing while a checkpoint flushes in the background, failures
// surface through OnCheckpoint without poisoning the store, and the
// crash-equivalence property holds when the crash lands inside an
// in-flight background flush.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestLSMApplyNotBlockedByCheckpoint parks a background checkpoint
// flush on a failpoint and proves the commit path keeps accepting
// writes — and reads see the frozen data — the whole time.
func TestLSMApplyNotBlockedByCheckpoint(t *testing.T) {
	dir := t.TempDir()
	parked := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	done := make(chan error, 1)
	l, err := OpenLSM(LSMConfig{
		Dir:              dir,
		OnlineCheckpoint: true,
		OnCheckpoint:     func(err error) { done <- err },
		Fail: func(point string) error {
			if point == FailRunSync {
				once.Do(func() {
					close(parked)
					<-release
				})
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	for i := 0; i < 10; i++ {
		mustApply(t, l, Op{Key: fmt.Sprintf("pre%02d", i), Value: []byte("v")})
	}
	started, err := l.CheckpointAsync()
	if err != nil || !started {
		t.Fatalf("CheckpointAsync: started=%v err=%v", started, err)
	}
	<-parked

	// The flush is wedged mid-run-write. Commits and reads must not be.
	for i := 0; i < 50; i++ {
		applyDone := make(chan error, 1)
		go func(i int) {
			applyDone <- l.Apply([]Op{{Key: fmt.Sprintf("live%02d", i), Value: []byte("w")}})
		}(i)
		select {
		case err := <-applyDone:
			if err != nil {
				t.Fatalf("apply during checkpoint: %v", err)
			}
		case <-time.After(5 * time.Second):
			close(release)
			t.Fatal("Apply blocked behind an in-flight checkpoint")
		}
	}
	mustGet(t, l, "pre03", "v")  // frozen view still readable
	mustGet(t, l, "live07", "w") // live memtable too

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("checkpoint flush: %v", err)
	}
	l.Quiesce()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenLSM(LSMConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	mustGet(t, r, "pre03", "v")
	mustGet(t, r, "live49", "w")
	if r.BootStats().Runs != 1 {
		t.Fatalf("runs after online checkpoint = %d, want 1", r.BootStats().Runs)
	}
}

// TestLSMCheckpointFailureRecovers injects a plain (non-crash) storage
// error into one checkpoint flush: the error reaches OnCheckpoint, the
// store keeps serving reads and writes, nothing committed is lost, and
// a retried checkpoint succeeds.
func TestLSMCheckpointFailureRecovers(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("disk full")
	var mu sync.Mutex
	failing := true
	done := make(chan error, 4)
	l, err := OpenLSM(LSMConfig{
		Dir:              dir,
		OnlineCheckpoint: true,
		OnCheckpoint:     func(err error) { done <- err },
		Fail: func(point string) error {
			mu.Lock()
			defer mu.Unlock()
			if failing && point == FailRunSync {
				return boom
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	for i := 0; i < 8; i++ {
		mustApply(t, l, Op{Key: fmt.Sprintf("k%02d", i), Value: []byte("v1")})
	}
	started, err := l.CheckpointAsync()
	if err != nil || !started {
		t.Fatalf("CheckpointAsync: started=%v err=%v", started, err)
	}
	if err := <-done; !errors.Is(err, boom) {
		t.Fatalf("OnCheckpoint err = %v, want %v", err, boom)
	}

	// Not poisoned: the frozen entries merged back and the store works.
	mustGet(t, l, "k03", "v1")
	mustApply(t, l, Op{Key: "k03", Value: []byte("v2")})
	mustGet(t, l, "k03", "v2")

	mu.Lock()
	failing = false
	mu.Unlock()
	if err := l.Checkpoint(); err != nil {
		t.Fatalf("retried checkpoint: %v", err)
	}
	if got := l.Runs(); got != 1 {
		t.Fatalf("runs after retry = %d, want 1", got)
	}
	l.Close()
	r, err := OpenLSM(LSMConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	mustGet(t, r, "k03", "v2")
	mustGet(t, r, "k07", "v1")
}

// TestLSMLegacyWALUpgrade: a store written before WAL segmentation has
// a single lsm.wal; opening it must adopt that file as segment 1 with
// nothing lost.
func TestLSMLegacyWALUpgrade(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLSM(LSMConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustApply(t, l, Op{Key: "a", Value: []byte("1")}, Op{Key: "b", Value: []byte("2")})
	l.Close()
	if err := os.Rename(filepath.Join(dir, segmentFileName(1)), filepath.Join(dir, lsmWALName)); err != nil {
		t.Fatal(err)
	}
	r, err := OpenLSM(LSMConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	mustGet(t, r, "a", "1")
	mustGet(t, r, "b", "2")
	if _, err := os.Stat(filepath.Join(dir, lsmWALName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("legacy %s still present after upgrade (stat err %v)", lsmWALName, err)
	}
	if _, err := os.Stat(filepath.Join(dir, segmentFileName(1))); err != nil {
		t.Fatalf("adopted segment missing: %v", err)
	}
}

// TestLSMCloseIdempotentAndFailsMutations: Close twice is fine; Apply,
// Checkpoint and Compact after Close all fail.
func TestLSMCloseIdempotentAndFailsMutations(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLSM(LSMConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustApply(t, l, Op{Key: "k", Value: []byte("v")})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := l.Put("x", []byte("y")); !errors.Is(err, errLSMClosed) {
		t.Fatalf("Put after close: %v", err)
	}
	if err := l.Checkpoint(); !errors.Is(err, errLSMClosed) {
		t.Fatalf("Checkpoint after close: %v", err)
	}
	if _, err := l.CheckpointAsync(); !errors.Is(err, errLSMClosed) {
		t.Fatalf("CheckpointAsync after close: %v", err)
	}
	if err := l.Compact(); !errors.Is(err, errLSMClosed) {
		t.Fatalf("Compact after close: %v", err)
	}
}

// TestLSMOnlineCrashEquivalence sweeps injected crashes over op
// sequences with background checkpointing on, where the crash usually
// lands inside an in-flight flush. The contract is acked-ops
// durability: every Apply that returned nil before the crash was
// detected must be recovered; the op that surfaced the crash error may
// be in either state (its own WAL write might be the crash site); no
// other outcome is legal. Checkpoint flushes never change logical
// state, so a crash inside one is invisible to the recovered contents.
func TestLSMOnlineCrashEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep is not short")
	}
	for _, seed := range []int64{11, 12} {
		for _, torn := range []bool{false, true} {
			ops := genOps(seed, 40)
			run := func(dir string, fail FailFunc) (acked int, sawCrash bool, err error) {
				l, err := OpenLSM(LSMConfig{
					Dir: dir, MemtableBytes: 96, MaxRuns: 2, BlockSize: 64,
					OnlineCheckpoint: true, Fail: fail,
				})
				if err != nil {
					return 0, false, err
				}
				defer l.Close()
				for i, op := range ops {
					var opErr error
					switch op.kind {
					case "apply":
						opErr = l.Apply(op.ops)
					case "checkpoint":
						// Online mode: the service never calls the
						// blocking Checkpoint; model that.
						_, opErr = l.CheckpointAsync()
					case "compact":
						opErr = l.Compact()
					}
					if errors.Is(opErr, ErrInjectedCrash) {
						return i, true, nil
					}
					if opErr != nil {
						return i, false, fmt.Errorf("op %d (%s): %w", i, op.kind, opErr)
					}
				}
				// The crash may fire inside a flush that outlives the
				// op loop; Quiesce so runs are comparable.
				l.Quiesce()
				return len(ops), false, nil
			}

			counter := &crashAt{n: -1}
			if _, crashed, err := run(t.TempDir(), counter.fn); crashed || err != nil {
				t.Fatalf("dry run: crashed=%v err=%v", crashed, err)
			}
			totalHits := counter.totalHits()
			if totalHits == 0 {
				t.Fatalf("seed %d produced no failpoint hits", seed)
			}

			for n := 1; n <= totalHits; n++ {
				dir := t.TempDir()
				crash := &crashAt{n: n, torn: torn}
				acked, sawCrash, err := run(dir, crash.fn)
				if err != nil {
					t.Fatalf("seed %d n %d: %v", seed, n, err)
				}
				// Ops [0, acked) returned nil and must be durable. When
				// an op surfaced the crash, that op itself is the only
				// ambiguity; background-flush crashes detected at a
				// later op leave that later op entirely unexecuted
				// (poisoned stores reject before writing).
				before := map[string]string{}
				for _, op := range ops[:acked] {
					applyModel(before, op)
				}
				candidates := []map[string]string{before}
				if sawCrash && acked < len(ops) {
					after := map[string]string{}
					for k, v := range before {
						after[k] = v
					}
					applyModel(after, ops[acked])
					candidates = append(candidates, after)
				}
				got := recoveredState(t, dir)
				ok := false
				for _, want := range candidates {
					if reflect.DeepEqual(got, want) {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("seed %d torn=%v n %d (crash %s): recovered %v not among %v",
						seed, torn, n, crash.crashedPoint(), got, candidates)
				}
			}
		}
	}
}
