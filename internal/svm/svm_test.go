package svm

import (
	"testing"

	"cdas/internal/textgen"
	"cdas/internal/tsa"
)

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, Options{}); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, err := Train([]string{"a"}, []string{"x", "y"}, Options{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Train([]string{"same words", "same words"}, []string{"a", "a"}, Options{}); err == nil {
		t.Error("single-class corpus accepted")
	}
	if _, err := Train([]string{"unique one", "different two"}, []string{"a", "b"}, Options{MinDF: 5}); err == nil {
		t.Error("empty vocabulary accepted")
	}
}

func TestLearnsSeparableToyProblem(t *testing.T) {
	docs := []string{
		"great wonderful fantastic", "great superb lovely", "wonderful amazing great",
		"awful terrible horrid", "terrible boring awful", "horrid awful dreadful",
	}
	labels := []string{"pos", "pos", "pos", "neg", "neg", "neg"}
	m, err := Train(docs, labels, Options{Epochs: 30, MinDF: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict("really great and wonderful stuff"); got != "pos" {
		t.Errorf("positive doc predicted %q", got)
	}
	if got := m.Predict("what an awful terrible bore"); got != "neg" {
		t.Errorf("negative doc predicted %q", got)
	}
	acc, err := m.Accuracy(docs, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.99 {
		t.Errorf("training accuracy %v on separable data", acc)
	}
}

func TestDeterministicTraining(t *testing.T) {
	docs := []string{"good nice", "bad ugly", "good fine", "bad poor"}
	labels := []string{"p", "n", "p", "n"}
	m1, err := Train(docs, labels, Options{Seed: 9, MinDF: 1})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(docs, labels, Options{Seed: 9, MinDF: 1})
	if err != nil {
		t.Fatal(err)
	}
	for ci := range m1.weights {
		for f := range m1.weights[ci] {
			if m1.weights[ci][f] != m2.weights[ci][f] {
				t.Fatal("training not deterministic under fixed seed")
			}
		}
	}
}

func TestClassesAndVocab(t *testing.T) {
	docs := []string{"alpha beta alpha", "gamma delta gamma", "alpha gamma"}
	labels := []string{"x", "y", "x"}
	m, err := Train(docs, labels, Options{MinDF: 1})
	if err != nil {
		t.Fatal(err)
	}
	cls := m.Classes()
	if len(cls) != 2 || cls[0] != "x" || cls[1] != "y" {
		t.Errorf("Classes = %v", cls)
	}
	if m.VocabularySize() == 0 {
		t.Error("vocabulary empty")
	}
	// Returned slice must be a copy.
	cls[0] = "mutated"
	if m.Classes()[0] == "mutated" {
		t.Error("Classes leaked internal state")
	}
}

func TestAccuracyValidation(t *testing.T) {
	m, err := Train([]string{"good fine", "bad poor"}, []string{"p", "n"}, Options{MinDF: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Accuracy([]string{"a"}, []string{"p", "n"}); err == nil {
		t.Error("mismatched evaluation accepted")
	}
	if _, err := m.Accuracy(nil, nil); err == nil {
		t.Error("empty evaluation accepted")
	}
}

func TestFigure5Protocol(t *testing.T) {
	// The paper's protocol at reduced scale: train on the non-test
	// movies, evaluate on the five Figure 5 movies. The SVM must beat
	// chance (1/3) clearly but stay below human-level accuracy — hard
	// (sarcastic) tweets and neutral ambiguity cap it.
	cfg := textgen.Config{Seed: 11, Movies: textgen.Movies200()[:40], TweetsPerMovie: 60}
	tweets, err := textgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	test, train := tsa.SplitByMovie(tweets, textgen.Figure5Movies)
	trainDocs, trainLabels := tsa.Corpus(train)
	testDocs, testLabels := tsa.Corpus(test)
	m, err := Train(trainDocs, trainLabels, Options{Epochs: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := m.Accuracy(testDocs, testLabels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.45 {
		t.Errorf("SVM accuracy %v barely beats chance; featurisation broken?", acc)
	}
	if acc > 0.92 {
		t.Errorf("SVM accuracy %v implausibly high; hard tweets should cap it", acc)
	}
}
