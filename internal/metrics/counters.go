// Operational counters for the running service, alongside the package's
// evaluation metrics: the job service and dispatcher publish lifecycle
// counts here and httpapi exposes them at /api/metrics.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a set of named monotonic counters. It is safe for
// concurrent use, and every method is nil-receiver safe so callers can
// instrument unconditionally and let wiring decide whether a registry
// exists.
//
// Counters are plain atomics behind a lock-free name index: the hot
// path (Add/Inc on an existing counter) is one map load plus one atomic
// add, with no mutex anywhere — under the load generator's 64-tenant
// profiles the old single-mutex registry serialised every dispatcher,
// scheduler and engine increment through one lock. Snapshot and Names
// iterate without blocking writers; a snapshot is therefore a
// per-counter-consistent view, not a global atomic cut (counters keep
// moving while it is taken), which is exactly what a metrics endpoint
// needs.
type Registry struct {
	counters sync.Map // string -> *atomic.Int64
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{}
}

// counter returns the named counter, creating it atomically on first
// use.
func (r *Registry) counter(name string) *atomic.Int64 {
	if c, ok := r.counters.Load(name); ok {
		return c.(*atomic.Int64)
	}
	c, _ := r.counters.LoadOrStore(name, new(atomic.Int64))
	return c.(*atomic.Int64)
}

// Inc adds 1 to the named counter.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Add adds delta to the named counter, creating it at zero first.
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.counter(name).Add(delta)
}

// Get returns the named counter's value (zero when absent).
func (r *Registry) Get(name string) int64 {
	if r == nil {
		return 0
	}
	if c, ok := r.counters.Load(name); ok {
		return c.(*atomic.Int64).Load()
	}
	return 0
}

// Snapshot copies every counter.
func (r *Registry) Snapshot() map[string]int64 {
	out := map[string]int64{}
	if r == nil {
		return out
	}
	r.counters.Range(func(k, v any) bool {
		out[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return out
}

// Names lists the registered counters, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	var out []string
	r.counters.Range(func(k, _ any) bool {
		out = append(out, k.(string))
		return true
	})
	sort.Strings(out)
	return out
}

// Counter names published by the job service and dispatcher.
const (
	CounterJobsSubmitted = "jobs_submitted"
	CounterJobsStarted   = "jobs_started"
	CounterJobsCompleted = "jobs_completed"
	CounterJobsFailed    = "jobs_failed"
	CounterJobsRetried   = "jobs_retried"
	CounterJobsCancelled = "jobs_cancelled"
	CounterJobsResumed   = "jobs_resumed"
	CounterJobsParked    = "jobs_parked"
	CounterJobsUnparked  = "jobs_unparked"
	CounterWALAppends    = "wal_appends"
	CounterWALSnapshots  = "wal_snapshots"
	CounterHITsFinished  = "hits_finished"
	CounterBudgetCharges = "budget_charges"
	// CounterCheckpointFailures counts store checkpoints that failed
	// (the store keeps serving; the failed checkpoint is retried on the
	// next commit).
	CounterCheckpointFailures = "checkpoint_failures"
)

// Counter names published by the standing-query stream subsystem.
// Together they make the degrade ladder auditable: every arriving item
// is seen, matching items either reach the crowd, settle with a
// degraded partial-vote verdict, or are dropped with an accounted
// counter — never buffered without bound.
const (
	CounterStreamItemsSeen        = "stream_items_seen"
	CounterStreamItemsMatched     = "stream_items_matched"
	CounterStreamItemsDropped     = "stream_items_dropped"
	CounterStreamWindowsClosed    = "stream_windows_closed"
	CounterStreamDegradedVerdicts = "stream_degraded_verdicts"
)

// Counter names published by the cross-query crowd scheduler.
const (
	CounterSchedCacheHits   = "sched_cache_hits"
	CounterSchedCacheMisses = "sched_cache_misses"
	CounterSchedDeduped     = "sched_questions_deduped"
	CounterSchedPublished   = "sched_questions_published"
	CounterSchedBatches     = "sched_batches"
	CounterSchedParked      = "sched_jobs_parked"
)
