// Command cdas-server runs the CDAS job service: a durable job manager
// (Figure 2) fronted by the Figure 4-style result dashboard. Jobs are
// submitted over HTTP, executed by a dispatcher pool through the
// engine's concurrent HIT pipeline, and — when -store is set — every
// lifecycle transition is committed to a write-ahead log, so a killed
// server replays the WAL on restart and resumes unfinished jobs.
//
// Usage:
//
//	cdas-server [-addr :8080] [-seed 1] [-accuracy 0.9] [-inflight 4]
//	            [-store DIR] [-dispatchers 2] [-demo]
//
// HTTP API:
//
//	POST   /jobs          submit a job (JSON body, see httpapi.JobSubmission)
//	GET    /jobs          all job lifecycle records
//	GET    /jobs/{name}   one job's state, progress, cost and live results
//	DELETE /jobs/{name}   cancel a pending or running job
//	GET    /              HTML results overview
//	GET    /api/metrics   operational counters
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cdas/internal/crowd"
	"cdas/internal/engine"
	"cdas/internal/httpapi"
	"cdas/internal/jobs"
	"cdas/internal/metrics"
	"cdas/internal/textgen"
	"cdas/internal/tsa"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		seed        = flag.Uint64("seed", 1, "simulation seed")
		accuracy    = flag.Float64("accuracy", 0.9, "required accuracy C for demo jobs")
		inflight    = flag.Int("inflight", 4, "HITs published and draining at once per job")
		store       = flag.String("store", "", "durable job store directory (empty: in-memory only)")
		dispatchers = flag.Int("dispatchers", 2, "dispatcher workers pulling pending jobs")
		demo        = flag.Bool("demo", true, "submit the demo TSA jobs at boot")
	)
	flag.Parse()
	if err := run(*addr, *seed, *accuracy, *inflight, *store, *dispatchers, *demo); err != nil {
		log.Fatalf("cdas-server: %v", err)
	}
}

func run(addr string, seed uint64, accuracy float64, inflight int, store string, dispatchers int, demo bool) error {
	platform, err := crowd.NewPlatform(crowd.DefaultConfig(seed))
	if err != nil {
		return err
	}
	movies := []string{"Kung Fu Panda 2", "Thor", "Green Latern"}
	stream, err := textgen.Generate(textgen.Config{
		Seed:           seed + 1,
		Movies:         movies,
		TweetsPerMovie: 60,
	})
	if err != nil {
		return err
	}
	golden, err := textgen.Generate(textgen.Config{
		Seed:           seed + 2,
		Movies:         []string{"The Calibration Reel"},
		TweetsPerMovie: 40,
	})
	if err != nil {
		return err
	}

	counters := metrics.NewRegistry()
	svc, err := jobs.OpenService(jobs.ServiceConfig{Dir: store, Counters: counters})
	if err != nil {
		return err
	}
	defer svc.Close()
	for _, name := range svc.Resumed() {
		log.Printf("cdas-server: resuming interrupted job %q from WAL", name)
	}

	api := httpapi.NewServer()
	runner := tsa.NewJobRunner(tsa.RunnerConfig{
		Platform: engine.CrowdPlatform{Platform: platform},
		Stream:   stream,
		Golden:   golden,
		Engine: engine.Config{
			HITSize:         50,
			MaxInflightHITs: inflight,
			Seed:            seed,
		},
		API:      api,
		Counters: counters,
	})
	disp, err := jobs.NewDispatcher(svc, runner, dispatchers)
	if err != nil {
		return err
	}
	api.SetJobs(disp)
	api.SetCounters(counters)
	disp.Start()
	defer disp.Stop()

	if demo {
		start := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
		for _, movie := range movies {
			_, err := disp.Submit(jobs.Job{
				Name:  movie,
				Kind:  jobs.KindTSA,
				Query: tsa.Query(movie, accuracy, start, 24*time.Hour),
			})
			switch {
			case errors.Is(err, jobs.ErrDuplicateJob):
				// Restart against an existing store: the job's fate is
				// already in the WAL.
			case err != nil:
				return err
			}
		}
	}

	server := &http.Server{Addr: addr, Handler: api.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- server.ListenAndServe() }()
	log.Printf("cdas-server: serving the CDAS job service on %s (store=%q, %d dispatchers)",
		addr, store, dispatchers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		log.Printf("cdas-server: %v — draining dispatchers (running jobs requeue to the WAL)", s)
		disp.Stop()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := server.Shutdown(shutdownCtx); err != nil {
			return err
		}
		return nil
	}
}
