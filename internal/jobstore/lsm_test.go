package jobstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func mustApply(t *testing.T, l *LSM, ops ...Op) {
	t.Helper()
	if err := l.Apply(ops); err != nil {
		t.Fatalf("Apply: %v", err)
	}
}

func mustGet(t *testing.T, l *LSM, key, want string) {
	t.Helper()
	v, ok, err := l.Get(key)
	if err != nil {
		t.Fatalf("Get(%q): %v", key, err)
	}
	if !ok {
		t.Fatalf("Get(%q): missing, want %q", key, want)
	}
	if string(v) != want {
		t.Fatalf("Get(%q) = %q, want %q", key, v, want)
	}
}

func mustMiss(t *testing.T, l *LSM, key string) {
	t.Helper()
	_, ok, err := l.Get(key)
	if err != nil {
		t.Fatalf("Get(%q): %v", key, err)
	}
	if ok {
		t.Fatalf("Get(%q): present, want miss", key)
	}
}

// dump returns the store's full live contents in scan order.
func dump(t *testing.T, l *LSM) map[string]string {
	t.Helper()
	out := map[string]string{}
	prev := ""
	first := true
	err := l.Scan("", "", func(k string, v []byte) bool {
		if !first && k <= prev {
			t.Fatalf("Scan out of order: %q after %q", k, prev)
		}
		first = false
		prev = k
		out[k] = string(v)
		return true
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return out
}

func TestLSMBasic(t *testing.T) {
	l, err := OpenLSM(LSMConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustMiss(t, l, "a")
	if err := l.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	mustGet(t, l, "a", "1")
	if err := l.Put("a", []byte("2")); err != nil {
		t.Fatal(err)
	}
	mustGet(t, l, "a", "2")
	if err := l.Delete("a"); err != nil {
		t.Fatal(err)
	}
	mustMiss(t, l, "a")
	if err := l.Apply(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := l.Apply([]Op{{Key: ""}}); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestLSMReopenDurability(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLSM(LSMConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustApply(t, l, Op{Key: "x", Value: []byte("42")}, Op{Key: "y", Value: []byte("7")})
	mustApply(t, l, Op{Key: "y", Delete: true})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenLSM(LSMConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	mustGet(t, r, "x", "42")
	mustMiss(t, r, "y")
	bs := r.BootStats()
	if bs.Runs != 0 || bs.TailRecords != 2 {
		t.Fatalf("BootStats = %+v, want 0 runs / 2 tail records", bs)
	}
}

func TestLSMCheckpointBoot(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLSM(LSMConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		mustApply(t, l, Op{Key: fmt.Sprintf("k%03d", i), Value: []byte(fmt.Sprintf("v%d", i))})
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint writes live in the WAL tail.
	mustApply(t, l, Op{Key: "k000", Value: []byte("rewritten")})
	mustApply(t, l, Op{Key: "k007", Delete: true})
	l.Close()

	r, err := OpenLSM(LSMConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	bs := r.BootStats()
	if bs.Runs != 1 || bs.RunRecords != 50 || bs.TailRecords != 2 || bs.TailTruncated {
		t.Fatalf("BootStats = %+v, want 1 run / 50 records / 2 tail", bs)
	}
	mustGet(t, r, "k000", "rewritten")
	mustMiss(t, r, "k007")
	mustGet(t, r, "k049", "v49")
	if got := dump(t, r); len(got) != 49 {
		t.Fatalf("recovered %d keys, want 49", len(got))
	}
}

func TestLSMAutoFlushAndCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLSM(LSMConfig{Dir: dir, MemtableBytes: 64, MaxRuns: 2, BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%03d", i%37)
		v := fmt.Sprintf("val-%d", i)
		mustApply(t, l, Op{Key: k, Value: []byte(v)})
		want[k] = v
		if i%11 == 0 {
			mustApply(t, l, Op{Key: k, Delete: true})
			delete(want, k)
		}
	}
	if runs := l.Runs(); runs > 2+1 {
		t.Fatalf("compaction did not bound the stack: %d runs", runs)
	}
	got := dump(t, l)
	if len(got) != len(want) {
		t.Fatalf("live set has %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %q = %q, want %q", k, got[k], v)
		}
	}
	l.Close()
	r, err := OpenLSM(LSMConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	after := dump(t, r)
	if len(after) != len(want) {
		t.Fatalf("recovered %d keys, want %d", len(after), len(want))
	}
}

func TestLSMTombstoneSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLSM(LSMConfig{Dir: dir, MaxRuns: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustApply(t, l, Op{Key: "doomed", Value: []byte("alive")})
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustApply(t, l, Op{Key: "doomed", Delete: true})
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Two runs: older holds the value, newer the tombstone.
	mustMiss(t, l, "doomed")
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if l.Runs() != 1 {
		t.Fatalf("Runs() = %d after compact, want 1", l.Runs())
	}
	mustMiss(t, l, "doomed")
	// The bottom level dropped the tombstone entirely.
	found := false
	for _, r := range l.runs {
		if _, ok, _ := r.get("doomed"); ok {
			found = true
		}
	}
	if found {
		t.Fatal("tombstone survived bottom-level compaction")
	}
}

func TestLSMScanRange(t *testing.T) {
	l, err := OpenLSM(LSMConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, k := range []string{"a", "b", "c", "d", "e"} {
		mustApply(t, l, Op{Key: k, Value: []byte(k)})
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustApply(t, l, Op{Key: "bb", Value: []byte("bb")}) // memtable overlay
	var got []string
	if err := l.Scan("b", "d", func(k string, _ []byte) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"b", "bb", "c"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Scan[b,d) = %v, want %v", got, want)
	}
	// Early stop.
	n := 0
	l.Scan("", "", func(string, []byte) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early-stopped scan visited %d keys, want 2", n)
	}
}

func TestLSMSingleWriterLock(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLSM(LSMConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := OpenLSM(LSMConfig{Dir: dir}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second open: %v, want ErrLocked", err)
	}
}

func TestLSMTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLSM(LSMConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustApply(t, l, Op{Key: "safe", Value: []byte("yes")})
	l.Close()
	f, err := os.OpenFile(filepath.Join(dir, segmentFileName(1)), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	full := frame(99, appendEntry(nil, kvEntry{key: "torn", val: []byte("no")}))
	f.Write(full[:len(full)-3])
	f.Close()
	r, err := OpenLSM(LSMConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.BootStats().TailTruncated {
		t.Fatal("torn tail not reported")
	}
	mustGet(t, r, "safe", "yes")
	mustMiss(t, r, "torn")
}

func TestLSMSharesDirWithLog(t *testing.T) {
	// The two engines use disjoint file names: pointing one at the
	// other's directory finds an empty store, not corruption.
	dir := t.TempDir()
	log, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append([]byte("wal engine record")); err != nil {
		t.Fatal(err)
	}
	log.Close()
	l, err := OpenLSM(LSMConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := dump(t, l); len(got) != 0 {
		t.Fatalf("LSM sees %d keys in a Log directory", len(got))
	}
}

// TestRunSortedIterationProperty pins the primary-iteration invariant:
// for random entry sets, a written run iterates every entry back in
// strictly ascending key order from any starting bound.
func TestRunSortedIterationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(300)
		seen := map[string]bool{}
		var entries []kvEntry
		for len(entries) < n {
			k := fmt.Sprintf("k%04d", rng.Intn(5000))
			if seen[k] {
				continue
			}
			seen[k] = true
			e := kvEntry{key: k}
			if rng.Intn(5) == 0 {
				e.del = true
			} else {
				e.val = []byte(fmt.Sprintf("v%d", rng.Int63()))
			}
			entries = append(entries, e)
		}
		sortEntries(entries)
		path := filepath.Join(t.TempDir(), "prop.run")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := writeRun(f, entries, 1+rng.Intn(256), nil); err != nil {
			t.Fatal(err)
		}
		f.Close()
		r, err := openRun(path)
		if err != nil {
			t.Fatal(err)
		}
		lo := ""
		if rng.Intn(2) == 0 {
			lo = entries[rng.Intn(len(entries))].key
		}
		it := r.iterator(lo)
		var got []kvEntry
		for e, ok := it.next(); ok; e, ok = it.next() {
			got = append(got, e)
		}
		if it.err != nil {
			t.Fatal(it.err)
		}
		var want []kvEntry
		for _, e := range entries {
			if e.key >= lo {
				want = append(want, e)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: iterator yielded %d entries from %q, want %d", trial, len(got), lo, len(want))
		}
		for i := range want {
			if got[i].key != want[i].key || got[i].del != want[i].del || !bytes.Equal(got[i].val, want[i].val) {
				t.Fatalf("trial %d: entry %d = %+v, want %+v", trial, i, got[i], want[i])
			}
		}
		r.close()
	}
}

// TestBloomNoFalseNegatives pins the filter's one hard guarantee:
// every added key answers mayContain true, for random key sets of
// random sizes.
func TestBloomNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(2000)
		b := newBloom(n)
		keys := make([]string, n)
		for i := range keys {
			keys[i] = fmt.Sprintf("key-%d-%d", trial, rng.Int63())
			b.add(keys[i])
		}
		for _, k := range keys {
			if !b.mayContain(k) {
				t.Fatalf("trial %d: false negative for %q", trial, k)
			}
		}
	}
	// And the false-positive rate stays plausible for the 10-bit/7-probe
	// sizing (bounded loosely: this is a smoke check, not a proof).
	b := newBloom(10000)
	for i := 0; i < 10000; i++ {
		b.add(fmt.Sprintf("member-%d", i))
	}
	fp := 0
	for i := 0; i < 10000; i++ {
		if b.mayContain(fmt.Sprintf("stranger-%d", i)) {
			fp++
		}
	}
	if fp > 500 {
		t.Fatalf("false positive rate %.2f%% is far above the ~1%% design point", float64(fp)/100)
	}
}

func sortEntries(entries []kvEntry) {
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j-1].key > entries[j].key; j-- {
			entries[j-1], entries[j] = entries[j], entries[j-1]
		}
	}
}
