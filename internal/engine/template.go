package engine

import (
	"fmt"
	"html/template"
	"strings"

	"cdas/internal/crowd"
)

// RenderHIT renders a HIT as the HTML document submitted to the crowd
// platform, in the style of the paper's Figure 3 query template: one
// <div> section per question with a radio-button group over the answer
// domain (Section 2.2 — "it creates an HTML section for each tweet using
// the query's template ... we concatenate their HTML sections to form our
// HIT description").
func RenderHIT(hit crowd.HIT) (string, error) {
	var b strings.Builder
	if err := hitTemplate.Execute(&b, hitView{
		Title:     hit.Title,
		ID:        hit.ID,
		Questions: hit.Questions,
	}); err != nil {
		return "", fmt.Errorf("engine: render HIT: %w", err)
	}
	return b.String(), nil
}

type hitView struct {
	Title     string
	ID        string
	Questions []crowd.Question
}

var hitTemplate = template.Must(template.New("hit").Parse(`<!DOCTYPE html>
<html>
<head><title>{{.Title}}</title></head>
<body>
<h1>{{.Title}}</h1>
<form method="POST" action="/submit?hit={{.ID}}">
{{- range $qi, $q := .Questions}}
<div class="question" id="q-{{$q.ID}}">
  <p>{{$q.Text}}</p>
  {{- range $q.Domain}}
  <label><input type="radio" name="{{$q.ID}}" value="{{.}}"> {{.}}</label>
  {{- end}}
</div>
{{- end}}
<input type="submit" value="Submit answers">
</form>
</body>
</html>
`))
