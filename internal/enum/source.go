// Package enum implements open-ended enumeration queries ("list all X"):
// HITs ask workers to contribute set members instead of votes, free-text
// answers are canonicalized through the scheduler canon path and deduped
// into a growing result set, a Chao92 species estimate tracks
// completeness live, and the budget ledger's marginal-value admission
// stops buying batches once expected discovery no longer covers the HIT
// price — the open-ended counterpart of the CDAS Eq.4 accuracy bound
// (Trushkowsky et al., see PAPERS.md).
package enum

import (
	"fmt"
	"math"
	"strings"

	"cdas/internal/jobs"
	"cdas/internal/randx"
)

// Contribution is one worker's free-text answer to an enumeration HIT:
// a set member as the worker typed it.
type Contribution struct {
	// Worker indexes the contributing worker within the batch.
	Worker int
	// Text is the contributed member, verbatim (canonicalization is the
	// result set's job, not the source's).
	Text string
}

// Source supplies the crowd's contributions batch by batch. Batch i must
// be a pure function of i for resumable sources: after a crash the
// runner re-derives batch mark+1 without replaying batches 0..mark.
type Source interface {
	// Batch returns the contributions of HIT batch i. An empty slice
	// means the source has nothing more to offer (simulation drained).
	Batch(i int) []Contribution
}

// SourceFactory builds a job's contribution source. The default is
// NewSimSource.
type SourceFactory func(job jobs.Job) (Source, error)

// Simulation defaults when the spec leaves them zero.
const (
	defaultUniverse   = 40
	defaultPopularity = 1.0
)

// SimSource is the built-in deterministic crowd: a hidden universe of
// set members named after the job's first keyword, drawn with a
// Zipf-like popularity skew (weight 1/(i+1)^Popularity), each draw
// emitted in one of several spelling variants (case, extra whitespace)
// so canonical dedup has real work to do. Every batch is derived from
// an independent randx split of the seed, so batch i is reproducible in
// isolation — the property kill -9 resume and bit-reproducible
// loadgen/bench runs rely on.
type SimSource struct {
	universe []string
	weights  []float64
	workers  int
	per      int
	seed     uint64
}

// NewSimSource builds the simulated crowd for an enumeration job.
func NewSimSource(job jobs.Job) (Source, error) {
	if job.Enum == nil {
		return nil, fmt.Errorf("enum: job %q has no enum spec", job.Name)
	}
	if len(job.Query.Keywords) == 0 {
		return nil, fmt.Errorf("enum: job %q has no keywords to enumerate", job.Name)
	}
	sp := job.Enum
	size := sp.Universe
	if size <= 0 {
		size = defaultUniverse
	}
	pop := sp.Popularity
	if pop == 0 {
		pop = defaultPopularity
	}
	kw := job.Query.Keywords[0]
	s := &SimSource{
		universe: make([]string, size),
		weights:  make([]float64, size),
		workers:  sp.Workers(),
		per:      sp.ContributionsPerWorker(),
		seed:     sp.SourceSeed,
	}
	for i := range s.universe {
		s.universe[i] = fmt.Sprintf("%s item %03d", kw, i+1)
		s.weights[i] = 1 / math.Pow(float64(i+1), pop)
	}
	return s, nil
}

// UniverseSize reports the hidden set's true size — the figure a
// deterministic bench run checks the completeness estimate against.
func (s *SimSource) UniverseSize() int { return len(s.universe) }

// Batch draws the contributions of HIT batch i: workers x per-worker
// weighted picks from the universe, each rendered through a random
// spelling variant. Pure in i.
func (s *SimSource) Batch(i int) []Contribution {
	rng := randx.New(s.seed).Split(fmt.Sprintf("enum/batch/%d", i))
	out := make([]Contribution, 0, s.workers*s.per)
	for w := 0; w < s.workers; w++ {
		for c := 0; c < s.per; c++ {
			text := s.universe[rng.WeightedChoice(s.weights)]
			switch rng.IntN(4) {
			case 1:
				text = strings.ToUpper(text)
			case 2:
				text = strings.ReplaceAll(text, " ", "  ")
			case 3:
				text = "  " + text + " "
			}
			out = append(out, Contribution{Worker: w, Text: text})
		}
	}
	return out
}
