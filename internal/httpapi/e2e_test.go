package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cdas/api"
	"cdas/internal/jobs"
	"cdas/internal/metrics"
)

// gatedRunner is a controllable job runner: every invocation reports
// one progress step, then blocks until its job's gate opens or the
// context dies. It records how often each job ran — the double-charge
// detector.
type gatedRunner struct {
	mu    sync.Mutex
	runs  map[string]int
	gates map[string]chan struct{}
}

func newGatedRunner() *gatedRunner {
	return &gatedRunner{runs: make(map[string]int), gates: make(map[string]chan struct{})}
}

func (g *gatedRunner) gate(name string) chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	ch, ok := g.gates[name]
	if !ok {
		ch = make(chan struct{})
		g.gates[name] = ch
	}
	return ch
}

func (g *gatedRunner) invocations(name string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.runs[name]
}

func (g *gatedRunner) run(ctx context.Context, job jobs.Job, report func(progress, cost float64)) error {
	g.mu.Lock()
	g.runs[job.Name]++
	g.mu.Unlock()
	report(0.5, 1.25)
	select {
	case <-g.gate(job.Name):
		report(1.0, 2.5)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

type e2eHarness struct {
	t      *testing.T
	ts     *httptest.Server
	client *http.Client
}

func (h *e2eHarness) do(method, path string, body any) (*http.Response, []byte) {
	h.t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			h.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, h.ts.URL+path, rd)
	if err != nil {
		h.t.Fatal(err)
	}
	resp, err := h.client.Do(req)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func (h *e2eHarness) jobStatus(name string) (JobStatus, int) {
	h.t.Helper()
	resp, body := h.do(http.MethodGet, "/jobs/"+name, nil)
	if resp.StatusCode != http.StatusOK {
		return JobStatus{}, resp.StatusCode
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		h.t.Fatalf("decoding %s: %v (%s)", name, err, body)
	}
	return st, resp.StatusCode
}

func (h *e2eHarness) waitCond(name, what string, cond func(JobStatus) bool) JobStatus {
	h.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var last JobStatus
	for time.Now().Before(deadline) {
		st, code := h.jobStatus(name)
		if code == http.StatusOK {
			last = st
			if cond(st) {
				return st
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.t.Fatalf("job %q never reached %s (last: %+v)", name, what, last)
	return JobStatus{}
}

func (h *e2eHarness) waitState(name string, want api.JobState) JobStatus {
	h.t.Helper()
	return h.waitCond(name, string(want), func(st JobStatus) bool { return st.State == want })
}

func submission(name string) JobSubmission {
	return JobSubmission{
		Name:             name,
		Kind:             "tsa",
		Keywords:         []string{"iPhone4S"},
		RequiredAccuracy: 0.9,
		Domain:           []string{"positive", "neutral", "negative"},
		Window:           "24h",
	}
}

// TestJobServiceEndToEnd drives the full write API over real HTTP:
// submit a job and follow its streaming progress to completion, cancel
// a second job mid-flight, kill the first server incarnation (-9
// style: no graceful dispatcher drain) while a third job is running,
// then restart onto the same store and assert the replay resumed
// exactly the unfinished job — completed and cancelled jobs keep their
// states and costs, and nothing runs twice. The whole scenario runs
// once per storage engine: the WAL+snapshot log and the LSM store must
// survive the same crash identically.
func TestJobServiceEndToEnd(t *testing.T) {
	for _, engine := range []string{jobs.EngineWAL, jobs.EngineLSM} {
		t.Run(engine, func(t *testing.T) { testJobServiceEndToEnd(t, engine) })
	}
}

func testJobServiceEndToEnd(t *testing.T, engine string) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()

	// ---- First incarnation. ----
	svc, err := jobs.OpenService(jobs.ServiceConfig{Dir: dir, Counters: reg, Engine: engine})
	if err != nil {
		t.Fatal(err)
	}
	runner := newGatedRunner()
	disp, err := jobs.NewDispatcher(svc, runner.run, 3)
	if err != nil {
		t.Fatal(err)
	}
	disp.Start()
	srv := NewServer()
	srv.SetJobs(disp)
	srv.SetCounters(reg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	h := &e2eHarness{t: t, ts: ts, client: ts.Client()}

	// Submit alpha and follow its progress to completion.
	resp, body := h.do(http.MethodPost, "/jobs", submission("alpha"))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /jobs = %d (%s)", resp.StatusCode, body)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/alpha" {
		t.Errorf("Location = %q", loc)
	}
	st := h.waitCond("alpha", "running with progress", func(st JobStatus) bool {
		return st.State == api.JobRunning && st.Progress > 0
	})
	if st.Progress != 0.5 || st.Cost != 1.25 {
		t.Errorf("alpha mid-run: progress %v cost %v, want 0.5 / 1.25", st.Progress, st.Cost)
	}
	close(runner.gate("alpha"))
	st = h.waitState("alpha", api.JobDone)
	if st.Progress != 1 || st.Cost != 2.5 || st.Attempts != 1 {
		t.Errorf("alpha done: %+v", st)
	}

	// Error surface: duplicates conflict, unknowns 404, junk 400.
	if resp, _ := h.do(http.MethodPost, "/jobs", submission("alpha")); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate submit = %d, want 409", resp.StatusCode)
	}
	if _, code := h.jobStatus("nope"); code != http.StatusNotFound {
		t.Errorf("GET unknown job = %d, want 404", code)
	}
	bad := submission("bad-window")
	bad.Window = "not a duration"
	if resp, _ := h.do(http.MethodPost, "/jobs", bad); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad window = %d, want 400", resp.StatusCode)
	}
	invalid := submission("bad-query")
	invalid.Domain = []string{"only-one"}
	if resp, _ := h.do(http.MethodPost, "/jobs", invalid); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid query = %d, want 400", resp.StatusCode)
	}
	// A name with a path separator could never be fetched or cancelled
	// through /jobs/{name}; it must be rejected at the door.
	for _, name := range []string{"a/b", "..", "ctrl\x01char"} {
		if resp, _ := h.do(http.MethodPost, "/jobs", submission(name)); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST name %q = %d, want 400", name, resp.StatusCode)
		}
	}
	// Names needing escaping round-trip (Location header and lookup).
	resp, body = h.do(http.MethodPost, "/jobs", submission("spaced name"))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST spaced name = %d (%s)", resp.StatusCode, body)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/spaced%20name" {
		t.Errorf("Location = %q, want escaped path", loc)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("POST Content-Type = %q, want application/json", ct)
	}
	if _, code := h.jobStatus("spaced%20name"); code != http.StatusOK {
		t.Errorf("GET escaped name = %d, want 200", code)
	}
	close(runner.gate("spaced name"))
	h.waitState("spaced name", api.JobDone)

	// Cancel beta mid-flight.
	if resp, body := h.do(http.MethodPost, "/jobs", submission("beta")); resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST beta = %d (%s)", resp.StatusCode, body)
	}
	// Wait for progress so the cancel definitively lands mid-run (a
	// DELETE in the claim-to-start window cancels before execution and
	// legitimately charges nothing).
	h.waitCond("beta", "running with progress", func(st JobStatus) bool {
		return st.State == api.JobRunning && st.Progress > 0
	})
	if resp, body := h.do(http.MethodDelete, "/jobs/beta", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE beta = %d (%s)", resp.StatusCode, body)
	}
	st = h.waitState("beta", api.JobCancelled)
	if st.Cost != 1.25 {
		t.Errorf("beta kept cost %v, want the 1.25 charged before cancel", st.Cost)
	}
	// Cancelling a terminal job conflicts.
	if resp, _ := h.do(http.MethodDelete, "/jobs/alpha", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("DELETE done job = %d, want 409", resp.StatusCode)
	}

	// gamma is mid-flight when the server dies.
	if resp, body := h.do(http.MethodPost, "/jobs", submission("gamma")); resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST gamma = %d (%s)", resp.StatusCode, body)
	}
	// Wait for the progress event too: its WAL commit is what the
	// post-restart cost assertion depends on.
	h.waitCond("gamma", "running with progress", func(st JobStatus) bool {
		return st.State == api.JobRunning && st.Progress > 0
	})

	// Metrics are served.
	resp, body = h.do(http.MethodGet, "/api/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /api/metrics = %d", resp.StatusCode)
	}
	var counters map[string]int64
	if err := json.Unmarshal(body, &counters); err != nil {
		t.Fatal(err)
	}
	if counters[metrics.CounterJobsSubmitted] != 4 || counters[metrics.CounterJobsCompleted] != 2 {
		t.Errorf("counters = %v", counters)
	}

	// ---- kill -9: no dispatcher drain, no requeue — the WAL simply
	// stops receiving writes. gamma is Running on disk. ----
	svc.Close()
	t.Cleanup(func() { close(runner.gate("gamma")); disp.Stop() })

	// ---- Second incarnation on the same store. ----
	svc2, err := jobs.OpenService(jobs.ServiceConfig{Dir: dir, Counters: reg, Engine: engine})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if resumed := svc2.Resumed(); len(resumed) != 1 || resumed[0] != "gamma" {
		t.Fatalf("Resumed = %v, want [gamma]", resumed)
	}
	runner2 := newGatedRunner()
	close(runner2.gate("gamma")) // let the resumed job finish immediately
	disp2, err := jobs.NewDispatcher(svc2, runner2.run, 2)
	if err != nil {
		t.Fatal(err)
	}
	disp2.Start()
	defer disp2.Stop()
	srv2 := NewServer()
	srv2.SetJobs(disp2)
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	h2 := &e2eHarness{t: t, ts: ts2, client: ts2.Client()}

	// The interrupted job resumes and completes; costs accumulate
	// across the crash (1.25 charged pre-crash + 2.5 in the rerun).
	st = h2.waitState("gamma", api.JobDone)
	if st.Attempts != 2 {
		t.Errorf("gamma attempts = %d, want 2 (one per incarnation)", st.Attempts)
	}
	if st.Cost != 1.25+2.5 {
		t.Errorf("gamma cost = %v, want 3.75 (pre-crash spend preserved)", st.Cost)
	}

	// Nothing else was lost or re-run: alpha stays Done at its old
	// cost, beta stays Cancelled, and the new incarnation's runner only
	// ever executed gamma.
	st, _ = h2.jobStatus("alpha")
	if st.State != api.JobDone || st.Cost != 2.5 || st.Attempts != 1 {
		t.Errorf("alpha after restart: %+v", st)
	}
	st, _ = h2.jobStatus("beta")
	if st.State != api.JobCancelled {
		t.Errorf("beta after restart: %+v", st)
	}
	for _, name := range []string{"alpha", "beta"} {
		if n := runner2.invocations(name); n != 0 {
			t.Errorf("terminal job %q re-ran %d times after restart", name, n)
		}
	}
	if n := runner2.invocations("gamma"); n != 1 {
		t.Errorf("gamma ran %d times in second incarnation, want 1", n)
	}

	// The full listing agrees.
	resp, body = h2.do(http.MethodGet, "/jobs", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs = %d", resp.StatusCode)
	}
	var all []JobStatus
	if err := json.Unmarshal(body, &all); err != nil {
		t.Fatal(err)
	}
	states := map[string]api.JobState{}
	for _, js := range all {
		states[js.Name] = js.State
	}
	want := map[string]api.JobState{
		"alpha": api.JobDone, "beta": api.JobCancelled,
		"gamma": api.JobDone, "spaced name": api.JobDone,
	}
	if fmt.Sprint(states) != fmt.Sprint(want) {
		t.Errorf("states after restart = %v, want %v", states, want)
	}
}

// TestJobRoutesWithoutService: a Server with no controller attached
// answers job routes with 503, not a panic.
func TestJobRoutesWithoutService(t *testing.T) {
	ts := httptest.NewServer(NewServer().Handler())
	defer ts.Close()
	h := &e2eHarness{t: t, ts: ts, client: ts.Client()}
	for _, probe := range []struct{ method, path string }{
		{http.MethodPost, "/jobs"},
		{http.MethodGet, "/jobs"},
		{http.MethodGet, "/jobs/x"},
		{http.MethodDelete, "/jobs/x"},
	} {
		resp, _ := h.do(probe.method, probe.path, nil)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s %s = %d, want 503", probe.method, probe.path, resp.StatusCode)
		}
	}
	// Metrics without a registry: empty object, not a panic (nil-safe).
	resp, body := h.do(http.MethodGet, "/api/metrics", nil)
	if resp.StatusCode != http.StatusOK || string(bytes.TrimSpace(body)) != "{}" {
		t.Errorf("GET /api/metrics = %d %q", resp.StatusCode, body)
	}
}
