package textgen

import (
	"math"
	"strings"
	"testing"
	"time"

	"cdas/internal/textutil"
)

func smallConfig(seed uint64) Config {
	return Config{Seed: seed, Movies: []string{"Thor", "Roommate"}, TweetsPerMovie: 300}
}

func TestGenerateCounts(t *testing.T) {
	tweets, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(tweets) != 600 {
		t.Fatalf("generated %d tweets, want 600", len(tweets))
	}
	perMovie := map[string]int{}
	ids := map[string]bool{}
	for _, tw := range tweets {
		perMovie[tw.Movie]++
		if ids[tw.ID] {
			t.Fatalf("duplicate tweet id %q", tw.ID)
		}
		ids[tw.ID] = true
		if !strings.Contains(strings.ToLower(tw.Text), strings.ToLower(tw.Movie)) {
			t.Fatalf("tweet %q does not mention its movie %q", tw.Text, tw.Movie)
		}
	}
	if perMovie["Thor"] != 300 || perMovie["Roommate"] != 300 {
		t.Errorf("per-movie counts: %v", perMovie)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
}

func TestClassBalance(t *testing.T) {
	cfg := smallConfig(3)
	cfg.TweetsPerMovie = 3000
	tweets, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, tw := range tweets {
		counts[tw.Truth]++
	}
	n := float64(len(tweets))
	if f := float64(counts[LabelPositive]) / n; math.Abs(f-0.40) > 0.03 {
		t.Errorf("positive share %v, want ~0.40", f)
	}
	if f := float64(counts[LabelNeutral]) / n; math.Abs(f-0.25) > 0.03 {
		t.Errorf("neutral share %v, want ~0.25", f)
	}
	if f := float64(counts[LabelNegative]) / n; math.Abs(f-0.35) > 0.03 {
		t.Errorf("negative share %v, want ~0.35", f)
	}
}

func TestHardTweetsInvertSurface(t *testing.T) {
	cfg := smallConfig(5)
	cfg.TweetsPerMovie = 2000
	cfg.HardFraction = 0.3
	tweets, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inLex := func(tok string, lex []string) bool {
		for _, w := range lex {
			if tok == w {
				return true
			}
		}
		return false
	}
	hard, surfaced := 0, 0
	for _, tw := range tweets {
		if !tw.Hard {
			continue
		}
		hard++
		if tw.Truth == LabelNeutral {
			t.Fatal("neutral tweets cannot be hard")
		}
		if tw.Trap == tw.Truth || tw.Trap == "" {
			t.Fatalf("hard tweet trap %q must differ from truth %q", tw.Trap, tw.Truth)
		}
		// Any exact lexicon word present must belong to the trap class
		// (the truth class never surfaces); distorted words match
		// neither lexicon and are skipped.
		truthLex, trapLex := positiveWords, negativeWords
		if tw.Truth == LabelNegative {
			truthLex, trapLex = negativeWords, positiveWords
		}
		for _, tok := range textutil.Tokenize(tw.Text) {
			if inLex(tok, truthLex) {
				t.Fatalf("hard tweet %q leaks a truth-class word %q", tw.Text, tok)
			}
			if inLex(tok, trapLex) {
				surfaced++
			}
		}
	}
	if hard == 0 {
		t.Fatal("no hard tweets generated at fraction 0.3")
	}
	if surfaced == 0 {
		t.Fatal("no hard tweet carries an (undistorted) trap-class surface word")
	}
}

func TestTimestampsInWindow(t *testing.T) {
	cfg := smallConfig(9)
	cfg.Start = time.Date(2011, 10, 14, 0, 0, 0, 0, time.UTC)
	cfg.Span = 10 * 24 * time.Hour
	tweets, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	end := cfg.Start.Add(cfg.Span)
	for _, tw := range tweets {
		if tw.At.Before(cfg.Start) || !tw.At.Before(end) {
			t.Fatalf("tweet at %v outside [%v, %v)", tw.At, cfg.Start, end)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := Config{PositiveShare: 0.5, NeutralShare: 0.1, NegativeShare: 0.1}
	if _, err := Generate(bad); err == nil {
		t.Error("shares not summing to 1 accepted")
	}
	bad2 := Config{HardFraction: 2}
	if _, err := Generate(bad2); err == nil {
		t.Error("hard fraction > 1 accepted")
	}
	bad3 := Config{TweetsPerMovie: -1}
	if _, err := Generate(bad3); err == nil {
		t.Error("negative tweet count accepted")
	}
}

func TestQuestionConversion(t *testing.T) {
	easy := Tweet{ID: "t1", Text: "Thor is amazing", Truth: LabelPositive}
	q := easy.Question()
	if err := q.Validate(); err != nil {
		t.Fatalf("easy question invalid: %v", err)
	}
	if q.TrapStrength != 0 || q.Difficulty != 0.05 {
		t.Errorf("easy question params: trap=%v diff=%v", q.TrapStrength, q.Difficulty)
	}
	hard := Tweet{ID: "t2", Text: "Thor is terrible... not", Truth: LabelPositive, Hard: true, Trap: LabelNegative}
	hq := hard.Question()
	if err := hq.Validate(); err != nil {
		t.Fatalf("hard question invalid: %v", err)
	}
	if hq.Trap != LabelNegative || hq.TrapStrength == 0 {
		t.Errorf("hard question lost its trap: %+v", hq)
	}
}

func TestMovies200(t *testing.T) {
	ms := Movies200()
	if len(ms) != 200 {
		t.Fatalf("Movies200 returned %d titles", len(ms))
	}
	seen := map[string]bool{}
	for _, m := range ms {
		if seen[m] {
			t.Fatalf("duplicate title %q", m)
		}
		seen[m] = true
	}
	for _, f5 := range Figure5Movies {
		if !seen[f5] {
			t.Errorf("Figure 5 movie %q missing", f5)
		}
	}
}

func TestLexiconsDisjoint(t *testing.T) {
	neg := map[string]bool{}
	for _, w := range negativeWords {
		neg[w] = true
	}
	for _, w := range positiveWords {
		if neg[w] {
			t.Errorf("word %q in both lexicons", w)
		}
	}
}
