package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"cdas/api"
	"cdas/internal/jobs"
)

// errController fails every mutation with a fixed error and serves a
// fixed record set — the error-path probe.
type errController struct {
	statuses []jobs.Status
	err      error
}

func (c *errController) Submit(jobs.Job) (jobs.Plan, error) { return jobs.Plan{}, c.err }
func (c *errController) Cancel(string) error                { return c.err }
func (c *errController) Unpark(string) error                { return c.err }
func (c *errController) Statuses() []jobs.Status            { return c.statuses }
func (c *errController) Status(name string) (jobs.Status, bool) {
	for _, st := range c.statuses {
		if st.Job.Name == name {
			return st, true
		}
	}
	return jobs.Status{}, false
}
func (c *errController) StatusesPage(after string, limit int, state jobs.State, tenant string) ([]jobs.Status, bool) {
	return pageStatuses(c.statuses, after, limit, state, tenant)
}

// pageStatuses is the reference pager the fake controllers share: a
// brute-force walk with the same semantics the real indexes implement.
func pageStatuses(sts []jobs.Status, after string, limit int, state jobs.State, tenant string) ([]jobs.Status, bool) {
	sorted := make([]jobs.Status, len(sts))
	copy(sorted, sts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Job.Name < sorted[j].Job.Name })
	var page []jobs.Status
	for _, st := range sorted {
		if st.Job.Name <= after {
			continue
		}
		if state != "" && st.State != state {
			continue
		}
		if tenant != "" && st.Job.Tenant != tenant {
			continue
		}
		if len(page) == limit {
			return page, true
		}
		page = append(page, st)
	}
	return page, false
}

// panicController blows up on listing — the recovery-middleware probe.
type panicController struct{ *errController }

func (panicController) Statuses() []jobs.Status { panic("listing exploded") }
func (panicController) StatusesPage(string, int, jobs.State, string) ([]jobs.Status, bool) {
	panic("listing exploded")
}

func decodeEnvelope(t *testing.T, body io.Reader) *api.Error {
	t.Helper()
	var envelope api.ErrorResponse
	if err := json.NewDecoder(body).Decode(&envelope); err != nil {
		t.Fatalf("decoding error envelope: %v", err)
	}
	if envelope.Error == nil {
		t.Fatal("error response without envelope")
	}
	return envelope.Error
}

// TestPanicRecoveryEnvelope: a handler panic becomes a structured 500,
// not a severed connection.
func TestPanicRecoveryEnvelope(t *testing.T) {
	s := NewServer()
	var logged []string
	s.SetLogf(func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	})
	s.SetJobs(panicController{&errController{}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	e := decodeEnvelope(t, resp.Body)
	if e.Code != api.CodeInternal {
		t.Errorf("code = %q, want internal", e.Code)
	}
	found := false
	for _, line := range logged {
		if strings.Contains(line, "listing exploded") {
			found = true
		}
	}
	if !found {
		t.Errorf("panic not logged; log lines: %q", logged)
	}
}

// TestRequestID: caller-supplied IDs echo back; junk is replaced with a
// generated one.
func TestRequestID(t *testing.T) {
	ts := httptest.NewServer(NewServer().Handler())
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	req.Header.Set("X-Request-Id", "trace-42")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-Id"); id != "trace-42" {
		t.Errorf("echoed id = %q, want trace-42", id)
	}

	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	req.Header.Set("X-Request-Id", strings.Repeat("x", 200))
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-Id")
	if id == "" || len(id) > 64 {
		t.Errorf("oversized id handled as %q", id)
	}
}

// TestV1PaginationWalk pages through a larger job set and checks the
// walk is complete, ordered and duplicate-free.
func TestV1PaginationWalk(t *testing.T) {
	var sts []jobs.Status
	for i := 0; i < 10; i++ {
		sts = append(sts, jobs.Status{
			Job:   jobs.Job{Name: fmt.Sprintf("job-%02d", i), Kind: jobs.KindTSA},
			State: jobs.StatePending,
		})
	}
	s := NewServer()
	s.SetJobs(&errController{statuses: sts})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var names []string
	token := ""
	pages := 0
	for {
		url := ts.URL + "/v1/jobs?limit=3"
		if token != "" {
			url += "&page_token=" + token
		}
		resp, err := ts.Client().Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var page api.JobList
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		for _, st := range page.Jobs {
			names = append(names, st.Name)
		}
		pages++
		if page.NextPageToken == "" {
			break
		}
		token = page.NextPageToken
		if pages > 10 {
			t.Fatal("pagination never terminated")
		}
	}
	if pages != 4 {
		t.Errorf("walk took %d pages, want 4 (3+3+3+1)", pages)
	}
	if len(names) != 10 {
		t.Fatalf("walk returned %d jobs, want 10: %v", len(names), names)
	}
	for i, n := range names {
		if want := fmt.Sprintf("job-%02d", i); n != want {
			t.Errorf("walk[%d] = %s, want %s", i, n, want)
		}
	}
}

// TestV1UnparkCustomMethod drives the real parked→pending→done loop
// through POST /v1/jobs/{name}:unpark.
func TestV1UnparkCustomMethod(t *testing.T) {
	svc, err := jobs.OpenService(jobs.ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	first := true
	disp, err := jobs.NewDispatcher(svc, func(ctx context.Context, job jobs.Job, report func(float64, float64)) error {
		if first {
			first = false
			return fmt.Errorf("%w: estimate over cap", jobs.ErrParked)
		}
		report(1, 0.5)
		return nil
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	disp.Start()
	defer disp.Stop()
	s := NewServer()
	s.SetJobs(disp)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"name":"strapped","keywords":["thor"],"required_accuracy":0.9,` +
		`"domain":["Positive","Negative"],"window":"24h","budget":0.0001}`
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/strapped" {
		t.Errorf("Location = %q", loc)
	}
	waitFor := func(want jobs.State) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if st, _ := svc.Status("strapped"); st.State == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		st, _ := svc.Status("strapped")
		t.Fatalf("never reached %s (at %s)", want, st.State)
	}
	waitFor(jobs.StateParked)

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs/strapped:unpark", nil)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st.Name != "strapped" {
		t.Fatalf("unpark = %d %+v", resp.StatusCode, st)
	}
	waitFor(jobs.StateDone)

	// Unparking the finished job conflicts — structured envelope.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs/strapped:unpark", nil)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("unpark(done) = %d, want 409", resp.StatusCode)
	}
	if e := decodeEnvelope(t, resp.Body); e.Code != api.CodeConflict {
		t.Errorf("code = %q, want conflict", e.Code)
	}
}

// TestLegacyCancelTerminalConflictEnvelope: the deprecated DELETE
// /jobs/{name} answers an already-terminal job with the same structured
// 409 envelope as v1.
func TestLegacyCancelTerminalConflictEnvelope(t *testing.T) {
	s := NewServer()
	s.SetJobs(&errController{
		statuses: []jobs.Status{{Job: jobs.Job{Name: "done-job"}, State: jobs.StateDone}},
		err:      fmt.Errorf("%w: done → cancelled for %q", jobs.ErrBadTransition, "done-job"),
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/jobs/done-job", "/v1/jobs/done-job"} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+path, nil)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("DELETE %s = %d, want 409", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("DELETE %s Content-Type = %q, want application/json", path, ct)
		}
		e := decodeEnvelope(t, resp.Body)
		resp.Body.Close()
		if e.Code != api.CodeConflict || e.Status != 409 {
			t.Errorf("DELETE %s envelope = %+v", path, e)
		}
	}
}

// TestJobNameRejectsColon: ":" would collide with the {name}:unpark
// custom-method syntax, so submission rejects it up front.
func TestJobNameRejectsColon(t *testing.T) {
	if err := checkJobName("a:b"); err == nil {
		t.Error("checkJobName accepted a name containing ':'")
	}
	if err := checkJobName("plain-name"); err != nil {
		t.Errorf("checkJobName rejected %q: %v", "plain-name", err)
	}
}

// TestJobErrorMapping pins the sentinel → envelope translation.
func TestJobErrorMapping(t *testing.T) {
	cases := []struct {
		err    error
		code   string
		status int
	}{
		{fmt.Errorf("%w: x", jobs.ErrUnknownJob), api.CodeNotFound, 404},
		{fmt.Errorf("%w: x", jobs.ErrDuplicateJob), api.CodeConflict, 409},
		{fmt.Errorf("%w: x", jobs.ErrBadTransition), api.CodeConflict, 409},
		{fmt.Errorf("disk on fire"), api.CodeInternal, 500},
	}
	for _, c := range cases {
		e := jobError(c.err)
		if e.Code != c.code || e.Status != c.status {
			t.Errorf("jobError(%v) = %+v, want %s/%d", c.err, e, c.code, c.status)
		}
	}
}

// TestFollowProgressFractions covers the reported-progress corner cases.
func TestFollowProgressFractions(t *testing.T) {
	cases := []struct {
		items, total int
		complete     bool
		want         float64
	}{
		{5, 10, false, 0.5},
		{15, 10, true, 1}, // over-delivery clamps
		{0, 0, true, 1},   // no expectation, healthy stream
		{0, 0, false, 0},  // no expectation, failed stream
		{10, 10, false, 1},
	}
	for _, c := range cases {
		if got := followProgress(c.items, c.total, c.complete); got != c.want {
			t.Errorf("followProgress(%d, %d, %v) = %v, want %v", c.items, c.total, c.complete, got, c.want)
		}
	}
}

// TestNewHTTPServerTimeouts: header/idle deadlines set, read/write left
// zero so SSE streams survive.
func TestNewHTTPServerTimeouts(t *testing.T) {
	s := NewHTTPServer(":0", http.NotFoundHandler())
	if s.ReadHeaderTimeout <= 0 || s.IdleTimeout <= 0 {
		t.Errorf("abuse timeouts unset: %+v", s)
	}
	if s.ReadTimeout != 0 || s.WriteTimeout != 0 {
		t.Errorf("SSE-severing timeouts set: read=%v write=%v", s.ReadTimeout, s.WriteTimeout)
	}
}

// TestWriteJSONMarshalFailure pins the satellite fix: an unmarshalable
// value yields a clean 500 envelope, never a partial 200 body.
func TestWriteJSONMarshalFailure(t *testing.T) {
	rr := httptest.NewRecorder()
	writeJSON(rr, map[string]any{"bad": func() {}})
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rr.Code)
	}
	e := decodeEnvelope(t, rr.Body)
	if e.Code != api.CodeInternal || !strings.Contains(e.Message, "encoding response") {
		t.Errorf("envelope = %+v", e)
	}
}

// TestSSEBadLastEventID: junk resume headers get the 400 envelope, not
// a stream.
func TestSSEBadLastEventID(t *testing.T) {
	s := NewServer()
	s.Update(QueryState{Name: "q", Domain: []string{"a", "b"}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/queries/q/events", nil)
	req.Header.Set("Last-Event-ID", "not-a-number")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if e := decodeEnvelope(t, resp.Body); e.Code != api.CodeInvalidArgument {
		t.Errorf("envelope = %+v", e)
	}
}

// TestSanitizeRequestID: junk IDs are dropped, clean ones kept.
func TestSanitizeRequestID(t *testing.T) {
	if got := sanitizeRequestID("ok-id_1"); got != "ok-id_1" {
		t.Errorf("clean id mangled to %q", got)
	}
	for _, bad := range []string{"has space", "ctrl\x01", "non-ascii-\xc3\xa9"} {
		if got := sanitizeRequestID(bad); got != "" {
			t.Errorf("sanitizeRequestID(%q) = %q, want rejection", bad, got)
		}
	}
	if got := sanitizeRequestID(strings.Repeat("a", 100)); len(got) != 64 {
		t.Errorf("long id truncated to %d chars, want 64", len(got))
	}
}
