package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogSumExpBasic(t *testing.T) {
	got := LogSumExp([]float64{0, 0})
	if want := math.Log(2); math.Abs(got-want) > 1e-12 {
		t.Errorf("LogSumExp([0,0]) = %v, want %v", got, want)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Error("LogSumExp(nil) should be -Inf")
	}
	if got := LogSumExp([]float64{3}); got != 3 {
		t.Errorf("LogSumExp single = %v, want 3", got)
	}
}

func TestLogSumExpExtremeValues(t *testing.T) {
	// Would overflow without the max-shift.
	got := LogSumExp([]float64{1000, 1000})
	if want := 1000 + math.Log(2); math.Abs(got-want) > 1e-9 {
		t.Errorf("LogSumExp([1000,1000]) = %v, want %v", got, want)
	}
	got = LogSumExp([]float64{-1000, -1000})
	if want := -1000 + math.Log(2); math.Abs(got-want) > 1e-9 {
		t.Errorf("LogSumExp([-1000,-1000]) = %v, want %v", got, want)
	}
	if !math.IsInf(LogSumExp([]float64{math.Inf(-1), math.Inf(-1)}), -1) {
		t.Error("LogSumExp of -Infs should be -Inf")
	}
}

func TestSoftmaxProperties(t *testing.T) {
	// Property: softmax sums to 1, every entry in (0, 1], shift invariant.
	f := func(a, b, c, shift float64) bool {
		xs := []float64{math.Mod(a, 50), math.Mod(b, 50), math.Mod(c, 50)}
		sm := Softmax(xs)
		sum := 0.0
		for _, v := range sm {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		sh := math.Mod(shift, 100)
		shifted := []float64{xs[0] + sh, xs[1] + sh, xs[2] + sh}
		sm2 := Softmax(shifted)
		for i := range sm {
			if math.Abs(sm[i]-sm2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxOrderPreserving(t *testing.T) {
	sm := Softmax([]float64{1, 3, 2})
	if !(sm[1] > sm[2] && sm[2] > sm[0]) {
		t.Errorf("softmax not order preserving: %v", sm)
	}
}

func TestSoftmaxIntoLengthMismatchPanics(t *testing.T) {
	assertPanics(t, func() { SoftmaxInto(make([]float64, 2), make([]float64, 3)) }, "SoftmaxInto mismatch")
}

func TestLogOddsClamping(t *testing.T) {
	if got := LogOdds(0.5); math.Abs(got) > 1e-12 {
		t.Errorf("LogOdds(0.5) = %v, want 0", got)
	}
	// Clamped endpoints stay finite.
	for _, a := range []float64{0, 1, -5, 7, math.NaN()} {
		got := LogOdds(a)
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Errorf("LogOdds(%v) = %v, want finite", a, got)
		}
	}
	// Antisymmetry: LogOdds(a) = -LogOdds(1-a).
	for _, a := range []float64{0.2, 0.31, 0.54, 0.73} {
		if d := LogOdds(a) + LogOdds(1-a); math.Abs(d) > 1e-12 {
			t.Errorf("LogOdds antisymmetry broken at %v: %v", a, d)
		}
	}
}

func TestClampProb(t *testing.T) {
	if ClampProb(0.3) != 0.3 {
		t.Error("ClampProb should pass through interior values")
	}
	if ClampProb(-1) != ClampLo || ClampProb(2) != ClampHi {
		t.Error("ClampProb endpoints wrong")
	}
	if ClampProb(math.NaN()) != 0.5 {
		t.Error("ClampProb(NaN) should be 0.5")
	}
}
