package dawidskene

import (
	"fmt"
	"math"
	"testing"

	"cdas/internal/core/verification"
	"cdas/internal/crowd"
	"cdas/internal/randx"
)

// synthesise generates votes from workers with known accuracies over
// nQuestions 3-answer questions, returning votes, true answers and true
// accuracies.
func synthesise(seed uint64, workerAccs []float64, nQuestions int) ([]Vote, map[string]string, map[string]float64) {
	rng := randx.New(seed)
	domain := []string{"a", "b", "c"}
	truths := make(map[string]string, nQuestions)
	trueAcc := make(map[string]float64, len(workerAccs))
	var votes []Vote
	for qi := 0; qi < nQuestions; qi++ {
		q := fmt.Sprintf("q%03d", qi)
		truth := domain[rng.IntN(3)]
		truths[q] = truth
		for wi, acc := range workerAccs {
			w := fmt.Sprintf("w%02d", wi)
			trueAcc[w] = acc
			answer := truth
			if !rng.Bool(acc) {
				// uniform among wrong answers
				wrong := make([]string, 0, 2)
				for _, d := range domain {
					if d != truth {
						wrong = append(wrong, d)
					}
				}
				answer = wrong[rng.IntN(2)]
			}
			votes = append(votes, Vote{Question: q, Worker: w, Answer: answer})
		}
	}
	return votes, truths, trueAcc
}

func TestEstimateValidation(t *testing.T) {
	if _, err := Estimate(nil, 3, Options{}); err == nil {
		t.Error("empty votes accepted")
	}
	votes := []Vote{{Question: "q", Worker: "w", Answer: "a"}}
	if _, err := Estimate(votes, 1, Options{}); err == nil {
		t.Error("m=1 accepted")
	}
	if _, err := Estimate(votes, 3, Options{InitialAccuracy: 0.2}); err == nil {
		t.Error("below-chance initial accuracy accepted")
	}
	many := []Vote{
		{Question: "q", Worker: "w1", Answer: "a"},
		{Question: "q", Worker: "w2", Answer: "b"},
		{Question: "q", Worker: "w3", Answer: "c"},
	}
	if _, err := Estimate(many, 2, Options{}); err == nil {
		t.Error("more distinct answers than m accepted")
	}
}

func TestEstimateRecoversAccuracies(t *testing.T) {
	accs := []float64{0.9, 0.85, 0.8, 0.7, 0.6, 0.55, 0.5, 0.45, 0.75, 0.65}
	votes, _, trueAcc := synthesise(1, accs, 300)
	res, err := Estimate(votes, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sumErr float64
	for w, a := range res.WorkerAccuracy {
		sumErr += math.Abs(a - trueAcc[w])
	}
	if mean := sumErr / float64(len(res.WorkerAccuracy)); mean > 0.07 {
		t.Errorf("mean accuracy estimation error %v, want <= 0.07", mean)
	}
}

func TestEstimateRecoversAnswers(t *testing.T) {
	accs := []float64{0.85, 0.8, 0.75, 0.7, 0.65, 0.6, 0.55}
	votes, truths, _ := synthesise(2, accs, 300)
	res, err := Estimate(votes, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for q, truth := range truths {
		if res.Answers[q] == truth {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(truths)); acc < 0.9 {
		t.Errorf("EM answer accuracy %v, want >= 0.9", acc)
	}
}

func TestEstimateBeatsMajorityWithSkewedCrowd(t *testing.T) {
	// A couple of experts among near-random workers: EM should weight
	// the experts up and beat plain majority voting.
	accs := []float64{0.95, 0.92, 0.45, 0.42, 0.40, 0.44, 0.41}
	votes, truths, _ := synthesise(3, accs, 400)
	res, err := Estimate(votes, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	byQuestion := make(map[string][]verification.Vote)
	for _, v := range votes {
		byQuestion[v.Question] = append(byQuestion[v.Question], verification.Vote{
			Worker: v.Worker, Answer: v.Answer,
		})
	}
	emCorrect, majCorrect := 0, 0
	for q, truth := range truths {
		if res.Answers[q] == truth {
			emCorrect++
		}
		if a, ok := verification.MajorityVoting(byQuestion[q]); ok && a == truth {
			majCorrect++
		}
	}
	if emCorrect <= majCorrect {
		t.Errorf("EM %d correct vs majority %d: EM should win with skewed accuracies",
			emCorrect, majCorrect)
	}
}

func TestEstimatePosteriorsSumToAtMostOne(t *testing.T) {
	accs := []float64{0.8, 0.7, 0.6}
	votes, _, _ := synthesise(4, accs, 50)
	res, err := Estimate(votes, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for q, post := range res.Posteriors {
		sum := 0.0
		for _, p := range post {
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("question %s: invalid posterior %v", q, post)
			}
			sum += p
		}
		// Unobserved answers keep the remaining mass, so observed mass
		// is <= 1.
		if sum > 1+1e-9 {
			t.Errorf("question %s: observed posterior mass %v > 1", q, sum)
		}
	}
}

func TestEstimateDeterministic(t *testing.T) {
	accs := []float64{0.8, 0.7, 0.6, 0.5}
	votes, _, _ := synthesise(5, accs, 80)
	r1, err := Estimate(votes, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Estimate(votes, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for w, a := range r1.WorkerAccuracy {
		if r2.WorkerAccuracy[w] != a {
			t.Fatal("EM not deterministic")
		}
	}
	if r1.Iterations != r2.Iterations {
		t.Fatal("iteration counts differ")
	}
}

func TestEstimateConvergesEarly(t *testing.T) {
	accs := []float64{0.9, 0.85, 0.8}
	votes, _, _ := synthesise(6, accs, 200)
	res, err := Estimate(votes, 3, Options{MaxIterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 50 {
		t.Errorf("EM used all %d iterations; expected early convergence", res.Iterations)
	}
}

func TestEstimateAgainstCrowdSimulator(t *testing.T) {
	// End-to-end against the crowd simulator: estimates must correlate
	// with the simulator's true worker accuracies.
	p, err := crowd.NewPlatform(crowd.DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	questions := make([]crowd.Question, 150)
	for i := range questions {
		questions[i] = crowd.Question{
			ID:     fmt.Sprintf("q%d", i),
			Domain: []string{"x", "y", "z"},
			Truth:  []string{"x", "y", "z"}[i%3],
		}
	}
	run, err := p.Publish(crowd.HIT{Questions: questions}, 15)
	if err != nil {
		t.Fatal(err)
	}
	var votes []Vote
	trueAcc := make(map[string]float64)
	for _, a := range run.Drain() {
		trueAcc[a.Worker.ID] = a.Worker.Accuracy
		for _, q := range questions {
			votes = append(votes, Vote{Question: q.ID, Worker: a.Worker.ID, Answer: a.AnswerTo(q.ID)})
		}
	}
	res, err := Estimate(votes, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sumErr float64
	for w, est := range res.WorkerAccuracy {
		sumErr += math.Abs(est - trueAcc[w])
	}
	// Simulator questions carry no difficulty here, so estimates should
	// track true accuracies closely.
	if mean := sumErr / float64(len(res.WorkerAccuracy)); mean > 0.08 {
		t.Errorf("mean estimation error vs simulator truth %v, want <= 0.08", mean)
	}
}
