// Concurrent HIT execution pipeline.
//
// The paper's engine publishes HITs and consumes worker assignments
// asynchronously (Section 2.1): several HITs are live on the platform at
// once and each one terminates early on its own schedule as votes arrive.
// This file implements that overlap. Stream fans batches out to worker
// goroutines — at most Config.MaxInflightHITs published and draining at
// any moment — and merges finished HITs through a channel-based collector,
// so early termination of one HIT never blocks progress on another.
//
// Determinism: every batch draws from a randx source split off the engine
// seed by (pipeline number, batch index), names its HIT after the same
// pair so the platform's worker draw is a pure function of the ID, and
// weighs votes from a profile-store snapshot taken when the pipeline
// started plus its own golden tally. A pipeline's results are therefore
// bit-for-bit reproducible for a given seed and configuration, no matter
// how the goroutines interleave or how many run at once.
package engine

import (
	"context"
	"fmt"
	"sync"

	"cdas/internal/crowd"
)

// StreamResult carries one finished HIT out of the pipeline.
type StreamResult struct {
	// Index is the batch's position in submission order; batch i covers
	// the i-th HIT-sized chunk of the real questions.
	Index int
	// Batch is the finished HIT's result, valid when Err is nil.
	Batch BatchResult
	// Err reports a failed or cancelled batch (context.Canceled when the
	// pipeline was shut down before this batch finished).
	Err error
}

// Stream runs the concurrent pipeline over real questions: the questions
// are chunked into HIT-sized batches exactly as ProcessAll chunks them,
// up to Config.MaxInflightHITs batches are published and drained at once
// (each run's assignment stream is consumed in its own goroutine), and
// every finished HIT is sent on the returned channel in completion order.
// The channel closes once all batches have finished.
//
// Cancelling ctx cancels the published runs on the platform — their
// outstanding assignments are never delivered nor charged — and the
// affected batches surface ctx's error. Callers must drain the channel.
//
// Pipeline HITs are named after (JobName, Seed, pipeline number, batch
// index), and the simulated platform draws workers as a pure function of
// that name. Two engines sharing one platform therefore replay identical
// worker samples unless they differ in JobName or Seed — give concurrent
// engines distinct seeds when independent draws matter.
func (e *Engine) Stream(ctx context.Context, real, golden []crowd.Question) (<-chan StreamResult, error) {
	chunks, err := e.chunk(real)
	if err != nil {
		return nil, err
	}
	return e.stream(ctx, chunks, golden), nil
}

// stream launches one worker goroutine per batch, gated by a
// MaxInflightHITs-slot semaphore, and closes the returned channel after
// the last worker reports. Plan size, verifier prior and the vote-weight
// snapshot are fixed once at launch so every batch sees the same view of
// the profile store regardless of scheduling.
func (e *Engine) stream(ctx context.Context, chunks [][]crowd.Question, golden []crowd.Question) <-chan StreamResult {
	pseq := e.pipelineSeq.Add(1)
	snap := e.store.Snapshot(e.cfg.JobName)
	meanAcc := e.MeanAccuracy()
	workers, planErr := e.PlanWorkers()

	// Buffered to the batch count so a finished HIT parks its result and
	// releases its in-flight slot immediately — a slow consumer must not
	// throttle publication of the next HIT.
	out := make(chan StreamResult, len(chunks))
	sem := make(chan struct{}, e.cfg.MaxInflightHITs)
	var wg sync.WaitGroup
	for i, qs := range chunks {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if planErr != nil {
				out <- StreamResult{Index: i, Err: planErr}
				return
			}
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				out <- StreamResult{Index: i, Err: ctx.Err()}
				return
			}
			defer func() { <-sem }()
			br, err := e.runBatch(ctx, batchJob{
				hitID:   fmt.Sprintf("%s/s%d/p%d/h%05d", e.cfg.JobName, e.cfg.Seed, pseq, i),
				rng:     e.rng.Split(fmt.Sprintf("pipeline/%d/%d", pseq, i)),
				real:    qs,
				golden:  golden,
				workers: workers,
				meanAcc: meanAcc,
				snap:    snap,
			})
			out <- StreamResult{Index: i, Batch: br, Err: err}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// ProcessAllContext runs every batch through the concurrent pipeline and
// returns the results ordered by batch index — the same order ProcessAll
// returns them in. The first batch error cancels the remaining batches
// (their runs are cancelled on the platform, uncharged) and is returned
// after all pipeline goroutines have drained; no partial results are
// returned alongside an error.
func (e *Engine) ProcessAllContext(ctx context.Context, real, golden []crowd.Question) ([]BatchResult, error) {
	chunks, err := e.chunk(real)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make([]BatchResult, len(chunks))
	var firstErr error
	for sr := range e.stream(ctx, chunks, golden) {
		if sr.Err != nil {
			if firstErr == nil {
				firstErr = sr.Err
				cancel() // shed the still-running batches
			}
			continue
		}
		out[sr.Index] = sr.Batch
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
