package metrics

import (
	"sync"
	"testing"
)

// mutexRegistry is the pre-striping implementation (single mutex over a
// map), kept here as the benchmark baseline the lock-free Registry is
// measured against.
type mutexRegistry struct {
	mu       sync.Mutex
	counters map[string]int64
}

func (r *mutexRegistry) Add(name string, delta int64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// BenchmarkRegistryAdd measures the hot increment path of the lock-free
// registry under parallel writers.
func BenchmarkRegistryAdd(b *testing.B) {
	r := NewRegistry()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Add("jobs_completed", 1)
		}
	})
}

// BenchmarkMutexRegistryAdd is the old implementation's equivalent path
// for comparison.
func BenchmarkMutexRegistryAdd(b *testing.B) {
	r := &mutexRegistry{counters: make(map[string]int64)}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Add("jobs_completed", 1)
		}
	})
}
