// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per experiment; see DESIGN.md's index), plus
// micro-benchmarks of the core models and ablation benches for the design
// choices DESIGN.md calls out. Accuracy-style results are attached as
// custom metrics so `go test -bench` output doubles as a results table.
package cdas_test

import (
	"fmt"
	"testing"

	"cdas"
	"cdas/internal/core/dawidskene"
	"cdas/internal/core/online"
	"cdas/internal/core/prediction"
	"cdas/internal/core/verification"
	"cdas/internal/crowd"
	"cdas/internal/experiments"
	"cdas/internal/randx"
	"cdas/internal/stats"
	"cdas/internal/svm"
	"cdas/internal/textgen"
)

// benchExperiment runs one experiment generator per iteration.
func benchExperiment(b *testing.B, gen experiments.Generator) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := gen(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4Verification(b *testing.B)   { benchExperiment(b, experiments.Table4) }
func BenchmarkFigure5CrowdVsSVM(b *testing.B)    { benchExperiment(b, experiments.Figure5) }
func BenchmarkFigure6WorkersNeeded(b *testing.B) { benchExperiment(b, experiments.Figure6) }
func BenchmarkFigure7AccuracyVsWorkers(b *testing.B) {
	benchExperiment(b, experiments.Figure7)
}
func BenchmarkFigure8AccuracyVsRequired(b *testing.B) {
	benchExperiment(b, experiments.Figure8)
}
func BenchmarkFigure9NoAnswerVsWorkers(b *testing.B) {
	benchExperiment(b, experiments.Figure9)
}
func BenchmarkFigure10NoAnswerVsReviews(b *testing.B) {
	benchExperiment(b, experiments.Figure10)
}
func BenchmarkFigure11ArrivalSequences(b *testing.B) {
	benchExperiment(b, experiments.Figure11)
}
func BenchmarkFigure12EarlyTermWorkers(b *testing.B) {
	benchExperiment(b, experiments.Figure12)
}
func BenchmarkFigure13EarlyTermAccuracy(b *testing.B) {
	benchExperiment(b, experiments.Figure13)
}
func BenchmarkFigure14ApprovalVsAccuracy(b *testing.B) {
	benchExperiment(b, experiments.Figure14)
}
func BenchmarkFigure15SamplingAccuracy(b *testing.B) {
	benchExperiment(b, experiments.Figure15)
}
func BenchmarkFigure16SamplingVerification(b *testing.B) {
	benchExperiment(b, experiments.Figure16)
}
func BenchmarkFigure17CrowdVsALIPR(b *testing.B) { benchExperiment(b, experiments.Figure17) }
func BenchmarkFigure18ITAccuracy(b *testing.B)   { benchExperiment(b, experiments.Figure18) }

// --- Micro-benchmarks of the core models ---

func BenchmarkVerify29Votes(b *testing.B) {
	rng := randx.New(1)
	votes := make([]verification.Vote, 29)
	domain := []string{"pos", "neu", "neg"}
	for i := range votes {
		votes[i] = verification.Vote{
			Worker:   fmt.Sprintf("w%d", i),
			Accuracy: 0.4 + 0.5*rng.Float64(),
			Answer:   domain[rng.IntN(3)],
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := verification.Verify(votes, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictionBinarySearch(b *testing.B) {
	model, err := prediction.New(0.7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.RequiredWorkers(0.99); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMajorityTail(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stats.MajorityTail(101, 0.7)
	}
}

func BenchmarkOnlineVerifierStream(b *testing.B) {
	rng := randx.New(2)
	answers := make([]string, 29)
	accs := make([]float64, 29)
	domain := []string{"pos", "neu", "neg"}
	for i := range answers {
		answers[i] = domain[rng.IntN(3)]
		accs[i] = 0.4 + 0.5*rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := online.NewVerifier(29, 3, 0.75)
		if err != nil {
			b.Fatal(err)
		}
		for j := range answers {
			if err := v.Add(verification.Vote{Accuracy: accs[j], Answer: answers[j]}); err != nil {
				b.Fatal(err)
			}
			if v.Terminated(online.ExpMax) {
				break
			}
		}
	}
}

func BenchmarkSimulatedHIT100Questions(b *testing.B) {
	platform, err := crowd.NewPlatform(crowd.DefaultConfig(3))
	if err != nil {
		b.Fatal(err)
	}
	questions := make([]crowd.Question, 100)
	for i := range questions {
		questions[i] = crowd.Question{
			ID:     fmt.Sprintf("q%d", i),
			Domain: []string{"a", "b", "c"},
			Truth:  "a",
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := platform.Publish(crowd.HIT{Questions: questions}, 30)
		if err != nil {
			b.Fatal(err)
		}
		run.Drain()
	}
}

func BenchmarkSVMPredict(b *testing.B) {
	tweets, err := textgen.Generate(textgen.Config{
		Seed: 4, Movies: textgen.Movies200()[:20], TweetsPerMovie: 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	docs := make([]string, len(tweets))
	labels := make([]string, len(tweets))
	for i, t := range tweets {
		docs[i], labels[i] = t.Text, t.Truth
	}
	model, err := svm.Train(docs, labels, svm.Options{Epochs: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Predict(docs[i%len(docs)])
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblationMEstimate compares verification accuracy on a
// 21-answer rating domain when m is taken as |R| = 21 versus Theorem 5's
// pruned estimate, under herding: a handful of accurate workers find the
// truth while a larger group of inaccurate workers piles onto one shared
// wrong answer. Every vote's confidence carries a +ln(m-1) term, so a
// large m rewards sheer vote count and the herd wins; the pruned m lets
// per-worker accuracy dominate — the paper's reason for "selecting a good
// m to prune the noise".
func BenchmarkAblationMEstimate(b *testing.B) {
	rng := randx.New(5)
	domain := make([]string, 21)
	for i := range domain {
		domain[i] = fmt.Sprintf("score-%02d", i)
	}
	type questionVotes struct {
		truth string
		votes []verification.Vote
	}
	const questions = 300
	qs := make([]questionVotes, questions)
	for qi := range qs {
		truth := domain[rng.IntN(len(domain))]
		herd := domain[rng.IntN(len(domain))]
		for herd == truth {
			herd = domain[rng.IntN(len(domain))]
		}
		var votes []verification.Vote
		for i := 0; i < 3; i++ { // accurate minority
			acc := 0.80 + 0.15*rng.Float64()
			answer := truth
			if !rng.Bool(acc) {
				answer = herd
			}
			votes = append(votes, verification.Vote{Worker: fmt.Sprintf("a%d", i), Accuracy: acc, Answer: answer})
		}
		for i := 0; i < 6; i++ { // herding low-accuracy majority
			acc := 0.30 + 0.15*rng.Float64()
			answer := herd
			if rng.Bool(0.2) {
				answer = truth
			}
			votes = append(votes, verification.Vote{Worker: fmt.Sprintf("h%d", i), Accuracy: acc, Answer: answer})
		}
		qs[qi] = questionVotes{truth: truth, votes: votes}
	}
	run := func(m int) float64 {
		correct := 0
		for _, q := range qs {
			res, err := verification.Verify(q.votes, m)
			if err != nil {
				b.Fatal(err)
			}
			if res.Best().Answer == q.truth {
				correct++
			}
		}
		return float64(correct) / questions
	}
	b.ResetTimer()
	var accFull, accPruned float64
	for i := 0; i < b.N; i++ {
		accFull = run(21)
		accPruned = run(0) // 0 -> Theorem 5 estimate
	}
	b.ReportMetric(accFull, "acc-m=|R|")
	b.ReportMetric(accPruned, "acc-m=thm5")
}

// BenchmarkAblationColluders pits the verification model against majority
// voting on a population with 25% colluding workers who coordinate on a
// fixed wrong answer — the Section 1 motivation for not trusting raw
// majorities.
func BenchmarkAblationColluders(b *testing.B) {
	cfg := crowd.DefaultConfig(6)
	cfg.Workers = 200
	cfg.ColluderFraction = 0.25
	cfg.ColludeAnswer = "neg"
	platform, err := crowd.NewPlatform(cfg)
	if err != nil {
		b.Fatal(err)
	}
	questions := make([]crowd.Question, 100)
	for i := range questions {
		questions[i] = crowd.Question{
			ID:     fmt.Sprintf("q%d", i),
			Domain: []string{"pos", "neu", "neg"},
			Truth:  "pos",
		}
	}
	golden := make([]crowd.Question, 30)
	for i := range golden {
		golden[i] = crowd.Question{
			ID:     fmt.Sprintf("g%d", i),
			Domain: []string{"pos", "neu", "neg"},
			Truth:  []string{"pos", "neu", "neg"}[i%3],
		}
	}
	all := append(append([]crowd.Question{}, questions...), golden...)

	b.ResetTimer()
	var verAcc, majAcc float64
	for i := 0; i < b.N; i++ {
		run, err := platform.Publish(crowd.HIT{Questions: all}, 15)
		if err != nil {
			b.Fatal(err)
		}
		assignments := run.Drain()
		est := make(map[string]float64, len(assignments))
		for _, a := range assignments {
			correct := 0
			for _, g := range golden {
				if a.AnswerTo(g.ID) == g.Truth {
					correct++
				}
			}
			est[a.Worker.ID] = float64(correct) / float64(len(golden))
		}
		verCorrect, majCorrect := 0, 0
		for _, q := range questions {
			votes := make([]verification.Vote, 0, len(assignments))
			for _, a := range assignments {
				votes = append(votes, verification.Vote{
					Worker:   a.Worker.ID,
					Accuracy: est[a.Worker.ID],
					Answer:   a.AnswerTo(q.ID),
				})
			}
			if res, err := verification.Verify(votes, 3); err == nil && res.Best().Answer == q.Truth {
				verCorrect++
			}
			if ans, ok := verification.MajorityVoting(votes); ok && ans == q.Truth {
				majCorrect++
			}
		}
		verAcc = float64(verCorrect) / float64(len(questions))
		majAcc = float64(majCorrect) / float64(len(questions))
	}
	b.ReportMetric(verAcc, "acc-verification")
	b.ReportMetric(majAcc, "acc-majority")
}

// BenchmarkAblationTermination reports the average workers consumed by
// each termination strategy on the same vote streams (the cost side of
// Figures 12/13 as a single number).
func BenchmarkAblationTermination(b *testing.B) {
	platform, _, err := cdas.NewSimulatedPlatform(cdas.DefaultSimulatorConfig(7))
	if err != nil {
		b.Fatal(err)
	}
	const planned = 25
	question := cdas.CrowdQuestion{
		ID: "q", Domain: []string{"pos", "neu", "neg"}, Truth: "pos",
	}
	type arrival struct {
		acc    float64
		answer string
	}
	streams := make([][]arrival, 40)
	for s := range streams {
		run, err := platform.Publish(cdas.HIT{Questions: []cdas.CrowdQuestion{question}}, planned)
		if err != nil {
			b.Fatal(err)
		}
		for {
			a, ok := run.Next()
			if !ok {
				break
			}
			streams[s] = append(streams[s], arrival{a.Worker.Accuracy, a.AnswerTo("q")})
		}
	}
	strategies := []cdas.TerminationStrategy{cdas.MinMax, cdas.MinExp, cdas.ExpMax}
	used := make([]float64, len(strategies))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for si, strat := range strategies {
			total := 0
			for _, stream := range streams {
				v, err := cdas.NewOnlineVerifier(planned, 3, 0.75)
				if err != nil {
					b.Fatal(err)
				}
				for _, a := range stream {
					if err := v.Add(cdas.Vote{Accuracy: a.acc, Answer: a.answer}); err != nil {
						b.Fatal(err)
					}
					total++
					if v.Terminated(strat) {
						break
					}
				}
			}
			used[si] = float64(total) / float64(len(streams))
		}
	}
	b.ReportMetric(used[0], "workers-minmax")
	b.ReportMetric(used[1], "workers-minexp")
	b.ReportMetric(used[2], "workers-expmax")
}

// BenchmarkAblationDawidSkene compares three ways of obtaining the vote
// weights the verification model needs: golden-question sampling (the
// paper's Section 3.3), one-coin Dawid-Skene EM on the votes alone (the
// quality-management alternative from the paper's related work), and a
// uniform prior (no weighting information at all).
func BenchmarkAblationDawidSkene(b *testing.B) {
	cfg := crowd.DefaultConfig(8)
	cfg.Workers = 200
	platform, err := crowd.NewPlatform(cfg)
	if err != nil {
		b.Fatal(err)
	}
	domain := []string{"pos", "neu", "neg"}
	questions := make([]crowd.Question, 120)
	for i := range questions {
		questions[i] = crowd.Question{
			ID:     fmt.Sprintf("q%d", i),
			Domain: domain,
			Truth:  domain[i%3],
		}
	}
	golden := make([]crowd.Question, 30)
	for i := range golden {
		golden[i] = crowd.Question{
			ID:     fmt.Sprintf("g%d", i),
			Domain: domain,
			Truth:  domain[i%3],
		}
	}
	all := append(append([]crowd.Question{}, questions...), golden...)

	b.ResetTimer()
	var goldenAcc, emAcc, uniformAcc float64
	for i := 0; i < b.N; i++ {
		run, err := platform.Publish(crowd.HIT{Questions: all}, 11)
		if err != nil {
			b.Fatal(err)
		}
		assignments := run.Drain()

		// Golden-sampling estimates.
		goldenEst := make(map[string]float64, len(assignments))
		for _, a := range assignments {
			correct := 0
			for _, g := range golden {
				if a.AnswerTo(g.ID) == g.Truth {
					correct++
				}
			}
			goldenEst[a.Worker.ID] = float64(correct) / float64(len(golden))
		}

		// EM estimates from the live votes only (no golden needed).
		var dsVotes []dawidskene.Vote
		for _, a := range assignments {
			for _, q := range questions {
				dsVotes = append(dsVotes, dawidskene.Vote{
					Question: q.ID, Worker: a.Worker.ID, Answer: a.AnswerTo(q.ID),
				})
			}
		}
		em, err := dawidskene.Estimate(dsVotes, len(domain), dawidskene.Options{})
		if err != nil {
			b.Fatal(err)
		}

		evaluate := func(acc func(string) float64) float64 {
			correct := 0
			for _, q := range questions {
				votes := make([]verification.Vote, 0, len(assignments))
				for _, a := range assignments {
					votes = append(votes, verification.Vote{
						Worker:   a.Worker.ID,
						Accuracy: acc(a.Worker.ID),
						Answer:   a.AnswerTo(q.ID),
					})
				}
				if res, err := verification.Verify(votes, len(domain)); err == nil && res.Best().Answer == q.Truth {
					correct++
				}
			}
			return float64(correct) / float64(len(questions))
		}
		goldenAcc = evaluate(func(w string) float64 { return goldenEst[w] })
		emAcc = evaluate(func(w string) float64 { return em.WorkerAccuracy[w] })
		uniformAcc = evaluate(func(string) float64 { return 0.7 })
	}
	b.ReportMetric(goldenAcc, "acc-golden")
	b.ReportMetric(emAcc, "acc-dawidskene")
	b.ReportMetric(uniformAcc, "acc-uniform")
}
