// Failpoint injection for the LSM engine's durability boundary. Every
// fsync, rename and WAL/run write the engine performs passes through a
// named failpoint first; a test hook (LSMConfig.Fail) can make any of
// them return ErrInjectedCrash, simulating a process that died at
// exactly that syscall. The crash-equivalence harness drives identical
// op sequences with a crash injected at every point in turn and asserts
// the recovered store always equals a reference model.
//
// Semantics of an injected crash: bytes written before the failpoint
// are on disk (our simulated crash does not lose the page cache), the
// guarded syscall and everything after it never happened. The torn
// points ("wal.write", "run.write") additionally support partial
// writes: when the hook returns ErrTornWrite the writer persists a
// prefix of the frame and then crashes, modelling a write cut mid-page.
package jobstore

import "errors"

// ErrInjectedCrash is the error a failpoint hook returns (or the engine
// converts ErrTornWrite into) to simulate dying at that point. The
// engine aborts the in-flight operation immediately; the store must be
// reopened from disk, exactly like a process restart.
var ErrInjectedCrash = errors.New("jobstore: injected crash")

// ErrTornWrite instructs a torn-capable failpoint to persist only a
// prefix of the bytes it was about to write before crashing — the
// deterministic version of a write cut mid-page by power loss.
var ErrTornWrite = errors.New("jobstore: injected torn write")

// FailFunc is the failpoint hook: called with the point's name before
// the guarded syscall runs. Returning nil proceeds; returning an error
// aborts the operation with that error (use ErrInjectedCrash, or
// ErrTornWrite at torn-capable points).
type FailFunc func(point string) error

// The LSM engine's failpoints, in the rough order a write's life
// passes through them. Exported so harnesses can enumerate coverage.
const (
	FailWALWrite       = "wal.write"       // torn-capable: WAL frame write
	FailWALSync        = "wal.sync"        // WAL fsync acknowledging a batch
	FailWALRotate      = "wal.rotate"      // new WAL segment creation at checkpoint start
	FailWALTruncate    = "wal.truncate"    // covered WAL segment removal after a checkpoint
	FailRunWrite       = "run.write"       // torn-capable: sorted-run body write
	FailRunSync        = "run.sync"        // run file fsync before install
	FailRunRename      = "run.rename"      // temp → run-NNN.run install rename
	FailManifestWrite  = "manifest.write"  // manifest temp-file write
	FailManifestSync   = "manifest.sync"   // manifest fsync before install
	FailManifestRename = "manifest.rename" // temp → MANIFEST install rename
	FailDirSync        = "dir.sync"        // directory fsync making renames durable
)

// LSMFailpoints lists every failpoint the engine can hit, for harnesses
// that want to assert full coverage.
var LSMFailpoints = []string{
	FailWALWrite, FailWALSync, FailWALRotate, FailWALTruncate,
	FailRunWrite, FailRunSync, FailRunRename,
	FailManifestWrite, FailManifestSync, FailManifestRename,
	FailDirSync,
}

// fail invokes the hook, nil-safely.
func (f FailFunc) fail(point string) error {
	if f == nil {
		return nil
	}
	return f(point)
}
