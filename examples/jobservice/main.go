// Example jobservice demonstrates the durable job service: jobs are
// submitted to a dispatcher pool, executed through the engine's
// concurrent HIT pipeline, and every lifecycle transition is committed
// to a write-ahead log. The example stops the service mid-flight — the
// moral equivalent of kill -9 — then reopens the store and shows the
// replay resuming the interrupted job without re-running the finished
// one.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"cdas/internal/crowd"
	"cdas/internal/engine"
	"cdas/internal/jobs"
	"cdas/internal/metrics"
	"cdas/internal/textgen"
	"cdas/internal/tsa"
)

func main() {
	dir, err := os.MkdirTemp("", "cdas-jobservice-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Printf("job store: %s\n\n", dir)

	const seed = 7
	platform, err := crowd.NewPlatform(crowd.DefaultConfig(seed))
	if err != nil {
		log.Fatal(err)
	}
	movies := []string{"Kung Fu Panda 2", "Thor"}
	stream, err := textgen.Generate(textgen.Config{Seed: seed + 1, Movies: movies, TweetsPerMovie: 40})
	if err != nil {
		log.Fatal(err)
	}
	golden, err := textgen.Generate(textgen.Config{Seed: seed + 2, Movies: []string{"The Calibration Reel"}, TweetsPerMovie: 30})
	if err != nil {
		log.Fatal(err)
	}
	// The simulator answers instantly; pace HIT publication like a real
	// crowd market would so there is a mid-flight moment to interrupt.
	runner := tsa.NewJobRunner(tsa.RunnerConfig{
		Platform: slowPlatform{CrowdPlatform: engine.CrowdPlatform{Platform: platform}, delay: 40 * time.Millisecond},
		Stream:   stream,
		Golden:   golden,
		Engine:   engine.Config{HITSize: 10, MaxInflightHITs: 1, Seed: seed},
	})
	counters := metrics.NewRegistry()
	start := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)

	// ---- First incarnation: run one job, interrupt the other. ----
	svc, err := jobs.OpenService(jobs.ServiceConfig{Dir: dir, Counters: counters})
	if err != nil {
		log.Fatal(err)
	}
	disp, err := jobs.NewDispatcher(svc, runner, 1)
	if err != nil {
		log.Fatal(err)
	}
	disp.Start()
	for _, movie := range movies {
		if _, err := disp.Submit(jobs.Job{Name: movie, Kind: jobs.KindTSA,
			Query: tsa.Query(movie, 0.9, start, 24*time.Hour)}); err != nil {
			log.Fatal(err)
		}
	}
	// Wait until the first job is done and the second is mid-flight,
	// then cut the process down.
	for {
		first, _ := disp.Status(movies[0])
		second, _ := disp.Status(movies[1])
		if first.State.Terminal() && second.State == jobs.StateRunning && second.Progress > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	// kill -9: the store stops receiving writes first, so the WAL's last
	// word on the in-flight job is "running" — no graceful requeue ever
	// reaches disk. (Stop afterwards only reaps the orphaned goroutines;
	// its requeue attempt fails on the closed log, exactly like a dead
	// process that can no longer write.)
	svc.Close()
	disp.Stop()
	fmt.Println("state at the moment of the crash (in-flight job still \"running\"):")
	printStatuses(svc)

	// ---- Second incarnation: replay the WAL and finish the rest. ----
	svc2, err := jobs.OpenService(jobs.ServiceConfig{Dir: dir, Counters: counters})
	if err != nil {
		log.Fatal(err)
	}
	defer svc2.Close()
	for _, name := range svc2.Resumed() {
		fmt.Printf("\nreplay resumed interrupted job %q\n", name)
	}
	disp2, err := jobs.NewDispatcher(svc2, runner, 1)
	if err != nil {
		log.Fatal(err)
	}
	disp2.Start()
	for {
		allDone := true
		for _, st := range disp2.Statuses() {
			if !st.State.Terminal() {
				allDone = false
			}
		}
		if allDone {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	disp2.Stop()
	fmt.Println("\nafter the second incarnation (WAL replayed, all jobs finished):")
	printStatuses(svc2)
	fmt.Printf("\ncounters: submitted=%d started=%d completed=%d resumed=%d wal_appends=%d\n",
		counters.Get(metrics.CounterJobsSubmitted),
		counters.Get(metrics.CounterJobsStarted),
		counters.Get(metrics.CounterJobsCompleted),
		counters.Get(metrics.CounterJobsResumed),
		counters.Get(metrics.CounterWALAppends))
}

// slowPlatform delays each HIT publication, simulating a marketplace
// where assignments take real time.
type slowPlatform struct {
	engine.CrowdPlatform
	delay time.Duration
}

func (p slowPlatform) Publish(hit crowd.HIT, n int) (engine.Run, error) {
	time.Sleep(p.delay)
	return p.CrowdPlatform.Publish(hit, n)
}

func printStatuses(svc *jobs.Service) {
	// Page through the index instead of materializing the whole table —
	// the idiom every listing consumer should use.
	after := ""
	for {
		page, more := svc.StatusesPage(after, 100, "", "")
		for _, st := range page {
			fmt.Printf("  %-16s state=%-9s attempts=%d progress=%4.0f%% cost=$%.2f\n",
				st.Job.Name, st.State, st.Attempts, st.Progress*100, st.Cost)
		}
		if !more {
			return
		}
		after = page[len(page)-1].Job.Name
	}
}
