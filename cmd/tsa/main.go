// Command tsa runs one Twitter-sentiment-analytics query end to end on
// the simulated substrate and prints the Table 1-style presentation.
//
// Usage:
//
//	tsa [-movie "Kung Fu Panda 2"] [-accuracy 0.9] [-tweets 100] [-seed 1] [-strategy expmax] [-inflight 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"cdas/internal/core/online"
	"cdas/internal/crowd"
	"cdas/internal/engine"
	"cdas/internal/textgen"
	"cdas/internal/tsa"
)

func main() {
	var (
		movie    = flag.String("movie", "Kung Fu Panda 2", "movie title to query")
		accuracy = flag.Float64("accuracy", 0.9, "required accuracy C")
		tweets   = flag.Int("tweets", 100, "tweets to simulate for the movie")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		strategy = flag.String("strategy", "never", "termination strategy: never|minmax|minexp|expmax")
		inflight = flag.Int("inflight", 1, "HITs published and draining at once (>1 uses the concurrent pipeline)")
	)
	flag.Parse()

	strat, err := parseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsa:", err)
		os.Exit(2)
	}
	if err := run(*movie, *accuracy, *tweets, *seed, strat, *inflight); err != nil {
		log.Fatalf("tsa: %v", err)
	}
}

func parseStrategy(s string) (online.Strategy, error) {
	switch strings.ToLower(s) {
	case "never":
		return online.Never, nil
	case "minmax":
		return online.MinMax, nil
	case "minexp":
		return online.MinExp, nil
	case "expmax":
		return online.ExpMax, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

func run(movie string, accuracy float64, tweets int, seed uint64, strat online.Strategy, inflight int) error {
	platform, err := crowd.NewPlatform(crowd.DefaultConfig(seed))
	if err != nil {
		return err
	}
	stream, err := textgen.Generate(textgen.Config{
		Seed:           seed + 1,
		Movies:         []string{movie},
		TweetsPerMovie: tweets,
	})
	if err != nil {
		return err
	}
	golden, err := textgen.Generate(textgen.Config{
		Seed:           seed + 2,
		Movies:         []string{"The Calibration Reel"},
		TweetsPerMovie: 40,
	})
	if err != nil {
		return err
	}
	eng, err := engine.New(engine.CrowdPlatform{Platform: platform}, nil, engine.Config{
		JobName:          "tsa",
		RequiredAccuracy: accuracy,
		HITSize:          50,
		Strategy:         strat,
		MaxInflightHITs:  inflight,
		Seed:             seed,
	})
	if err != nil {
		return err
	}
	start := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
	res, err := tsa.Run(eng, tsa.Query(movie, accuracy, start, 24*time.Hour), stream, golden)
	if err != nil {
		return err
	}

	fmt.Printf("Query: %q, required accuracy %.0f%%, strategy %v\n", movie, accuracy*100, strat)
	fmt.Printf("Tweets processed: %d\n\n", res.Tweets)
	fmt.Printf("%-14s %-11s %s\n", "Opinion", "Percentage", "Reasons")
	labels := append([]string(nil), res.Summary.Domain...)
	sort.Slice(labels, func(i, j int) bool {
		return res.Summary.Percentages[labels[i]] > res.Summary.Percentages[labels[j]]
	})
	for _, label := range labels {
		fmt.Printf("%-14s %9.1f%%  %s\n", label,
			100*res.Summary.Percentages[label],
			strings.Join(res.Summary.Reasons[label], ", "))
	}
	var cost float64
	var planned, used int
	for _, b := range res.Batches {
		cost += b.Cost
		planned += b.PlannedWorkers
		used += b.UsedWorkers
	}
	fmt.Printf("\nHITs: %d  workers planned/used: %d/%d  cost: $%.3f\n",
		len(res.Batches), planned, used, cost)
	fmt.Printf("Accuracy vs simulated ground truth: %.3f\n", res.Accuracy)
	return nil
}
