package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"cdas/api"
	"cdas/internal/exec"
	"cdas/internal/httpapi"
	"cdas/internal/jobs"
	"cdas/internal/metrics"
)

// smokeBackend is a real job service + API server whose runner
// publishes two query-state revisions (intermediate, then done) before
// completing — enough for watch to see a live stream.
func smokeBackend(t *testing.T) *httptest.Server {
	t.Helper()
	svc, err := jobs.OpenService(jobs.ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	srv := httpapi.NewServer()
	var mu sync.Mutex
	blocked := make(map[string]chan struct{})
	gate := func(name string) chan struct{} {
		mu.Lock()
		defer mu.Unlock()
		if _, ok := blocked[name]; !ok {
			blocked[name] = make(chan struct{})
		}
		return blocked[name]
	}
	disp, err := jobs.NewDispatcher(svc, func(ctx context.Context, job jobs.Job, report func(float64, float64)) error {
		pct := make(map[string]float64, len(job.Query.Domain))
		for i, d := range job.Query.Domain {
			if i == 0 {
				pct[d] = 1
			} else {
				pct[d] = 0
			}
		}
		sum := exec.Summary{Domain: job.Query.Domain, Percentages: pct, Items: 10}
		srv.UpdateFromSummary(job.Name, sum, 0.5, false)
		report(0.5, 0.1)
		if strings.HasPrefix(job.Name, "held-") {
			select {
			case <-gate(job.Name):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		sum.Items = 20
		srv.UpdateFromSummary(job.Name, sum, 1, true)
		report(1, 0.2)
		return nil
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	disp.Start()
	t.Cleanup(disp.Stop)
	srv.SetJobs(disp)
	srv.SetCounters(metrics.NewRegistry())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// ctl runs one CLI invocation in-process and returns exit code, stdout
// and stderr.
func ctl(t *testing.T, server string, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(append([]string{"-server", server}, args...), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestCtlSmoke is the CI smoke: submit → watch → list → get → cancel,
// all through the SDK-backed CLI against a live server.
func TestCtlSmoke(t *testing.T) {
	ts := smokeBackend(t)

	// submit -watch streams the live view through to the done event.
	code, out, errOut := ctl(t, ts.URL, "submit",
		"-name", "panda", "-keywords", "Kung Fu Panda 2", "-domain", "pos,neu,neg",
		"-accuracy", "0.9", "-window", "24h", "-watch")
	if code != 0 {
		t.Fatalf("submit -watch exited %d: %s", code, errOut)
	}
	var st api.JobStatus
	// The first JSON object on stdout is the submitted record.
	dec := json.NewDecoder(strings.NewReader(out))
	if err := dec.Decode(&st); err != nil {
		t.Fatalf("submit output not a JobStatus: %v\n%s", err, out)
	}
	if st.Name != "panda" {
		t.Errorf("submitted job = %+v", st)
	}
	if !strings.Contains(out, "done rev=") {
		t.Errorf("watch output missing the terminal done event:\n%s", out)
	}

	// A held job stays running so cancel lands mid-flight.
	if code, _, errOut := ctl(t, ts.URL, "submit",
		"-name", "held-thor", "-keywords", "Thor"); code != 0 {
		t.Fatalf("submit held-thor exited %d: %s", code, errOut)
	}

	// get shows the record; list shows both jobs.
	code, out, errOut = ctl(t, ts.URL, "get", "panda")
	if code != 0 || !strings.Contains(out, `"state": "done"`) {
		t.Errorf("get exited %d: %s / %s", code, out, errOut)
	}
	code, out, _ = ctl(t, ts.URL, "list")
	if code != 0 {
		t.Fatalf("list exited %d", code)
	}
	if !strings.Contains(out, "panda") || !strings.Contains(out, "held-thor") {
		t.Errorf("list output:\n%s", out)
	}
	if !strings.Contains(out, "2 job(s)") {
		t.Errorf("list count missing:\n%s", out)
	}
	// list -state filters.
	code, out, _ = ctl(t, ts.URL, "list", "-state", "done")
	if code != 0 || strings.Contains(out, "held-thor") || !strings.Contains(out, "panda") {
		t.Errorf("filtered list (%d):\n%s", code, out)
	}

	// watch an already-finished query: the replay alone carries the
	// terminal event, with the per-answer percentages rendered.
	code, out, errOut = ctl(t, ts.URL, "watch", "panda")
	if code != 0 {
		t.Fatalf("watch exited %d: %s", code, errOut)
	}
	if !strings.Contains(out, "done rev=") || !strings.Contains(out, "pos=") {
		t.Errorf("watch replay output:\n%s", out)
	}

	// cancel the held job.
	code, out, errOut = ctl(t, ts.URL, "cancel", "held-thor")
	if code != 0 {
		t.Fatalf("cancel exited %d: %s", code, errOut)
	}

	// health round-trips.
	code, out, _ = ctl(t, ts.URL, "health")
	if code != 0 || !strings.Contains(out, `"status": "ok"`) {
		t.Errorf("health (%d):\n%s", code, out)
	}
	// metrics and queries don't error.
	if code, _, errOut := ctl(t, ts.URL, "metrics"); code != 0 {
		t.Errorf("metrics exited %d: %s", code, errOut)
	}
	if code, _, errOut := ctl(t, ts.URL, "queries"); code != 0 {
		t.Errorf("queries exited %d: %s", code, errOut)
	}
}

// TestCtlErrors: server-side envelopes surface as exit 1 with the typed
// message; usage errors exit 2.
func TestCtlErrors(t *testing.T) {
	ts := smokeBackend(t)

	code, _, errOut := ctl(t, ts.URL, "get", "nope")
	if code != 1 || !strings.Contains(errOut, "not_found") {
		t.Errorf("get nope = %d / %s", code, errOut)
	}
	code, _, errOut = ctl(t, ts.URL, "submit", "-name", "x")
	if code != 1 || !strings.Contains(errOut, "-keywords") {
		t.Errorf("submit without keywords = %d / %s", code, errOut)
	}
	if code, _, _ := ctl(t, ts.URL, "frobnicate"); code != 2 {
		t.Errorf("unknown command exited %d, want 2", code)
	}
	if code, _, _ := ctl(t, ts.URL); code != 2 {
		t.Errorf("no command exited %d, want 2", code)
	}
	// scheduler without one attached: unavailable envelope.
	code, _, errOut = ctl(t, ts.URL, "scheduler")
	if code != 1 || !strings.Contains(errOut, "unavailable") {
		t.Errorf("scheduler = %d / %s", code, errOut)
	}
	// unpark a job that isn't parked: conflict envelope.
	if code, _, errOut := ctl(t, ts.URL, "unpark", "ghost"); code != 1 || !strings.Contains(errOut, "not_found") {
		t.Errorf("unpark ghost = %d / %s", code, errOut)
	}
	// watch an unknown query: the subscribe itself 404s.
	if code, _, errOut := ctl(t, ts.URL, "watch", "ghost"); code != 1 || !strings.Contains(errOut, "not_found") {
		t.Errorf("watch ghost = %d / %s", code, errOut)
	}
	// arity errors.
	if code, _, _ := ctl(t, ts.URL, "watch"); code != 1 {
		t.Errorf("watch without a name exited %d, want 1", code)
	}
	if code, _, _ := ctl(t, ts.URL, "get", "a", "b"); code != 1 {
		t.Errorf("get with two names exited %d, want 1", code)
	}
}

// TestCtlServerFromEnv: CDAS_SERVER supplies the default base URL.
func TestCtlServerFromEnv(t *testing.T) {
	ts := smokeBackend(t)
	t.Setenv("CDAS_SERVER", ts.URL)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"health"}, &stdout, &stderr); code != 0 {
		t.Fatalf("health via CDAS_SERVER exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), `"status": "ok"`) {
		t.Errorf("health output:\n%s", stdout.String())
	}
}

// TestCtlAggregators: the discovery subcommand lists the registry and
// submit -aggregator round-trips the method onto the job record (and
// surfaces the typed rejection for an unknown one).
func TestCtlAggregators(t *testing.T) {
	ts := smokeBackend(t)

	code, out, errOut := ctl(t, ts.URL, "aggregators")
	if code != 0 {
		t.Fatalf("aggregators exited %d: %s", code, errOut)
	}
	for _, want := range []string{"NAME", "cdas", "(default)", "majority", "wawa", "zbs", "dawid-skene", "incremental", "batch"} {
		if !strings.Contains(out, want) {
			t.Errorf("aggregators output missing %q:\n%s", want, out)
		}
	}

	code, out, errOut = ctl(t, ts.URL, "submit",
		"-name", "weighted", "-keywords", "Kung Fu Panda 2", "-aggregator", "wawa")
	if code != 0 {
		t.Fatalf("submit -aggregator wawa exited %d: %s", code, errOut)
	}
	var st api.JobStatus
	if err := json.NewDecoder(strings.NewReader(out)).Decode(&st); err != nil {
		t.Fatalf("submit output not a JobStatus: %v\n%s", err, out)
	}
	if st.Aggregator != "wawa" {
		t.Errorf("submitted record aggregator = %q, want \"wawa\"", st.Aggregator)
	}
	// The record keeps the method on later reads too.
	if code, out, _ := ctl(t, ts.URL, "get", "weighted"); code != 0 || !strings.Contains(out, `"aggregator": "wawa"`) {
		t.Errorf("get weighted (%d):\n%s", code, out)
	}

	// An unknown method is the structured rejection, not a silent default.
	code, _, errOut = ctl(t, ts.URL, "submit",
		"-name", "bogus", "-keywords", "Thor", "-aggregator", "consensus-9000")
	if code != 1 || !strings.Contains(errOut, "unknown_aggregator") {
		t.Errorf("submit with unknown aggregator = %d / %s", code, errOut)
	}
}
