// Bloom filter over a sorted run's keys: negative Gets skip the run's
// blocks entirely, which is what keeps point lookups cheap once
// compaction has stacked a few runs. The filter is built once at run
// write time and serialised into the run file; false positives cost a
// block read, false negatives are impossible (the property tests pin
// that).
package jobstore

import "hash/fnv"

// bloomBitsPerKey sizes the filter: 10 bits/key ≈ 1% false positives
// with the 7 probes below.
const (
	bloomBitsPerKey = 10
	bloomHashes     = 7
)

// bloom is a split (double-hashed) Bloom filter.
type bloom struct {
	bits []byte
}

// newBloom sizes a filter for n keys.
func newBloom(n int) *bloom {
	if n < 1 {
		n = 1
	}
	nbits := n * bloomBitsPerKey
	return &bloom{bits: make([]byte, (nbits+7)/8)}
}

// bloomHash derives the two independent hash streams from one FNV-64a
// pass; probe i uses h1 + i*h2 (Kirsch–Mitzenmacher double hashing).
func bloomHash(key string) (h1, h2 uint64) {
	h := fnv.New64a()
	h.Write([]byte(key))
	sum := h.Sum64()
	h1 = sum
	h2 = sum>>33 | sum<<31
	h2 |= 1 // odd, so probes cycle through the whole bit array
	return h1, h2
}

func (b *bloom) add(key string) {
	nbits := uint64(len(b.bits)) * 8
	h1, h2 := bloomHash(key)
	for i := uint64(0); i < bloomHashes; i++ {
		bit := (h1 + i*h2) % nbits
		b.bits[bit/8] |= 1 << (bit % 8)
	}
}

// mayContain reports whether key could be in the set. False means
// definitely absent.
func (b *bloom) mayContain(key string) bool {
	if len(b.bits) == 0 {
		return false
	}
	nbits := uint64(len(b.bits)) * 8
	h1, h2 := bloomHash(key)
	for i := uint64(0); i < bloomHashes; i++ {
		bit := (h1 + i*h2) % nbits
		if b.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}
