// Command cdas-storectl manages cdas-server job-store directories.
//
//	cdas-storectl migrate -dir /var/lib/cdas/jobs
//
// migrate converts a WAL-engine store (the pre-lsm default) to the LSM
// engine in place: it replays the WAL store, writes an equivalent LSM
// store — every job's primary record plus its state/priority/tenant
// index entries in atomic batches — verifies the two views are
// deep-equal, and only then retires the WAL files (renamed *.retired;
// renaming them back is the rollback). The conversion is idempotent
// and resumable: re-running after an interruption discards the partial
// LSM store and starts over from the still-authoritative WAL, and
// re-running after success is a no-op. A store held open by a live
// server is refused.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"cdas/internal/jobs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "cdas-storectl: usage: cdas-storectl migrate -dir DIR")
		return 1
	}
	switch args[0] {
	case "migrate":
		return runMigrate(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "cdas-storectl: unknown command %q (try: migrate)\n", args[0])
		return 1
	}
}

func runMigrate(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cdas-storectl migrate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "job store directory (cdas-server's -store-dir)")
	quiet := fs.Bool("quiet", false, "suppress progress output")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *dir == "" {
		fmt.Fprintln(stderr, "cdas-storectl: migrate needs -dir")
		return 1
	}
	logf := func(format string, a ...any) {
		if !*quiet {
			fmt.Fprintf(stdout, format+"\n", a...)
		}
	}
	res, err := jobs.MigrateStore(*dir, logf)
	if errors.Is(err, jobs.ErrAlreadyMigrated) {
		// Idempotent from the operator's view: the desired end state
		// already holds.
		logf("%s is already on the lsm engine; nothing to do", *dir)
		return 0
	}
	if err != nil {
		fmt.Fprintf(stderr, "cdas-storectl: %v\n", err)
		return 1
	}
	if res.Resumed {
		logf("resumed an interrupted migration from scratch")
	}
	logf("migrated %d jobs (budget ledger carried: %v)", res.Jobs, res.BudgetMoved)
	for _, f := range res.Retired {
		logf("retired %s", f)
	}
	logf("done: start cdas-server with -store-engine=lsm (the default); to roll back, remove the lsm files and rename the retired files back")
	return 0
}
