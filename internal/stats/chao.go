// Chao92 species estimation: turning an enumeration job's observed
// frequency-of-frequencies into an estimate of the total set size, so a
// completeness bound (rather than the per-question accuracy bound of
// Eq.4) can stop an open-ended "list all X" query. Follows Chao & Lee
// (JASA 1992) as applied to crowdsourced enumeration by Trushkowsky et
// al. (ICDE 2013).
package stats

import "math"

// SpeciesEstimate is one Chao92 evaluation over an enumeration job's
// contribution history.
type SpeciesEstimate struct {
	// Observed is D, the number of distinct items seen so far.
	Observed int `json:"observed"`
	// Samples is n, the total number of contributions (with repeats).
	Samples int `json:"samples"`
	// Singletons is f1, the number of items seen exactly once. A large
	// singleton fraction means the crowd is still surfacing new items.
	Singletons int `json:"singletons"`
	// Coverage is the Good-Turing sample coverage estimate
	// C-hat = 1 - f1/n: the probability mass of the items already seen.
	Coverage float64 `json:"coverage"`
	// CV2 is the squared coefficient of variation gamma^2 correcting for
	// unequal item popularity (0 under the homogeneous model).
	CV2 float64 `json:"cv2"`
	// Total is N-hat, the estimated size of the underlying set. Always
	// at least Observed.
	Total float64 `json:"total"`
}

// Completeness is the live progress figure Observed/Total, clamped to
// [0, 1]. Zero when nothing has been sampled yet.
func (e SpeciesEstimate) Completeness() float64 {
	if e.Total <= 0 {
		return 0
	}
	c := float64(e.Observed) / e.Total
	return math.Min(c, 1)
}

// Chao92 estimates the total number of distinct items in the underlying
// set from the frequency-of-frequencies histogram freq, where freq[k] is
// the number of distinct items observed exactly k times (entries with
// k <= 0 or a non-positive count are ignored).
//
// The estimator is N-hat = D/C-hat + n(1-C-hat)/C-hat * gamma^2 with
// sample coverage C-hat = 1 - f1/n and
// gamma^2 = max(0, (D/C-hat) * sum_k k(k-1) f_k / (n(n-1)) - 1).
// When every observation is a singleton C-hat is zero and the
// coverage-based form blows up; we fall back to the bias-corrected
// Chao1 lower bound D + f1(f1-1)/(2(f2+1)) instead.
func Chao92(freq map[int]int) SpeciesEstimate {
	var est SpeciesEstimate
	for k, cnt := range freq {
		if k <= 0 || cnt <= 0 {
			continue
		}
		est.Observed += cnt
		est.Samples += k * cnt
		if k == 1 {
			est.Singletons = cnt
		}
	}
	if est.Samples == 0 {
		return est
	}
	d := float64(est.Observed)
	n := float64(est.Samples)
	f1 := float64(est.Singletons)
	cov := 1 - f1/n
	est.Coverage = cov
	if cov <= 0 {
		// All singletons: no coverage signal yet. Chao1's bias-corrected
		// lower bound still holds (f2 = 0 here, so it reduces to
		// D + f1(f1-1)/2).
		f2 := float64(freq[2])
		est.Total = d + f1*(f1-1)/(2*(f2+1))
		return est
	}
	n0 := d / cov
	if est.Samples > 1 {
		var pairs float64 // sum_k k(k-1) f_k
		for k, cnt := range freq {
			if k > 1 && cnt > 0 {
				pairs += float64(k) * float64(k-1) * float64(cnt)
			}
		}
		est.CV2 = math.Max(0, n0*pairs/(n*(n-1))-1)
	}
	est.Total = n0 + n*(1-cov)/cov*est.CV2
	return est
}

// GoodTuringUnseen is the Good-Turing estimate f1/n of the probability
// that the next contribution is an item not yet seen. With no samples
// the next contribution is certainly new, so it returns 1. This is the
// E[new items per contribution] factor of the ledger's marginal-value
// admission rule.
func GoodTuringUnseen(freq map[int]int) float64 {
	n, f1 := 0, 0
	for k, cnt := range freq {
		if k <= 0 || cnt <= 0 {
			continue
		}
		n += k * cnt
		if k == 1 {
			f1 = cnt
		}
	}
	if n == 0 {
		return 1
	}
	return float64(f1) / float64(n)
}
