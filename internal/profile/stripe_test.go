package profile

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// sameStripeWorkers finds n distinct worker IDs hashing to one stripe,
// plus one worker from a different stripe — the fixture for boundary
// tests.
func sameStripeWorkers(t *testing.T, s *Store, n int) (same []string, other string) {
	t.Helper()
	target := s.stripeFor("w-0000")
	for i := 0; len(same) < n && i < 100000; i++ {
		w := fmt.Sprintf("w-%04d", i)
		if s.stripeFor(w) == target {
			same = append(same, w)
		} else if other == "" {
			other = w
		}
	}
	if len(same) < n || other == "" {
		t.Fatalf("could not build the stripe fixture (%d same, other=%q)", len(same), other)
	}
	return same, other
}

// TestStripeBoundary drives concurrent writers whose workers all hash
// to one stripe (maximum collision pressure) alongside a worker on
// another stripe, and asserts every count lands exactly: striping must
// never lose or cross-credit outcomes, whether keys share a stripe or
// not.
func TestStripeBoundary(t *testing.T) {
	s := NewStore()
	same, other := sameStripeWorkers(t, s, 4)
	const (
		jobs    = 3
		rounds  = 500
		writers = 4 // one per same-stripe worker
	)
	var wg sync.WaitGroup
	for wi, w := range same {
		wg.Add(1)
		go func(wi int, w string) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for j := 0; j < jobs; j++ {
					// Worker wi answers correctly when r%(wi+2) == 0 — a
					// per-worker deterministic pattern so expected counts
					// are computable.
					s.Record(fmt.Sprintf("job%d", j), w, r%(wi+2) == 0)
				}
			}
		}(wi, w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			s.Record("job0", other, true)
		}
	}()
	wg.Wait()

	for j := 0; j < jobs; j++ {
		job := fmt.Sprintf("job%d", j)
		for wi, w := range same {
			if got := s.Samples(job, w); got != rounds {
				t.Errorf("%s/%s: %d samples, want %d", job, w, got, rounds)
			}
			wantCorrect := 0
			for r := 0; r < rounds; r++ {
				if r%(wi+2) == 0 {
					wantCorrect++
				}
			}
			acc, ok := s.Accuracy(job, w)
			if !ok {
				t.Fatalf("%s/%s: no accuracy", job, w)
			}
			want := (float64(wantCorrect) + 1) / (float64(rounds) + 2)
			if acc != want {
				t.Errorf("%s/%s: accuracy %v, want %v", job, w, acc, want)
			}
		}
	}
	if got := s.Samples("job0", other); got != rounds {
		t.Errorf("cross-stripe worker %s: %d samples, want %d", other, got, rounds)
	}
	// Whole-store views must merge the stripes consistently.
	if got := len(s.Workers("job0")); got != len(same)+1 {
		t.Errorf("Workers(job0) = %d entries, want %d", got, len(same)+1)
	}
	snap := s.Snapshot("job0")
	for _, w := range same {
		if snap.Samples(w) != rounds {
			t.Errorf("snapshot %s: %d samples, want %d", w, snap.Samples(w), rounds)
		}
	}
}

// TestStripeSaveLoadRoundTrip checks that striping is invisible in the
// serialised form: save, load into a fresh store, and every per-worker
// count survives regardless of stripe placement.
func TestStripeSaveLoadRoundTrip(t *testing.T) {
	s := NewStore()
	same, other := sameStripeWorkers(t, s, 3)
	workers := append(append([]string(nil), same...), other)
	for i, w := range workers {
		for n := 0; n <= i; n++ {
			s.Record("job", w, n%2 == 0)
		}
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewStore()
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	for i, w := range workers {
		if got, want := restored.Samples("job", w), i+1; got != want {
			t.Errorf("%s: %d samples after round trip, want %d", w, got, want)
		}
		a1, ok1 := s.Accuracy("job", w)
		a2, ok2 := restored.Accuracy("job", w)
		if ok1 != ok2 || a1 != a2 {
			t.Errorf("%s: accuracy changed across round trip: %v/%v vs %v/%v", w, a1, ok1, a2, ok2)
		}
	}
}
