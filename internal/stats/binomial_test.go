package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// naiveBinomialTail computes P[X >= k0] by direct PMF summation, as an
// oracle for the iterative Algorithm 3 implementation.
func naiveBinomialTail(n, k0 int, p float64) float64 {
	sum := 0.0
	for k := k0; k <= n; k++ {
		sum += BinomialPMF(n, k, p)
	}
	return sum
}

func TestBinomialTailMatchesNaive(t *testing.T) {
	cases := []struct {
		n, k0 int
		p     float64
	}{
		{1, 1, 0.7}, {3, 2, 0.7}, {5, 3, 0.54}, {9, 5, 0.75},
		{29, 15, 0.7}, {101, 51, 0.65}, {15, 8, 0.99}, {15, 8, 0.01},
	}
	for _, c := range cases {
		got := BinomialTail(c.n, c.k0, c.p)
		want := naiveBinomialTail(c.n, c.k0, c.p)
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("BinomialTail(%d,%d,%v) = %v, naive = %v", c.n, c.k0, c.p, got, want)
		}
	}
}

func TestMajorityTailKnownValues(t *testing.T) {
	// n=1: P[X>=1] = p.
	if got := MajorityTail(1, 0.7); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("MajorityTail(1,0.7) = %v, want 0.7", got)
	}
	// n=3, p=0.7: P[X>=2] = 3*0.49*0.3 + 0.343 = 0.784.
	if got := MajorityTail(3, 0.7); math.Abs(got-0.784) > 1e-12 {
		t.Errorf("MajorityTail(3,0.7) = %v, want 0.784", got)
	}
	// Fair coin: majority of odd n is exactly 1/2 by symmetry.
	for _, n := range []int{1, 3, 5, 7, 29} {
		if got := MajorityTail(n, 0.5); math.Abs(got-0.5) > 1e-10 {
			t.Errorf("MajorityTail(%d,0.5) = %v, want 0.5", n, got)
		}
	}
}

func TestMajorityTailEdgeProbabilities(t *testing.T) {
	if got := MajorityTail(7, 0); got != 0 {
		t.Errorf("MajorityTail(7,0) = %v, want 0", got)
	}
	if got := MajorityTail(7, 1); got != 1 {
		t.Errorf("MajorityTail(7,1) = %v, want 1", got)
	}
}

func TestBinomialTailBoundaryK(t *testing.T) {
	if got := BinomialTail(5, 0, 0.3); got != 1 {
		t.Errorf("k0=0 tail = %v, want 1", got)
	}
	if got := BinomialTail(5, 6, 0.3); got != 0 {
		t.Errorf("k0>n tail = %v, want 0", got)
	}
	// k0 = n is just p^n.
	if got, want := BinomialTail(4, 4, 0.6), math.Pow(0.6, 4); math.Abs(got-want) > 1e-12 {
		t.Errorf("k0=n tail = %v, want %v", got, want)
	}
}

func TestMajorityTailMonotoneInP(t *testing.T) {
	// Property: the tail is nondecreasing in p for fixed n.
	f := func(seedP, seedQ float64, nRaw uint8) bool {
		n := 1 + 2*(int(nRaw)%20) // odd n in [1, 39]
		p := math.Abs(math.Mod(seedP, 1))
		q := math.Abs(math.Mod(seedQ, 1))
		if p > q {
			p, q = q, p
		}
		return MajorityTail(n, p) <= MajorityTail(n, q)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMajorityTailMonotoneInOddN(t *testing.T) {
	// For mu > 1/2, adding two workers can only help the majority.
	for n := 1; n <= 41; n += 2 {
		for _, mu := range []float64{0.55, 0.65, 0.75, 0.9} {
			a, b := MajorityTail(n, mu), MajorityTail(n+2, mu)
			if b+1e-12 < a {
				t.Fatalf("MajorityTail not monotone: n=%d mu=%v: %v then %v", n, mu, a, b)
			}
		}
	}
}

func TestChernoffBoundIsLowerBound(t *testing.T) {
	// Theorem 2: the Chernoff expression lower-bounds the exact tail for
	// odd n and mu > 1/2.
	for n := 1; n <= 61; n += 2 {
		for _, mu := range []float64{0.55, 0.6, 0.7, 0.8, 0.9, 0.95} {
			exact := MajorityTail(n, mu)
			bound := ChernoffMajorityLowerBound(n, mu)
			if bound > exact+1e-12 {
				t.Fatalf("Chernoff bound %v exceeds exact %v at n=%d mu=%v", bound, exact, n, mu)
			}
		}
	}
}

func TestLogChoose(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {29, 15, 77558760},
	}
	for _, c := range cases {
		got := math.Exp(LogChoose(c.n, c.k))
		if math.Abs(got-c.want)/c.want > 1e-9 {
			t.Errorf("exp(LogChoose(%d,%d)) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	if !math.IsInf(LogChoose(3, 5), -1) {
		t.Error("LogChoose(3,5) should be -Inf")
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 7, 30} {
		for _, p := range []float64{0.1, 0.5, 0.93} {
			sum := 0.0
			for k := 0; k <= n; k++ {
				sum += BinomialPMF(n, k, p)
			}
			if math.Abs(sum-1) > 1e-10 {
				t.Errorf("PMF(n=%d,p=%v) sums to %v", n, p, sum)
			}
		}
	}
}

func TestBinomialPMFEdgeCases(t *testing.T) {
	cases := []struct {
		n, k int
		p    float64
		want float64
	}{
		{10, -1, 0.5, 0}, // out-of-range k
		{10, 11, 0.5, 0},
		{10, 0, 0, 1}, // degenerate p pins all mass on one k
		{10, 3, 0, 0},
		{10, 10, 1, 1},
		{10, 9, 1, 0},
	}
	for _, c := range cases {
		if got := BinomialPMF(c.n, c.k, c.p); got != c.want {
			t.Errorf("BinomialPMF(%d, %d, %v) = %v, want %v", c.n, c.k, c.p, got, c.want)
		}
	}
}

func TestBinomialTailLargeN(t *testing.T) {
	// Must not under/overflow at large n: majority at p=0.51, n=10001 is
	// well above 1/2 and below 1.
	got := MajorityTail(10001, 0.51)
	if !(got > 0.5 && got < 1) {
		t.Errorf("MajorityTail(10001, 0.51) = %v, want in (0.5, 1)", got)
	}
	if math.IsNaN(got) {
		t.Error("MajorityTail large n produced NaN")
	}
}

func TestMajorityTailPanicsOnBadInput(t *testing.T) {
	assertPanics(t, func() { MajorityTail(0, 0.5) }, "n=0")
	assertPanics(t, func() { MajorityTail(3, -0.1) }, "p<0")
	assertPanics(t, func() { MajorityTail(3, 1.1) }, "p>1")
	assertPanics(t, func() { BinomialTail(0, 1, 0.5) }, "BinomialTail n=0")
	assertPanics(t, func() { ChernoffMajorityLowerBound(0, 0.7) }, "Chernoff n=0")
}

func assertPanics(t *testing.T, f func(), name string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
