package enum

import (
	"context"
	"fmt"

	"cdas/api"
	"cdas/internal/jobs"
	"cdas/internal/metrics"
	"cdas/internal/scheduler"
	"cdas/internal/stats"
)

// Stop reasons recorded in the durable mark's EnumProgress.Stopped.
// The values are the wire contract's (they surface verbatim in
// EnumStatus.Stopped); aliased here so runner code reads naturally.
const (
	// StopMarginalValue: E[new items per batch] x item value fell below
	// the HIT price — the principled open-ended stop.
	StopMarginalValue = api.StopMarginalValue
	// StopTargetCoverage: the completeness estimate reached the spec's
	// target.
	StopTargetCoverage = api.StopTargetCoverage
	// StopMaxBatches: the spec's batch cap was reached.
	StopMaxBatches = api.StopMaxBatches
	// StopSourceExhausted: the source had no contributions left.
	StopSourceExhausted = api.StopSourceExhausted
)

// MarkStore persists enumeration progress marks; satisfied by
// *jobs.Service. A nil store runs volatile (tests, ephemeral demos).
type MarkStore interface {
	StreamMarkFor(name string) (jobs.StreamMark, bool)
	CommitStreamMark(name string, mark jobs.StreamMark) error
}

// BatchResult is one completed HIT batch's outcome.
type BatchResult struct {
	// Batch is the batch index (0-based).
	Batch int
	// Contributions is how many answers the batch collected.
	Contributions int
	// NewItems are the members this batch discovered, in contribution
	// order.
	NewItems []Item
	// ExpectedNew is the E[new items] the admission rule priced the
	// batch at (Good-Turing unseen probability x batch size).
	ExpectedNew float64
	// Cost is what the batch was charged.
	Cost float64
}

// PublishFunc receives enumeration progress for the live-results
// surface: one call per completed batch (batch != nil, done false) and
// one terminal call (batch == nil, done true). items is the full result
// set sorted by text; est the current Chao92 estimate.
type PublishFunc func(job jobs.Job, batch *BatchResult, items []Item, mark jobs.StreamMark, est stats.SpeciesEstimate, done bool)

// RunnerConfig wires NewRunner.
type RunnerConfig struct {
	// Scheduler supplies HIT pricing and the budget ledger. Required.
	Scheduler *scheduler.Scheduler
	// Source builds each job's contribution source; defaults to
	// NewSimSource.
	Source SourceFactory
	// Marks persists batch marks across restarts; nil runs volatile.
	Marks MarkStore
	// OnCharge persists each batch's spend (the jobs.Service budget
	// hook), called before the in-memory ledger charge like the
	// scheduler's flush loop does. Optional.
	OnCharge func(job string, amount float64)
	// Counters receives enumeration metrics. Optional.
	Counters *metrics.Registry
	// Publish receives per-batch and terminal updates. Optional.
	Publish PublishFunc
}

// NewRunner builds the jobs.Runner for KindEnumeration jobs: restore
// the committed batch mark and result set, then buy HIT batches one at
// a time while the ledger's marginal-value rule admits them, committing
// each batch's mark before reporting it — so a kill -9 resumes at the
// next batch without re-charging or re-counting committed ones. A
// value stop (discovery dried up, coverage reached, caps hit) finishes
// the job Done; a budget refusal parks it resumable.
func NewRunner(cfg RunnerConfig) jobs.Runner {
	if cfg.Source == nil {
		cfg.Source = NewSimSource
	}
	return func(ctx context.Context, job jobs.Job, report func(progress, cost float64)) error {
		if job.Kind != jobs.KindEnumeration || job.Enum == nil {
			return fmt.Errorf("%w: enum: job %q is not an enumeration job", jobs.ErrPermanent, job.Name)
		}
		source, err := cfg.Source(job)
		if err != nil {
			// Source construction is deterministic (bad spec): retrying
			// replays it.
			return fmt.Errorf("%w: enum: %w", jobs.ErrPermanent, err)
		}
		mark := jobs.StreamMark{Window: -1}
		if cfg.Marks != nil {
			if m, ok := cfg.Marks.StreamMarkFor(job.Name); ok {
				mark = m
			}
		}
		set := RestoreResultSet(mark.Enum)
		startSpent := mark.Spent
		sp := *job.Enum
		price := cfg.Scheduler.HITPrice()
		ledger := cfg.Scheduler.Ledger()
		ledger.SetJobLimit(job.Name, job.Budget)

		finish := func(stop string) error {
			mark.Enum = set.Progress()
			mark.Enum.Stopped = stop
			if cfg.Marks != nil {
				if err := cfg.Marks.CommitStreamMark(job.Name, mark); err != nil {
					return fmt.Errorf("enum: committing stop mark: %w", err)
				}
			}
			if cfg.Counters != nil {
				cfg.Counters.Inc("enum_stop_" + stop)
			}
			report(1, mark.Spent-startSpent)
			if cfg.Publish != nil {
				cfg.Publish(job, nil, set.Items(), mark, set.Estimate(), true)
			}
			return nil
		}
		if mark.Enum != nil && mark.Enum.Stopped != "" {
			// The job had already stopped when it was interrupted; just
			// re-surface the terminal state.
			return finish(mark.Enum.Stopped)
		}

		for batch := mark.Window + 1; ; batch++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if sp.MaxBatches > 0 && batch >= sp.MaxBatches {
				return finish(StopMaxBatches)
			}
			est := set.Estimate()
			if sp.TargetCoverage > 0 && set.Distinct() > 0 && est.Completeness() >= sp.TargetCoverage {
				return finish(StopTargetCoverage)
			}
			expected := set.UnseenProbability() * float64(sp.BatchContributions())
			switch ledger.AdmitMarginal(job.Name, price, expected, sp.ItemValue) {
			case scheduler.MarginalStop:
				return finish(StopMarginalValue)
			case scheduler.MarginalPark:
				// No cost report: Park refunds the attempt's lifecycle
				// cost by design; every committed batch's spend is
				// already durable in the mark and the budget ledger.
				if cfg.Counters != nil {
					cfg.Counters.Inc("enum_jobs_parked")
				}
				return fmt.Errorf("%w: enum: batch %d of job %q refused by budget (price %.4f)",
					jobs.ErrParked, batch, job.Name, price)
			}
			contribs := source.Batch(batch)
			if len(contribs) == 0 {
				return finish(StopSourceExhausted)
			}
			res := BatchResult{Batch: batch, Contributions: len(contribs), ExpectedNew: expected, Cost: price}
			for _, c := range contribs {
				key, isNew := set.Observe(c.Text, batch)
				if isNew {
					res.NewItems = append(res.NewItems, Item{
						Key: key, Text: scheduler.NormalizeText(c.Text), Count: 1, Batch: batch,
					})
				}
			}
			// Charge order mirrors the scheduler's flush loop: persist
			// the spend first, then the in-memory ledger.
			if cfg.OnCharge != nil && price > 0 {
				cfg.OnCharge(job.Name, price)
			}
			ledger.Charge(job.Name, price)
			mark.Window = batch
			mark.Spent += price
			mark.Seen += int64(len(contribs))
			mark.Matched = int64(set.Distinct())
			mark.Enum = set.Progress()
			if cfg.Marks != nil {
				if err := cfg.Marks.CommitStreamMark(job.Name, mark); err != nil {
					return fmt.Errorf("enum: committing batch %d mark: %w", batch, err)
				}
			}
			// The mark is durable before the batch is reported: a crash
			// after this point replays nothing.
			cur := set.Estimate()
			report(cur.Completeness(), mark.Spent-startSpent)
			if cfg.Counters != nil {
				cfg.Counters.Inc("enum_batches")
				cfg.Counters.Add("enum_contributions", int64(len(contribs)))
				cfg.Counters.Add("enum_items_discovered", int64(len(res.NewItems)))
			}
			if cfg.Publish != nil {
				cfg.Publish(job, &res, set.Items(), mark, cur, false)
			}
		}
	}
}
