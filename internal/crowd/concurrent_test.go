package crowd

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func concurrencyHIT(n int) HIT {
	questions := make([]Question, n)
	for i := range questions {
		questions[i] = Question{
			ID:     fmt.Sprintf("q%d", i),
			Domain: []string{"a", "b"},
			Truth:  "a",
		}
	}
	return HIT{Questions: questions}
}

// TestRunConcurrentDrain hammers one run from several goroutines while
// another cancels it: every assignment must be delivered at most once,
// charged exactly once, and nothing may be charged after cancellation.
func TestRunConcurrentDrain(t *testing.T) {
	cfg := DefaultConfig(41)
	cfg.Workers = 200
	p, err := NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := p.Publish(concurrencyHIT(5), 100)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	seen := make(map[string]int)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				a, ok := run.Next()
				if !ok {
					return
				}
				mu.Lock()
				seen[a.Worker.ID]++
				drained := len(seen)
				mu.Unlock()
				if drained > 40 {
					run.Cancel() // some goroutine cancels partway through
				}
			}
		}()
	}
	wg.Wait()

	delivered := 0
	for id, n := range seen {
		if n > 1 {
			t.Errorf("worker %s's assignment delivered %d times", id, n)
		}
		delivered += n
	}
	if run.Delivered() != delivered {
		t.Errorf("run reports %d delivered, observers saw %d", run.Delivered(), delivered)
	}
	fee := cfg.Economics.PerAssignment()
	if got := run.Charged(); math.Abs(got-float64(delivered)*fee) > 1e-9 {
		t.Errorf("charged %v for %d deliveries at fee %v", got, delivered, fee)
	}
	if got := p.TotalSpent(); math.Abs(got-run.Charged()) > 1e-9 {
		t.Errorf("platform spent %v, run charged %v", got, run.Charged())
	}
	if !run.Cancelled() {
		t.Error("run not cancelled")
	}
	if run.Outstanding() != 0 {
		t.Errorf("cancelled run reports %d outstanding", run.Outstanding())
	}
	// Next after Cancel must not deliver or charge.
	if _, ok := run.Next(); ok {
		t.Error("Next delivered after Cancel")
	}
	if got := p.TotalSpent(); math.Abs(got-float64(delivered)*fee) > 1e-9 {
		t.Errorf("spend moved after cancellation: %v", got)
	}
}

// TestPublishExplicitIDDeterministic: with a caller-supplied HIT ID the
// worker draw is a pure function of (platform seed, hit ID) — the same
// HIT published after different amounts of unrelated traffic gets the
// same workers, submit times and answers. The engine's concurrent
// pipeline depends on this for deterministic results.
func TestPublishExplicitIDDeterministic(t *testing.T) {
	drain := func(noise int) []Assignment {
		cfg := DefaultConfig(42)
		cfg.Workers = 200
		p, err := NewPlatform(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < noise; i++ { // unrelated auto-ID traffic first
			if _, err := p.Publish(concurrencyHIT(2), 5); err != nil {
				t.Fatal(err)
			}
		}
		run, err := p.Publish(HIT{ID: "pipeline/h00001", Questions: concurrencyHIT(5).Questions}, 20)
		if err != nil {
			t.Fatal(err)
		}
		return run.Drain()
	}
	a := drain(0)
	b := drain(3)
	if len(a) != len(b) {
		t.Fatalf("assignment counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Worker.ID != b[i].Worker.ID || a[i].SubmitTime != b[i].SubmitTime {
			t.Fatalf("assignment %d differs: %s@%v vs %s@%v",
				i, a[i].Worker.ID, a[i].SubmitTime, b[i].Worker.ID, b[i].SubmitTime)
		}
		for j := range a[i].Answers {
			if a[i].Answers[j] != b[i].Answers[j] {
				t.Fatalf("assignment %d answer %d differs", i, j)
			}
		}
	}
}
