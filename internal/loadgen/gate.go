// Bench-regression gating: parse `go test -bench` output, compare it —
// and fresh loadgen e2e reports — against committed BENCH_*.json
// baselines with a relative tolerance. cmd/cdas-benchgate is the thin
// CLI over these helpers; CI fails when any violation comes back.
package loadgen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// BenchSchema identifies the benchmark-baseline wire shape.
const BenchSchema = "cdas-bench/v1"

// BenchResult is one benchmark's measurements.
type BenchResult struct {
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds the benchmark's custom units (questions/s,
	// %spend_saved, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// BenchBaseline is the committed baseline file (BENCH_scheduler.json
// and friends).
type BenchBaseline struct {
	Schema      string                 `json:"schema"`
	Description string                 `json:"description,omitempty"`
	PR          int                    `json:"pr,omitempty"`
	GOOS        string                 `json:"goos"`
	GOARCH      string                 `json:"goarch"`
	CPU         string                 `json:"cpu,omitempty"`
	Benchtime   string                 `json:"benchtime,omitempty"`
	Benchmarks  map[string]BenchResult `json:"benchmarks"`
	Notes       string                 `json:"notes,omitempty"`
}

// LoadBenchBaseline reads and validates a baseline file.
func LoadBenchBaseline(path string) (BenchBaseline, error) {
	var b BenchBaseline
	raw, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(raw, &b); err != nil {
		return b, fmt.Errorf("benchgate: parsing %s: %w", path, err)
	}
	if b.Schema != BenchSchema {
		return b, fmt.Errorf("benchgate: %s: unexpected schema %q (want %q)", path, b.Schema, BenchSchema)
	}
	if len(b.Benchmarks) == 0 {
		return b, fmt.Errorf("benchgate: %s: no benchmarks", path)
	}
	return b, nil
}

// NewBenchBaseline builds a baseline from a fresh run — the
// "regenerate the committed baseline" workflow (cdas-benchgate -emit).
// The environment is taken from the bench output's own goos/goarch/cpu
// header lines, falling back to this process's when absent.
func NewBenchBaseline(fresh BenchRun, benchtime, notes string) BenchBaseline {
	b := BenchBaseline{
		Schema:     BenchSchema,
		GOOS:       fresh.GOOS,
		GOARCH:     fresh.GOARCH,
		CPU:        fresh.CPU,
		Benchtime:  benchtime,
		Benchmarks: fresh.Benchmarks,
		Notes:      notes,
	}
	if b.GOOS == "" {
		b.GOOS = runtime.GOOS
	}
	if b.GOARCH == "" {
		b.GOARCH = runtime.GOARCH
	}
	if b.CPU == "" {
		b.CPU = cpuModel()
	}
	return b
}

// EnvMismatch compares the baseline's recorded environment against a
// fresh run's and describes the differences — absolute ns/op and
// throughput comparisons only mean something on comparable hardware,
// so gates surface this as a loud warning next to any violation.
func (b BenchBaseline) EnvMismatch(fresh BenchRun) []string {
	var out []string
	if b.GOOS != "" && fresh.GOOS != "" && b.GOOS != fresh.GOOS {
		out = append(out, fmt.Sprintf("goos differs: baseline %s, fresh %s", b.GOOS, fresh.GOOS))
	}
	if b.GOARCH != "" && fresh.GOARCH != "" && b.GOARCH != fresh.GOARCH {
		out = append(out, fmt.Sprintf("goarch differs: baseline %s, fresh %s", b.GOARCH, fresh.GOARCH))
	}
	if b.CPU != "" && fresh.CPU != "" && b.CPU != fresh.CPU {
		out = append(out, fmt.Sprintf("cpu differs: baseline %q, fresh %q", b.CPU, fresh.CPU))
	}
	return out
}

// WriteJSON writes the baseline to path (pretty-printed, trailing
// newline).
func (b BenchBaseline) WriteJSON(path string) error {
	raw, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("benchgate: encoding baseline: %w", err)
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkName/sub-8   3   1234567 ns/op   42.5 questions/s
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// BenchRun is one parsed `go test -bench` invocation: the results plus
// the environment header lines the tool prints (goos/goarch/cpu).
type BenchRun struct {
	GOOS, GOARCH, CPU string
	Benchmarks        map[string]BenchResult
}

// ParseBenchOutput extracts every benchmark result from `go test
// -bench` output (see ParseBenchRun for the environment too).
func ParseBenchOutput(r io.Reader) (map[string]BenchResult, error) {
	run, err := ParseBenchRun(r)
	return run.Benchmarks, err
}

// ParseBenchRun extracts every benchmark result and the environment
// header from `go test -bench` output. Sub-benchmark names keep their
// slashes; the trailing -GOMAXPROCS suffix is stripped. When a
// benchmark appears more than once (e.g. -count > 1), the best value
// is kept per measurement — lowest for ns/op and the latency-style
// metrics (boot_ms, list_p99_us), highest for everything else — the
// gate compares capability, not noise.
func ParseBenchRun(r io.Reader) (BenchRun, error) {
	run := BenchRun{Benchmarks: make(map[string]BenchResult)}
	out := run.Benchmarks
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if v, ok := strings.CutPrefix(line, "goos: "); ok {
			run.GOOS = strings.TrimSpace(v)
			continue
		}
		if v, ok := strings.CutPrefix(line, "goarch: "); ok {
			run.GOARCH = strings.TrimSpace(v)
			continue
		}
		if v, ok := strings.CutPrefix(line, "cpu: "); ok {
			run.CPU = strings.TrimSpace(v)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name, rest := m[1], m[2]
		fields := strings.Fields(rest)
		res := BenchResult{Metrics: map[string]float64{}}
		seenNs := false
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				res.NsPerOp = v
				seenNs = true
			} else {
				res.Metrics[unit] = v
			}
		}
		if !seenNs {
			continue
		}
		if prev, ok := out[name]; ok {
			if prev.NsPerOp < res.NsPerOp {
				res.NsPerOp = prev.NsPerOp
			}
			for k, v := range prev.Metrics {
				if lowerIsBetter[k] {
					if cur, ok := res.Metrics[k]; !ok || v < cur {
						res.Metrics[k] = v
					}
				} else if v > res.Metrics[k] {
					res.Metrics[k] = v
				}
			}
		}
		out[name] = res
	}
	if err := sc.Err(); err != nil {
		return run, fmt.Errorf("benchgate: reading bench output: %w", err)
	}
	if len(out) == 0 {
		return run, fmt.Errorf("benchgate: no benchmark results found in input")
	}
	return run, nil
}

// ThroughputMetric is the custom bench unit the gate treats as
// higher-is-better alongside ns/op.
const ThroughputMetric = "questions/s"

// lowerIsBetter lists the custom bench units the gate treats like
// ns/op: latency-style measurements that must not grow past tolerance.
// Everything else in Metrics is informational unless named here or in
// ThroughputMetric.
var lowerIsBetter = map[string]bool{
	"boot_ms":       true, // cold-start recovery of a populated job store
	"list_p99_us":   true, // tail latency of one GET /v1/jobs index page
	"window_p99_ms": true, // tail latency of a standing query's window close
}

// CompareBench checks fresh results against the baseline: every
// baseline benchmark must be present, its ns/op must not exceed the
// baseline by more than tol (relative), its questions/s metric (when
// the baseline records one) must not fall below baseline by more than
// tol, and its latency-style metrics (boot_ms, list_p99_us) must not
// exceed baseline by more than tol. It returns human-readable
// violations, empty when the gate passes.
func CompareBench(base BenchBaseline, fresh map[string]BenchResult, tol float64) []string {
	var out []string
	names := make([]string, 0, len(base.Benchmarks))
	for n := range base.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base.Benchmarks[name]
		got, ok := fresh[name]
		if !ok {
			out = append(out, fmt.Sprintf("%s: missing from fresh run (renamed or skipped?)", name))
			continue
		}
		if want.NsPerOp > 0 && got.NsPerOp > want.NsPerOp*(1+tol) {
			out = append(out, fmt.Sprintf("%s: ns/op regressed %.0f -> %.0f (+%.0f%%, tolerance %.0f%%)",
				name, want.NsPerOp, got.NsPerOp, 100*(got.NsPerOp/want.NsPerOp-1), 100*tol))
		}
		if wantQ, ok := want.Metrics[ThroughputMetric]; ok && wantQ > 0 {
			if gotQ := got.Metrics[ThroughputMetric]; gotQ < wantQ*(1-tol) {
				out = append(out, fmt.Sprintf("%s: %s regressed %.0f -> %.0f (-%.0f%%, tolerance %.0f%%)",
					name, ThroughputMetric, wantQ, gotQ, 100*(1-gotQ/wantQ), 100*tol))
			}
		}
		metrics := make([]string, 0, len(want.Metrics))
		for unit := range want.Metrics {
			if lowerIsBetter[unit] {
				metrics = append(metrics, unit)
			}
		}
		sort.Strings(metrics)
		for _, unit := range metrics {
			wantV := want.Metrics[unit]
			if wantV <= 0 {
				continue
			}
			if gotV := got.Metrics[unit]; gotV > wantV*(1+tol) {
				out = append(out, fmt.Sprintf("%s: %s regressed %.2f -> %.2f (+%.0f%%, tolerance %.0f%%)",
					name, unit, wantV, gotV, 100*(gotV/wantV-1), 100*tol))
			}
		}
	}
	return out
}

// LoadReport reads a loadgen report from path.
func LoadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("benchgate: parsing %s: %w", path, err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("benchgate: %s: unexpected schema %q (want %q)", path, r.Schema, ReportSchema)
	}
	return &r, nil
}

// CompareE2E checks a fresh loadgen report against the committed
// baseline: throughput within tolerance, and — when both runs are
// deterministic instances of the same profile/seed on the same
// goarch — the aggregate spend and results hash must match exactly (a
// mismatch means the pipeline's determinism regressed, which no
// tolerance excuses).
func CompareE2E(base, fresh *Report, tol float64) []string {
	var out []string
	if fresh.Partial {
		out = append(out, "fresh run is partial (interrupted or stalled)")
	}
	if fresh.Jobs.Unsettled > 0 {
		out = append(out, fmt.Sprintf("%d job(s) never settled", fresh.Jobs.Unsettled))
	}
	if e := fresh.Enum; e != nil {
		// The open-ended contract, tolerance-free: marginal-value
		// admission must halt the spend before the budgets run out, and
		// discovery must have actually converged (a completeness estimate
		// exists and the crowd found most of each hidden set).
		if e.BudgetTotal > 0 && e.Spent >= e.BudgetTotal {
			out = append(out, fmt.Sprintf("enumeration spend %.3f exhausted the %.3f budget — admission never stopped buying", e.Spent, e.BudgetTotal))
		}
		if e.Jobs > 0 && e.StoppedMarginal+e.StoppedOther < e.Jobs {
			out = append(out, fmt.Sprintf("only %d of %d enumeration job(s) recorded a stop reason", e.StoppedMarginal+e.StoppedOther, e.Jobs))
		}
	}
	if base.QuestionsPerSec > 0 && fresh.QuestionsPerSec < base.QuestionsPerSec*(1-tol) {
		out = append(out, fmt.Sprintf("questions/s regressed %.0f -> %.0f (-%.0f%%, tolerance %.0f%%)",
			base.QuestionsPerSec, fresh.QuestionsPerSec, 100*(1-fresh.QuestionsPerSec/base.QuestionsPerSec), 100*tol))
	}
	comparable := base.Deterministic && fresh.Deterministic &&
		base.Profile.Name == fresh.Profile.Name &&
		base.Profile.Seed == fresh.Profile.Seed &&
		base.GOARCH == fresh.GOARCH
	if !comparable {
		return out
	}
	if base.Jobs != fresh.Jobs {
		out = append(out, fmt.Sprintf("job outcomes diverged: baseline %+v, fresh %+v", base.Jobs, fresh.Jobs))
	}
	if !floatEq(base.SpendLedger, fresh.SpendLedger) || !floatEq(base.SpendJobs, fresh.SpendJobs) {
		out = append(out, fmt.Sprintf("spend diverged on a deterministic profile: baseline ledger=%v jobs=%v, fresh ledger=%v jobs=%v",
			base.SpendLedger, base.SpendJobs, fresh.SpendLedger, fresh.SpendJobs))
	}
	if base.ResultsHash != fresh.ResultsHash {
		out = append(out, fmt.Sprintf("results hash diverged on a deterministic profile: baseline %s, fresh %s",
			base.ResultsHash, fresh.ResultsHash))
	}
	if base.Enum != nil {
		switch {
		case fresh.Enum == nil:
			out = append(out, "baseline carries an enumeration summary but the fresh run has none")
		case !enumSummaryEq(*base.Enum, *fresh.Enum):
			out = append(out, fmt.Sprintf("enumeration summary diverged on a deterministic profile: baseline %+v, fresh %+v",
				*base.Enum, *fresh.Enum))
		}
	}
	out = append(out, compareMatrix(base.Matrix, fresh.Matrix)...)
	return out
}

// compareMatrix pins the accuracy-vs-cost sweep: when both reports
// carry one for the same seed, every baseline cell must reappear with
// identical accuracy and spend — the sweep is seeded and engine-direct,
// so any drift is a real behaviour change in an aggregator. A report
// without a matrix (e.g. a -matrix=false cross-check run) skips the
// comparison.
func compareMatrix(base, fresh *AccuracyMatrix) []string {
	if base == nil || fresh == nil || base.Seed != fresh.Seed {
		return nil
	}
	var out []string
	for _, want := range base.Cells {
		got, ok := fresh.Cell(want.Aggregator, want.MaxWorkers)
		if !ok {
			out = append(out, fmt.Sprintf("matrix cell %s/w%d missing from fresh run", want.Aggregator, want.MaxWorkers))
			continue
		}
		if want.Questions != got.Questions || want.Votes != got.Votes ||
			!floatEq(want.Accuracy, got.Accuracy) || !floatEq(want.Cost, got.Cost) {
			out = append(out, fmt.Sprintf("matrix cell %s/w%d diverged: baseline acc=%v votes=%d cost=%v, fresh acc=%v votes=%d cost=%v",
				want.Aggregator, want.MaxWorkers, want.Accuracy, want.Votes, want.Cost, got.Accuracy, got.Votes, got.Cost))
		}
	}
	return out
}

// enumSummaryEq compares enumeration summaries field by field, floats
// through floatEq (the baseline's JSON round-trip may shave an ulp).
func enumSummaryEq(a, b EnumSummary) bool {
	return a.Jobs == b.Jobs && a.Batches == b.Batches &&
		a.Contributions == b.Contributions && a.Distinct == b.Distinct &&
		a.StoppedMarginal == b.StoppedMarginal && a.StoppedOther == b.StoppedOther &&
		floatEq(a.EstimateTotal, b.EstimateTotal) &&
		floatEq(a.MeanCompleteness, b.MeanCompleteness) &&
		floatEq(a.Spent, b.Spent) && floatEq(a.BudgetTotal, b.BudgetTotal)
}

// floatEq compares spends with a tiny absolute-plus-relative epsilon:
// deterministic runs agree bit for bit, but the JSON round-trip of the
// baseline may shave the last ulp.
func floatEq(a, b float64) bool {
	diff := math.Abs(a - b)
	return diff <= 1e-9 || diff <= 1e-12*math.Max(math.Abs(a), math.Abs(b))
}
