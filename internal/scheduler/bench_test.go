package scheduler

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"cdas/internal/crowd"
	"cdas/internal/engine"
)

// benchScheduler builds a fresh platform + scheduler pair.
func benchScheduler(b *testing.B, seed uint64, dedup bool) *Scheduler {
	b.Helper()
	platform, err := crowd.NewPlatform(crowd.DefaultConfig(seed))
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(Config{
		Platform:     engine.CrowdPlatform{Platform: platform},
		Engine:       engine.Config{HITSize: 20, MaxInflightHITs: 4, Seed: seed},
		Golden:       goldenPool(12),
		DisableDedup: !dedup,
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// benchRun pushes an nJobs-tenant workload through one generation, each
// job enqueued from its own goroutine, and returns the crowd spend.
func benchRun(b *testing.B, s *Scheduler, w map[string][]crowd.Question) float64 {
	b.Helper()
	tickets := make(chan *Ticket, len(w))
	var wg sync.WaitGroup
	for job, qs := range w {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t, err := s.Enqueue(Request{Job: job, Questions: qs})
			if err != nil {
				b.Error(err)
				return
			}
			tickets <- t
		}()
	}
	wg.Wait()
	close(tickets)
	if err := s.Flush(context.Background()); err != nil {
		b.Fatal(err)
	}
	for t := range tickets {
		if _, err := t.Wait(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	return s.Ledger().Spent()
}

// BenchmarkSchedulerDedup measures one full shared generation at 1, 8
// and 64 concurrent jobs across the 30–70% overlap band, and reports
// the crowd-spend saving against the same workload with dedup off (the
// perf trajectory's headline metric; see BENCH_scheduler.json).
func BenchmarkSchedulerDedup(b *testing.B) {
	const perJob = 16
	for _, nJobs := range []int{1, 8, 64} {
		for _, overlap := range []float64{0.3, 0.5, 0.7} {
			b.Run(fmt.Sprintf("jobs=%d/overlap=%.0f%%", nJobs, overlap*100), func(b *testing.B) {
				w := workload(nJobs, perJob, overlap)
				naive := benchRun(b, benchScheduler(b, 1, false), w)
				var spend float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					spend = benchRun(b, benchScheduler(b, 1, true), w)
				}
				b.StopTimer()
				if naive > 0 {
					b.ReportMetric(100*(1-spend/naive), "%spend_saved")
				}
				b.ReportMetric(float64(nJobs*perJob)/b.Elapsed().Seconds()*float64(b.N), "questions/s")
			})
		}
	}
}

// BenchmarkSchedulerContention measures the enqueue path under
// goroutine contention: n jobs hammering Enqueue concurrently while a
// generation flushes their shared 50%-overlap workload.
func BenchmarkSchedulerContention(b *testing.B) {
	const perJob = 16
	for _, nJobs := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("jobs=%d", nJobs), func(b *testing.B) {
			w := workload(nJobs, perJob, 0.5)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchRun(b, benchScheduler(b, 1, true), w)
			}
		})
	}
}
