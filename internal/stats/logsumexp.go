package stats

import "math"

// LogSumExp returns ln(sum_i exp(xs[i])) computed stably by factoring out
// the maximum term. An empty input yields -Inf (the log of zero).
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	maxV := xs[0]
	for _, x := range xs[1:] {
		if x > maxV {
			maxV = x
		}
	}
	if math.IsInf(maxV, -1) {
		return maxV
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Exp(x - maxV)
	}
	return maxV + math.Log(sum)
}

// SoftmaxInto writes softmax(xs) into out (which must have the same
// length) and returns out. The computation is shift-invariant, matching
// Equation 4's normalisation of answer confidences.
func SoftmaxInto(out, xs []float64) []float64 {
	if len(out) != len(xs) {
		panic("stats: SoftmaxInto length mismatch")
	}
	if len(xs) == 0 {
		return out
	}
	lse := LogSumExp(xs)
	for i, x := range xs {
		out[i] = math.Exp(x - lse)
	}
	return out
}

// Softmax returns softmax(xs) in a new slice.
func Softmax(xs []float64) []float64 {
	return SoftmaxInto(make([]float64, len(xs)), xs)
}

// LogOdds returns ln(a / (1 - a)). The accuracy a is clamped to
// [ClampLo, ClampHi] first so the result is always finite; perfect or
// zero accuracies would otherwise produce infinite worker confidences
// and break Equation 4's softmax.
func LogOdds(a float64) float64 {
	a = ClampProb(a)
	return math.Log(a / (1 - a))
}

// Probability clamp bounds for log-odds computations.
const (
	ClampLo = 1e-4
	ClampHi = 1 - 1e-4
)

// ClampProb clamps p into [ClampLo, ClampHi].
func ClampProb(p float64) float64 {
	if math.IsNaN(p) {
		return 0.5
	}
	if p < ClampLo {
		return ClampLo
	}
	if p > ClampHi {
		return ClampHi
	}
	return p
}
