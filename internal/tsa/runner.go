// Job-service runner: adapts a TSA query to the dispatcher's Runner
// contract, so submitted jobs execute through the engine's concurrent
// HIT pipeline with per-job cancellation, live progress reporting and
// dashboard publication.
package tsa

import (
	"context"
	"fmt"
	"hash/fnv"

	"cdas/internal/engine"
	"cdas/internal/exec"
	"cdas/internal/jobs"
	"cdas/internal/metrics"
	"cdas/internal/textgen"
)

// ResultSink receives a running job's live results — the Figure 4
// dashboard feed, which the API server fans out to its SSE
// subscribers. *httpapi.Server satisfies it; the runners only need this
// slice, so tsa stays decoupled from the HTTP layer.
type ResultSink interface {
	// UpdateFromSummary publishes one query-state revision.
	UpdateFromSummary(name string, sum exec.Summary, progress float64, done bool)
	// Follow consumes a pipeline stream, publishing a revision per
	// finished HIT; it blocks until the stream closes.
	Follow(name string, domain []string, texts map[string]string, totalItems int, ch <-chan engine.StreamResult, exclude ...string) ([]engine.BatchResult, error)
}

// RunnerConfig wires NewJobRunner.
type RunnerConfig struct {
	// Platform hosts the published HITs.
	Platform engine.Platform
	// Stream is the tweet stream jobs filter against; Golden the
	// ground-truth pool for accuracy sampling.
	Stream []textgen.Tweet
	Golden []textgen.Tweet
	// Engine is the per-job engine template. JobName, RequiredAccuracy
	// and Seed are overridden per job; everything else is taken as-is.
	Engine engine.Config
	// API, when set, receives live summaries after every finished HIT
	// (the Figure 4 dashboard).
	API ResultSink
	// Counters, when set, receives per-HIT counters.
	Counters *metrics.Registry
}

// NewJobRunner builds a jobs.Runner executing TSA queries: filter the
// stream, fan the matches through Engine.Stream, and report progress
// and cost after every finished HIT. Each job gets its own engine
// seeded from the job name, so worker draws are independent across
// jobs and reproducible across restarts — a job re-run after a crash
// replays the same simulation.
func NewJobRunner(cfg RunnerConfig) jobs.Runner {
	return func(ctx context.Context, job jobs.Job, report func(progress, cost float64)) error {
		ecfg := cfg.Engine
		ecfg.JobName = job.Name
		ecfg.RequiredAccuracy = job.Query.RequiredAccuracy
		if job.Aggregator != "" {
			ecfg.Aggregator = job.Aggregator
		}
		ecfg.Seed ^= nameSeed(job.Name)
		eng, err := engine.New(cfg.Platform, nil, ecfg)
		if err != nil {
			// Bad configuration replays identically: don't retry.
			return fmt.Errorf("%w: %w", jobs.ErrPermanent, err)
		}
		if derr := ValidateDomain(job.Query.Domain); derr != nil {
			// The platform would reject every HIT (truth not in domain);
			// deterministic, so don't burn retries on it.
			return fmt.Errorf("%w: %w", jobs.ErrPermanent, derr)
		}
		m := Match(job.Query, cfg.Stream)
		if len(m.Tweets) == 0 {
			// A keyword filter matching nothing is deterministic too.
			return fmt.Errorf("%w: tsa: no tweets matched query %v", jobs.ErrPermanent, job.Query.Keywords)
		}
		ch, err := eng.Stream(ctx, QuestionsInDomain(m.Tweets, job.Query.Domain), GoldenQuestions(cfg.Golden))
		if err != nil {
			return err
		}

		// Tee the pipeline: report lifecycle progress per finished HIT
		// while the dashboard's Follow consumes the same results.
		var fwd chan engine.StreamResult
		followed := make(chan struct{})
		if cfg.API != nil {
			fwd = make(chan engine.StreamResult, 1)
			go func() {
				defer close(followed)
				cfg.API.Follow(job.Name, job.Query.Domain, m.Texts, len(m.Tweets), fwd, job.Query.Keywords...)
			}()
		} else {
			close(followed)
		}
		total := len(m.Tweets)
		answered := 0
		var cost float64
		var firstErr error
		for sr := range ch {
			if sr.Err != nil {
				if firstErr == nil {
					firstErr = sr.Err
				}
			} else {
				answered += len(sr.Batch.Results)
				cost += sr.Batch.Cost
				cfg.Counters.Inc(metrics.CounterHITsFinished)
				report(float64(answered)/float64(total), cost)
			}
			if fwd != nil {
				fwd <- sr
			}
		}
		if fwd != nil {
			close(fwd)
		}
		<-followed
		return firstErr
	}
}

// nameSeed hashes a job name into a seed component, keeping per-job
// worker draws independent and restart-stable.
func nameSeed(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}
