package httpapi

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cdas/api"
	"cdas/internal/crowd"
	"cdas/internal/engine"
	"cdas/internal/enum"
	"cdas/internal/jobs"
	"cdas/internal/metrics"
	"cdas/internal/scheduler"
	"cdas/internal/textgen"
)

// enumHarness is a full enumeration stack over real HTTP: LSM job
// service, simulated crowd, enum runner publishing into the server, and
// a kind-routed dispatcher so batch jobs coexist.
type enumHarness struct {
	*e2eHarness
	svc  *jobs.Service
	disp *jobs.Dispatcher
}

func newEnumHarness(t *testing.T, batchDelay time.Duration) *enumHarness {
	t.Helper()
	reg := metrics.NewRegistry()
	svc, err := jobs.OpenService(jobs.ServiceConfig{Dir: t.TempDir(), Engine: jobs.EngineLSM, Counters: reg})
	if err != nil {
		t.Fatal(err)
	}
	platform, err := crowd.NewPlatform(crowd.DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	golden := make([]crowd.Question, 12)
	for i := range golden {
		golden[i] = crowd.Question{
			ID:     fmt.Sprintf("golden/g%03d", i),
			Text:   fmt.Sprintf("Calibration tweet #%d", i),
			Domain: append([]string(nil), textgen.Labels...),
			Truth:  textgen.LabelNeutral,
		}
	}
	sched, err := scheduler.New(scheduler.Config{
		Platform: engine.CrowdPlatform{Platform: platform},
		Engine:   engine.Config{HITSize: 20, MaxInflightHITs: 4, Seed: 9},
		Golden:   golden,
		OnCharge: func(job string, amount float64) { _ = svc.ChargeBudget(job, amount) },
		Counters: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sched.Close)
	srv := NewServer()
	enumRunner := enum.NewRunner(enum.RunnerConfig{
		Scheduler: sched,
		Source: func(job jobs.Job) (enum.Source, error) {
			src, err := enum.NewSimSource(job)
			if err != nil || batchDelay <= 0 {
				return src, err
			}
			return pacedSource{Source: src, delay: batchDelay}, nil
		},
		Marks:    svc,
		OnCharge: func(job string, amount float64) { _ = svc.ChargeBudget(job, amount) },
		Counters: reg,
		Publish:  srv.EnumPublisher(),
	})
	runner := func(ctx context.Context, job jobs.Job, report func(progress, cost float64)) error {
		if job.Kind == jobs.KindEnumeration {
			return enumRunner(ctx, job, report)
		}
		report(1, 0)
		return nil
	}
	disp, err := jobs.NewDispatcher(svc, runner, 2)
	if err != nil {
		t.Fatal(err)
	}
	disp.Start()
	srv.SetJobs(disp)
	srv.SetCounters(reg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
		disp.Stop()
	})
	return &enumHarness{
		e2eHarness: &e2eHarness{t: t, ts: ts, client: ts.Client()},
		svc:        svc,
		disp:       disp,
	}
}

type pacedSource struct {
	enum.Source
	delay time.Duration
}

func (s pacedSource) Batch(i int) []enum.Contribution {
	time.Sleep(s.delay)
	return s.Source.Batch(i)
}

// enumSubmission is a kind-discriminated enumeration job: no window, an
// enum spec block instead.
func enumSubmission(name string) api.JobSubmission {
	return api.JobSubmission{
		Name:     name,
		Kind:     api.KindEnumeration,
		Keywords: []string{"seabird"},
		Budget:   100,
		Enum: &api.EnumSpec{
			ItemValue:  0.05,
			Universe:   30,
			SourceSeed: 17,
		},
	}
}

func (h *enumHarness) enumStatus(name string) (api.EnumStatus, int) {
	h.t.Helper()
	resp, body := h.do(http.MethodGet, "/v1/enumerations/"+name, nil)
	if resp.StatusCode != http.StatusOK {
		return api.EnumStatus{}, resp.StatusCode
	}
	var st api.EnumStatus
	if err := json.Unmarshal(body, &st); err != nil {
		h.t.Fatalf("decoding enumeration %s: %v (%s)", name, err, body)
	}
	return st, resp.StatusCode
}

func (h *enumHarness) waitEnum(name, what string, cond func(api.EnumStatus) bool) api.EnumStatus {
	h.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var last api.EnumStatus
	for time.Now().Before(deadline) {
		st, code := h.enumStatus(name)
		if code == http.StatusOK {
			last = st
			if cond(st) {
				return st
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.t.Fatalf("enumeration %q never reached %s (last: %+v)", name, what, last)
	return api.EnumStatus{}
}

// sseEnumFrames reads SSE frames from /v1/enumerations/{name}/events
// until a done event or the timeout.
func (h *enumHarness) sseEnumFrames(name string, lastEventID string) ([]string, []api.EnumEvent) {
	h.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.ts.URL+"/v1/enumerations/"+name+"/events", nil)
	if err != nil {
		h.t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := h.client.Do(req)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		h.t.Fatalf("SSE connect = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		h.t.Fatalf("SSE Content-Type = %q", ct)
	}
	var kinds []string
	var events []api.EnumEvent
	var kind, data string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data != "" {
				var ev api.EnumEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					h.t.Fatalf("bad SSE payload %q: %v", data, err)
				}
				kinds = append(kinds, kind)
				events = append(events, ev)
				if kind == api.EventDone {
					return kinds, events
				}
			}
			kind, data = "", ""
		case strings.HasPrefix(line, "event: "):
			kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	h.t.Fatalf("SSE ended without a done event (kinds %v)", kinds)
	return nil, nil
}

// TestEnumAPIEndToEnd drives the full enumeration surface over real
// HTTP: submit through the unified kind-discriminated POST /v1/jobs,
// watch batches stream over SSE to the terminal done event, inspect the
// result set and estimate, list and filter, and probe every error path
// the route family owns.
func TestEnumAPIEndToEnd(t *testing.T) {
	// Pace the source so the SSE watcher, which connects after the
	// submit returns, observes live batch events rather than racing a
	// runner that finishes instantly.
	h := newEnumHarness(t, 25*time.Millisecond)

	resp, body := h.do(http.MethodPost, "/v1/jobs", enumSubmission("audubon"))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/jobs = %d (%s)", resp.StatusCode, body)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/audubon" {
		t.Errorf("Location = %q", loc)
	}
	var created api.JobStatus
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatalf("decoding created job: %v (%s)", err, body)
	}
	if created.Kind != api.KindEnumeration {
		t.Errorf("created kind = %q, want enumeration", created.Kind)
	}

	// The SSE watcher observes committed batches (new items attached)
	// and the terminal done event.
	kinds, events := h.sseEnumFrames("audubon", "")
	if kinds[len(kinds)-1] != api.EventDone {
		t.Fatalf("last SSE kind = %q, want done (kinds %v)", kinds[len(kinds)-1], kinds)
	}
	sawNewItems := false
	for i, k := range kinds {
		if k == api.EventBatch {
			if events[i].Batch == nil {
				t.Fatalf("batch event %d carried no batch", i)
			}
			if len(events[i].Batch.NewItems) > 0 {
				sawNewItems = true
			}
		}
	}
	final := events[len(events)-1].State
	if !final.Done || final.Batches == 0 || final.Distinct == 0 {
		t.Errorf("terminal SSE state = %+v", final)
	}
	if !sawNewItems && final.Batches > 1 {
		t.Error("no batch event carried newly discovered items")
	}

	// The REST view: stopped on the marginal-value rule with spend far
	// below the budget and a converged estimate.
	st := h.waitEnum("audubon", "done", func(st api.EnumStatus) bool { return st.Done })
	if st.State != api.JobDone || st.Stopped != enum.StopMarginalValue {
		t.Errorf("final status = %+v, want done/marginal_value", st)
	}
	if st.Spent <= 0 || st.Spent >= 50 {
		t.Errorf("spend %v should be positive and far below the 100 budget", st.Spent)
	}
	if st.Estimate == nil || st.Estimate.Completeness < 0.5 {
		t.Errorf("estimate not converged: %+v", st.Estimate)
	}
	if len(st.Items) != st.Distinct || st.Distinct < 30/2 {
		t.Errorf("items = %d distinct = %d, want a sizable fraction of the 30-item universe", len(st.Items), st.Distinct)
	}
	if st.LastBatch == nil {
		t.Errorf("final status carries no last batch: %+v", st)
	}

	// A finished enumeration replays straight to done on a fresh watcher.
	kinds, _ = h.sseEnumFrames("audubon", "")
	if len(kinds) != 1 || kinds[0] != api.EventDone {
		t.Errorf("post-done SSE kinds = %v, want [done]", kinds)
	}

	// Listing: enumerations only — batch jobs are excluded; the job list
	// filters by kind in both directions.
	if resp, _ := h.do(http.MethodPost, "/v1/jobs", submission("batchjob")); resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/jobs (batch) = %d", resp.StatusCode)
	}
	resp, body = h.do(http.MethodGet, "/v1/enumerations", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/enumerations = %d", resp.StatusCode)
	}
	var list api.EnumList
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Enumerations) != 1 || list.Enumerations[0].Name != "audubon" {
		t.Errorf("enumeration list = %+v, want just audubon", list.Enumerations)
	}
	var jl api.JobList
	if resp, body := h.do(http.MethodGet, "/v1/jobs?kind=enumeration", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("GET /v1/jobs?kind=enumeration = %d", resp.StatusCode)
	} else if json.Unmarshal(body, &jl); len(jl.Jobs) != 1 || jl.Jobs[0].Name != "audubon" {
		t.Errorf("kind=enumeration jobs = %+v, want just audubon", jl.Jobs)
	}
	if resp, body := h.do(http.MethodGet, "/v1/jobs?kind=batch", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("GET /v1/jobs?kind=batch = %d", resp.StatusCode)
	} else if json.Unmarshal(body, &jl); len(jl.Jobs) != 1 || jl.Jobs[0].Name != "batchjob" {
		t.Errorf("kind=batch jobs = %+v, want just batchjob", jl.Jobs)
	}
	// A batch job is not an enumeration on the singular routes.
	if _, code := h.enumStatus("batchjob"); code != http.StatusNotFound {
		t.Errorf("GET batch job as enumeration = %d, want 404", code)
	}

	// Error surface.
	if resp, _ := h.do(http.MethodPost, "/v1/jobs", enumSubmission("audubon")); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate enumeration = %d, want 409", resp.StatusCode)
	}
	for field, mutate := range map[string]func(*api.JobSubmission){
		"missing spec":       func(s *api.JobSubmission) { s.Enum = nil },
		"spec on batch kind": func(s *api.JobSubmission) { s.Kind = api.KindBatch; s.Window = "24h" },
		"zero item value":    func(s *api.JobSubmission) { s.Enum.ItemValue = 0 },
		"coverage >= 1":      func(s *api.JobSubmission) { s.Enum.TargetCoverage = 1 },
		"bad window":         func(s *api.JobSubmission) { s.Window = "not a duration" },
	} {
		sub := enumSubmission("bad")
		spec := *sub.Enum
		sub.Enum = &spec
		mutate(&sub)
		if resp, body := h.do(http.MethodPost, "/v1/jobs", sub); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s = %d (%s), want 400", field, resp.StatusCode, body)
		}
	}
	if resp, _ := h.do(http.MethodGet, "/v1/jobs?kind=mystery", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad kind filter = %d, want 400", resp.StatusCode)
	}
	if _, code := h.enumStatus("ghost"); code != http.StatusNotFound {
		t.Errorf("GET unknown enumeration = %d, want 404", code)
	}
	if resp, _ := h.do(http.MethodGet, "/v1/enumerations/ghost/events", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("SSE unknown enumeration = %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodGet, h.ts.URL+"/v1/enumerations/audubon/events", nil)
	req.Header.Set("Last-Event-ID", "junk")
	if resp, err := h.client.Do(req); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad Last-Event-ID = %v %d, want 400", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// TestEnumAPICancelMidRun cancels an enumeration while batches are
// still being bought: DELETE /v1/jobs answers with the cancelled
// record, and an SSE watcher that never saw a published done event gets
// one synthesized from the terminal job state instead of hanging.
func TestEnumAPICancelMidRun(t *testing.T) {
	h := newEnumHarness(t, 15*time.Millisecond)

	sub := enumSubmission("slow")
	sub.Enum.ItemValue = 10
	sub.Enum.Universe = 500
	if resp, body := h.do(http.MethodPost, "/v1/jobs", sub); resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/jobs = %d (%s)", resp.StatusCode, body)
	}

	watcher := make(chan []string, 1)
	go func() {
		kinds, _ := h.sseEnumFrames("slow", "")
		watcher <- kinds
	}()

	h.waitEnum("slow", "running", func(st api.EnumStatus) bool {
		return st.State == api.JobRunning
	})
	resp, body := h.do(http.MethodDelete, "/v1/jobs/slow", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE mid-run = %d (%s)", resp.StatusCode, body)
	}
	st := h.waitEnum("slow", "cancelled", func(st api.EnumStatus) bool {
		return st.State == api.JobCancelled
	})
	if !st.Done {
		t.Errorf("cancelled enumeration not done: %+v", st)
	}
	select {
	case kinds := <-watcher:
		if kinds[len(kinds)-1] != api.EventDone {
			t.Errorf("watcher kinds = %v, want terminal done", kinds)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("SSE watcher hung after cancel")
	}
}

// TestEnumStatusRecoveredFromMark pins the restart contract for
// enumeration reads: a Server that has never seen a publish (a fresh
// process) answers GET /v1/enumerations/{name} from the durable stream
// mark — result set, estimate and stop reason rebuilt — not with zeroed
// counters.
func TestEnumStatusRecoveredFromMark(t *testing.T) {
	h := newEnumHarness(t, 0)
	if resp, body := h.do(http.MethodPost, "/v1/jobs", enumSubmission("audubon")); resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/jobs = %d (%s)", resp.StatusCode, body)
	}
	done := h.waitEnum("audubon", "done", func(st api.EnumStatus) bool { return st.Done })

	// A second Server over the same controller emulates the restarted
	// process: its in-memory publish map is empty.
	fresh := NewServer()
	fresh.SetJobs(h.disp)
	ts := httptest.NewServer(fresh.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/enumerations/audubon")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st api.EnumStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.State != api.JobDone {
		t.Fatalf("recovered enumeration = %+v", st)
	}
	if st.Batches != done.Batches || st.Distinct != done.Distinct ||
		st.Contributions != done.Contributions || st.Spent != done.Spent ||
		st.Stopped != done.Stopped {
		t.Errorf("recovered counters = %+v, want those of %+v", st, done)
	}
	if st.Estimate == nil || done.Estimate == nil || *st.Estimate != *done.Estimate {
		t.Errorf("recovered estimate = %+v, want %+v", st.Estimate, done.Estimate)
	}
	if len(st.Items) != len(done.Items) {
		t.Fatalf("recovered %d items, want %d", len(st.Items), len(done.Items))
	}
	for i := range st.Items {
		if st.Items[i] != done.Items[i] {
			t.Errorf("recovered item %d = %+v, want %+v", i, st.Items[i], done.Items[i])
		}
	}
}

// TestStreamRoutesDeprecated pins the alias contract of the /v1/streams
// group: historical bodies, plus a Deprecation header and a
// successor-version Link pointing into the unified job surface.
func TestStreamRoutesDeprecated(t *testing.T) {
	h := newStreamHarness(t, 0)
	resp, body := h.do(http.MethodPost, "/v1/streams", streamSubmission("thor"))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/streams = %d (%s)", resp.StatusCode, body)
	}
	if dep := resp.Header.Get("Deprecation"); dep != "true" {
		t.Errorf("POST Deprecation = %q, want \"true\"", dep)
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "/v1/jobs") ||
		!strings.Contains(link, "successor-version") {
		t.Errorf("POST Link = %q, want successor-version pointing at /v1/jobs", link)
	}
	h.waitStream("thor", "done", func(st api.StreamStatus) bool { return st.Done })
	for path, successor := range map[string]string{
		"/v1/streams":             "/v1/jobs?kind=continuous",
		"/v1/streams/thor":        "/v1/jobs/{name}",
		"/v1/streams/thor/events": "/v1/queries/{name}/events",
	} {
		resp, _ := h.do(http.MethodGet, path, nil)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
			continue
		}
		if dep := resp.Header.Get("Deprecation"); dep != "true" {
			t.Errorf("GET %s Deprecation = %q, want \"true\"", path, dep)
		}
		link := resp.Header.Get("Link")
		if !strings.Contains(link, successor) || !strings.Contains(link, "successor-version") {
			t.Errorf("GET %s Link = %q, want successor-version pointing at %s", path, link, successor)
		}
	}
}
