// The loadgen report: the machine-readable BENCH_e2e.json schema and
// its human-readable table.
package loadgen

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"cdas/api"
	"cdas/internal/stats"
)

// ReportSchema identifies the report's wire shape.
const ReportSchema = "cdas-loadgen/v1"

// LatencySummary summarises one latency population in milliseconds.
type LatencySummary struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50_ms"`
	P95   float64 `json:"p95_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

// summarize builds a LatencySummary from millisecond samples.
func summarize(ms []float64) LatencySummary {
	if len(ms) == 0 {
		return LatencySummary{}
	}
	max := ms[0]
	for _, v := range ms {
		if v > max {
			max = v
		}
	}
	return LatencySummary{
		Count: len(ms),
		P50:   stats.Quantile(ms, 0.50),
		P95:   stats.Quantile(ms, 0.95),
		P99:   stats.Quantile(ms, 0.99),
		Max:   max,
	}
}

// JobsSummary counts the workload's jobs by final state.
type JobsSummary struct {
	Total     int `json:"total"`
	Done      int `json:"done"`
	Parked    int `json:"parked"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	Unsettled int `json:"unsettled"`
}

// SchedStats is the scheduler-side accounting of the run (deltas when
// driving a remote server that had prior traffic).
type SchedStats struct {
	Generations int   `json:"generations"`
	Enqueued    int64 `json:"questions_enqueued"`
	Published   int64 `json:"questions_published"`
	Deduped     int64 `json:"questions_deduped"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	Batches     int64 `json:"batches_published"`
}

// EnumSummary aggregates an enumeration run's semantic outcome: how
// complete the discovered sets are against their hidden universes, what
// the crowd spend came to, and which stopping rule ended each job. All
// fields are deterministic on a closed-loop run, so the gate compares
// the whole struct exactly.
type EnumSummary struct {
	// Jobs is how many enumeration records the final sweep found.
	Jobs int `json:"jobs"`
	// Batches/Contributions/Distinct sum the per-job HIT batches, crowd
	// contributions and deduped set sizes.
	Batches       int   `json:"batches"`
	Contributions int64 `json:"contributions"`
	Distinct      int   `json:"distinct"`
	// EstimateTotal sums the per-job Chao92 total-size estimates;
	// MeanCompleteness averages their completeness (distinct/estimate).
	EstimateTotal    float64 `json:"estimate_total"`
	MeanCompleteness float64 `json:"mean_completeness"`
	// Spent sums the per-job crowd spend; BudgetTotal the per-job budget
	// caps (0 when unlimited). The marginal-value contract is
	// Spent < BudgetTotal — admission stopped before the money ran out.
	Spent       float64 `json:"spent"`
	BudgetTotal float64 `json:"budget_total"`
	// StoppedMarginal counts jobs the marginal-value rule ended;
	// StoppedOther every other recorded stop reason.
	StoppedMarginal int `json:"stopped_marginal"`
	StoppedOther    int `json:"stopped_other,omitempty"`
}

// summarizeEnums folds the final enumeration records into the summary.
// tenantBudget is the profile's per-job cap (0 = unlimited).
func summarizeEnums(sts []api.EnumStatus, tenantBudget float64) *EnumSummary {
	s := &EnumSummary{Jobs: len(sts), BudgetTotal: tenantBudget * float64(len(sts))}
	var completeness float64
	for _, st := range sts {
		s.Batches += st.Batches
		s.Contributions += st.Contributions
		s.Distinct += st.Distinct
		s.Spent += st.Spent
		if est := st.Estimate; est != nil {
			s.EstimateTotal += est.Total
			completeness += est.Completeness
		}
		switch st.Stopped {
		case api.StopMarginalValue:
			s.StoppedMarginal++
		case "":
		default:
			s.StoppedOther++
		}
	}
	if len(sts) > 0 {
		s.MeanCompleteness = completeness / float64(len(sts))
	}
	return s
}

// Report is one loadgen run's result.
type Report struct {
	Schema  string  `json:"schema"`
	Profile Profile `json:"profile"`
	// Addr is the remote target, empty for in-process runs.
	Addr   string `json:"addr,omitempty"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPU    string `json:"cpu,omitempty"`
	CPUs   int    `json:"cpus"`
	// EffectiveDispatchers is the dispatcher pool the run actually used
	// (closed-loop mode widens the pool to the tenant count so a whole
	// wave shares one generation).
	EffectiveDispatchers int `json:"effective_dispatchers"`
	// Deterministic marks a closed-loop in-process run whose spend,
	// per-job costs and ResultsHash are reproducible bit for bit.
	Deterministic bool `json:"deterministic"`
	// Partial marks a run cut short by cancellation or timeout; counts
	// and spend cover only what completed.
	Partial bool `json:"partial,omitempty"`

	WallSeconds        float64 `json:"wall_seconds"`
	QuestionsSubmitted int     `json:"questions_submitted"`
	QuestionsPerSec    float64 `json:"questions_per_second"`

	Jobs      JobsSummary    `json:"jobs"`
	Submit    LatencySummary `json:"submit_latency"`
	E2E       LatencySummary `json:"e2e_latency"`
	Watchers  int            `json:"watchers"`
	SSEEvents int64          `json:"sse_events"`

	// SpendLedger is the scheduler budget ledger's spend delta;
	// SpendJobs sums the per-job costs the API reports. They agree on a
	// settled run (the ledger charges exactly what tickets attribute).
	SpendLedger      float64 `json:"spend_ledger"`
	SpendJobs        float64 `json:"spend_jobs"`
	SpendPerQuestion float64 `json:"spend_per_question"`

	Sched SchedStats `json:"scheduler"`
	// DedupSavedPct is the fraction of enqueued questions answered
	// without a fresh crowd purchase (cache hits + rides on shared
	// slots), in percent.
	DedupSavedPct float64 `json:"dedup_saved_pct"`

	// ResultsHash fingerprints the run's semantic outcome: every job's
	// final state, cost, item count and result percentages, folded in
	// name order. Two deterministic runs of one profile must agree.
	ResultsHash string `json:"results_hash"`

	// Enum, when present, summarises an enumeration run: set
	// completeness against the hidden universes, spend vs budget, and
	// the stopping-rule tally. Deterministic, so the gate pins it.
	Enum *EnumSummary `json:"enum,omitempty"`

	// Matrix, when present, is the accuracy-vs-cost sweep over
	// (aggregator × assignment overlap) — see RunMatrix. Deterministic
	// for a fixed seed, so the gate pins it exactly.
	Matrix *AccuracyMatrix `json:"matrix,omitempty"`

	Errors []string `json:"errors,omitempty"`
}

// newReport seeds the environment fields.
func newReport(p Profile, addr string, effDispatchers int, inproc bool) *Report {
	return &Report{
		Schema:               ReportSchema,
		Profile:              p,
		Addr:                 addr,
		GOOS:                 runtime.GOOS,
		GOARCH:               runtime.GOARCH,
		CPU:                  cpuModel(),
		CPUs:                 runtime.NumCPU(),
		EffectiveDispatchers: effDispatchers,
		Deterministic:        p.Deterministic() && inproc,
	}
}

// cpuModel best-effort reads the CPU model name (linux); empty
// elsewhere.
func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(b), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}

// hashResults folds the final job records into the determinism
// fingerprint. Records are visited in name order and floats rendered at
// full precision, so any bit of divergence shows.
func hashResults(sts []api.JobStatus) string {
	sorted := append([]api.JobStatus(nil), sts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	h := fnv.New64a()
	write := func(parts ...string) {
		for _, p := range parts {
			h.Write([]byte(p))
			h.Write([]byte{0})
		}
	}
	for _, st := range sorted {
		write(st.Name, string(st.State), strconv.FormatFloat(st.Cost, 'g', -1, 64))
		if st.Results != nil {
			write(strconv.Itoa(st.Results.Items))
			labels := make([]string, 0, len(st.Results.Percentages))
			for l := range st.Results.Percentages {
				labels = append(labels, l)
			}
			sort.Strings(labels)
			for _, l := range labels {
				write(l, strconv.FormatFloat(st.Results.Percentages[l], 'g', -1, 64))
			}
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// hashStreamResults folds the final standing-query records into the
// determinism fingerprint: per-stream window counts, arrival
// accounting (seen/matched/dropped/degraded), spend and the running
// fold's percentages, visited in name order at full float precision.
func hashStreamResults(sts []api.StreamStatus) string {
	sorted := append([]api.StreamStatus(nil), sts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	h := fnv.New64a()
	write := func(parts ...string) {
		for _, p := range parts {
			h.Write([]byte(p))
			h.Write([]byte{0})
		}
	}
	for _, st := range sorted {
		write(st.Name, string(st.State),
			strconv.Itoa(st.WindowsClosed),
			strconv.FormatInt(st.Seen, 10),
			strconv.FormatInt(st.Matched, 10),
			strconv.FormatInt(st.Dropped, 10),
			strconv.FormatInt(st.Degraded, 10),
			strconv.FormatFloat(st.Spent, 'g', -1, 64))
		if st.Results != nil {
			write(strconv.Itoa(st.Results.Items))
			labels := make([]string, 0, len(st.Results.Percentages))
			for l := range st.Results.Percentages {
				labels = append(labels, l)
			}
			sort.Strings(labels)
			for _, l := range labels {
				write(l, strconv.FormatFloat(st.Results.Percentages[l], 'g', -1, 64))
			}
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// hashEnumResults folds the final enumeration records into the
// determinism fingerprint: per-job lifecycle outcome, batch and
// contribution counts, spend, stop reason, the Chao92 estimate and
// every discovered member (key, canonical text, count), visited in
// name order at full float precision.
func hashEnumResults(sts []api.EnumStatus) string {
	sorted := append([]api.EnumStatus(nil), sts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	h := fnv.New64a()
	write := func(parts ...string) {
		for _, p := range parts {
			h.Write([]byte(p))
			h.Write([]byte{0})
		}
	}
	for _, st := range sorted {
		write(st.Name, string(st.State),
			strconv.Itoa(st.Batches),
			strconv.FormatInt(st.Contributions, 10),
			strconv.Itoa(st.Distinct),
			strconv.FormatFloat(st.Spent, 'g', -1, 64),
			st.Stopped)
		if est := st.Estimate; est != nil {
			write(strconv.FormatFloat(est.Total, 'g', -1, 64),
				strconv.FormatFloat(est.Completeness, 'g', -1, 64))
		}
		for _, it := range st.Items {
			write(it.Key, it.Text, strconv.Itoa(it.Count), strconv.Itoa(it.Batch))
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// WriteJSON writes the report to path (pretty-printed, trailing
// newline).
func (r *Report) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("loadgen: encoding report: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Table renders the human-readable summary.
func (r *Report) Table() string {
	var b strings.Builder
	mode := "timed"
	if r.Deterministic {
		mode = "closed-loop (deterministic)"
	}
	status := ""
	if r.Partial {
		status = "  [PARTIAL]"
	}
	fmt.Fprintf(&b, "profile %s seed=%d%s\n", r.Profile.Name, r.Profile.Seed, status)
	fmt.Fprintf(&b, "  %d tenants x %d questions x %d rounds, overlap %.0f%%, %d domain group(s), mode %s\n",
		r.Profile.Tenants, r.Profile.QuestionsPerTenant, r.Profile.Rounds, 100*r.Profile.Overlap, r.Profile.Domains, mode)
	fmt.Fprintf(&b, "  dispatchers %d (effective %d), inflight %d, HIT size %d, dedup %v\n",
		r.Profile.Dispatchers, r.EffectiveDispatchers, r.Profile.Inflight, r.Profile.HITSize, !r.Profile.DisableDedup)
	fmt.Fprintf(&b, "\n")
	fmt.Fprintf(&b, "  wall            %8.2f s\n", r.WallSeconds)
	fmt.Fprintf(&b, "  questions       %8d submitted   %10.0f questions/s\n", r.QuestionsSubmitted, r.QuestionsPerSec)
	fmt.Fprintf(&b, "  jobs            %8d total: %d done, %d parked, %d failed, %d cancelled, %d unsettled\n",
		r.Jobs.Total, r.Jobs.Done, r.Jobs.Parked, r.Jobs.Failed, r.Jobs.Cancelled, r.Jobs.Unsettled)
	fmt.Fprintf(&b, "  submit latency  p50 %7.2f ms   p95 %7.2f ms   p99 %7.2f ms   max %7.2f ms\n",
		r.Submit.P50, r.Submit.P95, r.Submit.P99, r.Submit.Max)
	fmt.Fprintf(&b, "  e2e latency     p50 %7.2f ms   p95 %7.2f ms   p99 %7.2f ms   max %7.2f ms\n",
		r.E2E.P50, r.E2E.P95, r.E2E.P99, r.E2E.Max)
	fmt.Fprintf(&b, "  SSE             %8d watchers    %8d events\n", r.Watchers, r.SSEEvents)
	fmt.Fprintf(&b, "  spend           %8.2f (ledger)   %8.2f (jobs)   %.4f per question\n",
		r.SpendLedger, r.SpendJobs, r.SpendPerQuestion)
	fmt.Fprintf(&b, "  dedup           %5.1f%% of enqueued questions answered without a purchase\n", r.DedupSavedPct)
	fmt.Fprintf(&b, "    scheduler: %d generation(s), %d enqueued, %d published, %d deduped, %d cache hits, %d batches\n",
		r.Sched.Generations, r.Sched.Enqueued, r.Sched.Published, r.Sched.Deduped, r.Sched.CacheHits, r.Sched.Batches)
	if e := r.Enum; e != nil {
		fmt.Fprintf(&b, "  enumeration     %d job(s): %d batches, %d contributions, %d distinct members\n",
			e.Jobs, e.Batches, e.Contributions, e.Distinct)
		fmt.Fprintf(&b, "    estimate %.1f total, %.0f%% mean completeness; spent %.3f of %.3f budget; %d marginal-value stop(s), %d other\n",
			e.EstimateTotal, 100*e.MeanCompleteness, e.Spent, e.BudgetTotal, e.StoppedMarginal, e.StoppedOther)
	}
	fmt.Fprintf(&b, "  results hash    %s\n", r.ResultsHash)
	if r.Matrix != nil {
		fmt.Fprintf(&b, "\n  accuracy vs cost (seed %d, %d questions per cell):\n", r.Matrix.Seed, r.Matrix.Questions)
		fmt.Fprintf(&b, "    %-12s %8s %9s %6s %9s %8s\n", "aggregator", "overlap", "accuracy", "votes", "cost", "cost/q")
		for _, c := range r.Matrix.Cells {
			fmt.Fprintf(&b, "    %-12s %8d %8.1f%% %6d %9.3f %8.4f\n",
				c.Aggregator, c.MaxWorkers, 100*c.Accuracy, c.Votes, c.Cost, c.CostPerQuestion)
		}
	}
	if len(r.Errors) > 0 {
		fmt.Fprintf(&b, "  errors (%d):\n", len(r.Errors))
		for _, e := range r.Errors {
			fmt.Fprintf(&b, "    - %s\n", e)
		}
	}
	return b.String()
}
