// Customplatform: how to plug CDAS into your own crowd marketplace by
// implementing the two-method Platform interface. The fake platform here
// answers from a scripted roster — a production implementation would call
// a real crowdsourcing service instead — and the demo also shows the
// amtapi REST alternative for out-of-process marketplaces.
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"cdas"
)

// scriptedPlatform implements cdas.Platform with a fixed worker roster.
type scriptedPlatform struct {
	roster []scriptedWorker
	fee    float64
}

type scriptedWorker struct {
	id string
	// answers maps question ID to this worker's scripted answer.
	answers map[string]string
}

// scriptedRun implements cdas.Run.
type scriptedRun struct {
	p         *scriptedPlatform
	hit       cdas.HIT
	next      int
	limit     int
	cancelled bool
	charged   float64
}

func (p *scriptedPlatform) Publish(hit cdas.HIT, n int) (cdas.Run, error) {
	if n > len(p.roster) {
		return nil, fmt.Errorf("scripted platform has only %d workers", len(p.roster))
	}
	hit.ID = "scripted-1"
	return &scriptedRun{p: p, hit: hit, limit: n}, nil
}

func (r *scriptedRun) HIT() cdas.HIT { return r.hit }

func (r *scriptedRun) Next() (cdas.Assignment, bool) {
	if r.cancelled || r.next >= r.limit {
		return cdas.Assignment{}, false
	}
	w := r.p.roster[r.next]
	r.next++
	r.charged += r.p.fee
	answers := make([]struct {
		QuestionID string
		Value      string
	}, 0) // placeholder to show shape; real code fills cdas.Assignment directly
	_ = answers
	a := cdas.Assignment{
		HITID:      r.hit.ID,
		Worker:     &cdas.Worker{ID: w.id},
		SubmitTime: float64(r.next),
	}
	for _, q := range r.hit.Questions {
		value, ok := w.answers[q.ID]
		if !ok {
			value = q.Domain[0]
		}
		a.Answers = append(a.Answers, struct {
			QuestionID string
			Value      string
		}{q.ID, value})
	}
	return a, true
}

func (r *scriptedRun) Cancel()          { r.cancelled = true }
func (r *scriptedRun) Charged() float64 { return r.charged }

func main() {
	roster := []scriptedWorker{
		{id: "alice", answers: map[string]string{"q1": "cat", "g1": "yes"}},
		{id: "bob", answers: map[string]string{"q1": "cat", "g1": "yes"}},
		{id: "carol", answers: map[string]string{"q1": "dog", "g1": "no"}},
	}
	platform := &scriptedPlatform{roster: roster, fee: 0.012}

	eng, err := cdas.NewEngine(platform, nil, cdas.EngineConfig{
		JobName:          "custom",
		RequiredAccuracy: 0.75,
		SamplingRate:     0.2,
		HITSize:          10,
		MaxWorkers:       3,
	})
	if err != nil {
		log.Fatal(err)
	}
	batch, err := eng.ProcessBatch(
		[]cdas.CrowdQuestion{{ID: "q1", Text: "cat or dog?", Domain: []string{"cat", "dog"}, Truth: "cat"}},
		[]cdas.CrowdQuestion{{ID: "g1", Text: "golden", Domain: []string{"yes", "no"}, Truth: "yes"}},
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range batch.Results {
		fmt.Printf("scripted platform: %s -> %s (confidence %.3f)\n",
			r.Question.ID, r.Answer, r.Confidence)
	}

	// Alternative: run the marketplace out of process behind the amtapi
	// REST protocol (here: the simulator behind an httptest server).
	_, sim, err := cdas.NewSimulatedPlatform(cdas.DefaultSimulatorConfig(9))
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(cdas.NewRemoteServer(sim).Handler())
	defer srv.Close()
	remote := cdas.NewRemotePlatform(srv.URL, srv.Client())
	remoteEng, err := cdas.NewEngine(remote, nil, cdas.EngineConfig{
		JobName:          "remote",
		RequiredAccuracy: 0.9,
		HITSize:          10,
	})
	if err != nil {
		log.Fatal(err)
	}
	batch, err = remoteEng.ProcessBatch(
		[]cdas.CrowdQuestion{{ID: "r1", Text: "2+2?", Domain: []string{"4", "5"}, Truth: "4"}},
		[]cdas.CrowdQuestion{
			{ID: "rg1", Domain: []string{"yes", "no"}, Truth: "yes"},
			{ID: "rg2", Domain: []string{"yes", "no"}, Truth: "no"},
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range batch.Results {
		fmt.Printf("remote platform:   %s -> %s (confidence %.3f, %d votes, $%.3f)\n",
			r.Question.ID, r.Answer, r.Confidence, r.Votes, batch.Cost)
	}
}
