// Example multitenant demonstrates the cross-query crowd scheduler:
// four tenants run sentiment queries whose keyword filters overlap, so
// half of every tenant's questions are also some other tenant's
// questions. The scheduler coalesces them into shared HIT batches —
// each distinct question is purchased once and its verified answer is
// fanned out to every subscriber — then a tenant re-runs its query and
// is answered entirely from the verified-answer cache, for free.
// Finally a tenant with a near-zero budget is parked, not failed.
//
// Output is bit-equal across runs for a fixed -seed, and across
// -dispatchers settings: batch composition is derived from the sorted
// canonical question set, never from goroutine arrival order.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"cdas/internal/crowd"
	"cdas/internal/engine"
	"cdas/internal/exec"
	"cdas/internal/jobs"
	"cdas/internal/scheduler"
	"cdas/internal/textgen"
	"cdas/internal/tsa"
)

func main() {
	var (
		seed        = flag.Uint64("seed", 7, "simulation seed")
		dispatchers = flag.Int("dispatchers", 4, "concurrent tenant submitters")
		budget      = flag.Float64("budget", 0, "global crowd budget (0: unlimited)")
	)
	flag.Parse()
	if err := run(*seed, *dispatchers, *budget); err != nil {
		log.Fatal(err)
	}
}

// tenant is one customer's analytics query: a keyword filter spanning
// two movies, so neighbouring tenants share half their questions.
type tenant struct {
	name     string
	keywords []string
}

func run(seed uint64, dispatchers int, budget float64) error {
	platform, err := crowd.NewPlatform(crowd.DefaultConfig(seed))
	if err != nil {
		return err
	}
	movies := []string{"Aurora Heights", "Beacon Street", "Cedar Falls", "Dust Devils"}
	stream, err := textgen.Generate(textgen.Config{Seed: seed + 1, Movies: movies, TweetsPerMovie: 30})
	if err != nil {
		return err
	}
	golden, err := textgen.Generate(textgen.Config{Seed: seed + 2, Movies: []string{"The Calibration Reel"}, TweetsPerMovie: 30})
	if err != nil {
		return err
	}
	sched, err := scheduler.New(scheduler.Config{
		Platform:     engine.CrowdPlatform{Platform: platform},
		Engine:       engine.Config{HITSize: 25, MaxInflightHITs: 4, Seed: seed},
		Golden:       tsa.GoldenQuestions(golden),
		GlobalBudget: budget,
	})
	if err != nil {
		return err
	}
	defer sched.Close()

	// Every tenant queries two movies; every movie is watched by two
	// tenants — 50% question overlap all around the ring.
	tenants := make([]tenant, len(movies))
	for i := range movies {
		tenants[i] = tenant{
			name:     fmt.Sprintf("tenant-%d", i),
			keywords: []string{movies[i], movies[(i+1)%len(movies)]},
		}
	}

	start := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
	query := func(t tenant) jobs.Query {
		return jobs.Query{
			Keywords:         t.keywords,
			RequiredAccuracy: 0.9,
			Domain:           append([]string(nil), textgen.Labels...),
			Start:            start,
			Window:           24 * time.Hour,
		}
	}

	// Phase 1: all tenants enqueue concurrently (-dispatchers goroutines),
	// then one flush cuts the generation.
	// The submitter count is deliberately left out of the output: runs
	// must be bit-equal across -dispatchers settings.
	fmt.Printf("=== generation 1: %d tenants enqueue concurrently ===\n", len(tenants))
	tickets := make([]*scheduler.Ticket, len(tenants))
	matches := make([]tsa.Matched, len(tenants))
	sem := make(chan struct{}, max(dispatchers, 1))
	var wg sync.WaitGroup
	for i, t := range tenants {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			m := tsa.Match(query(t), stream)
			ticket, err := sched.Enqueue(scheduler.Request{
				Job:       t.name,
				Questions: tsa.Questions(m.Tweets),
			})
			if err != nil {
				log.Fatalf("%s: %v", t.name, err)
			}
			matches[i], tickets[i] = m, ticket
		}()
	}
	wg.Wait()
	if err := sched.Flush(context.Background()); err != nil {
		return err
	}
	for i, t := range tenants {
		res, err := tickets[i].Wait(context.Background())
		if err != nil {
			return fmt.Errorf("%s: %w", t.name, err)
		}
		acc := exec.NewAccumulator(textgen.Labels, t.keywords...)
		for id, text := range matches[i].Texts {
			acc.AddText(id, text)
		}
		acc.Observe(exec.OutcomesFromResults(res.Results)...)
		sum := acc.Summary()
		fmt.Printf("%s (%s + %s): %d questions, $%.3f attributed (published %d, shared %d, cached %d)\n",
			t.name, t.keywords[0], t.keywords[1], len(res.Results), res.Cost,
			res.Published, res.Shared, res.CacheHits)
		for _, label := range sum.Domain {
			fmt.Printf("    %-8s %5.1f%%\n", label, sum.Percentages[label]*100)
		}
	}

	// Phase 2: tenant-0 re-runs its query — every answer is already
	// verified and cached, so nothing is published and nothing charged.
	fmt.Printf("\n=== generation 2: tenant-0 re-runs its query ===\n")
	m := tsa.Match(query(tenants[0]), stream)
	rerun, err := sched.Enqueue(scheduler.Request{Job: "tenant-0-rerun", Questions: tsa.Questions(m.Tweets)})
	if err != nil {
		return err
	}
	if err := sched.Flush(context.Background()); err != nil {
		return err
	}
	res, err := rerun.Wait(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("tenant-0-rerun: %d questions, %d cache hits, $%.3f charged\n",
		len(res.Results), res.CacheHits, res.Cost)

	// Phase 3: a tenant whose budget cannot cover fresh crowd work is
	// parked — kept resumable — rather than failed. Fresh keywords make
	// sure the cache cannot answer it.
	fmt.Printf("\n=== generation 3: near-zero budget parks, doesn't fail ===\n")
	gq, err := textgen.Generate(textgen.Config{Seed: seed + 3, Movies: []string{"Ember Lane"}, TweetsPerMovie: 10})
	if err != nil {
		return err
	}
	parked, err := sched.Enqueue(scheduler.Request{
		Job:       "cheapskate",
		Budget:    0.0001,
		Questions: tsa.Questions(gq),
	})
	if err != nil {
		return err
	}
	if err := sched.Flush(context.Background()); err != nil {
		return err
	}
	if _, err := parked.Wait(context.Background()); errors.Is(err, scheduler.ErrParked) {
		fmt.Printf("cheapskate: parked as expected (%v)\n", err)
	} else {
		return fmt.Errorf("cheapskate: expected parking, got %v", err)
	}

	st := sched.State()
	fmt.Printf("\n=== scheduler state ===\n")
	fmt.Printf("generations:         %d\n", st.Generations)
	fmt.Printf("questions enqueued:  %d\n", st.QuestionsEnqueued)
	fmt.Printf("questions published: %d\n", st.QuestionsPublished)
	fmt.Printf("questions deduped:   %d\n", st.QuestionsDeduped)
	fmt.Printf("cache hits / misses: %d / %d\n", st.CacheHits, st.CacheMisses)
	fmt.Printf("jobs admitted / parked: %d / %d\n", st.JobsAdmitted, st.JobsParked)
	fmt.Printf("crowd spend:         $%.3f\n", st.Budget.GlobalSpent)
	saved := st.QuestionsDeduped + st.CacheHits
	total := st.QuestionsEnqueued
	fmt.Printf("crowd purchases avoided: %d of %d enqueued (%.0f%%)\n",
		saved, total, 100*float64(saved)/float64(total))
	return nil
}
