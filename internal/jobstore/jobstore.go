// Package jobstore provides the durable substrate of the CDAS job
// manager (Section 2.1, Figure 2): an append-only write-ahead log with
// periodic snapshots, so a killed server can replay its job lifecycle
// and resume unfinished work.
//
// The store is deliberately payload-agnostic — it persists opaque byte
// records and leaves their meaning to the caller (package jobs encodes
// lifecycle events as JSON). Durability contract:
//
//   - Append frames the payload with a length, a monotone sequence
//     number and a CRC-32 checksum, writes it to the WAL and fsyncs
//     before returning. A returned Append is committed: it survives
//     kill -9.
//   - WriteSnapshot atomically replaces the snapshot file
//     (write-temp, fsync, rename, fsync-dir) and then truncates the
//     WAL. The snapshot frame carries the sequence number of the last
//     record it covers.
//   - Open loads the snapshot (if any) and replays WAL frames. A
//     torn or corrupted tail — a crash mid-Append — is detected by the
//     framing and cut off at the last intact record; every committed
//     record before it is preserved. Records whose sequence number is
//     at or below the snapshot watermark are skipped, which makes the
//     crash window between snapshot rename and WAL truncation safe:
//     replay is idempotent, nothing is applied twice.
package jobstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"syscall"
)

const (
	walName      = "wal.dat"
	snapshotName = "snapshot.dat"
	snapshotTmp  = "snapshot.tmp"

	// headerSize is the per-frame header: 4-byte payload length,
	// 8-byte sequence number, 4-byte CRC-32 (IEEE) over seq+payload.
	headerSize = 4 + 8 + 4

	// maxRecordSize bounds a single record. A length field above it is
	// treated as corruption rather than an attempt to allocate gigabytes.
	maxRecordSize = 64 << 20
)

// ErrCorruptSnapshot reports a snapshot file that exists but fails its
// checksum. Unlike a torn WAL tail this is never produced by a crash —
// snapshots are installed atomically — so it is surfaced loudly instead
// of being silently dropped.
var ErrCorruptSnapshot = errors.New("jobstore: snapshot file is corrupt")

// ErrLocked reports a store already opened by another live process.
// Two writers interleaving frames would corrupt each other's committed
// records, so the second Open fails fast instead. The lock is a flock
// on the WAL file: the kernel releases it when the holder dies, so a
// kill -9 never wedges the store.
var ErrLocked = errors.New("jobstore: store is locked by another process")

// Log is a durable append-only record log with snapshot compaction.
// It is safe for concurrent use.
type Log struct {
	mu  sync.Mutex
	dir string
	wal *os.File

	seq     uint64 // last sequence number assigned
	snapSeq uint64 // watermark: records <= snapSeq live in the snapshot

	// State recovered at Open; immutable afterwards.
	snapshot  []byte
	entries   [][]byte
	truncated bool

	// appends counts WAL records since the last snapshot, for
	// compaction policies.
	appends int

	closed bool
}

// Open opens (creating if needed) the log rooted at dir and recovers
// its state: the latest snapshot plus every committed WAL record after
// it. A torn or corrupted WAL tail is truncated in place.
func Open(dir string) (*Log, error) {
	if dir == "" {
		return nil, errors.New("jobstore: dir is required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	l := &Log{dir: dir}
	if err := l.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := l.replayWAL(); err != nil {
		return nil, err
	}
	return l, nil
}

// Snapshot returns the snapshot payload recovered at Open (nil when the
// log had none) and the sequence watermark it covers.
func (l *Log) Snapshot() ([]byte, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapshot, l.snapSeq
}

// Entries returns the WAL records recovered at Open, in append order,
// excluding any already covered by the snapshot watermark.
func (l *Log) Entries() [][]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([][]byte, len(l.entries))
	copy(out, l.entries)
	return out
}

// TailTruncated reports whether Open found (and cut off) a torn or
// corrupted WAL tail — the signature of a crash mid-Append.
func (l *Log) TailTruncated() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.truncated
}

// Seq returns the last committed sequence number.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// AppendsSinceSnapshot counts WAL records committed since the last
// snapshot (including recovered ones) — the input to compaction policy.
func (l *Log) AppendsSinceSnapshot() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends
}

// Append commits one record: it is framed, written to the WAL and
// fsynced before Append returns. The assigned sequence number is
// returned.
func (l *Log) Append(payload []byte) (uint64, error) { return l.append(payload, true) }

// AppendNoSync writes a record without forcing it to disk — for
// advisory records (e.g. progress) where losing the tail on a crash is
// acceptable. Ordering is preserved: any later synced Append flushes
// earlier unsynced records first, and a torn tail is still detected
// and truncated on recovery.
func (l *Log) AppendNoSync(payload []byte) (uint64, error) { return l.append(payload, false) }

func (l *Log) append(payload []byte, sync bool) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errors.New("jobstore: log is closed")
	}
	if len(payload) > maxRecordSize {
		return 0, fmt.Errorf("jobstore: record of %d bytes exceeds the %d byte cap", len(payload), maxRecordSize)
	}
	seq := l.seq + 1
	if _, err := l.wal.Write(frame(seq, payload)); err != nil {
		return 0, fmt.Errorf("jobstore: append: %w", err)
	}
	if sync {
		if err := l.wal.Sync(); err != nil {
			return 0, fmt.Errorf("jobstore: fsync: %w", err)
		}
	}
	l.seq = seq
	l.appends++
	return seq, nil
}

// WriteSnapshot installs payload as the new snapshot covering every
// record committed so far, then truncates the WAL. The install is
// atomic (temp file + rename); a crash at any point leaves either the
// old snapshot with a full WAL or the new snapshot with a WAL whose
// records are skipped by the sequence watermark on replay.
func (l *Log) WriteSnapshot(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("jobstore: log is closed")
	}
	tmp := filepath.Join(l.dir, snapshotTmp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("jobstore: snapshot: %w", err)
	}
	if _, err := f.Write(frame(l.seq, payload)); err != nil {
		f.Close()
		return fmt.Errorf("jobstore: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("jobstore: snapshot fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("jobstore: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapshotName)); err != nil {
		return fmt.Errorf("jobstore: snapshot install: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	l.snapSeq = l.seq
	// The WAL's records are now covered by the snapshot; drop them.
	if err := l.wal.Truncate(0); err != nil {
		return fmt.Errorf("jobstore: wal truncate: %w", err)
	}
	if _, err := l.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("jobstore: wal seek: %w", err)
	}
	if err := l.wal.Sync(); err != nil {
		return fmt.Errorf("jobstore: wal fsync: %w", err)
	}
	l.appends = 0
	return nil
}

// Close releases the WAL file handle. Append and WriteSnapshot fail
// after Close; the recovered state remains readable.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.wal.Close()
}

// frame encodes one record: [len u32][seq u64][crc u32][payload].
func frame(seq uint64, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[4:12], seq)
	crc := crc32.NewIEEE()
	crc.Write(buf[4:12])
	crc.Write(payload)
	binary.LittleEndian.PutUint32(buf[12:16], crc.Sum32())
	copy(buf[headerSize:], payload)
	return buf
}

// parseFrame decodes the frame at the start of data. ok is false when
// data does not begin with an intact frame (short header, oversized
// length, short payload or checksum mismatch) — the caller treats that
// as the committed prefix's end.
func parseFrame(data []byte) (seq uint64, payload []byte, size int, ok bool) {
	if len(data) < headerSize {
		return 0, nil, 0, false
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	if n > maxRecordSize || int(n) > len(data)-headerSize {
		return 0, nil, 0, false
	}
	seq = binary.LittleEndian.Uint64(data[4:12])
	want := binary.LittleEndian.Uint32(data[12:16])
	payload = data[headerSize : headerSize+int(n)]
	crc := crc32.NewIEEE()
	crc.Write(data[4:12])
	crc.Write(payload)
	if crc.Sum32() != want {
		return 0, nil, 0, false
	}
	return seq, payload, headerSize + int(n), true
}

// loadSnapshot reads the snapshot file, if present.
func (l *Log) loadSnapshot() error {
	data, err := os.ReadFile(filepath.Join(l.dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if len(data) == 0 {
		return nil
	}
	seq, payload, size, ok := parseFrame(data)
	if !ok || size != len(data) {
		return fmt.Errorf("%w (%s)", ErrCorruptSnapshot, filepath.Join(l.dir, snapshotName))
	}
	l.snapshot = append([]byte(nil), payload...)
	l.snapSeq = seq
	l.seq = seq
	return nil
}

// replayWAL scans the WAL, collecting committed records past the
// snapshot watermark and truncating any torn tail.
func (l *Log) replayWAL() error {
	path := filepath.Join(l.dir, walName)
	wal, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := syscall.Flock(int(wal.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		wal.Close()
		return fmt.Errorf("%w (%s): %v", ErrLocked, path, err)
	}
	data, err := io.ReadAll(wal)
	if err != nil {
		wal.Close()
		return fmt.Errorf("jobstore: %w", err)
	}
	offset := 0
	for offset < len(data) {
		seq, payload, size, ok := parseFrame(data[offset:])
		if !ok {
			break
		}
		if seq > l.snapSeq {
			l.entries = append(l.entries, append([]byte(nil), payload...))
			l.appends++
			if seq > l.seq {
				l.seq = seq
			}
		}
		offset += size
	}
	if offset < len(data) {
		// Torn or corrupted tail: keep the committed prefix only.
		l.truncated = true
		if err := wal.Truncate(int64(offset)); err != nil {
			wal.Close()
			return fmt.Errorf("jobstore: tail truncate: %w", err)
		}
	}
	if _, err := wal.Seek(int64(offset), io.SeekStart); err != nil {
		wal.Close()
		return fmt.Errorf("jobstore: %w", err)
	}
	l.wal = wal
	return nil
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("jobstore: dir fsync: %w", err)
	}
	return nil
}
