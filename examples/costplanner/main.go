// Costplanner: uses the prediction model and the AMT economic model
// (Section 3) to budget a streaming crowdsourcing query before launching
// it — the paper's "(m_c + m_s) · n · K · w" cost analysis.
package main

import (
	"fmt"
	"log"

	"cdas"
)

func main() {
	// Population quality scenarios (mean worker accuracy μ).
	populations := []float64{0.60, 0.70, 0.80, 0.90}
	// Query: K items per hour over w hours, batched 100 items per HIT.
	const (
		itemsPerHour = 200
		hours        = 24
		hitSize      = 100
	)
	econ := cdas.DefaultEconomics

	fmt.Printf("per-assignment fee: $%.4f (worker $%.3f + platform $%.4f)\n\n",
		econ.PerAssignment(), econ.WorkerFee, econ.PlatformFee)
	fmt.Printf("%-10s", "required")
	for _, mu := range populations {
		fmt.Printf("  mu=%.2f          ", mu)
	}
	fmt.Println()
	for _, c := range []float64{0.80, 0.90, 0.95, 0.99} {
		fmt.Printf("%-10.2f", c)
		for _, mu := range populations {
			model, err := cdas.NewPredictionModel(mu)
			if err != nil {
				log.Fatal(err)
			}
			workers, cost, err := model.PlanCost(econ, c, itemsPerHour, hours, hitSize)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %3d w / $%-7.2f", workers, cost)
		}
		fmt.Println()
	}

	fmt.Println("\nconservative (Chernoff) vs refined (binary search) crowd sizes at mu=0.70:")
	model, err := cdas.NewPredictionModel(0.70)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range []float64{0.80, 0.90, 0.95, 0.99} {
		cons, err := model.ConservativeWorkers(c)
		if err != nil {
			log.Fatal(err)
		}
		ref, err := model.RequiredWorkers(c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  C=%.2f: conservative %3d -> refined %3d (saves %.0f%%)\n",
			c, cons, ref, 100*(1-float64(ref)/float64(cons)))
	}
}
