package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cdas/internal/loadgen"
)

const freshBench = `goos: linux
BenchmarkSchedulerDedup/jobs=8-8   3   1000000 ns/op   100000 questions/s
BenchmarkSchedulerContention/jobs=8-8   3   2000000 ns/op
PASS
`

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGateEmitThenCompare(t *testing.T) {
	dir := t.TempDir()
	benchPath := write(t, dir, "fresh.txt", freshBench)
	baseline := filepath.Join(dir, "BENCH.json")

	var out, errOut strings.Builder
	if code := run([]string{"-bench", benchPath, "-emit", baseline, "-benchtime", "3x", "-notes", "test"}, &out, &errOut); code != 0 {
		t.Fatalf("emit failed (%d): %s", code, errOut.String())
	}
	base, err := loadgen.LoadBenchBaseline(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Benchmarks) != 2 || base.Benchtime != "3x" {
		t.Fatalf("emitted baseline wrong: %+v", base)
	}

	// Identical numbers gate clean.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", baseline, "-bench", benchPath}, &out, &errOut); code != 0 {
		t.Fatalf("clean gate failed (%d): %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "bench gate passed") {
		t.Fatalf("missing pass message: %s", out.String())
	}

	// A 2x slowdown fails the gate.
	slow := strings.ReplaceAll(freshBench, "1000000 ns/op   100000 questions/s", "2000000 ns/op   50000 questions/s")
	slowPath := write(t, dir, "slow.txt", slow)
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", baseline, "-bench", slowPath}, &out, &errOut); code != 1 {
		t.Fatalf("slowdown gate returned %d: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "regression") {
		t.Fatalf("missing regression report: %s", errOut.String())
	}
}

func TestGateE2EPair(t *testing.T) {
	dir := t.TempDir()
	rep := &loadgen.Report{
		Schema:          loadgen.ReportSchema,
		Profile:         loadgen.Profile{Name: "smoke", Seed: 1},
		GOARCH:          "amd64",
		Deterministic:   true,
		QuestionsPerSec: 1000,
		SpendJobs:       3.5,
		ResultsHash:     "aa",
	}
	basePath := filepath.Join(dir, "base.json")
	if err := rep.WriteJSON(basePath); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-e2e-baseline", basePath, "-e2e", basePath}, &out, &errOut); code != 0 {
		t.Fatalf("identical e2e gate failed (%d): %s", code, errOut.String())
	}
	// Diverged hash fails.
	rep.ResultsHash = "bb"
	freshPath := filepath.Join(dir, "fresh.json")
	if err := rep.WriteJSON(freshPath); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-e2e-baseline", basePath, "-e2e", freshPath}, &out, &errOut); code != 1 {
		t.Fatalf("hash divergence not caught (%d)", code)
	}
}

func TestGateArgErrors(t *testing.T) {
	var out, errOut strings.Builder
	for _, args := range [][]string{
		{},                 // nothing to do
		{"-baseline", "x"}, // baseline without bench
		{"-e2e", "x"},      // unpaired e2e
		{"-bench", "/does/not/exist", "-baseline", "/nope"}, // unreadable
	} {
		if code := run(args, &out, &errOut); code != 1 {
			t.Fatalf("args %v returned %d, want 1", args, code)
		}
	}
}
