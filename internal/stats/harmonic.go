package stats

import "math"

// Harmonic returns the k-th harmonic number H_k = sum_{i=1..k} 1/i.
// H_0 is 0. Values are computed directly up to a cutoff and with the
// asymptotic expansion beyond it; Lemma 1's m bound uses H_{k-1}.
func Harmonic(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k <= 1024 {
		h := 0.0
		// Sum smallest terms first for slightly better rounding.
		for i := k; i >= 1; i-- {
			h += 1 / float64(i)
		}
		return h
	}
	// H_k ~ ln k + gamma + 1/(2k) - 1/(12k^2) + 1/(120k^4)
	const gamma = 0.57721566490153286060651209008240243
	fk := float64(k)
	return math.Log(fk) + gamma + 1/(2*fk) - 1/(12*fk*fk) + 1/(120*fk*fk*fk*fk)
}
