// Package crowd is a discrete-event simulator of a micro-task
// crowdsourcing platform in the mould of Amazon Mechanical Turk, the
// substrate CDAS's models are evaluated on in the paper.
//
// The paper's models interact with AMT through exactly three surfaces, all
// of which the simulator makes first-class:
//
//   - the distribution of worker accuracies and (divergent) approval rates
//     (Section 3.3, Figure 14);
//   - asynchronous, out-of-order answer arrival (Section 4.2, Figures
//     11–13), modelled with per-assignment exponential submit delays on a
//     virtual clock — no wall-clock time is involved, so simulations are
//     fast and deterministic;
//   - the economic model (Section 3.1): every delivered assignment costs
//     the requester m_c + m_s, and assignments cancelled before delivery
//     cost nothing (footnote 3 of the paper).
//
// Worker behaviour supports the failure modes the paper motivates in
// Section 1: honest-but-fallible workers, spammers answering at random,
// adversarial workers, and colluders who coordinate on a wrong answer.
package crowd

import (
	"fmt"

	"cdas/internal/randx"
)

// Behavior classifies how a worker produces answers.
type Behavior int

const (
	// Honest workers answer correctly with their accuracy, and uniformly
	// among the wrong answers otherwise.
	Honest Behavior = iota
	// Spammer workers answer uniformly at random to harvest rewards.
	Spammer
	// Adversarial workers deliberately pick a wrong answer.
	Adversarial
	// Colluder workers coordinate on a fixed answer regardless of truth.
	Colluder
)

// String names the behaviour for diagnostics.
func (b Behavior) String() string {
	switch b {
	case Honest:
		return "honest"
	case Spammer:
		return "spammer"
	case Adversarial:
		return "adversarial"
	case Colluder:
		return "colluder"
	default:
		return fmt.Sprintf("Behavior(%d)", int(b))
	}
}

// Worker is one simulated platform worker.
type Worker struct {
	ID string
	// Accuracy is the probability of answering a standard (difficulty 0)
	// question correctly. Only meaningful for Honest workers.
	Accuracy float64
	// ApprovalRate is the platform-visible approval statistic. It is
	// sampled independently of Accuracy to reproduce Figure 14's
	// divergence (task mismatch + requesters' auto-approval).
	ApprovalRate float64
	// Speed scales submission delays: mean delay = MeanDelay / Speed.
	Speed float64
	// Behavior selects the answering strategy.
	Behavior Behavior
	// ColludeAnswer is the coordinated answer of Colluder workers.
	ColludeAnswer string
}

// Question is a single crowd question: pick one answer from Domain.
type Question struct {
	ID     string
	Text   string   // human-readable prompt; informational
	Domain []string // the answer set R
	Truth  string   // ground truth (driving the simulation; hidden from models)
	// Difficulty in [0, 1] interpolates an honest worker's effective
	// accuracy between their own (0) and uniform guessing (1), modelling
	// the "difficult questions" of Section 5.1.2.
	Difficulty float64
	// Trap, when set with TrapStrength > 0, is a systematically
	// attractive wrong answer (the paper's sarcastic The Last Airbender
	// tweet: "sucks" pulls workers to negative). With probability
	// TrapStrength an honest worker answers Trap outright.
	Trap         string
	TrapStrength float64
}

// Validate reports whether the question is well-formed: a domain of at
// least two answers containing the truth.
func (q Question) Validate() error {
	if len(q.Domain) < 2 {
		return fmt.Errorf("crowd: question %q needs a domain of >= 2 answers, got %d", q.ID, len(q.Domain))
	}
	if !contains(q.Domain, q.Truth) {
		return fmt.Errorf("crowd: question %q truth %q not in domain", q.ID, q.Truth)
	}
	if q.Difficulty < 0 || q.Difficulty > 1 {
		return fmt.Errorf("crowd: question %q difficulty %v outside [0,1]", q.ID, q.Difficulty)
	}
	if q.TrapStrength < 0 || q.TrapStrength > 1 {
		return fmt.Errorf("crowd: question %q trap strength %v outside [0,1]", q.ID, q.TrapStrength)
	}
	if q.TrapStrength > 0 && !contains(q.Domain, q.Trap) {
		return fmt.Errorf("crowd: question %q trap %q not in domain", q.ID, q.Trap)
	}
	return nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Answer simulates the worker answering q using rng.
func (w *Worker) Answer(rng *randx.Source, q Question) string {
	switch w.Behavior {
	case Spammer:
		return randx.Choice(rng, q.Domain)
	case Adversarial:
		return w.wrongAnswer(rng, q)
	case Colluder:
		if contains(q.Domain, w.ColludeAnswer) {
			return w.ColludeAnswer
		}
		return randx.Choice(rng, q.Domain)
	}
	// Honest path. Systematic traps fire before the accuracy draw, and
	// fool inaccurate workers far more than accurate ones — the paper's
	// Table 3 example hinges on the high-accuracy worker seeing through
	// the sarcasm the others fall for. A worker of accuracy a falls for
	// a trap of strength T with probability min(1, 2·T·(1-a)).
	if q.TrapStrength > 0 {
		pTrap := 2 * q.TrapStrength * (1 - w.Accuracy)
		if pTrap > 1 {
			pTrap = 1
		}
		if rng.Bool(pTrap) {
			return q.Trap
		}
	}
	chance := 1.0 / float64(len(q.Domain))
	eff := w.Accuracy*(1-q.Difficulty) + chance*q.Difficulty
	if rng.Bool(eff) {
		return q.Truth
	}
	return w.wrongAnswer(rng, q)
}

// wrongAnswer picks uniformly among the non-truth answers.
func (w *Worker) wrongAnswer(rng *randx.Source, q Question) string {
	wrong := make([]string, 0, len(q.Domain)-1)
	for _, a := range q.Domain {
		if a != q.Truth {
			wrong = append(wrong, a)
		}
	}
	if len(wrong) == 0 {
		return q.Truth // degenerate single-answer domain
	}
	return randx.Choice(rng, wrong)
}
