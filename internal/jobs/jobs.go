// Package jobs implements the CDAS job manager (Section 2.1, Figure 2):
// it accepts analytics job registrations, validates their queries, and
// produces processing plans that partition each job into computer-oriented
// tasks (run by the program executor) and human-oriented tasks (run by the
// crowdsourcing engine).
package jobs

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"cdas/internal/core/aggregate"
	"cdas/internal/textutil"
)

// Query is the analytics query of Definition 1: (S, C, R, t, w).
type Query struct {
	Keywords         []string      // S: filter keywords
	RequiredAccuracy float64       // C: accuracy requirement in (0, 1)
	Domain           []string      // R: the answer domain
	Start            time.Time     // t: query timestamp
	Window           time.Duration // w: time window
}

// Validate reports whether the query is well-formed.
func (q Query) Validate() error {
	if len(q.Keywords) == 0 {
		return errors.New("jobs: query needs at least one keyword")
	}
	if q.RequiredAccuracy <= 0 || q.RequiredAccuracy >= 1 || math.IsNaN(q.RequiredAccuracy) {
		return fmt.Errorf("jobs: required accuracy must be in (0,1), got %v", q.RequiredAccuracy)
	}
	if len(q.Domain) < 2 {
		return fmt.Errorf("jobs: answer domain needs >= 2 answers, got %d", len(q.Domain))
	}
	seen := make(map[string]struct{}, len(q.Domain))
	for _, r := range q.Domain {
		if _, dup := seen[r]; dup {
			return fmt.Errorf("jobs: duplicate domain answer %q", r)
		}
		seen[r] = struct{}{}
	}
	if q.Window <= 0 {
		return fmt.Errorf("jobs: window must be positive, got %v", q.Window)
	}
	return nil
}

// Matches reports whether an item with the given text and timestamp falls
// inside the query's keyword filter and time window — the computer-side
// filter the program executor applies to the stream.
func (q Query) Matches(text string, at time.Time) bool {
	if at.Before(q.Start) || !at.Before(q.Start.Add(q.Window)) {
		return false
	}
	return textutil.ContainsAny(text, q.Keywords)
}

// Kind identifies the application type of a job, selecting its plan
// template.
type Kind string

// Supported job kinds.
const (
	KindTSA         Kind = "tsa"         // Twitter sentiment analytics (Section 2.2)
	KindImageTag    Kind = "imagetag"    // image tagging (Section 5.2)
	KindCustom      Kind = "custom"      // caller supplies the task split
	KindContinuous  Kind = "continuous"  // standing query over an unbounded stream
	KindEnumeration Kind = "enumeration" // open-ended "list all X" set enumeration
)

// StreamSpec configures a KindContinuous job: a standing query whose
// items arrive over time and are verified window by window. For a
// continuous job the base Query is reinterpreted: Query.Start is the
// stream origin and Query.Window the tumbling event-time window width;
// there is no upper time bound — the query stands until its source ends
// or it is cancelled. All fields are durable (they ride the job record
// through the WAL/LSM store) so a restarted server rebuilds the exact
// same stream.
type StreamSpec struct {
	// Lateness is the watermark lag: a window [s, e) closes once an
	// item with event time >= e+Lateness has been seen. Items arriving
	// behind the watermark are dropped (accounted, never buffered).
	Lateness time.Duration `json:"lateness,omitempty"`
	// TargetFill is the batch-fill target the adaptive batcher aims
	// for: batch size ~= observed arrival rate x TargetFill, clamped to
	// [1, engine real slots]. Zero picks a default of half the window.
	TargetFill time.Duration `json:"target_fill,omitempty"`
	// WindowCapacity caps the crowd questions asked per window — the
	// crowd-throughput budget. Items beyond it settle with degraded
	// partial-vote verdicts or are dropped. Zero means engine real
	// slots per window.
	WindowCapacity int `json:"window_capacity,omitempty"`
	// MaxBacklog bounds buffered matched items across open windows;
	// arrivals beyond it are dropped (accounted). Zero picks
	// 4 x WindowCapacity.
	MaxBacklog int `json:"max_backlog,omitempty"`
	// Items is the number of items the built-in deterministic source
	// emits (the demo/loadgen source). Zero lets the runner's source
	// decide.
	Items int `json:"items,omitempty"`
	// Rate is the built-in source's mean event-time arrival rate in
	// items per second (seeded exponential inter-arrival gaps).
	Rate float64 `json:"rate,omitempty"`
	// SourceSeed seeds the built-in source's arrival process.
	SourceSeed uint64 `json:"source_seed,omitempty"`
}

// Validate reports whether the spec is well-formed.
func (sp StreamSpec) Validate() error {
	if sp.Lateness < 0 {
		return fmt.Errorf("jobs: stream lateness must be >= 0, got %v", sp.Lateness)
	}
	if sp.TargetFill < 0 {
		return fmt.Errorf("jobs: stream target fill must be >= 0, got %v", sp.TargetFill)
	}
	if sp.WindowCapacity < 0 {
		return fmt.Errorf("jobs: stream window capacity must be >= 0, got %d", sp.WindowCapacity)
	}
	if sp.MaxBacklog < 0 {
		return fmt.Errorf("jobs: stream max backlog must be >= 0, got %d", sp.MaxBacklog)
	}
	if sp.Items < 0 {
		return fmt.Errorf("jobs: stream items must be >= 0, got %d", sp.Items)
	}
	if sp.Rate < 0 || math.IsNaN(sp.Rate) {
		return fmt.Errorf("jobs: stream rate must be >= 0, got %v", sp.Rate)
	}
	return nil
}

// Enumeration batch sizing defaults, used when the spec leaves
// HITWorkers or PerWorker zero.
const (
	DefaultEnumHITWorkers = 5
	DefaultEnumPerWorker  = 3
)

// EnumSpec configures a KindEnumeration job: an open-ended "list all X"
// query where workers contribute set members instead of votes. The base
// Query is reinterpreted: Keywords name the set to collect; there is no
// answer domain, accuracy requirement or time window — the stopping
// rule is the species-estimation completeness bound plus the ledger's
// marginal-value admission. All fields are durable (they ride the job
// record through the WAL/LSM store).
type EnumSpec struct {
	// ItemValue is the worth of one newly discovered set member, in the
	// same currency as HIT prices. The next HIT batch is admitted only
	// while E[new items per batch] x ItemValue exceeds the batch price.
	ItemValue float64 `json:"item_value"`
	// TargetCoverage optionally stops the job once the Chao92
	// completeness estimate (observed / estimated total) reaches it.
	// Zero disables the coverage stop.
	TargetCoverage float64 `json:"target_coverage,omitempty"`
	// MaxBatches caps the number of HIT batches (0 = unlimited).
	MaxBatches int `json:"max_batches,omitempty"`
	// HITWorkers is how many workers answer each HIT batch (0 picks
	// DefaultEnumHITWorkers).
	HITWorkers int `json:"hit_workers,omitempty"`
	// PerWorker is how many set members each worker is asked for
	// (0 picks DefaultEnumPerWorker).
	PerWorker int `json:"per_worker,omitempty"`
	// Universe is the built-in deterministic source's hidden set size
	// (the demo/loadgen source). Zero lets the runner's source decide.
	Universe int `json:"universe,omitempty"`
	// Popularity is the built-in source's Zipf-like skew exponent:
	// item i is drawn with weight 1/(i+1)^Popularity. Zero picks 1.
	Popularity float64 `json:"popularity,omitempty"`
	// SourceSeed seeds the built-in source's draws.
	SourceSeed uint64 `json:"source_seed,omitempty"`
}

// Validate reports whether the spec is well-formed.
func (sp EnumSpec) Validate() error {
	if sp.ItemValue <= 0 || math.IsNaN(sp.ItemValue) {
		return fmt.Errorf("jobs: enum item value must be > 0, got %v", sp.ItemValue)
	}
	if sp.TargetCoverage < 0 || sp.TargetCoverage >= 1 || math.IsNaN(sp.TargetCoverage) {
		return fmt.Errorf("jobs: enum target coverage must be in [0,1), got %v", sp.TargetCoverage)
	}
	if sp.MaxBatches < 0 {
		return fmt.Errorf("jobs: enum max batches must be >= 0, got %d", sp.MaxBatches)
	}
	if sp.HITWorkers < 0 {
		return fmt.Errorf("jobs: enum HIT workers must be >= 0, got %d", sp.HITWorkers)
	}
	if sp.PerWorker < 0 {
		return fmt.Errorf("jobs: enum per-worker contributions must be >= 0, got %d", sp.PerWorker)
	}
	if sp.Universe < 0 {
		return fmt.Errorf("jobs: enum universe must be >= 0, got %d", sp.Universe)
	}
	if sp.Popularity < 0 || math.IsNaN(sp.Popularity) {
		return fmt.Errorf("jobs: enum popularity must be >= 0, got %v", sp.Popularity)
	}
	return nil
}

// Workers resolves the per-batch worker count, applying the default.
func (sp EnumSpec) Workers() int {
	if sp.HITWorkers > 0 {
		return sp.HITWorkers
	}
	return DefaultEnumHITWorkers
}

// ContributionsPerWorker resolves how many members each worker names.
func (sp EnumSpec) ContributionsPerWorker() int {
	if sp.PerWorker > 0 {
		return sp.PerWorker
	}
	return DefaultEnumPerWorker
}

// BatchContributions is the contribution count of one full HIT batch —
// the E[new items per batch] denominator in marginal-value admission.
func (sp EnumSpec) BatchContributions() int {
	return sp.Workers() * sp.ContributionsPerWorker()
}

// Job is a registered analytics job.
type Job struct {
	Name  string
	Kind  Kind
	Query Query
	// Tenant scopes the job to the submitting organisation. Empty is
	// the default (single-tenant) scope; list queries can filter by it.
	Tenant string
	// Priority orders budget admission in the cross-query scheduler:
	// when the remaining budget cannot cover every pending job, higher
	// priorities are admitted first. Zero is the default tier.
	Priority int
	// Budget caps the job's total crowd spend (0 = unlimited). A job
	// whose estimated next run would exceed it is parked, not failed.
	Budget float64
	// Aggregator names the answer-aggregation method (aggregate
	// registry) the job's crowd questions are decided with. Empty
	// selects the default, the CDAS probability model.
	Aggregator string
	// Stream configures a KindContinuous job's standing-query
	// parameters; required for that kind, nil for every other.
	Stream *StreamSpec `json:"Stream,omitempty"`
	// Enum configures a KindEnumeration job's open-ended collection
	// parameters; required for that kind, nil for every other.
	Enum *EnumSpec `json:"Enum,omitempty"`
}

// Task is one step of a processing plan.
type Task struct {
	Name        string
	Description string
	Human       bool // true: crowdsourcing engine; false: program executor
}

// Plan is the partitioned processing plan for a job (Figure 2: the job
// manager "partitions the job into two parts, one for the computers and
// one for the human workers").
type Plan struct {
	Job           Job
	ComputerTasks []Task
	HumanTasks    []Task
}

// planFor instantiates the plan template for the job's kind.
func planFor(job Job) (Plan, error) {
	switch job.Kind {
	case KindTSA:
		return Plan{
			Job: job,
			ComputerTasks: []Task{
				{Name: "filter-stream", Description: "retrieve the tweet stream and keep tweets matching the query keywords inside the window"},
				{Name: "buffer", Description: "buffer candidate tweets into HIT-sized batches"},
				{Name: "summarise", Description: "aggregate accepted answers into percentages and reasons"},
			},
			HumanTasks: []Task{
				{Name: "classify-sentiment", Description: "categorise each tweet's opinion over the answer domain", Human: true},
			},
		}, nil
	case KindImageTag:
		return Plan{
			Job: job,
			ComputerTasks: []Task{
				{Name: "collect-candidates", Description: "assemble candidate tag sets (existing tags plus noise)"},
				{Name: "index", Description: "index images by their accepted tags"},
			},
			HumanTasks: []Task{
				{Name: "select-tags", Description: "choose the correct tag for each image", Human: true},
			},
		}, nil
	case KindContinuous:
		return Plan{
			Job: job,
			ComputerTasks: []Task{
				{Name: "ingest-stream", Description: "pull items from the source and filter them against the query keywords"},
				{Name: "window", Description: "assign items to tumbling event-time windows and close windows on the watermark"},
				{Name: "batch-adaptively", Description: "size engine batches from the observed arrival rate, shedding under saturation"},
				{Name: "summarise-windows", Description: "fold each window's verdicts into per-window and running results"},
			},
			HumanTasks: []Task{
				{Name: "classify-items", Description: "categorise each windowed item over the answer domain", Human: true},
			},
		}, nil
	case KindEnumeration:
		return Plan{
			Job: job,
			ComputerTasks: []Task{
				{Name: "canonicalize", Description: "normalise free-text contributions and dedup them into the growing result set"},
				{Name: "estimate", Description: "update the Chao92 species estimate from the frequency-of-frequencies"},
				{Name: "admit-marginal", Description: "admit the next HIT batch only while expected discovery value exceeds its price"},
			},
			HumanTasks: []Task{
				{Name: "contribute-members", Description: "name members of the requested set in free text", Human: true},
			},
		}, nil
	case KindCustom:
		return Plan{Job: job}, nil
	default:
		return Plan{}, fmt.Errorf("jobs: unknown job kind %q", job.Kind)
	}
}

// DefaultMaxAttempts is how many times a job may be claimed before a
// failure becomes terminal, when the Manager doesn't override it.
const DefaultMaxAttempts = 3

// Manager is the job registry and lifecycle state machine (see
// lifecycle.go for the states). It is safe for concurrent use.
type Manager struct {
	mu          sync.RWMutex
	recs        map[string]*Status
	ix          *indexes
	maxAttempts int
	nextSeq     uint64
}

// NewManager returns an empty Manager with DefaultMaxAttempts.
func NewManager() *Manager {
	return &Manager{
		recs:        make(map[string]*Status),
		ix:          newIndexes(),
		maxAttempts: DefaultMaxAttempts,
	}
}

// SetMaxAttempts bounds the retry loop: a job failing on its n-th claim
// with n >= max lands in Failed instead of requeueing. Values < 1 are
// ignored.
func (m *Manager) SetMaxAttempts(max int) {
	if max < 1 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.maxAttempts = max
}

// MaxAttempts reports the retry bound.
func (m *Manager) MaxAttempts() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.maxAttempts
}

// Registration errors.
var (
	ErrDuplicateJob = errors.New("jobs: job already registered")
	ErrUnknownJob   = errors.New("jobs: no such job")
)

// Register validates the job, stores it in state Pending, and returns
// its processing plan.
func (m *Manager) Register(job Job) (Plan, error) {
	if job.Name == "" {
		return Plan{}, errors.New("jobs: job needs a name")
	}
	if job.Budget < 0 || math.IsNaN(job.Budget) {
		return Plan{}, fmt.Errorf("jobs: job budget must be >= 0, got %v", job.Budget)
	}
	if err := aggregate.Validate(job.Aggregator); err != nil {
		return Plan{}, fmt.Errorf("jobs: %w", err)
	}
	if job.Kind == KindEnumeration {
		// Open-ended enumeration: keywords name the set to collect, but
		// there is no answer domain, accuracy bound or window to check.
		if len(job.Query.Keywords) == 0 {
			return Plan{}, errors.New("jobs: query needs at least one keyword")
		}
	} else if err := job.Query.Validate(); err != nil {
		return Plan{}, err
	}
	if job.Kind == KindContinuous {
		if job.Stream == nil {
			return Plan{}, errors.New("jobs: continuous job needs a stream spec")
		}
		if err := job.Stream.Validate(); err != nil {
			return Plan{}, err
		}
	} else if job.Stream != nil {
		return Plan{}, fmt.Errorf("jobs: stream spec is only valid for %q jobs, got kind %q", KindContinuous, job.Kind)
	}
	if job.Kind == KindEnumeration {
		if job.Enum == nil {
			return Plan{}, errors.New("jobs: enumeration job needs an enum spec")
		}
		if err := job.Enum.Validate(); err != nil {
			return Plan{}, err
		}
	} else if job.Enum != nil {
		return Plan{}, fmt.Errorf("jobs: enum spec is only valid for %q jobs, got kind %q", KindEnumeration, job.Kind)
	}
	plan, err := planFor(job)
	if err != nil {
		return Plan{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.recs[job.Name]; dup {
		return Plan{}, fmt.Errorf("%w: %q", ErrDuplicateJob, job.Name)
	}
	rec := &Status{Job: job, State: StatePending, seq: m.nextSeq}
	m.recs[job.Name] = rec
	m.ix.enter(rec)
	m.nextSeq++
	return plan, nil
}

// Get returns a registered job.
func (m *Manager) Get(name string) (Job, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	rec, ok := m.recs[name]
	if !ok {
		return Job{}, false
	}
	return rec.Job, true
}

// Unregister removes a job and its lifecycle record; it returns
// ErrUnknownJob if absent.
func (m *Manager) Unregister(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownJob, name)
	}
	m.ix.leave(rec)
	delete(m.recs, name)
	return nil
}

// Jobs lists registered jobs sorted by name.
func (m *Manager) Jobs() []Job {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Job, 0, len(m.recs))
	for _, rec := range m.recs {
		out = append(out, rec.Job)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func sortStatuses(out []Status) {
	sort.Slice(out, func(i, j int) bool { return out[i].Job.Name < out[j].Job.Name })
}
