// The LSM engine: a durable key/value store with bounded-time recovery,
// built for the job service's "millions of jobs" regime where the
// append-only Log's replay-the-world recovery becomes a boot-time and
// memory cliff.
//
// Shape (classic log-structured merge tree, one level):
//
//   - Writes are framed into the current WAL segment (fsynced
//     batch-atomically), then applied to the memtable. A batch's ops
//     commit together or not at all: the batch is one CRC-framed WAL
//     record.
//   - A checkpoint freezes the memtable behind an immutable view, opens
//     a fresh WAL segment for subsequent commits, and flushes the frozen
//     entries into an immutable sorted run — CRC-framed blocks, a block
//     index and a Bloom filter (run.go) — installed by atomic rename.
//     A new MANIFEST then records the live run set and the WAL sequence
//     watermark the runs cover, and the covered WAL segments are
//     deleted. With OnlineCheckpoint set the flush runs in a background
//     goroutine (single-flight), so a checkpoint never blocks Apply;
//     otherwise it runs inline, on the triggering caller.
//   - Compaction merges the run stack into one run (dropping tombstones)
//     once it grows past MaxRuns, synchronously by default or in the
//     background when BackgroundCompaction is set.
//   - Open reads the MANIFEST, opens each run's footer/index/bloom
//     (O(runs), not O(records)), deletes orphan files from interrupted
//     installs, drops WAL segments fully covered by the watermark and
//     replays only the frames past it — checkpoint + tail, never
//     seq-zero replay.
//
// Every fsync, rename and segment transition on this path is guarded by
// a named failpoint (failpoint.go); the crash-equivalence tests drive op
// sequences with a crash injected at each one — including mid-flight
// online checkpoints — and assert recovery always matches a reference
// model.
package jobstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// LSM file names. They are disjoint from the Log's (wal.dat,
// snapshot.dat), so pointing one engine at the other's directory finds
// an empty store instead of corrupting it.
const (
	// lsmWALName is the pre-segmented single WAL file; recovery adopts
	// it as the first segment so old stores open unchanged.
	lsmWALName      = "lsm.wal"
	lsmLockName     = "lsm.lock"
	manifestName    = "MANIFEST"
	manifestTmpName = "MANIFEST.tmp"
	runTmpName      = "run.tmp"
)

func runFileName(id uint64) string { return fmt.Sprintf("run-%08d.run", id) }

// segmentFileName names WAL segment id. Fixed-width decimal keeps
// lexical order equal to numeric order for directory listings.
func segmentFileName(id uint64) string { return fmt.Sprintf("wal-%08d.wal", id) }

// parseSegmentName extracts the id from a WAL segment file name.
func parseSegmentName(name string) (uint64, bool) {
	mid, ok := strings.CutPrefix(name, "wal-")
	if !ok {
		return 0, false
	}
	mid, ok = strings.CutSuffix(mid, ".wal")
	if !ok || len(mid) == 0 {
		return 0, false
	}
	id, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}

// Op is one mutation in an atomic batch: a put, or a delete when
// Delete is set.
type Op struct {
	Key    string
	Value  []byte
	Delete bool
}

// LSMConfig tunes OpenLSM. Only Dir is required.
type LSMConfig struct {
	// Dir roots the store's files.
	Dir string
	// MemtableBytes is the flush threshold (default 4 MiB).
	MemtableBytes int
	// MaxRuns triggers compaction when the run stack grows past it
	// (default 4; minimum 1).
	MaxRuns int
	// BlockSize is the sorted-run block payload target (default 4 KiB).
	BlockSize int
	// NoSync skips fsyncs — bulk loading and benchmarks only; a crash
	// can lose acknowledged writes.
	NoSync bool
	// OnlineCheckpoint flushes checkpoints in a background goroutine:
	// the commit path only freezes the memtable and rotates the WAL
	// segment (two O(1) pointer swaps plus one file creation), so Apply
	// never waits for a run flush or manifest install.
	OnlineCheckpoint bool
	// OnCheckpoint, when set, is called once per checkpoint flush with
	// its outcome, after the flush completes and with no store locks
	// held. This is how online checkpoint errors surface to the owner.
	OnCheckpoint func(err error)
	// BackgroundCompaction runs compaction in a goroutine instead of
	// synchronously inside the triggering checkpoint.
	BackgroundCompaction bool
	// Fail is the failpoint hook (tests only; see failpoint.go).
	Fail FailFunc
}

// BootStats describes what recovery did — the observable difference
// between checkpoint+tail boot and replay-the-world.
type BootStats struct {
	// Runs is the number of sorted runs opened from the manifest.
	Runs int
	// RunRecords is the total record count the runs hold (from their
	// footers; the records themselves are not read at boot).
	RunRecords int
	// TailRecords is the number of WAL frames replayed past the
	// manifest watermark — the only part of boot proportional to
	// un-checkpointed writes.
	TailRecords int
	// TailTruncated reports a torn WAL tail was cut off.
	TailTruncated bool
}

// lsmManifest is the durable run-set record.
type lsmManifest struct {
	// Runs lists live run IDs, oldest first.
	Runs []uint64 `json:"runs"`
	// WalSeq is the watermark: WAL frames at or below it are covered by
	// the runs and skipped on replay.
	WalSeq uint64 `json:"wal_seq"`
	// NextRun is the next run ID to allocate.
	NextRun uint64 `json:"next_run"`
}

// walSegment is a rotated-out WAL segment awaiting coverage: once the
// manifest watermark reaches maxSeq the file is deleted.
type walSegment struct {
	id     uint64
	maxSeq uint64
}

// ckptJob tracks one checkpoint flush from freeze to install. done is
// closed when the flush finished (either way); err is valid after.
type ckptJob struct {
	done chan struct{}
	err  error
}

// LSM is the engine handle. It is safe for concurrent use.
type LSM struct {
	mu  sync.Mutex
	cfg LSMConfig
	dir string

	lockf    *os.File // flock handle held for the store's lifetime
	wal      *os.File // current WAL segment
	walID    uint64   // current segment id
	walSeq   uint64
	oldSegs  []walSegment // rotated-out segments, ascending id
	manifest lsmManifest
	runs     []*runReader // parallel to manifest.Runs (oldest first)
	mem      *memtable

	// frozen is the immutable memtable view an in-flight checkpoint is
	// flushing; reads overlay mem (newer) over frozen over the runs.
	frozen    *memtable
	frozenSeq uint64
	inflight  *ckptJob

	// maintMu serialises the file-level maintenance work — checkpoint
	// flushes and compactions — without blocking the commit path, which
	// only ever takes mu. Lock order: maintMu before mu.
	maintMu sync.Mutex
	wg      sync.WaitGroup // background flushes and compactions

	boot       BootStats
	compacting bool
	closed     bool
	// poisoned is set when an injected crash fired (possibly on a
	// background flush): the simulated process is dead, so every
	// subsequent mutation must fail until the store is reopened.
	poisoned error
}

var errLSMClosed = errors.New("jobstore: store is closed")

// OpenLSM opens (creating if needed) the store at cfg.Dir and recovers
// it: manifest, run skeletons, orphan cleanup, WAL tail replay.
func OpenLSM(cfg LSMConfig) (*LSM, error) {
	if cfg.Dir == "" {
		return nil, errors.New("jobstore: dir is required")
	}
	if cfg.MemtableBytes <= 0 {
		cfg.MemtableBytes = 4 << 20
	}
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = 4
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = defaultBlockSize
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	l := &LSM{cfg: cfg, dir: cfg.Dir, mem: newMemtable()}
	if err := l.recover(); err != nil {
		if l.wal != nil {
			l.wal.Close()
		}
		for _, r := range l.runs {
			r.close()
		}
		if l.lockf != nil {
			l.lockf.Close()
		}
		return nil, err
	}
	return l, nil
}

// recover loads the manifest and runs, removes orphans and replays the
// WAL segments past the watermark.
func (l *LSM) recover() error {
	// Lock first: a dedicated flock file is the single-writer guard
	// (the WAL itself rotates, so it can no longer double as the lock).
	lockf, err := os.OpenFile(filepath.Join(l.dir, lsmLockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := syscall.Flock(int(lockf.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lockf.Close()
		return fmt.Errorf("%w (%s): %v", ErrLocked, filepath.Join(l.dir, lsmLockName), err)
	}
	l.lockf = lockf

	if err := l.loadManifest(); err != nil {
		return err
	}
	if l.manifest.NextRun == 0 {
		// Run IDs start at 1: installManifest uses 0 as "no new run".
		l.manifest.NextRun = 1
	}
	live := make(map[string]bool, len(l.manifest.Runs)+2)
	for _, id := range l.manifest.Runs {
		live[runFileName(id)] = true
	}
	for _, id := range l.manifest.Runs {
		r, err := openRun(filepath.Join(l.dir, runFileName(id)))
		if err != nil {
			return err
		}
		l.runs = append(l.runs, r)
		l.boot.RunRecords += r.count
	}
	l.boot.Runs = len(l.runs)
	// Orphans: run files an interrupted install left behind (present on
	// disk, absent from the manifest) and temp files. Removing them is
	// safe — the manifest is the commit point.
	names, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	for _, de := range names {
		name := de.Name()
		orphanRun := strings.HasPrefix(name, "run-") && strings.HasSuffix(name, ".run") && !live[name]
		if orphanRun || name == runTmpName || name == manifestTmpName {
			os.Remove(filepath.Join(l.dir, name))
		}
	}
	return l.recoverWAL()
}

// loadManifest reads the MANIFEST, tolerating absence (empty store).
func (l *LSM) loadManifest() error {
	data, err := os.ReadFile(filepath.Join(l.dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	_, payload, size, ok := parseFrame(data)
	if !ok || size != len(data) {
		return fmt.Errorf("%w: manifest failed validation (%s)", ErrCorruptRun, filepath.Join(l.dir, manifestName))
	}
	if err := json.Unmarshal(payload, &l.manifest); err != nil {
		return fmt.Errorf("jobstore: decoding manifest: %w", err)
	}
	l.walSeq = l.manifest.WalSeq
	return nil
}

// recoverWAL discovers the WAL segments, replays every frame past the
// manifest watermark in segment order, deletes segments the watermark
// fully covers, and leaves the newest segment open as the write head.
func (l *LSM) recoverWAL() error {
	// A pre-segmented store has a single lsm.wal: adopt it as segment 1
	// so the upgrade is invisible.
	legacy := filepath.Join(l.dir, lsmWALName)
	if _, err := os.Stat(legacy); err == nil {
		ids, lerr := l.listSegments()
		if lerr != nil {
			return lerr
		}
		if len(ids) > 0 {
			return fmt.Errorf("%w: both %s and segmented WAL files present (%s)", ErrCorruptRun, lsmWALName, l.dir)
		}
		if err := os.Rename(legacy, filepath.Join(l.dir, segmentFileName(1))); err != nil {
			return fmt.Errorf("jobstore: adopting legacy WAL: %w", err)
		}
		if !l.cfg.NoSync {
			syncDir(l.dir)
		}
	}
	ids, err := l.listSegments()
	if err != nil {
		return err
	}
	if len(ids) == 0 {
		return l.createSegment(1)
	}
	for i, id := range ids {
		last := i == len(ids)-1
		if err := l.replaySegment(id, last); err != nil {
			return err
		}
	}
	return nil
}

// listSegments returns the on-disk WAL segment ids, ascending.
func (l *LSM) listSegments() ([]uint64, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	var ids []uint64
	for _, de := range entries {
		if id, ok := parseSegmentName(de.Name()); ok {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// createSegment makes an empty segment the write head.
func (l *LSM) createSegment(id uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentFileName(id)), os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	l.wal = f
	l.walID = id
	return nil
}

// replaySegment applies one segment's frames past the watermark to the
// memtable. The last segment stays open as the write head (with any
// torn tail truncated); older segments are deleted when covered, kept
// in oldSegs otherwise.
func (l *LSM) replaySegment(id uint64, last bool) error {
	path := filepath.Join(l.dir, segmentFileName(id))
	var f *os.File
	var data []byte
	var err error
	if last {
		f, err = os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("jobstore: %w", err)
		}
		data, err = io.ReadAll(f)
		if err != nil {
			f.Close()
			return fmt.Errorf("jobstore: %w", err)
		}
	} else {
		data, err = os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("jobstore: %w", err)
		}
	}
	offset := 0
	maxSeq := uint64(0)
	for offset < len(data) {
		seq, payload, size, ok := parseFrame(data[offset:])
		if !ok {
			break
		}
		if seq > l.manifest.WalSeq {
			ops, err := decodeEntries(payload)
			if err != nil {
				// A CRC-valid frame with undecodable ops is corruption,
				// not a torn tail.
				if f != nil {
					f.Close()
				}
				return fmt.Errorf("jobstore: WAL record %d: %w", seq, err)
			}
			for _, e := range ops {
				l.mem.apply(e)
			}
			l.boot.TailRecords++
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		if seq > l.walSeq {
			l.walSeq = seq
		}
		offset += size
	}
	if offset < len(data) {
		// A torn frame is the signature of a crash mid-write; it can
		// only carry unacknowledged bytes, so cutting it is safe in any
		// segment (older segments see one only under NoSync).
		l.boot.TailTruncated = true
	}
	if last {
		if offset < len(data) {
			if err := f.Truncate(int64(offset)); err != nil {
				f.Close()
				return fmt.Errorf("jobstore: tail truncate: %w", err)
			}
		}
		if _, err := f.Seek(int64(offset), io.SeekStart); err != nil {
			f.Close()
			return fmt.Errorf("jobstore: %w", err)
		}
		l.wal = f
		l.walID = id
		return nil
	}
	if maxSeq <= l.manifest.WalSeq {
		// Fully covered by the checkpoint (including empty segments from
		// an aborted rotation): an interrupted post-checkpoint deletion,
		// finished here.
		os.Remove(path)
		return nil
	}
	l.oldSegs = append(l.oldSegs, walSegment{id: id, maxSeq: maxSeq})
	return nil
}

// BootStats reports what recovery did at Open.
func (l *LSM) BootStats() BootStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.boot
}

// Runs reports the current run count (tests and compaction policy
// introspection).
func (l *LSM) Runs() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.runs)
}

// Put commits a single-key write.
func (l *LSM) Put(key string, value []byte) error {
	return l.Apply([]Op{{Key: key, Value: value}})
}

// Delete commits a single-key delete (a tombstone shadowing any older
// run's value).
func (l *LSM) Delete(key string) error {
	return l.Apply([]Op{{Key: key, Delete: true}})
}

// Apply commits a batch atomically: one CRC-framed WAL record holds
// every op, so recovery sees all of them or none. When Apply returns
// nil the batch is durable (unless NoSync). An error after the WAL
// fsync (from checkpoint housekeeping) still means the batch itself
// committed; callers that need to distinguish should reopen and read.
// With OnlineCheckpoint set, a full memtable only starts a background
// flush — Apply never waits for one.
func (l *LSM) Apply(batch []Op) error {
	if len(batch) == 0 {
		return nil
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errLSMClosed
	}
	if l.poisoned != nil {
		err := l.poisoned
		l.mu.Unlock()
		return err
	}
	var payload []byte
	for _, op := range batch {
		if op.Key == "" {
			l.mu.Unlock()
			return errors.New("jobstore: empty key")
		}
		payload = appendEntry(payload, kvEntry{key: op.Key, val: op.Value, del: op.Delete})
	}
	if len(payload) > maxRecordSize {
		l.mu.Unlock()
		return fmt.Errorf("jobstore: batch of %d bytes exceeds the %d byte cap", len(payload), maxRecordSize)
	}
	seq := l.walSeq + 1
	if err := tornWrite(l.wal, frame(seq, payload), FailWALWrite, l.cfg.Fail); err != nil {
		l.notePoisonLocked(err)
		l.mu.Unlock()
		return err
	}
	if err := l.syncWAL(); err != nil {
		l.notePoisonLocked(err)
		l.mu.Unlock()
		return err
	}
	l.walSeq = seq
	for _, op := range batch {
		l.mem.apply(kvEntry{key: op.Key, val: op.Value, del: op.Delete})
	}
	over := l.mem.bytes >= l.cfg.MemtableBytes
	if over && l.cfg.OnlineCheckpoint {
		kickErr := l.kickCheckpointLocked()
		if kickErr != nil && l.cfg.OnCheckpoint != nil {
			// The batch is committed; a failed checkpoint *start* is a
			// checkpoint failure, reported like a failed flush — on its
			// own goroutine, because the Apply caller may hold locks the
			// callback needs.
			l.wg.Add(1)
			go func() {
				defer l.wg.Done()
				l.cfg.OnCheckpoint(kickErr)
			}()
		}
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()
	if over {
		return l.Checkpoint()
	}
	return nil
}

func (l *LSM) syncWAL() error {
	if err := l.cfg.Fail.fail(FailWALSync); err != nil {
		return err
	}
	if l.cfg.NoSync {
		return nil
	}
	if err := l.wal.Sync(); err != nil {
		return fmt.Errorf("jobstore: wal fsync: %w", err)
	}
	return nil
}

// notePoisonLocked records an injected crash: the simulated process is
// dead, so until reopen every mutation fails with the crash error —
// nothing may be acknowledged after the point of death. Real storage
// errors do not poison; the store rolls the failed operation back and
// keeps serving. Caller holds l.mu.
func (l *LSM) notePoisonLocked(err error) {
	if err != nil && errors.Is(err, ErrInjectedCrash) && l.poisoned == nil {
		l.poisoned = err
	}
}

// Get returns the newest value for key: memtable first, then the frozen
// checkpoint view, then runs from newest to oldest, with each run's
// Bloom filter short-circuiting definite misses.
func (l *LSM) Get(key string) ([]byte, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, m := range []*memtable{l.mem, l.frozen} {
		if m == nil {
			continue
		}
		if e, ok := m.get(key); ok {
			if e.del {
				return nil, false, nil
			}
			return append([]byte(nil), e.val...), true, nil
		}
	}
	for i := len(l.runs) - 1; i >= 0; i-- {
		e, ok, err := l.runs[i].get(key)
		if err != nil {
			return nil, false, err
		}
		if ok {
			if e.del {
				return nil, false, nil
			}
			return append([]byte(nil), e.val...), true, nil
		}
	}
	return nil, false, nil
}

// Scan streams live entries with lo <= key < hi (hi == "" means no
// upper bound) in ascending key order, merging the memtable, the frozen
// checkpoint view and every run with newest-wins shadowing; tombstoned
// keys are skipped. fn returning false stops the scan. fn must not call
// back into the store.
func (l *LSM) Scan(lo, hi string, fn func(key string, value []byte) bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.scanLocked(lo, hi, fn)
}

func (l *LSM) scanLocked(lo, hi string, fn func(key string, value []byte) bool) error {
	// Sources in priority order: the memtable shadows the frozen view,
	// which shadows the runs; newer runs shadow older ones.
	type source struct {
		entries []kvEntry // memtable source
		pos     int
		it      *runIterator // run source
		cur     kvEntry
		ok      bool
	}
	var sources []*source
	for _, m := range []*memtable{l.mem, l.frozen} {
		if m == nil {
			continue
		}
		s := &source{}
		for _, e := range m.sorted() {
			if e.key >= lo {
				s.entries = append(s.entries, e)
			}
		}
		s.ok = len(s.entries) > 0
		if s.ok {
			s.cur = s.entries[0]
			s.pos = 1
		}
		sources = append(sources, s)
	}
	for i := len(l.runs) - 1; i >= 0; i-- {
		it := l.runs[i].iterator(lo)
		s := &source{it: it}
		s.cur, s.ok = it.next()
		if it.err != nil {
			return it.err
		}
		sources = append(sources, s)
	}
	advance := func(s *source) error {
		if s.it == nil {
			if s.pos < len(s.entries) {
				s.cur = s.entries[s.pos]
				s.pos++
			} else {
				s.ok = false
			}
			return nil
		}
		s.cur, s.ok = s.it.next()
		return s.it.err
	}
	for {
		// Minimum key among live sources.
		minKey := ""
		found := false
		for _, s := range sources {
			if s.ok && (!found || s.cur.key < minKey) {
				minKey = s.cur.key
				found = true
			}
		}
		if !found || (hi != "" && minKey >= hi) {
			return nil
		}
		// Highest-priority source holding minKey wins; every source at
		// minKey advances.
		var winner kvEntry
		taken := false
		for _, s := range sources {
			if s.ok && s.cur.key == minKey {
				if !taken {
					winner = s.cur
					taken = true
				}
				if err := advance(s); err != nil {
					return err
				}
			}
		}
		if !winner.del {
			if !fn(winner.key, append([]byte(nil), winner.val...)) {
				return nil
			}
		}
	}
}

// rotateWALLocked opens a fresh segment as the write head and retires
// the current one into oldSegs. Caller holds l.mu.
func (l *LSM) rotateWALLocked() error {
	if err := l.cfg.Fail.fail(FailWALRotate); err != nil {
		return err
	}
	id := l.walID + 1
	path := filepath.Join(l.dir, segmentFileName(id))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("jobstore: wal rotate: %w", err)
	}
	// The new segment's directory entry must be durable before any
	// acknowledged write lands in it.
	if err := l.syncDirFP(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	l.oldSegs = append(l.oldSegs, walSegment{id: l.walID, maxSeq: l.walSeq})
	l.wal.Close()
	l.wal = f
	l.walID = id
	return nil
}

// startCheckpointLocked freezes the memtable behind an immutable view
// and rotates the WAL segment — the only checkpoint work the commit
// lock ever covers. It returns the flush job to run (nil when the
// memtable is empty). Caller holds l.mu and has checked closed,
// poisoned and inflight.
func (l *LSM) startCheckpointLocked() (*ckptJob, error) {
	if l.mem.len() == 0 {
		return nil, nil
	}
	if err := l.rotateWALLocked(); err != nil {
		l.notePoisonLocked(err)
		return nil, err
	}
	job := &ckptJob{done: make(chan struct{})}
	l.frozen = l.mem
	l.frozenSeq = l.walSeq
	l.mem = newMemtable()
	l.inflight = job
	return job, nil
}

// kickCheckpointLocked starts a background checkpoint flush if none is
// in flight. A returned error means the checkpoint failed to start; the
// triggering commit is unaffected. Caller holds l.mu.
func (l *LSM) kickCheckpointLocked() error {
	if l.inflight != nil {
		return nil
	}
	job, err := l.startCheckpointLocked()
	if job == nil || err != nil {
		return err
	}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		l.flush(job)
	}()
	return nil
}

// Checkpoint flushes the memtable into a new sorted run, installs a
// manifest covering every committed write, and deletes the covered WAL
// segments — after which recovery boots from the run stack plus an
// empty tail. The flush runs inline: Checkpoint returns once the
// checkpoint (or a concurrent one it waited for) is durable. Compaction
// runs when the stack is past MaxRuns.
func (l *LSM) Checkpoint() error {
	for {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return errLSMClosed
		}
		if l.poisoned != nil {
			err := l.poisoned
			l.mu.Unlock()
			return err
		}
		if cur := l.inflight; cur != nil {
			l.mu.Unlock()
			<-cur.done
			if cur.err != nil {
				return cur.err
			}
			continue
		}
		if l.mem.len() == 0 {
			needCompact := len(l.runs) > l.cfg.MaxRuns
			if needCompact && l.cfg.BackgroundCompaction {
				l.kickCompaction()
				needCompact = false
			}
			l.mu.Unlock()
			if needCompact {
				return l.Compact()
			}
			return nil
		}
		job, err := l.startCheckpointLocked()
		l.mu.Unlock()
		if err != nil {
			return err
		}
		l.flush(job)
		return job.err
	}
}

// CheckpointAsync starts an online checkpoint flush in the background,
// reporting started=false when there is nothing to flush or one is
// already in flight. The flush's outcome is delivered through
// LSMConfig.OnCheckpoint; an error here means the checkpoint could not
// even start (its freeze or WAL rotation failed).
func (l *LSM) CheckpointAsync() (started bool, err error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return false, errLSMClosed
	}
	if l.poisoned != nil {
		err := l.poisoned
		l.mu.Unlock()
		return false, err
	}
	if l.inflight != nil || l.mem.len() == 0 {
		l.mu.Unlock()
		return false, nil
	}
	job, err := l.startCheckpointLocked()
	if job == nil || err != nil {
		l.mu.Unlock()
		return false, err
	}
	l.wg.Add(1)
	l.mu.Unlock()
	go func() {
		defer l.wg.Done()
		l.flush(job)
	}()
	return true, nil
}

// Quiesce blocks until no checkpoint flush is in flight. New
// checkpoints may start as soon as it returns; Close performs its own
// drain.
func (l *LSM) Quiesce() {
	for {
		l.mu.Lock()
		cur := l.inflight
		l.mu.Unlock()
		if cur == nil {
			return
		}
		<-cur.done
	}
}

// flush runs one checkpoint job to completion and reports its outcome
// to the configured callback. It may run inline (Checkpoint) or on a
// background goroutine (CheckpointAsync, a full memtable under
// OnlineCheckpoint).
func (l *LSM) flush(job *ckptJob) {
	l.maintMu.Lock()
	err := l.flushFrozen()
	l.maintMu.Unlock()
	job.err = err
	close(job.done)
	if l.cfg.OnCheckpoint != nil {
		l.cfg.OnCheckpoint(err)
	}
}

// flushFrozen writes the frozen memtable into a run, installs the
// manifest and deletes the covered WAL segments. On failure the frozen
// entries merge back into the live memtable (newer writes win) so
// nothing committed is lost and a later checkpoint retries. Caller
// holds maintMu only: the commit path stays open for the whole flush.
func (l *LSM) flushFrozen() error {
	l.mu.Lock()
	entries := l.frozen.sorted()
	frozenSeq := l.frozenSeq
	id := l.manifest.NextRun
	baseRuns := append([]uint64(nil), l.manifest.Runs...)
	l.mu.Unlock()

	abort := func(err error) error {
		l.mu.Lock()
		for k, e := range l.frozen.entries {
			if _, shadowed := l.mem.entries[k]; !shadowed {
				l.mem.apply(e)
			}
		}
		l.frozen = nil
		l.inflight = nil
		l.notePoisonLocked(err)
		l.mu.Unlock()
		return err
	}

	if err := l.writeRunFile(id, entries); err != nil {
		return abort(err)
	}
	next := lsmManifest{Runs: append(baseRuns, id), WalSeq: frozenSeq, NextRun: id + 1}
	r, err := l.installManifest(next, id)
	if err != nil {
		return abort(err)
	}

	l.mu.Lock()
	if l.closed {
		// Close ran while this inline flush was between manifest
		// install and bookkeeping. The checkpoint is durable on disk —
		// recovery picks it up — but the in-memory handle is dead.
		l.frozen = nil
		l.inflight = nil
		l.mu.Unlock()
		r.close()
		return nil
	}
	l.runs = append(l.runs, r)
	l.manifest = next
	l.frozen = nil
	l.inflight = nil
	var covered []uint64
	keep := l.oldSegs[:0]
	for _, seg := range l.oldSegs {
		if seg.maxSeq <= frozenSeq {
			covered = append(covered, seg.id)
		} else {
			keep = append(keep, seg)
		}
	}
	l.oldSegs = keep
	needCompact := len(l.runs) > l.cfg.MaxRuns
	l.mu.Unlock()

	// The checkpoint is installed; segment deletion is the WAL-trim
	// half. A failure here leaves covered segments behind, which the
	// next boot (or checkpoint) removes.
	if err := l.cfg.Fail.fail(FailWALTruncate); err != nil {
		l.mu.Lock()
		l.notePoisonLocked(err)
		l.mu.Unlock()
		return err
	}
	for _, sid := range covered {
		os.Remove(filepath.Join(l.dir, segmentFileName(sid)))
	}
	if needCompact {
		l.mu.Lock()
		if l.cfg.BackgroundCompaction {
			l.kickCompaction()
			l.mu.Unlock()
			return nil
		}
		err := l.compactLocked()
		l.notePoisonLocked(err)
		l.mu.Unlock()
		return err
	}
	return nil
}

// writeRunFile writes entries into run-<id>.run via the temp file +
// fsync + rename + dirsync protocol, every step failpoint-guarded.
func (l *LSM) writeRunFile(id uint64, entries []kvEntry) error {
	tmp := filepath.Join(l.dir, runTmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("jobstore: run: %w", err)
	}
	if _, err := writeRun(f, entries, l.cfg.BlockSize, l.cfg.Fail); err != nil {
		f.Close()
		return err
	}
	if err := l.cfg.Fail.fail(FailRunSync); err != nil {
		f.Close()
		return err
	}
	if !l.cfg.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("jobstore: run fsync: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("jobstore: run: %w", err)
	}
	if err := l.cfg.Fail.fail(FailRunRename); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, runFileName(id))); err != nil {
		return fmt.Errorf("jobstore: run install: %w", err)
	}
	return l.syncDirFP()
}

// installManifest durably replaces the MANIFEST and opens the freshly
// installed run newID (when nonzero it must be in next.Runs).
func (l *LSM) installManifest(next lsmManifest, newID uint64) (*runReader, error) {
	payload, err := json.Marshal(next)
	if err != nil {
		return nil, fmt.Errorf("jobstore: encoding manifest: %w", err)
	}
	tmp := filepath.Join(l.dir, manifestTmpName)
	if err := l.cfg.Fail.fail(FailManifestWrite); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobstore: manifest: %w", err)
	}
	if _, err := f.Write(frame(next.WalSeq, payload)); err != nil {
		f.Close()
		return nil, fmt.Errorf("jobstore: manifest: %w", err)
	}
	if err := l.cfg.Fail.fail(FailManifestSync); err != nil {
		f.Close()
		return nil, err
	}
	if !l.cfg.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("jobstore: manifest fsync: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("jobstore: manifest: %w", err)
	}
	// The new run must be readable before the manifest points at it: a
	// failed open here aborts the install with the old manifest intact.
	var r *runReader
	if newID != 0 {
		r, err = openRun(filepath.Join(l.dir, runFileName(newID)))
		if err != nil {
			return nil, err
		}
	}
	if err := l.cfg.Fail.fail(FailManifestRename); err != nil {
		if r != nil {
			r.close()
		}
		return nil, err
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, manifestName)); err != nil {
		if r != nil {
			r.close()
		}
		return nil, fmt.Errorf("jobstore: manifest install: %w", err)
	}
	if err := l.syncDirFP(); err != nil {
		if r != nil {
			r.close()
		}
		return nil, err
	}
	return r, nil
}

func (l *LSM) syncDirFP() error {
	if err := l.cfg.Fail.fail(FailDirSync); err != nil {
		return err
	}
	if l.cfg.NoSync {
		return nil
	}
	return syncDir(l.dir)
}

// kickCompaction starts one background compaction if none is running.
// The caller holds l.mu.
func (l *LSM) kickCompaction() {
	if l.compacting {
		return
	}
	l.compacting = true
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		defer func() {
			l.mu.Lock()
			l.compacting = false
			l.mu.Unlock()
		}()
		l.Compact()
	}()
}

// Compact merges the whole run stack into a single run, dropping
// tombstones (the output is the bottom level), and installs a manifest
// pointing at it. The memtable and WAL are untouched: the watermark
// does not move.
func (l *LSM) Compact() error {
	l.maintMu.Lock()
	defer l.maintMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errLSMClosed
	}
	if l.poisoned != nil {
		return l.poisoned
	}
	err := l.compactLocked()
	l.notePoisonLocked(err)
	return err
}

func (l *LSM) compactLocked() error {
	if len(l.runs) <= 1 {
		return nil
	}
	// Merge runs only (newest wins), keeping no tombstones: anything
	// deleted is gone from the bottom level.
	merged, err := l.mergeRuns()
	if err != nil {
		return err
	}
	id := l.manifest.NextRun
	if err := l.writeRunFile(id, merged); err != nil {
		return err
	}
	next := lsmManifest{Runs: []uint64{id}, WalSeq: l.manifest.WalSeq, NextRun: id + 1}
	r, err := l.installManifest(next, id)
	if err != nil {
		return err
	}
	old := l.runs
	oldIDs := l.manifest.Runs
	l.runs = []*runReader{r}
	l.manifest = next
	// The old runs are garbage now; removal failures are harmless —
	// recovery deletes orphans.
	for _, or := range old {
		or.close()
	}
	for _, oid := range oldIDs {
		os.Remove(filepath.Join(l.dir, runFileName(oid)))
	}
	return nil
}

// mergeRuns k-way merges every run, newest-wins, dropping tombstones.
func (l *LSM) mergeRuns() ([]kvEntry, error) {
	var out []kvEntry
	type src struct {
		it  *runIterator
		cur kvEntry
		ok  bool
	}
	// Priority order: newest run first.
	var sources []*src
	for i := len(l.runs) - 1; i >= 0; i-- {
		it := l.runs[i].iterator("")
		s := &src{it: it}
		s.cur, s.ok = it.next()
		if it.err != nil {
			return nil, it.err
		}
		sources = append(sources, s)
	}
	for {
		minKey := ""
		found := false
		for _, s := range sources {
			if s.ok && (!found || s.cur.key < minKey) {
				minKey = s.cur.key
				found = true
			}
		}
		if !found {
			sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
			return out, nil
		}
		taken := false
		for _, s := range sources {
			if s.ok && s.cur.key == minKey {
				if !taken {
					if !s.cur.del {
						out = append(out, s.cur)
					}
					taken = true
				}
				s.cur, s.ok = s.it.next()
				if s.it.err != nil {
					return nil, s.it.err
				}
			}
		}
	}
}

// Close drains in-flight checkpoint flushes and compactions, then
// releases the WAL handle, run readers and the store lock. Mutations
// fail after Close. Close is idempotent.
func (l *LSM) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	// No locks held while draining: a background flush needs both
	// maintMu and mu to finish.
	l.wg.Wait()
	l.mu.Lock()
	defer l.mu.Unlock()
	var first error
	for _, r := range l.runs {
		if err := r.close(); err != nil && first == nil {
			first = err
		}
	}
	if l.wal != nil {
		if err := l.wal.Close(); err != nil && first == nil {
			first = err
		}
	}
	if l.lockf != nil {
		l.lockf.Close()
	}
	return first
}
