// Package svm implements the machine-learning baseline of the paper's
// Figure 5: a linear support-vector classifier over bag-of-words features,
// standing in for LIBSVM (which is closed off to this offline build). It
// trains one-vs-rest linear SVMs with the Pegasos stochastic sub-gradient
// algorithm (Shalev-Shwartz et al.), the standard primal solver for
// linear text classification — the same model family a LIBSVM linear
// kernel would fit on unigram features.
package svm

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"cdas/internal/randx"
	"cdas/internal/textutil"
)

// Options tunes training. Zero fields take the documented defaults.
type Options struct {
	Epochs int     // passes over the training set; default 10
	Lambda float64 // L2 regularisation strength; default 1e-4
	Seed   uint64  // shuffling seed; default 1
	// MinDF drops tokens appearing in fewer than MinDF documents
	// (vocabulary pruning); default 2.
	MinDF int
}

func (o Options) withDefaults() Options {
	if o.Epochs == 0 {
		o.Epochs = 10
	}
	if o.Lambda == 0 {
		o.Lambda = 1e-4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MinDF == 0 {
		o.MinDF = 2
	}
	return o
}

// Model is a trained one-vs-rest linear SVM text classifier.
type Model struct {
	vocab   map[string]int
	classes []string
	// weights[c][f] is class c's weight for vocabulary feature f; the
	// last element of each row is the bias term.
	weights [][]float64
}

// Train fits the classifier on parallel slices of documents and labels.
func Train(docs, labels []string, opts Options) (*Model, error) {
	if len(docs) == 0 {
		return nil, errors.New("svm: no training documents")
	}
	if len(docs) != len(labels) {
		return nil, fmt.Errorf("svm: %d documents but %d labels", len(docs), len(labels))
	}
	opts = opts.withDefaults()

	// Build the pruned vocabulary from document frequencies.
	df := make(map[string]int)
	tokenised := make([][]string, len(docs))
	for i, d := range docs {
		toks := textutil.ContentTokens(d)
		tokenised[i] = toks
		seen := make(map[string]struct{}, len(toks))
		for _, t := range toks {
			if _, dup := seen[t]; !dup {
				seen[t] = struct{}{}
				df[t]++
			}
		}
	}
	vocabWords := make([]string, 0, len(df))
	for w, c := range df {
		if c >= opts.MinDF {
			vocabWords = append(vocabWords, w)
		}
	}
	sort.Strings(vocabWords) // deterministic feature order
	vocab := make(map[string]int, len(vocabWords))
	for i, w := range vocabWords {
		vocab[w] = i
	}
	if len(vocab) == 0 {
		return nil, errors.New("svm: vocabulary empty after pruning (lower MinDF?)")
	}

	classSet := make(map[string]struct{})
	for _, l := range labels {
		classSet[l] = struct{}{}
	}
	classes := make([]string, 0, len(classSet))
	for c := range classSet {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	if len(classes) < 2 {
		return nil, errors.New("svm: need at least two classes")
	}

	m := &Model{vocab: vocab, classes: classes, weights: make([][]float64, len(classes))}
	features := make([]map[int]float64, len(docs))
	for i, toks := range tokenised {
		features[i] = m.vectorize(toks)
	}

	rng := randx.New(opts.Seed)
	dim := len(vocab) + 1 // +1 bias
	for ci, class := range classes {
		w := make([]float64, dim)
		t := 0
		order := make([]int, len(docs))
		for i := range order {
			order[i] = i
		}
		for epoch := 0; epoch < opts.Epochs; epoch++ {
			randx.Shuffle(rng, order)
			for _, i := range order {
				t++
				eta := 1 / (opts.Lambda * float64(t))
				y := -1.0
				if labels[i] == class {
					y = 1.0
				}
				margin := y * dot(w, features[i], dim)
				// Pegasos update: shrink, and step on margin violations.
				scale := 1 - eta*opts.Lambda
				if scale < 0 {
					scale = 0
				}
				for f := range w {
					w[f] *= scale
				}
				if margin < 1 {
					for f, v := range features[i] {
						w[f] += eta * y * v
					}
					w[dim-1] += eta * y // bias (feature value 1)
				}
			}
		}
		m.weights[ci] = w
	}
	return m, nil
}

// vectorize maps tokens to L2-normalised term counts.
func (m *Model) vectorize(toks []string) map[int]float64 {
	counts := make(map[int]float64)
	for _, t := range toks {
		if f, ok := m.vocab[t]; ok {
			counts[f]++
		}
	}
	norm := 0.0
	for _, v := range counts {
		norm += v * v
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for f := range counts {
			counts[f] /= norm
		}
	}
	return counts
}

func dot(w []float64, x map[int]float64, dim int) float64 {
	s := w[dim-1] // bias
	for f, v := range x {
		s += w[f] * v
	}
	return s
}

// Classes returns the label set in model order.
func (m *Model) Classes() []string { return append([]string(nil), m.classes...) }

// VocabularySize reports the number of retained features.
func (m *Model) VocabularySize() int { return len(m.vocab) }

// Predict classifies a document: the class with the highest decision
// score.
func (m *Model) Predict(doc string) string {
	x := m.vectorize(textutil.ContentTokens(doc))
	best, bestScore := m.classes[0], math.Inf(-1)
	dim := len(m.vocab) + 1
	for ci, class := range m.classes {
		if s := dot(m.weights[ci], x, dim); s > bestScore {
			best, bestScore = class, s
		}
	}
	return best
}

// Accuracy evaluates the model on parallel test slices.
func (m *Model) Accuracy(docs, labels []string) (float64, error) {
	if len(docs) != len(labels) {
		return 0, fmt.Errorf("svm: %d documents but %d labels", len(docs), len(labels))
	}
	if len(docs) == 0 {
		return 0, errors.New("svm: no test documents")
	}
	correct := 0
	for i, d := range docs {
		if m.Predict(d) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(docs)), nil
}
