// Command cdas-server runs the Figure 4-style result service: it executes
// a few TSA queries on the simulated platform and serves their live
// summaries over HTTP.
//
// Usage:
//
//	cdas-server [-addr :8080] [-seed 1] [-accuracy 0.9]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"cdas/internal/crowd"
	"cdas/internal/engine"
	"cdas/internal/httpapi"
	"cdas/internal/textgen"
	"cdas/internal/tsa"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		accuracy = flag.Float64("accuracy", 0.9, "required accuracy C")
	)
	flag.Parse()

	server := httpapi.NewServer()
	if err := runQueries(server, *seed, *accuracy); err != nil {
		log.Fatalf("cdas-server: %v", err)
	}
	log.Printf("cdas-server: serving CDAS results on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, server.Handler()))
}

func runQueries(server *httpapi.Server, seed uint64, accuracy float64) error {
	platform, err := crowd.NewPlatform(crowd.DefaultConfig(seed))
	if err != nil {
		return err
	}
	movies := []string{"Kung Fu Panda 2", "Thor", "Green Latern"}
	stream, err := textgen.Generate(textgen.Config{
		Seed:           seed + 1,
		Movies:         movies,
		TweetsPerMovie: 60,
	})
	if err != nil {
		return err
	}
	golden, err := textgen.Generate(textgen.Config{
		Seed:           seed + 2,
		Movies:         []string{"The Calibration Reel"},
		TweetsPerMovie: 40,
	})
	if err != nil {
		return err
	}
	start := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
	for _, movie := range movies {
		eng, err := engine.New(engine.CrowdPlatform{Platform: platform}, nil, engine.Config{
			JobName:          "tsa",
			RequiredAccuracy: accuracy,
			HITSize:          50,
			Seed:             seed,
		})
		if err != nil {
			return err
		}
		res, err := tsa.Run(eng, tsa.Query(movie, accuracy, start, 24*time.Hour), stream, golden)
		if err != nil {
			return err
		}
		server.UpdateFromSummary(movie, res.Summary, 1.0, true)
		fmt.Printf("%s: %d tweets, accuracy vs ground truth %.3f\n", movie, res.Tweets, res.Accuracy)
	}
	return nil
}
