// Command cdas-server runs the CDAS job service: a durable job manager
// (Figure 2) fronted by the Figure 4-style result dashboard. Jobs are
// submitted over HTTP and executed by a dispatcher pool through the
// cross-query crowd scheduler, which coalesces concurrent jobs'
// questions into shared HIT batches, answers repeated questions from a
// verified-answer cache, and enforces per-job and global crowd budgets
// (over-budget jobs park instead of failing). When -store is set every
// lifecycle transition and budget charge is committed to the indexed
// LSM job store (checkpointed off the commit path), so a killed server
// replays on restart, resumes unfinished jobs and keeps charging from
// where it stopped. Stores written by the legacy "wal" engine are
// upgraded in place with cdas-storectl migrate, or served as-is via
// -store-engine=wal.
//
// Usage:
//
//	cdas-server [-addr :8080] [-seed 1] [-accuracy 0.9] [-inflight 4]
//	            [-store DIR] [-dispatchers 2] [-demo]
//	            [-budget 0] [-dedup=true]
//
// HTTP API (v1; see api/openapi.yaml for the wire contract and
// cmd/cdasctl for the CLI speaking it):
//
//	POST   /v1/jobs                   submit a job (JSON body, see api.JobSubmission)
//	GET    /v1/jobs                   paginated, filterable job list
//	GET    /v1/jobs/{name}            one job's state, progress, cost and live results
//	DELETE /v1/jobs/{name}            cancel a pending, parked or running job
//	POST   /v1/jobs/{name}:unpark     resume a budget-parked job
//	GET    /v1/queries                all live query states
//	GET    /v1/queries/{name}         one query's state
//	GET    /v1/queries/{name}/events  SSE stream of live result revisions
//	GET    /v1/enumerations                list enumeration jobs
//	GET    /v1/enumerations/{name}         one enumeration's result set and estimate
//	GET    /v1/enumerations/{name}/events  SSE stream of discovered items
//	GET    /v1/scheduler              scheduler batching, cache and budget state
//	GET    /v1/metrics                operational counters
//	GET    /v1/healthz                liveness probe
//	GET    /                          HTML results overview
//
// Continuous jobs are submitted as POST /v1/jobs with kind
// "continuous"; enumerations with kind "enumeration" and an "enum"
// spec block. The pre-v1 routes (/jobs..., /api/...) and the
// /v1/streams group stay mounted as deprecated aliases with a
// Deprecation header.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cdas/internal/crowd"
	"cdas/internal/engine"
	"cdas/internal/enum"
	"cdas/internal/httpapi"
	"cdas/internal/jobs"
	"cdas/internal/metrics"
	"cdas/internal/scheduler"
	"cdas/internal/standing"
	"cdas/internal/textgen"
	"cdas/internal/tsa"
)

// windowDeadline bounds how long a standing query's window close waits
// for the other live streams' window batches before force-flushing.
const windowDeadline = 500 * time.Millisecond

// budgetLines converts the service's persisted spend into scheduler
// ledger lines (limits re-arrive with each job's enqueue).
func budgetLines(b jobs.BudgetState) map[string]scheduler.JobBudget {
	out := make(map[string]scheduler.JobBudget, len(b.Jobs))
	for name, spent := range b.Jobs {
		out[name] = scheduler.JobBudget{Spent: spent}
	}
	return out
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		seed        = flag.Uint64("seed", 1, "simulation seed")
		accuracy    = flag.Float64("accuracy", 0.9, "required accuracy C for demo jobs")
		inflight    = flag.Int("inflight", 4, "HITs published and draining at once per job")
		store       = flag.String("store", "", "durable job store directory (empty: in-memory only)")
		storeEngine = flag.String("store-engine", jobs.EngineLSM, `storage engine for -store: "lsm" (indexed, checkpointed LSM store; the default) or "wal" (legacy append-only log + snapshots; upgrade with cdas-storectl migrate)`)
		dispatchers = flag.Int("dispatchers", 2, "dispatcher workers pulling pending jobs")
		demo        = flag.Bool("demo", true, "submit the demo TSA jobs at boot")
		budget      = flag.Float64("budget", 0, "global crowd budget across all jobs (0: unlimited)")
		dedup       = flag.Bool("dedup", true, "coalesce identical questions across jobs and cache verified answers")
	)
	flag.Parse()
	if err := run(*addr, *seed, *accuracy, *inflight, *store, *storeEngine, *dispatchers, *demo, *budget, *dedup); err != nil {
		log.Fatalf("cdas-server: %v", err)
	}
}

func run(addr string, seed uint64, accuracy float64, inflight int, store, storeEngine string, dispatchers int, demo bool, budget float64, dedup bool) error {
	platform, err := crowd.NewPlatform(crowd.DefaultConfig(seed))
	if err != nil {
		return err
	}
	movies := []string{"Kung Fu Panda 2", "Thor", "Green Latern"}
	stream, err := textgen.Generate(textgen.Config{
		Seed:           seed + 1,
		Movies:         movies,
		TweetsPerMovie: 60,
	})
	if err != nil {
		return err
	}
	golden, err := textgen.Generate(textgen.Config{
		Seed:           seed + 2,
		Movies:         []string{"The Calibration Reel"},
		TweetsPerMovie: 40,
	})
	if err != nil {
		return err
	}

	counters := metrics.NewRegistry()
	svc, err := jobs.OpenService(jobs.ServiceConfig{Dir: store, Engine: storeEngine, Counters: counters, Logf: log.Printf})
	if err != nil {
		return err
	}
	defer svc.Close()
	for _, name := range svc.Resumed() {
		log.Printf("cdas-server: resuming interrupted job %q from the %s store", name, storeEngine)
	}

	api := httpapi.NewServer()
	api.SetLogf(log.Printf)
	sched, err := scheduler.New(scheduler.Config{
		Platform: engine.CrowdPlatform{Platform: platform},
		Engine: engine.Config{
			RequiredAccuracy: accuracy,
			HITSize:          50,
			MaxInflightHITs:  inflight,
			Seed:             seed,
		},
		Golden:        tsa.GoldenQuestions(golden),
		GlobalBudget:  budget,
		DisableDedup:  !dedup,
		FlushInterval: 50 * time.Millisecond,
		OnCharge: func(job string, amount float64) {
			// Persist every charge so a restarted server keeps the
			// ledger (budget state replays from the WAL).
			if err := svc.ChargeBudget(job, amount); err != nil {
				log.Printf("cdas-server: recording budget charge for %q: %v", job, err)
			}
		},
		Counters: counters,
	})
	if err != nil {
		return err
	}
	defer sched.Close()
	// A restart resumes accounting where the dead process stopped.
	persisted := svc.Budget()
	sched.Ledger().Restore(persisted.GlobalSpent, budgetLines(persisted))

	tsaRunner := tsa.NewScheduledJobRunner(tsa.ScheduledRunnerConfig{
		Scheduler: sched,
		Stream:    stream,
		API:       api,
	})
	// Standing queries close windows through a generation barrier; on a
	// live server the deadline keeps one slow stream from stalling every
	// other stream's window close.
	coord := standing.NewCoordinator(sched, windowDeadline)
	standingRunner := standing.NewRunner(standing.RunnerConfig{
		Scheduler: sched,
		Coord:     coord,
		Marks:     svc,
		Counters:  counters,
		Publish:   api.StandingPublisher(),
	})
	enumRunner := enum.NewRunner(enum.RunnerConfig{
		Scheduler: sched,
		Marks:     svc,
		OnCharge: func(job string, amount float64) {
			// Enumeration batches charge the ledger directly (no flush
			// loop); persist the spend the same way.
			if err := svc.ChargeBudget(job, amount); err != nil {
				log.Printf("cdas-server: recording enum budget charge for %q: %v", job, err)
			}
		},
		Counters: counters,
		Publish:  api.EnumPublisher(),
	})
	runner := func(ctx context.Context, job jobs.Job, report func(progress, cost float64)) error {
		switch job.Kind {
		case jobs.KindContinuous:
			return standingRunner(ctx, job, report)
		case jobs.KindEnumeration:
			return enumRunner(ctx, job, report)
		}
		return tsaRunner(ctx, job, report)
	}
	disp, err := jobs.NewDispatcher(svc, runner, dispatchers)
	if err != nil {
		return err
	}
	api.SetJobs(disp)
	api.SetCounters(counters)
	api.SetScheduler(sched)
	disp.Start()
	defer disp.Stop()

	if demo {
		start := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
		for _, movie := range movies {
			_, err := disp.Submit(jobs.Job{
				Name:  movie,
				Kind:  jobs.KindTSA,
				Query: tsa.Query(movie, accuracy, start, 24*time.Hour),
			})
			switch {
			case errors.Is(err, jobs.ErrDuplicateJob):
				// Restart against an existing store: the job's fate is
				// already in the WAL.
			case err != nil:
				return err
			}
		}
	}

	// NewHTTPServer's timeouts are SSE-aware: header/idle deadlines
	// bound abuse without severing long-lived event streams.
	server := httpapi.NewHTTPServer(addr, api.Handler())
	errc := make(chan error, 1)
	go func() { errc <- server.ListenAndServe() }()
	log.Printf("cdas-server: serving the CDAS job service on %s (store=%q, %d dispatchers, dedup=%v, budget=%v)",
		addr, store, dispatchers, dedup, budget)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		log.Printf("cdas-server: %v — draining dispatchers (running jobs requeue to the WAL)", s)
		disp.Stop()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := server.Shutdown(shutdownCtx); err != nil {
			return err
		}
		return nil
	}
}
