package exec

import (
	"math"
	"testing"
	"time"

	"cdas/internal/jobs"
)

func testQuery() jobs.Query {
	return jobs.Query{
		Keywords:         []string{"kung fu panda"},
		RequiredAccuracy: 0.9,
		Domain:           []string{"pos", "neu", "neg"},
		Start:            time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC),
		Window:           24 * time.Hour,
	}
}

func TestFilter(t *testing.T) {
	q := testQuery()
	in := q.Start.Add(time.Hour)
	items := []Item{
		{ID: "1", Text: "Kung Fu Panda 2 was awesome", At: in},
		{ID: "2", Text: "watching the football game", At: in},
		{ID: "3", Text: "kung fu panda again!", At: q.Start.Add(-time.Hour)},
		{ID: "4", Text: "KUNG FU PANDA!!!", At: in},
	}
	got := Filter(items, q)
	if len(got) != 2 || got[0].ID != "1" || got[1].ID != "4" {
		t.Errorf("Filter = %+v", got)
	}
}

func TestBufferBatching(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 2; i++ {
		if batch, full := b.Add(Item{ID: string(rune('a' + i))}); full || batch != nil {
			t.Fatalf("premature batch at %d", i)
		}
	}
	batch, full := b.Add(Item{ID: "c"})
	if !full || len(batch) != 3 {
		t.Fatalf("expected full batch of 3, got %v/%v", len(batch), full)
	}
	if b.Len() != 0 {
		t.Errorf("buffer not reset: len=%d", b.Len())
	}
	b.Add(Item{ID: "d"})
	rest := b.Flush()
	if len(rest) != 1 || rest[0].ID != "d" {
		t.Errorf("Flush = %+v", rest)
	}
	if len(b.Flush()) != 0 {
		t.Error("second flush should be empty")
	}
}

func TestNewBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBuffer(0) should panic")
		}
	}()
	NewBuffer(0)
}

func TestPercentagesAcceptedOnly(t *testing.T) {
	domain := []string{"pos", "neu", "neg"}
	outcomes := []Outcome{
		{ItemID: "1", Accepted: "pos"},
		{ItemID: "2", Accepted: "pos"},
		{ItemID: "3", Accepted: "neg"},
		{ItemID: "4", Accepted: "pos"},
	}
	got := Percentages(domain, outcomes)
	if math.Abs(got["pos"]-0.75) > 1e-12 || math.Abs(got["neg"]-0.25) > 1e-12 || got["neu"] != 0 {
		t.Errorf("Percentages = %v", got)
	}
}

func TestPercentagesWithPending(t *testing.T) {
	// h_ti(r) = rho_ti(r) for items with nothing accepted yet.
	domain := []string{"pos", "neg"}
	outcomes := []Outcome{
		{ItemID: "1", Accepted: "pos"},
		{ItemID: "2", Confidences: map[string]float64{"pos": 0.6, "neg": 0.4}},
	}
	got := Percentages(domain, outcomes)
	if math.Abs(got["pos"]-0.8) > 1e-12 {
		t.Errorf("pos = %v, want 0.8", got["pos"])
	}
	if math.Abs(got["neg"]-0.2) > 1e-12 {
		t.Errorf("neg = %v, want 0.2", got["neg"])
	}
}

func TestPercentagesIgnoresForeignAnswers(t *testing.T) {
	domain := []string{"pos", "neg"}
	outcomes := []Outcome{
		{ItemID: "1", Accepted: "weird"},
		{ItemID: "2", Confidences: map[string]float64{"alien": 1}},
	}
	got := Percentages(domain, outcomes)
	if got["pos"] != 0 || got["neg"] != 0 {
		t.Errorf("foreign answers leaked: %v", got)
	}
}

func TestPercentagesEmpty(t *testing.T) {
	got := Percentages([]string{"a", "b"}, nil)
	if got["a"] != 0 || got["b"] != 0 {
		t.Errorf("empty outcomes: %v", got)
	}
}

func TestReasons(t *testing.T) {
	outcomes := []Outcome{
		{ItemID: "1", Accepted: "pos"},
		{ItemID: "2", Accepted: "pos"},
		{ItemID: "3", Accepted: "neg"},
		{ItemID: "4"}, // pending items contribute no reasons
	}
	texts := map[string]string{
		"1": "siri is amazing, the performance rocks",
		"2": "siri understood me, amazing stuff",
		"3": "battery drains so fast, display is dim",
		"4": "no verdict yet",
	}
	got := Reasons(outcomes, texts, 2)
	pos := got["pos"]
	if len(pos) != 2 {
		t.Fatalf("pos reasons = %v", pos)
	}
	if pos[0] != "amazing" && pos[0] != "siri" {
		t.Errorf("top pos reason = %q, want amazing/siri", pos[0])
	}
	neg := got["neg"]
	if len(neg) != 2 {
		t.Fatalf("neg reasons = %v", neg)
	}
	if _, ok := got[""]; ok {
		t.Error("pending outcomes must not produce a reason bucket")
	}
}

func TestReasonsDefaultTopK(t *testing.T) {
	outcomes := []Outcome{{ItemID: "1", Accepted: "pos"}}
	texts := map[string]string{"1": "alpha beta gamma delta epsilon"}
	got := Reasons(outcomes, texts, 0)
	if len(got["pos"]) != 3 {
		t.Errorf("default topK should be 3, got %v", got["pos"])
	}
}

func TestSummarise(t *testing.T) {
	domain := []string{"pos", "neg"}
	outcomes := []Outcome{
		{ItemID: "1", Accepted: "pos"},
		{ItemID: "2", Accepted: "neg"},
	}
	texts := map[string]string{"1": "great movie", "2": "terrible plot"}
	s := Summarise(domain, outcomes, texts)
	if s.Items != 2 {
		t.Errorf("Items = %d", s.Items)
	}
	if math.Abs(s.Percentages["pos"]-0.5) > 1e-12 {
		t.Errorf("pos pct = %v", s.Percentages["pos"])
	}
	if len(s.Reasons["pos"]) == 0 || s.Reasons["pos"][0] != "great" && s.Reasons["pos"][0] != "movie" {
		t.Errorf("pos reasons = %v", s.Reasons["pos"])
	}
	// Summary must own its domain slice.
	domain[0] = "mutated"
	if s.Domain[0] == "mutated" {
		t.Error("Summarise must copy the domain")
	}
}
