package engine

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// BenchmarkEngineConcurrent measures the wall-clock win of overlapping
// HIT lifetimes. The platform delays every assignment delivery by 500µs —
// a real marketplace trickles submissions in — so one-at-a-time HIT
// processing pays the full serial drain while the pipeline overlaps them.
// The 8-batch workload at inflight=8 runs ~8x faster than inflight=1.
func BenchmarkEngineConcurrent(b *testing.B) {
	for _, inflight := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("inflight=%d", inflight), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				lp, _ := newLatencyPlatform(b, 31, 500*time.Microsecond)
				e, err := New(lp, nil, Config{
					JobName:         "bench",
					HITSize:         10,
					SamplingRate:    0.2,
					MaxInflightHITs: inflight,
					Seed:            9,
				})
				if err != nil {
					b.Fatal(err)
				}
				// 64 questions at 8 real slots per HIT -> 8 batches.
				real := makeQuestions("r", 64, "pos")
				golden := makeQuestions("g", 12, "neg")
				b.StartTimer()
				if _, err := e.ProcessAllContext(context.Background(), real, golden); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
