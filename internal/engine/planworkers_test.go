package engine

import (
	"math/rand/v2"
	"testing"

	"cdas/internal/crowd"
)

// Property: Engine.PlanWorkers — the prediction model behind every HIT
// — always plans an odd crowd within the MaxWorkers cap, and planning
// is monotone in the required accuracy.
func TestPlanWorkersProperties(t *testing.T) {
	platform, err := crowd.NewPlatform(crowd.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 5))
	for trial := 0; trial < 200; trial++ {
		c := 0.01 + 0.98*rng.Float64()
		mu := 0.51 + 0.48*rng.Float64()
		maxWorkers := 1 + rng.IntN(100)
		eng, err := New(CrowdPlatform{Platform: platform}, nil, Config{
			RequiredAccuracy: c,
			FallbackAccuracy: mu,
			MaxWorkers:       maxWorkers,
		})
		if err != nil {
			t.Fatalf("New(C=%v, μ=%v): %v", c, mu, err)
		}
		n, err := eng.PlanWorkers()
		if err != nil {
			t.Fatalf("PlanWorkers(C=%v, μ=%v): %v", c, mu, err)
		}
		if n < 1 || n%2 == 0 {
			t.Errorf("C=%v μ=%v: planned n=%d, want odd >= 1", c, mu, n)
		}
		if n > maxWorkers {
			t.Errorf("C=%v μ=%v: planned n=%d above cap %d", c, mu, n, maxWorkers)
		}

		// Lower C with the same crowd: never plan more workers.
		c2 := c * rng.Float64()
		if c2 <= 0 {
			continue
		}
		eng2, err := New(CrowdPlatform{Platform: platform}, nil, Config{
			RequiredAccuracy: c2,
			FallbackAccuracy: mu,
			MaxWorkers:       maxWorkers,
		})
		if err != nil {
			t.Fatal(err)
		}
		n2, err := eng2.PlanWorkers()
		if err != nil {
			t.Fatal(err)
		}
		if n2 > n {
			t.Errorf("monotonicity broken: n(C=%v)=%d < n(C=%v)=%d at μ=%v", c, n, c2, n2, mu)
		}
	}
}
