package sampling

import (
	"errors"
	"math"
	"testing"

	"cdas/internal/randx"
)

func goldenPool(n int) []Golden {
	pool := make([]Golden, n)
	for i := range pool {
		pool[i] = Golden{ID: "g" + string(rune('a'+i%26)) + string(rune('0'+i/26)), Truth: "t"}
	}
	return pool
}

func realIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = "r" + string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	return ids
}

func TestGoldenCount(t *testing.T) {
	cases := []struct {
		b     int
		alpha float64
		want  int
	}{
		{100, 0.2, 20}, {100, 0.05, 5}, {10, 0.15, 2}, {10, 0, 0}, {7, 0.5, 4},
	}
	for _, c := range cases {
		if got := GoldenCount(c.b, c.alpha); got != c.want {
			t.Errorf("GoldenCount(%d, %v) = %d, want %d", c.b, c.alpha, got, c.want)
		}
	}
}

func TestMixComposition(t *testing.T) {
	rng := randx.New(1)
	slots, consumed, err := Mix(rng, realIDs(90), goldenPool(30), 100, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 100 {
		t.Fatalf("len(slots) = %d, want 100", len(slots))
	}
	if consumed != 80 {
		t.Errorf("consumed = %d, want 80", consumed)
	}
	nGolden := 0
	seen := make(map[string]bool)
	for _, s := range slots {
		if seen[s.ID] {
			t.Errorf("duplicate slot %q", s.ID)
		}
		seen[s.ID] = true
		if s.Golden {
			nGolden++
			if s.Truth == "" {
				t.Errorf("golden slot %q has no truth", s.ID)
			}
		} else if s.Truth != "" {
			t.Errorf("real slot %q carries a truth", s.ID)
		}
	}
	if nGolden != 20 {
		t.Errorf("golden slots = %d, want 20", nGolden)
	}
}

func TestMixShuffles(t *testing.T) {
	// Golden questions must not cluster at the front (workers would learn
	// to spot them): check the first golden appears at varying positions
	// across seeds.
	positions := make(map[int]bool)
	for seed := uint64(0); seed < 20; seed++ {
		slots, _, err := Mix(randx.New(seed), realIDs(80), goldenPool(20), 100, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range slots {
			if s.Golden {
				positions[i] = true
				break
			}
		}
	}
	if len(positions) < 3 {
		t.Errorf("first golden position nearly constant across seeds: %v", positions)
	}
}

func TestMixDeterministic(t *testing.T) {
	a, _, err := Mix(randx.New(7), realIDs(80), goldenPool(20), 100, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Mix(randx.New(7), realIDs(80), goldenPool(20), 100, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Mix must be deterministic under a fixed seed")
		}
	}
}

func TestMixErrors(t *testing.T) {
	rng := randx.New(1)
	if _, _, err := Mix(rng, realIDs(80), goldenPool(20), 100, -0.1); !errors.Is(err, ErrBadRate) {
		t.Errorf("bad rate err = %v", err)
	}
	if _, _, err := Mix(rng, realIDs(80), goldenPool(20), 100, 1.0); !errors.Is(err, ErrBadRate) {
		t.Errorf("rate=1 err = %v", err)
	}
	if _, _, err := Mix(rng, realIDs(80), goldenPool(5), 100, 0.2); !errors.Is(err, ErrPoolExhausted) {
		t.Errorf("pool err = %v", err)
	}
	if _, _, err := Mix(rng, realIDs(10), goldenPool(20), 100, 0.2); !errors.Is(err, ErrRealsExhausted) {
		t.Errorf("reals err = %v", err)
	}
	if _, _, err := Mix(rng, realIDs(10), goldenPool(20), 0, 0.2); err == nil {
		t.Error("b=0 should fail")
	}
}

func TestMixZeroRate(t *testing.T) {
	slots, consumed, err := Mix(randx.New(1), realIDs(10), nil, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != 10 || len(slots) != 10 {
		t.Errorf("consumed=%d len=%d, want 10/10", consumed, len(slots))
	}
	for _, s := range slots {
		if s.Golden {
			t.Error("zero rate must not inject golden questions")
		}
	}
}

func TestEstimatorBasic(t *testing.T) {
	e := NewEstimator()
	for i := 0; i < 8; i++ {
		e.Record("w1", i < 6) // 6/8
	}
	for i := 0; i < 4; i++ {
		e.Record("w2", i < 1) // 1/4
	}
	if a, ok := e.Accuracy("w1"); !ok || math.Abs(a-0.75) > 1e-12 {
		t.Errorf("w1 accuracy = %v/%v, want 0.75/true", a, ok)
	}
	if a, ok := e.Accuracy("w2"); !ok || math.Abs(a-0.25) > 1e-12 {
		t.Errorf("w2 accuracy = %v/%v, want 0.25/true", a, ok)
	}
	if _, ok := e.Accuracy("ghost"); ok {
		t.Error("unseen worker should not have an estimate")
	}
	if got := e.AccuracyOr("ghost", 0.7); got != 0.7 {
		t.Errorf("fallback = %v, want 0.7", got)
	}
	if got := e.Samples("w1"); got != 8 {
		t.Errorf("Samples(w1) = %d, want 8", got)
	}
	if got := e.MeanAccuracy(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MeanAccuracy = %v, want 0.5", got)
	}
	workers := e.Workers()
	if len(workers) != 2 || workers[0] != "w1" || workers[1] != "w2" {
		t.Errorf("Workers = %v", workers)
	}
}

func TestEstimatorZeroValue(t *testing.T) {
	var e Estimator
	e.Record("w", true)
	if a, ok := e.Accuracy("w"); !ok || a != 1 {
		t.Errorf("zero-value estimator: %v/%v", a, ok)
	}
}

func TestEstimatorEmptyMean(t *testing.T) {
	if got := NewEstimator().MeanAccuracy(); got != 0 {
		t.Errorf("empty mean = %v, want 0", got)
	}
}

func TestEstimatorMerge(t *testing.T) {
	a, b := NewEstimator(), NewEstimator()
	a.Record("w", true)
	a.Record("w", false)
	b.Record("w", true)
	b.Record("v", true)
	a.Merge(b)
	if acc, _ := a.Accuracy("w"); math.Abs(acc-2.0/3) > 1e-12 {
		t.Errorf("merged w accuracy = %v, want 2/3", acc)
	}
	if acc, _ := a.Accuracy("v"); acc != 1 {
		t.Errorf("merged v accuracy = %v, want 1", acc)
	}
	a.Merge(nil) // must not panic
}

func TestEstimatorConvergesToTrueAccuracy(t *testing.T) {
	// Statistical soundness: a simulated worker with accuracy 0.73
	// answering many golden questions is estimated within ±0.03.
	rng := randx.New(99)
	e := NewEstimator()
	const truth = 0.73
	for i := 0; i < 5000; i++ {
		e.Record("w", rng.Bool(truth))
	}
	if a, _ := e.Accuracy("w"); math.Abs(a-truth) > 0.03 {
		t.Errorf("estimate %v too far from %v", a, truth)
	}
}
