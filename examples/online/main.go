// Online: demonstrates Section 4.2 — the running approximate answer and
// early termination. The same vote stream is replayed under each
// termination strategy to show the cost/quality trade-off.
package main

import (
	"fmt"
	"log"

	"cdas"
)

func main() {
	platform, _, err := cdas.NewSimulatedPlatform(cdas.DefaultSimulatorConfig(11))
	if err != nil {
		log.Fatal(err)
	}

	// One question, 25 planned workers, streamed by arrival time.
	question := cdas.CrowdQuestion{
		ID:     "q",
		Text:   "Which sentiment fits: 'Green Lantern is terrible. Lost In Space terrible.'",
		Domain: []string{"Positive", "Neutral", "Negative"},
		Truth:  "Negative",
	}
	const planned = 25

	// Publish once and capture the assignment stream via the engine's
	// Platform abstraction.
	run, err := platform.Publish(cdas.HIT{Title: "online demo", Questions: []cdas.CrowdQuestion{question}}, planned)
	if err != nil {
		log.Fatal(err)
	}
	type arrival struct {
		worker   string
		accuracy float64
		answer   string
	}
	var stream []arrival
	for {
		a, ok := run.Next()
		if !ok {
			break
		}
		stream = append(stream, arrival{a.Worker.ID, a.Worker.Accuracy, a.AnswerTo("q")})
	}

	for _, strategy := range []cdas.TerminationStrategy{cdas.Never, cdas.MinMax, cdas.MinExp, cdas.ExpMax} {
		v, err := cdas.NewOnlineVerifier(planned, 3, 0.75)
		if err != nil {
			log.Fatal(err)
		}
		used := 0
		for _, a := range stream {
			if err := v.Add(cdas.Vote{Worker: a.worker, Accuracy: a.accuracy, Answer: a.answer}); err != nil {
				log.Fatal(err)
			}
			used++
			if v.Terminated(strategy) {
				break
			}
		}
		res, err := v.Current()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7v answers used %2d/%d -> %s (confidence %.3f)\n",
			strategy, used, planned, res.Best().Answer, res.Best().Confidence)
	}

	// Show the running estimate under the natural arrival order.
	fmt.Println("\nrunning estimate (Never strategy):")
	v, err := cdas.NewOnlineVerifier(planned, 3, 0.75)
	if err != nil {
		log.Fatal(err)
	}
	for i, a := range stream {
		if err := v.Add(cdas.Vote{Worker: a.worker, Accuracy: a.accuracy, Answer: a.answer}); err != nil {
			log.Fatal(err)
		}
		if (i+1)%5 == 0 {
			res, err := v.Current()
			if err != nil {
				log.Fatal(err)
			}
			b, err := v.CurrentBounds()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  after %2d answers: %s at %.3f (min leader %.3f, max runner-up %.3f)\n",
				i+1, res.Best().Answer, res.Best().Confidence, b.MinBest, b.MaxRunner)
		}
	}
}
