package metrics

import (
	"math"
	"strings"
	"testing"
)

func demo() *Confusion {
	c := NewConfusion()
	// truth pos: 8 right, 2 as neg
	for i := 0; i < 8; i++ {
		c.Add("pos", "pos")
	}
	c.Add("pos", "neg")
	c.Add("pos", "neg")
	// truth neg: 6 right, 1 as pos, 1 unanswered
	for i := 0; i < 6; i++ {
		c.Add("neg", "neg")
	}
	c.Add("neg", "pos")
	c.Add("neg", "")
	return c
}

func TestAccuracy(t *testing.T) {
	c := demo()
	if c.Total() != 18 {
		t.Fatalf("total = %d, want 18", c.Total())
	}
	if got, want := c.Accuracy(), 14.0/18; math.Abs(got-want) > 1e-12 {
		t.Errorf("accuracy = %v, want %v", got, want)
	}
	if NewConfusion().Accuracy() != 0 {
		t.Error("empty accuracy should be 0")
	}
}

func TestPerClass(t *testing.T) {
	c := demo()
	byLabel := make(map[string]ClassScores)
	for _, s := range c.PerClass() {
		byLabel[s.Label] = s
	}
	pos := byLabel["pos"]
	// precision = 8 / (8+1); recall = 8 / 10.
	if math.Abs(pos.Precision-8.0/9) > 1e-12 {
		t.Errorf("pos precision = %v", pos.Precision)
	}
	if math.Abs(pos.Recall-0.8) > 1e-12 {
		t.Errorf("pos recall = %v", pos.Recall)
	}
	if pos.Support != 10 {
		t.Errorf("pos support = %d", pos.Support)
	}
	wantF1 := 2 * (8.0 / 9) * 0.8 / (8.0/9 + 0.8)
	if math.Abs(pos.F1-wantF1) > 1e-12 {
		t.Errorf("pos F1 = %v, want %v", pos.F1, wantF1)
	}
	neg := byLabel["neg"]
	// precision = 6/(6+2); recall = 6/8.
	if math.Abs(neg.Precision-0.75) > 1e-12 || math.Abs(neg.Recall-0.75) > 1e-12 {
		t.Errorf("neg P/R = %v/%v", neg.Precision, neg.Recall)
	}
	// The "(none)" bucket appears as a prediction-only label.
	none := byLabel["(none)"]
	if none.Support != 0 || none.Precision != 0 {
		t.Errorf("(none) scores = %+v", none)
	}
}

func TestMacroF1(t *testing.T) {
	c := demo()
	var posF1, negF1 float64
	for _, s := range c.PerClass() {
		switch s.Label {
		case "pos":
			posF1 = s.F1
		case "neg":
			negF1 = s.F1
		}
	}
	if got, want := c.MacroF1(), (posF1+negF1)/2; math.Abs(got-want) > 1e-12 {
		t.Errorf("macro F1 = %v, want %v", got, want)
	}
	if NewConfusion().MacroF1() != 0 {
		t.Error("empty macro F1 should be 0")
	}
}

func TestCountAndLabels(t *testing.T) {
	c := demo()
	if got := c.Count("pos", "neg"); got != 2 {
		t.Errorf("Count(pos,neg) = %d, want 2", got)
	}
	labels := c.Labels()
	want := []string{"(none)", "neg", "pos"}
	if len(labels) != len(want) {
		t.Fatalf("labels = %v", labels)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Errorf("labels = %v, want %v", labels, want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	s := demo().String()
	for _, want := range []string{"truth\\pred", "pos", "neg", "(none)"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered matrix missing %q:\n%s", want, s)
		}
	}
}

func TestPerfectClassifier(t *testing.T) {
	c := NewConfusion()
	for i := 0; i < 5; i++ {
		c.Add("a", "a")
		c.Add("b", "b")
	}
	if c.Accuracy() != 1 || c.MacroF1() != 1 {
		t.Errorf("perfect classifier: acc=%v macroF1=%v", c.Accuracy(), c.MacroF1())
	}
}
