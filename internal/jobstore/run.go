// Immutable sorted runs: the on-disk level of the LSM engine. A run
// holds a memtable flush (or a compaction merge) as CRC-framed blocks
// of sorted key/value entries, followed by a block index, a Bloom
// filter over its keys and a fixed-size footer. Runs are written to a
// temp file and installed by rename, so a crash never leaves a partial
// run visible to recovery — and OpenRun still validates every frame,
// so arbitrary corruption is reported loudly instead of resurrecting
// or dropping records silently (FuzzRunDecode pins that).
//
// Layout:
//
//	"CDASRUN1"                                  8-byte magic
//	data blocks:   [u32 len][u32 crc][entries]  sorted, ~blockSize each
//	index block:   [u32 len][u32 crc][descs]    first key + offset per block
//	bloom block:   [u32 len][u32 crc][bits]
//	footer:        u64 indexOff, u64 bloomOff, u64 count,
//	               u32 crc(previous 24 bytes), "CRF1"
//
// An entry is: u8 flags (1 = tombstone), uvarint klen, key, and for
// non-tombstones uvarint vlen, value. Tombstones are kept so a newer
// run shadows deleted keys in older runs; the bottom-most compaction
// output drops them.
package jobstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
)

// ErrCorruptRun reports a sorted-run file that fails structural or
// checksum validation. Runs are installed atomically, so unlike a torn
// WAL tail this is never the signature of a clean crash — recovery
// surfaces it instead of guessing.
var ErrCorruptRun = errors.New("jobstore: sorted run is corrupt")

var (
	runMagic    = []byte("CDASRUN1")
	footerMagic = []byte("CRF1")
)

// runFooterSize is the fixed footer: indexOff, bloomOff, count, crc,
// magic.
const runFooterSize = 8 + 8 + 8 + 4 + 4

// defaultBlockSize is the target payload size of one data block.
const defaultBlockSize = 4096

// kvEntry is one key/value record inside the engine; del marks a
// tombstone.
type kvEntry struct {
	key string
	val []byte
	del bool
}

// appendEntry encodes one entry onto buf.
func appendEntry(buf []byte, e kvEntry) []byte {
	var flags byte
	if e.del {
		flags = 1
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(len(e.key)))
	buf = append(buf, e.key...)
	if !e.del {
		buf = binary.AppendUvarint(buf, uint64(len(e.val)))
		buf = append(buf, e.val...)
	}
	return buf
}

// decodeEntries parses a data block's payload into entries, validating
// every length against the payload bounds.
func decodeEntries(payload []byte) ([]kvEntry, error) {
	var out []kvEntry
	for len(payload) > 0 {
		flags := payload[0]
		if flags > 1 {
			return nil, fmt.Errorf("%w: entry flags %#x", ErrCorruptRun, flags)
		}
		payload = payload[1:]
		klen, n := binary.Uvarint(payload)
		if n <= 0 || klen > uint64(len(payload)-n) {
			return nil, fmt.Errorf("%w: bad key length", ErrCorruptRun)
		}
		payload = payload[n:]
		key := string(payload[:klen])
		payload = payload[klen:]
		e := kvEntry{key: key, del: flags == 1}
		if !e.del {
			vlen, n := binary.Uvarint(payload)
			if n <= 0 || vlen > uint64(len(payload)-n) {
				return nil, fmt.Errorf("%w: bad value length", ErrCorruptRun)
			}
			payload = payload[n:]
			e.val = append([]byte(nil), payload[:vlen]...)
			payload = payload[vlen:]
		}
		out = append(out, e)
	}
	return out, nil
}

// blockFrame frames a block payload: [u32 len][u32 crc][payload].
func blockFrame(payload []byte) []byte {
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	return buf
}

// readBlockAt reads and verifies the framed block at off.
func readBlockAt(r io.ReaderAt, off int64, fileSize int64) ([]byte, error) {
	var hdr [8]byte
	if off < 0 || off+8 > fileSize {
		return nil, fmt.Errorf("%w: block offset out of range", ErrCorruptRun)
	}
	if _, err := r.ReadAt(hdr[:], off); err != nil {
		return nil, fmt.Errorf("%w: block header: %v", ErrCorruptRun, err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxRecordSize || off+8+int64(n) > fileSize {
		return nil, fmt.Errorf("%w: block length %d out of range", ErrCorruptRun, n)
	}
	payload := make([]byte, n)
	if _, err := r.ReadAt(payload, off+8); err != nil {
		return nil, fmt.Errorf("%w: block body: %v", ErrCorruptRun, err)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, fmt.Errorf("%w: block checksum mismatch", ErrCorruptRun)
	}
	return payload, nil
}

// blockDesc locates one data block: its first key, file offset and
// framed size.
type blockDesc struct {
	firstKey string
	off      int64
	size     int64
}

// writeRun streams sorted entries into w (entries must be strictly
// ascending by key; writeRun validates). fail guards every write with
// the torn-capable FailRunWrite point. Returns the entry count.
func writeRun(w *os.File, entries []kvEntry, blockSize int, fail FailFunc) (int, error) {
	if blockSize <= 0 {
		blockSize = defaultBlockSize
	}
	write := func(b []byte) error { return tornWrite(w, b, FailRunWrite, fail) }
	if err := write(runMagic); err != nil {
		return 0, err
	}
	off := int64(len(runMagic))
	var descs []blockDesc
	var cur []byte
	var curFirst string
	flush := func() error {
		if len(cur) == 0 {
			return nil
		}
		framed := blockFrame(cur)
		if err := write(framed); err != nil {
			return err
		}
		descs = append(descs, blockDesc{firstKey: curFirst, off: off, size: int64(len(framed))})
		off += int64(len(framed))
		cur = nil
		return nil
	}
	filter := newBloom(len(entries))
	for i, e := range entries {
		if i > 0 && entries[i-1].key >= e.key {
			return 0, fmt.Errorf("jobstore: run entries out of order: %q then %q", entries[i-1].key, e.key)
		}
		if len(cur) == 0 {
			curFirst = e.key
		}
		cur = appendEntry(cur, e)
		filter.add(e.key)
		if len(cur) >= blockSize {
			if err := flush(); err != nil {
				return 0, err
			}
		}
	}
	if err := flush(); err != nil {
		return 0, err
	}
	// Index block.
	var ib []byte
	ib = binary.AppendUvarint(ib, uint64(len(descs)))
	for _, d := range descs {
		ib = binary.AppendUvarint(ib, uint64(len(d.firstKey)))
		ib = append(ib, d.firstKey...)
		ib = binary.AppendUvarint(ib, uint64(d.off))
		ib = binary.AppendUvarint(ib, uint64(d.size))
	}
	indexOff := off
	framed := blockFrame(ib)
	if err := write(framed); err != nil {
		return 0, err
	}
	off += int64(len(framed))
	// Bloom block.
	bloomOff := off
	if err := write(blockFrame(filter.bits)); err != nil {
		return 0, err
	}
	// Footer.
	footer := make([]byte, runFooterSize)
	binary.LittleEndian.PutUint64(footer[0:8], uint64(indexOff))
	binary.LittleEndian.PutUint64(footer[8:16], uint64(bloomOff))
	binary.LittleEndian.PutUint64(footer[16:24], uint64(len(entries)))
	binary.LittleEndian.PutUint32(footer[24:28], crc32.ChecksumIEEE(footer[:24]))
	copy(footer[28:], footerMagic)
	if err := write(footer); err != nil {
		return 0, err
	}
	return len(entries), nil
}

// tornWrite writes b through a torn-capable failpoint: ErrTornWrite
// persists roughly half the bytes then reports the crash; any other
// hook error crashes before a single byte lands.
func tornWrite(w io.Writer, b []byte, point string, fail FailFunc) error {
	switch err := fail.fail(point); {
	case err == nil:
	case errors.Is(err, ErrTornWrite):
		w.Write(b[:len(b)/2])
		return ErrInjectedCrash
	default:
		return err
	}
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("jobstore: run write: %w", err)
	}
	return nil
}

// runReader serves point and range reads from one installed run. The
// footer, block index and Bloom filter are loaded at open — O(index),
// not O(entries) — and data blocks are read (and CRC-verified) on
// demand.
type runReader struct {
	f      *os.File
	size   int64
	count  int
	descs  []blockDesc
	filter *bloom
}

// openRun opens and validates a run file's skeleton.
func openRun(path string) (*runReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	r, err := loadRun(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func loadRun(f *os.File) (*runReader, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < int64(len(runMagic))+runFooterSize {
		return nil, fmt.Errorf("%w: file too short", ErrCorruptRun)
	}
	var magic [8]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil {
		return nil, err
	}
	if string(magic[:]) != string(runMagic) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptRun)
	}
	footer := make([]byte, runFooterSize)
	if _, err := f.ReadAt(footer, size-runFooterSize); err != nil {
		return nil, err
	}
	if string(footer[28:]) != string(footerMagic) {
		return nil, fmt.Errorf("%w: bad footer magic", ErrCorruptRun)
	}
	if crc32.ChecksumIEEE(footer[:24]) != binary.LittleEndian.Uint32(footer[24:28]) {
		return nil, fmt.Errorf("%w: footer checksum mismatch", ErrCorruptRun)
	}
	indexOff := int64(binary.LittleEndian.Uint64(footer[0:8]))
	bloomOff := int64(binary.LittleEndian.Uint64(footer[8:16]))
	count := binary.LittleEndian.Uint64(footer[16:24])
	ib, err := readBlockAt(f, indexOff, size)
	if err != nil {
		return nil, err
	}
	descs, err := decodeIndex(ib)
	if err != nil {
		return nil, err
	}
	bb, err := readBlockAt(f, bloomOff, size)
	if err != nil {
		return nil, err
	}
	return &runReader{
		f:      f,
		size:   size,
		count:  int(count),
		descs:  descs,
		filter: &bloom{bits: bb},
	}, nil
}

func decodeIndex(payload []byte) ([]blockDesc, error) {
	n, w := binary.Uvarint(payload)
	if w <= 0 || n > uint64(len(payload)) {
		return nil, fmt.Errorf("%w: bad index count", ErrCorruptRun)
	}
	payload = payload[w:]
	descs := make([]blockDesc, 0, n)
	for i := uint64(0); i < n; i++ {
		klen, w := binary.Uvarint(payload)
		if w <= 0 || klen > uint64(len(payload)-w) {
			return nil, fmt.Errorf("%w: bad index key", ErrCorruptRun)
		}
		payload = payload[w:]
		key := string(payload[:klen])
		payload = payload[klen:]
		off, w := binary.Uvarint(payload)
		if w <= 0 {
			return nil, fmt.Errorf("%w: bad index offset", ErrCorruptRun)
		}
		payload = payload[w:]
		size, w := binary.Uvarint(payload)
		if w <= 0 {
			return nil, fmt.Errorf("%w: bad index size", ErrCorruptRun)
		}
		payload = payload[w:]
		if i > 0 && descs[i-1].firstKey >= key {
			return nil, fmt.Errorf("%w: index keys out of order", ErrCorruptRun)
		}
		descs = append(descs, blockDesc{firstKey: key, off: int64(off), size: int64(size)})
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("%w: trailing index bytes", ErrCorruptRun)
	}
	return descs, nil
}

// get returns the entry for key, with ok reporting presence (a
// tombstone is present: it shadows older runs).
func (r *runReader) get(key string) (kvEntry, bool, error) {
	if !r.filter.mayContain(key) {
		return kvEntry{}, false, nil
	}
	// Last block whose first key <= key.
	i := sort.Search(len(r.descs), func(i int) bool { return r.descs[i].firstKey > key })
	if i == 0 {
		return kvEntry{}, false, nil
	}
	entries, err := r.block(i - 1)
	if err != nil {
		return kvEntry{}, false, err
	}
	j := sort.Search(len(entries), func(j int) bool { return entries[j].key >= key })
	if j < len(entries) && entries[j].key == key {
		return entries[j], true, nil
	}
	return kvEntry{}, false, nil
}

// block reads and decodes data block i.
func (r *runReader) block(i int) ([]kvEntry, error) {
	payload, err := readBlockAt(r.f, r.descs[i].off, r.size)
	if err != nil {
		return nil, err
	}
	entries, err := decodeEntries(payload)
	if err != nil {
		return nil, err
	}
	for j := 1; j < len(entries); j++ {
		if entries[j-1].key >= entries[j].key {
			return nil, fmt.Errorf("%w: block entries out of order", ErrCorruptRun)
		}
	}
	return entries, nil
}

func (r *runReader) close() error { return r.f.Close() }

// runIterator walks a run's entries in key order, starting at the
// first key >= lo.
type runIterator struct {
	r       *runReader
	blockIx int
	entries []kvEntry
	pos     int
	err     error
}

func (r *runReader) iterator(lo string) *runIterator {
	it := &runIterator{r: r}
	// First block that could contain lo: the last one starting <= lo.
	i := sort.Search(len(r.descs), func(i int) bool { return r.descs[i].firstKey > lo })
	if i > 0 {
		i--
	}
	it.blockIx = i
	if len(r.descs) > 0 {
		it.entries, it.err = r.block(i)
		it.pos = sort.Search(len(it.entries), func(j int) bool { return it.entries[j].key >= lo })
	} else {
		it.blockIx = len(r.descs)
	}
	return it
}

// next returns the current entry and advances; ok is false at the end
// or on error (check it.err).
func (it *runIterator) next() (kvEntry, bool) {
	for it.err == nil {
		if it.pos < len(it.entries) {
			e := it.entries[it.pos]
			it.pos++
			return e, true
		}
		it.blockIx++
		if it.blockIx >= len(it.r.descs) {
			return kvEntry{}, false
		}
		it.entries, it.err = it.r.block(it.blockIx)
		it.pos = 0
	}
	return kvEntry{}, false
}
