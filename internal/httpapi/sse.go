// Server-Sent Events: GET /v1/queries/{name}/events pushes every
// QueryState revision to connected clients as answers arrive — the
// paper's Figure 4 live view as a push stream instead of a poll loop.
//
// Fan-out design: Server.Update assigns each query a monotonically
// increasing revision and offers the new state to every subscriber's
// buffered channel. A slow consumer never blocks Update (or other
// subscribers): when a subscriber's buffer is full the oldest pending
// revision is dropped — intermediate states are snapshots, so skipping
// one loses nothing the next event doesn't restate. The event id is the
// revision, so a reconnecting client's Last-Event-ID suppresses the
// initial replay when it has already seen the current state.
package httpapi

import (
	"net/http"
	"strconv"
	"time"

	"cdas/api"
)

// subscriberBuffer is each SSE client's pending-event capacity. Events
// are full-state snapshots, so the buffer only needs to absorb bursts,
// not preserve history.
const subscriberBuffer = 16

// event is one QueryState revision en route to a subscriber.
type event struct {
	rev   int64
	state QueryState
}

// subscriber is one connected SSE client's queue.
type subscriber struct {
	ch chan event
}

// push offers ev without ever blocking: a full queue drops its oldest
// event first. Only Server.Update calls this, under s.mu, so the
// drain-then-send pair cannot interleave with another push.
func (sub *subscriber) push(ev event) {
	for {
		select {
		case sub.ch <- ev:
			return
		default:
		}
		select {
		case <-sub.ch: // drop-oldest
		default:
		}
	}
}

// subscribe registers a new subscriber for name and returns it with the
// query's current state and revision (rev 0, ok false when the query
// has not published yet).
func (s *Server) subscribe(name string) (sub *subscriber, cur QueryState, rev int64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sub = &subscriber{ch: make(chan event, subscriberBuffer)}
	set, exists := s.subs[name]
	if !exists {
		set = make(map[*subscriber]struct{})
		s.subs[name] = set
	}
	set[sub] = struct{}{}
	cur, ok = s.queries[name]
	return sub, cur, s.revs[name], ok
}

// unsubscribe removes sub. The channel is abandoned, not closed:
// Update's pushes happen under s.mu, so after removal nothing sends,
// and the garbage collector reclaims it with the handler.
func (s *Server) unsubscribe(name string, sub *subscriber) {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.subs[name]
	delete(set, sub)
	if len(set) == 0 {
		delete(s.subs, name)
	}
}

// queryRev returns a query's current state and revision.
func (s *Server) queryRev(name string) (QueryState, int64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.queries[name]
	return st, s.revs[name], ok
}

// subscriberCount reports how many SSE clients follow name — the
// goroutine-leak probe for tests.
func (s *Server) subscriberCount(name string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.subs[name])
}

// knownQuery reports whether name identifies a published query or a
// registered job (whose query may publish later).
func (s *Server) knownQuery(name string) bool {
	if _, ok := s.Get(name); ok {
		return true
	}
	if ctl := s.jobs(); ctl != nil {
		if _, ok := ctl.Status(name); ok {
			return true
		}
	}
	return false
}

// v1QueryEvents is GET /v1/queries/{name}/events: an SSE stream of the
// query's state revisions. The current state is replayed immediately
// (unless Last-Event-ID proves the client has it), every subsequent
// Update pushes an "state" event, and the terminal revision arrives as
// "done", after which the server closes the stream. A job that reaches
// a terminal lifecycle state without publishing a final query state
// (e.g. a permanent failure before any answers were bought) produces a
// synthetic done event carrying the job error, so watchers never hang
// on a dead job. Client disconnect tears the subscription down through
// the request context.
func (s *Server) v1QueryEvents(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.knownQuery(name) {
		writeError(w, api.NotFound("no such query %q", name))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, api.Internal("streaming unsupported by connection"))
		return
	}
	var lastSeen int64 = -1
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		id, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, api.InvalidArgument("bad Last-Event-ID %q: %v", v, err))
			return
		}
		lastSeen = id
	}

	sub, cur, rev, published := s.subscribe(name)
	defer s.unsubscribe(name, sub)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	send := func(ev event) bool {
		kind := api.EventState
		if ev.state.Done {
			kind = api.EventDone
		}
		if err := writeSSE(w, ev.rev, kind, ev.state); err != nil {
			return false
		}
		flusher.Flush()
		return !ev.state.Done
	}

	// Replay the current state unless the client proved it has it. A
	// terminal state is always (re-)sent: a client resuming after the
	// done event must get a clean close, not an eternal hang waiting
	// for revisions that will never come.
	if published && (rev > lastSeen || cur.Done) {
		if !send(event{rev: rev, state: cur}) {
			return
		}
	}
	// Not every terminal job publishes a final query state: a run that
	// fails before buying any answers (no matching items, permanent
	// config error) ends with nothing on the stream. Poll the job's
	// lifecycle record so such watchers get a synthetic done event
	// instead of hanging forever.
	ticker := time.NewTicker(250 * time.Millisecond)
	defer ticker.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev := <-sub.ch:
			if !send(ev) {
				return
			}
		case <-ticker.C:
			ctl := s.jobs()
			if ctl == nil {
				continue
			}
			st, ok := ctl.Status(name)
			if !ok || !api.JobState(st.State).Terminal() {
				continue
			}
			// Give an in-flight final publish priority over synthesis:
			// the runner publishes before the dispatcher commits the
			// terminal transition, so anything real is already queued.
			select {
			case ev := <-sub.ch:
				if !send(ev) {
					return
				}
				continue
			default:
			}
			// Synthesize the terminal event from whatever the run
			// published: partial results stay visible (events are
			// full-state snapshots), only Done and the job error are
			// stamped on.
			cur, rev, published := s.queryRev(name)
			if !published {
				cur = QueryState{Name: name}
			}
			if !cur.Done {
				cur.Done = true
				cur.Error = st.Error
			}
			send(event{rev: rev, state: cur})
			return
		}
	}
}

// writeSSE frames one event. The data is compact JSON — json.Marshal
// never emits raw newlines, so a single data: line suffices.
func writeSSE(w http.ResponseWriter, id int64, kind string, st QueryState) error {
	return writeSSEData(w, id, kind, st)
}
