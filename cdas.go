// Package cdas is a Go implementation of CDAS — the Crowdsourcing Data
// Analytics System of Liu, Lu, Ooi, Shen, Wu and Zhang (PVLDB 5(10),
// 2012) — together with the full substrate the paper evaluates it on.
//
// CDAS answers analytics queries (sentiment classification, image
// tagging, ...) by publishing micro-tasks to a crowd platform and
// guaranteeing a user-specified result accuracy C at minimal cost through
// a quality-sensitive answering model:
//
//   - the prediction model (PlanWorkers) computes the minimum odd number
//     of workers n such that the expected probability of a correct
//     majority reaches C, given the mean worker accuracy μ;
//   - the verification model (Verify) weighs each worker's vote by their
//     historical accuracy via Bayes' rule instead of counting heads, so a
//     single accurate worker can overturn a misled majority;
//   - the online model (NewOnlineVerifier) maintains an approximate
//     answer as votes arrive asynchronously and terminates HITs early —
//     without paying for the forgone answers — once the leader cannot be
//     overtaken (strategies MinMax, MinExp, ExpMax);
//   - worker accuracies are estimated by embedding golden questions with
//     known answers into every HIT (the engine does this transparently).
//
// The package exposes the crowdsourcing engine (NewEngine) over an
// abstract Platform; NewSimulatedPlatform provides the bundled
// discrete-event AMT simulator, and a production deployment would
// implement Platform over a real crowd marketplace.
//
// See the examples directory for runnable end-to-end programs and
// cmd/cdas-experiments for the reproduction of every figure in the
// paper's evaluation.
package cdas

import (
	"net/http"

	"cdas/internal/amtapi"
	"cdas/internal/core/dawidskene"
	"cdas/internal/core/online"
	"cdas/internal/core/prediction"
	"cdas/internal/core/verification"
	"cdas/internal/crowd"
	"cdas/internal/crowdops"
	"cdas/internal/engine"
	"cdas/internal/exec"
	"cdas/internal/httpapi"
	"cdas/internal/jobs"
	"cdas/internal/metrics"
	"cdas/internal/privacy"
	"cdas/internal/profile"
	"cdas/internal/stream"
	"cdas/internal/tsa"
)

// Query is the analytics query of the paper's Definition 1:
// (S, C, R, t, w) — keywords, required accuracy, answer domain, start
// time and window.
type Query = jobs.Query

// Job is a registered analytics job; JobManager validates and plans jobs.
type (
	Job        = jobs.Job
	JobKind    = jobs.Kind
	Plan       = jobs.Plan
	JobManager = jobs.Manager
)

// Job kinds understood by the job manager's plan templates.
const (
	JobTSA      = jobs.KindTSA
	JobImageTag = jobs.KindImageTag
	JobCustom   = jobs.KindCustom
)

// NewJobManager returns an empty job registry.
func NewJobManager() *JobManager { return jobs.NewManager() }

// Durable job service: a job manager whose lifecycle survives restarts
// (WAL + snapshot under ServiceConfig.Dir) with a dispatcher pool that
// executes pending jobs with per-job cancellation.
type (
	JobState         = jobs.State
	JobStatus        = jobs.Status
	JobService       = jobs.Service
	JobServiceConfig = jobs.ServiceConfig
	JobDispatcher    = jobs.Dispatcher
	JobRunner        = jobs.Runner
)

// OpenJobService opens (or creates) a durable job service; see
// jobs.OpenService.
func OpenJobService(cfg JobServiceConfig) (*JobService, error) { return jobs.OpenService(cfg) }

// NewJobDispatcher builds a worker pool draining a service's pending
// jobs through run; see jobs.NewDispatcher.
func NewJobDispatcher(svc *JobService, run JobRunner, workers int) (*JobDispatcher, error) {
	return jobs.NewDispatcher(svc, run, workers)
}

// Vote is one worker's answer weighted by their estimated accuracy.
type (
	Vote               = verification.Vote
	VerificationResult = verification.Result
	Scored             = verification.Scored
)

// Verify ranks the observed answers by the Equation 4 confidence. Pass
// domainSize = |R|, or <= 0 to estimate it from the observation
// (Theorem 5).
func Verify(votes []Vote, domainSize int) (VerificationResult, error) {
	return verification.Verify(votes, domainSize)
}

// HalfVoting is the CrowdDB-style baseline: accept an answer only when at
// least half of the workers return it.
func HalfVoting(votes []Vote) (answer string, ok bool) { return verification.HalfVoting(votes) }

// MajorityVoting accepts the strict plurality answer.
func MajorityVoting(votes []Vote) (answer string, ok bool) { return verification.MajorityVoting(votes) }

// PredictionModel plans crowd sizes for a worker population.
type PredictionModel = prediction.Model

// NewPredictionModel builds a planner for a population with mean worker
// accuracy mu in (0.5, 1].
func NewPredictionModel(mu float64) (*PredictionModel, error) { return prediction.New(mu) }

// PlanWorkers is a convenience for one-off planning: the minimum odd
// number of workers so the expected majority accuracy reaches
// requiredAccuracy, for a population of mean accuracy meanAccuracy.
func PlanWorkers(requiredAccuracy, meanAccuracy float64) (int, error) {
	m, err := prediction.New(meanAccuracy)
	if err != nil {
		return 0, err
	}
	return m.RequiredWorkers(requiredAccuracy)
}

// Economics is the platform fee schedule (m_c per worker, m_s per-worker
// platform surcharge).
type Economics = prediction.Economics

// DefaultEconomics mirrors the paper's $0.01 + 20% fee example.
var DefaultEconomics = prediction.DefaultEconomics

// OnlineVerifier tracks one question's votes as they arrive and decides
// early termination.
type (
	OnlineVerifier      = online.Verifier
	TerminationStrategy = online.Strategy
	TerminationBounds   = online.Bounds
)

// Termination strategies (Section 4.2.2). The paper recommends ExpMax.
const (
	Never  = online.Never
	MinMax = online.MinMax
	MinExp = online.MinExp
	ExpMax = online.ExpMax
)

// NewOnlineVerifier creates a verifier for a question planned to receive
// total answers over a domain of m answers, with population mean accuracy
// meanAccuracy used for the not-yet-seen workers.
func NewOnlineVerifier(total, m int, meanAccuracy float64) (*OnlineVerifier, error) {
	return online.NewVerifier(total, m, meanAccuracy)
}

// Engine types: the crowdsourcing engine and its platform abstraction.
type (
	Engine         = engine.Engine
	EngineConfig   = engine.Config
	Platform       = engine.Platform
	Run            = engine.Run
	BatchResult    = engine.BatchResult
	QuestionResult = engine.QuestionResult
	// StreamResult is one finished HIT from the engine's concurrent
	// pipeline (Engine.Stream); set EngineConfig.MaxInflightHITs to
	// overlap HIT lifetimes on the platform.
	StreamResult = engine.StreamResult
)

// Crowd simulator types (the bundled AMT stand-in).
type (
	SimulatorConfig = crowd.Config
	Worker          = crowd.Worker
	CrowdQuestion   = crowd.Question
	HIT             = crowd.HIT
	Assignment      = crowd.Assignment
)

// ProfileStore persists workers' historical accuracies per job kind.
type ProfileStore = profile.Store

// NewProfileStore returns an empty profile store.
func NewProfileStore() *ProfileStore { return profile.NewStore() }

// PrivacyManager sanitises outgoing question text and bars workers.
type PrivacyManager = privacy.Manager

// NewPrivacyManager returns a manager with default masking patterns.
func NewPrivacyManager() *PrivacyManager { return privacy.NewManager() }

// NewEngine constructs the crowdsourcing engine over a platform. A nil
// store starts with no worker history.
func NewEngine(p Platform, store *ProfileStore, cfg EngineConfig) (*Engine, error) {
	return engine.New(p, store, cfg)
}

// DefaultSimulatorConfig returns the simulator population used throughout
// the paper reproduction: 500 workers, Figure 14-like accuracy and
// approval distributions, the paper's fee schedule.
func DefaultSimulatorConfig(seed uint64) SimulatorConfig { return crowd.DefaultConfig(seed) }

// NewSimulatedPlatform builds the discrete-event AMT simulator and wraps
// it as an engine Platform. The second return value exposes the simulator
// itself (population, spend accounting) for inspection.
func NewSimulatedPlatform(cfg SimulatorConfig) (Platform, *crowd.Platform, error) {
	p, err := crowd.NewPlatform(cfg)
	if err != nil {
		return nil, nil, err
	}
	return engine.CrowdPlatform{Platform: p}, p, nil
}

// RenderHIT renders a HIT as the HTML form published to workers
// (Figure 3's query template).
func RenderHIT(hit HIT) (string, error) { return engine.RenderHIT(hit) }

// Summary is the percentages-plus-reasons presentation of Section 4.3.
type (
	Summary = exec.Summary
	Outcome = exec.Outcome
)

// Summarise aggregates accepted answers into the Table 1 presentation.
// exclude lists words (e.g. the query keywords) to keep out of reasons.
func Summarise(domain []string, outcomes []Outcome, texts map[string]string, exclude ...string) Summary {
	return exec.Summarise(domain, outcomes, texts, exclude...)
}

// TSAResult is one processed sentiment query (accuracy vs ground truth is
// only available on simulated streams).
type TSAResult = tsa.Result

// Dawid–Skene: golden-free worker-accuracy estimation by EM over
// inter-worker agreement (the quality-management alternative from the
// paper's related work; see internal/core/dawidskene).
type (
	ConsensusVote    = dawidskene.Vote
	ConsensusOptions = dawidskene.Options
	ConsensusResult  = dawidskene.Result
)

// EstimateConsensus runs one-coin Dawid–Skene EM over raw votes,
// returning per-worker accuracy estimates and MAP answers without any
// golden questions. m is the answer-domain size |R|.
func EstimateConsensus(votes []ConsensusVote, m int, opts ConsensusOptions) (ConsensusResult, error) {
	return dawidskene.Estimate(votes, m, opts)
}

// Streaming: continuous query processing (Figure 4's live view).
type (
	StreamConfig    = stream.Config
	StreamProcessor = stream.Processor
	StreamSink      = stream.Sink
	StreamConvert   = stream.Convert
)

// NewStreamProcessor builds a single-query streaming pipeline: items are
// filtered by the query, batched, crowdsourced, and summarised after
// every batch.
func NewStreamProcessor(cfg StreamConfig) (*StreamProcessor, error) {
	return stream.NewProcessor(cfg)
}

// StreamItem is one element of an input stream.
type StreamItem = exec.Item

// Result service: live query summaries over HTTP (Figure 4).
type (
	ResultServer = httpapi.Server
	QueryState   = httpapi.QueryState
)

// NewResultServer returns an empty result service; mount its Handler()
// on an HTTP server.
func NewResultServer() *ResultServer { return httpapi.NewServer() }

// Remote platform: the AMT-shaped REST protocol, for running the engine
// and the crowd marketplace in separate processes.
type (
	RemoteClient = amtapi.Client
	RemoteServer = amtapi.Server
)

// NewRemotePlatform returns a Platform speaking the amtapi REST protocol
// against baseURL. httpClient may be nil for http.DefaultClient.
func NewRemotePlatform(baseURL string, httpClient *http.Client) *RemoteClient {
	return amtapi.NewClient(baseURL, httpClient)
}

// NewRemoteServer exposes a simulated crowd platform over the amtapi REST
// protocol; mount its Handler() on an HTTP server.
func NewRemoteServer(p *crowd.Platform) *RemoteServer { return amtapi.NewServer(p) }

// Crowd-powered relational operators (CrowdDB/Qurk-style), built on the
// engine: filter, join (entity resolution) and sort by pairwise
// comparison.
type (
	OpItem       = crowdops.Item
	FilterResult = crowdops.FilterResult
	JoinPair     = crowdops.JoinPair
)

// CrowdFilter keeps the items the crowd judges to satisfy the predicate.
func CrowdFilter(eng *Engine, predicate string, items []OpItem, golden []CrowdQuestion) ([]FilterResult, error) {
	return crowdops.Filter(eng, predicate, items, golden)
}

// CrowdJoin crowd-matches every (left, right) pair; use Matches to keep
// the accepted ones.
func CrowdJoin(eng *Engine, left, right []OpItem, golden []CrowdQuestion) ([]JoinPair, error) {
	return crowdops.Join(eng, left, right, golden)
}

// Matches filters a CrowdJoin result to the accepted matches.
func Matches(pairs []JoinPair) []JoinPair { return crowdops.Matches(pairs) }

// CrowdSort orders items by crowd pairwise comparisons under the given
// criterion.
func CrowdSort(eng *Engine, criterion string, items []OpItem, golden []CrowdQuestion) ([]OpItem, error) {
	return crowdops.Sort(eng, criterion, items, golden)
}

// Evaluation metrics for comparing crowd answers with ground truth.
type (
	Confusion   = metrics.Confusion
	ClassScores = metrics.ClassScores
)

// NewConfusion returns an empty confusion matrix.
func NewConfusion() *Confusion { return metrics.NewConfusion() }
