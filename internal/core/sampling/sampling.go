// Package sampling implements CDAS's sampling-based worker-accuracy
// estimation (Section 3.3 of the paper, Algorithm 4).
//
// Crowd platforms either hide worker statistics or expose approval rates
// that correlate poorly with task accuracy (Figure 14). CDAS therefore
// embeds golden questions — questions whose ground truth is known — into
// every HIT: a HIT of B questions carries ceil(αB) golden ones (α = 0.2,
// B = 100 in the paper's deployment) and the worker's accuracy is
// estimated as their fraction of correct golden answers.
package sampling

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"cdas/internal/randx"
)

// Paper defaults for the injection mix (Section 3.3).
const (
	DefaultRate    = 0.2
	DefaultHITSize = 100
)

// Golden is a question with known ground truth.
type Golden struct {
	ID    string
	Truth string
}

// Slot is one question position inside a HIT: either a real (unlabelled)
// question or a golden one.
type Slot struct {
	ID     string
	Golden bool
	Truth  string // ground truth; set only for golden slots
}

// Mix errors.
var (
	ErrBadRate        = errors.New("sampling: rate must be in [0, 1)")
	ErrPoolExhausted  = errors.New("sampling: golden pool smaller than required sample count")
	ErrRealsExhausted = errors.New("sampling: fewer real questions than HIT slots")
)

// GoldenCount returns ceil(alpha * b), the number of golden slots a HIT of
// b questions carries at sampling rate alpha.
func GoldenCount(b int, alpha float64) int {
	return int(math.Ceil(alpha * float64(b)))
}

// Mix builds the question order for one HIT of size b: ceil(alpha*b)
// golden questions drawn without replacement from pool and the remainder
// taken in order from reals, shuffled together deterministically under
// rng. It returns the slots and the number of real questions consumed.
func Mix(rng *randx.Source, reals []string, pool []Golden, b int, alpha float64) ([]Slot, int, error) {
	if alpha < 0 || alpha >= 1 || math.IsNaN(alpha) {
		return nil, 0, fmt.Errorf("%w (got %v)", ErrBadRate, alpha)
	}
	if b <= 0 {
		return nil, 0, fmt.Errorf("sampling: HIT size must be positive, got %d", b)
	}
	nGolden := GoldenCount(b, alpha)
	nReal := b - nGolden
	if nGolden > len(pool) {
		return nil, 0, fmt.Errorf("%w (need %d, have %d)", ErrPoolExhausted, nGolden, len(pool))
	}
	if nReal > len(reals) {
		return nil, 0, fmt.Errorf("%w (need %d, have %d)", ErrRealsExhausted, nReal, len(reals))
	}
	slots := make([]Slot, 0, b)
	for _, idx := range rng.SampleWithoutReplacement(len(pool), nGolden) {
		g := pool[idx]
		slots = append(slots, Slot{ID: g.ID, Golden: true, Truth: g.Truth})
	}
	for _, id := range reals[:nReal] {
		slots = append(slots, Slot{ID: id})
	}
	randx.Shuffle(rng, slots)
	return slots, nReal, nil
}

// Estimator accumulates golden-question outcomes per worker and reports
// accuracy estimates (Algorithm 4). The zero value is ready to use.
type Estimator struct {
	correct map[string]int
	total   map[string]int
}

// NewEstimator returns an empty Estimator.
func NewEstimator() *Estimator {
	return &Estimator{correct: make(map[string]int), total: make(map[string]int)}
}

// Record notes that worker answered one golden question, correctly or not.
func (e *Estimator) Record(worker string, correct bool) {
	if e.correct == nil {
		e.correct = make(map[string]int)
		e.total = make(map[string]int)
	}
	e.total[worker]++
	if correct {
		e.correct[worker]++
	}
}

// Samples reports how many golden outcomes were recorded for worker.
func (e *Estimator) Samples(worker string) int { return e.total[worker] }

// Accuracy returns the estimated accuracy of worker and whether any golden
// outcome was recorded for them.
func (e *Estimator) Accuracy(worker string) (float64, bool) {
	n := e.total[worker]
	if n == 0 {
		return 0, false
	}
	return float64(e.correct[worker]) / float64(n), true
}

// AccuracyOr returns the estimate, falling back to fallback for unseen
// workers (the engine uses the population mean, as Section 4.2 requires
// for workers without profiles).
func (e *Estimator) AccuracyOr(worker string, fallback float64) float64 {
	if a, ok := e.Accuracy(worker); ok {
		return a
	}
	return fallback
}

// Workers lists all workers with at least one recorded outcome, sorted.
func (e *Estimator) Workers() []string {
	out := make([]string, 0, len(e.total))
	for w := range e.total {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// MeanAccuracy returns the unweighted mean of the per-worker estimates
// (the μ^j statistic of Figure 15), or 0 when no worker was observed.
func (e *Estimator) MeanAccuracy() float64 {
	if len(e.total) == 0 {
		return 0
	}
	sum := 0.0
	for w := range e.total {
		a, _ := e.Accuracy(w)
		sum += a
	}
	return sum / float64(len(e.total))
}

// Merge folds other's counts into e, so per-HIT estimators can be
// combined into a job-level profile.
func (e *Estimator) Merge(other *Estimator) {
	if other == nil {
		return
	}
	for w, n := range other.total {
		for i := 0; i < n; i++ {
			// Record preserves the nil-map lazy init invariant.
			e.Record(w, i < other.correct[w])
		}
	}
}
