// Quickstart: ask a simulated crowd three questions with a 90% accuracy
// guarantee, entirely through the public cdas API.
package main

import (
	"fmt"
	"log"

	"cdas"
)

func main() {
	// A simulated AMT-like platform with 500 workers (accuracy and
	// approval-rate distributions match the paper's Figure 14).
	platform, sim, err := cdas.NewSimulatedPlatform(cdas.DefaultSimulatorConfig(42))
	if err != nil {
		log.Fatal(err)
	}

	// The engine plans crowd sizes with the prediction model, estimates
	// worker accuracy from embedded golden questions, and verifies
	// answers with the Bayesian model.
	eng, err := cdas.NewEngine(platform, nil, cdas.EngineConfig{
		JobName:          "quickstart",
		RequiredAccuracy: 0.9,
		HITSize:          10,
	})
	if err != nil {
		log.Fatal(err)
	}

	yesNo := []string{"yes", "no"}
	questions := []cdas.CrowdQuestion{
		{ID: "q1", Text: "Is this review positive: 'a flawless, thrilling ride'?", Domain: yesNo, Truth: "yes"},
		{ID: "q2", Text: "Is this review positive: 'two dull hours I will never get back'?", Domain: yesNo, Truth: "no"},
		{ID: "q3", Text: "Is this review positive: 'started slow, ended wonderfully'?", Domain: yesNo, Truth: "yes", Difficulty: 0.15},
	}
	// Golden questions carry known answers; the engine mixes them into
	// the HIT to estimate each worker's accuracy (Section 3.3).
	golden := []cdas.CrowdQuestion{
		{ID: "g1", Text: "Is 'absolutely wonderful' positive?", Domain: yesNo, Truth: "yes"},
		{ID: "g2", Text: "Is 'a complete disaster' positive?", Domain: yesNo, Truth: "no"},
		{ID: "g3", Text: "Is 'best film of the decade' positive?", Domain: yesNo, Truth: "yes"},
		{ID: "g4", Text: "Is 'painfully boring' positive?", Domain: yesNo, Truth: "no"},
		{ID: "g5", Text: "Is 'an instant classic' positive?", Domain: yesNo, Truth: "yes"},
		{ID: "g6", Text: "Is 'save your money' positive?", Domain: yesNo, Truth: "no"},
	}

	batch, err := eng.ProcessBatch(questions, golden)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("planned %d workers; HIT cost $%.3f\n\n", batch.PlannedWorkers, batch.Cost)
	for _, r := range batch.Results {
		fmt.Printf("%s -> %s (confidence %.3f, %d votes)\n",
			r.Question.ID, r.Answer, r.Confidence, r.Votes)
	}
	fmt.Printf("\ntotal simulated platform spend: $%.3f\n", sim.TotalSpent())
}
