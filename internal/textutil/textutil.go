// Package textutil provides the small text-processing substrate shared by
// the program executor (keyword filtering, reason extraction) and the SVM
// baseline (bag-of-words featurisation): tokenisation, stop-word removal
// and case folding.
package textutil

import (
	"strings"
	"unicode"
)

// Tokenize lower-cases text and splits it into alphanumeric word tokens.
// Apostrophes inside words are kept ("don't" stays one token); all other
// punctuation separates tokens.
func Tokenize(text string) []string {
	text = strings.ToLower(text)
	return strings.FieldsFunc(text, func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsNumber(r) && r != '\''
	})
}

// stopwords is a compact English stop-word list tuned for tweet-length
// texts; sentiment-bearing words are deliberately not included.
var stopwords = map[string]struct{}{
	"a": {}, "an": {}, "and": {}, "are": {}, "as": {}, "at": {}, "be": {},
	"but": {}, "by": {}, "for": {}, "from": {}, "had": {}, "has": {},
	"have": {}, "he": {}, "her": {}, "his": {}, "i": {}, "in": {}, "is": {},
	"it": {}, "its": {}, "just": {}, "me": {}, "my": {}, "of": {}, "on": {},
	"or": {}, "our": {}, "she": {}, "so": {}, "that": {}, "the": {},
	"their": {}, "them": {}, "they": {}, "this": {}, "to": {}, "was": {},
	"we": {}, "were": {}, "will": {}, "with": {}, "you": {}, "your": {},
	"rt": {}, "u": {}, "ur": {}, "im": {}, "am": {}, "been": {}, "do": {},
	"did": {}, "does": {}, "what": {}, "when": {}, "who": {}, "how": {},
	"about": {}, "out": {}, "up": {}, "down": {}, "all": {}, "some": {},
}

// IsStopword reports whether the (lower-case) token is a stop word.
func IsStopword(tok string) bool {
	_, ok := stopwords[tok]
	return ok
}

// ContentTokens tokenises text and strips stop words and single-character
// tokens.
func ContentTokens(text string) []string {
	toks := Tokenize(text)
	out := toks[:0]
	for _, t := range toks {
		if len(t) > 1 && !IsStopword(t) {
			out = append(out, t)
		}
	}
	return out
}

// ContainsAny reports whether text contains any of the keywords,
// case-insensitively, as a substring match (the paper's executor checks
// "whether the query keyword exists in a tweet").
func ContainsAny(text string, keywords []string) bool {
	lower := strings.ToLower(text)
	for _, k := range keywords {
		if k == "" {
			continue
		}
		if strings.Contains(lower, strings.ToLower(k)) {
			return true
		}
	}
	return false
}

// Hash32 is allocation-free FNV-1a over s — the stripe selector shared
// by the lock-striped structures (profile store, scheduler answer
// cache). Callers fold the result with a power-of-two mask.
func Hash32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
