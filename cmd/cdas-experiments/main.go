// Command cdas-experiments regenerates the paper's evaluation tables and
// figures on the simulated substrate.
//
// Usage:
//
//	cdas-experiments            # run everything, in paper order
//	cdas-experiments -run fig7  # run one experiment
//	cdas-experiments -list      # list experiment IDs
//	cdas-experiments -seed 42   # change the base seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cdas/internal/experiments"
)

func main() {
	var (
		run  = flag.String("run", "", "experiment ID to run (default: all)")
		list = flag.Bool("list", false, "list experiment IDs and exit")
		seed = flag.Uint64("seed", 1, "base seed for the simulated substrate")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	if *run != "" {
		gen, ok := experiments.Lookup(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "cdas-experiments: unknown experiment %q (use -list)\n", *run)
			os.Exit(2)
		}
		tbl, err := gen(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdas-experiments: %s: %v\n", *run, err)
			os.Exit(1)
		}
		fmt.Println(tbl)
		return
	}
	tables, err := experiments.RunAll(*seed)
	for _, tbl := range tables {
		fmt.Println(tbl)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdas-experiments: %v\n", err)
		os.Exit(1)
	}
}
