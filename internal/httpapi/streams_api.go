// Standing-query (stream) surface: POST /v1/streams submits a
// continuous job, GET inspects its window accounting, and the SSE
// route pushes one event per closed window. A stream IS a continuous
// job underneath — lifecycle actions (cancel, unpark, attempts) stay
// on the /v1/jobs surface; this one speaks windows.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"time"

	"cdas/api"
	"cdas/internal/core/aggregate"
	"cdas/internal/exec"
	"cdas/internal/jobs"
	"cdas/internal/standing"
)

// StreamMarks is the optional JobController facet exposing durable
// stream marks. When the controller implements it, stream reads fall
// back to the committed mark for streams this process has never
// published — after a restart, GET /v1/streams reports the recovered
// windows/spend instead of zeros.
type StreamMarks interface {
	StreamMarkFor(name string) (jobs.StreamMark, bool)
}

// StandingPublisher returns the standing.PublishFunc that feeds this
// server: every closed window lands on the stream SSE surface, and the
// running whole-stream fold doubles as the query's Figure-4 row.
func (s *Server) StandingPublisher() standing.PublishFunc {
	return func(job jobs.Job, win *standing.WindowResult, mark jobs.StreamMark, sum exec.Summary, progress float64, done bool) {
		s.PublishStreamWindow(streamStatusDTO(job, mark, sum, progress, done), streamWindowDTO(win))
	}
}

// PublishStreamWindow records a stream's new state and fans it out:
// win non-nil publishes a "window" event, win nil with st.Done a
// terminal "done" event. The embedded Results fold is mirrored onto
// the query surface so standing queries appear on the dashboard and
// /v1/queries like any batch job.
func (s *Server) PublishStreamWindow(st api.StreamStatus, win *api.StreamWindow) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if win != nil {
		st.LastWindow = win
	} else if prev, ok := s.streams[st.Name]; ok && st.LastWindow == nil {
		st.LastWindow = prev.LastWindow
	}
	s.streams[st.Name] = st
	s.streamRevs[st.Name]++
	kind := api.EventWindow
	if win == nil {
		kind = api.EventState
	}
	if st.Done {
		kind = api.EventDone
	}
	ev := feedEvent{rev: s.streamRevs[st.Name], kind: kind, data: api.StreamEvent{Window: win, State: st}}
	for sub := range s.streamSubs[st.Name] {
		sub.push(ev)
	}
	if st.Results != nil {
		s.updateLocked(*st.Results)
	}
}

// streamWindowDTO renders a closed window onto the wire contract.
func streamWindowDTO(w *standing.WindowResult) *api.StreamWindow {
	if w == nil {
		return nil
	}
	return &api.StreamWindow{
		Window:      w.Window,
		Start:       w.Start.UTC().Format(time.RFC3339),
		End:         w.End.UTC().Format(time.RFC3339),
		Items:       w.Items,
		Answered:    w.Answered,
		Degraded:    w.Degraded,
		Dropped:     w.Dropped,
		BatchSize:   w.BatchSize,
		Shed:        w.Shed,
		Percentages: w.Summary.Percentages,
		Confidence:  w.Summary.Confidence,
		Quality:     w.Summary.Quality,
		Cost:        w.Cost,
		CacheHits:   w.CacheHits,
	}
}

// streamStatusDTO renders the runner's cumulative view onto the wire.
func streamStatusDTO(job jobs.Job, mark jobs.StreamMark, sum exec.Summary, progress float64, done bool) api.StreamStatus {
	return api.StreamStatus{
		Name:          job.Name,
		Keywords:      job.Query.Keywords,
		Domain:        job.Query.Domain,
		State:         api.JobRunning,
		WindowsClosed: mark.Window + 1,
		Seen:          mark.Seen,
		Matched:       mark.Matched,
		Dropped:       mark.Dropped,
		Degraded:      mark.Degraded,
		Spent:         mark.Spent,
		Progress:      progress,
		Done:          done,
		Results: &api.QueryState{
			Name:        job.Name,
			Domain:      sum.Domain,
			Percentages: sum.Percentages,
			Reasons:     sum.Reasons,
			Items:       sum.Items,
			Progress:    progress,
			Done:        done,
			Confidence:  sum.Confidence,
			Quality:     sum.Quality,
		},
	}
}

// streamFromSubmission converts the legacy flattened submission into a
// continuous jobs.Job (semantic validation happens at registration).
// The spec fields ride the same mapping the kind-discriminated
// JobSubmission.Stream block uses.
func streamFromSubmission(sub api.StreamSubmission) (jobs.Job, error) {
	window, err := time.ParseDuration(sub.Window)
	if err != nil {
		return jobs.Job{}, fmt.Errorf("bad window %q: %w", sub.Window, err)
	}
	spec, err := streamSpecFromWire(api.StreamSpec{
		Lateness:       sub.Lateness,
		TargetFill:     sub.TargetFill,
		WindowCapacity: sub.WindowCapacity,
		MaxBacklog:     sub.MaxBacklog,
		Items:          sub.Items,
		Rate:           sub.Rate,
		SourceSeed:     sub.SourceSeed,
	})
	if err != nil {
		return jobs.Job{}, err
	}
	start := time.Now().UTC()
	if sub.Start != "" {
		if start, err = time.Parse(time.RFC3339, sub.Start); err != nil {
			return jobs.Job{}, fmt.Errorf("bad start %q (want RFC 3339): %w", sub.Start, err)
		}
	}
	return jobs.Job{
		Name:       sub.Name,
		Kind:       jobs.KindContinuous,
		Priority:   sub.Priority,
		Budget:     sub.Budget,
		Aggregator: sub.Aggregator,
		Tenant:     sub.Tenant,
		Query: jobs.Query{
			Keywords:         sub.Keywords,
			RequiredAccuracy: sub.RequiredAccuracy,
			Domain:           sub.Domain,
			Start:            start,
			Window:           window,
		},
		Stream: &spec,
	}, nil
}

func (s *Server) v1SubmitStream(w http.ResponseWriter, r *http.Request) {
	ctl, ok := s.requireJobs(w)
	if !ok {
		return
	}
	var sub api.StreamSubmission
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sub); err != nil {
		writeError(w, api.InvalidArgument("bad stream submission: %v", err))
		return
	}
	if err := aggregate.Validate(sub.Aggregator); err != nil {
		writeError(w, api.UnknownAggregator(sub.Aggregator, aggregate.Names()))
		return
	}
	job, err := streamFromSubmission(sub)
	if err != nil {
		writeError(w, api.InvalidArgument("%v", err))
		return
	}
	if err := checkJobName(job.Name); err != nil {
		writeError(w, api.InvalidArgument("%v", err))
		return
	}
	if _, err := ctl.Submit(job); err != nil {
		if errors.Is(err, jobs.ErrDuplicateJob) {
			writeError(w, api.Conflict("%v", err))
		} else {
			writeError(w, api.InvalidArgument("%v", err))
		}
		return
	}
	st, _ := ctl.Status(job.Name)
	w.Header().Set("Location", "/v1/streams/"+url.PathEscape(job.Name))
	writeJSONStatus(w, http.StatusCreated, s.streamStatus(st))
}

// streamStatus merges the job's lifecycle record with whatever the
// runner has published: a stream that has not closed a window yet
// still lists with its submission shape, and a job that died before
// publishing still surfaces its terminal error.
func (s *Server) streamStatus(st jobs.Status) api.StreamStatus {
	s.mu.RLock()
	out, published := s.streams[st.Job.Name]
	ctl := s.jobsCtl
	s.mu.RUnlock()
	if !published {
		out = api.StreamStatus{
			Name:     st.Job.Name,
			Keywords: st.Job.Query.Keywords,
			Domain:   st.Job.Query.Domain,
			Progress: st.Progress,
		}
		if marks, ok := ctl.(StreamMarks); ok {
			if mark, has := marks.StreamMarkFor(st.Job.Name); has {
				out.WindowsClosed = mark.Window + 1
				out.Seen = mark.Seen
				out.Matched = mark.Matched
				out.Dropped = mark.Dropped
				out.Degraded = mark.Degraded
				out.Spent = mark.Spent
			}
		}
	}
	out.State = api.JobState(st.State)
	if out.State.Terminal() {
		out.Done = true
		if out.Error == "" {
			out.Error = st.Error
		}
	}
	return out
}

// isStream reports whether the status belongs to a continuous job.
func isStream(st jobs.Status) bool { return st.Job.Kind == jobs.KindContinuous }

func (s *Server) v1ListStreams(w http.ResponseWriter, _ *http.Request) {
	ctl, ok := s.requireJobs(w)
	if !ok {
		return
	}
	out := api.StreamList{Streams: []api.StreamStatus{}}
	after := ""
	for {
		page, more := ctl.StatusesPage(after, maxPageSize, "", "")
		for _, st := range page {
			if isStream(st) {
				out.Streams = append(out.Streams, s.streamStatus(st))
			}
		}
		if !more || len(page) == 0 {
			break
		}
		after = page[len(page)-1].Job.Name
	}
	writeJSON(w, out)
}

// lookupStream resolves name to a continuous job's status, writing the
// 404 envelope when it is unknown or not a stream.
func (s *Server) lookupStream(w http.ResponseWriter, name string) (jobs.Status, bool) {
	ctl, ok := s.requireJobs(w)
	if !ok {
		return jobs.Status{}, false
	}
	st, found := ctl.Status(name)
	if !found || !isStream(st) {
		writeError(w, api.NotFound("no such stream %q", name))
		return jobs.Status{}, false
	}
	return st, true
}

func (s *Server) v1GetStream(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookupStream(w, r.PathValue("name"))
	if !ok {
		return
	}
	writeJSON(w, s.streamStatus(st))
}

func (s *Server) v1CancelStream(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookupStream(w, r.PathValue("name"))
	if !ok {
		return
	}
	ctl, _ := s.requireJobs(w)
	if err := ctl.Cancel(st.Job.Name); err != nil {
		writeError(w, jobError(err))
		return
	}
	cur, _ := ctl.Status(st.Job.Name)
	writeJSON(w, s.streamStatus(cur))
}

// subscribeStream registers an SSE watcher and returns the stream's
// current published state and revision.
func (s *Server) subscribeStream(name string) (sub *subscriber, cur api.StreamStatus, rev int64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sub = subscribeIn(s.streamSubs, name)
	cur, ok = s.streams[name]
	return sub, cur, s.streamRevs[name], ok
}

func (s *Server) unsubscribeStream(name string, sub *subscriber) {
	s.mu.Lock()
	defer s.mu.Unlock()
	unsubscribeIn(s.streamSubs, name, sub)
}

// v1StreamEvents is GET /v1/streams/{name}/events: an SSE stream
// pushing one "window" event per closed window, a "state" replay on
// connect, and a terminal "done" event after which the server closes
// the stream. The same Last-Event-ID and dead-job synthesis rules as
// the query events route apply.
func (s *Server) v1StreamEvents(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, ok := s.lookupStream(w, name); !ok {
		return
	}
	s.runSSE(w, r, name,
		func() (*subscriber, func()) {
			sub, _, _, _ := s.subscribeStream(name)
			return sub, func() { s.unsubscribeStream(name, sub) }
		},
		func(lastSeen int64, send func(feedEvent) bool) bool {
			cur, rev, published := s.streamRev(name)
			if published && (rev > lastSeen || cur.Done) {
				kind := api.EventState
				if cur.Done {
					kind = api.EventDone
				}
				return send(feedEvent{rev: rev, kind: kind, data: api.StreamEvent{State: cur}})
			}
			return true
		},
		func(st jobs.Status, send func(feedEvent) bool) {
			// The job is terminal but never published a done event (a
			// failure before the first window, or a cancel): synthesize
			// one from the merged view so watchers never hang.
			final := s.streamStatus(st)
			final.Done = true
			_, rev, _ := s.streamRev(name)
			send(feedEvent{rev: rev, kind: api.EventDone, data: api.StreamEvent{State: final}})
		})
}

// streamRev returns a stream's current published state and revision.
func (s *Server) streamRev(name string) (api.StreamStatus, int64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.streams[name]
	return st, s.streamRevs[name], ok
}

// writeSSEData frames one SSE event with an arbitrary JSON payload.
func writeSSEData(w http.ResponseWriter, id int64, kind string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, kind, data)
	return err
}
