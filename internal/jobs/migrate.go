// One-shot WAL→LSM store migration: read a WAL-engine directory
// through the existing replay path, write an equivalent LSM store —
// primary records plus all three secondary indexes, committed in
// atomic batches — verify the two stores agree, then retire the WAL
// files. cdas-storectl is the CLI front end.
package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"

	"cdas/internal/jobstore"
)

// ErrAlreadyMigrated reports a directory that holds only an LSM store:
// there is nothing to convert.
var ErrAlreadyMigrated = errors.New("jobs: store is already on the lsm engine")

// migrateBatchJobs bounds how many jobs share one atomic LSM batch.
// Each job contributes at most four records (primary + three index
// entries), so a batch stays far under the store's frame cap while
// amortizing one fsync across many jobs.
const migrateBatchJobs = 192

// MigrateResult summarizes a completed conversion.
type MigrateResult struct {
	// Jobs is the number of job records converted.
	Jobs int
	// BudgetMoved reports a non-empty budget ledger was carried over.
	BudgetMoved bool
	// Retired lists the WAL-engine files renamed aside (*.retired);
	// renaming them back is the rollback path.
	Retired []string
	// Resumed reports that a partial earlier migration was discarded
	// and redone from the (still authoritative) WAL store.
	Resumed bool
}

// MigrateStore converts the WAL-engine store in dir to the LSM engine,
// in place. The conversion is safe to re-run: until the final retire
// step the WAL files remain the authority, and a partial LSM store
// from an interrupted run is discarded and rebuilt. Before retiring
// anything the new store is reopened cold and verified record-for-
// record against the WAL replay — the same Statuses() view a booted
// service would serve — plus the budget ledger. logf (optional)
// receives progress lines.
func MigrateStore(dir string, logf func(format string, args ...any)) (MigrateResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var res MigrateResult
	hasWAL, hasLSM := jobstore.DetectEngines(dir)
	switch {
	case !hasWAL && !hasLSM:
		return res, fmt.Errorf("jobs: %s holds no job store", dir)
	case !hasWAL && hasLSM:
		return res, ErrAlreadyMigrated
	case hasWAL && hasLSM:
		// An interrupted migration: the WAL is still authoritative, so
		// the partial LSM store is garbage. Start over.
		logf("discarding partial LSM store from an interrupted migration")
		if err := jobstore.RemoveLSMFiles(dir); err != nil {
			return res, fmt.Errorf("jobs: removing partial LSM store: %w", err)
		}
		res.Resumed = true
	}

	// The Log's flock doubles as the migration lock: a live server (or
	// a second migrate) holds it and fails this open with ErrLocked.
	log, err := jobstore.Open(dir)
	if err != nil {
		return res, err
	}
	defer log.Close()

	src, budget, streams, err := loadWALState(log)
	if err != nil {
		return res, err
	}
	statuses := src.Statuses()
	logf("replayed WAL store: %d jobs", len(statuses))

	if err := writeLSMStore(dir, statuses, budget, streams); err != nil {
		return res, err
	}
	logf("wrote LSM store: %d jobs in batches of %d", len(statuses), migrateBatchJobs)

	if err := verifyLSMStore(dir, statuses, budget, streams); err != nil {
		return res, err
	}
	logf("verification passed: LSM view matches WAL replay")

	retired, err := jobstore.RetireLogFiles(dir)
	if err != nil {
		return res, fmt.Errorf("jobs: retiring WAL files: %w", err)
	}
	res.Jobs = len(statuses)
	res.BudgetMoved = budget.GlobalSpent > 0 || len(budget.Jobs) > 0
	res.Retired = retired
	return res, nil
}

// loadWALState replays the WAL store into a Manager — the exact load
// OpenService performs, minus the requeue-on-boot step: migration must
// copy records verbatim, not reinterpret them.
func loadWALState(log *jobstore.Log) (*Manager, BudgetState, map[string]StreamMark, error) {
	m := NewManager()
	var budget BudgetState
	streams := map[string]StreamMark{}
	if snap, _ := log.Snapshot(); snap != nil {
		var ws walSnapshot
		if err := json.Unmarshal(snap, &ws); err != nil {
			return nil, budget, nil, fmt.Errorf("jobs: decoding snapshot: %w", err)
		}
		for _, st := range ws.Jobs {
			m.restore(fromWal(st))
		}
		if ws.Budget != nil {
			budget = ws.Budget.clone()
		}
		for _, sr := range ws.Streams {
			streams[sr.Job] = sr.Mark
		}
	}
	for i, rec := range log.Entries() {
		var ev walEvent
		if err := json.Unmarshal(rec, &ev); err != nil {
			return nil, budget, nil, fmt.Errorf("jobs: decoding WAL record %d: %w", i, err)
		}
		switch ev.Op {
		case "budget":
			if ev.Budget != nil {
				budget = ev.Budget.clone()
			}
			continue
		case "stream":
			if ev.Stream != nil {
				streams[ev.Stream.Job] = ev.Stream.Mark
			}
			continue
		}
		m.restore(fromWal(ev.Status))
	}
	return m, budget, streams, nil
}

// writeLSMStore creates the LSM store and commits every job's primary
// record plus its state, priority and tenant index entries — each
// job's records inside one atomic batch, many jobs per batch to bound
// fsyncs — then checkpoints so the result boots from a sorted run
// instead of a WAL tail.
func writeLSMStore(dir string, statuses []Status, budget BudgetState, streams map[string]StreamMark) error {
	lsm, err := jobstore.OpenLSM(jobstore.LSMConfig{Dir: dir})
	if err != nil {
		return err
	}
	defer lsm.Close()
	var batch []jobstore.Op
	jobsInBatch := 0
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := lsm.Apply(batch); err != nil {
			return err
		}
		batch = batch[:0]
		jobsInBatch = 0
		return nil
	}
	for _, st := range statuses {
		ws := toWal(st)
		payload, err := json.Marshal(ws)
		if err != nil {
			return fmt.Errorf("jobs: encoding job record %q: %w", ws.Job.Name, err)
		}
		batch = append(batch,
			jobstore.Op{Key: lsmPrimaryKey(ws.Job.Name), Value: payload},
			jobstore.Op{Key: lsmStateKey(ws.State, ws.Seq, ws.Job.Name)},
			jobstore.Op{Key: lsmPrioKey(ws.Job.Priority, ws.Job.Name)},
		)
		if ws.Job.Tenant != "" {
			batch = append(batch, jobstore.Op{Key: lsmTenantKey(ws.Job.Tenant, ws.Job.Name)})
		}
		if jobsInBatch++; jobsInBatch >= migrateBatchJobs {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if budget.GlobalSpent > 0 || len(budget.Jobs) > 0 {
		payload, err := json.Marshal(budget)
		if err != nil {
			return fmt.Errorf("jobs: encoding budget: %w", err)
		}
		batch = append(batch, jobstore.Op{Key: lsmBudgetKey, Value: payload})
	}
	streamNames := make([]string, 0, len(streams))
	for name := range streams {
		streamNames = append(streamNames, name)
	}
	sort.Strings(streamNames)
	for _, name := range streamNames {
		payload, err := json.Marshal(streamRecord{Job: name, Mark: streams[name]})
		if err != nil {
			return fmt.Errorf("jobs: encoding stream mark %q: %w", name, err)
		}
		batch = append(batch, jobstore.Op{Key: lsmStreamKey(name), Value: payload})
	}
	if err := flush(); err != nil {
		return err
	}
	if err := lsm.Checkpoint(); err != nil {
		return err
	}
	return lsm.Close()
}

// verifyLSMStore reopens the converted store cold and asserts its
// Statuses() view and budget ledger are deep-equal to the WAL replay's,
// and that every record's index entries are present — the gate the old
// store is retired behind.
func verifyLSMStore(dir string, want []Status, wantBudget BudgetState, wantStreams map[string]StreamMark) error {
	lsm, err := jobstore.OpenLSM(jobstore.LSMConfig{Dir: dir})
	if err != nil {
		return fmt.Errorf("jobs: verification reopen: %w", err)
	}
	defer lsm.Close()
	m := NewManager()
	var decodeErr error
	err = lsm.Scan(lsmPrimaryPrefix, prefixEnd(lsmPrimaryPrefix), func(key string, val []byte) bool {
		var ws walStatus
		if decodeErr = json.Unmarshal(val, &ws); decodeErr != nil {
			decodeErr = fmt.Errorf("jobs: verification: decoding %q: %w", key, decodeErr)
			return false
		}
		m.restore(fromWal(ws))
		return true
	})
	if err == nil {
		err = decodeErr
	}
	if err != nil {
		return err
	}
	got := m.Statuses()
	if !reflect.DeepEqual(got, want) {
		return fmt.Errorf("jobs: verification failed: LSM view (%d jobs) differs from WAL replay (%d jobs)", len(got), len(want))
	}
	var gotBudget BudgetState
	if raw, ok, err := lsm.Get(lsmBudgetKey); err != nil {
		return err
	} else if ok {
		if err := json.Unmarshal(raw, &gotBudget); err != nil {
			return fmt.Errorf("jobs: verification: decoding budget: %w", err)
		}
	}
	if !reflect.DeepEqual(gotBudget, wantBudget) {
		return fmt.Errorf("jobs: verification failed: budget %+v differs from WAL replay's %+v", gotBudget, wantBudget)
	}
	gotStreams := map[string]StreamMark{}
	err = lsm.Scan(lsmStreamPrefix, prefixEnd(lsmStreamPrefix), func(key string, val []byte) bool {
		var sr streamRecord
		if decodeErr = json.Unmarshal(val, &sr); decodeErr != nil {
			decodeErr = fmt.Errorf("jobs: verification: decoding stream mark %q: %w", key, decodeErr)
			return false
		}
		gotStreams[sr.Job] = sr.Mark
		return true
	})
	if err == nil {
		err = decodeErr
	}
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(gotStreams, wantStreams) {
		return fmt.Errorf("jobs: verification failed: stream marks %+v differ from WAL replay's %+v", gotStreams, wantStreams)
	}
	// Spot-check the secondary indexes: exactly one state entry per
	// job, pointing at the record's current state and seq.
	stateKeys := map[string]bool{}
	err = lsm.Scan(lsmStatePrefix, prefixEnd(lsmStatePrefix), func(key string, _ []byte) bool {
		stateKeys[key] = true
		return true
	})
	if err != nil {
		return err
	}
	if len(stateKeys) != len(want) {
		return fmt.Errorf("jobs: verification failed: %d state index entries for %d jobs", len(stateKeys), len(want))
	}
	var missing []string
	for _, st := range want {
		ws := toWal(st)
		if !stateKeys[lsmStateKey(ws.State, ws.Seq, ws.Job.Name)] {
			missing = append(missing, ws.Job.Name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("jobs: verification failed: state index entries missing for %s", strings.Join(missing, ", "))
	}
	return nil
}
