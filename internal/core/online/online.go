// Package online implements CDAS's online query processing (Section 4.2 of
// the paper): as workers submit answers asynchronously, the engine keeps a
// running approximate result with a confidence for every answer, and may
// terminate the HIT early — forgoing (and not paying for) the outstanding
// answers — once the leading answer can no longer be overtaken.
//
// Theorem 6 shows the confidence of a partial observation Ω′ is computed by
// the same Equation 4 used after completion, so the Verifier simply re-ranks
// after every arrival. For early termination the engine compares, per
// Section 4.2.2, the minimum possible final confidence of the current best
// answer r1 against the maximum possible final confidence of the runner-up
// r2 under the adversarial completion s = "every one of the n−n′ outstanding
// workers votes r2". The unknown accuracies of the outstanding workers are
// approximated by their population mean E[a], as the paper prescribes.
package online

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"cdas/internal/core/verification"
	"cdas/internal/stats"
)

// Strategy selects one of the three termination conditions of
// Section 4.2.2.
type Strategy int

const (
	// Never disables early termination: the HIT runs to completion.
	Never Strategy = iota
	// MinMax terminates when E[min P(r1|Ω)] > E[max P(r2|Ω)]: the result
	// is already stable under any completion. Most conservative.
	MinMax
	// MinExp terminates when E[min P(r1|Ω)] > P(r2|Ω′).
	MinExp
	// ExpMax terminates when P(r1|Ω′) > E[max P(r2|Ω)]. Most aggressive;
	// the strategy the paper recommends adopting.
	ExpMax
)

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case Never:
		return "Never"
	case MinMax:
		return "MinMax"
	case MinExp:
		return "MinExp"
	case ExpMax:
		return "ExpMax"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists the three real termination strategies in paper order.
var Strategies = []Strategy{MinMax, MinExp, ExpMax}

// Verifier accumulates worker votes for one question and exposes the
// running result plus the early-termination predicates. It is not safe for
// concurrent use; the engine owns one Verifier per in-flight question.
type Verifier struct {
	total   int     // n: planned number of assignments
	m       int     // answer-domain size |R|
	meanAcc float64 // E[a]: population mean accuracy for unseen workers
	votes   []verification.Vote
}

// NewVerifier creates a Verifier for a question planned to receive total
// answers from a domain of m possible answers, where unseen workers have
// mean accuracy meanAcc. total must be >= 1, m >= 2 and meanAcc in (0, 1).
func NewVerifier(total, m int, meanAcc float64) (*Verifier, error) {
	if total < 1 {
		return nil, fmt.Errorf("online: total assignments must be >= 1, got %d", total)
	}
	if m < 2 {
		return nil, fmt.Errorf("online: domain size must be >= 2, got %d", m)
	}
	if math.IsNaN(meanAcc) || meanAcc <= 0 || meanAcc >= 1 {
		return nil, fmt.Errorf("online: mean accuracy must be in (0, 1), got %v", meanAcc)
	}
	return &Verifier{total: total, m: m, meanAcc: meanAcc}, nil
}

// ErrOverfilled reports more Add calls than planned assignments.
var ErrOverfilled = errors.New("online: more answers than planned assignments")

// Add records one worker's vote. It returns ErrOverfilled past the planned
// total; the engine treats that as a protocol violation by the platform.
func (v *Verifier) Add(vote verification.Vote) error {
	if len(v.votes) >= v.total {
		return ErrOverfilled
	}
	v.votes = append(v.votes, vote)
	return nil
}

// Received reports how many answers have arrived.
func (v *Verifier) Received() int { return len(v.votes) }

// Remaining reports how many planned answers are outstanding.
func (v *Verifier) Remaining() int { return v.total - len(v.votes) }

// Votes returns a copy of the votes received so far.
func (v *Verifier) Votes() []verification.Vote {
	return append([]verification.Vote(nil), v.votes...)
}

// Current returns the running result P(·|Ω′) over the votes received so
// far (Theorem 6). It returns verification.ErrNoVotes before any arrival.
func (v *Verifier) Current() (verification.Result, error) {
	return verification.Verify(v.votes, v.m)
}

// scored pairs an answer with its accumulated log-space confidence score.
type scored struct {
	answer string
	score  float64
}

// scores returns per-answer summed worker confidences, sorted descending
// (ties broken by answer for determinism).
func (v *Verifier) scores() []scored {
	agg := make(map[string]float64, 4)
	for _, vote := range v.votes {
		agg[vote.Answer] += verification.WorkerConfidence(vote.Accuracy, v.m)
	}
	out := make([]scored, 0, len(agg))
	for a, s := range agg {
		out = append(out, scored{answer: a, score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		return out[i].answer < out[j].answer
	})
	return out
}

// Bounds holds the early-termination quantities of Section 4.2.2 for the
// current partial observation.
type Bounds struct {
	Best        string  // r1, the current leader among observed answers
	RunnerUp    string  // r2 ("" when it is a not-yet-observed domain answer)
	ExpBest     float64 // P(r1 | Ω′)
	ExpRunner   float64 // P(r2 | Ω′)
	MinBest     float64 // E_A[min P(r1 | Ω)]: leader under adversarial completion
	MaxRunner   float64 // E_A[max P(r2 | Ω)]: runner-up under adversarial completion
	Received    int
	Outstanding int
}

// ErrNoLeader reports bounds requested before any vote arrived.
var ErrNoLeader = errors.New("online: no votes received yet")

// CurrentBounds computes the termination quantities. Normalisation always
// ranges over the full domain: each of the m - k unobserved answers
// contributes e^0 to Equation 4's denominator. The adversarial completion
// s assigns all outstanding answers to the strongest competitor of r1 —
// the second-best observed answer, or an unobserved answer (score 0) when
// that is currently more probable. Outstanding workers are assumed to
// carry the population mean accuracy E[a], as Section 4.2.2 prescribes.
func (v *Verifier) CurrentBounds() (Bounds, error) {
	ss := v.scores()
	if len(ss) == 0 {
		return Bounds{}, ErrNoLeader
	}
	k := len(ss)
	unobserved := v.m - k
	rem := float64(v.Remaining())
	cMean := verification.WorkerConfidence(v.meanAcc, v.m)

	best := ss[0]
	// Competitor: the most probable answer other than r1. Since m >= 2 a
	// competitor always exists — either the observed runner-up or one of
	// the unobserved answers sitting at score 0.
	runner := scored{answer: "", score: 0} // an unobserved answer
	runnerObserved := false
	if k > 1 && (ss[1].score >= 0 || unobserved == 0) {
		runner = ss[1]
		runnerObserved = true
	}

	b := Bounds{Best: best.answer, RunnerUp: runner.answer,
		Received: v.Received(), Outstanding: v.Remaining()}

	// Current (partial-observation) normaliser.
	logits := make([]float64, 0, v.m)
	for _, s := range ss {
		logits = append(logits, s.score)
	}
	for i := 0; i < unobserved; i++ {
		logits = append(logits, 0)
	}
	lseCur := stats.LogSumExp(logits)
	b.ExpBest = math.Exp(best.score - lseCur)
	b.ExpRunner = math.Exp(runner.score - lseCur)

	// Adversarial completion: the competitor gains rem * c(E[a]). Adjust
	// the one logit that corresponds to the competitor.
	advRunnerScore := runner.score + rem*cMean
	adv := make([]float64, 0, v.m)
	for _, s := range ss {
		if runnerObserved && s.answer == runner.answer {
			adv = append(adv, advRunnerScore)
			continue
		}
		adv = append(adv, s.score)
	}
	freshCompetitors := unobserved
	if !runnerObserved {
		adv = append(adv, advRunnerScore)
		freshCompetitors--
	}
	for i := 0; i < freshCompetitors; i++ {
		adv = append(adv, 0)
	}
	lseAdv := stats.LogSumExp(adv)
	b.MinBest = math.Exp(best.score - lseAdv)
	b.MaxRunner = math.Exp(advRunnerScore - lseAdv)
	return b, nil
}

// Terminated reports whether the strategy's condition holds for the
// current observation. With no votes yet it is always false; with all
// answers received it is always true.
func (v *Verifier) Terminated(s Strategy) bool {
	if len(v.votes) == 0 {
		return false
	}
	if v.Remaining() == 0 {
		return true
	}
	if s == Never {
		return false
	}
	b, err := v.CurrentBounds()
	if err != nil {
		return false
	}
	switch s {
	case MinMax:
		return b.MinBest > b.MaxRunner
	case MinExp:
		return b.MinBest > b.ExpRunner
	case ExpMax:
		return b.ExpBest > b.MaxRunner
	default:
		return false
	}
}
