package httpapi

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestV1GoldenResponses locks every v1 response shape — success bodies,
// error envelopes and the paginated list — to golden files, sharing the
// -update machinery with the legacy goldens.
func TestV1GoldenResponses(t *testing.T) {
	ts := httptest.NewServer(goldenServer().Handler())
	defer ts.Close()
	bare := httptest.NewServer(NewServer().Handler())
	defer bare.Close()
	// A separate fixture carries tenant scopes, so the tenant-filter
	// golden exists without disturbing the tenantless legacy bodies.
	tenants := httptest.NewServer(tenantServer().Handler())
	defer tenants.Close()
	// Likewise the enumeration fixture: the extra job only exists on this
	// server, so the pre-existing list goldens keep their bytes.
	enums := httptest.NewServer(enumServer().Handler())
	defer enums.Close()

	cases := []struct {
		golden string
		method string
		path   string
		body   string
		status int
		server *httptest.Server
	}{
		{"v1_healthz.golden", http.MethodGet, "/v1/healthz", "", 200, ts},
		{"v1_jobs_list.golden", http.MethodGet, "/v1/jobs", "", 200, ts},
		{"v1_jobs_list_page.golden", http.MethodGet, "/v1/jobs?limit=2", "", 200, ts},
		{"v1_jobs_list_parked.golden", http.MethodGet, "/v1/jobs?state=parked", "", 200, ts},
		{"v1_jobs_list_tenant.golden", http.MethodGet, "/v1/jobs?tenant=acme", "", 200, tenants},
		{"v1_jobs_get.golden", http.MethodGet, "/v1/jobs/panda", "", 200, ts},
		{"v1_queries.golden", http.MethodGet, "/v1/queries", "", 200, ts},
		{"v1_query.golden", http.MethodGet, "/v1/queries/panda", "", 200, ts},
		{"v1_scheduler.golden", http.MethodGet, "/v1/scheduler", "", 200, ts},
		{"v1_metrics.golden", http.MethodGet, "/v1/metrics", "", 200, ts},
		{"v1_aggregators.golden", http.MethodGet, "/v1/aggregators", "", 200, ts},
		// The enumeration surface and the kind filter.
		{"v1_enums_list.golden", http.MethodGet, "/v1/enumerations", "", 200, enums},
		{"v1_enums_get.golden", http.MethodGet, "/v1/enumerations/finch", "", 200, enums},
		{"v1_jobs_list_kind.golden", http.MethodGet, "/v1/jobs?kind=enumeration", "", 200, enums},
		{"v1_jobs_list_kind_batch.golden", http.MethodGet, "/v1/jobs?kind=batch", "", 200, enums},
		// Error envelopes.
		{"v1_error_job_notfound.golden", http.MethodGet, "/v1/jobs/nope", "", 404, ts},
		{"v1_error_query_notfound.golden", http.MethodGet, "/v1/queries/nope", "", 404, ts},
		{"v1_error_bad_limit.golden", http.MethodGet, "/v1/jobs?limit=many", "", 400, ts},
		{"v1_error_bad_state.golden", http.MethodGet, "/v1/jobs?state=limbo", "", 400, ts},
		{"v1_error_bad_kind.golden", http.MethodGet, "/v1/jobs?kind=mystery", "", 400, ts},
		{"v1_error_enum_notfound.golden", http.MethodGet, "/v1/enumerations/nope", "", 404, ts},
		{"v1_error_bad_token.golden", http.MethodGet, "/v1/jobs?page_token=%21%21", "", 400, ts},
		// "Li4vZXZpbA" decodes cleanly — to "../evil", which no submission
		// could ever have named, so the token is forged rather than stale.
		{"v1_error_bad_token_name.golden", http.MethodGet, "/v1/jobs?page_token=Li4vZXZpbA", "", 400, ts},
		{"v1_error_bad_action.golden", http.MethodPost, "/v1/jobs/panda:frobnicate", "", 400, ts},
		{"v1_error_no_action.golden", http.MethodPost, "/v1/jobs/panda", "", 404, ts},
		{"v1_error_no_route.golden", http.MethodGet, "/v1/nope", "", 404, ts},
		{"v1_error_bad_submission.golden", http.MethodPost, "/v1/jobs", "{not json", 400, ts},
		{"v1_error_unknown_aggregator.golden", http.MethodPost, "/v1/jobs", `{"name":"agg-test","aggregator":"consensus-9000"}`, 400, ts},
		{"v1_error_unattached_jobs.golden", http.MethodGet, "/v1/jobs", "", 503, bare},
		{"v1_error_unattached_sched.golden", http.MethodGet, "/v1/scheduler", "", 503, bare},
	}
	for _, c := range cases {
		t.Run(c.golden, func(t *testing.T) {
			var body io.Reader
			if c.body != "" {
				body = strings.NewReader(c.body)
			}
			req, err := http.NewRequest(c.method, c.server.URL+c.path, body)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := c.server.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != c.status {
				t.Fatalf("%s %s: status %d, want %d", c.method, c.path, resp.StatusCode, c.status)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
			if id := resp.Header.Get("X-Request-Id"); id == "" {
				t.Error("response missing X-Request-Id")
			}
			if dep := resp.Header.Get("Deprecation"); dep != "" {
				t.Errorf("v1 route carries Deprecation header %q", dep)
			}
			got, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", c.golden)
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("%s %s drifted from %s:\n got: %s\nwant: %s",
					c.method, c.path, path, got, want)
			}
		})
	}
}

// TestUnknownAggregatorOnLegacySurface: the structured rejection is
// shared with the pre-v1 submit route — the same envelope bytes as the
// v1 golden, just with the legacy route's Deprecation header on top.
func TestUnknownAggregatorOnLegacySurface(t *testing.T) {
	ts := httptest.NewServer(goldenServer().Handler())
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"name":"agg-test","aggregator":"consensus-9000"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST /jobs = %d, want 400", resp.StatusCode)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "v1_error_unknown_aggregator.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("legacy surface envelope differs from v1:\n got: %s\nwant: %s", got, want)
	}
}

// TestLegacyAliasesDeprecated pins the compatibility contract of the
// pre-v1 routes: same bodies as always (the legacy golden files), plus
// a Deprecation header and a successor-version Link.
func TestLegacyAliasesDeprecated(t *testing.T) {
	ts := httptest.NewServer(goldenServer().Handler())
	defer ts.Close()
	cases := []struct {
		golden    string
		path      string
		successor string
	}{
		{"jobs_list.golden", "/jobs", "/v1/jobs"},
		{"jobs_get.golden", "/jobs/panda", "/v1/jobs/{name}"},
		{"metrics.golden", "/api/metrics", "/v1/metrics"},
		{"scheduler.golden", "/api/scheduler", "/v1/scheduler"},
		{"queries.golden", "/api/queries", "/v1/queries"},
		{"query.golden", "/api/query?name=panda", "/v1/queries/{name}"},
	}
	for _, c := range cases {
		t.Run(c.path, func(t *testing.T) {
			resp, err := ts.Client().Get(ts.URL + c.path)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s = %d", c.path, resp.StatusCode)
			}
			if dep := resp.Header.Get("Deprecation"); dep != "true" {
				t.Errorf("Deprecation = %q, want \"true\"", dep)
			}
			link := resp.Header.Get("Link")
			if !strings.Contains(link, c.successor) || !strings.Contains(link, "successor-version") {
				t.Errorf("Link = %q, want successor-version pointing at %s", link, c.successor)
			}
			got, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", c.golden))
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Errorf("legacy %s body drifted from its golden shape:\n got: %s\nwant: %s", c.path, got, want)
			}
		})
	}
}
