// Package privacy implements the engine's privacy manager (Section 2.1):
// before human tasks disclose data to the public crowd, question text is
// sanitised (user handles, e-mail addresses, phone numbers and URLs are
// masked), and individual workers can be barred from a task.
package privacy

import (
	"regexp"
	"sync"

	"cdas/internal/crowd"
)

// Replacement masks inserted by Sanitize.
const (
	MaskHandle = "@[user]"
	MaskEmail  = "[email]"
	MaskPhone  = "[phone]"
	MaskURL    = "[link]"
)

var (
	// reEmail must run before reHandle: "a@b.com" would otherwise lose
	// its domain to the handle mask.
	reEmail  = regexp.MustCompile(`[A-Za-z0-9._%+\-]+@[A-Za-z0-9.\-]+\.[A-Za-z]{2,}`)
	reHandle = regexp.MustCompile(`@[A-Za-z0-9_]{2,}`)
	reURL    = regexp.MustCompile(`https?://\S+`)
	rePhone  = regexp.MustCompile(`\+?\d[\d\- ]{7,}\d`)
)

// Manager sanitises outgoing question text and enforces per-task worker
// rejections. It is safe for concurrent use. The zero value sanitises with
// the default patterns and blocks nobody.
type Manager struct {
	mu      sync.RWMutex
	blocked map[string]struct{}
}

// NewManager returns a Manager with no blocked workers.
func NewManager() *Manager { return &Manager{blocked: make(map[string]struct{})} }

// Sanitize masks handles, e-mails, URLs and phone numbers in text.
func (m *Manager) Sanitize(text string) string {
	text = reURL.ReplaceAllString(text, MaskURL)
	text = reEmail.ReplaceAllString(text, MaskEmail)
	text = reHandle.ReplaceAllString(text, MaskHandle)
	text = rePhone.ReplaceAllString(text, MaskPhone)
	return text
}

// SanitizeQuestion returns a copy of q with its text sanitised. The
// answer domain and ground truth are never modified — masking must not
// change what the right answer is.
func (m *Manager) SanitizeQuestion(q crowd.Question) crowd.Question {
	q.Text = m.Sanitize(q.Text)
	return q
}

// BlockWorker bars a worker from this task; their future answers are
// discarded by the engine.
func (m *Manager) BlockWorker(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.blocked == nil {
		m.blocked = make(map[string]struct{})
	}
	m.blocked[id] = struct{}{}
}

// UnblockWorker lifts a bar.
func (m *Manager) UnblockWorker(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.blocked, id)
}

// Blocked reports whether the worker is barred.
func (m *Manager) Blocked(id string) bool {
	if m == nil {
		return false
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.blocked[id]
	return ok
}
