package loadgen

import (
	"reflect"
	"testing"
)

// TestRunMatrix: the sweep produces one cell per (aggregator, overlap)
// coordinate, the overlap axis binds (more allowed workers means more
// votes and spend), and the whole matrix is deterministic for a seed.
func TestRunMatrix(t *testing.T) {
	cfg := MatrixConfig{
		Seed:        11,
		Questions:   8,
		Aggregators: []string{"cdas", "majority"},
		Overlaps:    []int{3, 7},
		HITSize:     8,
	}
	m, err := RunMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) != 4 {
		t.Fatalf("got %d cells, want 4: %+v", len(m.Cells), m.Cells)
	}
	for _, agg := range cfg.Aggregators {
		for _, w := range cfg.Overlaps {
			c, ok := m.Cell(agg, w)
			if !ok {
				t.Fatalf("no cell for %s/w%d", agg, w)
			}
			if c.Questions != cfg.Questions {
				t.Errorf("%s/w%d: %d questions, want %d", agg, w, c.Questions, cfg.Questions)
			}
			if c.Votes <= 0 || c.Cost <= 0 || c.CostPerQuestion <= 0 {
				t.Errorf("%s/w%d: empty measurement %+v", agg, w, c)
			}
			if c.Accuracy < 0 || c.Accuracy > 1 {
				t.Errorf("%s/w%d: accuracy %v out of range", agg, w, c.Accuracy)
			}
		}
		// The overlap axis must bind: a higher cap buys more votes.
		lo, _ := m.Cell(agg, 3)
		hi, _ := m.Cell(agg, 7)
		if hi.Votes <= lo.Votes || hi.Cost <= lo.Cost {
			t.Errorf("%s: overlap cap not binding: w3=%+v w7=%+v", agg, lo, hi)
		}
	}
	if _, ok := m.Cell("cdas", 99); ok {
		t.Error("Cell returned a measurement for an unswept overlap")
	}

	again, err := RunMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, again) {
		t.Errorf("matrix not deterministic:\n first: %+v\nsecond: %+v", m, again)
	}
}

func TestRunMatrixUnknownAggregator(t *testing.T) {
	_, err := RunMatrix(MatrixConfig{Seed: 1, Aggregators: []string{"consensus-9000"}})
	if err == nil {
		t.Fatal("RunMatrix accepted an unknown aggregator")
	}
}
