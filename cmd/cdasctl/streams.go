// The streams command group: cdasctl streams <list|submit|get|cancel|
// watch> drives the /v1/streams surface — standing (continuous)
// queries whose results arrive window by window.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"

	"cdas/api"
	"cdas/client"
)

// cmdStreams dispatches the streams sub-subcommands.
func cmdStreams(ctx context.Context, c *client.Client, args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		args = []string{"list"}
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "list":
		return cmdStreamList(ctx, c, stdout)
	case "submit":
		return cmdStreamSubmit(ctx, c, rest, stdout, stderr)
	case "get":
		return oneStream(rest, func(name string) (api.StreamStatus, error) { return c.Stream(ctx, name) }, stdout)
	case "cancel":
		return oneStream(rest, func(name string) (api.StreamStatus, error) { return c.CancelStream(ctx, name) }, stdout)
	case "watch":
		if len(rest) != 1 {
			return fmt.Errorf("expected exactly one stream name, got %d args", len(rest))
		}
		return watchStream(ctx, c, rest[0], stdout)
	default:
		return fmt.Errorf("unknown streams subcommand %q (want list, submit, get, cancel or watch)", sub)
	}
}

// oneStream runs a single-name SDK call (get/cancel) and prints the
// resulting record.
func oneStream(args []string, call func(name string) (api.StreamStatus, error), stdout io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one stream name, got %d args", len(args))
	}
	st, err := call(args[0])
	if err != nil {
		return err
	}
	return printJSON(stdout)(st, nil)
}

func cmdStreamList(ctx context.Context, c *client.Client, stdout io.Writer) error {
	streams, err := c.ListStreams(ctx)
	if err != nil {
		return err
	}
	tw := newTabWriter(stdout)
	fmt.Fprintln(tw, "NAME\tSTATE\tWINDOWS\tSEEN\tMATCHED\tDROPPED\tDEGRADED\tSPENT\tERROR")
	for _, st := range streams {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%.3f\t%s\n",
			st.Name, st.State, st.WindowsClosed, st.Seen, st.Matched, st.Dropped, st.Degraded, st.Spent, st.Error)
	}
	tw.Flush()
	fmt.Fprintf(stdout, "%d stream(s)\n", len(streams))
	return nil
}

func cmdStreamSubmit(ctx context.Context, c *client.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("streams submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name       = fs.String("name", "", "stream name (required)")
		keywords   = fs.String("keywords", "", "comma-separated filter keywords (required)")
		domain     = fs.String("domain", "Positive,Neutral,Negative", "comma-separated answer domain")
		accuracy   = fs.Float64("accuracy", 0.9, "required accuracy C in (0,1)")
		window     = fs.String("window", "1m", "tumbling window width (Go duration)")
		lateness   = fs.String("lateness", "", "watermark lag (Go duration; empty = window/2)")
		targetFill = fs.String("target-fill", "", "adaptive batch fill target (Go duration; empty = window/2)")
		capacity   = fs.Int("capacity", 0, "crowd questions per window (0 = engine slots per HIT)")
		backlog    = fs.Int("max-backlog", 0, "buffered matched items across open windows (0 = 4x capacity)")
		items      = fs.Int("items", 0, "built-in source size (0 = server default)")
		rate       = fs.Float64("rate", 0, "built-in source mean arrivals per second of event time")
		seed       = fs.Uint64("source-seed", 0, "built-in source arrival seed")
		start      = fs.String("start", "", "stream origin (RFC 3339; empty = now)")
		priority   = fs.Int("priority", 0, "budget-admission priority (higher first)")
		budget     = fs.Float64("budget", 0, "crowd-spend cap (0 = unlimited)")
		aggregator = fs.String("aggregator", "", "answer-aggregation method (empty = server default)")
		watch      = fs.Bool("watch", false, "stream the window closes after submitting")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" || *keywords == "" {
		return fmt.Errorf("streams submit needs -name and -keywords")
	}
	st, err := c.SubmitStream(ctx, api.StreamSubmission{
		Name:             *name,
		Keywords:         splitList(*keywords),
		RequiredAccuracy: *accuracy,
		Domain:           splitList(*domain),
		Start:            *start,
		Window:           *window,
		Lateness:         *lateness,
		TargetFill:       *targetFill,
		WindowCapacity:   *capacity,
		MaxBacklog:       *backlog,
		Items:            *items,
		Rate:             *rate,
		SourceSeed:       *seed,
		Priority:         *priority,
		Budget:           *budget,
		Aggregator:       *aggregator,
	})
	if err != nil {
		return err
	}
	if err := printJSON(stdout)(st, nil); err != nil {
		return err
	}
	if *watch {
		return watchStream(ctx, c, *name, stdout)
	}
	return nil
}

// watchStream streams window-close SSE events, rendering one line per
// window until the terminal event arrives.
func watchStream(ctx context.Context, c *client.Client, name string, stdout io.Writer) error {
	events, err := c.WatchStream(ctx, name)
	if err != nil {
		return err
	}
	for ev := range events {
		if ev.Err != nil {
			return ev.Err
		}
		st := ev.Event.State
		if w := ev.Event.Window; w != nil {
			shed := ""
			if w.Shed {
				shed = " shed"
			}
			fmt.Fprintf(stdout, "%s rev=%d window=%d items=%d answered=%d degraded=%d dropped=%d batch=%d cost=%.3f%s%s\n",
				ev.Type, ev.ID, w.Window, w.Items, w.Answered, w.Degraded, w.Dropped, w.BatchSize, w.Cost, shed,
				formatStreamPercentages(w.Percentages, st.Domain))
		} else {
			fmt.Fprintf(stdout, "%s rev=%d windows=%d seen=%d matched=%d dropped=%d spent=%.3f\n",
				ev.Type, ev.ID, st.WindowsClosed, st.Seen, st.Matched, st.Dropped, st.Spent)
		}
		if ev.Type == api.EventDone {
			if st.Error != "" {
				return fmt.Errorf("stream %q finished with error: %s", name, st.Error)
			}
			return nil
		}
	}
	return fmt.Errorf("watch %q: stream ended before the terminal event", name)
}

func formatStreamPercentages(pct map[string]float64, domain []string) string {
	if len(pct) == 0 {
		return ""
	}
	st := api.QueryState{Percentages: pct, Domain: domain}
	return formatPercentages(st)
}
