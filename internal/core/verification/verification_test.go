package verification

import (
	"math"
	"testing"
	"testing/quick"
)

// paperVotes is the worked example of Tables 3 and 4: five workers with
// accuracies .54/.31/.49/.73/.46 answering pos/pos/neu/neg/pos about the
// "Green Lantern" tweet, answer domain {pos, neu, neg} (m = 3).
var paperVotes = []Vote{
	{Worker: "w1", Accuracy: 0.54, Answer: "pos"},
	{Worker: "w2", Accuracy: 0.31, Answer: "pos"},
	{Worker: "w3", Accuracy: 0.49, Answer: "neu"},
	{Worker: "w4", Accuracy: 0.73, Answer: "neg"},
	{Worker: "w5", Accuracy: 0.46, Answer: "pos"},
}

func TestPaperTable4Verification(t *testing.T) {
	res, err := Verify(paperVotes, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Best().Answer; got != "neg" {
		t.Errorf("verification picked %q, paper's Table 4 picks \"neg\"", got)
	}
	// Table 4 reports pos 0.329, neu 0.176, neg 0.495.
	for answer, want := range map[string]float64{"pos": 0.329, "neu": 0.176, "neg": 0.495} {
		if got := res.Confidence(answer); math.Abs(got-want) > 5e-4 {
			t.Errorf("confidence(%s) = %.4f, paper reports %.3f", answer, got, want)
		}
	}
}

func TestPaperTable4VotingBaselines(t *testing.T) {
	// Table 4: both voting baselines pick "pos" (3 of 5 votes).
	if a, ok := HalfVoting(paperVotes); !ok || a != "pos" {
		t.Errorf("HalfVoting = %q/%v, want pos/true", a, ok)
	}
	if a, ok := MajorityVoting(paperVotes); !ok || a != "pos" {
		t.Errorf("MajorityVoting = %q/%v, want pos/true", a, ok)
	}
}

func TestVerifyEmptyVotes(t *testing.T) {
	if _, err := Verify(nil, 3); err != ErrNoVotes {
		t.Errorf("err = %v, want ErrNoVotes", err)
	}
}

func TestVerifyConfidencesSumToOne(t *testing.T) {
	f := func(a1, a2, a3 float64, pick1, pick2, pick3 uint8) bool {
		domain := []string{"x", "y", "z", "w"}
		votes := []Vote{
			{Accuracy: math.Abs(math.Mod(a1, 1)), Answer: domain[int(pick1)%4]},
			{Accuracy: math.Abs(math.Mod(a2, 1)), Answer: domain[int(pick2)%4]},
			{Accuracy: math.Abs(math.Mod(a3, 1)), Answer: domain[int(pick3)%4]},
		}
		res, err := Verify(votes, 4)
		if err != nil {
			return false
		}
		sum := res.UnobservedMass
		if sum < 0 {
			return false
		}
		for _, s := range res.Ranked {
			if s.Confidence < 0 || s.Confidence > 1 || math.IsNaN(s.Confidence) {
				return false
			}
			sum += s.Confidence
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVerifyEqualAccuraciesMatchesMajority(t *testing.T) {
	// With identical accuracies > 1/2 every worker has the same weight, so
	// verification degenerates to majority voting whenever a strict
	// majority winner exists.
	f := func(picks []uint8) bool {
		if len(picks) == 0 {
			return true
		}
		domain := []string{"a", "b", "c"}
		votes := make([]Vote, len(picks))
		for i, p := range picks {
			votes[i] = Vote{Accuracy: 0.7, Answer: domain[int(p)%3]}
		}
		maj, ok := MajorityVoting(votes)
		if !ok {
			return true // tie: verification may break it either way
		}
		res, err := Verify(votes, 3)
		if err != nil {
			return false
		}
		return res.Best().Answer == maj
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVerifySingleVote(t *testing.T) {
	// One vote from a 90%-accurate worker in a binary domain: Equation 4
	// gives exactly the Bayesian posterior 0.9 — the unvoted answer keeps
	// e^0 in the denominator.
	res, err := Verify([]Vote{{Accuracy: 0.9, Answer: "yes"}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best().Answer != "yes" {
		t.Fatalf("single vote: got %+v, want yes", res.Best())
	}
	if got := res.Best().Confidence; math.Abs(got-0.9) > 1e-9 {
		t.Errorf("single-vote confidence = %v, want 0.9", got)
	}
	if got := res.UnobservedMass; math.Abs(got-0.1) > 1e-9 {
		t.Errorf("unobserved mass = %v, want 0.1", got)
	}
}

func TestVerifyUnobservedMassZeroWhenDomainSaturated(t *testing.T) {
	res, err := Verify(paperVotes, 3) // all 3 domain answers observed
	if err != nil {
		t.Fatal(err)
	}
	if res.UnobservedMass != 0 {
		t.Errorf("unobserved mass = %v, want 0", res.UnobservedMass)
	}
}

func TestVerifyHighAccuracyMinorityWins(t *testing.T) {
	// The core paper claim: one accurate worker can outweigh several
	// near-random workers.
	votes := []Vote{
		{Accuracy: 0.51, Answer: "a"},
		{Accuracy: 0.51, Answer: "a"},
		{Accuracy: 0.51, Answer: "a"},
		{Accuracy: 0.99, Answer: "b"},
	}
	res, err := Verify(votes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best().Answer != "b" {
		t.Errorf("expected the expert's answer to win, got %+v", res.Ranked)
	}
}

func TestVerifyBelowChanceWorkerCountsAgainst(t *testing.T) {
	// A worker with accuracy < 1/m has negative confidence in a binary
	// domain: their vote should lower the answer's standing.
	base := []Vote{{Accuracy: 0.8, Answer: "a"}, {Accuracy: 0.8, Answer: "b"}}
	with := append(append([]Vote(nil), base...), Vote{Accuracy: 0.1, Answer: "a"})
	resBase, err := Verify(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	resWith, err := Verify(with, 2)
	if err != nil {
		t.Fatal(err)
	}
	if resWith.Confidence("a") >= resBase.Confidence("a") {
		t.Errorf("anti-correlated vote raised confidence: %v -> %v",
			resBase.Confidence("a"), resWith.Confidence("a"))
	}
}

func TestVerifyDomainSizeEffect(t *testing.T) {
	// Larger m boosts the weight of agreement: with m=2 vs m=10 the same
	// votes give different confidences (ln(m-1) term).
	votes := []Vote{
		{Accuracy: 0.7, Answer: "a"},
		{Accuracy: 0.7, Answer: "a"},
		{Accuracy: 0.7, Answer: "b"},
	}
	res2, err := Verify(votes, 2)
	if err != nil {
		t.Fatal(err)
	}
	res10, err := Verify(votes, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !(res10.Confidence("a") > res2.Confidence("a")) {
		t.Errorf("m=10 confidence %v should exceed m=2 confidence %v",
			res10.Confidence("a"), res2.Confidence("a"))
	}
}

func TestVerifyAutoM(t *testing.T) {
	// m <= 0 triggers estimation; with 3 distinct answers the estimate is
	// at least 3 and the result is well-formed.
	votes := []Vote{
		{Accuracy: 0.8, Answer: "a"},
		{Accuracy: 0.6, Answer: "b"},
		{Accuracy: 0.7, Answer: "c"},
	}
	res, err := Verify(votes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.M < 3 {
		t.Errorf("estimated m = %d, want >= 3", res.M)
	}
}

func TestVerifyExtremeAccuraciesFinite(t *testing.T) {
	votes := []Vote{
		{Accuracy: 1.0, Answer: "a"},
		{Accuracy: 0.0, Answer: "b"},
	}
	res, err := Verify(votes, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Ranked {
		if math.IsNaN(s.Confidence) || math.IsInf(s.Confidence, 0) {
			t.Errorf("non-finite confidence for %+v", s)
		}
	}
	if res.Best().Answer != "a" {
		t.Errorf("perfect worker should win, got %+v", res.Ranked)
	}
}

func TestWorkerConfidenceValues(t *testing.T) {
	// Definition 2 with m=3: c = ln(2a/(1-a)). Check against the Table 4
	// workers.
	cases := map[float64]float64{
		0.54: math.Log(2 * 0.54 / 0.46),
		0.73: math.Log(2 * 0.73 / 0.27),
		0.31: math.Log(2 * 0.31 / 0.69),
	}
	for a, want := range cases {
		if got := WorkerConfidence(a, 3); math.Abs(got-want) > 1e-12 {
			t.Errorf("WorkerConfidence(%v,3) = %v, want %v", a, got, want)
		}
	}
	// Monotone in accuracy.
	if !(WorkerConfidence(0.9, 3) > WorkerConfidence(0.6, 3)) {
		t.Error("worker confidence must increase with accuracy")
	}
	assertPanics(t, func() { WorkerConfidence(0.5, 1) }, "m=1")
}

func TestResultConfidenceUnknownAnswer(t *testing.T) {
	res, err := Verify(paperVotes, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Confidence("banana"); got != 0 {
		t.Errorf("unknown answer confidence = %v, want 0", got)
	}
}

func assertPanics(t *testing.T, f func(), name string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
