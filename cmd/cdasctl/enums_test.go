package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cdas/api"
	"cdas/internal/httpapi"
	"cdas/internal/jobs"
	"cdas/internal/metrics"
)

// enumBackend is a real job service + API server whose runner plays a
// scripted enumeration: two batch completions, then the terminal done
// event with a marginal-value stop — enough for enums watch to render
// the full ladder.
func enumBackend(t *testing.T) *httptest.Server {
	t.Helper()
	svc, err := jobs.OpenService(jobs.ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	srv := httpapi.NewServer()
	disp, err := jobs.NewDispatcher(svc, func(ctx context.Context, job jobs.Job, report func(float64, float64)) error {
		if job.Kind != jobs.KindEnumeration {
			report(1, 0)
			return nil
		}
		items := []api.EnumItem{
			{Key: "k0", Text: "house finch", Count: 9, Batch: 0},
			{Key: "k1", Text: "purple finch", Count: 4, Batch: 0},
			{Key: "k2", Text: "cassin's finch", Count: 1, Batch: 1},
		}
		status := func(batches int, done bool) api.EnumStatus {
			st := api.EnumStatus{
				Name:          job.Name,
				Keywords:      job.Query.Keywords,
				State:         api.JobRunning,
				Batches:       batches,
				Contributions: int64(7 * batches),
				Distinct:      min(batches+1, len(items)),
				Spent:         0.05 * float64(batches),
				Progress:      float64(batches) / 3,
				Done:          done,
				Estimate: &api.EnumEstimate{
					Observed:     min(batches+1, len(items)),
					Samples:      7 * batches,
					Total:        3.4,
					Completeness: float64(batches) / 3,
				},
				Items: items[:min(batches+1, len(items))],
			}
			if done {
				st.Stopped = api.StopMarginalValue
			}
			return st
		}
		if strings.HasPrefix(job.Name, "slow-") {
			// Leave the submitter time to attach its watcher before the
			// first batch completes, so -watch sees live batch events
			// instead of a terminal replay.
			time.Sleep(250 * time.Millisecond)
		}
		for b := 0; b < 2; b++ {
			srv.PublishEnumBatch(status(b+1, false), &api.EnumBatch{
				Batch:         b,
				Contributions: 7,
				NewItems:      items[b : b+1],
				ExpectedNew:   1.2,
				Cost:          0.05,
			})
			report(float64(b+1)/3, 0.05)
			if b == 0 && strings.HasPrefix(job.Name, "held-") {
				<-ctx.Done()
				return ctx.Err()
			}
		}
		srv.PublishEnumBatch(status(3, true), nil)
		report(1, 0.05)
		return nil
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	disp.Start()
	t.Cleanup(disp.Stop)
	srv.SetJobs(disp)
	srv.SetCounters(metrics.NewRegistry())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestCtlEnums drives the enums command group end to end: submit
// -watch renders every batch plus the terminal line, get/list show the
// growing set, the kind filter routes the job, cancel lands on a held
// enumeration.
func TestCtlEnums(t *testing.T) {
	ts := enumBackend(t)

	code, out, errOut := ctl(t, ts.URL, "enums", "submit",
		"-name", "slow-finch", "-keywords", "finch species",
		"-item-value", "0.05", "-universe", "12", "-source-seed", "7", "-watch")
	if code != 0 {
		t.Fatalf("enums submit -watch exited %d: %s", code, errOut)
	}
	var st api.JobStatus
	dec := json.NewDecoder(strings.NewReader(out))
	if err := dec.Decode(&st); err != nil {
		t.Fatalf("submit output not a JobStatus: %v\n%s", err, out)
	}
	if st.Name != "slow-finch" || st.Kind != string(api.KindEnumeration) {
		t.Errorf("submitted enumeration = %+v", st)
	}
	if !strings.Contains(out, "batch rev=") || !strings.Contains(out, "+house finch") {
		t.Errorf("watch output missing batch lines:\n%s", out)
	}
	if !strings.Contains(out, "done rev=") || !strings.Contains(out, "stopped=marginal_value") {
		t.Errorf("watch output missing the terminal done line:\n%s", out)
	}

	// get prints the enumeration view as JSON; the bare command lists it.
	code, out, errOut = ctl(t, ts.URL, "enums", "get", "slow-finch")
	if code != 0 || !strings.Contains(out, `"distinct": 3`) || !strings.Contains(out, `"stopped": "marginal_value"`) {
		t.Errorf("enums get exited %d: %s / %s", code, out, errOut)
	}
	code, out, _ = ctl(t, ts.URL, "enums")
	if code != 0 || !strings.Contains(out, "NAME") || !strings.Contains(out, "slow-finch") ||
		!strings.Contains(out, "1 enumeration(s)") {
		t.Errorf("enums list output:\n%s", out)
	}

	// The top-level list's kind filter finds it — and excludes it from
	// the batch family.
	code, out, _ = ctl(t, ts.URL, "list", "-kind", "enumeration")
	if code != 0 || !strings.Contains(out, "slow-finch") || !strings.Contains(out, "1 job(s)") {
		t.Errorf("list -kind enumeration output:\n%s", out)
	}
	code, out, _ = ctl(t, ts.URL, "list", "-kind", "batch")
	if code != 0 || !strings.Contains(out, "0 job(s)") {
		t.Errorf("list -kind batch output:\n%s", out)
	}

	// watch on a finished enumeration replays straight to done.
	code, out, errOut = ctl(t, ts.URL, "enums", "watch", "slow-finch")
	if code != 0 || !strings.Contains(out, "done rev=") {
		t.Errorf("enums watch exited %d: %s / %s", code, out, errOut)
	}

	// cancel a held enumeration mid-run.
	if code, _, errOut := ctl(t, ts.URL, "enums", "submit",
		"-name", "held-wren", "-keywords", "wren", "-item-value", "0.05"); code != 0 {
		t.Fatalf("submit held-wren exited %d: %s", code, errOut)
	}
	code, out, errOut = ctl(t, ts.URL, "enums", "cancel", "held-wren")
	if code != 0 {
		t.Fatalf("enums cancel exited %d: %s", code, errOut)
	}
	if !strings.Contains(out, `"held-wren"`) {
		t.Errorf("cancel output: %s", out)
	}
}

func TestCtlEnumsErrors(t *testing.T) {
	ts := enumBackend(t)
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"unknown subcommand", []string{"enums", "frobnicate"}},
		{"get without name", []string{"enums", "get"}},
		{"get unknown", []string{"enums", "get", "ghost"}},
		{"cancel unknown", []string{"enums", "cancel", "ghost"}},
		{"watch without name", []string{"enums", "watch"}},
		{"submit without name", []string{"enums", "submit", "-keywords", "x", "-item-value", "0.05"}},
		{"submit bad flag", []string{"enums", "submit", "-name", "x", "-keywords", "x", "-bogus"}},
		{"submit without item value", []string{"enums", "submit", "-name", "x", "-keywords", "x"}},
		{"bad kind filter", []string{"list", "-kind", "mystery"}},
	} {
		if code, _, errOut := ctl(t, ts.URL, tc.args...); code == 0 {
			t.Errorf("%s: exited 0, want failure (stderr %q)", tc.name, errOut)
		}
	}
}
