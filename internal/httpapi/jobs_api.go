// Write API for the durable job service: submit, inspect and cancel
// analytics jobs over HTTP. The DTOs are the cdas/api wire contract;
// the legacy /jobs routes here serve the same shapes they always did
// (now with a Deprecation header), while v1.go mounts the versioned
// successors.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"

	"cdas/api"
	"cdas/internal/core/aggregate"
	"cdas/internal/jobs"
	"cdas/internal/metrics"
)

// JobController is the slice of the job service the API needs.
// *jobs.Dispatcher satisfies it. Listing goes exclusively through
// StatusesPage: no handler materializes the full job table, so the API
// stays O(page) however many jobs the store holds.
type JobController interface {
	Submit(jobs.Job) (jobs.Plan, error)
	Status(name string) (jobs.Status, bool)
	// StatusesPage lists up to limit records in name order strictly
	// after the given name, optionally filtered by state and/or tenant;
	// more reports that records beyond the page remain. Backed by the
	// service's secondary indexes, so a page costs O(limit), not a sort
	// of every job.
	StatusesPage(after string, limit int, state jobs.State, tenant string) (page []jobs.Status, more bool)
	Cancel(name string) error
	Unpark(name string) error
}

// SetJobs attaches the job service behind the write API. Call before
// serving; a Server without a controller answers job routes with 503.
func (s *Server) SetJobs(c JobController) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobsCtl = c
}

// SetCounters attaches an operational-counter registry served at
// GET /v1/metrics (and the deprecated /api/metrics).
func (s *Server) SetCounters(r *metrics.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters = r
}

func (s *Server) jobs() JobController {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.jobsCtl
}

// JobSubmission is the job-submission request body — the api wire type.
type JobSubmission = api.JobSubmission

// JobStatus is the wire form of a job's lifecycle record — the api wire
// type, with the live query results attached when the run has published
// any.
type JobStatus = api.JobStatus

// jobStatus renders a lifecycle record onto the wire contract.
func (s *Server) jobStatus(st jobs.Status) JobStatus {
	out := JobStatus{
		Name:       st.Job.Name,
		Kind:       string(st.Job.Kind),
		Keywords:   st.Job.Query.Keywords,
		State:      api.JobState(st.State),
		Attempts:   st.Attempts,
		Progress:   st.Progress,
		Cost:       st.Cost,
		Priority:   st.Job.Priority,
		Budget:     st.Job.Budget,
		Aggregator: st.Job.Aggregator,
		Tenant:     st.Job.Tenant,
		Error:      st.Error,
	}
	if qs, ok := s.Get(st.Job.Name); ok {
		out.Results = &qs
	}
	return out
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	s.submitJob(w, r, "/jobs/")
}

// submitJob is the shared submit implementation; locPrefix distinguishes
// the v1 and legacy Location headers.
func (s *Server) submitJob(w http.ResponseWriter, r *http.Request, locPrefix string) {
	ctl, ok := s.requireJobs(w)
	if !ok {
		return
	}
	var sub JobSubmission
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sub); err != nil {
		writeError(w, api.InvalidArgument("bad submission: %v", err))
		return
	}
	// An unknown aggregation method gets its own error code, with the
	// registry listed in Detail — the fix is discoverable from the error
	// alone (or from GET /v1/aggregators).
	if err := aggregate.Validate(sub.Aggregator); err != nil {
		writeError(w, api.UnknownAggregator(sub.Aggregator, aggregate.Names()))
		return
	}
	job, err := jobFromSubmission(sub)
	if err != nil {
		writeError(w, api.InvalidArgument("%v", err))
		return
	}
	if err := checkJobName(job.Name); err != nil {
		writeError(w, api.InvalidArgument("%v", err))
		return
	}
	if _, err := ctl.Submit(job); err != nil {
		// Registration rejects semantically invalid jobs with plain
		// errors; only a duplicate name is a conflict.
		if errors.Is(err, jobs.ErrDuplicateJob) {
			writeError(w, api.Conflict("%v", err))
		} else {
			writeError(w, api.InvalidArgument("%v", err))
		}
		return
	}
	st, _ := ctl.Status(job.Name)
	// writeJSONStatus sets Content-Type exactly once, before the status
	// line freezes the headers.
	w.Header().Set("Location", locPrefix+url.PathEscape(job.Name))
	writeJSONStatus(w, http.StatusCreated, s.jobStatus(st))
}

// checkJobName rejects names that cannot round-trip through the
// /v1/jobs/{name} path: a ServeMux wildcard spans a single segment, so
// a job named with a "/" (or a dot segment) could be created but never
// fetched or cancelled over HTTP, and ":" would collide with the
// {name}:unpark custom-method syntax.
func checkJobName(name string) error {
	if strings.ContainsAny(name, "/\\:") || name == "." || name == ".." {
		return fmt.Errorf("job name %q must not contain path separators or ':'", name)
	}
	for _, r := range name {
		if r < 0x20 || r == 0x7f {
			return fmt.Errorf("job name %q must not contain control characters", name)
		}
	}
	return nil
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	ctl, ok := s.requireJobs(w)
	if !ok {
		return
	}
	// The legacy route's contract is the full unfiltered listing; build
	// it by paging the index so even this route never asks the service
	// to materialize the whole table in one call.
	out := []JobStatus{}
	after := ""
	for {
		page, more := ctl.StatusesPage(after, maxPageSize, "", "")
		for _, st := range page {
			out = append(out, s.jobStatus(st))
		}
		if !more {
			break
		}
		after = page[len(page)-1].Job.Name
	}
	writeJSON(w, out)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	ctl, ok := s.requireJobs(w)
	if !ok {
		return
	}
	name := r.PathValue("name")
	st, ok := ctl.Status(name)
	if !ok {
		writeError(w, api.NotFound("no such job %q", name))
		return
	}
	writeJSON(w, s.jobStatus(st))
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	ctl, ok := s.requireJobs(w)
	if !ok {
		return
	}
	name := r.PathValue("name")
	if err := ctl.Cancel(name); err != nil {
		// Cancelling an already-terminal job is the same structured 409
		// envelope the v1 route serves — consistent on both surfaces.
		writeError(w, jobError(err))
		return
	}
	st, _ := ctl.Status(name)
	writeJSON(w, s.jobStatus(st))
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	reg := s.counters
	s.mu.RUnlock()
	writeJSON(w, reg.Snapshot())
}
