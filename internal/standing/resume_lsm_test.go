package standing

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"cdas/internal/crowd"
	"cdas/internal/engine"
	"cdas/internal/exec"
	"cdas/internal/jobs"
	"cdas/internal/metrics"
	"cdas/internal/scheduler"
	"cdas/internal/textgen"
)

// windowCollector records published window closes across a run.
type windowCollector struct {
	mu   sync.Mutex
	wins []WindowResult
	done bool
}

func (c *windowCollector) publish(_ jobs.Job, win *WindowResult, _ jobs.StreamMark, _ exec.Summary, _ float64, d bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if win != nil {
		c.wins = append(c.wins, *win)
	}
	c.done = c.done || d
}

func (c *windowCollector) windows() []WindowResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]WindowResult(nil), c.wins...)
}

// delayedPlatform paces HIT publication so the first incarnation has a
// mid-stream moment to die in.
type delayedPlatform struct {
	engine.Platform
	delay time.Duration
}

func (p delayedPlatform) Publish(hit crowd.HIT, n int) (engine.Run, error) {
	time.Sleep(p.delay)
	return p.Platform.Publish(hit, n)
}

// killIncarnation wires one process lifetime: scheduler (charging the
// service's budget ledger), full-barrier coordinator, standing runner
// with a window collector, and a single-worker dispatcher.
func killIncarnation(t *testing.T, svc *jobs.Service, counters *metrics.Registry, delay time.Duration) (*jobs.Dispatcher, *windowCollector, func()) {
	t.Helper()
	platform, err := crowd.NewPlatform(crowd.DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	golden := make([]crowd.Question, 12)
	for i := range golden {
		golden[i] = crowd.Question{
			ID:     fmt.Sprintf("golden/g%03d", i),
			Text:   fmt.Sprintf("Calibration tweet #%d", i),
			Domain: append([]string(nil), textgen.Labels...),
			Truth:  textgen.LabelNeutral,
		}
	}
	var pf engine.Platform = engine.CrowdPlatform{Platform: platform}
	if delay > 0 {
		pf = delayedPlatform{Platform: pf, delay: delay}
	}
	sched, err := scheduler.New(scheduler.Config{
		Platform: pf,
		Engine:   engine.Config{HITSize: 20, MaxInflightHITs: 4, Seed: 9},
		Golden:   golden,
		OnCharge: func(job string, amount float64) { _ = svc.ChargeBudget(job, amount) },
		Counters: counters,
	})
	if err != nil {
		t.Fatal(err)
	}
	col := &windowCollector{}
	runner := NewRunner(RunnerConfig{
		Scheduler: sched,
		Coord:     NewCoordinator(sched, 0),
		Marks:     svc,
		Counters:  counters,
		Publish:   col.publish,
	})
	disp, err := jobs.NewDispatcher(svc, runner, 1)
	if err != nil {
		sched.Close()
		t.Fatal(err)
	}
	return disp, col, sched.Close
}

// TestStandingKillResume is the durability contract end to end on the
// LSM store: kill -9 mid-stream (the store stops accepting writes with
// windows still open), reopen, and the resumed run continues from the
// last durably committed window — never re-running or re-charging a
// window the dead process already paid for.
func TestStandingKillResume(t *testing.T) {
	dir := t.TempDir()
	counters := metrics.NewRegistry()
	job := continuousJob("kill/thor", jobs.StreamSpec{
		Items:          96,
		Rate:           0.4,
		SourceSeed:     7,
		WindowCapacity: 5,
		MaxBacklog:     10,
	})
	job.Query.RequiredAccuracy = 0.85

	// ---- First incarnation: commit two windows, then kill -9. ----
	svc, err := jobs.OpenService(jobs.ServiceConfig{Dir: dir, Engine: jobs.EngineLSM, Counters: counters})
	if err != nil {
		t.Fatal(err)
	}
	disp, _, closeSched := killIncarnation(t, svc, counters, 25*time.Millisecond)
	disp.Start()
	if _, err := disp.Submit(job); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if mark, ok := svc.StreamMarkFor(job.Name); ok && mark.Window >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no second window committed before the deadline")
		}
		time.Sleep(time.Millisecond)
	}
	// The store dies first — exactly what a killed process leaves
	// behind: the last durable word is a committed window mark and a
	// "running" lifecycle record.
	svc.Close()
	disp.Stop()
	closeSched()
	crash, ok := svc.StreamMarkFor(job.Name)
	if !ok || crash.Window < 1 {
		t.Fatalf("crash mark = %+v ok=%v, want window >= 1", crash, ok)
	}
	if crash.Spent <= 0 {
		t.Fatalf("crash mark should carry spend, got %v", crash.Spent)
	}

	// ---- Second incarnation: replay the LSM store and resume. ----
	svc2, err := jobs.OpenService(jobs.ServiceConfig{Dir: dir, Engine: jobs.EngineLSM, Counters: counters})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	recovered, ok := svc2.StreamMarkFor(job.Name)
	if !ok || recovered != crash {
		t.Fatalf("recovered mark %+v != crash mark %+v", recovered, crash)
	}
	if len(svc2.Resumed()) == 0 {
		t.Fatal("replay should resume the interrupted continuous job")
	}
	disp2, col2, closeSched2 := killIncarnation(t, svc2, counters, 0)
	defer closeSched2()
	disp2.Start()
	deadline = time.Now().Add(30 * time.Second)
	for {
		st, ok := disp2.Status(job.Name)
		if ok && st.State.Terminal() {
			if st.State != jobs.StateDone {
				t.Fatalf("resumed job ended %s (%s), want done", st.State, st.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("resumed job never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}
	disp2.Stop()

	// The resumed run must pick up at the window after the last
	// committed one — windows the dead process paid for are not re-run.
	wins := col2.windows()
	if len(wins) == 0 {
		t.Fatal("resumed run closed no windows")
	}
	if first := wins[0].Window; first != crash.Window+1 {
		t.Errorf("resumed run started at window %d, want %d", first, crash.Window+1)
	}
	// ...and never re-charged: the final committed spend is exactly the
	// crash-time spend plus the resumed windows' costs.
	final, ok := svc2.StreamMarkFor(job.Name)
	if !ok || final.Window <= crash.Window {
		t.Fatalf("final mark = %+v, want window > %d", final, crash.Window)
	}
	var resumedCost float64
	for _, w := range wins {
		resumedCost += w.Cost
	}
	if diff := math.Abs(final.Spent - (crash.Spent + resumedCost)); diff > 1e-9 {
		t.Errorf("spend re-charged: final %v != crash %v + resumed windows %v (diff %v)",
			final.Spent, crash.Spent, resumedCost, diff)
	}
}
