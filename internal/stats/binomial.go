// Package stats implements the numeric substrate of the CDAS models:
// binomial tail probabilities (Theorem 1), Chernoff lower bounds
// (Theorem 2), harmonic numbers (Lemma 1), numerically stable
// log-sum-exp (Equation 4), histograms and descriptive statistics used by
// the experiment harness.
package stats

import (
	"fmt"
	"math"
)

// MajorityTail computes P[X >= ceil(n/2)] for X ~ Binomial(n, p): the
// probability that at least half of n independent workers with accuracy p
// return the correct answer. This is the quantity E[P_{n/2}] of Theorem 1
// in the paper; Algorithm 3 computes it with the iterative term ratio
// C(n,k-1)/C(n,k) = k/(n-k+1), which we reproduce here so no factorials or
// exponentials overflow.
func MajorityTail(n int, p float64) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("stats: MajorityTail needs n >= 1, got %d", n))
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("stats: MajorityTail needs p in [0,1], got %v", p))
	}
	return BinomialTail(n, (n+1)/2, p)
}

// BinomialTail computes P[X >= k0] for X ~ Binomial(n, p) using the ratio
// recurrence of the paper's Algorithm 3 (C(n,k-1)/C(n,k) = k/(n-k+1)), but
// anchored at the k0 term in log space and summed upward. The paper's
// formulation anchors at p^n and walks down; that underflows to zero for
// large n (e.g. 0.51^10001), whereas the k0 anchor is the largest term of
// the tail whenever k0 is at or beyond the mode, which holds for every
// majority-tail query the models issue.
func BinomialTail(n, k0 int, p float64) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("stats: BinomialTail needs n >= 1, got %d", n))
	}
	if k0 <= 0 {
		return 1
	}
	if k0 > n {
		return 0
	}
	switch p {
	case 0:
		return 0 // k0 >= 1 here
	case 1:
		return 1
	}
	q := 1 - p
	logDelta := LogChoose(n, k0) + float64(k0)*math.Log(p) + float64(n-k0)*math.Log(q)
	delta := math.Exp(logDelta)
	sum := 0.0
	for k := k0; k <= n; k++ {
		sum += delta
		// Move from the k term to the k+1 term:
		// C(n,k+1) p^{k+1} q^{n-k-1} = C(n,k) p^k q^{n-k} * (n-k)/(k+1) * p/q.
		delta = delta * float64(n-k) / float64(k+1) * p / q
	}
	if sum > 1 {
		sum = 1 // guard against accumulated round-off just above 1
	}
	return sum
}

// BinomialPMF returns P[X = k] for X ~ Binomial(n, p), computed in log
// space for stability.
func BinomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	switch p {
	case 0:
		if k == 0 {
			return 1
		}
		return 0
	case 1:
		if k == n {
			return 1
		}
		return 0
	}
	lg := LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(lg)
}

// LogChoose returns ln C(n, k) using the log-gamma function.
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lgN, _ := math.Lgamma(float64(n + 1))
	lgK, _ := math.Lgamma(float64(k + 1))
	lgNK, _ := math.Lgamma(float64(n - k + 1))
	return lgN - lgK - lgNK
}

// ChernoffMajorityLowerBound returns the Theorem 2 lower bound
// 1 - exp(-2 n (mu - 1/2)^2) on the probability that at least half of n
// workers with mean accuracy mu answer correctly. The bound is only
// meaningful for mu > 1/2.
func ChernoffMajorityLowerBound(n int, mu float64) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("stats: ChernoffMajorityLowerBound needs n >= 1, got %d", n))
	}
	d := mu - 0.5
	return 1 - math.Exp(-2*float64(n)*d*d)
}
