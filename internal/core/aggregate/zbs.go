// Zero-Based Skill on the Aggregator contract, after the Crowd-Kit
// method: skills start uniform (the first aggregate is a plain majority
// vote), then skill and aggregate are re-estimated in alternation —
// each worker's skill takes a learning-rate step towards their
// agreement with the current aggregate, and the aggregate is recomputed
// as a skill-weighted vote — until the skills stabilise. Unlike Wawa's
// single refinement round, the fixpoint lets a consistent minority
// overturn a noisy majority.
package aggregate

import "math"

// ZeroBasedSkillName is the Zero-Based Skill aggregator's registry key.
const ZeroBasedSkillName = "zbs"

// Zero-Based Skill iteration constants: the learning rate of the skill
// step, the convergence threshold on the largest skill movement, and
// the iteration cap that bounds a non-converging alternation.
const (
	zbsLearningRate = 0.5
	zbsTolerance    = 1e-6
	zbsMaxIter      = 30
)

func init() {
	Register(zbsAggregator{}, "zero-based skill: alternate skill-weighted voting and learning-rate skill updates to a fixpoint (batch only)")
}

type zbsAggregator struct{}

func (zbsAggregator) Name() string { return ZeroBasedSkillName }

func (zbsAggregator) Aggregate(b Batch) (Result, error) {
	ids := sortedQuestionIDs(b)
	skill := make(map[string]float64)
	for _, id := range ids {
		for _, v := range b.Votes[id] {
			skill[v.Worker] = 1 // uniform start: iteration 0 is plain majority
		}
	}

	var verdicts map[string]Verdict
	for iter := 0; iter < zbsMaxIter; iter++ {
		// Aggregate under the current skills.
		verdicts = make(map[string]Verdict, len(ids))
		for _, id := range ids {
			votes := b.Votes[id]
			if len(votes) == 0 {
				continue
			}
			weighted := make(map[string]float64, 4)
			for _, v := range votes {
				weighted[v.Answer] += skill[v.Worker]
			}
			verdicts[id] = shareVerdict(weighted)
		}
		// Skill step towards agreement with the aggregate.
		agreement := agreementQuality(b, verdicts)
		maxDelta := 0.0
		for w := range skill {
			next := skill[w] + zbsLearningRate*(agreement[w]-skill[w])
			if d := math.Abs(next - skill[w]); d > maxDelta {
				maxDelta = d
			}
			skill[w] = next
		}
		if maxDelta < zbsTolerance {
			break
		}
	}
	return Result{Verdicts: verdicts, WorkerQuality: skill}, nil
}
