// Package randx provides deterministic random-number utilities used across
// the CDAS simulator and experiment harness.
//
// Every stochastic component of the repository draws from an explicit
// *randx.Source created from a seed, so experiments, tests and benchmarks
// are reproducible bit-for-bit. The implementation wraps math/rand/v2's PCG
// generator and adds the sampling primitives the simulator needs: weighted
// choice, shuffles, truncated Gaussians, exponential inter-arrival times and
// beta-like accuracy draws.
package randx

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Source is a deterministic random source. It is NOT safe for concurrent
// use; derive independent child streams with Split for concurrent
// components.
type Source struct {
	rng  *rand.Rand
	seed uint64
}

// New returns a Source seeded with seed. Equal seeds yield identical
// streams.
func New(seed uint64) *Source {
	return &Source{rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)), seed: seed}
}

// Seed reports the seed the Source was created with.
func (s *Source) Seed() uint64 { return s.seed }

// Split derives an independent child stream. The child's sequence is a pure
// function of the parent seed and the label, so call sites can be reordered
// without perturbing each other's draws.
func (s *Source) Split(label string) *Source {
	h := s.seed
	for _, c := range label {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	return New(h)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// IntN returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) IntN(n int) int { return s.rng.IntN(n) }

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.rng.Float64() < p }

// NormFloat64 returns a standard normal deviate.
func (s *Source) NormFloat64() float64 { return s.rng.NormFloat64() }

// Normal returns a Gaussian deviate with the given mean and standard
// deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.rng.NormFloat64()
}

// TruncNormal draws from a Gaussian truncated to [lo, hi] by rejection.
// It panics if lo >= hi. Rejection is cheap for the parameterisations used
// here (truncation intervals within a few standard deviations of the mean);
// a safety cap falls back to clamping to guarantee termination.
func (s *Source) TruncNormal(mean, stddev, lo, hi float64) float64 {
	if lo >= hi {
		panic(fmt.Sprintf("randx: TruncNormal bounds inverted [%v, %v]", lo, hi))
	}
	for i := 0; i < 1024; i++ {
		v := s.Normal(mean, stddev)
		if v >= lo && v <= hi {
			return v
		}
	}
	return math.Min(hi, math.Max(lo, mean))
}

// Exp returns an exponential deviate with the given rate (mean 1/rate).
// It panics if rate <= 0.
func (s *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("randx: Exp rate must be positive")
	}
	return s.rng.ExpFloat64() / rate
}

// Beta draws from a Beta(alpha, beta) distribution using Jöhnk's algorithm
// for small parameters and gamma ratios otherwise. Beta draws model worker
// accuracy distributions in the crowd simulator.
func (s *Source) Beta(alpha, beta float64) float64 {
	if alpha <= 0 || beta <= 0 {
		panic("randx: Beta parameters must be positive")
	}
	x := s.gamma(alpha)
	y := s.gamma(beta)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// gamma draws from Gamma(shape, 1) using Marsaglia–Tsang, with the standard
// boost for shape < 1.
func (s *Source) gamma(shape float64) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		u := s.rng.Float64()
		for u == 0 {
			u = s.rng.Float64()
		}
		return s.gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := s.rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Shuffle permutes xs in place.
func Shuffle[T any](s *Source, xs []T) {
	s.rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	return s.rng.Perm(n)
}

// Choice returns a uniformly random element of xs. It panics on an empty
// slice.
func Choice[T any](s *Source, xs []T) T {
	if len(xs) == 0 {
		panic("randx: Choice on empty slice")
	}
	return xs[s.IntN(len(xs))]
}

// WeightedChoice returns an index in [0, len(weights)) drawn proportionally
// to weights. Negative weights panic; if all weights are zero the choice is
// uniform.
func (s *Source) WeightedChoice(weights []float64) int {
	if len(weights) == 0 {
		panic("randx: WeightedChoice on empty weights")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("randx: WeightedChoice weight %d is invalid (%v)", i, w))
		}
		total += w
	}
	if total == 0 {
		return s.IntN(len(weights))
	}
	target := s.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n). It panics if k > n or k < 0.
func (s *Source) SampleWithoutReplacement(n, k int) []int {
	if k < 0 || k > n {
		panic(fmt.Sprintf("randx: cannot sample %d of %d", k, n))
	}
	perm := s.rng.Perm(n)
	return perm[:k]
}
