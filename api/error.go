// Structured error envelope: every v1 error response carries a typed,
// machine-readable body in the spirit of RFC 7807, instead of the
// free-text http.Error lines of the legacy routes.
package api

import (
	"fmt"
	"strings"
)

// Error codes. Codes are stable identifiers a client can switch on;
// Status carries the matching HTTP status for convenience.
const (
	CodeInvalidArgument = "invalid_argument" // 400
	// CodeUnknownAggregator rejects a JobSubmission naming an
	// aggregation method the registry doesn't know; Detail lists the
	// registered names. 400.
	CodeUnknownAggregator = "unknown_aggregator"
	CodeNotFound          = "not_found"   // 404
	CodeConflict          = "conflict"    // 409
	CodeUnavailable       = "unavailable" // 503
	CodeInternal          = "internal"    // 500
)

// Codes enumerates every error code the v1 surface can emit — the
// single source of truth the openapi.yaml enum and the httpapi
// emission test are checked against. Order matches the declarations
// above.
func Codes() []string {
	return []string{
		CodeInvalidArgument,
		CodeUnknownAggregator,
		CodeNotFound,
		CodeConflict,
		CodeUnavailable,
		CodeInternal,
	}
}

// Error is the structured error of every v1 error response, wrapped in
// an ErrorResponse envelope on the wire:
//
//	{"error": {"code": "not_found", "status": 404,
//	           "message": "no such job", "detail": "..."}}
//
// It implements the error interface, so SDK callers can errors.As it
// straight out of any client method.
type Error struct {
	// Code is the stable machine-readable identifier.
	Code string `json:"code"`
	// Status is the HTTP status the response was (or should be) served
	// with.
	Status int `json:"status"`
	// Message is the short human-readable summary.
	Message string `json:"message"`
	// Detail optionally elaborates on this specific occurrence.
	Detail string `json:"detail,omitempty"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("%s (%d): %s: %s", e.Code, e.Status, e.Message, e.Detail)
	}
	return fmt.Sprintf("%s (%d): %s", e.Code, e.Status, e.Message)
}

// ErrorResponse is the wire envelope wrapping an Error.
type ErrorResponse struct {
	Error *Error `json:"error"`
}

// Errorf builds an Error with a formatted message.
func Errorf(code string, status int, format string, args ...any) *Error {
	return &Error{Code: code, Status: status, Message: fmt.Sprintf(format, args...)}
}

// InvalidArgument builds a 400 invalid_argument error.
func InvalidArgument(format string, args ...any) *Error {
	return Errorf(CodeInvalidArgument, 400, format, args...)
}

// UnknownAggregator builds a 400 unknown_aggregator error whose Detail
// lists the registered method names.
func UnknownAggregator(name string, registered []string) *Error {
	e := Errorf(CodeUnknownAggregator, 400, "unknown aggregator %q", name)
	e.Detail = fmt.Sprintf("registered aggregators: %s", strings.Join(registered, ", "))
	return e
}

// NotFound builds a 404 not_found error.
func NotFound(format string, args ...any) *Error {
	return Errorf(CodeNotFound, 404, format, args...)
}

// Conflict builds a 409 conflict error.
func Conflict(format string, args ...any) *Error {
	return Errorf(CodeConflict, 409, format, args...)
}

// Unavailable builds a 503 unavailable error.
func Unavailable(format string, args ...any) *Error {
	return Errorf(CodeUnavailable, 503, format, args...)
}

// Internal builds a 500 internal error.
func Internal(format string, args ...any) *Error {
	return Errorf(CodeInternal, 500, format, args...)
}
