package textutil

import (
	"reflect"
	"testing"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"don't stop", []string{"don't", "stop"}},
		{"iPhone4S rocks!!!", []string{"iphone4s", "rocks"}},
		{"", nil},
		{"  multiple   spaces ", []string{"multiple", "spaces"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("the") || !IsStopword("and") {
		t.Error("common stop words not recognised")
	}
	if IsStopword("terrible") || IsStopword("awesome") {
		t.Error("sentiment words must not be stop words")
	}
}

func TestContentTokens(t *testing.T) {
	got := ContentTokens("The movie was a terrible, terrible mess I think")
	for _, tok := range got {
		if IsStopword(tok) || len(tok) <= 1 {
			t.Errorf("content token %q should have been filtered", tok)
		}
	}
	want := map[string]bool{"movie": true, "terrible": true, "mess": true, "think": true}
	for _, tok := range got {
		if !want[tok] {
			t.Errorf("unexpected token %q in %v", tok, got)
		}
	}
}

func TestContainsAny(t *testing.T) {
	cases := []struct {
		text     string
		keywords []string
		want     bool
	}{
		{"Loving my iPhone4S so much", []string{"iphone4s"}, true},
		{"the green lantern is bad", []string{"Green Lantern"}, true},
		{"nothing relevant", []string{"iphone"}, false},
		{"empty keyword is skipped", []string{""}, false},
		{"multi keyword", []string{"zzz", "keyword"}, true},
	}
	for _, c := range cases {
		if got := ContainsAny(c.text, c.keywords); got != c.want {
			t.Errorf("ContainsAny(%q, %v) = %v, want %v", c.text, c.keywords, got, c.want)
		}
	}
}
