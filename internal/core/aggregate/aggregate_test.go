// Contract tests for the aggregation suite: registry behaviour, the
// property that incremental folding matches batch aggregation, the
// Wawa-reduces-to-majority equivalence, confidence normalisation, and
// bit-equality goldens proving the ported methods (cdas, majority,
// dawid-skene) produce exactly the output of the code they wrap.
package aggregate

import (
	"math"
	"math/rand/v2"
	"strconv"
	"testing"

	"cdas/internal/core/dawidskene"
	"cdas/internal/core/verification"
)

// randomBatch builds a seeded batch: nq questions over a domain of m
// answers, each receiving 1..maxVotes votes from a pool of workers with
// accuracies in (0.55, 0.95).
func randomBatch(rng *rand.Rand, nq, m, maxVotes int) Batch {
	workers := make([]Vote, 16)
	for i := range workers {
		workers[i] = Vote{
			Worker:   "w" + strconv.Itoa(i),
			Accuracy: 0.55 + 0.4*rng.Float64(),
		}
	}
	b := Batch{Votes: make(map[string][]Vote), MeanAccuracy: 0.75}
	for qi := 0; qi < nq; qi++ {
		id := "q" + strconv.Itoa(qi)
		b.Questions = append(b.Questions, Question{ID: id, M: m})
		n := 1 + rng.IntN(maxVotes)
		perm := rng.Perm(len(workers))[:n]
		for _, wi := range perm {
			v := workers[wi]
			v.Answer = "a" + strconv.Itoa(rng.IntN(m))
			b.Votes[id] = append(b.Votes[id], v)
		}
	}
	return b
}

func verdictsEqual(a, b Verdict) bool {
	if a.Answer != b.Answer || a.Confidence != b.Confidence || len(a.Ranked) != len(b.Ranked) {
		return false
	}
	for i := range a.Ranked {
		if a.Ranked[i] != b.Ranked[i] {
			return false
		}
	}
	return true
}

func TestRegistry(t *testing.T) {
	want := []string{DefaultName, DawidSkeneName, MajorityName, WawaName, ZeroBasedSkillName}
	names := Names()
	for _, n := range want {
		found := false
		for _, have := range names {
			if have == n {
				found = true
			}
		}
		if !found {
			t.Errorf("Names() = %v: missing %q", names, n)
		}
	}
	if len(names) != len(want) {
		t.Errorf("Names() = %v: want exactly %d aggregators", names, len(want))
	}

	// The empty name is the default.
	a, ok := Get("")
	if !ok || a.Name() != DefaultName {
		t.Errorf("Get(\"\") = %v, %v: want the %q aggregator", a, ok, DefaultName)
	}
	if err := Validate(""); err != nil {
		t.Errorf("Validate(\"\") = %v: want nil", err)
	}
	if err := Validate("no-such-method"); err == nil {
		t.Error("Validate(unknown) = nil: want an error naming the registry")
	}

	// Incremental flags: cdas and majority fold; the agreement/EM
	// methods are batch-only.
	wantInc := map[string]bool{
		DefaultName:        true,
		MajorityName:       true,
		WawaName:           false,
		ZeroBasedSkillName: false,
		DawidSkeneName:     false,
	}
	for _, info := range Infos() {
		if info.Incremental != wantInc[info.Name] {
			t.Errorf("Infos(): %s incremental = %v, want %v", info.Name, info.Incremental, wantInc[info.Name])
		}
		if info.ResponseType != ResponseCategorical {
			t.Errorf("Infos(): %s response type = %q, want %q", info.Name, info.ResponseType, ResponseCategorical)
		}
		if info.Description == "" {
			t.Errorf("Infos(): %s has no description", info.Name)
		}
	}
}

// TestIncrementalFoldMatchesBatch is the Incremental contract: folding a
// question's votes one at a time must land on exactly the batch verdict.
func TestIncrementalFoldMatchesBatch(t *testing.T) {
	for _, name := range []string{DefaultName, MajorityName} {
		t.Run(name, func(t *testing.T) {
			agg, _ := Get(name)
			inc, ok := agg.(Incremental)
			if !ok {
				t.Fatalf("%s does not implement Incremental", name)
			}
			rng := rand.New(rand.NewPCG(7, 11))
			for trial := 0; trial < 50; trial++ {
				b := randomBatch(rng, 6, 2+rng.IntN(3), 9)
				batch, err := agg.Aggregate(b)
				if err != nil {
					t.Fatalf("trial %d: Aggregate: %v", trial, err)
				}
				for _, q := range b.Questions {
					votes := b.Votes[q.ID]
					f, err := inc.NewFolder(Spec{Planned: len(votes), M: q.M, MeanAccuracy: b.MeanAccuracy})
					if err != nil {
						t.Fatalf("trial %d %s: NewFolder: %v", trial, q.ID, err)
					}
					for _, v := range votes {
						if err := f.Fold(v); err != nil {
							t.Fatalf("trial %d %s: Fold: %v", trial, q.ID, err)
						}
					}
					if f.Received() != len(votes) {
						t.Fatalf("trial %d %s: Received = %d, want %d", trial, q.ID, f.Received(), len(votes))
					}
					got, err := f.Verdict()
					if err != nil {
						t.Fatalf("trial %d %s: Verdict: %v", trial, q.ID, err)
					}
					if want := batch.Verdicts[q.ID]; !verdictsEqual(got, want) {
						t.Errorf("trial %d %s: folded verdict %+v != batch verdict %+v", trial, q.ID, got, want)
					}
				}
			}
		})
	}
}

// TestFolderLimits: folding past the planned count is a protocol
// violation, and a verdict before any vote is ErrNoVotes.
func TestFolderLimits(t *testing.T) {
	for _, name := range []string{DefaultName, MajorityName} {
		t.Run(name, func(t *testing.T) {
			inc := registry[name].(Incremental)
			f, err := inc.NewFolder(Spec{Planned: 1, M: 2, MeanAccuracy: 0.75})
			if err != nil {
				t.Fatalf("NewFolder: %v", err)
			}
			if _, err := f.Verdict(); err == nil {
				t.Error("Verdict before any fold: want an error")
			}
			if err := f.Fold(Vote{Worker: "w0", Answer: "a0", Accuracy: 0.8}); err != nil {
				t.Fatalf("Fold: %v", err)
			}
			if err := f.Fold(Vote{Worker: "w1", Answer: "a1", Accuracy: 0.8}); err == nil {
				t.Error("Fold past planned: want an overfill error")
			}
			if _, err := inc.NewFolder(Spec{Planned: 0, M: 2, MeanAccuracy: 0.75}); err == nil {
				t.Error("NewFolder with Planned=0: want an error")
			}
		})
	}
}

// TestWawaReducesToMajority: when every worker has the same skill the
// skill-weighted re-vote is a scaled plain count, so Wawa's verdicts —
// answers, confidences and full ranking — equal majority voting's.
func TestWawaReducesToMajority(t *testing.T) {
	wawa, _ := Get(WawaName)
	maj, _ := Get(MajorityName)

	// Construction 1: every vote is unanimous per question, so every
	// worker agrees with the provisional answer on all their votes and
	// all skills are exactly 1.
	rng := rand.New(rand.NewPCG(3, 5))
	unanimous := Batch{Votes: make(map[string][]Vote), MeanAccuracy: 0.75}
	for qi := 0; qi < 8; qi++ {
		id := "q" + strconv.Itoa(qi)
		unanimous.Questions = append(unanimous.Questions, Question{ID: id, M: 3})
		ans := "a" + strconv.Itoa(rng.IntN(3))
		for wi := 0; wi < 1+rng.IntN(5); wi++ {
			unanimous.Votes[id] = append(unanimous.Votes[id], Vote{Worker: "w" + strconv.Itoa(wi), Answer: ans, Accuracy: 0.8})
		}
	}
	// Construction 2: one distinct worker per vote — each worker's only
	// vote is on one question, so each skill is 0 or 1 and, with a lone
	// voter per question, exactly 1.
	lone := Batch{Votes: make(map[string][]Vote), MeanAccuracy: 0.75}
	for qi := 0; qi < 8; qi++ {
		id := "q" + strconv.Itoa(qi)
		lone.Questions = append(lone.Questions, Question{ID: id, M: 4})
		lone.Votes[id] = []Vote{{Worker: "solo" + strconv.Itoa(qi), Answer: "a" + strconv.Itoa(rng.IntN(4)), Accuracy: 0.7}}
	}

	for name, b := range map[string]Batch{"unanimous": unanimous, "lone-voter": lone} {
		wr, err := wawa.Aggregate(b)
		if err != nil {
			t.Fatalf("%s: wawa: %v", name, err)
		}
		mr, err := maj.Aggregate(b)
		if err != nil {
			t.Fatalf("%s: majority: %v", name, err)
		}
		for _, q := range b.Questions {
			if !verdictsEqual(wr.Verdicts[q.ID], mr.Verdicts[q.ID]) {
				t.Errorf("%s %s: wawa %+v != majority %+v with equal skills", name, q.ID, wr.Verdicts[q.ID], mr.Verdicts[q.ID])
			}
		}
	}

	// Randomized conditional check: on any batch where Wawa's estimated
	// skills came out equal, its answers must match majority's.
	rng = rand.New(rand.NewPCG(13, 17))
	checked := 0
	for trial := 0; trial < 200; trial++ {
		b := randomBatch(rng, 4, 2, 5)
		wr, err := wawa.Aggregate(b)
		if err != nil {
			t.Fatalf("trial %d: wawa: %v", trial, err)
		}
		equal := true
		var first float64
		firstSet := false
		for _, s := range wr.WorkerQuality {
			if !firstSet {
				first, firstSet = s, true
			} else if s != first {
				equal = false
			}
		}
		if !equal {
			continue
		}
		checked++
		mr, _ := maj.Aggregate(b)
		for _, q := range b.Questions {
			if wr.Verdicts[q.ID].Answer != mr.Verdicts[q.ID].Answer {
				t.Errorf("trial %d %s: equal skills but wawa answer %q != majority %q", trial, q.ID, wr.Verdicts[q.ID].Answer, mr.Verdicts[q.ID].Answer)
			}
		}
	}
	if checked == 0 {
		t.Error("no random trial produced equal skills; constructions above still cover the reduction")
	}
}

// TestConfidenceNormalisation: the share-based methods distribute all
// probability mass over the observed answers (Ranked sums to 1); the
// CDAS model reserves mass for unobserved answers (sums to <= 1).
func TestConfidenceNormalisation(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 29))
	for trial := 0; trial < 30; trial++ {
		b := randomBatch(rng, 5, 2+rng.IntN(3), 7)
		for _, name := range Names() {
			agg, _ := Get(name)
			res, err := agg.Aggregate(b)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			for _, q := range b.Questions {
				v, ok := res.Verdicts[q.ID]
				if !ok {
					t.Fatalf("trial %d %s: no verdict for %s", trial, name, q.ID)
				}
				sum := 0.0
				for i, s := range v.Ranked {
					if s.Confidence < 0 || s.Confidence > 1+1e-9 {
						t.Errorf("trial %d %s %s: confidence %v out of [0,1]", trial, name, q.ID, s.Confidence)
					}
					if i > 0 && s.Confidence > v.Ranked[i-1].Confidence {
						t.Errorf("trial %d %s %s: Ranked not sorted descending", trial, name, q.ID)
					}
					sum += s.Confidence
				}
				if v.Confidence != v.Ranked[0].Confidence || v.Answer != v.Ranked[0].Answer {
					t.Errorf("trial %d %s %s: verdict head %q/%v != Ranked[0] %q/%v",
						trial, name, q.ID, v.Answer, v.Confidence, v.Ranked[0].Answer, v.Ranked[0].Confidence)
				}
				switch name {
				case DefaultName, DawidSkeneName:
					// Both probabilistic models keep mass on answers no
					// worker proposed, so observed confidences sum to <= 1.
					if sum > 1+1e-6 {
						t.Errorf("trial %d %s %s: confidences sum to %v > 1", trial, name, q.ID, sum)
					}
				default:
					if math.Abs(sum-1) > 1e-9 {
						t.Errorf("trial %d %s %s: confidences sum to %v, want 1", trial, name, q.ID, sum)
					}
				}
				for _, wq := range res.WorkerQuality {
					if wq < 0 || wq > 1+1e-9 {
						t.Errorf("trial %d %s: worker quality %v out of [0,1]", trial, name, wq)
					}
				}
			}
		}
	}
}

// TestCDASBitIdentical: the ported CDAS aggregator is byte-for-byte the
// Section 4 verification model — exact float equality against
// verification.Verify, ranking included.
func TestCDASBitIdentical(t *testing.T) {
	agg, _ := Get(DefaultName)
	rng := rand.New(rand.NewPCG(31, 37))
	for trial := 0; trial < 50; trial++ {
		b := randomBatch(rng, 6, 2+rng.IntN(4), 9)
		res, err := agg.Aggregate(b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, q := range b.Questions {
			direct, err := verification.Verify(toVerificationVotes(b.Votes[q.ID]), q.M)
			if err != nil {
				t.Fatalf("trial %d %s: Verify: %v", trial, q.ID, err)
			}
			got := res.Verdicts[q.ID]
			if got.Answer != direct.Best().Answer || got.Confidence != direct.Best().Confidence {
				t.Errorf("trial %d %s: verdict %q/%v != Verify best %q/%v",
					trial, q.ID, got.Answer, got.Confidence, direct.Best().Answer, direct.Best().Confidence)
			}
			if len(got.Ranked) != len(direct.Ranked) {
				t.Fatalf("trial %d %s: ranked lengths differ", trial, q.ID)
			}
			for i := range got.Ranked {
				if got.Ranked[i] != direct.Ranked[i] {
					t.Errorf("trial %d %s: Ranked[%d] = %+v, Verify has %+v", trial, q.ID, i, got.Ranked[i], direct.Ranked[i])
				}
			}
		}
	}
}

// TestMajorityMatchesBaseline: wherever the Figure 9/10 baseline decides
// (a strict, untied majority), the ported aggregator picks the same
// answer.
func TestMajorityMatchesBaseline(t *testing.T) {
	agg, _ := Get(MajorityName)
	rng := rand.New(rand.NewPCG(41, 43))
	decided := 0
	for trial := 0; trial < 100; trial++ {
		b := randomBatch(rng, 4, 2, 7)
		res, err := agg.Aggregate(b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, q := range b.Questions {
			baseline, ok := verification.MajorityVoting(toVerificationVotes(b.Votes[q.ID]))
			if !ok {
				continue // tie: the baseline abstains, the aggregator must still decide
			}
			decided++
			if got := res.Verdicts[q.ID].Answer; got != baseline {
				t.Errorf("trial %d %s: aggregator %q != MajorityVoting %q", trial, q.ID, got, baseline)
			}
		}
	}
	if decided == 0 {
		t.Fatal("no trial produced an untied majority; generator is broken")
	}
}

// TestDawidSkeneBitIdentical: for a single-m batch the adapter is
// exactly dawidskene.Estimate — posteriors become the ranking and the
// EM worker accuracies become the quality map, bit for bit.
func TestDawidSkeneBitIdentical(t *testing.T) {
	agg, _ := Get(DawidSkeneName)
	rng := rand.New(rand.NewPCG(47, 53))
	for trial := 0; trial < 20; trial++ {
		const m = 3
		b := randomBatch(rng, 6, m, 9)
		res, err := agg.Aggregate(b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var votes []dawidskene.Vote
		for _, q := range b.Questions {
			for _, v := range b.Votes[q.ID] {
				votes = append(votes, dawidskene.Vote{Question: q.ID, Worker: v.Worker, Answer: v.Answer})
			}
		}
		direct, err := dawidskene.Estimate(votes, m, dawidskene.Options{})
		if err != nil {
			t.Fatalf("trial %d: Estimate: %v", trial, err)
		}
		for _, q := range b.Questions {
			got := res.Verdicts[q.ID]
			if want := direct.Answers[q.ID]; got.Answer != want {
				t.Errorf("trial %d %s: answer %q != Estimate MAP %q", trial, q.ID, got.Answer, want)
			}
			for _, s := range got.Ranked {
				if post := direct.Posteriors[q.ID][s.Answer]; s.Confidence != post {
					t.Errorf("trial %d %s: ranked confidence of %q = %v, posterior is %v", trial, q.ID, s.Answer, s.Confidence, post)
				}
			}
		}
		for w, acc := range direct.WorkerAccuracy {
			if got := res.WorkerQuality[w]; got != acc {
				t.Errorf("trial %d: worker %s quality %v != EM accuracy %v", trial, w, got, acc)
			}
		}
	}
}

// TestEmptyQuestionsSkipped: questions with no votes get no verdict and
// never fail the batch.
func TestEmptyQuestionsSkipped(t *testing.T) {
	b := Batch{
		Questions: []Question{{ID: "q0", M: 2}, {ID: "empty", M: 2}},
		Votes: map[string][]Vote{
			"q0": {{Worker: "w0", Answer: "yes", Accuracy: 0.8}},
		},
		MeanAccuracy: 0.75,
	}
	for _, name := range Names() {
		agg, _ := Get(name)
		res, err := agg.Aggregate(b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, ok := res.Verdicts["empty"]; ok {
			t.Errorf("%s: verdict for a question with no votes", name)
		}
		if v, ok := res.Verdicts["q0"]; !ok || v.Answer != "yes" {
			t.Errorf("%s: q0 verdict = %+v, want answer \"yes\"", name, v)
		}
	}
}
