package profile

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestRecordAndAccuracy(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		s.Record("tsa", "w1", i < 7)
	}
	// Laplace smoothing: (7+1)/(10+2).
	if a, ok := s.Accuracy("tsa", "w1"); !ok || math.Abs(a-8.0/12) > 1e-12 {
		t.Errorf("accuracy = %v/%v, want 8/12/true", a, ok)
	}
	if _, ok := s.Accuracy("tsa", "ghost"); ok {
		t.Error("unseen worker should have no estimate")
	}
	if _, ok := s.Accuracy("other-job", "w1"); ok {
		t.Error("accuracies must be per job")
	}
	if got := s.AccuracyOr("tsa", "ghost", 0.65); got != 0.65 {
		t.Errorf("fallback = %v", got)
	}
	if got := s.Samples("tsa", "w1"); got != 10 {
		t.Errorf("Samples = %d, want 10", got)
	}
}

func TestMeanAccuracy(t *testing.T) {
	s := NewStore()
	if _, ok := s.MeanAccuracy("tsa"); ok {
		t.Error("empty job should have no mean")
	}
	s.Record("tsa", "w1", true)
	s.Record("tsa", "w2", false)
	// Smoothing is symmetric: mean of 2/3 and 1/3 is still 0.5.
	mu, ok := s.MeanAccuracy("tsa")
	if !ok || math.Abs(mu-0.5) > 1e-12 {
		t.Errorf("mean = %v/%v, want 0.5/true", mu, ok)
	}
}

func TestWorkersSorted(t *testing.T) {
	s := NewStore()
	s.Record("j", "zeta", true)
	s.Record("j", "alpha", true)
	got := s.Workers("j")
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Errorf("Workers = %v", got)
	}
	if s.Workers("missing") != nil {
		t.Error("missing job should list no workers")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewStore()
	s.Record("tsa", "w1", true)
	s.Record("tsa", "w1", false)
	s.Record("it", "w2", true)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewStore()
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if a, ok := restored.Accuracy("tsa", "w1"); !ok || a != 0.5 {
		t.Errorf("restored tsa/w1 = %v/%v", a, ok)
	}
	if a, ok := restored.Accuracy("it", "w2"); !ok || math.Abs(a-2.0/3) > 1e-12 {
		t.Errorf("restored it/w2 = %v/%v, want 2/3 (smoothed 1/1)", a, ok)
	}
}

func TestLoadRejectsInconsistentCounts(t *testing.T) {
	bad := `{"tsa": {"correct": {"w": 5}, "total": {"w": 2}}}`
	if err := NewStore().Load(strings.NewReader(bad)); err == nil {
		t.Error("inconsistent counts accepted")
	}
	if err := NewStore().Load(strings.NewReader("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestLoadNormalisesNilMaps(t *testing.T) {
	s := NewStore()
	if err := s.Load(strings.NewReader(`{"tsa": {}}`)); err != nil {
		t.Fatal(err)
	}
	s.Record("tsa", "w", true) // must not panic on nil inner maps
	if a, ok := s.Accuracy("tsa", "w"); !ok || math.Abs(a-2.0/3) > 1e-12 {
		t.Errorf("after load+record: %v/%v, want 2/3", a, ok)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profiles.json")
	s := NewStore()
	s.Record("tsa", "w", true)
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored := NewStore()
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if a, ok := restored.Accuracy("tsa", "w"); !ok || math.Abs(a-2.0/3) > 1e-12 {
		t.Errorf("file round-trip: %v/%v, want 2/3", a, ok)
	}
	if err := restored.LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing file should fail")
	}
}

func TestZeroValueStore(t *testing.T) {
	var s Store
	s.Record("j", "w", true)
	if a, ok := s.Accuracy("j", "w"); !ok || math.Abs(a-2.0/3) > 1e-12 {
		t.Errorf("zero-value store: %v/%v, want 2/3", a, ok)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := "w" + string(rune('a'+g))
			for i := 0; i < 1000; i++ {
				s.Record("job", w, i%2 == 0)
				s.Accuracy("job", w)
				s.MeanAccuracy("job")
			}
		}(g)
	}
	wg.Wait()
	if got := len(s.Workers("job")); got != 8 {
		t.Errorf("workers after concurrent writes = %d, want 8", got)
	}
}

func TestShrunkAccuracy(t *testing.T) {
	s := NewStore()
	// Unseen worker: exactly the prior.
	if got := s.ShrunkAccuracy("j", "w", 0.7, 4); got != 0.7 {
		t.Errorf("unseen = %v, want prior 0.7", got)
	}
	// One miss with prior 0.7, pseudo 4: (0 + 2.8) / 5 = 0.56 — stays
	// above chance instead of collapsing to ~0.
	s.Record("j", "w", false)
	if got := s.ShrunkAccuracy("j", "w", 0.7, 4); math.Abs(got-0.56) > 1e-12 {
		t.Errorf("one miss = %v, want 0.56", got)
	}
	// Lots of evidence dominates the prior.
	for i := 0; i < 200; i++ {
		s.Record("j", "w", true)
	}
	got := s.ShrunkAccuracy("j", "w", 0.7, 4)
	if got < 0.95 {
		t.Errorf("evidence-dominated estimate = %v, want > 0.95", got)
	}
	// Negative pseudo-counts are treated as zero (raw rate).
	raw := s.ShrunkAccuracy("j", "w", 0.7, -1)
	if math.Abs(raw-200.0/201) > 1e-12 {
		t.Errorf("pseudo<0 = %v, want raw rate", raw)
	}
}
