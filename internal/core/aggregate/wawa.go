// Wawa ("worker agreement with aggregate") on the Aggregator contract,
// after the Crowd-Kit method of the same name: a plain majority vote
// fixes a provisional answer per question, each worker's skill is the
// share of their votes agreeing with those answers, and one final
// skill-weighted vote decides. Workers who mostly echo the crowd count
// more; when every worker agrees with the majority at the same rate the
// skills are equal and the weighted vote reduces exactly to plain
// majority voting.
package aggregate

// WawaName is the Wawa aggregator's registry key.
const WawaName = "wawa"

func init() {
	Register(wawaAggregator{}, "worker-agreement-with-aggregate: majority vote, skill = agreement with it, one skill-weighted re-vote (batch only)")
}

type wawaAggregator struct{}

func (wawaAggregator) Name() string { return WawaName }

func (wawaAggregator) Aggregate(b Batch) (Result, error) {
	ids := sortedQuestionIDs(b)

	// Round 1: provisional answers by unweighted majority.
	provisional := make(map[string]Verdict, len(ids))
	for _, id := range ids {
		votes := b.Votes[id]
		if len(votes) == 0 {
			continue
		}
		counts := make(map[string]float64, 4)
		for _, v := range votes {
			counts[v.Answer]++
		}
		provisional[id] = shareVerdict(counts)
	}

	// Skill: each worker's agreement with the provisional answers.
	skill := agreementQuality(b, provisional)

	// Round 2: one skill-weighted vote per question. A question whose
	// voters all carry zero skill degenerates to the uniform share in
	// shareVerdict, keeping the verdict defined.
	verdicts := make(map[string]Verdict, len(ids))
	for _, id := range ids {
		votes := b.Votes[id]
		if len(votes) == 0 {
			continue
		}
		weighted := make(map[string]float64, 4)
		for _, v := range votes {
			weighted[v.Answer] += skill[v.Worker]
		}
		verdicts[id] = shareVerdict(weighted)
	}
	return Result{Verdicts: verdicts, WorkerQuality: skill}, nil
}
