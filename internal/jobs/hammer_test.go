package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestDispatcherCancelVsAckHammer is the regression hammer for the
// cancel-vs-ack window: jobs finish at the same moment they are
// cancelled and the pool is stopping. Meant for -race. Invariants:
//
//   - a job is never executed by two runners at once;
//   - after Stop returns, nothing is left Running and no attempts were
//     double-charged past the retry bound;
//   - requeued jobs stay runnable — a fresh dispatcher on the same
//     service drains every survivor to a terminal state exactly once
//     per claim (no double-requeue resurrects finished work).
func TestDispatcherCancelVsAckHammer(t *testing.T) {
	const (
		rounds  = 25
		jobs    = 8
		workers = 4
	)
	for round := 0; round < rounds; round++ {
		s := openTestService(t, "")
		var mu sync.Mutex
		inflight := make(map[string]int)
		runs := make(map[string]int)
		runner := func(ctx context.Context, job Job, report func(float64, float64)) error {
			mu.Lock()
			inflight[job.Name]++
			runs[job.Name]++
			if inflight[job.Name] > 1 {
				t.Errorf("round %d: %s executed by %d runners at once", round, job.Name, inflight[job.Name])
			}
			mu.Unlock()
			defer func() {
				mu.Lock()
				inflight[job.Name]--
				mu.Unlock()
			}()
			// Half the jobs ack instantly — the cancel-vs-ack window —
			// and half linger so Stop and Cancel race the run itself.
			if job.Name[len(job.Name)-1]%2 == 0 {
				return nil
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Millisecond):
				return nil
			}
		}
		d, err := NewDispatcher(s, runner, workers)
		if err != nil {
			t.Fatal(err)
		}
		d.Start()
		names := make([]string, jobs)
		for i := range names {
			names[i] = fmt.Sprintf("job-%d", i)
			if _, err := d.Submit(testJob(names[i])); err != nil {
				t.Fatal(err)
			}
		}
		// Cancel every job from its own goroutine while runners are
		// acking, and stop the pool in the middle of it all.
		var wg sync.WaitGroup
		for _, n := range names {
			wg.Add(1)
			go func() {
				defer wg.Done()
				err := d.Cancel(n)
				// Losing the race to an ack (ErrBadTransition) or to a
				// teardown commit is fine; what must never happen is a
				// cancel acknowledged and then overridden.
				if err != nil && !errors.Is(err, ErrBadTransition) && !errors.Is(err, ErrUnknownJob) {
					t.Errorf("round %d: Cancel(%s): %v", round, n, err)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Stop()
		}()
		wg.Wait()
		d.Stop() // idempotent; ensures the pool is fully drained

		for _, st := range s.Statuses() {
			switch st.State {
			case StateRunning:
				t.Errorf("round %d: %s stuck Running after Stop", round, st.Job.Name)
			case StateParked:
				t.Errorf("round %d: %s parked without a budget verdict", round, st.Job.Name)
			}
			if st.Attempts > s.MaxAttempts() {
				t.Errorf("round %d: %s charged %d attempts (max %d) — double-claimed",
					round, st.Job.Name, st.Attempts, s.MaxAttempts())
			}
		}

		// Survivors requeued by Stop must still be runnable, and jobs
		// that already reached a terminal state must not run again.
		mu.Lock()
		terminalRuns := make(map[string]int)
		for _, st := range s.Statuses() {
			if st.State.Terminal() {
				terminalRuns[st.Job.Name] = runs[st.Job.Name]
			}
		}
		mu.Unlock()
		d2, err := NewDispatcher(s, runner, workers)
		if err != nil {
			t.Fatal(err)
		}
		d2.Start()
		waitFor(t, "survivors drained", func() bool {
			for _, st := range s.Statuses() {
				if !st.State.Terminal() {
					return false
				}
			}
			return true
		})
		d2.Stop()
		mu.Lock()
		for name, before := range terminalRuns {
			if runs[name] != before {
				t.Errorf("round %d: terminal job %s re-ran after its verdict (%d -> %d runs)",
					round, name, before, runs[name])
			}
		}
		mu.Unlock()
		s.Close()
		if t.Failed() {
			t.FailNow()
		}
	}
}

// TestDispatcherStopClaimWindow pins the shutdown fix: a worker that
// wins a Claim just as Stop lands must hand the job straight back
// without invoking the runner under a dead context.
func TestDispatcherStopClaimWindow(t *testing.T) {
	for i := 0; i < 50; i++ {
		s := openTestService(t, "")
		d, err := NewDispatcher(s, func(ctx context.Context, job Job, report func(float64, float64)) error {
			<-ctx.Done()
			return ctx.Err()
		}, 2)
		if err != nil {
			t.Fatal(err)
		}
		d.Start()
		// Submit and stop immediately: some claims land after the stop.
		for j := 0; j < 4; j++ {
			if _, err := d.Submit(testJob(fmt.Sprintf("w-%d", j))); err != nil {
				t.Fatal(err)
			}
		}
		d.Stop()
		for _, st := range s.Statuses() {
			if st.State != StatePending {
				t.Fatalf("iteration %d: %s in state %s after immediate Stop, want pending", i, st.Job.Name, st.State)
			}
		}
		s.Close()
	}
}
