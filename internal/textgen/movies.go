package textgen

import "fmt"

// Figure5Movies are the five held-out test movies of the paper's
// crowdsourcing-vs-SVM comparison (Figure 5), with the paper's spelling of
// "Green Latern" preserved.
var Figure5Movies = []string{
	"District 9", "Social Network", "Thor", "Green Latern", "Roommate",
}

// Movies200 returns the full 200-title query set: the five Figure 5 test
// movies plus 195 generated titles standing in for the paper's "most
// recent movies listed in IMDB".
func Movies200() []string {
	out := make([]string, 0, 200)
	out = append(out, Figure5Movies...)
	adjectives := []string{
		"Crimson", "Silent", "Golden", "Midnight", "Broken", "Electric",
		"Hollow", "Savage", "Frozen", "Burning", "Lost", "Hidden", "Iron",
	}
	nouns := []string{
		"Harbor", "Empire", "Garden", "Horizon", "Covenant", "Reckoning",
		"Symphony", "Paradox", "Voyage", "Kingdom", "Protocol", "Requiem",
		"Odyssey", "Frontier", "Legacy",
	}
	for _, a := range adjectives {
		for _, n := range nouns {
			if len(out) == 200 {
				return out
			}
			out = append(out, fmt.Sprintf("The %s %s", a, n))
		}
	}
	// 13 * 15 = 195 combinations + 5 fixed = 200; unreachable, kept as a
	// guard if the word lists change.
	for i := len(out); i < 200; i++ {
		out = append(out, fmt.Sprintf("Untitled Project %d", i))
	}
	return out
}
