// Server-Sent Events: GET /v1/queries/{name}/events pushes every
// QueryState revision to connected clients as answers arrive — the
// paper's Figure 4 live view as a push stream instead of a poll loop.
//
// Fan-out design: Server.Update assigns each query a monotonically
// increasing revision and offers the new state to every subscriber's
// buffered channel. A slow consumer never blocks Update (or other
// subscribers): when a subscriber's buffer is full the oldest pending
// revision is dropped — intermediate states are snapshots, so skipping
// one loses nothing the next event doesn't restate. The event id is the
// revision, so a reconnecting client's Last-Event-ID suppresses the
// initial replay when it has already seen the current state.
//
// The subscriber queue and the serve loop here are shared by all three
// SSE feeds — queries, streams and enumerations. Each feed supplies its
// own replay and dead-job synthesis; the Last-Event-ID handling, the
// drop-oldest queue and the terminal-ticker logic exist once.
package httpapi

import (
	"net/http"
	"strconv"
	"time"

	"cdas/api"
	"cdas/internal/jobs"
)

// subscriberBuffer is each SSE client's pending-event capacity. Events
// are full-state snapshots, so the buffer only needs to absorb bursts,
// not preserve history.
const subscriberBuffer = 16

// feedEvent is one revision en route to a subscriber of any feed: the
// revision id, the SSE event type, and the feed-specific JSON payload.
type feedEvent struct {
	rev  int64
	kind string
	data any
}

// subscriber is one connected SSE client's queue, shared by every feed.
type subscriber struct {
	ch chan feedEvent
}

// push offers ev without ever blocking: a full queue drops its oldest
// event first. Publishers call this under s.mu, so the drain-then-send
// pair cannot interleave with another push.
func (sub *subscriber) push(ev feedEvent) {
	for {
		select {
		case sub.ch <- ev:
			return
		default:
		}
		select {
		case <-sub.ch: // drop-oldest
		default:
		}
	}
}

// subscribeIn registers a new subscriber in a feed's name-indexed
// subscriber sets. Callers hold s.mu.
func subscribeIn(subs map[string]map[*subscriber]struct{}, name string) *subscriber {
	sub := &subscriber{ch: make(chan feedEvent, subscriberBuffer)}
	set, exists := subs[name]
	if !exists {
		set = make(map[*subscriber]struct{})
		subs[name] = set
	}
	set[sub] = struct{}{}
	return sub
}

// unsubscribeIn removes sub. The channel is abandoned, not closed:
// pushes happen under s.mu, so after removal nothing sends, and the
// garbage collector reclaims it with the handler. Callers hold s.mu.
func unsubscribeIn(subs map[string]map[*subscriber]struct{}, name string, sub *subscriber) {
	set := subs[name]
	delete(set, sub)
	if len(set) == 0 {
		delete(subs, name)
	}
}

// queryKind maps a query state onto its SSE event type.
func queryKind(st QueryState) string {
	if st.Done {
		return api.EventDone
	}
	return api.EventState
}

// subscribe registers a new subscriber for name and returns it with the
// query's current state and revision (rev 0, ok false when the query
// has not published yet).
func (s *Server) subscribe(name string) (sub *subscriber, cur QueryState, rev int64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sub = subscribeIn(s.subs, name)
	cur, ok = s.queries[name]
	return sub, cur, s.revs[name], ok
}

// unsubscribe removes sub from the query feed.
func (s *Server) unsubscribe(name string, sub *subscriber) {
	s.mu.Lock()
	defer s.mu.Unlock()
	unsubscribeIn(s.subs, name, sub)
}

// queryRev returns a query's current state and revision.
func (s *Server) queryRev(name string) (QueryState, int64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.queries[name]
	return st, s.revs[name], ok
}

// subscriberCount reports how many SSE clients follow name — the
// goroutine-leak probe for tests.
func (s *Server) subscriberCount(name string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.subs[name])
}

// knownQuery reports whether name identifies a published query or a
// registered job (whose query may publish later).
func (s *Server) knownQuery(name string) bool {
	if _, ok := s.Get(name); ok {
		return true
	}
	if ctl := s.jobs(); ctl != nil {
		if _, ok := ctl.Status(name); ok {
			return true
		}
	}
	return false
}

// runSSE drives one SSE connection for any feed: Last-Event-ID parsing,
// stream headers, the replay-then-follow loop, and the dead-job ticker.
// replay sends the initial snapshot (honouring lastSeen) and reports
// whether to keep serving; synthesize sends the terminal event for a
// job that reached a terminal lifecycle state without publishing one.
// send returns false once the stream should close (done event sent, or
// the client went away).
func (s *Server) runSSE(w http.ResponseWriter, r *http.Request, name string,
	subscribe func() (*subscriber, func()),
	replay func(lastSeen int64, send func(feedEvent) bool) bool,
	synthesize func(st jobs.Status, send func(feedEvent) bool),
) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, api.Internal("streaming unsupported by connection"))
		return
	}
	var lastSeen int64 = -1
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		id, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, api.InvalidArgument("bad Last-Event-ID %q: %v", v, err))
			return
		}
		lastSeen = id
	}

	sub, cleanup := subscribe()
	defer cleanup()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	send := func(ev feedEvent) bool {
		if err := writeSSEData(w, ev.rev, ev.kind, ev.data); err != nil {
			return false
		}
		flusher.Flush()
		return ev.kind != api.EventDone
	}

	if !replay(lastSeen, send) {
		return
	}
	// Not every terminal job publishes a final event: a run that fails
	// before buying any answers (no matching items, permanent config
	// error) ends with nothing on the feed. Poll the job's lifecycle
	// record so such watchers get a synthetic done event instead of
	// hanging forever.
	ticker := time.NewTicker(250 * time.Millisecond)
	defer ticker.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev := <-sub.ch:
			if !send(ev) {
				return
			}
		case <-ticker.C:
			ctl := s.jobs()
			if ctl == nil {
				continue
			}
			st, ok := ctl.Status(name)
			if !ok || !api.JobState(st.State).Terminal() {
				continue
			}
			// Give an in-flight final publish priority over synthesis:
			// the runner publishes before the dispatcher commits the
			// terminal transition, so anything real is already queued.
			select {
			case ev := <-sub.ch:
				if !send(ev) {
					return
				}
				continue
			default:
			}
			synthesize(st, send)
			return
		}
	}
}

// v1QueryEvents is GET /v1/queries/{name}/events: an SSE stream of the
// query's state revisions. The current state is replayed immediately
// (unless Last-Event-ID proves the client has it), every subsequent
// Update pushes an "state" event, and the terminal revision arrives as
// "done", after which the server closes the stream. A job that reaches
// a terminal lifecycle state without publishing a final query state
// (e.g. a permanent failure before any answers were bought) produces a
// synthetic done event carrying the job error, so watchers never hang
// on a dead job. Client disconnect tears the subscription down through
// the request context.
func (s *Server) v1QueryEvents(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.knownQuery(name) {
		writeError(w, api.NotFound("no such query %q", name))
		return
	}
	s.runSSE(w, r, name,
		func() (*subscriber, func()) {
			sub, _, _, _ := s.subscribe(name)
			return sub, func() { s.unsubscribe(name, sub) }
		},
		func(lastSeen int64, send func(feedEvent) bool) bool {
			// Replay the current state unless the client proved it has
			// it. A terminal state is always (re-)sent: a client
			// resuming after the done event must get a clean close, not
			// an eternal hang waiting for revisions that never come.
			cur, rev, published := s.queryRev(name)
			if published && (rev > lastSeen || cur.Done) {
				return send(feedEvent{rev: rev, kind: queryKind(cur), data: cur})
			}
			return true
		},
		func(st jobs.Status, send func(feedEvent) bool) {
			// Synthesize the terminal event from whatever the run
			// published: partial results stay visible (events are
			// full-state snapshots), only Done and the job error are
			// stamped on.
			cur, rev, published := s.queryRev(name)
			if !published {
				cur = QueryState{Name: name}
			}
			if !cur.Done {
				cur.Done = true
				cur.Error = st.Error
			}
			send(feedEvent{rev: rev, kind: queryKind(cur), data: cur})
		})
}
