package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cdas/internal/exec"
)

func demoState() QueryState {
	return QueryState{
		Name:        "Kung Fu Panda 2",
		Domain:      []string{"Positive", "Neutral", "Negative"},
		Percentages: map[string]float64{"Positive": 0.7, "Neutral": 0.1, "Negative": 0.2},
		Reasons:     map[string][]string{"Positive": {"hilarious", "gorgeous"}},
		Items:       20,
		Progress:    0.33,
	}
}

func TestUpdateAndGet(t *testing.T) {
	s := NewServer()
	s.Update(demoState())
	st, ok := s.Get("Kung Fu Panda 2")
	if !ok || st.Items != 20 {
		t.Fatalf("Get = %+v/%v", st, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Error("missing query found")
	}
	names := s.Names()
	if len(names) != 1 || names[0] != "Kung Fu Panda 2" {
		t.Errorf("Names = %v", names)
	}
}

func TestUpdateFromSummary(t *testing.T) {
	s := NewServer()
	sum := exec.Summary{
		Domain:      []string{"a", "b"},
		Percentages: map[string]float64{"a": 0.6, "b": 0.4},
		Reasons:     map[string][]string{"a": {"word"}},
		Items:       5,
	}
	s.UpdateFromSummary("q", sum, 1, true)
	st, ok := s.Get("q")
	if !ok || !st.Done || st.Items != 5 {
		t.Fatalf("state = %+v/%v", st, ok)
	}
}

func TestQueryEndpoint(t *testing.T) {
	s := NewServer()
	s.Update(demoState())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/query?name=Kung+Fu+Panda+2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var st QueryState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Percentages["Positive"] != 0.7 {
		t.Errorf("decoded state = %+v", st)
	}
}

func TestQueryEndpointNotFound(t *testing.T) {
	srv := httptest.NewServer(NewServer().Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/query?name=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func TestListEndpoint(t *testing.T) {
	s := NewServer()
	s.Update(demoState())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Errorf("names = %v", names)
	}
}

func TestIndexPage(t *testing.T) {
	s := NewServer()
	s.Update(demoState())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{"Kung Fu Panda 2", "Positive", "70.0%", "hilarious"} {
		if !strings.Contains(body, want) {
			t.Errorf("index page missing %q", want)
		}
	}
}

func TestIndexPageEmpty(t *testing.T) {
	srv := httptest.NewServer(NewServer().Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "No queries registered") {
		t.Error("empty index should say so")
	}
}
