// Standing-query processor: event-time tumbling windows over an
// arrival stream, closed by a watermark, each close feeding one
// scheduler generation. Batch sizes adapt to the observed arrival
// rate; saturation degrades service in accounted steps (smaller
// batches, then partial-vote verdicts, then drops) instead of
// buffering without bound.
package standing

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"cdas/internal/exec"
	"cdas/internal/jobs"
	"cdas/internal/metrics"
	"cdas/internal/scheduler"
	"cdas/internal/textutil"
)

// Batcher is the scheduler surface the processor enqueues against;
// satisfied by *scheduler.Scheduler.
type Batcher interface {
	Enqueue(req scheduler.Request) (*scheduler.Ticket, error)
	SlotsPerHIT() int
}

// WindowResult is one closed window's outcome — the unit the runner
// commits durably and the API streams as an SSE event.
type WindowResult struct {
	// Window is the tumbling-window index (0 = [Start, Start+Window)).
	Window int
	// Start and End bound the window's event-time interval [Start, End).
	Start time.Time
	End   time.Time
	// Items is how many matched arrivals landed in this window
	// (answered + degraded + dropped).
	Items int
	// Answered items received full crowd verdicts.
	Answered int
	// Degraded items settled with partial-vote verdicts inferred from
	// the window's answered majority (the saturation ladder's second
	// step).
	Degraded int
	// Dropped items got no verdict: backlog overflow, or capacity
	// leftovers in a window with no answered majority to degrade from.
	Dropped int
	// BatchSize is the adaptive batch size the window ran with.
	BatchSize int
	// Shed marks a window opened under saturation (halved batch and
	// capacity).
	Shed bool
	// Summary is the window's fold (percentages, confidence, reasons)
	// over answered plus degraded items.
	Summary exec.Summary
	// Cost is the window's attributed crowd spend; CacheHits counts
	// questions answered from the scheduler's cache.
	Cost      float64
	CacheHits int
}

// Config assembles a Processor.
type Config struct {
	// Job is the continuous job (KindContinuous with a StreamSpec).
	Job jobs.Job
	// Sched batches the window's questions. Required.
	Sched Batcher
	// Tick joins the window-close barrier after the window's requests
	// are enqueued; the coordinator's flush resolves them. Required.
	Tick func(ctx context.Context) error
	// Convert maps items to crowd questions. Required.
	Convert Convert
	// OnWindow receives each closed window in index order; an error
	// aborts the stream (the runner commits the window mark here, and
	// an uncommitted window must not be advanced past). Optional.
	OnWindow func(WindowResult) error
	// Counters receives stream metrics. Optional.
	Counters *metrics.Registry
	// Resume skips windows already committed: offers landing in
	// windows <= Resume.Window are discarded (their spend and verdicts
	// are on the books) and cumulative counters start from the mark.
	Resume jobs.StreamMark
}

// window accumulates one tumbling window's pending state.
type window struct {
	items    int // matched arrivals assigned here
	buffered []exec.Item
	texts    map[string]string
	tickets  []*scheduler.Ticket
	enqueued int
	dropped  int // backlog-overflow drops attributed here
	batch    int // adaptive batch size (set when the window opens)
	capacity int // question cap (possibly shed)
	shed     bool
	opened   bool
}

// Processor owns one standing query's window state. Not safe for
// concurrent use; the runner's goroutine owns it.
type Processor struct {
	cfg      Config
	width    time.Duration
	lateness time.Duration
	fill     time.Duration
	capacity int // per-window question cap before shedding
	backlogN int // max buffered matched items across open windows

	windows  map[int]*window
	next     int // lowest unclosed window index
	maxEvent time.Time
	backlog  int
	prevRate float64 // previous window's matched items per second

	// cumulative counters, seeded from Resume.
	seen, matched, dropped, degraded int64
	answered                         int64
	spent                            float64
	fold                             *exec.Fold
}

// NewProcessor validates the configuration and applies StreamSpec
// defaults: Lateness and TargetFill default to half the window width,
// WindowCapacity to the engine's real slots per HIT, MaxBacklog to
// four windows' capacity.
func NewProcessor(cfg Config) (*Processor, error) {
	if cfg.Sched == nil || cfg.Tick == nil || cfg.Convert == nil {
		return nil, errors.New("standing: scheduler, tick and convert are required")
	}
	if cfg.Job.Kind != jobs.KindContinuous || cfg.Job.Stream == nil {
		return nil, fmt.Errorf("standing: job %q is not a continuous job", cfg.Job.Name)
	}
	if err := cfg.Job.Stream.Validate(); err != nil {
		return nil, err
	}
	if cfg.Job.Query.Window <= 0 {
		return nil, fmt.Errorf("standing: job %q needs a positive window width", cfg.Job.Name)
	}
	spec := cfg.Job.Stream
	p := &Processor{
		cfg:      cfg,
		width:    cfg.Job.Query.Window,
		lateness: spec.Lateness,
		fill:     spec.TargetFill,
		capacity: spec.WindowCapacity,
		backlogN: spec.MaxBacklog,
		windows:  make(map[int]*window),
		next:     cfg.Resume.Window + 1,
		prevRate: spec.Rate,
		seen:     cfg.Resume.Seen,
		matched:  cfg.Resume.Matched,
		dropped:  cfg.Resume.Dropped,
		degraded: cfg.Resume.Degraded,
		spent:    cfg.Resume.Spent,
		fold:     exec.NewFold(cfg.Job.Query.Domain, cfg.Job.Query.Keywords...),
	}
	if p.lateness == 0 {
		p.lateness = p.width / 2
	}
	if p.fill == 0 {
		p.fill = p.width / 2
	}
	if p.capacity == 0 {
		p.capacity = cfg.Sched.SlotsPerHIT()
	}
	if p.backlogN == 0 {
		p.backlogN = 4 * p.capacity
	}
	return p, nil
}

// Mark snapshots the cumulative counters as the durable stream mark
// for the last closed window.
func (p *Processor) Mark() jobs.StreamMark {
	return jobs.StreamMark{
		Window:   p.next - 1,
		Spent:    p.spent,
		Seen:     p.seen,
		Matched:  p.matched,
		Dropped:  p.dropped,
		Degraded: p.degraded,
	}
}

// Summary returns the running whole-stream fold.
func (p *Processor) Summary() exec.Summary { return p.fold.Summary() }

// Answered reports how many items have settled with full crowd
// verdicts so far.
func (p *Processor) Answered() int64 { return p.answered }

// Seen reports cumulative arrivals including the resumed mark's.
func (p *Processor) Seen() int64 { return p.seen }

// Backlog reports currently buffered matched items (a test probe for
// the bounded-buffering contract).
func (p *Processor) Backlog() int { return p.backlog }

func (p *Processor) windowIndex(at time.Time) int {
	return int(at.Sub(p.cfg.Job.Query.Start) / p.width)
}

func (p *Processor) windowStart(idx int) time.Time {
	return p.cfg.Job.Query.Start.Add(time.Duration(idx) * p.width)
}

// matches is the standing-query filter: the batch Query predicate with
// the upper time bound removed — a standing query has no end time.
func (p *Processor) matches(it exec.Item) bool {
	return !it.At.Before(p.cfg.Job.Query.Start) &&
		textutil.ContainsAny(it.Text, p.cfg.Job.Query.Keywords)
}

// openWindow fixes the window's batch size and capacity the moment it
// becomes the frontier: batch ~= previous window's arrival rate times
// the target fill, clamped to [1, capacity]; under saturation (backlog
// at half its bound or worse) both batch and capacity are halved —
// the shed step of the degrade ladder.
func (p *Processor) openWindow(idx int) *window {
	w := p.windows[idx]
	if w == nil {
		w = &window{texts: make(map[string]string)}
		p.windows[idx] = w
	}
	if w.opened {
		return w
	}
	w.opened = true
	w.capacity = p.capacity
	batch := p.capacity
	if p.prevRate > 0 && p.fill > 0 {
		batch = int(math.Ceil(p.prevRate * p.fill.Seconds()))
	}
	if 2*p.backlog >= p.backlogN {
		w.shed = true
		batch /= 2
		if half := p.capacity / 2; half < w.capacity {
			w.capacity = half
		}
	}
	if batch < 1 {
		batch = 1
	}
	if batch > w.capacity {
		batch = w.capacity
	}
	if w.capacity < 1 {
		w.capacity = 1
	}
	w.batch = batch
	return w
}

func (p *Processor) pending(idx int) *window {
	w := p.windows[idx]
	if w == nil {
		w = &window{texts: make(map[string]string)}
		p.windows[idx] = w
	}
	return w
}

func (p *Processor) count(name string, delta int64) {
	if p.cfg.Counters != nil && delta != 0 {
		p.cfg.Counters.Add(name, delta)
	}
}

// Offer feeds one arrival. Items behind the watermark (their window
// already closed) and items beyond the backlog bound are dropped and
// accounted; everything else buffers into its event-time window. An
// offer can close any number of windows — the watermark may jump past
// several, including empty ones, and each close ticks the barrier.
func (p *Processor) Offer(ctx context.Context, it exec.Item) error {
	p.seen++
	p.count(metrics.CounterStreamItemsSeen, 1)
	if !p.matches(it) {
		return nil
	}
	p.matched++
	p.count(metrics.CounterStreamItemsMatched, 1)
	idx := p.windowIndex(it.At)
	if idx < p.next {
		// Late: the item's window is closed (or resumed past).
		p.dropped++
		p.count(metrics.CounterStreamItemsDropped, 1)
	} else if p.backlog >= p.backlogN {
		// Saturated: the final rung of the degrade ladder.
		p.dropped++
		p.count(metrics.CounterStreamItemsDropped, 1)
		p.pending(idx).dropped++
		p.pending(idx).items++
	} else {
		w := p.pending(idx)
		if idx == p.next {
			w = p.openWindow(idx)
		}
		w.items++
		w.buffered = append(w.buffered, it)
		w.texts[it.ID] = it.Text
		p.backlog++
		// Mid-window batching: the frontier window ships a batch as
		// soon as one fills, up to its capacity.
		if idx == p.next && len(w.buffered) >= w.batch && w.enqueued < w.capacity {
			if err := p.enqueueUpTo(w, w.enqueued+len(w.buffered)); err != nil {
				return err
			}
		}
	}
	if it.At.After(p.maxEvent) {
		p.maxEvent = it.At
	}
	// Watermark: close every window whose end the watermark has passed.
	for !p.maxEvent.Before(p.windowStart(p.next + 1).Add(p.lateness)) {
		if err := p.closeWindow(ctx); err != nil {
			return err
		}
	}
	return nil
}

// enqueueUpTo ships buffered items to the scheduler until the window
// has enqueued limit questions (clamped to its capacity).
func (p *Processor) enqueueUpTo(w *window, limit int) error {
	if limit > w.capacity {
		limit = w.capacity
	}
	n := limit - w.enqueued
	if n <= 0 || len(w.buffered) == 0 {
		return nil
	}
	if n > len(w.buffered) {
		n = len(w.buffered)
	}
	batch := w.buffered[:n]
	w.buffered = w.buffered[n:]
	req := scheduler.Request{
		Job:        p.cfg.Job.Name,
		Priority:   p.cfg.Job.Priority,
		Budget:     p.cfg.Job.Budget,
		Aggregator: p.cfg.Job.Aggregator,
	}
	for _, it := range batch {
		req.Questions = append(req.Questions, p.cfg.Convert(it))
	}
	t, err := p.cfg.Sched.Enqueue(req)
	if err != nil {
		return fmt.Errorf("standing: enqueue window batch: %w", err)
	}
	w.tickets = append(w.tickets, t)
	w.enqueued += len(batch)
	p.backlog -= len(batch)
	return nil
}

// closeWindow settles the frontier window: enqueue the buffered
// remainder up to capacity, tick the generation barrier (the flush
// resolves every live stream's window batches together), wait the
// tickets, fold answered verdicts, settle capacity leftovers with
// degraded majority verdicts (or drops when nothing answered), emit
// the WindowResult, and advance the frontier. Empty windows still tick
// — the barrier counts window closes, not batches, so generations stay
// aligned across streams with different traffic.
func (p *Processor) closeWindow(ctx context.Context) error {
	w := p.openWindow(p.next)
	if err := p.enqueueUpTo(w, w.capacity); err != nil {
		return err
	}
	leftovers := w.buffered
	w.buffered = nil
	p.backlog -= len(leftovers)
	if err := p.cfg.Tick(ctx); err != nil {
		p.abandon(w)
		return err
	}

	res := WindowResult{
		Window:    p.next,
		Start:     p.windowStart(p.next),
		End:       p.windowStart(p.next + 1),
		Items:     w.items,
		Dropped:   w.dropped,
		BatchSize: w.batch,
		Shed:      w.shed,
	}
	wfold := exec.NewFold(p.cfg.Job.Query.Domain, p.cfg.Job.Query.Keywords...)
	votes := map[string]int{}
	for i, t := range w.tickets {
		jr, err := t.Wait(ctx)
		res.Cost += jr.Cost
		res.CacheHits += jr.CacheHits
		if err != nil {
			for _, rest := range w.tickets[i:] {
				rest.Abandon()
			}
			p.spent += res.Cost
			return err
		}
		for _, oc := range exec.OutcomesFromResults(jr.Results) {
			text := w.texts[oc.ItemID]
			wfold.Observe(oc, text)
			p.fold.Observe(oc, text)
			delete(w.texts, oc.ItemID)
			res.Answered++
			p.answered++
			if oc.Accepted != "" {
				votes[oc.Accepted]++
			}
		}
	}

	// Degraded verdicts: leftovers beyond crowd capacity take the
	// window's answered majority at its observed share — a partial-vote
	// verdict, marked and accounted, never silently full-quality.
	if len(leftovers) > 0 {
		if leader, share := majority(votes, res.Answered); leader != "" {
			for _, it := range leftovers {
				oc := exec.Outcome{ItemID: it.ID, Accepted: leader, Confidence: share, Quality: share}
				wfold.Observe(oc, w.texts[it.ID])
				p.fold.Observe(oc, w.texts[it.ID])
				res.Degraded++
			}
			p.degraded += int64(len(leftovers))
			p.count(metrics.CounterStreamDegradedVerdicts, int64(len(leftovers)))
		} else {
			res.Dropped += len(leftovers)
			p.dropped += int64(len(leftovers))
			p.count(metrics.CounterStreamItemsDropped, int64(len(leftovers)))
		}
	}
	res.Summary = wfold.Summary()
	p.spent += res.Cost
	if sec := p.width.Seconds(); sec > 0 {
		p.prevRate = float64(w.items) / sec
	}
	delete(p.windows, p.next)
	p.next++
	p.count(metrics.CounterStreamWindowsClosed, 1)
	// Open the new frontier now: its batch size locks to the closed
	// window's observed rate and its shed decision to the backlog as it
	// stands, not to whenever its first arrival happens to land.
	p.openWindow(p.next)
	if p.cfg.OnWindow != nil {
		if err := p.cfg.OnWindow(res); err != nil {
			return err
		}
	}
	return nil
}

func (p *Processor) abandon(w *window) {
	for _, t := range w.tickets {
		t.Abandon()
	}
}

// Drain closes every window still holding items after the source is
// exhausted (trailing empty windows are skipped — there is nothing to
// settle and no peer stream waiting on event time that will never
// advance).
func (p *Processor) Drain(ctx context.Context) error {
	for {
		last := -1
		for idx := range p.windows {
			if idx > last && p.windows[idx].items > 0 {
				last = idx
			}
		}
		if last < p.next {
			return nil
		}
		if err := p.closeWindow(ctx); err != nil {
			return err
		}
	}
}

// Spent reports cumulative attributed crowd cost including the resumed
// mark's.
func (p *Processor) Spent() float64 { return p.spent }

// majority picks the most-voted answer; ties break by answer string
// order so the choice is deterministic. share is the leader's fraction
// of answered items. Returns "" when nothing answered.
func majority(votes map[string]int, answered int) (leader string, share float64) {
	if answered <= 0 || len(votes) == 0 {
		return "", 0
	}
	answers := make([]string, 0, len(votes))
	for a := range votes {
		answers = append(answers, a)
	}
	sort.Strings(answers)
	for _, a := range answers {
		if votes[a] > votes[leader] {
			leader = a
		}
	}
	return leader, float64(votes[leader]) / float64(answered)
}
