package jobs

// Migration tests: WAL→LSM conversion round-trips the full service
// state (lifecycle records, budget ledger, secondary indexes), is
// resumable after an interruption, refuses bad inputs, and leaves a
// working rollback path.

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cdas/internal/jobstore"
)

// seedWALStore drives random lifecycle traffic into a WAL-engine store
// and returns its normalized view and budget (the migration's ground
// truth).
func seedWALStore(t *testing.T, dir string, seed int64, n int) (map[string]normStatus, BudgetState) {
	t.Helper()
	s, err := OpenService(ServiceConfig{Dir: dir, Engine: EngineWAL, SnapshotEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range genSvcOps(seed, n) {
		applySvcOp(s, op)
	}
	want := normalize(s)
	budget := s.Budget()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("seed produced no jobs")
	}
	return want, budget
}

func TestMigrateStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want, wantBudget := seedWALStore(t, dir, 77, 200)

	res, err := MigrateStore(dir, t.Logf)
	if err != nil {
		t.Fatalf("MigrateStore: %v", err)
	}
	if res.Jobs != len(want) {
		t.Fatalf("migrated %d jobs, want %d", res.Jobs, len(want))
	}
	if len(res.Retired) == 0 {
		t.Fatal("no WAL files retired")
	}

	// The migrated store must boot as the LSM engine and serve the
	// exact state the WAL engine held (normalize folds the shared
	// requeue-Running-on-boot rule).
	r, err := OpenService(ServiceConfig{Dir: dir, Engine: EngineLSM})
	if err != nil {
		t.Fatalf("boot after migration: %v", err)
	}
	got := normalize(r)
	gotBudget := r.Budget()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("migrated state differs:\ngot  %v\nwant %v", got, want)
	}
	if !reflect.DeepEqual(gotBudget, wantBudget) {
		t.Fatalf("migrated budget = %+v, want %+v", gotBudget, wantBudget)
	}
	// And it must keep working as a live store.
	if _, err := r.Submit(testJob("post-migration")); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := OpenService(ServiceConfig{Dir: dir, Engine: EngineLSM})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, ok := r2.Status("post-migration"); !ok {
		t.Fatal("write to migrated store lost across reopen")
	}
}

func TestMigrateStoreResumable(t *testing.T) {
	dir := t.TempDir()
	want, _ := seedWALStore(t, dir, 78, 120)

	// Fake an interrupted migration: a partial LSM store holding a
	// record the real conversion would never write.
	l, err := jobstore.OpenLSM(jobstore.LSMConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Put(lsmPrimaryKey("ghost-from-partial-run"), []byte("{")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// The service must refuse to boot the ambiguous directory...
	if _, err := OpenService(ServiceConfig{Dir: dir, Engine: EngineLSM}); err == nil || !strings.Contains(err.Error(), "interrupted migration") {
		t.Fatalf("boot over partial migration: err = %v, want interrupted-migration refusal", err)
	}
	// ...and a re-run must discard the partial store and finish.
	res, err := MigrateStore(dir, nil)
	if err != nil {
		t.Fatalf("resumed MigrateStore: %v", err)
	}
	if !res.Resumed {
		t.Fatal("Resumed = false, want true")
	}
	r, err := OpenService(ServiceConfig{Dir: dir, Engine: EngineLSM})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !reflect.DeepEqual(normalize(r), want) {
		t.Fatal("resumed migration state differs from WAL ground truth")
	}
	if _, ok := r.Status("ghost-from-partial-run"); ok {
		t.Fatal("partial-run record survived the resume")
	}
}

func TestMigrateStoreEdgeCases(t *testing.T) {
	// Empty directory: nothing to migrate.
	if _, err := MigrateStore(t.TempDir(), nil); err == nil {
		t.Fatal("migrating an empty dir succeeded")
	}

	// Already migrated: distinct sentinel, so CLIs can treat a re-run
	// as success.
	dir := t.TempDir()
	seedWALStore(t, dir, 79, 40)
	if _, err := MigrateStore(dir, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := MigrateStore(dir, nil); !errors.Is(err, ErrAlreadyMigrated) {
		t.Fatalf("second migrate: %v, want ErrAlreadyMigrated", err)
	}

	// A live server holds the store lock: migration must refuse.
	lockedDir := t.TempDir()
	s, err := OpenService(ServiceConfig{Dir: lockedDir, Engine: EngineWAL})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(testJob("held")); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := MigrateStore(lockedDir, nil); !errors.Is(err, jobstore.ErrLocked) {
		t.Fatalf("migrating a locked store: %v, want ErrLocked", err)
	}
}

func TestMigrateStoreRollback(t *testing.T) {
	dir := t.TempDir()
	want, wantBudget := seedWALStore(t, dir, 80, 100)
	res, err := MigrateStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Rollback: remove the LSM files, restore the retired WAL files,
	// boot the WAL engine — the original store, untouched.
	if err := jobstore.RemoveLSMFiles(dir); err != nil {
		t.Fatal(err)
	}
	for _, retired := range res.Retired {
		if err := os.Rename(retired, strings.TrimSuffix(retired, ".retired")); err != nil {
			t.Fatal(err)
		}
	}
	s, err := OpenService(ServiceConfig{Dir: dir, Engine: EngineWAL})
	if err != nil {
		t.Fatalf("rollback boot: %v", err)
	}
	defer s.Close()
	if !reflect.DeepEqual(normalize(s), want) {
		t.Fatal("rolled-back state differs from the original")
	}
	if !reflect.DeepEqual(s.Budget(), wantBudget) {
		t.Fatal("rolled-back budget differs from the original")
	}
	if _, err := os.Stat(filepath.Join(dir, "MANIFEST")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("LSM MANIFEST still present after rollback cleanup (stat err %v)", err)
	}
}
