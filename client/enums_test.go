package client

import (
	"context"
	"errors"
	"testing"
	"time"

	"cdas/api"
)

func enumSubmission(name string) api.JobSubmission {
	return api.JobSubmission{
		Name:     name,
		Kind:     api.KindEnumeration,
		Keywords: []string{"seabird species"},
		Budget:   10,
		Enum:     &api.EnumSpec{ItemValue: 0.05, Universe: 20, SourceSeed: 3},
	}
}

// publishEnumBatch pushes a fabricated batch completion through the
// server's enumeration sink, exactly as the enum runner would.
func (b *testBackend) publishEnumBatch(name string, batch int, done bool) {
	items := []api.EnumItem{
		{Key: "k0", Text: "gull", Count: 3 * (batch + 1), Batch: 0},
		{Key: "k1", Text: "tern", Count: batch + 1, Batch: 0},
	}
	st := api.EnumStatus{
		Name:          name,
		Keywords:      []string{"seabird species"},
		State:         api.JobRunning,
		Batches:       batch + 1,
		Contributions: int64(8 * (batch + 1)),
		Distinct:      len(items),
		Spent:         0.04 * float64(batch+1),
		Progress:      float64(batch+1) / 3,
		Done:          done,
		Items:         items,
	}
	var bt *api.EnumBatch
	if !done {
		bt = &api.EnumBatch{
			Batch:         batch,
			Contributions: 8,
			NewItems:      items[:1],
			ExpectedNew:   1.5,
			Cost:          0.04,
		}
	} else {
		st.Stopped = api.StopMarginalValue
	}
	b.srv.PublishEnumBatch(st, bt)
}

func TestClientEnumerationLifecycle(t *testing.T) {
	b, c := newTestBackend(t)
	ctx := context.Background()

	st, err := c.SubmitJob(ctx, enumSubmission("e1"))
	if err != nil {
		t.Fatalf("SubmitJob(enumeration): %v", err)
	}
	if st.Name != "e1" || st.Kind != string(api.KindEnumeration) {
		t.Errorf("submitted enumeration = %+v", st)
	}

	// The kind filter routes the job to its family, both ways.
	page, err := c.ListJobs(ctx, ListJobsOptions{Kind: api.KindEnumeration})
	if err != nil || len(page.Jobs) != 1 || page.Jobs[0].Name != "e1" {
		t.Errorf("ListJobs(kind=enumeration) = %+v, %v", page, err)
	}
	if page, err = c.ListJobs(ctx, ListJobsOptions{Kind: api.KindBatch}); err != nil || len(page.Jobs) != 0 {
		t.Errorf("ListJobs(kind=batch) = %+v, %v, want empty", page, err)
	}

	b.publishEnumBatch("e1", 0, false)
	est, err := c.Enumeration(ctx, "e1")
	if err != nil || est.Name != "e1" || est.Distinct != 2 {
		t.Errorf("Enumeration = %+v, %v", est, err)
	}
	list, err := c.ListEnumerations(ctx, ListJobsOptions{})
	if err != nil || len(list.Enumerations) != 1 || list.Enumerations[0].Name != "e1" {
		t.Errorf("ListEnumerations = %+v, %v", list, err)
	}

	var apiErr *api.Error
	if _, err := c.Enumeration(ctx, "ghost"); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Errorf("Enumeration(ghost) err = %v, want api 404", err)
	}

	// A watcher sees batch completions and stops at done.
	events, err := c.WatchEnumeration(ctx, "e1")
	if err != nil {
		t.Fatalf("WatchEnumeration: %v", err)
	}
	b.publishEnumBatch("e1", 1, false)
	b.publishEnumBatch("e1", 2, true)
	var kinds []string
	var last EnumWatchEvent
	deadline := time.After(15 * time.Second)
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				goto drained
			}
			if ev.Err != nil {
				t.Fatalf("watch error: %v", ev.Err)
			}
			kinds = append(kinds, ev.Type)
			last = ev
		case <-deadline:
			t.Fatal("watch never finished")
		}
	}
drained:
	if len(kinds) == 0 || kinds[len(kinds)-1] != api.EventDone {
		t.Fatalf("watch kinds = %v, want trailing done", kinds)
	}
	sawBatch := false
	for _, k := range kinds {
		sawBatch = sawBatch || k == api.EventBatch
	}
	if !sawBatch {
		t.Errorf("watch kinds = %v, want at least one batch event", kinds)
	}
	if last.Event.State.Batches != 3 || !last.Event.State.Done || last.Event.State.Stopped != api.StopMarginalValue {
		t.Errorf("terminal event state = %+v", last.Event.State)
	}

	// Resuming past the terminal revision still replays done.
	events, err = c.WatchEnumeration(ctx, "e1", WatchOptions{LastEventID: last.ID})
	if err != nil {
		t.Fatalf("WatchEnumeration resume: %v", err)
	}
	var resumed []EnumWatchEvent
	for ev := range events {
		if ev.Err != nil {
			t.Fatalf("resume watch error: %v", ev.Err)
		}
		resumed = append(resumed, ev)
	}
	if len(resumed) != 1 || resumed[0].Type != api.EventDone {
		t.Errorf("resumed deliveries = %+v, want one done replay", resumed)
	}
}

func TestClientEnumerationsPaginate(t *testing.T) {
	b, c := newTestBackend(t)
	ctx := context.Background()
	names := []string{"ea", "eb", "ec"}
	for _, n := range names {
		if _, err := c.SubmitJob(ctx, enumSubmission(n)); err != nil {
			t.Fatalf("SubmitJob(%s): %v", n, err)
		}
		b.publishEnumBatch(n, 0, false)
	}
	// Page size 1 forces the iterator through three fetches.
	var got []string
	for st, err := range c.Enumerations(ctx, ListJobsOptions{Limit: 1}) {
		if err != nil {
			t.Fatalf("Enumerations iterator: %v", err)
		}
		got = append(got, st.Name)
	}
	if len(got) != len(names) {
		t.Fatalf("iterated %v, want %v", got, names)
	}
	for i := range names {
		if got[i] != names[i] {
			t.Errorf("iterated %v, want %v", got, names)
			break
		}
	}
}

func TestEnumPathEscaping(t *testing.T) {
	if got := enumPath("a b/c"); got != "/v1/enumerations/a%20b%2Fc" {
		t.Errorf("enumPath = %q", got)
	}
}
