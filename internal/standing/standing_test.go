package standing

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"cdas/internal/crowd"
	"cdas/internal/engine"
	"cdas/internal/exec"
	"cdas/internal/jobs"
	"cdas/internal/scheduler"
	"cdas/internal/textgen"
)

var base = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func newTestScheduler(t *testing.T) *scheduler.Scheduler {
	t.Helper()
	platform, err := crowd.NewPlatform(crowd.DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	golden := make([]crowd.Question, 12)
	for i := range golden {
		golden[i] = crowd.Question{
			ID:     fmt.Sprintf("golden/g%03d", i),
			Text:   fmt.Sprintf("Calibration tweet #%d", i),
			Domain: append([]string(nil), textgen.Labels...),
			Truth:  textgen.LabelNeutral,
		}
	}
	s, err := scheduler.New(scheduler.Config{
		Platform: engine.CrowdPlatform{Platform: platform},
		Engine:   engine.Config{HITSize: 20, MaxInflightHITs: 4, Seed: 9},
		Golden:   golden,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func testItem(i int, at time.Time) exec.Item {
	return exec.Item{
		ID:   fmt.Sprintf("tw%03d", i),
		Text: fmt.Sprintf("thor was solid, tweet %d", i),
		At:   at,
	}
}

func testConvert(it exec.Item) crowd.Question {
	return crowd.Question{
		ID:     it.ID,
		Text:   it.Text,
		Domain: append([]string(nil), textgen.Labels...),
		Truth:  textgen.LabelPositive,
	}
}

func continuousJob(name string, spec jobs.StreamSpec) jobs.Job {
	return jobs.Job{
		Name: name,
		Kind: jobs.KindContinuous,
		Query: jobs.Query{
			Keywords: []string{"thor"},
			Domain:   append([]string(nil), textgen.Labels...),
			Start:    base,
			Window:   time.Minute,
		},
		Stream: &spec,
	}
}

// memMarks is a volatile MarkStore recording every commit.
type memMarks struct {
	mu      sync.Mutex
	marks   map[string]jobs.StreamMark
	commits []jobs.StreamMark
}

func newMemMarks() *memMarks { return &memMarks{marks: map[string]jobs.StreamMark{}} }

func (m *memMarks) StreamMarkFor(name string) (jobs.StreamMark, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mk, ok := m.marks[name]
	return mk, ok
}

func (m *memMarks) CommitStreamMark(name string, mark jobs.StreamMark) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if prev, ok := m.marks[name]; ok && mark.Window < prev.Window {
		return fmt.Errorf("window regression: %d < %d", mark.Window, prev.Window)
	}
	m.marks[name] = mark
	m.commits = append(m.commits, mark)
	return nil
}

// runStanding drives one continuous job through a full runner and
// collects its window results.
func runStanding(t *testing.T, job jobs.Job, items []exec.Item, marks MarkStore) ([]WindowResult, bool) {
	t.Helper()
	sched := newTestScheduler(t)
	coord := NewCoordinator(sched, 0)
	var wins []WindowResult
	var done bool
	runner := NewRunner(RunnerConfig{
		Scheduler: sched,
		Coord:     coord,
		Marks:     marks,
		Source: func(jobs.Job) (Source, Convert, error) {
			return NewSliceSource(items), testConvert, nil
		},
		Publish: func(_ jobs.Job, win *WindowResult, _ jobs.StreamMark, _ exec.Summary, _ float64, d bool) {
			if win != nil {
				wins = append(wins, *win)
			}
			done = done || d
		},
	})
	if err := runner(context.Background(), job, func(float64, float64) {}); err != nil {
		t.Fatalf("runner: %v", err)
	}
	return wins, done
}

// TestStandingWindows covers the watermark edge cases: out-of-order
// event times within lateness settle in their true window, a watermark
// jump closes intermediate empty windows, and items behind the
// watermark are dropped, not buffered.
func TestStandingWindows(t *testing.T) {
	items := []exec.Item{
		testItem(0, base.Add(10*time.Second)),
		testItem(1, base.Add(25*time.Second)),
		// Out of order: earlier event time arriving later, same window.
		testItem(2, base.Add(15*time.Second)),
		// Window 2 arrival: watermark (maxEvent - 30s lateness) passes
		// window 0's end and window 1's end in one step — window 1
		// closes empty.
		testItem(3, base.Add(2*time.Minute+30*time.Second)),
		// Late: window 0 closed above; dropped, never buffered.
		testItem(4, base.Add(30*time.Second)),
		// No keyword match: filtered out entirely.
		{ID: "tw999", Text: "irrelevant chatter", At: base.Add(2*time.Minute + 40*time.Second)},
		testItem(5, base.Add(2*time.Minute+45*time.Second)),
	}
	marks := newMemMarks()
	job := continuousJob("w/thor", jobs.StreamSpec{Lateness: 30 * time.Second, Items: len(items)})
	wins, done := runStanding(t, job, items, marks)

	if !done {
		t.Fatal("stream never reported done")
	}
	if len(wins) != 3 {
		t.Fatalf("got %d windows, want 3: %+v", len(wins), wins)
	}
	w0, w1, w2 := wins[0], wins[1], wins[2]
	if w0.Window != 0 || w0.Items != 3 || w0.Answered != 3 {
		t.Errorf("window 0 = %+v, want 3 items all answered", w0)
	}
	if w1.Window != 1 || w1.Items != 0 || w1.Answered != 0 {
		t.Errorf("window 1 = %+v, want empty", w1)
	}
	if w2.Window != 2 || w2.Items != 2 || w2.Answered != 2 {
		t.Errorf("window 2 = %+v, want 2 items answered", w2)
	}
	if w0.Cost <= 0 || w2.Cost <= 0 {
		t.Errorf("non-empty windows should carry crowd cost: w0=%v w2=%v", w0.Cost, w2.Cost)
	}
	final, ok := marks.StreamMarkFor("w/thor")
	if !ok || final.Window != 2 {
		t.Fatalf("final mark = %+v, want window 2", final)
	}
	if final.Dropped != 1 {
		t.Errorf("late item should be the only drop, got %d", final.Dropped)
	}
	if final.Matched != 6 || final.Seen != 7 {
		t.Errorf("mark counts = %+v, want seen 7 matched 6", final)
	}
	if final.Spent <= 0 {
		t.Errorf("mark should carry spend, got %v", final.Spent)
	}
	// Marks must have been committed in window order.
	for i, c := range marks.commits {
		if c.Window != i {
			t.Fatalf("commit %d has window %d; marks must advance in order", i, c.Window)
		}
	}
}

// TestStandingDegradeLadder drives arrivals past the per-window crowd
// capacity and the backlog bound: capacity leftovers settle as
// degraded majority verdicts, overflow arrivals drop with accounting,
// and a window opened under backlog pressure sheds (halved batch and
// capacity) — never unbounded buffering.
func TestStandingDegradeLadder(t *testing.T) {
	sched := newTestScheduler(t)
	coord := NewCoordinator(sched, 0)
	coord.Register("w/sat")
	job := continuousJob("w/sat", jobs.StreamSpec{
		Lateness:       30 * time.Second,
		WindowCapacity: 4,
		MaxBacklog:     8,
	})
	var wins []WindowResult
	proc, err := NewProcessor(Config{
		Job:     job,
		Sched:   sched,
		Tick:    func(ctx context.Context) error { return coord.Tick(ctx, "w/sat") },
		Convert: testConvert,
		Resume:  jobs.StreamMark{Window: -1},
		OnWindow: func(res WindowResult) error {
			wins = append(wins, res)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Window 0: 8 arrivals — 4 ship as the first batch (capacity), 4
	// buffer past capacity.
	for i := 0; i < 8; i++ {
		if err := proc.Offer(ctx, testItem(i, base.Add(time.Duration(i+1)*time.Second))); err != nil {
			t.Fatal(err)
		}
	}
	// Window 1: 4 more arrivals fill the backlog to its bound.
	for i := 8; i < 12; i++ {
		if err := proc.Offer(ctx, testItem(i, base.Add(time.Minute+time.Duration(i)*time.Second))); err != nil {
			t.Fatal(err)
		}
	}
	if got := proc.Backlog(); got != 8 {
		t.Fatalf("backlog = %d, want 8 (4 unshipped in w0 + 4 in w1)", got)
	}
	// Window 3 arrival: the backlog is full, so it drops — but its
	// event time still advances the watermark past windows 0 and 1.
	if err := proc.Offer(ctx, testItem(12, base.Add(3*time.Minute+40*time.Second))); err != nil {
		t.Fatal(err)
	}
	if err := proc.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	if len(wins) != 4 {
		t.Fatalf("got %d windows, want 4 (w0, w1, empty w2, drop-accounting w3): %+v", len(wins), wins)
	}
	w0, w1, w3 := wins[0], wins[1], wins[3]
	if w0.Answered != 4 || w0.Degraded != 4 {
		t.Errorf("window 0 = %+v, want 4 answered + 4 degraded", w0)
	}
	if w0.Summary.Items != 8 {
		t.Errorf("window 0 summary folded %d items, want 8 (answered + degraded)", w0.Summary.Items)
	}
	if !w1.Shed {
		t.Errorf("window 1 opened at full backlog and should shed: %+v", w1)
	}
	if w1.Answered != 2 || w1.Degraded != 2 {
		t.Errorf("window 1 = %+v, want shed capacity 2 answered + 2 degraded", w1)
	}
	if w3.Dropped != 1 || w3.Items != 1 {
		t.Errorf("window 3 = %+v, want the overflow drop accounted there", w3)
	}
	if proc.Backlog() != 0 {
		t.Errorf("backlog after drain = %d, want 0", proc.Backlog())
	}
	mark := proc.Mark()
	if mark.Degraded != 6 || mark.Dropped != 1 {
		t.Errorf("mark = %+v, want 6 degraded, 1 dropped", mark)
	}
}

// TestStandingAdaptiveBatch checks the batch size tracks the observed
// arrival rate: a quiet window shrinks the next window's batch to
// roughly rate x target fill instead of always filling engine slots.
func TestStandingAdaptiveBatch(t *testing.T) {
	sched := newTestScheduler(t)
	job := continuousJob("w/adapt", jobs.StreamSpec{
		Lateness:   time.Second,
		TargetFill: 30 * time.Second,
	})
	proc, err := NewProcessor(Config{
		Job:     job,
		Sched:   sched,
		Tick:    func(ctx context.Context) error { return sched.Flush(ctx) },
		Convert: testConvert,
		Resume:  jobs.StreamMark{Window: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Window 0: 4 matched items over a 60s window = 1/15 items per
	// second; next window's batch should be ceil(rate * 30s) = 2.
	for i := 0; i < 4; i++ {
		if err := proc.Offer(ctx, testItem(i, base.Add(time.Duration(i*15+1)*time.Second))); err != nil {
			t.Fatal(err)
		}
	}
	if err := proc.Offer(ctx, testItem(4, base.Add(time.Minute+2*time.Second))); err != nil {
		t.Fatal(err)
	}
	w := proc.windows[1]
	if w == nil || !w.opened {
		t.Fatal("window 1 should be open after window 0 closed")
	}
	if w.batch != 2 {
		t.Errorf("window 1 batch = %d, want 2 (rate 4/60s x fill 30s)", w.batch)
	}
	if w.capacity != sched.SlotsPerHIT() {
		t.Errorf("window 1 capacity = %d, want full slots %d", w.capacity, sched.SlotsPerHIT())
	}
}

// TestStandingResume re-runs a finished stream against its committed
// marks: every window is skipped (their items land behind the resumed
// frontier), nothing is re-charged, and no window is re-committed.
func TestStandingResume(t *testing.T) {
	items := []exec.Item{
		testItem(0, base.Add(10*time.Second)),
		testItem(1, base.Add(70*time.Second)),
		testItem(2, base.Add(2*time.Minute+40*time.Second)),
	}
	marks := newMemMarks()
	job := continuousJob("w/resume", jobs.StreamSpec{Lateness: 10 * time.Second, Items: len(items)})
	wins, _ := runStanding(t, job, items, marks)
	if len(wins) != 3 {
		t.Fatalf("first run closed %d windows, want 3", len(wins))
	}
	firstMark, _ := marks.StreamMarkFor("w/resume")
	commits := len(marks.commits)

	wins2, done := runStanding(t, job, items, marks)
	if len(wins2) != 0 {
		t.Fatalf("resumed run re-closed %d windows, want 0: %+v", len(wins2), wins2)
	}
	if !done {
		t.Fatal("resumed run never reported done")
	}
	if len(marks.commits) != commits {
		t.Fatalf("resumed run committed %d new marks, want 0", len(marks.commits)-commits)
	}
	again, _ := marks.StreamMarkFor("w/resume")
	if again.Spent != firstMark.Spent {
		t.Errorf("resumed run changed spend %v -> %v; resume must not re-charge", firstMark.Spent, again.Spent)
	}
	if again.Window != firstMark.Window {
		t.Errorf("resumed run moved the window mark %d -> %d", firstMark.Window, again.Window)
	}
}

// countFlusher counts barrier flushes.
type countFlusher struct {
	mu sync.Mutex
	n  int
}

func (f *countFlusher) Flush(context.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.n++
	return nil
}

func (f *countFlusher) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// TestCoordinatorBarrier checks generation alignment: a tick blocks
// until every live member ticks, a deregistered member stops being
// waited on, and each generation flushes exactly once.
func TestCoordinatorBarrier(t *testing.T) {
	fl := &countFlusher{}
	c := NewCoordinator(fl, 0)
	c.Expect(2)
	c.Register("a")
	c.Register("b")

	released := make(chan error, 1)
	go func() { released <- c.Tick(context.Background(), "a") }()
	select {
	case err := <-released:
		t.Fatalf("tick released before the barrier filled: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if err := c.Tick(context.Background(), "b"); err != nil {
		t.Fatal(err)
	}
	if err := <-released; err != nil {
		t.Fatal(err)
	}
	if fl.count() != 1 || c.Generation() != 1 {
		t.Fatalf("flushes=%d gen=%d, want 1/1", fl.count(), c.Generation())
	}

	// b finishes; a alone now satisfies the barrier.
	c.Deregister("b")
	if err := c.Tick(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	if c.Generation() != 2 {
		t.Fatalf("gen=%d, want 2", c.Generation())
	}

	// A cancelled waiter withdraws its arrival instead of wedging the
	// next generation.
	c.Register("b")
	ctx, cancel := context.WithCancel(context.Background())
	go func() { released <- c.Tick(ctx, "a") }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-released; err == nil {
		t.Fatal("cancelled tick returned nil")
	}
}

// TestCoordinatorDeadline checks live-mode degradation: with a
// deadline set, a straggler cannot stall another stream's window close
// forever.
func TestCoordinatorDeadline(t *testing.T) {
	fl := &countFlusher{}
	c := NewCoordinator(fl, 20*time.Millisecond)
	c.Register("fast")
	c.Register("slow") // never ticks
	if err := c.Tick(context.Background(), "fast"); err != nil {
		t.Fatal(err)
	}
	if c.Generation() != 1 {
		t.Fatalf("gen=%d, want deadline-fired generation 1", c.Generation())
	}
}
