// Command cdasctl is the CDAS control CLI. It is built exclusively on
// the cdas/client SDK — every subcommand is one or two SDK calls, which
// keeps the CLI honest as a proof that the v1 wire contract is complete.
//
// Usage:
//
//	cdasctl [-server http://localhost:8080] <command> [flags] [args]
//
// Commands:
//
//	submit     register a job (-name, -keywords, -domain, -accuracy, -window, ...)
//	get        print one job's record               (cdasctl get NAME)
//	list       list jobs (-state/-kind filters, -limit page size; auto-paginates)
//	cancel     cancel a pending, parked or running job
//	unpark     resume a budget-parked job
//	watch      stream a query's live results over SSE until it finishes
//	streams    standing queries: streams <list|submit|get|cancel|watch>
//	enums      enumerations: enums <list|submit|get|cancel|watch>
//	queries    list live query states
//	aggregators  list the registered answer-aggregation methods
//	scheduler  print the cross-query scheduler state
//	metrics    print the operational counters
//	health     probe the server
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"cdas/api"
	"cdas/client"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes one invocation; it is main minus the process exit, so
// tests drive the CLI in-process against httptest servers.
func run(argv []string, stdout, stderr io.Writer) int {
	global := flag.NewFlagSet("cdasctl", flag.ContinueOnError)
	global.SetOutput(stderr)
	server := global.String("server", envOr("CDAS_SERVER", "http://localhost:8080"), "CDAS server base URL")
	global.Usage = func() {
		fmt.Fprintln(stderr, "usage: cdasctl [-server URL] <command> [flags] [args]")
		fmt.Fprintln(stderr, "commands: submit, get, list, cancel, unpark, watch, streams, enums, queries, aggregators, scheduler, metrics, health")
		global.PrintDefaults()
	}
	if err := global.Parse(argv); err != nil {
		return 2
	}
	rest := global.Args()
	if len(rest) == 0 {
		global.Usage()
		return 2
	}
	c := client.New(*server)
	ctx := context.Background()
	cmd, args := rest[0], rest[1:]
	var err error
	switch cmd {
	case "submit":
		err = cmdSubmit(ctx, c, args, stdout, stderr)
	case "get":
		err = oneJob(args, func(name string) (api.JobStatus, error) { return c.Job(ctx, name) }, stdout)
	case "cancel":
		err = oneJob(args, func(name string) (api.JobStatus, error) { return c.CancelJob(ctx, name) }, stdout)
	case "unpark":
		err = oneJob(args, func(name string) (api.JobStatus, error) { return c.UnparkJob(ctx, name) }, stdout)
	case "list":
		err = cmdList(ctx, c, args, stdout, stderr)
	case "watch":
		err = cmdWatch(ctx, c, args, stdout)
	case "streams":
		err = cmdStreams(ctx, c, args, stdout, stderr)
	case "enums":
		err = cmdEnums(ctx, c, args, stdout, stderr)
	case "queries":
		err = printJSON(stdout)(c.Queries(ctx))
	case "aggregators":
		err = cmdAggregators(ctx, c, stdout)
	case "scheduler":
		err = printJSON(stdout)(c.SchedulerState(ctx))
	case "metrics":
		err = printJSON(stdout)(c.Metrics(ctx))
	case "health":
		err = printJSON(stdout)(c.Health(ctx))
	default:
		fmt.Fprintf(stderr, "cdasctl: unknown command %q\n", cmd)
		global.Usage()
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "cdasctl: %v\n", err)
		return 1
	}
	return 0
}

func envOr(key, fallback string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return fallback
}

// printJSON adapts any (value, error) SDK result into pretty JSON on w.
func printJSON(w io.Writer) func(v any, err error) error {
	return func(v any, err error) error {
		if err != nil {
			return err
		}
		b, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(w, string(b))
		return nil
	}
}

// oneJob runs a single-name SDK call (get/cancel/unpark) and prints the
// resulting record.
func oneJob(args []string, call func(name string) (api.JobStatus, error), stdout io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one job name, got %d args", len(args))
	}
	st, err := call(args[0])
	if err != nil {
		return err
	}
	return printJSON(stdout)(st, nil)
}

func cmdSubmit(ctx context.Context, c *client.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name       = fs.String("name", "", "job name (required)")
		kind       = fs.String("kind", "tsa", "job kind")
		keywords   = fs.String("keywords", "", "comma-separated filter keywords (required)")
		domain     = fs.String("domain", "Positive,Neutral,Negative", "comma-separated answer domain")
		accuracy   = fs.Float64("accuracy", 0.9, "required accuracy C in (0,1)")
		window     = fs.String("window", "24h", "query window w (Go duration)")
		start      = fs.String("start", "", "query timestamp t (RFC 3339; empty = now)")
		priority   = fs.Int("priority", 0, "budget-admission priority (higher first)")
		budget     = fs.Float64("budget", 0, "crowd-spend cap (0 = unlimited)")
		aggregator = fs.String("aggregator", "", "answer-aggregation method (see 'cdasctl aggregators'; empty = server default)")
		watch      = fs.Bool("watch", false, "stream the query's live results after submitting")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" || *keywords == "" {
		return fmt.Errorf("submit needs -name and -keywords")
	}
	st, err := c.SubmitJob(ctx, api.JobSubmission{
		Name:             *name,
		Kind:             *kind,
		Keywords:         splitList(*keywords),
		RequiredAccuracy: *accuracy,
		Domain:           splitList(*domain),
		Start:            *start,
		Window:           *window,
		Priority:         *priority,
		Budget:           *budget,
		Aggregator:       *aggregator,
	})
	if err != nil {
		return err
	}
	if err := printJSON(stdout)(st, nil); err != nil {
		return err
	}
	if *watch {
		return watchQuery(ctx, c, *name, stdout)
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func cmdList(ctx context.Context, c *client.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	fs.SetOutput(stderr)
	state := fs.String("state", "", "filter by lifecycle state (pending, running, parked, done, failed, cancelled)")
	kind := fs.String("kind", "", "filter by job kind (batch, tsa, imagetag, custom, continuous, enumeration)")
	limit := fs.Int("limit", 0, "page size hint (the iterator still fetches every page)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := client.ListJobsOptions{Limit: *limit, State: api.JobState(*state), Kind: *kind}
	tw := newTabWriter(stdout)
	fmt.Fprintln(tw, "NAME\tSTATE\tPROGRESS\tCOST\tATTEMPTS\tERROR")
	n := 0
	for st, err := range c.Jobs(ctx, opts) {
		if err != nil {
			tw.Flush()
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%.0f%%\t%.3f\t%d\t%s\n",
			st.Name, st.State, st.Progress*100, st.Cost, st.Attempts, st.Error)
		n++
	}
	tw.Flush()
	fmt.Fprintf(stdout, "%d job(s)\n", n)
	return nil
}

// cmdAggregators prints the server's answer-aggregation registry as a
// table, with the default marked.
func cmdAggregators(ctx context.Context, c *client.Client, stdout io.Writer) error {
	list, err := c.Aggregators(ctx)
	if err != nil {
		return err
	}
	tw := newTabWriter(stdout)
	fmt.Fprintln(tw, "NAME\tMODE\tRESPONSES\tDESCRIPTION")
	for _, a := range list.Aggregators {
		name := a.Name
		if a.Name == list.Default {
			name += " (default)"
		}
		mode := "batch"
		if a.Incremental {
			mode = "incremental"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", name, mode, a.ResponseType, a.Description)
	}
	return tw.Flush()
}

func newTabWriter(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
}

func cmdWatch(ctx context.Context, c *client.Client, args []string, stdout io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one query name, got %d args", len(args))
	}
	return watchQuery(ctx, c, args[0], stdout)
}

// watchQuery streams SSE events, rendering one line per revision until
// the terminal event arrives.
func watchQuery(ctx context.Context, c *client.Client, name string, stdout io.Writer) error {
	events, err := c.WatchQuery(ctx, name)
	if err != nil {
		return err
	}
	for ev := range events {
		if ev.Err != nil {
			return ev.Err
		}
		fmt.Fprintf(stdout, "%s rev=%d progress=%.1f%% items=%d%s\n",
			ev.Type, ev.ID, ev.State.Progress*100, ev.State.Items, formatPercentages(ev.State))
		if ev.Type == api.EventDone {
			if ev.State.Error != "" {
				return fmt.Errorf("query %q finished with error: %s", name, ev.State.Error)
			}
			return nil
		}
	}
	return fmt.Errorf("watch %q: stream ended before the terminal event", name)
}

func formatPercentages(st api.QueryState) string {
	if len(st.Percentages) == 0 {
		return ""
	}
	var b strings.Builder
	for _, d := range st.Domain {
		if p, ok := st.Percentages[d]; ok {
			fmt.Fprintf(&b, " %s=%.1f%%", d, p*100)
		}
	}
	return b.String()
}
