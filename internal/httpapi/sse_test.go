package httpapi

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"cdas/api"
	"cdas/internal/crowd"
	"cdas/internal/engine"
	"cdas/internal/jobs"
)

// sseEvent is one parsed frame of a test client's stream.
type sseEvent struct {
	id    int64
	kind  string
	state QueryState
}

// readSSE parses frames off an open event stream until the stream ends
// or maxEvents arrive (0 = until EOF).
func readSSE(t *testing.T, body *bufio.Scanner, maxEvents int) []sseEvent {
	t.Helper()
	var events []sseEvent
	var ev sseEvent
	haveData := false
	for body.Scan() {
		line := body.Text()
		switch {
		case line == "":
			if haveData {
				events = append(events, ev)
				if ev.kind == api.EventDone || (maxEvents > 0 && len(events) == maxEvents) {
					return events
				}
			}
			ev, haveData = sseEvent{}, false
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseInt(line[4:], 10, 64)
			if err != nil {
				t.Fatalf("bad event id line %q: %v", line, err)
			}
			ev.id = id
		case strings.HasPrefix(line, "event: "):
			ev.kind = line[7:]
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(line[6:]), &ev.state); err != nil {
				t.Fatalf("bad event data %q: %v", line, err)
			}
			haveData = true
		}
	}
	return events
}

func openStream(t *testing.T, client *http.Client, url string, lastEventID int64) (*http.Response, *bufio.Scanner) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID >= 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(lastEventID, 10))
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return resp, sc
}

// TestSSEStreamsLiveQuery drives a real concurrent pipeline through
// Follow while an SSE client watches: the client must receive the
// initial replay, at least one intermediate state event with
// monotonically progressing revisions, and the terminal done event.
func TestSSEStreamsLiveQuery(t *testing.T) {
	cfg := crowd.DefaultConfig(51)
	cfg.Workers = 200
	sim, err := crowd.NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(engine.CrowdPlatform{Platform: sim}, nil, engine.Config{
		JobName:         "tsa",
		HITSize:         10,
		SamplingRate:    0.2,
		MaxInflightHITs: 4,
		Seed:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	domain := []string{"pos", "neu", "neg"}
	questions := make([]crowd.Question, 24)
	texts := make(map[string]string, len(questions))
	for i := range questions {
		id := fmt.Sprintf("q%02d", i)
		questions[i] = crowd.Question{ID: id, Text: "tweet " + id, Domain: domain, Truth: "pos"}
		texts[id] = "a wonderful movie moment"
	}
	golden := make([]crowd.Question, 10)
	for i := range golden {
		golden[i] = crowd.Question{ID: fmt.Sprintf("g%02d", i), Domain: domain, Truth: "neg"}
	}

	server := NewServer()
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	// Publish the empty initial state so the subscription deterministically
	// precedes the run.
	server.Update(QueryState{Name: "panda", Domain: domain})
	resp, sc := openStream(t, ts.Client(), ts.URL+"/v1/queries/panda/events", -1)
	defer resp.Body.Close()

	ch, err := eng.Stream(context.Background(), questions, golden)
	if err != nil {
		t.Fatal(err)
	}
	followDone := make(chan error, 1)
	go func() {
		_, err := server.Follow("panda", domain, texts, len(questions), ch)
		followDone <- err
	}()

	events := readSSE(t, sc, 0)
	if err := <-followDone; err != nil {
		t.Fatalf("Follow: %v", err)
	}
	// 1 replay + 3 batches + terminal republish, minus any drop-oldest
	// coalescing: at minimum replay, one intermediate, one done.
	if len(events) < 3 {
		t.Fatalf("received %d events, want >= 3 (replay, intermediate, done)", len(events))
	}
	if events[0].id != 1 || events[0].state.Items != 0 {
		t.Errorf("first event not the initial replay: %+v", events[0])
	}
	for i, ev := range events {
		if i > 0 {
			if ev.id <= events[i-1].id {
				t.Errorf("event ids not increasing: %d after %d", ev.id, events[i-1].id)
			}
			if ev.state.Progress < events[i-1].state.Progress {
				t.Errorf("progress regressed: %v after %v", ev.state.Progress, events[i-1].state.Progress)
			}
		}
		wantKind := api.EventState
		if i == len(events)-1 {
			wantKind = api.EventDone
		}
		if ev.kind != wantKind {
			t.Errorf("event %d kind = %q, want %q", i, ev.kind, wantKind)
		}
	}
	final := events[len(events)-1].state
	if !final.Done || final.Progress != 1 || final.Items != len(questions) {
		t.Errorf("terminal state = %+v", final)
	}
	hasIntermediate := false
	for _, ev := range events[1 : len(events)-1] {
		if ev.state.Items > 0 && !ev.state.Done {
			hasIntermediate = true
		}
	}
	if !hasIntermediate {
		t.Error("no intermediate event carried partial results")
	}

	// The handler tears down after done; no subscriber may linger.
	waitNoSubscribers(t, server, "panda")
}

// TestSSELastEventIDSuppressesReplay: a client presenting the current
// revision as Last-Event-ID receives nothing until the next Update.
func TestSSELastEventIDSuppressesReplay(t *testing.T) {
	server := NewServer()
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	server.Update(QueryState{Name: "q", Domain: []string{"a", "b"}, Progress: 0.25})
	resp, sc := openStream(t, ts.Client(), ts.URL+"/v1/queries/q/events", 1)
	defer resp.Body.Close()

	got := make(chan []sseEvent, 1)
	go func() { got <- readSSE(t, sc, 1) }()
	select {
	case evs := <-got:
		t.Fatalf("replay arrived despite Last-Event-ID: %+v", evs)
	case <-time.After(50 * time.Millisecond):
	}
	server.Update(QueryState{Name: "q", Domain: []string{"a", "b"}, Progress: 0.5})
	select {
	case evs := <-got:
		if len(evs) != 1 || evs[0].id != 2 || evs[0].state.Progress != 0.5 {
			t.Errorf("post-update event = %+v", evs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("update never reached the suppressed-replay client")
	}
}

// TestSSEUnknownQuery404s: neither a published query nor a job — the
// stream request gets the structured envelope.
func TestSSEUnknownQuery404s(t *testing.T) {
	ts := httptest.NewServer(NewServer().Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/queries/ghost/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	var envelope api.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error == nil || envelope.Error.Code != api.CodeNotFound {
		t.Errorf("envelope = %+v", envelope.Error)
	}
}

// TestSSEDisconnectReleasesSubscriber: closing the client connection
// mid-stream tears the subscription down — the goroutine-leak guard.
func TestSSEDisconnectReleasesSubscriber(t *testing.T) {
	server := NewServer()
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	server.Update(QueryState{Name: "q", Domain: []string{"a", "b"}})
	resp, sc := openStream(t, ts.Client(), ts.URL+"/v1/queries/q/events", -1)
	if evs := readSSE(t, sc, 1); len(evs) != 1 {
		t.Fatalf("replay events = %d, want 1", len(evs))
	}
	if n := server.subscriberCount("q"); n != 1 {
		t.Fatalf("subscriberCount = %d, want 1", n)
	}
	resp.Body.Close() // client walks away mid-stream
	waitNoSubscribers(t, server, "q")
}

func waitNoSubscribers(t *testing.T, server *Server, name string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if server.subscriberCount(name) == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("%d subscribers still registered for %q after disconnect", server.subscriberCount(name), name)
}

// TestSSESubscriberChurnRace hammers subscriber add/drop while Update
// runs concurrently — the -race guard for the fan-out path.
func TestSSESubscriberChurnRace(t *testing.T) {
	server := NewServer()
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	server.Update(QueryState{Name: "q", Domain: []string{"a", "b"}})
	stop := make(chan struct{})
	var updaters sync.WaitGroup
	for u := 0; u < 4; u++ {
		updaters.Add(1)
		go func() {
			defer updaters.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					server.Update(QueryState{Name: "q", Domain: []string{"a", "b"}, Items: i})
				}
			}
		}()
	}
	var clients sync.WaitGroup
	for c := 0; c < 8; c++ {
		clients.Add(1)
		go func() {
			defer clients.Done()
			for i := 0; i < 5; i++ {
				resp, sc := openStream(t, ts.Client(), ts.URL+"/v1/queries/q/events", -1)
				readSSE(t, sc, 3)
				resp.Body.Close()
			}
		}()
	}
	clients.Wait()
	close(stop)
	updaters.Wait()
	waitNoSubscribers(t, server, "q")
}

// TestSubscriberPushDropsOldest: a full subscriber buffer sheds its
// oldest pending revision, never blocking the publisher.
func TestSubscriberPushDropsOldest(t *testing.T) {
	sub := &subscriber{ch: make(chan feedEvent, 4)}
	for i := 1; i <= 10; i++ {
		sub.push(feedEvent{rev: int64(i)})
	}
	var got []int64
	for len(sub.ch) > 0 {
		got = append(got, (<-sub.ch).rev)
	}
	want := []int64{7, 8, 9, 10}
	if len(got) != len(want) {
		t.Fatalf("buffered revisions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buffered revisions = %v, want %v", got, want)
		}
	}
}

// TestSSEKnownJobWithoutQueryState: a submitted job whose query hasn't
// published yet is watchable — the stream waits for the first revision
// instead of 404ing a race.
func TestSSEKnownJobWithoutQueryState(t *testing.T) {
	server := NewServer()
	server.SetJobs(&goldenController{statuses: goldenStatuses()})
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	// "strapped" is a known job with no published query state.
	resp, sc := openStream(t, ts.Client(), ts.URL+"/v1/queries/strapped/events", -1)
	defer resp.Body.Close()
	got := make(chan []sseEvent, 1)
	go func() { got <- readSSE(t, sc, 1) }()
	server.Update(QueryState{Name: "strapped", Domain: []string{"a", "b"}, Progress: 0.1})
	select {
	case evs := <-got:
		if len(evs) != 1 || evs[0].state.Progress != 0.1 {
			t.Errorf("first published event = %+v", evs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher of a pre-publication job never got the first revision")
	}
}

// TestSSESyntheticDoneForDeadJob: a job that fails before publishing
// any query state must still terminate its watchers — the handler
// synthesizes a done event from the lifecycle record instead of
// hanging the stream forever.
func TestSSESyntheticDoneForDeadJob(t *testing.T) {
	server := NewServer()
	server.SetJobs(&goldenController{statuses: []jobs.Status{{
		Job:   jobs.Job{Name: "doomed", Kind: jobs.KindTSA},
		State: jobs.StateFailed,
		Error: "run: no tweets matched",
	}}})
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	resp, sc := openStream(t, ts.Client(), ts.URL+"/v1/queries/doomed/events", -1)
	defer resp.Body.Close()
	done := make(chan []sseEvent, 1)
	go func() { done <- readSSE(t, sc, 0) }()
	select {
	case events := <-done:
		if len(events) != 1 {
			t.Fatalf("events = %+v, want exactly the synthetic done", events)
		}
		ev := events[0]
		if ev.kind != api.EventDone || !ev.state.Done || ev.state.Error != "run: no tweets matched" {
			t.Errorf("synthetic event = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher of a dead job hung instead of receiving a synthetic done")
	}
	waitNoSubscribers(t, server, "doomed")
}

// TestSSESyntheticDonePreservesPartialState: when the terminal event is
// synthesized for a dead job, any partial results the run published
// stay visible — only Done and the job error are stamped on.
func TestSSESyntheticDonePreservesPartialState(t *testing.T) {
	server := NewServer()
	server.SetJobs(&goldenController{statuses: []jobs.Status{{
		Job:   jobs.Job{Name: "partial", Kind: jobs.KindTSA},
		State: jobs.StateCancelled,
		Error: "cancelled mid-run",
	}}})
	server.Update(QueryState{
		Name: "partial", Domain: []string{"a", "b"},
		Percentages: map[string]float64{"a": 0.6, "b": 0.4},
		Items:       30, Progress: 0.5,
	})
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	// Last-Event-ID equals the current revision, so the non-done replay
	// is suppressed and only the synthetic terminal event arrives.
	resp, sc := openStream(t, ts.Client(), ts.URL+"/v1/queries/partial/events", 1)
	defer resp.Body.Close()
	done := make(chan []sseEvent, 1)
	go func() { done <- readSSE(t, sc, 0) }()
	select {
	case events := <-done:
		if len(events) != 1 {
			t.Fatalf("events = %+v, want exactly the synthetic done", events)
		}
		st := events[0].state
		if !st.Done || st.Error != "cancelled mid-run" {
			t.Errorf("terminal flags = %+v", st)
		}
		if st.Items != 30 || st.Progress != 0.5 || st.Percentages["a"] != 0.6 {
			t.Errorf("partial results wiped by synthesis: %+v", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("synthetic done never arrived")
	}
}

// TestSSEDoneReplayOnResume: resuming a watch on an already-done query
// with Last-Event-ID at the final revision re-sends the done event and
// closes, instead of hanging a job-less query forever.
func TestSSEDoneReplayOnResume(t *testing.T) {
	server := NewServer() // no job controller: pure Follow-style query
	server.Update(QueryState{Name: "finished", Domain: []string{"a", "b"}, Progress: 1, Done: true})
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	resp, sc := openStream(t, ts.Client(), ts.URL+"/v1/queries/finished/events", 1)
	defer resp.Body.Close()
	done := make(chan []sseEvent, 1)
	go func() { done <- readSSE(t, sc, 0) }()
	select {
	case events := <-done:
		if len(events) != 1 || events[0].kind != api.EventDone || !events[0].state.Done {
			t.Errorf("resume replay = %+v, want the done event again", events)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("resumed watch of a done query hung")
	}
}
