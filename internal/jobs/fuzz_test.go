package jobs

import (
	"math"
	"strings"
	"testing"
	"time"

	"cdas/internal/textutil"
)

// refValidate is an independent naive re-statement of Definition 1's
// well-formedness: at least one keyword, C in (0,1), >= 2 distinct
// domain answers, positive window.
func refValidate(q Query) bool {
	if len(q.Keywords) == 0 {
		return false
	}
	if math.IsNaN(q.RequiredAccuracy) || q.RequiredAccuracy <= 0 || q.RequiredAccuracy >= 1 {
		return false
	}
	if len(q.Domain) < 2 {
		return false
	}
	for i := range q.Domain {
		for j := i + 1; j < len(q.Domain); j++ {
			if q.Domain[i] == q.Domain[j] {
				return false
			}
		}
	}
	return q.Window > 0
}

func splitList(joined string) []string {
	if joined == "" {
		return nil
	}
	return strings.Split(joined, "|")
}

// FuzzQueryValidate: Validate never panics and accepts exactly the
// queries the naive reference accepts.
func FuzzQueryValidate(f *testing.F) {
	f.Add("iPhone4S|iPhone 4S", 0.95, "Best Ever|Good|Not Satisfied", int64(10*24*time.Hour))
	f.Add("", 0.5, "a|b", int64(time.Hour))
	f.Add("k", 1.5, "a|b", int64(time.Hour))
	f.Add("k", 0.9, "dup|dup", int64(time.Hour))
	f.Add("k", 0.9, "only", int64(time.Hour))
	f.Add("k", 0.9, "a|b", int64(-5))
	f.Add("k", math.NaN(), "a|b", int64(1))

	f.Fuzz(func(t *testing.T, keywords string, c float64, domain string, windowNanos int64) {
		q := Query{
			Keywords:         splitList(keywords),
			RequiredAccuracy: c,
			Domain:           splitList(domain),
			Start:            time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC),
			Window:           time.Duration(windowNanos),
		}
		err := q.Validate() // must not panic
		if want := refValidate(q); (err == nil) != want {
			t.Errorf("Validate(%+v) err = %v, reference verdict %v", q, err, want)
		}
	})
}

// TestQueryWindowBoundaries pins the half-open [Start, Start+Window)
// contract exhaustively around both edges: for a sweep of window sizes
// the property "Matches iff 0 <= at-Start < Window" must hold at the
// boundaries themselves and one step either side of them — the exact
// offsets where an off-by-one in the comparison direction would flip
// the verdict. Standing queries assign items to tumbling windows with
// the same half-open arithmetic, so this is the boundary contract the
// stream watermark relies on.
func TestQueryWindowBoundaries(t *testing.T) {
	start := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
	for _, window := range []time.Duration{
		time.Nanosecond, time.Second, time.Minute, time.Hour, 24 * time.Hour,
	} {
		q := Query{Keywords: []string{"edge"}, Start: start, Window: window}
		offsets := []time.Duration{
			-window, -time.Nanosecond, 0, time.Nanosecond,
			window / 2, window - time.Nanosecond, window, window + time.Nanosecond, 2 * window,
		}
		for _, off := range offsets {
			at := start.Add(off)
			want := off >= 0 && off < window
			if got := q.Matches("on the edge", at); got != want {
				t.Errorf("window %v: Matches at start%+v = %v, want %v", window, off, got, want)
			}
		}
	}
	// Degenerate windows are empty — nothing matches, not even Start.
	for _, window := range []time.Duration{0, -time.Second} {
		q := Query{Keywords: []string{"edge"}, Start: start, Window: window}
		for _, off := range []time.Duration{-time.Second, 0, time.Second} {
			if q.Matches("on the edge", start.Add(off)) {
				t.Errorf("window %v: matched at start%+v, want empty window", window, off)
			}
		}
	}
}

// FuzzQueryMatches: Matches never panics and equals "inside the
// half-open window AND keyword filter hits", computed independently.
func FuzzQueryMatches(f *testing.F) {
	base := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC).Unix()
	f.Add("loving my new iphone4s!!", "iPhone4S", base, int64(24*time.Hour), base+3600)
	f.Add("android forever", "iPhone4S", base, int64(24*time.Hour), base+3600)
	f.Add("edge of window", "edge", base, int64(time.Hour), base+3600)
	f.Add("before start", "before", base, int64(time.Hour), base-1)
	f.Add("", "", int64(0), int64(0), int64(0))
	f.Add("t", "t", int64(math.MaxInt64/2), int64(math.MaxInt64), int64(math.MinInt64/2))

	f.Fuzz(func(t *testing.T, text, keywords string, startUnix, windowNanos, atUnix int64) {
		q := Query{
			Keywords: splitList(keywords),
			Start:    time.Unix(startUnix, 0).UTC(),
			Window:   time.Duration(windowNanos),
		}
		at := time.Unix(atUnix, 0).UTC()
		got := q.Matches(text, at) // must not panic
		// Reference: [Start, Start+Window) — mirroring the implementation's
		// time arithmetic exactly so overflow semantics agree — composed
		// with the keyword filter (itself fuzzed against a naive reference
		// in textutil).
		inWindow := !at.Before(q.Start) && at.Before(q.Start.Add(q.Window))
		want := inWindow && textutil.ContainsAny(text, q.Keywords)
		if got != want {
			t.Errorf("Matches(%q, %v) = %v, reference says %v (window [%v, +%v))",
				text, at, got, want, q.Start, q.Window)
		}
	})
}
