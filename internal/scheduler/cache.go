// Verified-answer cache: the scheduler consults it before publishing
// anything to the crowd, so a question any job has already paid to
// verify is answered for free until its entry expires.
package scheduler

import (
	"sync"
	"time"
)

// CachedAnswer is one verified result held by the cache.
type CachedAnswer struct {
	// Answer is the accepted answer and Confidence its Equation 4
	// confidence at acceptance time.
	Answer     string
	Confidence float64
	// Votes is how many worker votes backed the acceptance.
	Votes int
	// StoredAt is the cache admission time (the scheduler's clock).
	StoredAt time.Time
}

// AnswerCache maps canonical question keys to verified answers with a
// TTL. It is safe for concurrent use. A zero TTL never expires entries —
// the right setting for deterministic simulations, where wall-clock
// expiry would make reruns diverge.
type AnswerCache struct {
	ttl time.Duration
	now func() time.Time

	mu      sync.Mutex
	entries map[string]CachedAnswer
}

// NewAnswerCache builds a cache. now may be nil (defaults to time.Now);
// inject a fixed clock for deterministic runs.
func NewAnswerCache(ttl time.Duration, now func() time.Time) *AnswerCache {
	if now == nil {
		now = time.Now
	}
	return &AnswerCache{ttl: ttl, now: now, entries: make(map[string]CachedAnswer)}
}

// Get returns the live entry for key. Expired entries are dropped on
// access and reported as misses.
func (c *AnswerCache) Get(key string) (CachedAnswer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return CachedAnswer{}, false
	}
	if c.expired(e) {
		delete(c.entries, key)
		return CachedAnswer{}, false
	}
	return e, true
}

// Put stores (or refreshes) a verified answer under key.
func (c *AnswerCache) Put(key string, answer string, confidence float64, votes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = CachedAnswer{
		Answer:     answer,
		Confidence: confidence,
		Votes:      votes,
		StoredAt:   c.now(),
	}
}

// Len reports the number of stored entries, expired ones included until
// their next access or Sweep.
func (c *AnswerCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Sweep drops every expired entry and reports how many were removed.
func (c *AnswerCache) Sweep() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := 0
	for k, e := range c.entries {
		if c.expired(e) {
			delete(c.entries, k)
			removed++
		}
	}
	return removed
}

// expired reports whether e has outlived the TTL. Callers hold c.mu.
func (c *AnswerCache) expired(e CachedAnswer) bool {
	return c.ttl > 0 && c.now().Sub(e.StoredAt) >= c.ttl
}
