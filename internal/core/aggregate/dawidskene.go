// Dawid–Skene one-coin EM on the Aggregator contract: worker accuracies
// inferred from inter-worker agreement alone, no golden questions. The
// computation is exactly dawidskene.Estimate — the aggregator only
// groups questions by their domain size m (Estimate fixes one m per
// run) and translates the posteriors into verdicts.
package aggregate

import (
	"fmt"
	"sort"

	"cdas/internal/core/dawidskene"
	"cdas/internal/core/verification"
)

// DawidSkeneName is the Dawid–Skene aggregator's registry key.
const DawidSkeneName = "dawid-skene"

func init() {
	Register(dawidSkeneAggregator{}, "one-coin Dawid-Skene EM: worker accuracies and answers inferred jointly from inter-worker agreement (batch only)")
}

type dawidSkeneAggregator struct{}

func (dawidSkeneAggregator) Name() string { return DawidSkeneName }

func (dawidSkeneAggregator) Aggregate(b Batch) (Result, error) {
	// Estimate runs over one domain size at a time; group the questions
	// by m and run EM per group, in sorted m order for determinism.
	byM := make(map[int][]Question)
	for _, q := range b.Questions {
		if len(b.Votes[q.ID]) == 0 {
			continue
		}
		byM[q.M] = append(byM[q.M], q)
	}
	ms := make([]int, 0, len(byM))
	for m := range byM {
		ms = append(ms, m)
	}
	sort.Ints(ms)

	verdicts := make(map[string]Verdict, len(b.Questions))
	// Worker accuracy merges across groups weighted by how many votes
	// the worker cast in each — a worker judged on more votes counts
	// more towards their overall quality.
	accSum := make(map[string]float64)
	accVotes := make(map[string]int)
	for _, m := range ms {
		group := byM[m]
		var votes []dawidskene.Vote
		perWorker := make(map[string]int)
		for _, q := range group {
			for _, v := range b.Votes[q.ID] {
				votes = append(votes, dawidskene.Vote{Question: q.ID, Worker: v.Worker, Answer: v.Answer})
				perWorker[v.Worker]++
			}
		}
		res, err := dawidskene.Estimate(votes, m, dawidskene.Options{})
		if err != nil {
			return Result{}, fmt.Errorf("aggregate: dawid-skene (m=%d): %w", m, err)
		}
		for _, q := range group {
			post, ok := res.Posteriors[q.ID]
			if !ok {
				continue
			}
			verdicts[q.ID] = posteriorVerdict(post)
		}
		if len(ms) == 1 {
			// Single domain size — the common case — keeps the EM
			// accuracies bit-identical: no weighted merge to round them.
			return Result{Verdicts: verdicts, WorkerQuality: res.WorkerAccuracy}, nil
		}
		for w, a := range res.WorkerAccuracy {
			accSum[w] += a * float64(perWorker[w])
			accVotes[w] += perWorker[w]
		}
	}
	quality := make(map[string]float64, len(accSum))
	for w, sum := range accSum {
		quality[w] = sum / float64(accVotes[w])
	}
	return Result{Verdicts: verdicts, WorkerQuality: quality}, nil
}

// posteriorVerdict ranks a question's posterior over observed answers,
// with the same MAP tie-break (smallest answer string) Estimate uses.
func posteriorVerdict(post map[string]float64) Verdict {
	answers := make([]string, 0, len(post))
	for a := range post {
		answers = append(answers, a)
	}
	sort.Strings(answers)
	ranked := make([]verification.Scored, 0, len(answers))
	for _, a := range answers {
		ranked = append(ranked, verification.Scored{Answer: a, Confidence: post[a]})
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].Confidence != ranked[j].Confidence {
			return ranked[i].Confidence > ranked[j].Confidence
		}
		return ranked[i].Answer < ranked[j].Answer
	})
	best := ranked[0]
	return Verdict{Answer: best.Answer, Confidence: best.Confidence, Ranked: ranked}
}
