package jobstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// validRunBytes builds a well-formed run file's bytes for corpus
// seeding.
func validRunBytes(t testing.TB, entries []kvEntry, blockSize int) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "seed.run")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writeRun(f, entries, blockSize, nil); err != nil {
		t.Fatal(err)
	}
	f.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// FuzzRunDecode feeds arbitrary bytes to the sorted-run reader: open
// must never panic, a successful open must iterate without panicking,
// and every failure must be a clean ErrCorruptRun (or an IO error) —
// never a silently wrong result. Torn tails (truncations of a valid
// run) must always be rejected: runs are installed atomically, so a
// short file is corruption, not a crash artifact, and no record — in
// particular no acked delete's tombstone — may be silently dropped or
// resurrected by guessing.
func FuzzRunDecode(f *testing.F) {
	seedEntries := []kvEntry{
		{key: "alpha", val: []byte("1")},
		{key: "beta", del: true},
		{key: "gamma", val: bytes.Repeat([]byte("g"), 100)},
	}
	valid := validRunBytes(f, seedEntries, 64)
	f.Add(valid)
	f.Add(valid[:len(valid)-1])            // torn footer
	f.Add(valid[:len(valid)/2])            // torn body
	f.Add([]byte{})                        // empty
	f.Add([]byte("CDASRUN1"))              // magic only
	f.Add(bytes.Repeat([]byte{0xff}, 256)) // junk
	flipped := append([]byte(nil), valid...)
	flipped[10] ^= 0x40 // corrupt a data block byte
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.run")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		r, err := openRun(path)
		if err != nil {
			return // rejected cleanly; no panic is the property
		}
		defer r.close()
		// A run that opens must iterate deterministically: two passes
		// agree entry-for-entry, errors included.
		collect := func() ([]kvEntry, error) {
			it := r.iterator("")
			var out []kvEntry
			for e, ok := it.next(); ok; e, ok = it.next() {
				out = append(out, e)
			}
			return out, it.err
		}
		first, err1 := collect()
		second, err2 := collect()
		if (err1 == nil) != (err2 == nil) || !reflect.DeepEqual(first, second) {
			t.Fatalf("non-deterministic iteration: %d/%v vs %d/%v", len(first), err1, len(second), err2)
		}
		// Point reads agree with the iterator on every key it yields.
		for _, e := range first {
			got, ok, err := r.get(e.key)
			if err != nil || !ok || got.del != e.del || !bytes.Equal(got.val, e.val) {
				t.Fatalf("get(%q) = %+v/%v/%v disagrees with iterator entry %+v", e.key, got, ok, err, e)
			}
		}
	})
}

// FuzzLSMRecover treats arbitrary bytes as the WAL tail and pins
// recovery as a fixed point across the checkpoint path: recover, read,
// write, checkpoint, and recover again — the second recovery must see
// exactly the first recovery's state plus the new write, with the
// checkpointed portion served from the run stack instead of the WAL.
func FuzzLSMRecover(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a wal"))
	f.Add(frame(1, appendEntry(nil, kvEntry{key: "a", val: []byte("1")})))
	batch := appendEntry(nil, kvEntry{key: "a", val: []byte("2")})
	batch = appendEntry(batch, kvEntry{key: "b", del: true})
	f.Add(append(frame(1, appendEntry(nil, kvEntry{key: "b", val: []byte("x")})), frame(2, batch)...))
	torn := frame(3, appendEntry(nil, kvEntry{key: "t", val: []byte("torn")}))
	f.Add(append(frame(1, appendEntry(nil, kvEntry{key: "keep", val: []byte("me")})), torn[:len(torn)-2]...))
	f.Add(bytes.Repeat([]byte{0xee}, headerSize*2))

	f.Fuzz(func(t *testing.T, wal []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, lsmWALName), wal, 0o644); err != nil {
			t.Skip()
		}
		l, err := OpenLSM(LSMConfig{Dir: dir})
		if err != nil {
			// Arbitrary bytes can hit the structured-corruption path (a
			// CRC-valid frame with undecodable ops); rejecting loudly is
			// allowed, guessing is not.
			if !errors.Is(err, ErrCorruptRun) && !errors.Is(err, ErrLocked) {
				t.Fatalf("recovery error is not a corruption report: %v", err)
			}
			return
		}
		first := map[string]string{}
		if err := l.Scan("", "", func(k string, v []byte) bool {
			first[k] = string(v)
			return true
		}); err != nil {
			t.Fatalf("scan after recovery: %v", err)
		}
		if err := l.Put("post-recovery", []byte("pr")); err != nil {
			t.Fatalf("write after recovery: %v", err)
		}
		if err := l.Checkpoint(); err != nil {
			t.Fatalf("checkpoint after recovery: %v", err)
		}
		l.Close()

		r, err := OpenLSM(LSMConfig{Dir: dir})
		if err != nil {
			t.Fatalf("second recovery: %v", err)
		}
		defer r.Close()
		bs := r.BootStats()
		if bs.TailRecords != 0 {
			t.Fatalf("checkpoint left %d WAL tail records", bs.TailRecords)
		}
		second := map[string]string{}
		if err := r.Scan("", "", func(k string, v []byte) bool {
			second[k] = string(v)
			return true
		}); err != nil {
			t.Fatalf("scan after second recovery: %v", err)
		}
		want := map[string]string{"post-recovery": "pr"}
		for k, v := range first {
			want[k] = v
		}
		if !reflect.DeepEqual(second, want) {
			t.Fatalf("recovery is not a fixed point:\nfirst + write: %v\nsecond:        %v", want, second)
		}
	})
}

// TestGenerateFuzzCorpus writes the committed seed corpora under
// testdata/fuzz/ when JOBSTORE_WRITE_CORPUS=1 is set. The files are
// checked in; rerun with the env var after changing a format to
// refresh them.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("JOBSTORE_WRITE_CORPUS") == "" {
		t.Skip("set JOBSTORE_WRITE_CORPUS=1 to regenerate the committed corpora")
	}
	write := func(fuzzName, seedName string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", fuzzName)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, seedName), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	valid := validRunBytes(t, []kvEntry{
		{key: "alpha", val: []byte("1")},
		{key: "beta", del: true},
		{key: "gamma", val: bytes.Repeat([]byte("g"), 100)},
	}, 64)
	write("FuzzRunDecode", "seed-valid-run", valid)
	write("FuzzRunDecode", "seed-torn-footer", valid[:len(valid)-7])
	write("FuzzRunDecode", "seed-torn-body", valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[10] ^= 0x40
	write("FuzzRunDecode", "seed-bitflip", flipped)

	batch := appendEntry(nil, kvEntry{key: "a", val: []byte("2")})
	batch = appendEntry(batch, kvEntry{key: "b", del: true})
	wal := append(frame(1, appendEntry(nil, kvEntry{key: "b", val: []byte("x")})), frame(2, batch)...)
	write("FuzzLSMRecover", "seed-batch-wal", wal)
	torn := frame(3, appendEntry(nil, kvEntry{key: "t", val: []byte("torn")}))
	write("FuzzLSMRecover", "seed-torn-tail", append(append([]byte(nil), wal...), torn[:len(torn)-2]...))

	write("FuzzReplay", "seed-two-records", append(frame(1, []byte("good")), frame(2, []byte("also good"))...))
	write("FuzzReplay", "seed-torn-tail", append(frame(1, []byte("good")), 0xde, 0xad, 0xbe))
}
