// Package aggregate defines the pluggable answer-aggregation contract of
// the engine: given the votes workers cast on a batch of categorical
// questions, an Aggregator decides each question's answer, attaches a
// confidence, and estimates every worker's quality. CDAS's
// probability-based verification model (Section 4 of the paper), the
// majority baseline and Dawid–Skene EM are ported onto the interface
// unchanged in output; Wawa and Zero-Based Skill extend the menu with
// the agreement-driven methods of the Crowd-Kit quality-control suite.
//
// Aggregators register themselves in a package-level registry keyed by a
// stable name — the same name jobs carry on the wire (api.JobSubmission)
// and the scheduler keys its answer cache with, so cached verdicts never
// cross methods.
//
// Methods that can score a question from its own votes alone implement
// Incremental as well: the engine folds assignments in as they arrive
// (one Folder per in-flight question) instead of re-running the batch
// computation per HIT. Batch-only methods (EM and the skill-iteration
// family, which need the whole batch to estimate worker quality) are
// run once per HIT when its assignment stream drains.
package aggregate

import (
	"fmt"
	"sort"

	"cdas/internal/core/verification"
)

// DefaultName is the aggregator jobs run with when they do not pick one:
// the paper's probability-based verification model.
const DefaultName = "cdas"

// Vote is one worker's answer to one question, annotated with the
// worker's estimated historical accuracy (used by accuracy-aware
// methods; agreement-driven methods ignore it).
type Vote struct {
	Worker   string
	Answer   string
	Accuracy float64
}

// Question identifies one question of a batch: its ID and the
// answer-domain size m = |R| its confidences normalise over.
type Question struct {
	ID string
	M  int
}

// Batch is one HIT's worth of aggregation input: the questions, the
// votes each received (in arrival order), and the population-mean
// accuracy for methods that weigh unseen workers.
type Batch struct {
	Questions    []Question
	Votes        map[string][]Vote
	MeanAccuracy float64
}

// Verdict is an aggregator's decision for one question.
type Verdict struct {
	// Answer is the accepted answer (highest confidence).
	Answer string
	// Confidence is the accepted answer's confidence.
	Confidence float64
	// Ranked lists every answer that received at least one vote, most
	// confident first (ties broken by answer string).
	Ranked []verification.Scored
}

// Result is a full batch aggregation outcome.
type Result struct {
	// Verdicts maps question ID to its verdict. Questions that received
	// no votes have no verdict.
	Verdicts map[string]Verdict
	// WorkerQuality is the aggregator's per-worker quality estimate in
	// [0, 1]: agreement-with-aggregate for the voting methods, the EM
	// accuracy for Dawid–Skene, the skill for Wawa and Zero-Based Skill.
	WorkerQuality map[string]float64
}

// Aggregator decides a batch of questions from their votes.
type Aggregator interface {
	// Name is the stable registry key; also the wire enum value.
	Name() string
	// Aggregate scores every question of the batch that received votes.
	Aggregate(Batch) (Result, error)
}

// Spec sizes a Folder for one in-flight question.
type Spec struct {
	// Planned is the number of assignments the HIT plans to consume.
	Planned int
	// M is the answer-domain size |R|.
	M int
	// MeanAccuracy is the population-mean accuracy E[a].
	MeanAccuracy float64
}

// Folder accumulates one question's votes as assignments arrive and
// exposes the running verdict. Folders are not safe for concurrent use;
// the engine owns one per in-flight question.
type Folder interface {
	// Fold records one vote. Implementations reject folds past the
	// planned assignment count.
	Fold(Vote) error
	// Received reports how many votes have been folded.
	Received() int
	// Verdict returns the running verdict over the folded votes, or
	// verification.ErrNoVotes before any arrival.
	Verdict() (Verdict, error)
}

// Incremental marks aggregators that score a question from its own
// votes alone, so the engine can fold assignments in one at a time —
// heavy-traffic paths never re-run the batch computation per arrival.
type Incremental interface {
	Aggregator
	NewFolder(Spec) (Folder, error)
}

// ResponseCategorical is the response type every current aggregator
// handles: one label from a fixed answer domain.
const ResponseCategorical = "categorical"

// Info describes one registered aggregator for discovery
// (GET /v1/aggregators).
type Info struct {
	Name         string
	Incremental  bool
	ResponseType string
	Description  string
}

// registry maps aggregator name to implementation. Registration happens
// in package init functions; after init the map is read-only, so lookups
// need no lock.
var registry = make(map[string]Aggregator)

// descriptions holds each registered aggregator's one-line summary.
var descriptions = make(map[string]string)

// Register adds an aggregator under its Name. It panics on a duplicate
// or empty name — registration is a package-init-time programming error,
// not a runtime condition.
func Register(a Aggregator, description string) {
	name := a.Name()
	if name == "" {
		panic("aggregate: Register with empty name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("aggregate: duplicate aggregator %q", name))
	}
	registry[name] = a
	descriptions[name] = description
}

// Get resolves a name to its aggregator. The empty name resolves to
// DefaultName.
func Get(name string) (Aggregator, bool) {
	if name == "" {
		name = DefaultName
	}
	a, ok := registry[name]
	return a, ok
}

// Names lists the registered aggregator names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Infos describes every registered aggregator, sorted by name.
func Infos() []Info {
	out := make([]Info, 0, len(registry))
	for _, name := range Names() {
		_, inc := registry[name].(Incremental)
		out = append(out, Info{
			Name:         name,
			Incremental:  inc,
			ResponseType: ResponseCategorical,
			Description:  descriptions[name],
		})
	}
	return out
}

// Validate reports whether name resolves to a registered aggregator
// (the empty name is the default and always valid).
func Validate(name string) error {
	if _, ok := Get(name); !ok {
		return fmt.Errorf("aggregate: unknown aggregator %q (registered: %v)", name, Names())
	}
	return nil
}

// sortedQuestionIDs returns the batch's question IDs sorted — the
// deterministic iteration order every batch method uses.
func sortedQuestionIDs(b Batch) []string {
	out := make([]string, 0, len(b.Questions))
	for _, q := range b.Questions {
		out = append(out, q.ID)
	}
	sort.Strings(out)
	return out
}

// agreementQuality computes the share of each worker's votes that match
// the accepted answers — the generic agreement-with-aggregate quality
// estimate the voting methods report.
func agreementQuality(b Batch, verdicts map[string]Verdict) map[string]float64 {
	agree := make(map[string]int)
	total := make(map[string]int)
	for _, id := range sortedQuestionIDs(b) {
		v, ok := verdicts[id]
		if !ok {
			continue
		}
		for _, vote := range b.Votes[id] {
			total[vote.Worker]++
			if vote.Answer == v.Answer {
				agree[vote.Worker]++
			}
		}
	}
	out := make(map[string]float64, len(total))
	for w, n := range total {
		out[w] = float64(agree[w]) / float64(n)
	}
	return out
}
