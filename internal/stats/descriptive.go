package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (denominator n), or 0
// for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanAbsError returns mean(|a_i - b_i|); the err^j metric of Figure 15.
// It panics if the slices differ in length.
func MeanAbsError(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: MeanAbsError length mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return 0
	}
	sum := 0.0
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum / float64(len(a))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram counts values into equal-width bins across [lo, hi). Values
// outside the range are clamped into the first/last bin, matching how the
// paper's Figure 14 buckets worker accuracies into 5-point bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins on [lo, hi).
// It panics if bins <= 0 or lo >= hi.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram needs bins >= 1")
	}
	if lo >= hi {
		panic(fmt.Sprintf("stats: NewHistogram bounds inverted [%v, %v]", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	idx := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total reports the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// Fractions returns each bin's share of the total (zeros when empty).
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// BinLabel renders the half-open interval covered by bin i, e.g.
// "75-80" for percentage histograms.
func (h *Histogram) BinLabel(i int) string {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return fmt.Sprintf("%g-%g", h.Lo+float64(i)*w, h.Lo+float64(i+1)*w)
}
