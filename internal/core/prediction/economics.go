package prediction

import (
	"fmt"
	"math"
)

// Economics captures the AMT charging rules of Section 3.1: every worker
// answering a HIT is paid WorkerFee (m_c) and the platform collects
// PlatformFee (m_s) per worker per HIT, so a HIT answered by n workers
// costs (m_c + m_s) * n.
type Economics struct {
	WorkerFee   float64 // m_c, dollars per assignment paid to the worker
	PlatformFee float64 // m_s, dollars per assignment paid to the platform
}

// DefaultEconomics mirrors the paper's running example of $0.01 per worker
// per HIT with a 20% platform surcharge (AMT's fee schedule at the time).
var DefaultEconomics = Economics{WorkerFee: 0.01, PlatformFee: 0.002}

// Validate reports whether the fee schedule is usable (finite,
// non-negative fees).
func (e Economics) Validate() error {
	for name, v := range map[string]float64{"worker fee": e.WorkerFee, "platform fee": e.PlatformFee} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("prediction: %s must be a non-negative finite amount, got %v", name, v)
		}
	}
	return nil
}

// PerAssignment returns m_c + m_s, the marginal cost of one collected
// answer.
func (e Economics) PerAssignment() float64 { return e.WorkerFee + e.PlatformFee }

// HITCost returns the cost of one HIT answered by n workers:
// (m_c + m_s) * n.
func (e Economics) HITCost(n int) float64 { return e.PerAssignment() * float64(n) }

// QueryCost returns the Section 3.1 cost of a streaming query that sees k
// candidate items per time unit over w time units, with n workers per HIT
// and hitSize items per HIT: (m_c + m_s) * n * ceil(k*w / hitSize).
// With hitSize = 1 this reduces to the paper's (m_c + m_s) * n * K * w.
func (e Economics) QueryCost(n, k, w, hitSize int) float64 {
	if hitSize <= 0 {
		hitSize = 1
	}
	items := k * w
	hits := (items + hitSize - 1) / hitSize
	return e.HITCost(n) * float64(hits)
}

// PlanCost combines the planner with the fee schedule: the cost of
// meeting required accuracy c for a query with k items per time unit over
// w units, batching hitSize items per HIT.
func (m *Model) PlanCost(e Economics, c float64, k, w, hitSize int) (workers int, cost float64, err error) {
	if err := e.Validate(); err != nil {
		return 0, 0, err
	}
	n, err := m.RequiredWorkers(c)
	if err != nil {
		return 0, 0, err
	}
	return n, e.QueryCost(n, k, w, hitSize), nil
}
