// Package loadgen is the end-to-end load-generation harness: it boots a
// complete in-process CDAS server (or points at a remote one), drives
// it purely through the cdas/client SDK with a deterministic, seedable
// multi-tenant workload, and reports submit/end-to-end latency
// percentiles, throughput, crowd spend and dedup savings in a
// machine-readable form (the BENCH_e2e.json schema) plus a human table.
//
// Two driving modes:
//
//   - Closed-loop (ArrivalMean == 0, in-process only): every tenant of a
//     round is submitted back to back, the harness flushes the scheduler
//     once the whole wave is enqueued, and the next round starts when
//     the previous one settled. Generation composition is then a pure
//     function of the profile — a run's aggregate spend, per-job costs
//     and verdict distribution are bit-equal across repeats and across
//     -dispatchers settings, which is what makes the numbers gateable
//     in CI.
//   - Timed (ArrivalMean > 0): tenants arrive on a seeded exponential
//     arrival process against a periodically flushing server — the
//     realistic-latency mode. Which jobs share a generation then depends
//     on real time, so only the workload (not the spend attribution) is
//     reproducible.
package loadgen

import (
	"fmt"
	"time"

	"cdas/internal/core/aggregate"
)

// BlockSize is the workload's question granularity: tenant question
// sets are composed of blocks of this many questions (one synthetic
// "movie" per block), and Overlap rounds to block boundaries.
const BlockSize = 8

// Profile is one workload shape. The zero value is not runnable;
// construct from Named or fill every field and Validate.
type Profile struct {
	// Name labels the profile in reports and baselines.
	Name string `json:"name"`
	// Seed drives every random choice in the run: the crowd population,
	// the tweet stream, arrival times and watcher draws.
	Seed uint64 `json:"seed"`
	// Tenants is the number of concurrent jobs per round.
	Tenants int `json:"tenants"`
	// QuestionsPerTenant is each tenant's question-set size; it must be
	// a multiple of BlockSize.
	QuestionsPerTenant int `json:"questions_per_tenant"`
	// Overlap is the fraction of each tenant's questions drawn from its
	// domain group's shared pool (identical across the group's tenants);
	// the rest are private. Rounded to block granularity.
	Overlap float64 `json:"overlap"`
	// Domains spreads tenants round-robin over this many distinct
	// answer-domain variants; questions only coalesce within a variant,
	// and each variant runs its own engine, so Domains > 1 exercises the
	// scheduler's concurrent domain groups.
	Domains int `json:"domains"`
	// Rounds repeats the workload: round r re-asks round r-1's questions
	// under fresh job names, so rounds beyond the first measure the
	// verified-answer cache.
	Rounds int `json:"rounds"`
	// PriorityLevels cycles tenants through 0..PriorityLevels-1 budget
	// admission priorities (0 = all default priority).
	PriorityLevels int `json:"priority_levels,omitempty"`
	// TenantBudget caps each job's crowd spend (0 = unlimited); jobs the
	// budget cannot cover are parked, and the harness counts them.
	TenantBudget float64 `json:"tenant_budget,omitempty"`
	// GlobalBudget caps the service-wide spend (0 = unlimited).
	GlobalBudget float64 `json:"global_budget,omitempty"`
	// WatcherFraction attaches an SSE watcher to this fraction of
	// tenants (by index), consuming the live event stream end to end.
	WatcherFraction float64 `json:"watcher_fraction"`
	// ArrivalMean is the mean inter-arrival gap of the timed mode; 0
	// selects the closed-loop deterministic mode.
	ArrivalMean time.Duration `json:"arrival_mean,omitempty"`
	// Dispatchers sizes the server's dispatcher pool. In closed-loop
	// mode the effective pool is max(Dispatchers, Tenants) so a whole
	// wave can block in one generation — the flag then changes only
	// goroutine scheduling, never batch composition or results.
	Dispatchers int `json:"dispatchers"`
	// RequiredAccuracy is every job's C (and the service verification
	// level).
	RequiredAccuracy float64 `json:"required_accuracy"`
	// HITSize and Inflight configure the engine template.
	HITSize  int `json:"hit_size"`
	Inflight int `json:"inflight"`
	// DisableDedup turns cross-query coalescing and the answer cache
	// off — the naive baseline.
	DisableDedup bool `json:"disable_dedup,omitempty"`
	// Aggregator names the answer-aggregation method every submitted
	// job runs with (empty = the server default, "cdas").
	Aggregator string `json:"aggregator,omitempty"`
	// Stream switches the workload to standing queries: each tenant
	// submits one continuous query over the server's built-in
	// deterministic source (open-loop seeded exponential event-time
	// arrivals) instead of a batch TSA job. In closed-loop mode the
	// window coordinator synchronises every stream's window closes into
	// shared scheduler generations, so the windowed results hash is
	// bit-reproducible across repeats and -dispatchers settings.
	Stream bool `json:"stream,omitempty"`
	// StreamItems is each stream's source length (0 = 48).
	StreamItems int `json:"stream_items,omitempty"`
	// StreamRate is the source's mean event-time arrival rate in items
	// per second (0 = 0.5).
	StreamRate float64 `json:"stream_rate,omitempty"`
	// StreamWindow is the tumbling window width (0 = 1 minute of event
	// time).
	StreamWindow time.Duration `json:"stream_window,omitempty"`
	// StreamCapacity caps crowd questions per window (0 = 5), small
	// enough that the degrade ladder engages under the default rate.
	StreamCapacity int `json:"stream_capacity,omitempty"`
	// Enum switches the workload to enumeration queries: each tenant
	// submits one open-ended "list all X" job against the built-in
	// deterministic simulated crowd. The enumeration runner buys HIT
	// batches on its own (no scheduler generations), and every batch is
	// a pure function of the per-tenant source seed — so closed-loop
	// enum runs reproduce the same result sets, completeness estimates
	// and spend bit for bit across repeats and -dispatchers settings.
	Enum bool `json:"enum,omitempty"`
	// EnumItemValue is each job's worth of one newly discovered member,
	// in HIT-price currency (0 = 0.05). Marginal-value admission stops
	// buying batches once E[new items per batch] x EnumItemValue falls
	// below the HIT price.
	EnumItemValue float64 `json:"enum_item_value,omitempty"`
	// EnumUniverse is each hidden set's true size (0 = 30) — the figure
	// the Chao92 completeness estimate should converge toward.
	EnumUniverse int `json:"enum_universe,omitempty"`
	// EnumPopularity is the source's Zipf skew exponent (0 = the source
	// default, 1.0).
	EnumPopularity float64 `json:"enum_popularity,omitempty"`
	// EnumMaxBatches caps each job's HIT batches (0 = unlimited, so the
	// marginal-value rule is the only open-ended stop).
	EnumMaxBatches int `json:"enum_max_batches,omitempty"`
}

// Validate normalises and checks the profile, returning the effective
// copy. QuestionsPerTenant is rounded up to a BlockSize multiple.
func (p Profile) Validate() (Profile, error) {
	if p.Name == "" {
		p.Name = "custom"
	}
	if p.Tenants < 1 {
		return p, fmt.Errorf("loadgen: tenants must be >= 1, got %d", p.Tenants)
	}
	if p.QuestionsPerTenant < 1 {
		return p, fmt.Errorf("loadgen: questions per tenant must be >= 1, got %d", p.QuestionsPerTenant)
	}
	if rem := p.QuestionsPerTenant % BlockSize; rem != 0 {
		p.QuestionsPerTenant += BlockSize - rem
	}
	if p.Overlap < 0 || p.Overlap > 1 {
		return p, fmt.Errorf("loadgen: overlap %v outside [0,1]", p.Overlap)
	}
	if p.Domains < 1 {
		p.Domains = 1
	}
	if p.Domains > p.Tenants {
		p.Domains = p.Tenants
	}
	if p.Rounds < 1 {
		p.Rounds = 1
	}
	if p.PriorityLevels < 0 {
		return p, fmt.Errorf("loadgen: priority levels must be >= 0, got %d", p.PriorityLevels)
	}
	if p.TenantBudget < 0 || p.GlobalBudget < 0 {
		return p, fmt.Errorf("loadgen: budgets must be >= 0")
	}
	if p.WatcherFraction < 0 || p.WatcherFraction > 1 {
		return p, fmt.Errorf("loadgen: watcher fraction %v outside [0,1]", p.WatcherFraction)
	}
	if p.ArrivalMean < 0 {
		return p, fmt.Errorf("loadgen: arrival mean must be >= 0, got %v", p.ArrivalMean)
	}
	if p.Dispatchers < 1 {
		p.Dispatchers = 2
	}
	if p.RequiredAccuracy == 0 {
		p.RequiredAccuracy = 0.85
	}
	if p.RequiredAccuracy <= 0 || p.RequiredAccuracy >= 1 {
		return p, fmt.Errorf("loadgen: required accuracy %v outside (0,1)", p.RequiredAccuracy)
	}
	if p.HITSize == 0 {
		p.HITSize = 20
	}
	if p.HITSize < 2 {
		return p, fmt.Errorf("loadgen: HIT size must be >= 2, got %d", p.HITSize)
	}
	if p.Inflight < 1 {
		p.Inflight = 2
	}
	if err := aggregate.Validate(p.Aggregator); err != nil {
		return p, fmt.Errorf("loadgen: %w", err)
	}
	if p.Stream {
		if p.StreamItems == 0 {
			p.StreamItems = 48
		}
		if p.StreamItems < 1 {
			return p, fmt.Errorf("loadgen: stream items must be >= 1, got %d", p.StreamItems)
		}
		if p.StreamRate == 0 {
			p.StreamRate = 0.5
		}
		if p.StreamRate < 0 {
			return p, fmt.Errorf("loadgen: stream rate must be >= 0, got %v", p.StreamRate)
		}
		if p.StreamWindow == 0 {
			p.StreamWindow = time.Minute
		}
		if p.StreamWindow < 0 {
			return p, fmt.Errorf("loadgen: stream window must be > 0, got %v", p.StreamWindow)
		}
		if p.StreamCapacity == 0 {
			p.StreamCapacity = 5
		}
		// Stream marks are per job name and the cache rounds of the batch
		// workload have no standing-query analogue.
		p.Rounds = 1
	}
	if p.Enum {
		if p.Stream {
			return p, fmt.Errorf("loadgen: stream and enum modes are mutually exclusive")
		}
		if p.EnumItemValue == 0 {
			p.EnumItemValue = 0.05
		}
		if p.EnumItemValue < 0 {
			return p, fmt.Errorf("loadgen: enum item value must be > 0, got %v", p.EnumItemValue)
		}
		if p.EnumUniverse == 0 {
			p.EnumUniverse = 30
		}
		if p.EnumUniverse < 1 {
			return p, fmt.Errorf("loadgen: enum universe must be >= 1, got %d", p.EnumUniverse)
		}
		if p.EnumPopularity < 0 {
			return p, fmt.Errorf("loadgen: enum popularity must be >= 0, got %v", p.EnumPopularity)
		}
		if p.EnumMaxBatches < 0 {
			return p, fmt.Errorf("loadgen: enum max batches must be >= 0, got %d", p.EnumMaxBatches)
		}
		// Enumeration marks are per job name; the cache rounds of the
		// batch workload have no enumeration analogue either.
		p.Rounds = 1
	}
	return p, nil
}

// Deterministic reports whether the profile runs in the closed-loop
// mode whose aggregate results are reproducible bit for bit.
func (p Profile) Deterministic() bool { return p.ArrivalMean == 0 }

// Named returns a predefined profile by name. Callers may override
// fields before Validate.
func Named(name string) (Profile, bool) {
	switch name {
	case "smoke":
		// Small enough for CI's bench gate: 4 tenants over 2 domain
		// variants, one cache round, watchers on half the tenants.
		return Profile{
			Name:               "smoke",
			Seed:               1,
			Tenants:            4,
			QuestionsPerTenant: 16,
			Overlap:            0.5,
			Domains:            2,
			Rounds:             2,
			WatcherFraction:    0.5,
			Dispatchers:        4,
			RequiredAccuracy:   0.85,
			HITSize:            20,
			Inflight:           2,
		}, true
	case "contention":
		// The headline profile: 64 tenants hammering 4 domain groups.
		return Profile{
			Name:               "contention",
			Seed:               1,
			Tenants:            64,
			QuestionsPerTenant: 16,
			Overlap:            0.5,
			Domains:            4,
			Rounds:             1,
			WatcherFraction:    0.25,
			Dispatchers:        8,
			RequiredAccuracy:   0.85,
			HITSize:            20,
			Inflight:           4,
		}, true
	case "dedup":
		// High-overlap multi-round shape for cache/dedup accounting.
		return Profile{
			Name:               "dedup",
			Seed:               1,
			Tenants:            16,
			QuestionsPerTenant: 24,
			Overlap:            0.75,
			Domains:            2,
			Rounds:             3,
			WatcherFraction:    0.25,
			Dispatchers:        8,
			RequiredAccuracy:   0.85,
			HITSize:            20,
			Inflight:           4,
		}, true
	case "stream":
		// Standing queries: 4 continuous queries over 2 domain groups,
		// arrivals fast enough for the tiny window capacity that the
		// degrade ladder (shed, degraded verdicts, accounted drops)
		// engages. Closed-loop, so the windowed results hash gates.
		return Profile{
			Name:               "stream",
			Seed:               1,
			Tenants:            4,
			QuestionsPerTenant: 8,
			Domains:            2,
			Rounds:             1,
			WatcherFraction:    0.5,
			Dispatchers:        4,
			RequiredAccuracy:   0.85,
			HITSize:            20,
			Inflight:           2,
			Stream:             true,
			StreamItems:        48,
			StreamRate:         0.5,
			StreamWindow:       time.Minute,
			StreamCapacity:     5,
		}, true
	case "enum":
		// Enumeration queries: 4 open-ended jobs over independent hidden
		// sets, budgets generous enough that the marginal-value rule (not
		// the budget) is what stops the spend. Closed-loop, so the
		// enumeration results hash gates.
		return Profile{
			Name:               "enum",
			Seed:               1,
			Tenants:            4,
			QuestionsPerTenant: 8,
			Domains:            1,
			Rounds:             1,
			TenantBudget:       2,
			WatcherFraction:    0.5,
			Dispatchers:        4,
			RequiredAccuracy:   0.85,
			HITSize:            20,
			Inflight:           2,
			Enum:               true,
			EnumItemValue:      0.05,
			EnumUniverse:       30,
		}, true
	case "budget":
		// Scarce budgets with priority tiers: exercises parking.
		return Profile{
			Name:               "budget",
			Seed:               1,
			Tenants:            12,
			QuestionsPerTenant: 16,
			Overlap:            0.5,
			Domains:            2,
			Rounds:             1,
			PriorityLevels:     3,
			TenantBudget:       0.3,
			GlobalBudget:       0.8,
			WatcherFraction:    0.25,
			Dispatchers:        6,
			RequiredAccuracy:   0.85,
			HITSize:            20,
			Inflight:           2,
		}, true
	}
	return Profile{}, false
}

// ProfileNames lists the predefined profiles.
func ProfileNames() []string {
	return []string{"smoke", "contention", "dedup", "budget", "stream", "enum"}
}
