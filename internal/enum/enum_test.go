package enum

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"cdas/internal/crowd"
	"cdas/internal/engine"
	"cdas/internal/jobs"
	"cdas/internal/metrics"
	"cdas/internal/scheduler"
	"cdas/internal/stats"
	"cdas/internal/textgen"
)

// testScheduler builds a minimal scheduler: the enum runner only uses
// its HIT price and budget ledger, but construction still probes the
// engine template.
func testScheduler(t *testing.T, globalBudget float64, onCharge func(string, float64), counters *metrics.Registry) *scheduler.Scheduler {
	t.Helper()
	platform, err := crowd.NewPlatform(crowd.DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	golden := make([]crowd.Question, 12)
	for i := range golden {
		golden[i] = crowd.Question{
			ID:     fmt.Sprintf("golden/g%03d", i),
			Text:   fmt.Sprintf("Calibration tweet #%d", i),
			Domain: append([]string(nil), textgen.Labels...),
			Truth:  textgen.LabelNeutral,
		}
	}
	sched, err := scheduler.New(scheduler.Config{
		Platform:     engine.CrowdPlatform{Platform: platform},
		Engine:       engine.Config{HITSize: 20, MaxInflightHITs: 4, Seed: 9},
		Golden:       golden,
		GlobalBudget: globalBudget,
		OnCharge:     onCharge,
		Counters:     counters,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sched.Close)
	return sched
}

// enumJob builds a valid enumeration job.
func enumJob(name string, spec jobs.EnumSpec) jobs.Job {
	return jobs.Job{
		Name:  name,
		Kind:  jobs.KindEnumeration,
		Query: jobs.Query{Keywords: []string{"seabird"}},
		Enum:  &spec,
	}
}

// enumCollector records published enumeration progress.
type enumCollector struct {
	mu      sync.Mutex
	batches []BatchResult
	items   []Item
	mark    jobs.StreamMark
	est     stats.SpeciesEstimate
	done    bool
}

func (c *enumCollector) publish(_ jobs.Job, b *BatchResult, items []Item, mark jobs.StreamMark, est stats.SpeciesEstimate, done bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b != nil {
		c.batches = append(c.batches, *b)
	}
	c.items = append([]Item(nil), items...)
	c.mark = mark
	c.est = est
	c.done = c.done || done
}

func TestResultSetDedupsVariants(t *testing.T) {
	set := NewResultSet()
	k1, new1 := set.Observe("Blue Whale", 0)
	k2, new2 := set.Observe("  blue   WHALE ", 1)
	if !new1 || new2 {
		t.Fatalf("dedup broken: new1=%v new2=%v", new1, new2)
	}
	if k1 != k2 {
		t.Fatalf("variant keys differ: %q vs %q", k1, k2)
	}
	if set.Distinct() != 1 || set.Contributions() != 2 {
		t.Fatalf("distinct=%d contributions=%d, want 1/2", set.Distinct(), set.Contributions())
	}
	items := set.Items()
	if len(items) != 1 || items[0].Text != "blue whale" || items[0].Count != 2 || items[0].Batch != 0 {
		t.Fatalf("items = %+v", items)
	}
}

func TestResultSetRoundTrip(t *testing.T) {
	set := NewResultSet()
	for i, text := range []string{"a", "b", "a", "c", "b", "a"} {
		set.Observe(text, i/2)
	}
	restored := RestoreResultSet(set.Progress())
	if restored.Distinct() != set.Distinct() || restored.Contributions() != set.Contributions() {
		t.Fatalf("restore lost counts: %d/%d vs %d/%d",
			restored.Distinct(), restored.Contributions(), set.Distinct(), set.Contributions())
	}
	a, b := set.Items(), restored.Items()
	if len(a) != len(b) {
		t.Fatalf("items %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("item %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if empty := RestoreResultSet(nil); empty.Distinct() != 0 || empty.Contributions() != 0 {
		t.Fatal("nil restore not empty")
	}
}

func TestSimSourceBatchesArePure(t *testing.T) {
	job := enumJob("pure", jobs.EnumSpec{ItemValue: 0.1, Universe: 25, SourceSeed: 11})
	s1, err := NewSimSource(job)
	if err != nil {
		t.Fatal(err)
	}
	if got := s1.(*SimSource).UniverseSize(); got != 25 {
		t.Fatalf("UniverseSize = %d, want the configured 25", got)
	}
	s2, _ := NewSimSource(job)
	for _, i := range []int{0, 3, 1, 7} {
		a, b := s1.Batch(i), s2.Batch(i)
		if len(a) != len(b) || len(a) != job.Enum.BatchContributions() {
			t.Fatalf("batch %d: sizes %d vs %d, want %d", i, len(a), len(b), job.Enum.BatchContributions())
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("batch %d contribution %d: %+v vs %+v", i, j, a[j], b[j])
			}
		}
	}
}

func TestSimSourceVariantsCanonicalize(t *testing.T) {
	job := enumJob("variants", jobs.EnumSpec{ItemValue: 0.1, Universe: 5, SourceSeed: 3})
	src, err := NewSimSource(job)
	if err != nil {
		t.Fatal(err)
	}
	sim := src.(*SimSource)
	valid := make(map[string]bool, len(sim.universe))
	for _, u := range sim.universe {
		valid[scheduler.ItemKey(u)] = true
	}
	for i := 0; i < 10; i++ {
		for _, c := range src.Batch(i) {
			if !valid[scheduler.ItemKey(c.Text)] {
				t.Fatalf("batch %d contribution %q does not canonicalize to a universe member", i, c.Text)
			}
		}
	}
}

// The headline economics: with ample budget, the runner stops on the
// marginal-value rule once discovery dries up — Done, spend well short
// of the cap, completeness estimate converged toward the true set size.
func TestRunnerMarginalValueStop(t *testing.T) {
	counters := metrics.NewRegistry()
	sched := testScheduler(t, 0, nil, counters)
	col := &enumCollector{}
	run := NewRunner(RunnerConfig{Scheduler: sched, Counters: counters, Publish: col.publish})
	job := enumJob("marginal", jobs.EnumSpec{ItemValue: 0.05, Universe: 30, SourceSeed: 17})
	job.Budget = 100
	var lastProgress, lastCost float64
	if err := run(context.Background(), job, func(p, c float64) { lastProgress, lastCost = p, c }); err != nil {
		t.Fatal(err)
	}
	if !col.done {
		t.Fatal("no terminal publish")
	}
	if col.mark.Enum == nil || col.mark.Enum.Stopped != StopMarginalValue {
		t.Fatalf("stop reason = %+v, want %q", col.mark.Enum, StopMarginalValue)
	}
	if lastProgress != 1 {
		t.Fatalf("terminal progress = %v, want 1", lastProgress)
	}
	if lastCost <= 0 || lastCost >= job.Budget/2 {
		t.Fatalf("spend %v should be positive and far below the %v budget", lastCost, job.Budget)
	}
	if math.Abs(lastCost-col.mark.Spent) > 1e-9 {
		t.Fatalf("reported cost %v != mark spend %v", lastCost, col.mark.Spent)
	}
	if got := sched.Ledger().Spent(); math.Abs(got-col.mark.Spent) > 1e-9 {
		t.Fatalf("ledger spend %v != mark spend %v", got, col.mark.Spent)
	}
	if d := len(col.items); d < 30/2 || d > 30 {
		t.Fatalf("discovered %d items, want a sizable fraction of the 30-item universe", d)
	}
	if c := col.est.Completeness(); c < 0.5 || col.est.Total < float64(len(col.items)) {
		t.Fatalf("estimate %+v not converged (completeness %v)", col.est, c)
	}
	if counters.Get("enum_stop_"+StopMarginalValue) != 1 {
		t.Fatal("stop counter not bumped")
	}
}

func TestRunnerParksOnBudget(t *testing.T) {
	sched := testScheduler(t, 0, nil, nil)
	run := NewRunner(RunnerConfig{Scheduler: sched})
	job := enumJob("broke", jobs.EnumSpec{ItemValue: 10, Universe: 30})
	job.Budget = sched.HITPrice() / 2
	err := run(context.Background(), job, func(p, c float64) {})
	if !errors.Is(err, jobs.ErrParked) {
		t.Fatalf("err = %v, want ErrParked", err)
	}
}

func TestRunnerMaxBatchesStop(t *testing.T) {
	sched := testScheduler(t, 0, nil, nil)
	col := &enumCollector{}
	run := NewRunner(RunnerConfig{Scheduler: sched, Publish: col.publish})
	job := enumJob("capped", jobs.EnumSpec{ItemValue: 10, Universe: 500, MaxBatches: 3})
	if err := run(context.Background(), job, func(p, c float64) {}); err != nil {
		t.Fatal(err)
	}
	if col.mark.Enum.Stopped != StopMaxBatches {
		t.Fatalf("stop = %q, want %q", col.mark.Enum.Stopped, StopMaxBatches)
	}
	if len(col.batches) != 3 || col.mark.Window != 2 {
		t.Fatalf("ran %d batches to window %d, want 3 to 2", len(col.batches), col.mark.Window)
	}
	if want := 3 * sched.HITPrice(); math.Abs(col.mark.Spent-want) > 1e-9 {
		t.Fatalf("spend %v, want %v", col.mark.Spent, want)
	}
}

func TestRunnerTargetCoverageStop(t *testing.T) {
	sched := testScheduler(t, 0, nil, nil)
	col := &enumCollector{}
	run := NewRunner(RunnerConfig{Scheduler: sched, Publish: col.publish})
	job := enumJob("covered", jobs.EnumSpec{ItemValue: 10, Universe: 10, TargetCoverage: 0.5, SourceSeed: 5})
	if err := run(context.Background(), job, func(p, c float64) {}); err != nil {
		t.Fatal(err)
	}
	if col.mark.Enum.Stopped != StopTargetCoverage {
		t.Fatalf("stop = %q, want %q", col.mark.Enum.Stopped, StopTargetCoverage)
	}
	if c := col.est.Completeness(); c < 0.5 {
		t.Fatalf("completeness %v below the 0.5 target", c)
	}
}

func TestRunnerRejectsWrongKind(t *testing.T) {
	sched := testScheduler(t, 0, nil, nil)
	run := NewRunner(RunnerConfig{Scheduler: sched})
	err := run(context.Background(), jobs.Job{Name: "tsa", Kind: jobs.KindTSA}, func(p, c float64) {})
	if !errors.Is(err, jobs.ErrPermanent) {
		t.Fatalf("err = %v, want ErrPermanent", err)
	}
}

// Two identical runs produce identical result sets, spend and
// estimates — the bit-reproducibility loadgen's results hash relies on.
func TestRunnerDeterministic(t *testing.T) {
	runOnce := func() (*enumCollector, float64) {
		sched := testScheduler(t, 0, nil, nil)
		col := &enumCollector{}
		run := NewRunner(RunnerConfig{Scheduler: sched, Publish: col.publish})
		job := enumJob("det", jobs.EnumSpec{ItemValue: 0.05, Universe: 20, SourceSeed: 23})
		if err := run(context.Background(), job, func(p, c float64) {}); err != nil {
			t.Fatal(err)
		}
		return col, sched.Ledger().Spent()
	}
	a, spendA := runOnce()
	b, spendB := runOnce()
	if spendA != spendB {
		t.Fatalf("spend diverged: %v vs %v", spendA, spendB)
	}
	if len(a.items) != len(b.items) {
		t.Fatalf("item counts diverged: %d vs %d", len(a.items), len(b.items))
	}
	for i := range a.items {
		if a.items[i] != b.items[i] {
			t.Fatalf("item %d diverged: %+v vs %+v", i, a.items[i], b.items[i])
		}
	}
	if a.est != b.est {
		t.Fatalf("estimates diverged: %+v vs %+v", a.est, b.est)
	}
}
