package loadgen

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// testProfile is a scaled-down smoke shape that keeps -race runs quick.
func testProfile(dispatchers int) Profile {
	p, ok := Named("smoke")
	if !ok {
		panic("smoke profile missing")
	}
	p.Dispatchers = dispatchers
	return p
}

func TestWorkloadDeterministic(t *testing.T) {
	p := testProfile(2)
	w1, err := BuildWorkload(p)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := BuildWorkload(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(w1.Tenants) != p.Tenants || len(w2.Tenants) != p.Tenants {
		t.Fatalf("tenant counts: %d, %d, want %d", len(w1.Tenants), len(w2.Tenants), p.Tenants)
	}
	for i := range w1.Tenants {
		a, b := w1.Tenants[i], w2.Tenants[i]
		if a.Name != b.Name || a.DomainVariant != b.DomainVariant || a.Watcher != b.Watcher ||
			strings.Join(a.Keywords, ",") != strings.Join(b.Keywords, ",") {
			t.Fatalf("tenant %d diverged between builds: %+v vs %+v", i, a, b)
		}
		if len(a.Keywords)*BlockSize != p.QuestionsPerTenant {
			t.Fatalf("tenant %d: %d keyword blocks cover %d questions, want %d",
				i, len(a.Keywords), len(a.Keywords)*BlockSize, p.QuestionsPerTenant)
		}
	}
	if len(w1.Stream) != len(w2.Stream) {
		t.Fatalf("stream lengths diverged: %d vs %d", len(w1.Stream), len(w2.Stream))
	}
	// Overlap rounds to blocks: tenants of one variant share exactly the
	// shared blocks and nothing else.
	t0, t2 := w1.Tenants[0], w1.Tenants[2] // same variant (Domains=2)
	if t0.DomainVariant != t2.DomainVariant {
		t.Fatalf("expected tenants 0 and 2 in one variant")
	}
	sharedSeen := 0
	kw2 := make(map[string]bool, len(t2.Keywords))
	for _, k := range t2.Keywords {
		kw2[k] = true
	}
	for _, k := range t0.Keywords {
		if kw2[k] {
			sharedSeen++
		}
	}
	if sharedSeen != w1.SharedBlocks {
		t.Fatalf("shared blocks between same-variant tenants: %d, want %d", sharedSeen, w1.SharedBlocks)
	}
}

// TestRunReproducibleAcrossDispatchers is the harness's core guarantee:
// a fixed-seed closed-loop run produces identical aggregate spend,
// job outcomes and results hash no matter the -dispatchers setting or
// how goroutines interleave.
func TestRunReproducibleAcrossDispatchers(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var reports []*Report
	for _, d := range []int{1, 8} {
		rep, err := Run(ctx, Config{Profile: testProfile(d)})
		if err != nil {
			t.Fatalf("run with %d dispatchers: %v", d, err)
		}
		if rep.Partial {
			t.Fatalf("run with %d dispatchers reported partial", d)
		}
		if rep.Jobs.Done != rep.Jobs.Total {
			t.Fatalf("run with %d dispatchers: %d/%d jobs done (%+v; errors %v)",
				d, rep.Jobs.Done, rep.Jobs.Total, rep.Jobs, rep.Errors)
		}
		if !rep.Deterministic {
			t.Fatalf("closed-loop in-process run must report deterministic")
		}
		if rep.QuestionsPerSec <= 0 || rep.SpendJobs <= 0 {
			t.Fatalf("degenerate throughput/spend: %+v", rep)
		}
		reports = append(reports, rep)
	}
	a, b := reports[0], reports[1]
	if a.SpendLedger != b.SpendLedger || a.SpendJobs != b.SpendJobs {
		t.Errorf("spend diverged across dispatcher settings: %v/%v vs %v/%v",
			a.SpendLedger, a.SpendJobs, b.SpendLedger, b.SpendJobs)
	}
	if a.ResultsHash != b.ResultsHash {
		t.Errorf("results hash diverged: %s vs %s", a.ResultsHash, b.ResultsHash)
	}
	if a.Jobs != b.Jobs {
		t.Errorf("job outcomes diverged: %+v vs %+v", a.Jobs, b.Jobs)
	}
	// The second round re-asks round one's questions: the cache must
	// answer them, and the dedup accounting must say so.
	if a.Sched.CacheHits == 0 || a.DedupSavedPct <= 0 {
		t.Errorf("expected cache hits on the second round: %+v", a.Sched)
	}
	if a.Watchers == 0 || a.SSEEvents == 0 {
		t.Errorf("expected SSE watcher traffic: watchers=%d events=%d", a.Watchers, a.SSEEvents)
	}
	if a.E2E.Count == 0 || a.Submit.Count != a.Jobs.Total {
		t.Errorf("latency populations incomplete: submit=%d e2e=%d total=%d",
			a.Submit.Count, a.E2E.Count, a.Jobs.Total)
	}
}

// TestStreamRunReproducibleAcrossDispatchers is the standing-query
// analogue of the core guarantee: a fixed-seed closed-loop stream run
// produces identical windowed results (the stream hash) no matter the
// -dispatchers setting, because the window coordinator barriers every
// stream's window-k close into one scheduler generation.
func TestStreamRunReproducibleAcrossDispatchers(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var reports []*Report
	for _, d := range []int{1, 8} {
		p, ok := Named("stream")
		if !ok {
			t.Fatal("stream profile missing")
		}
		p.Dispatchers = d
		rep, err := Run(ctx, Config{Profile: p})
		if err != nil {
			t.Fatalf("stream run with %d dispatchers: %v", d, err)
		}
		if rep.Partial {
			t.Fatalf("stream run with %d dispatchers reported partial", d)
		}
		if rep.Jobs.Done != rep.Jobs.Total {
			t.Fatalf("stream run with %d dispatchers: %d/%d jobs done (%+v; errors %v)",
				d, rep.Jobs.Done, rep.Jobs.Total, rep.Jobs, rep.Errors)
		}
		if !rep.Deterministic {
			t.Fatalf("closed-loop in-process stream run must report deterministic")
		}
		if rep.QuestionsSubmitted <= 0 || rep.SpendJobs <= 0 {
			t.Fatalf("degenerate stream accounting: submitted=%d spend=%v errors=%v",
				rep.QuestionsSubmitted, rep.SpendJobs, rep.Errors)
		}
		reports = append(reports, rep)
	}
	a, b := reports[0], reports[1]
	if a.ResultsHash != b.ResultsHash {
		t.Errorf("stream results hash diverged: %s vs %s", a.ResultsHash, b.ResultsHash)
	}
	if a.SpendLedger != b.SpendLedger || a.SpendJobs != b.SpendJobs {
		t.Errorf("stream spend diverged across dispatcher settings: %v/%v vs %v/%v",
			a.SpendLedger, a.SpendJobs, b.SpendLedger, b.SpendJobs)
	}
	if a.QuestionsSubmitted != b.QuestionsSubmitted {
		t.Errorf("stream item counts diverged: %d vs %d", a.QuestionsSubmitted, b.QuestionsSubmitted)
	}
	if a.Watchers == 0 || a.SSEEvents == 0 {
		t.Errorf("expected stream SSE watcher traffic: watchers=%d events=%d", a.Watchers, a.SSEEvents)
	}
}

// TestEnumRunReproducibleAcrossDispatchers is the enumeration analogue
// of the core guarantee — every batch is a pure function of the
// per-tenant source seed, so result sets, estimates and spend reproduce
// bit for bit — plus the two semantic contracts of the open-ended mode:
// the Chao92 estimate converges toward the true universe size, and
// marginal-value admission halts the spend well before the budgets run
// out.
func TestEnumRunReproducibleAcrossDispatchers(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var reports []*Report
	for _, d := range []int{1, 8} {
		p, ok := Named("enum")
		if !ok {
			t.Fatal("enum profile missing")
		}
		p.Dispatchers = d
		rep, err := Run(ctx, Config{Profile: p})
		if err != nil {
			t.Fatalf("enum run with %d dispatchers: %v", d, err)
		}
		if rep.Partial || rep.Jobs.Done != rep.Jobs.Total {
			t.Fatalf("enum run with %d dispatchers: %+v (errors %v)", d, rep.Jobs, rep.Errors)
		}
		if !rep.Deterministic {
			t.Fatalf("closed-loop in-process enum run must report deterministic")
		}
		e := rep.Enum
		if e == nil {
			t.Fatalf("enum run carried no enumeration summary")
		}
		if e.Jobs != rep.Jobs.Total || e.Batches == 0 || e.Contributions == 0 || e.Distinct == 0 {
			t.Fatalf("degenerate enumeration summary: %+v", e)
		}
		// Convergence: the summed estimate lands near the true combined
		// universe size, and most of each hidden set was discovered.
		trueTotal := float64(p.EnumUniverse * p.Tenants)
		if e.EstimateTotal < 0.7*trueTotal || e.EstimateTotal > 1.3*trueTotal {
			t.Errorf("estimate %.1f far from the true universe total %.0f", e.EstimateTotal, trueTotal)
		}
		if e.MeanCompleteness < 0.5 {
			t.Errorf("mean completeness %.2f never converged", e.MeanCompleteness)
		}
		// The marginal-value rule — not the budget — ends every job.
		if e.StoppedMarginal != e.Jobs {
			t.Errorf("stops: %d marginal, %d other, want all %d marginal", e.StoppedMarginal, e.StoppedOther, e.Jobs)
		}
		if e.Spent <= 0 || e.Spent >= e.BudgetTotal {
			t.Errorf("spend %.3f must be positive and below the %.3f budget", e.Spent, e.BudgetTotal)
		}
		reports = append(reports, rep)
	}
	a, b := reports[0], reports[1]
	if a.ResultsHash != b.ResultsHash {
		t.Errorf("enum results hash diverged: %s vs %s", a.ResultsHash, b.ResultsHash)
	}
	if a.SpendLedger != b.SpendLedger || a.SpendJobs != b.SpendJobs {
		t.Errorf("enum spend diverged across dispatcher settings: %v/%v vs %v/%v",
			a.SpendLedger, a.SpendJobs, b.SpendLedger, b.SpendJobs)
	}
	if !enumSummaryEq(*a.Enum, *b.Enum) {
		t.Errorf("enum summaries diverged: %+v vs %+v", *a.Enum, *b.Enum)
	}
	if a.Watchers == 0 {
		t.Errorf("expected enum SSE watchers, got none")
	}
}

// TestRunBudgetParking drives the budget profile and expects the
// admission control to park at least one tenant.
func TestRunBudgetParking(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	p, _ := Named("budget")
	rep, err := Run(ctx, Config{Profile: p})
	if err != nil {
		t.Fatalf("budget run: %v", err)
	}
	if rep.Jobs.Parked == 0 {
		t.Fatalf("budget profile parked no jobs: %+v (errors %v)", rep.Jobs, rep.Errors)
	}
	if rep.Jobs.Done == 0 {
		t.Fatalf("budget profile completed no jobs: %+v", rep.Jobs)
	}
	if rep.Jobs.Unsettled != 0 {
		t.Fatalf("unsettled jobs after budget run: %+v", rep.Jobs)
	}
}

// TestRunPartialOnCancel interrupts a timed-mode run mid-flight: the
// harness must drain and still return a (partial) report instead of
// hanging on open SSE watchers.
func TestRunPartialOnCancel(t *testing.T) {
	p := testProfile(2)
	p.ArrivalMean = 100 * time.Millisecond // timed mode: submissions spread out
	p.Rounds = 1
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	rep, err := Run(ctx, Config{Profile: p, DrainTimeout: 2 * time.Second})
	if err == nil || !errors.Is(err, ErrInterrupted) {
		t.Fatalf("expected ErrInterrupted, got %v", err)
	}
	if rep == nil || !rep.Partial {
		t.Fatalf("expected a partial report, got %+v", rep)
	}
	if took := time.Since(start); took > 30*time.Second {
		t.Fatalf("interrupted run took %v to unwind", took)
	}
}
