// Durable job service: a Manager whose every lifecycle change is
// committed to a jobstore WAL before it is acknowledged, so a killed
// server replays the log on restart, requeues the jobs it was running
// and never re-runs a finished one.
package jobs

import (
	"encoding/json"
	"fmt"
	"sync"

	"cdas/internal/jobstore"
	"cdas/internal/metrics"
)

// ServiceConfig tunes OpenService. The zero value is a volatile
// (memory-only) service with default retry and compaction settings.
type ServiceConfig struct {
	// Dir roots the WAL and snapshot files. Empty disables persistence:
	// the service still runs the full lifecycle, in memory only.
	Dir string
	// MaxAttempts bounds the retry loop (default DefaultMaxAttempts).
	MaxAttempts int
	// SnapshotEvery compacts the WAL into a snapshot after this many
	// appended events (default 256; negative disables compaction).
	SnapshotEvery int
	// Counters, when set, receives lifecycle and WAL counters.
	Counters *metrics.Registry
}

// Service is the durable job lifecycle service. It is safe for
// concurrent use.
type Service struct {
	cfg ServiceConfig
	m   *Manager

	// mu serialises state mutation with WAL appends so the log's event
	// order always matches the order the state machine applied them in.
	mu      sync.Mutex
	log     *jobstore.Log
	wake    chan struct{}
	resumed []string
	budget  BudgetState
}

// BudgetState is the durable crowd-budget ledger the scheduler's
// accounting is persisted through: global spend plus per-job spend,
// WAL-committed so a restarted server keeps charging from where the
// dead one stopped rather than re-granting spent money.
type BudgetState struct {
	// GlobalSpent is the total crowd spend across every job.
	GlobalSpent float64 `json:"global_spent"`
	// Jobs maps job name to its spend so far.
	Jobs map[string]float64 `json:"jobs,omitempty"`
}

// clone deep-copies the state so callers never alias the live map.
func (b BudgetState) clone() BudgetState {
	out := BudgetState{GlobalSpent: b.GlobalSpent}
	if len(b.Jobs) > 0 {
		out.Jobs = make(map[string]float64, len(b.Jobs))
		for k, v := range b.Jobs {
			out.Jobs[k] = v
		}
	}
	return out
}

// walStatus is a job lifecycle record as written to the WAL and
// snapshot. It mirrors Status plus the FIFO sequence.
type walStatus struct {
	Job      Job     `json:"job"`
	State    State   `json:"state"`
	Attempts int     `json:"attempts"`
	Progress float64 `json:"progress"`
	Cost     float64 `json:"cost"`
	Error    string  `json:"error,omitempty"`
	Seq      uint64  `json:"seq"`
}

// walEvent is one WAL record. Lifecycle events ("submit", "update")
// carry the full post-transition record of the job they concern, which
// makes replay a plain overwrite — trivially idempotent under the
// storage layer's at-least-once crash windows. Budget events ("budget")
// carry the full ledger for the same reason: replay keeps the last one.
type walEvent struct {
	Op     string       `json:"op"` // "submit", "update" or "budget"
	Status walStatus    `json:"status,omitempty"`
	Budget *BudgetState `json:"budget,omitempty"`
}

// walSnapshot is the snapshot payload: every job's current record plus
// the budget ledger.
type walSnapshot struct {
	Jobs   []walStatus  `json:"jobs"`
	Budget *BudgetState `json:"budget,omitempty"`
}

func toWal(st Status) walStatus {
	return walStatus{
		Job:      st.Job,
		State:    st.State,
		Attempts: st.Attempts,
		Progress: st.Progress,
		Cost:     st.Cost,
		Error:    st.Error,
		Seq:      st.seq,
	}
}

func fromWal(ws walStatus) Status {
	return Status{
		Job:      ws.Job,
		State:    ws.State,
		Attempts: ws.Attempts,
		Progress: ws.Progress,
		Cost:     ws.Cost,
		Error:    ws.Error,
		seq:      ws.Seq,
	}
}

// OpenService opens (or creates) the durable service: it replays the
// snapshot and WAL under cfg.Dir, then requeues every job the previous
// process left Running — those are exactly the jobs a crash or
// shutdown interrupted mid-flight.
func OpenService(cfg ServiceConfig) (*Service, error) {
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 256
	}
	s := &Service{
		cfg:  cfg,
		m:    NewManager(),
		wake: make(chan struct{}, 1),
	}
	s.m.SetMaxAttempts(cfg.MaxAttempts)
	if cfg.Dir == "" {
		return s, nil
	}
	log, err := jobstore.Open(cfg.Dir)
	if err != nil {
		return nil, err
	}
	s.log = log
	if snap, _ := log.Snapshot(); snap != nil {
		var ws walSnapshot
		if err := json.Unmarshal(snap, &ws); err != nil {
			log.Close()
			return nil, fmt.Errorf("jobs: decoding snapshot: %w", err)
		}
		for _, st := range ws.Jobs {
			s.m.restore(fromWal(st))
		}
		if ws.Budget != nil {
			s.budget = ws.Budget.clone()
		}
	}
	for i, rec := range log.Entries() {
		var ev walEvent
		if err := json.Unmarshal(rec, &ev); err != nil {
			log.Close()
			return nil, fmt.Errorf("jobs: decoding WAL record %d: %w", i, err)
		}
		if ev.Op == "budget" {
			if ev.Budget != nil {
				s.budget = ev.Budget.clone()
			}
			continue
		}
		s.m.restore(fromWal(ev.Status))
	}
	// Resume: jobs the dead process had claimed go back to Pending so a
	// dispatcher can pick them up again.
	for _, st := range s.m.Statuses() {
		if st.State != StateRunning {
			continue
		}
		re, err := s.m.Requeue(st.Job.Name)
		if err != nil {
			log.Close()
			return nil, err
		}
		if err := s.append("update", re, true); err != nil {
			log.Close()
			return nil, err
		}
		s.resumed = append(s.resumed, st.Job.Name)
		cfg.Counters.Inc(metrics.CounterJobsResumed)
	}
	return s, nil
}

// Resumed lists the jobs OpenService moved from Running back to
// Pending — the unfinished work recovered from the log.
func (s *Service) Resumed() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.resumed...)
}

// Wake returns a channel that receives a token whenever new Pending
// work may exist; dispatcher workers select on it instead of busy
// polling.
func (s *Service) Wake() <-chan struct{} { return s.wake }

func (s *Service) notify() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// append commits one lifecycle event to the WAL. Callers hold s.mu.
// sync selects fsync-on-commit; progress events pass false — they are
// advisory (reset on requeue), and a later synced transition flushes
// them anyway.
func (s *Service) append(op string, st Status, sync bool) error {
	return s.appendEvent(walEvent{Op: op, Status: toWal(st)}, sync)
}

// appendEvent commits any WAL event (no-op when the service is
// volatile) and compacts when the policy says so — the single choke
// point for lifecycle and budget records alike, so every event kind
// counts toward and triggers compaction. Callers hold s.mu.
func (s *Service) appendEvent(ev walEvent, sync bool) error {
	if s.log == nil {
		return nil
	}
	rec, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("jobs: encoding event: %w", err)
	}
	if sync {
		_, err = s.log.Append(rec)
	} else {
		_, err = s.log.AppendNoSync(rec)
	}
	if err != nil {
		return err
	}
	s.cfg.Counters.Inc(metrics.CounterWALAppends)
	if s.cfg.SnapshotEvery > 0 && s.log.AppendsSinceSnapshot() >= s.cfg.SnapshotEvery {
		// The event above is already durably committed; compaction is
		// best-effort housekeeping and must not fail the transition (a
		// failed compaction simply retries on a later append).
		_ = s.compact()
	}
	return nil
}

// compact writes a full-state snapshot, truncating the WAL. Callers
// hold s.mu.
func (s *Service) compact() error {
	var snap walSnapshot
	for _, st := range s.m.Statuses() {
		snap.Jobs = append(snap.Jobs, toWal(st))
	}
	if s.budget.GlobalSpent > 0 || len(s.budget.Jobs) > 0 {
		b := s.budget.clone()
		snap.Budget = &b
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("jobs: encoding snapshot: %w", err)
	}
	if err := s.log.WriteSnapshot(payload); err != nil {
		return err
	}
	s.cfg.Counters.Inc(metrics.CounterWALSnapshots)
	return nil
}

// Submit registers the job (state Pending), commits it, and wakes the
// dispatcher pool. On a WAL failure the registration is rolled back so
// memory never acknowledges more than disk.
func (s *Service) Submit(job Job) (Plan, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	plan, err := s.m.Register(job)
	if err != nil {
		return Plan{}, err
	}
	st, _ := s.m.Status(job.Name)
	if err := s.append("submit", st, true); err != nil {
		s.m.Unregister(job.Name)
		return Plan{}, err
	}
	s.cfg.Counters.Inc(metrics.CounterJobsSubmitted)
	s.notify()
	return plan, nil
}

// Claim moves the oldest Pending job to Running and commits the
// transition. ok is false when nothing is pending.
func (s *Service) Claim() (Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.m.Claim()
	if !ok {
		return Status{}, false
	}
	if err := s.append("update", st, true); err != nil {
		// Disk refused the claim: revert it entirely (state and attempt
		// count) so no work runs unlogged and transient storage errors
		// don't eat the retry budget.
		s.m.unclaim(st.Job.Name)
		return Status{}, false
	}
	s.cfg.Counters.Inc(metrics.CounterJobsStarted)
	return st, true
}

// commitUpdate appends a post-transition record. If the log refuses
// the commit, the in-memory record is reverted to prev, preserving the
// invariant that memory never acknowledges more than disk.
func (s *Service) commitUpdate(prev, st Status, sync bool) error {
	if err := s.append("update", st, sync); err != nil {
		s.m.revert(prev)
		return err
	}
	return nil
}

// Complete commits a Running job's successful finish with the final
// cost of the finishing attempt.
func (s *Service) Complete(name string, cost float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, _ := s.m.Status(name)
	st, err := s.m.Complete(name, cost)
	if err != nil {
		return err
	}
	if err := s.commitUpdate(prev, st, true); err != nil {
		return err
	}
	s.cfg.Counters.Inc(metrics.CounterJobsCompleted)
	return nil
}

// Fail commits a Running job's failure: requeued (retry) while
// attempts remain and the cause is not permanent, terminal Failed
// otherwise.
func (s *Service) Fail(name string, cause error, cost float64) (requeued bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, _ := s.m.Status(name)
	st, requeued, err := s.m.Fail(name, cause, cost)
	if err != nil {
		return false, err
	}
	if err := s.commitUpdate(prev, st, true); err != nil {
		return false, err
	}
	if requeued {
		s.cfg.Counters.Inc(metrics.CounterJobsRetried)
		s.notify()
	} else {
		s.cfg.Counters.Inc(metrics.CounterJobsFailed)
	}
	return requeued, nil
}

// Cancel commits a Pending or Running job's cancellation. Cancelling a
// Running job here only records the state — interrupting the actual
// run is the dispatcher's half (per-job context cancellation).
func (s *Service) Cancel(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, _ := s.m.Status(name)
	st, err := s.m.Cancel(name)
	if err != nil {
		return err
	}
	if err := s.commitUpdate(prev, st, true); err != nil {
		return err
	}
	s.cfg.Counters.Inc(metrics.CounterJobsCancelled)
	return nil
}

// Park commits a Running job's move to Parked: budget admission refused
// the run. The job leaves the claim queue but stays resumable.
func (s *Service) Park(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, _ := s.m.Status(name)
	st, err := s.m.Park(name)
	if err != nil {
		return err
	}
	if err := s.commitUpdate(prev, st, true); err != nil {
		return err
	}
	s.cfg.Counters.Inc(metrics.CounterJobsParked)
	return nil
}

// Unpark commits a Parked job's return to Pending and wakes the pool —
// the resume path once budget frees up or the operator raises it.
func (s *Service) Unpark(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, _ := s.m.Status(name)
	st, err := s.m.Unpark(name)
	if err != nil {
		return err
	}
	if err := s.commitUpdate(prev, st, true); err != nil {
		return err
	}
	s.cfg.Counters.Inc(metrics.CounterJobsUnparked)
	s.notify()
	return nil
}

// ChargeBudget commits a crowd-spend charge against the job and the
// global ledger — the scheduler's persistence hook, so budget state
// survives WAL replay. Charges are facts about money already spent;
// they are recorded even for jobs the service has never seen.
func (s *Service) ChargeBudget(name string, amount float64) error {
	if amount <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.budget.clone()
	s.budget.GlobalSpent += amount
	if s.budget.Jobs == nil {
		s.budget.Jobs = make(map[string]float64)
	}
	s.budget.Jobs[name] += amount
	b := s.budget.clone()
	if err := s.appendEvent(walEvent{Op: "budget", Budget: &b}, true); err != nil {
		s.budget = prev
		return err
	}
	s.cfg.Counters.Inc(metrics.CounterBudgetCharges)
	return nil
}

// Budget returns a copy of the durable budget ledger.
func (s *Service) Budget() BudgetState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.budget.clone()
}

// VoidClaim commits the reversal of a claim whose runner never started
// (shutdown won the claim race): the job returns to Pending with the
// claim's attempt increment refunded.
func (s *Service) VoidClaim(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, _ := s.m.Status(name)
	st, err := s.m.voidClaim(name)
	if err != nil {
		return err
	}
	if err := s.commitUpdate(prev, st, true); err != nil {
		return err
	}
	s.notify()
	return nil
}

// Requeue commits a Running job's return to Pending (graceful shutdown
// of its worker) and wakes the pool.
func (s *Service) Requeue(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, _ := s.m.Status(name)
	st, err := s.m.Requeue(name)
	if err != nil {
		return err
	}
	if err := s.commitUpdate(prev, st, true); err != nil {
		return err
	}
	s.notify()
	return nil
}

// Progress commits a Running job's progress fraction and the cost
// charged so far in the current attempt.
func (s *Service) Progress(name string, progress, cost float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, _ := s.m.Status(name)
	st, err := s.m.SetProgress(name, progress, cost)
	if err != nil {
		return err
	}
	return s.commitUpdate(prev, st, false)
}

// Status returns a job's lifecycle record. It takes the commit lock,
// so a transition is never observable before its WAL commit succeeded
// (or was rolled back) — reads see only acknowledged state.
func (s *Service) Status(name string) (Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Status(name)
}

// Statuses lists every job's lifecycle record, sorted by name, under
// the same acknowledged-state guarantee as Status.
func (s *Service) Statuses() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Statuses()
}

// MaxAttempts reports the retry bound.
func (s *Service) MaxAttempts() int { return s.m.MaxAttempts() }

// Close releases the WAL. The in-memory view stays readable; further
// mutations fail on the closed log.
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	return s.log.Close()
}

// Durable reports whether the service is backed by a store.
func (s *Service) Durable() bool { return s.log != nil }
