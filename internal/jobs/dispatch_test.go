package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls until cond returns true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestDispatcherRunsJobsToCompletion(t *testing.T) {
	s := openTestService(t, "")
	defer s.Close()
	var runs atomic.Int64
	d, err := NewDispatcher(s, func(ctx context.Context, job Job, report func(float64, float64)) error {
		runs.Add(1)
		report(0.5, 1.0)
		report(1.0, 2.0)
		return nil
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	defer d.Stop()
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		if _, err := d.Submit(testJob(n)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all jobs done", func() bool {
		for _, st := range d.Statuses() {
			if st.State != StateDone {
				return false
			}
		}
		return len(d.Statuses()) == 5
	})
	if runs.Load() != 5 {
		t.Errorf("runner invoked %d times, want 5", runs.Load())
	}
	for _, st := range d.Statuses() {
		if st.Cost != 2.0 || st.Progress != 1 {
			t.Errorf("%s: cost %v progress %v", st.Job.Name, st.Cost, st.Progress)
		}
	}
}

func TestDispatcherRetriesThenFails(t *testing.T) {
	s := openTestService(t, "", func(c *ServiceConfig) { c.MaxAttempts = 2 })
	defer s.Close()
	var runs atomic.Int64
	d, _ := NewDispatcher(s, func(ctx context.Context, job Job, report func(float64, float64)) error {
		runs.Add(1)
		return errors.New("always broken")
	}, 1)
	d.Start()
	defer d.Stop()
	d.Submit(testJob("doomed"))
	waitFor(t, "job failed", func() bool {
		st, _ := d.Status("doomed")
		return st.State == StateFailed
	})
	if runs.Load() != 2 {
		t.Errorf("runner invoked %d times, want MaxAttempts=2", runs.Load())
	}
	st, _ := d.Status("doomed")
	if st.Error == "" {
		t.Error("failure cause not recorded")
	}
}

func TestDispatcherCancelMidFlight(t *testing.T) {
	s := openTestService(t, "")
	defer s.Close()
	started := make(chan struct{})
	var runs atomic.Int64
	d, _ := NewDispatcher(s, func(ctx context.Context, job Job, report func(float64, float64)) error {
		runs.Add(1)
		report(0.25, 0.5)
		close(started)
		<-ctx.Done() // block until cancelled
		return ctx.Err()
	}, 1)
	d.Start()
	defer d.Stop()
	d.Submit(testJob("victim"))
	<-started
	if err := d.Cancel("victim"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "cancelled state", func() bool {
		st, _ := d.Status("victim")
		return st.State == StateCancelled
	})
	if runs.Load() != 1 {
		t.Errorf("cancelled job re-ran: %d invocations", runs.Load())
	}
	st, _ := d.Status("victim")
	if st.Cost != 0.5 {
		t.Errorf("cost of cancelled run = %v, want the 0.5 charged before cancel", st.Cost)
	}
}

func TestDispatcherCancelPendingJob(t *testing.T) {
	s := openTestService(t, "")
	defer s.Close()
	blocker := make(chan struct{})
	d, _ := NewDispatcher(s, func(ctx context.Context, job Job, report func(float64, float64)) error {
		select {
		case <-blocker:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}, 1)
	d.Start()
	defer d.Stop()
	d.Submit(testJob("hog")) // occupies the only worker
	waitFor(t, "hog running", func() bool {
		st, _ := d.Status("hog")
		return st.State == StateRunning
	})
	d.Submit(testJob("queued"))
	if err := d.Cancel("queued"); err != nil {
		t.Fatal(err)
	}
	st, _ := d.Status("queued")
	if st.State != StateCancelled || st.Attempts != 0 {
		t.Errorf("pending cancel: %+v", st)
	}
	if err := d.Cancel("missing"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Cancel(unknown) = %v", err)
	}
	close(blocker)
	waitFor(t, "hog done", func() bool {
		st, _ := d.Status("hog")
		return st.State == StateDone
	})
	if err := d.Cancel("hog"); !errors.Is(err, ErrBadTransition) {
		t.Errorf("Cancel(done) = %v, want ErrBadTransition", err)
	}
}

// TestDispatcherStopRequeuesInFlight: a graceful Stop interrupts running
// jobs and hands them back as Pending, ready for the next incarnation.
func TestDispatcherStopRequeuesInFlight(t *testing.T) {
	dir := t.TempDir()
	s := openTestService(t, dir)
	started := make(chan struct{})
	d, _ := NewDispatcher(s, func(ctx context.Context, job Job, report func(float64, float64)) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	}, 1)
	d.Start()
	d.Submit(testJob("unfinished"))
	<-started
	d.Stop()
	st, _ := s.Status("unfinished")
	if st.State != StatePending {
		t.Fatalf("after Stop: state = %s, want pending", st.State)
	}
	s.Close()

	// And the requeue is durable: a fresh process sees Pending.
	s2 := openTestService(t, dir)
	defer s2.Close()
	st, _ = s2.Status("unfinished")
	if st.State != StatePending {
		t.Errorf("after restart: state = %s, want pending", st.State)
	}
}

// TestDispatcherCancelCommitsBeforeAck: the Cancelled state must be
// durable by the time Cancel returns, not only after the runner
// unwinds — a crash right after the acknowledgement must replay as
// cancelled.
func TestDispatcherCancelCommitsBeforeAck(t *testing.T) {
	dir := t.TempDir()
	s := openTestService(t, dir)
	started := make(chan struct{})
	release := make(chan struct{})
	d, _ := NewDispatcher(s, func(ctx context.Context, job Job, report func(float64, float64)) error {
		close(started)
		<-release // keep the runner alive past the Cancel call
		<-ctx.Done()
		return ctx.Err()
	}, 1)
	d.Start()
	defer d.Stop()
	defer close(release)
	d.Submit(testJob("victim"))
	<-started
	if err := d.Cancel("victim"); err != nil {
		t.Fatal(err)
	}
	// The runner is still blocked, yet the state is already Cancelled —
	// in memory and on disk.
	st, _ := s.Status("victim")
	if st.State != StateCancelled {
		t.Fatalf("state right after Cancel ack = %s, want cancelled", st.State)
	}
	s.Close() // release the store lock; the log is replayed as-is
	s2 := openTestService(t, dir)
	defer s2.Close()
	st, _ = s2.Status("victim")
	if st.State != StateCancelled {
		t.Errorf("replayed state = %s, want cancelled", st.State)
	}
	if got := s2.Resumed(); len(got) != 0 {
		t.Errorf("cancelled job resumed after crash: %v", got)
	}
}

// TestDispatcherPermanentFailureSkipsRetries: an ErrPermanent-wrapped
// failure goes straight to Failed without burning the retry budget.
func TestDispatcherPermanentFailureSkipsRetries(t *testing.T) {
	s := openTestService(t, "", func(c *ServiceConfig) { c.MaxAttempts = 3 })
	defer s.Close()
	var runs atomic.Int64
	d, _ := NewDispatcher(s, func(ctx context.Context, job Job, report func(float64, float64)) error {
		runs.Add(1)
		return fmt.Errorf("%w: nothing matched", ErrPermanent)
	}, 1)
	d.Start()
	defer d.Stop()
	d.Submit(testJob("hopeless"))
	waitFor(t, "terminal failure", func() bool {
		st, _ := d.Status("hopeless")
		return st.State == StateFailed
	})
	if runs.Load() != 1 {
		t.Errorf("permanent failure ran %d times, want 1", runs.Load())
	}
}

// TestDispatcherConcurrentSubmitters hammers the pool from several
// goroutines; meant for -race.
func TestDispatcherConcurrentSubmitters(t *testing.T) {
	s := openTestService(t, "")
	defer s.Close()
	d, _ := NewDispatcher(s, func(ctx context.Context, job Job, report func(float64, float64)) error {
		report(1, 0.1)
		return nil
	}, 4)
	d.Start()
	defer d.Stop()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				name := string(rune('a'+g)) + "-" + string(rune('0'+i))
				if _, err := d.Submit(testJob(name)); err != nil {
					t.Errorf("Submit(%s): %v", name, err)
				}
			}
		}(g)
	}
	wg.Wait()
	waitFor(t, "40 jobs done", func() bool {
		done := 0
		for _, st := range d.Statuses() {
			if st.State == StateDone {
				done++
			}
		}
		return done == 40
	})
}
