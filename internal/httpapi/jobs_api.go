// Write API for the durable job service: submit, inspect and cancel
// analytics jobs over HTTP. This turns the read-only Figure 4 dashboard
// into the front door of Figure 2's job manager.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"

	"cdas/internal/jobs"
	"cdas/internal/metrics"
)

// JobController is the slice of the job service the API needs.
// *jobs.Dispatcher satisfies it.
type JobController interface {
	Submit(jobs.Job) (jobs.Plan, error)
	Status(name string) (jobs.Status, bool)
	Statuses() []jobs.Status
	Cancel(name string) error
	Unpark(name string) error
}

// SetJobs attaches the job service behind the write API. Call before
// serving; a Server without a controller answers job routes with 503.
func (s *Server) SetJobs(c JobController) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobsCtl = c
}

// SetCounters attaches an operational-counter registry served at
// GET /api/metrics.
func (s *Server) SetCounters(r *metrics.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters = r
}

func (s *Server) jobs() JobController {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.jobsCtl
}

// JobSubmission is the POST /jobs request body: the analytics query of
// Definition 1 plus a name and application kind.
type JobSubmission struct {
	Name string `json:"name"`
	// Kind selects the plan template; default "tsa".
	Kind             string   `json:"kind"`
	Keywords         []string `json:"keywords"`
	RequiredAccuracy float64  `json:"required_accuracy"`
	Domain           []string `json:"domain"`
	// Start is the query timestamp t; zero means "now".
	Start time.Time `json:"start"`
	// Window is the query window w as a Go duration string ("24h").
	Window string `json:"window"`
	// Priority orders budget admission (higher first; default 0).
	Priority int `json:"priority"`
	// Budget caps the job's crowd spend (0 = unlimited).
	Budget float64 `json:"budget"`
}

// Job converts the submission to a jobs.Job (validation happens at
// registration).
func (js JobSubmission) Job() (jobs.Job, error) {
	window, err := time.ParseDuration(js.Window)
	if err != nil {
		return jobs.Job{}, fmt.Errorf("bad window %q: %w", js.Window, err)
	}
	kind := jobs.Kind(js.Kind)
	if js.Kind == "" {
		kind = jobs.KindTSA
	}
	start := js.Start
	if start.IsZero() {
		start = time.Now().UTC()
	}
	return jobs.Job{
		Name:     js.Name,
		Kind:     kind,
		Priority: js.Priority,
		Budget:   js.Budget,
		Query: jobs.Query{
			Keywords:         js.Keywords,
			RequiredAccuracy: js.RequiredAccuracy,
			Domain:           js.Domain,
			Start:            start,
			Window:           window,
		},
	}, nil
}

// JobStatus is the wire form of a job's lifecycle record, with the live
// query results attached when the run has published any.
type JobStatus struct {
	Name     string      `json:"name"`
	Kind     string      `json:"kind"`
	Keywords []string    `json:"keywords"`
	State    jobs.State  `json:"state"`
	Attempts int         `json:"attempts"`
	Progress float64     `json:"progress"`
	Cost     float64     `json:"cost"`
	Priority int         `json:"priority,omitempty"`
	Budget   float64     `json:"budget,omitempty"`
	Error    string      `json:"error,omitempty"`
	Results  *QueryState `json:"results,omitempty"`
}

func (s *Server) jobStatus(st jobs.Status) JobStatus {
	out := JobStatus{
		Name:     st.Job.Name,
		Kind:     string(st.Job.Kind),
		Keywords: st.Job.Query.Keywords,
		State:    st.State,
		Attempts: st.Attempts,
		Progress: st.Progress,
		Cost:     st.Cost,
		Priority: st.Job.Priority,
		Budget:   st.Job.Budget,
		Error:    st.Error,
	}
	if qs, ok := s.Get(st.Job.Name); ok {
		out.Results = &qs
	}
	return out
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	ctl := s.jobs()
	if ctl == nil {
		http.Error(w, "no job service attached", http.StatusServiceUnavailable)
		return
	}
	var sub JobSubmission
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sub); err != nil {
		http.Error(w, fmt.Sprintf("bad submission: %v", err), http.StatusBadRequest)
		return
	}
	job, err := sub.Job()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := checkJobName(job.Name); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if _, err := ctl.Submit(job); err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, jobs.ErrDuplicateJob) {
			code = http.StatusConflict
		}
		http.Error(w, err.Error(), code)
		return
	}
	st, _ := ctl.Status(job.Name)
	// Headers freeze at WriteHeader; Content-Type must be set first.
	w.Header().Set("Location", "/jobs/"+url.PathEscape(job.Name))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, s.jobStatus(st))
}

// checkJobName rejects names that cannot round-trip through the
// /jobs/{name} path: a ServeMux wildcard spans a single segment, so a
// job named with a "/" (or a dot segment) could be created but never
// fetched or cancelled over HTTP.
func checkJobName(name string) error {
	if strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return fmt.Errorf("job name %q must not contain path separators", name)
	}
	for _, r := range name {
		if r < 0x20 || r == 0x7f {
			return fmt.Errorf("job name %q must not contain control characters", name)
		}
	}
	return nil
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	ctl := s.jobs()
	if ctl == nil {
		http.Error(w, "no job service attached", http.StatusServiceUnavailable)
		return
	}
	sts := ctl.Statuses()
	out := make([]JobStatus, 0, len(sts))
	for _, st := range sts {
		out = append(out, s.jobStatus(st))
	}
	writeJSON(w, out)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	ctl := s.jobs()
	if ctl == nil {
		http.Error(w, "no job service attached", http.StatusServiceUnavailable)
		return
	}
	name := r.PathValue("name")
	st, ok := ctl.Status(name)
	if !ok {
		http.Error(w, fmt.Sprintf("no such job %q", name), http.StatusNotFound)
		return
	}
	writeJSON(w, s.jobStatus(st))
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	ctl := s.jobs()
	if ctl == nil {
		http.Error(w, "no job service attached", http.StatusServiceUnavailable)
		return
	}
	name := r.PathValue("name")
	if err := ctl.Cancel(name); err != nil {
		switch {
		case errors.Is(err, jobs.ErrUnknownJob):
			http.Error(w, err.Error(), http.StatusNotFound)
		case errors.Is(err, jobs.ErrBadTransition):
			http.Error(w, err.Error(), http.StatusConflict)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	st, _ := ctl.Status(name)
	writeJSON(w, s.jobStatus(st))
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	reg := s.counters
	s.mu.RUnlock()
	writeJSON(w, reg.Snapshot())
}
