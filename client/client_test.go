package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cdas/api"
	"cdas/internal/httpapi"
	"cdas/internal/jobs"
	"cdas/internal/metrics"
	"cdas/internal/scheduler"
)

// testBackend assembles a real httpapi server over a real job service,
// with a runner that blocks until its per-job gate opens.
type testBackend struct {
	srv   *httpapi.Server
	ts    *httptest.Server
	mu    sync.Mutex
	gates map[string]chan struct{}
}

type fakeSched struct{ st scheduler.State }

func (f fakeSched) State() scheduler.State { return f.st }

func newTestBackend(t *testing.T) (*testBackend, *Client) {
	t.Helper()
	svc, err := jobs.OpenService(jobs.ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	b := &testBackend{gates: make(map[string]chan struct{})}
	disp, err := jobs.NewDispatcher(svc, func(ctx context.Context, job jobs.Job, report func(float64, float64)) error {
		report(0.5, 1.25)
		select {
		case <-b.gate(job.Name):
			report(1, 2.5)
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	disp.Start()
	t.Cleanup(disp.Stop)
	b.srv = httpapi.NewServer()
	b.srv.SetJobs(disp)
	b.srv.SetCounters(metrics.NewRegistry())
	b.srv.SetScheduler(fakeSched{st: scheduler.State{Generations: 7, DedupEnabled: true}})
	b.ts = httptest.NewServer(b.srv.Handler())
	t.Cleanup(b.ts.Close)
	return b, New(b.ts.URL, WithHTTPClient(b.ts.Client()))
}

func (b *testBackend) gate(name string) chan struct{} {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.gates[name]; !ok {
		b.gates[name] = make(chan struct{})
	}
	return b.gates[name]
}

func submission(name string) api.JobSubmission {
	return api.JobSubmission{
		Name:             name,
		Keywords:         []string{"iPhone4S"},
		RequiredAccuracy: 0.9,
		Domain:           []string{"positive", "neutral", "negative"},
		Window:           "24h",
	}
}

func waitJobState(t *testing.T, c *Client, name string, want api.JobState) api.JobStatus {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(5 * time.Second)
	var last api.JobStatus
	for time.Now().Before(deadline) {
		st, err := c.Job(ctx, name)
		if err == nil {
			last = st
			if st.State == want {
				return st
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %q never reached %s (last %+v)", name, want, last)
	return api.JobStatus{}
}

// TestClientJobLifecycle drives submit → get → list → iterate → cancel
// through the SDK against a live server.
func TestClientJobLifecycle(t *testing.T) {
	b, c := newTestBackend(t)
	ctx := context.Background()

	names := []string{"alpha", "beta", "gamma"}
	for _, n := range names {
		st, err := c.SubmitJob(ctx, submission(n))
		if err != nil {
			t.Fatalf("SubmitJob(%s): %v", n, err)
		}
		if st.Name != n || st.Kind != "tsa" {
			t.Errorf("submitted %s came back as %+v", n, st)
		}
	}

	// Typed error envelopes: duplicate submit conflicts, unknown 404s.
	var apiErr *api.Error
	if _, err := c.SubmitJob(ctx, submission("alpha")); !errors.As(err, &apiErr) || apiErr.Code != api.CodeConflict {
		t.Errorf("duplicate SubmitJob error = %v, want conflict envelope", err)
	}
	if _, err := c.Job(ctx, "nope"); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Errorf("Job(nope) error = %v, want 404 envelope", err)
	}

	close(b.gate("alpha"))
	waitJobState(t, c, "alpha", api.JobDone)

	// One-page listing and the state filter.
	page, err := c.ListJobs(ctx, ListJobsOptions{State: api.JobDone})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 1 || page.Jobs[0].Name != "alpha" {
		t.Errorf("done filter = %+v", page.Jobs)
	}

	// The iterator walks every page (limit 1 forces three pages).
	var walked []string
	for st, err := range c.Jobs(ctx, ListJobsOptions{Limit: 1}) {
		if err != nil {
			t.Fatal(err)
		}
		walked = append(walked, st.Name)
	}
	if strings.Join(walked, ",") != "alpha,beta,gamma" {
		t.Errorf("iterator walked %v", walked)
	}

	// Early break doesn't hang or error.
	for st, err := range c.Jobs(ctx, ListJobsOptions{Limit: 1}) {
		if err != nil {
			t.Fatal(err)
		}
		if st.Name == "alpha" {
			break
		}
	}

	st, err := c.CancelJob(ctx, "beta")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.JobCancelled && st.State != api.JobRunning {
		t.Errorf("cancel returned state %s", st.State)
	}
	waitJobState(t, c, "beta", api.JobCancelled)
	if _, err := c.CancelJob(ctx, "alpha"); !errors.As(err, &apiErr) || apiErr.Code != api.CodeConflict {
		t.Errorf("CancelJob(done) error = %v, want conflict envelope", err)
	}

	close(b.gate("gamma"))
	waitJobState(t, c, "gamma", api.JobDone)
}

// TestClientReadEndpoints covers health, metrics, scheduler and query
// reads.
func TestClientReadEndpoints(t *testing.T) {
	b, c := newTestBackend(t)
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" || h.Version != api.Version {
		t.Errorf("Health = %+v, %v", h, err)
	}
	if _, err := c.Metrics(ctx); err != nil {
		t.Errorf("Metrics: %v", err)
	}
	ss, err := c.SchedulerState(ctx)
	if err != nil || ss.Generations != 7 || !ss.DedupEnabled {
		t.Errorf("SchedulerState = %+v, %v", ss, err)
	}

	b.srv.Update(api.QueryState{Name: "panda", Domain: []string{"a", "b"}, Progress: 0.5})
	qs, err := c.Queries(ctx)
	if err != nil || len(qs) != 1 || qs[0].Name != "panda" {
		t.Errorf("Queries = %+v, %v", qs, err)
	}
	q, err := c.Query(ctx, "panda")
	if err != nil || q.Progress != 0.5 {
		t.Errorf("Query = %+v, %v", q, err)
	}
	var apiErr *api.Error
	if _, err := c.Query(ctx, "nope"); !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound {
		t.Errorf("Query(nope) error = %v", err)
	}

	// Aggregator discovery: the registry with the default marked.
	al, err := c.Aggregators(ctx)
	if err != nil {
		t.Fatalf("Aggregators: %v", err)
	}
	if al.Default != "cdas" || len(al.Aggregators) < 5 {
		t.Errorf("Aggregators = %+v", al)
	}
	seen := map[string]bool{}
	for _, info := range al.Aggregators {
		seen[info.Name] = true
		if info.Description == "" || info.ResponseType == "" {
			t.Errorf("aggregator %s missing description or response type: %+v", info.Name, info)
		}
	}
	for _, want := range []string{"cdas", "majority", "wawa", "zbs", "dawid-skene"} {
		if !seen[want] {
			t.Errorf("Aggregators missing %q: %v", want, al.Aggregators)
		}
	}
}

// TestWatchQuery streams revisions through the SDK channel: replay
// first, then updates, closed after done.
func TestWatchQuery(t *testing.T) {
	b, c := newTestBackend(t)
	ctx := context.Background()

	domain := []string{"pos", "neg"}
	b.srv.Update(api.QueryState{Name: "live", Domain: domain})
	events, err := c.WatchQuery(ctx, "live")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := 1; i <= 3; i++ {
			b.srv.Update(api.QueryState{Name: "live", Domain: domain, Items: i * 10, Progress: float64(i) / 4})
		}
		b.srv.Update(api.QueryState{Name: "live", Domain: domain, Items: 40, Progress: 1, Done: true})
	}()
	var got []QueryEvent
	for ev := range events {
		if ev.Err != nil {
			t.Fatalf("watch error: %v", ev.Err)
		}
		got = append(got, ev)
	}
	if len(got) < 2 {
		t.Fatalf("received %d events, want >= 2", len(got))
	}
	if got[0].ID != 1 || got[0].Type != api.EventState {
		t.Errorf("first event = %+v, want replay of rev 1", got[0])
	}
	last := got[len(got)-1]
	if last.Type != api.EventDone || !last.State.Done || last.State.Items != 40 {
		t.Errorf("terminal event = %+v", last)
	}
	for i := 1; i < len(got); i++ {
		if got[i].ID <= got[i-1].ID {
			t.Errorf("ids not increasing: %d after %d", got[i].ID, got[i-1].ID)
		}
	}

	// Unknown query: the watch call itself fails with the envelope.
	var apiErr *api.Error
	if _, err := c.WatchQuery(ctx, "ghost"); !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound {
		t.Errorf("WatchQuery(ghost) = %v, want not_found envelope", err)
	}
}

// TestWatchQueryCancel: cancelling the context ends the channel without
// a terminal event.
func TestWatchQueryCancel(t *testing.T) {
	b, c := newTestBackend(t)
	b.srv.Update(api.QueryState{Name: "live", Domain: []string{"a", "b"}})
	ctx, cancel := context.WithCancel(context.Background())
	events, err := c.WatchQuery(ctx, "live")
	if err != nil {
		t.Fatal(err)
	}
	<-events // replay
	cancel()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-events:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("watch channel never closed after cancel")
		}
	}
}

// TestParseSSE covers framing details the live tests can't pin down:
// comments, multi-line data, defaulted event type, trailing frames.
func TestParseSSE(t *testing.T) {
	stream := ": heartbeat\n" +
		"id: 5\n" +
		"data: {\"name\":\"q\",\"progress\":0.5}\n" +
		"\n" +
		"id: 6\n" +
		"event: done\n" +
		"data: {\"name\":\"q\",\n" +
		"data: \"done\":true}\n" +
		"\n"
	var got []QueryEvent
	err := parseSSE(strings.NewReader(stream), func(ev QueryEvent) bool {
		got = append(got, ev)
		return ev.Type != api.EventDone
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d events, want 2", len(got))
	}
	if got[0].ID != 5 || got[0].Type != api.EventState || got[0].State.Progress != 0.5 {
		t.Errorf("event 0 = %+v (type must default to state)", got[0])
	}
	if got[1].ID != 6 || got[1].Type != api.EventDone || !got[1].State.Done {
		t.Errorf("event 1 = %+v (multi-line data must join)", got[1])
	}

	// A trailing frame without the final blank line still flushes.
	got = nil
	err = parseSSE(strings.NewReader("id: 1\ndata: {\"name\":\"q\"}"), func(ev QueryEvent) bool {
		got = append(got, ev)
		return true
	})
	if err != nil || len(got) != 1 || got[0].ID != 1 {
		t.Errorf("trailing frame: events %+v, err %v", got, err)
	}

	// Garbage data surfaces a decode error.
	if err := parseSSE(strings.NewReader("data: {nope\n\n"), func(QueryEvent) bool { return true }); err == nil {
		t.Error("bad data did not error")
	}
}

// TestDecodeErrorFallback: a non-envelope body (proxy error page)
// synthesizes a typed error from the status line.
func TestDecodeErrorFallback(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad gateway, sorry", http.StatusBadGateway)
	}))
	defer ts.Close()
	c := New(ts.URL)
	_, err := c.Job(context.Background(), "x")
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("error = %v, want *api.Error", err)
	}
	if apiErr.Status != http.StatusBadGateway || apiErr.Code != "http_502" {
		t.Errorf("synthesized error = %+v", apiErr)
	}
	if !strings.Contains(apiErr.Detail, "bad gateway") {
		t.Errorf("detail lost the body: %+v", apiErr)
	}
}

func TestJobPathEscaping(t *testing.T) {
	if got := jobPath("spaced name"); got != "/v1/jobs/spaced%20name" {
		t.Errorf("jobPath = %q", got)
	}
}

// TestClientUnpark drives park → unpark → done through the SDK.
func TestClientUnpark(t *testing.T) {
	svc, err := jobs.OpenService(jobs.ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	var overBudget atomic.Bool
	overBudget.Store(true)
	disp, err := jobs.NewDispatcher(svc, func(ctx context.Context, job jobs.Job, report func(float64, float64)) error {
		if overBudget.Load() {
			return jobs.ErrParked
		}
		report(1, 0.5)
		return nil
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	disp.Start()
	defer disp.Stop()
	srv := httpapi.NewServer()
	srv.SetJobs(disp)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := New(ts.URL)
	ctx := context.Background()

	if _, err := c.SubmitJob(ctx, submission("strapped")); err != nil {
		t.Fatal(err)
	}
	waitJobState(t, c, "strapped", api.JobParked)
	overBudget.Store(false)
	st, err := c.UnparkJob(ctx, "strapped")
	if err != nil {
		t.Fatalf("UnparkJob: %v", err)
	}
	if st.Name != "strapped" {
		t.Errorf("unpark returned %+v", st)
	}
	waitJobState(t, c, "strapped", api.JobDone)

	var apiErr *api.Error
	if _, err := c.UnparkJob(ctx, "strapped"); !errors.As(err, &apiErr) || apiErr.Code != api.CodeConflict {
		t.Errorf("UnparkJob(done) = %v, want conflict envelope", err)
	}
}

// TestWatchQueryLastEventID: presenting the current revision suppresses
// the replay; the next Update still arrives.
func TestWatchQueryLastEventID(t *testing.T) {
	b, c := newTestBackend(t)
	ctx := context.Background()
	b.srv.Update(api.QueryState{Name: "live", Domain: []string{"a", "b"}, Progress: 0.25})
	events, err := c.WatchQuery(ctx, "live", WatchOptions{LastEventID: 1})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		t.Fatalf("replay arrived despite LastEventID: %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}
	b.srv.Update(api.QueryState{Name: "live", Domain: []string{"a", "b"}, Progress: 1, Done: true})
	ev, ok := <-events
	if !ok || ev.Err != nil || ev.ID != 2 || ev.Type != api.EventDone {
		t.Errorf("post-suppression event = %+v (ok=%v)", ev, ok)
	}
}

// TestJobsIteratorSurfacesTransportError: a dead server yields exactly
// one error element.
func TestJobsIteratorSurfacesTransportError(t *testing.T) {
	c := New("http://127.0.0.1:9") // nothing listens on the discard port
	n, sawErr := 0, false
	for _, err := range c.Jobs(context.Background(), ListJobsOptions{}) {
		n++
		if err != nil {
			sawErr = true
		}
	}
	if n != 1 || !sawErr {
		t.Errorf("dead-server iterator yielded %d elements (err=%v)", n, sawErr)
	}
	if _, err := c.Health(context.Background()); err == nil {
		t.Error("Health against a dead server did not error")
	}
	if _, err := c.WatchQuery(context.Background(), "x"); err == nil {
		t.Error("WatchQuery against a dead server did not error")
	}
}
