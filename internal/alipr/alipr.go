// Package alipr implements the automatic image annotation baseline of the
// paper's Figure 17. The real comparator, ALIPR (Li & Wang, "Real-time
// computerized annotation of pictures"), is a closed system built on 2-D
// hidden Markov models over wavelet features; this substitute keeps the
// part that matters for the reproduction — an automatic annotator that
// genuinely predicts tags from image features and tops out at low
// accuracy (the paper measures ALIPR at 12.6–30% per subject) — using
// k-means clustering with tag propagation:
//
//  1. training images are clustered in feature space (k-means++ seeding,
//     Lloyd iterations);
//  2. each cluster is labelled with the tag distribution of its members;
//  3. a query image is annotated with the top tags of its nearest
//     centroid.
//
// Like ALIPR, the annotator predicts from its own global tag vocabulary,
// not from the query's candidate set.
package alipr

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"cdas/internal/randx"
)

// Options tunes training. Zero fields take the documented defaults.
type Options struct {
	K          int    // number of clusters; default 16
	Iterations int    // Lloyd iterations; default 25
	Seed       uint64 // seeding determinism; default 1
}

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 16
	}
	if o.Iterations == 0 {
		o.Iterations = 25
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Annotator is a trained clustering annotator.
type Annotator struct {
	centroids [][]float64
	// tagRank[c] lists cluster c's tags most-frequent-first.
	tagRank [][]string
}

// Train fits the annotator on parallel feature/tag slices.
func Train(features [][]float64, tags []string, opts Options) (*Annotator, error) {
	if len(features) == 0 {
		return nil, errors.New("alipr: no training images")
	}
	if len(features) != len(tags) {
		return nil, fmt.Errorf("alipr: %d feature vectors but %d tags", len(features), len(tags))
	}
	dim := len(features[0])
	for i, f := range features {
		if len(f) != dim {
			return nil, fmt.Errorf("alipr: feature vector %d has dim %d, want %d", i, len(f), dim)
		}
	}
	opts = opts.withDefaults()
	k := opts.K
	if k > len(features) {
		k = len(features)
	}

	rng := randx.New(opts.Seed)
	centroids := kmeansPlusPlusInit(rng, features, k)
	assign := make([]int, len(features))
	for iter := 0; iter < opts.Iterations; iter++ {
		changed := false
		for i, f := range features {
			c := nearest(centroids, f)
			if c != assign[i] {
				assign[i] = c
				changed = true
			}
		}
		// Recompute centroids; empty clusters keep their position.
		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, f := range features {
			c := assign[i]
			counts[c]++
			for d, v := range f {
				sums[c][d] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue
			}
			for d := range centroids[c] {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
		if !changed && iter > 0 {
			break
		}
	}

	// Tag propagation: rank each cluster's member tags by frequency.
	tagCounts := make([]map[string]int, k)
	for c := range tagCounts {
		tagCounts[c] = make(map[string]int)
	}
	for i, c := range assign {
		tagCounts[c][tags[i]]++
	}
	tagRank := make([][]string, k)
	for c, counts := range tagCounts {
		type tc struct {
			tag string
			n   int
		}
		ts := make([]tc, 0, len(counts))
		for t, n := range counts {
			ts = append(ts, tc{t, n})
		}
		sort.Slice(ts, func(i, j int) bool {
			if ts[i].n != ts[j].n {
				return ts[i].n > ts[j].n
			}
			return ts[i].tag < ts[j].tag
		})
		rank := make([]string, len(ts))
		for i, t := range ts {
			rank[i] = t.tag
		}
		tagRank[c] = rank
	}
	return &Annotator{centroids: centroids, tagRank: tagRank}, nil
}

// kmeansPlusPlusInit seeds centroids with the k-means++ D² weighting.
func kmeansPlusPlusInit(rng *randx.Source, features [][]float64, k int) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := features[rng.IntN(len(features))]
	centroids = append(centroids, append([]float64(nil), first...))
	d2 := make([]float64, len(features))
	for len(centroids) < k {
		total := 0.0
		for i, f := range features {
			d2[i] = sqDist(f, centroids[nearest(centroids, f)])
			total += d2[i]
		}
		var next []float64
		if total == 0 {
			next = features[rng.IntN(len(features))]
		} else {
			next = features[rng.WeightedChoice(d2)]
		}
		centroids = append(centroids, append([]float64(nil), next...))
	}
	return centroids
}

func nearest(centroids [][]float64, f []float64) int {
	best, bestD := 0, math.Inf(1)
	for c, cen := range centroids {
		if d := sqDist(f, cen); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for d := range a {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return s
}

// Annotate returns the annotator's best tag for the feature vector, or ""
// if its cluster saw no training tags (cannot happen after Train).
func (a *Annotator) Annotate(features []float64) string {
	tags := a.AnnotateTopK(features, 1)
	if len(tags) == 0 {
		return ""
	}
	return tags[0]
}

// AnnotateTopK returns up to k tags for the feature vector, ranked by the
// nearest cluster's tag frequency.
func (a *Annotator) AnnotateTopK(features []float64, k int) []string {
	c := nearest(a.centroids, features)
	rank := a.tagRank[c]
	if k > len(rank) {
		k = len(rank)
	}
	return append([]string(nil), rank[:k]...)
}

// Clusters reports the number of trained clusters.
func (a *Annotator) Clusters() int { return len(a.centroids) }
