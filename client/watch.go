// WatchQuery: the SDK side of GET /v1/queries/{name}/events. The SSE
// stream is parsed into QueryEvents delivered on a channel, so callers
// consume the paper's Figure 4 live view with a plain range loop.
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"cdas/api"
)

// QueryEvent is one delivery from WatchQuery's channel.
type QueryEvent struct {
	// ID is the state's revision number (the SSE event id).
	ID int64
	// Type is api.EventState for intermediate revisions and
	// api.EventDone for the terminal one.
	Type string
	// State is the query state carried by the event.
	State api.QueryState
	// Err, when non-nil, reports why the watch ended early (transport
	// drop, decode failure, cancelled context). It is always the last
	// event on the channel.
	Err error
}

// WatchOptions tunes WatchQuery.
type WatchOptions struct {
	// LastEventID resumes a watch: the server suppresses the initial
	// replay when the client proves it has already seen this revision.
	LastEventID int64
}

// WatchQuery subscribes to a query's SSE stream and returns a channel
// of its state revisions. The channel closes after the terminal "done"
// event, after a delivery with Err set, or once ctx is cancelled; the
// caller should consume until close. The first delivery is the current
// state (unless suppressed via WatchOptions.LastEventID), so a watcher
// renders immediately instead of waiting for the next answer batch.
func (c *Client) WatchQuery(ctx context.Context, name string, opts ...WatchOptions) (<-chan QueryEvent, error) {
	path := "/v1/queries/" + url.PathEscape(name) + "/events"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+path, nil)
	if err != nil {
		return nil, fmt.Errorf("client: building watch request: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("Cache-Control", "no-cache")
	for _, o := range opts {
		if o.LastEventID > 0 {
			req.Header.Set("Last-Event-ID", strconv.FormatInt(o.LastEventID, 10))
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: watch %s: %w", name, err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		resp.Body.Close()
		return nil, fmt.Errorf("client: watch %s: unexpected Content-Type %q", name, ct)
	}

	out := make(chan QueryEvent)
	go func() {
		defer close(out)
		defer resp.Body.Close()
		err := parseSSE(resp.Body, func(ev QueryEvent) bool {
			select {
			case out <- ev:
			case <-ctx.Done():
				return false
			}
			return ev.Type != api.EventDone
		})
		if err != nil && ctx.Err() == nil {
			select {
			case out <- QueryEvent{Err: err}:
			case <-ctx.Done():
			}
		}
	}()
	return out, nil
}

// sseFrame is one raw text/event-stream event: id, event type and the
// undecoded data payload. The typed watchers (WatchQuery, WatchStream)
// decode data into their own DTOs.
type sseFrame struct {
	id   int64
	kind string
	data string
}

// parseSSE reads QueryState frames, invoking emit per complete event
// until emit returns false, the stream ends, or a frame fails to
// decode. A clean EOF (server closed after "done") returns nil.
func parseSSE(r io.Reader, emit func(QueryEvent) bool) error {
	return parseSSEFrames(r, func(fr sseFrame) (bool, error) {
		ev := QueryEvent{ID: fr.id, Type: fr.kind}
		if ev.Type == "" {
			ev.Type = api.EventState
		}
		if err := json.Unmarshal([]byte(fr.data), &ev.State); err != nil {
			return false, fmt.Errorf("client: decoding SSE data: %w", err)
		}
		return emit(ev), nil
	})
}

// parseSSEFrames reads raw text/event-stream frames, invoking emit per
// complete non-empty frame until emit returns false (or errors), the
// stream ends, or a line fails to scan. A clean EOF returns nil.
func parseSSEFrames(r io.Reader, emit func(sseFrame) (bool, error)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var id int64
	var kind, data string
	flush := func() (bool, error) {
		if data == "" {
			return true, nil // comment-only or empty frame: keep-alive
		}
		keep, err := emit(sseFrame{id: id, kind: kind, data: data})
		kind, data = "", ""
		return keep, err
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			keep, err := flush()
			if err != nil {
				return err
			}
			if !keep {
				return nil
			}
		case strings.HasPrefix(line, ":"):
			// comment / heartbeat
		case strings.HasPrefix(line, "id:"):
			v, err := strconv.ParseInt(strings.TrimSpace(line[3:]), 10, 64)
			if err == nil {
				id = v
			}
		case strings.HasPrefix(line, "event:"):
			kind = strings.TrimSpace(line[6:])
		case strings.HasPrefix(line, "data:"):
			if data != "" {
				data += "\n"
			}
			data += strings.TrimPrefix(line[5:], " ")
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("client: reading SSE stream: %w", err)
	}
	// Trailing frame without a blank line (server closed right after).
	_, err := flush()
	return err
}
