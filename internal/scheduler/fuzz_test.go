package scheduler

import (
	"strings"
	"testing"

	"cdas/internal/crowd"
)

// FuzzQuestionKey checks the dedup key's two safety properties on
// arbitrary inputs:
//
//  1. canonically-equal questions never produce distinct keys — case,
//     edge whitespace, domain order, question ID and simulation-only
//     fields must not affect identity;
//  2. questions over distinct canonical domains never collide — the
//     domain hash is a dedicated key prefix, so cross-domain reuse of a
//     cached answer is structurally impossible.
//
// The committed seed corpus (testdata/fuzz/FuzzQuestionKey) pins the
// known-tricky shapes: separator injection, unicode case folding,
// whitespace-only distinctions, and domains differing only by a dup.
func FuzzQuestionKey(f *testing.F) {
	f.Add("Is this tweet positive about Thor?", "Positive,Neutral,Negative", "Mixed", 1)
	f.Add("a  b", "yes,no", "maybe", 2)
	f.Add("", "x,y", "z", 0)
	f.Add("pos,neu", "a,b", "a,b", 3) // commas in text vs domain separators
	f.Add("HELLO\tWORLD", "Yes, No ", "NO", 5)
	f.Fuzz(func(t *testing.T, text, domainCSV, extra string, rot int) {
		domain := strings.Split(domainCSV, ",")
		base := crowd.Question{ID: "base/0", Text: text, Domain: domain}
		key := QuestionKey(base)

		// Property 1a: key is domain-prefixed and well-formed.
		if !strings.HasPrefix(key, DomainKey(domain)+"/") {
			t.Fatalf("key %q lacks its domain prefix", key)
		}

		// Property 1b: canonical perturbations preserve the key.
		perturbed := crowd.Question{
			ID:         "other/1",
			Text:       "  " + strings.ToUpper(text) + "\t",
			Domain:     rotate(domain, rot),
			Truth:      extra,
			Difficulty: 0.5,
			Trap:       extra,
		}
		if got := QuestionKey(perturbed); got != key {
			t.Errorf("canonically-equal questions got distinct keys:\n%q\n%q", key, got)
		}

		// Property 2: a canonically-distinct domain never shares a key
		// (nor a domain group) with the base question.
		other := append(rotate(domain, rot), extra)
		if sameCanonicalDomain(domain, other) {
			return
		}
		if DomainKey(other) == DomainKey(domain) {
			t.Errorf("distinct canonical domains %v and %v share a domain key", domain, other)
		}
		if got := QuestionKey(crowd.Question{Text: text, Domain: other}); got == key {
			t.Errorf("distinct domains collided on full key %q", key)
		}
	})
}

// rotate returns a copy of xs rotated by n (canonical-set preserving).
func rotate(xs []string, n int) []string {
	out := make([]string, 0, len(xs))
	if len(xs) == 0 {
		return out
	}
	if n < 0 {
		n = -n
	}
	n %= len(xs)
	out = append(out, xs[n:]...)
	return append(out, xs[:n]...)
}

// sameCanonicalDomain is the naive reference the fuzzed implementation
// is checked against.
func sameCanonicalDomain(a, b []string) bool {
	ca, cb := CanonicalDomain(a), CanonicalDomain(b)
	if len(ca) != len(cb) {
		return false
	}
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}
