package scheduler

import "testing"

func TestLedgerGlobalLimit(t *testing.T) {
	l := NewLedger(1.0)
	if !l.Admissible("a", 0.6, 0, 0) {
		t.Fatal("fresh ledger refused an affordable job")
	}
	l.Charge("a", 0.6)
	if l.Admissible("b", 0.5, 0, 0) {
		t.Error("ledger admitted past the global limit")
	}
	if !l.Admissible("b", 0.4, 0, 0) {
		t.Error("ledger refused a job that still fits")
	}
	if got := l.Spent(); got != 0.6 {
		t.Errorf("Spent = %v, want 0.6", got)
	}
}

func TestLedgerUnlimited(t *testing.T) {
	l := NewLedger(0)
	l.Charge("a", 1e9)
	if !l.Admissible("a", 1e9, 0, 0) {
		t.Error("unlimited ledger refused admission")
	}
}

func TestLedgerJobLimit(t *testing.T) {
	l := NewLedger(0)
	l.SetJobLimit("a", 0.5)
	if !l.Admissible("a", 0.5, 0, 0) {
		t.Error("refused exactly-fitting job work")
	}
	if l.Admissible("a", 0.51, 0, 0) {
		t.Error("admitted past the job limit")
	}
	l.Charge("a", 0.4)
	if l.Admissible("a", 0.2, 0, 0) {
		t.Error("admitted past the job limit after spend")
	}
	if !l.Admissible("b", 100, 0, 0) {
		t.Error("job limit leaked onto another job")
	}
	// Charges past the limit still settle: they are facts.
	l.Charge("a", 0.3)
	snap := l.Snapshot()
	if len(snap.Jobs) != 1 || snap.Jobs[0].Spent != 0.7 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestLedgerReserved(t *testing.T) {
	l := NewLedger(1.0)
	// A peer's reservation weighs against the global limit...
	if l.Admissible("b", 0.5, 0.6, 0) {
		t.Error("admitted past the global limit despite a peer's reservation")
	}
	if !l.Admissible("b", 0.4, 0.6, 0) {
		t.Error("refused work that fits beside the reservation")
	}
	// ...but not against the job's own cap.
	l.SetJobLimit("b", 0.4)
	if !l.Admissible("b", 0.4, 0.6, 0) {
		t.Error("peer reservation shrank the job's own cap")
	}
	// The job's own same-round reservation does count against its cap:
	// two tickets under one name must not jointly blow it.
	if l.Admissible("b", 0.3, 0.6, 0.2) {
		t.Error("admitted past the job cap despite its own reservation")
	}
}

func TestLedgerRestore(t *testing.T) {
	l := NewLedger(2)
	l.Restore(1.5, map[string]JobBudget{"a": {Limit: 1, Spent: 0.9}})
	if l.Admissible("b", 0.6, 0, 0) {
		t.Error("restored global spend not enforced")
	}
	if l.Admissible("a", 0.2, 0, 0) {
		t.Error("restored job spend not enforced")
	}
	if !l.Admissible("a", 0.1, 0, 0) {
		t.Error("restored ledger refused fitting work")
	}
}

func TestLedgerSnapshotSorted(t *testing.T) {
	l := NewLedger(3)
	l.Charge("zed", 1)
	l.Charge("abe", 1)
	l.Charge("mid", 1)
	snap := l.Snapshot()
	if snap.GlobalLimit != 3 || snap.GlobalSpent != 3 {
		t.Errorf("snapshot global = %+v", snap)
	}
	for i := 1; i < len(snap.Jobs); i++ {
		if snap.Jobs[i-1].Job > snap.Jobs[i].Job {
			t.Fatalf("snapshot jobs unsorted: %+v", snap.Jobs)
		}
	}
}
