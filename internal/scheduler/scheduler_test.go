package scheduler

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"cdas/internal/crowd"
	"cdas/internal/engine"
	"cdas/internal/metrics"
)

var testDomain = []string{"Positive", "Neutral", "Negative"}

// sharedQuestion builds the i-th question of the cross-job shared pool:
// jobs asking it use their own IDs, but the content is identical, so the
// scheduler must recognise it as one unit of crowd work.
func sharedQuestion(job string, i int) crowd.Question {
	return crowd.Question{
		ID:     fmt.Sprintf("%s/shared%03d", job, i),
		Text:   fmt.Sprintf("Is shared tweet #%d positive about the movie?", i),
		Domain: testDomain,
		Truth:  "Positive",
	}
}

// uniqueQuestion builds a question only this job asks.
func uniqueQuestion(job string, i int) crowd.Question {
	return crowd.Question{
		ID:     fmt.Sprintf("%s/uniq%03d", job, i),
		Text:   fmt.Sprintf("Is %s's own tweet #%d positive?", job, i),
		Domain: testDomain,
		Truth:  "Negative",
	}
}

// workload builds per-job question sets with the given overlap fraction:
// overlap*perJob questions are drawn from a pool common to all jobs.
func workload(jobs, perJob int, overlap float64) map[string][]crowd.Question {
	shared := int(overlap * float64(perJob))
	out := make(map[string][]crowd.Question, jobs)
	for j := 0; j < jobs; j++ {
		job := fmt.Sprintf("job%02d", j)
		qs := make([]crowd.Question, 0, perJob)
		for i := 0; i < shared; i++ {
			qs = append(qs, sharedQuestion(job, i))
		}
		for i := shared; i < perJob; i++ {
			qs = append(qs, uniqueQuestion(job, i))
		}
		out[job] = qs
	}
	return out
}

func goldenPool(n int) []crowd.Question {
	qs := make([]crowd.Question, n)
	for i := range qs {
		qs[i] = crowd.Question{
			ID:     fmt.Sprintf("golden/g%03d", i),
			Text:   fmt.Sprintf("Calibration tweet #%d", i),
			Domain: testDomain,
			Truth:  "Neutral",
		}
	}
	return qs
}

// newTestScheduler builds a scheduler over a fresh simulated platform.
// mutate tweaks the config before construction.
func newTestScheduler(t *testing.T, mutate func(*Config)) *Scheduler {
	t.Helper()
	platform, err := crowd.NewPlatform(crowd.DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Platform: engine.CrowdPlatform{Platform: platform},
		Engine:   engine.Config{HITSize: 20, MaxInflightHITs: 4, Seed: 9},
		Golden:   goldenPool(12),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// runWorkload enqueues every job from `concurrency` goroutines, flushes
// once, and returns each job's result.
func runWorkload(t *testing.T, s *Scheduler, w map[string][]crowd.Question, concurrency int) map[string]JobResult {
	t.Helper()
	type pair struct {
		job    string
		ticket *Ticket
	}
	jobs := make(chan string, len(w))
	for job := range w {
		jobs <- job
	}
	close(jobs)
	results := make(chan pair, len(w))
	var wg sync.WaitGroup
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				ticket, err := s.Enqueue(Request{Job: job, Questions: w[job]})
				if err != nil {
					t.Errorf("enqueue %s: %v", job, err)
					return
				}
				results <- pair{job, ticket}
			}
		}()
	}
	wg.Wait()
	close(results)
	if err := s.Flush(context.Background()); err != nil {
		t.Fatalf("flush: %v", err)
	}
	out := make(map[string]JobResult, len(w))
	for p := range results {
		res, err := p.ticket.Wait(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", p.job, err)
		}
		out[p.job] = res
	}
	return out
}

// TestSchedulerDedupSavings is the headline guarantee: at 50% question
// overlap across 8 jobs, cross-query dedup cuts crowd spend by at least
// 25% against the same workload scheduled without coalescing.
func TestSchedulerDedupSavings(t *testing.T) {
	w := workload(8, 30, 0.5)
	spend := func(disableDedup bool) (float64, map[string]JobResult) {
		s := newTestScheduler(t, func(c *Config) { c.DisableDedup = disableDedup })
		res := runWorkload(t, s, w, 4)
		return s.Ledger().Spent(), res
	}
	dedupSpend, dedupRes := spend(false)
	naiveSpend, naiveRes := spend(true)
	if naiveSpend <= 0 {
		t.Fatalf("naive spend = %v, expected positive", naiveSpend)
	}
	saving := 1 - dedupSpend/naiveSpend
	t.Logf("dedup spend %.3f vs naive %.3f: %.1f%% saved", dedupSpend, naiveSpend, 100*saving)
	if saving < 0.25 {
		t.Errorf("dedup saved only %.1f%% at 50%% overlap, want >= 25%%", 100*saving)
	}
	// Both modes answer every question of every job.
	for job, qs := range w {
		if got := len(dedupRes[job].Results); got != len(qs) {
			t.Errorf("dedup: %s got %d answers, want %d", job, got, len(qs))
		}
		if got := len(naiveRes[job].Results); got != len(qs) {
			t.Errorf("naive: %s got %d answers, want %d", job, got, len(qs))
		}
	}
	// Attributed costs sum to the actual spend in both modes.
	sum := func(rs map[string]JobResult) float64 {
		var tot float64
		for _, r := range rs {
			tot += r.Cost
		}
		return tot
	}
	if got := sum(dedupRes); !close2(got, dedupSpend) {
		t.Errorf("dedup attribution %.6f != spend %.6f", got, dedupSpend)
	}
	if got := sum(naiveRes); !close2(got, naiveSpend) {
		t.Errorf("naive attribution %.6f != spend %.6f", got, naiveSpend)
	}
}

func close2(a, b float64) bool {
	d := a - b
	return d < 1e-6 && d > -1e-6
}

// TestSchedulerDeterministicAcrossConcurrency: a generation's results
// are bit-equal no matter how many goroutines enqueued the jobs.
func TestSchedulerDeterministicAcrossConcurrency(t *testing.T) {
	w := workload(6, 25, 0.4)
	run := func(concurrency int) string {
		s := newTestScheduler(t, nil)
		res := runWorkload(t, s, w, concurrency)
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(blob)
	}
	serial := run(1)
	for _, c := range []int{2, 16} {
		if got := run(c); got != serial {
			t.Errorf("results differ between 1 and %d enqueue goroutines", c)
		}
	}
}

// TestSchedulerSharedAnswersAgree: subscribers of one shared question
// receive the same verdict, each under its own original question.
func TestSchedulerSharedAnswersAgree(t *testing.T) {
	s := newTestScheduler(t, nil)
	w := workload(3, 10, 1.0) // fully shared
	res := runWorkload(t, s, w, 3)
	var ref JobResult
	first := true
	for job, r := range res {
		for i, qr := range r.Results {
			wantID := fmt.Sprintf("%s/shared%03d", job, i)
			if qr.Question.ID != wantID {
				t.Errorf("%s result %d: question ID %q, want original %q", job, i, qr.Question.ID, wantID)
			}
		}
		if first {
			ref, first = r, false
			continue
		}
		for i := range r.Results {
			if r.Results[i].Answer != ref.Results[i].Answer ||
				r.Results[i].Confidence != ref.Results[i].Confidence {
				t.Errorf("%s result %d diverges from its shared verdict", job, i)
			}
		}
	}
	st := s.State()
	// 3 jobs × 10 questions, 10 unique: 20 fan-outs beyond the first.
	if st.QuestionsPublished != 10 || st.QuestionsDeduped != 20 {
		t.Errorf("published %d / deduped %d, want 10 / 20", st.QuestionsPublished, st.QuestionsDeduped)
	}
}

// TestSchedulerCacheAcrossGenerations: a later job re-asking verified
// questions is answered from the cache, free of charge.
func TestSchedulerCacheAcrossGenerations(t *testing.T) {
	reg := metrics.NewRegistry()
	s := newTestScheduler(t, func(c *Config) { c.Counters = reg })
	qs := workload(1, 12, 0)["job00"]
	first := runWorkload(t, s, map[string][]crowd.Question{"job00": qs}, 1)["job00"]
	if first.CacheHits != 0 || first.Cost <= 0 {
		t.Fatalf("first run: hits=%d cost=%v", first.CacheHits, first.Cost)
	}
	spendAfterFirst := s.Ledger().Spent()

	// Same content, different job and IDs.
	again := make([]crowd.Question, len(qs))
	for i, q := range qs {
		q.ID = fmt.Sprintf("rerun/%03d", i)
		again[i] = q
	}
	second := runWorkload(t, s, map[string][]crowd.Question{"rerun": again}, 1)["rerun"]
	if second.CacheHits != len(qs) {
		t.Errorf("second run: %d cache hits, want %d", second.CacheHits, len(qs))
	}
	if second.Cost != 0 {
		t.Errorf("second run charged %v, want 0", second.Cost)
	}
	if got := s.Ledger().Spent(); got != spendAfterFirst {
		t.Errorf("cache hit still spent money: %v -> %v", spendAfterFirst, got)
	}
	for i := range qs {
		if second.Results[i].Answer != first.Results[i].Answer {
			t.Errorf("cached answer %d diverges", i)
		}
	}
	if reg.Get(metrics.CounterSchedCacheHits) != int64(len(qs)) {
		t.Errorf("cache-hit counter = %d", reg.Get(metrics.CounterSchedCacheHits))
	}
}

// TestSchedulerCacheTTL: an expired entry is re-purchased.
func TestSchedulerCacheTTL(t *testing.T) {
	now := time.Unix(10_000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	s := newTestScheduler(t, func(c *Config) {
		c.CacheTTL = time.Hour
		c.Now = clock
	})
	qs := workload(1, 5, 0)["job00"]
	runWorkload(t, s, map[string][]crowd.Question{"job00": qs}, 1)
	mu.Lock()
	now = now.Add(2 * time.Hour)
	mu.Unlock()
	again := make([]crowd.Question, len(qs))
	for i, q := range qs {
		q.ID = fmt.Sprintf("rerun/%03d", i)
		again[i] = q
	}
	res := runWorkload(t, s, map[string][]crowd.Question{"rerun": again}, 1)["rerun"]
	if res.CacheHits != 0 {
		t.Errorf("expired entries served %d hits", res.CacheHits)
	}
	if res.Cost <= 0 {
		t.Error("re-purchase after expiry cost nothing")
	}
}

// TestSchedulerBudgetAdmission: when the global budget covers only one
// job, the higher-priority one runs and the other parks — resumable,
// not failed.
func TestSchedulerBudgetAdmission(t *testing.T) {
	reg := metrics.NewRegistry()
	s := newTestScheduler(t, func(c *Config) {
		c.GlobalBudget = 0.2
		c.Counters = reg
	})
	w := workload(2, 16, 0)
	tHigh, err := s.Enqueue(Request{Job: "job00", Priority: 5, Questions: w["job00"]})
	if err != nil {
		t.Fatal(err)
	}
	tLow, err := s.Enqueue(Request{Job: "job01", Priority: 1, Questions: w["job01"]})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(context.Background()); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if res, err := tHigh.Wait(context.Background()); err != nil {
		t.Fatalf("high-priority job: %v", err)
	} else if len(res.Results) != 16 {
		t.Errorf("high-priority job got %d answers", len(res.Results))
	}
	if _, err := tLow.Wait(context.Background()); !errors.Is(err, ErrParked) {
		t.Fatalf("low-priority job: err = %v, want ErrParked", err)
	}
	st := s.State()
	if st.JobsAdmitted != 1 || st.JobsParked != 1 {
		t.Errorf("admitted %d / parked %d, want 1 / 1", st.JobsAdmitted, st.JobsParked)
	}
	if reg.Get(metrics.CounterSchedParked) != 1 {
		t.Errorf("parked counter = %d", reg.Get(metrics.CounterSchedParked))
	}
	if st.Budget.GlobalLimit != 0.2 || st.Budget.GlobalSpent <= 0 {
		t.Errorf("budget snapshot = %+v", st.Budget)
	}
}

// TestSchedulerPerJobBudget: a job whose own cap cannot cover its
// estimate parks even with global budget to spare.
func TestSchedulerPerJobBudget(t *testing.T) {
	s := newTestScheduler(t, nil)
	qs := workload(1, 16, 0)["job00"]
	ticket, err := s.Enqueue(Request{Job: "job00", Budget: 0.0001, Questions: qs})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(context.Background()); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if _, err := ticket.Wait(context.Background()); !errors.Is(err, ErrParked) {
		t.Fatalf("err = %v, want ErrParked", err)
	}
	// Budget 0 means unlimited and must clear the stale cap: the same
	// job name resubmitted without a budget runs.
	again, err := s.Enqueue(Request{Job: "job00", Questions: qs})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(context.Background()); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if res, err := again.Wait(context.Background()); err != nil {
		t.Fatalf("unlimited resubmission: %v (stale cap not cleared)", err)
	} else if len(res.Results) != len(qs) {
		t.Errorf("unlimited resubmission got %d answers", len(res.Results))
	}
}

// TestSchedulerSharedRidesRespectJobBudget: riding a slot a peer
// already opened still costs real money, so it must not be admitted
// for free past the rider's own budget cap.
func TestSchedulerSharedRidesRespectJobBudget(t *testing.T) {
	s := newTestScheduler(t, nil)
	qs := workload(1, 16, 0)["job00"]
	rider := make([]crowd.Question, len(qs))
	for i, q := range qs {
		q.ID = fmt.Sprintf("rider/%03d", i) // same content, own IDs
		rider[i] = q
	}
	payer, err := s.Enqueue(Request{Job: "payer", Priority: 5, Questions: qs})
	if err != nil {
		t.Fatal(err)
	}
	broke, err := s.Enqueue(Request{Job: "broke", Priority: 0, Budget: 0.0001, Questions: rider})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(context.Background()); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if _, err := payer.Wait(context.Background()); err != nil {
		t.Fatalf("payer: %v", err)
	}
	if _, err := broke.Wait(context.Background()); !errors.Is(err, ErrParked) {
		t.Fatalf("rider with a blown budget: err = %v, want ErrParked (shared rides are not free)", err)
	}
}

// TestSchedulerOnCharge: the persistence hook sees one charge per job
// per generation, summing to the attributed costs.
func TestSchedulerOnCharge(t *testing.T) {
	var mu sync.Mutex
	charges := make(map[string]float64)
	s := newTestScheduler(t, func(c *Config) {
		c.OnCharge = func(job string, amount float64) {
			mu.Lock()
			defer mu.Unlock()
			charges[job] += amount
		}
	})
	w := workload(3, 12, 0.5)
	res := runWorkload(t, s, w, 3)
	for job, r := range res {
		if !close2(charges[job], r.Cost) {
			t.Errorf("%s: hook saw %.6f, result cost %.6f", job, charges[job], r.Cost)
		}
	}
}

// TestSchedulerMixedDomains: one request spanning two answer domains is
// split into two groups and fully answered.
func TestSchedulerMixedDomains(t *testing.T) {
	s := newTestScheduler(t, func(c *Config) { c.Engine.DisableSampling = true; c.Golden = nil })
	qs := []crowd.Question{
		{ID: "a", Text: "sentiment?", Domain: testDomain, Truth: "Positive"},
		{ID: "b", Text: "is it a cat?", Domain: []string{"yes", "no"}, Truth: "yes"},
		{ID: "c", Text: "really a cat?", Domain: []string{"yes", "no"}, Truth: "no"},
	}
	res := runWorkload(t, s, map[string][]crowd.Question{"mixed": qs}, 1)["mixed"]
	if len(res.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(res.Results))
	}
	for i, want := range []string{"a", "b", "c"} {
		if res.Results[i].Question.ID != want {
			t.Errorf("result %d: ID %q, want %q (sorted by original ID)", i, res.Results[i].Question.ID, want)
		}
		if res.Results[i].Answer == "" {
			t.Errorf("result %d unanswered", i)
		}
	}
}

// TestSchedulerAnswerMappedToSubscriberDomain: a coalesced question is
// published in one subscriber's literal form, but every subscriber's
// verdict — batch-delivered, ranked and cache-served alike — must
// arrive spelled in its own domain strings, or its presentation layer
// would drop the votes.
func TestSchedulerAnswerMappedToSubscriberDomain(t *testing.T) {
	s := newTestScheduler(t, nil)
	lower, err := s.Enqueue(Request{Job: "alpha", Questions: []crowd.Question{
		{ID: "a/q", Text: "is the shared tweet positive?", Domain: []string{"positive", "negative"}, Truth: "positive"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	upper, err := s.Enqueue(Request{Job: "beta", Questions: []crowd.Question{
		{ID: "b/q", Text: "  IS the shared tweet POSITIVE? ", Domain: []string{"Negative", "Positive"}, Truth: "Positive"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	inDomain := func(answer string, domain []string) bool {
		for _, d := range domain {
			if d == answer {
				return true
			}
		}
		return false
	}
	check := func(name string, ticket *Ticket, domain []string) {
		t.Helper()
		res, err := ticket.Wait(context.Background())
		if err != nil || len(res.Results) != 1 {
			t.Fatalf("%s: %d results, err %v", name, len(res.Results), err)
		}
		qr := res.Results[0]
		if !inDomain(qr.Answer, domain) {
			t.Errorf("%s: answer %q not spelled in its own domain %v", name, qr.Answer, domain)
		}
		for _, sc := range qr.Ranked {
			if !inDomain(sc.Answer, domain) {
				t.Errorf("%s: ranked answer %q not spelled in its own domain %v", name, sc.Answer, domain)
			}
		}
	}
	check("alpha", lower, []string{"positive", "negative"})
	check("beta", upper, []string{"Negative", "Positive"})

	// The cache path maps too: a third spelling served from the cache.
	cached, err := s.Enqueue(Request{Job: "gamma", Questions: []crowd.Question{
		{ID: "c/q", Text: "IS THE SHARED TWEET POSITIVE?", Domain: []string{"POSITIVE", "NEGATIVE"}, Truth: "POSITIVE"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := cached.Wait(context.Background())
	if err != nil || res.CacheHits != 1 {
		t.Fatalf("gamma: hits=%d err=%v", res.CacheHits, err)
	}
	if got := res.Results[0].Answer; got != "POSITIVE" && got != "NEGATIVE" {
		t.Errorf("cache-served answer %q not mapped into gamma's domain", got)
	}
}

// TestSchedulerAbandonedTicket: an abandoned (cancelled) ticket is
// resolved without publishing or charging anything.
func TestSchedulerAbandonedTicket(t *testing.T) {
	s := newTestScheduler(t, nil)
	w := workload(2, 8, 0)
	dead, err := s.Enqueue(Request{Job: "job00", Questions: w["job00"]})
	if err != nil {
		t.Fatal(err)
	}
	alive, err := s.Enqueue(Request{Job: "job01", Questions: w["job01"]})
	if err != nil {
		t.Fatal(err)
	}
	dead.Abandon()
	if err := s.Flush(context.Background()); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if _, err := dead.Wait(context.Background()); !errors.Is(err, ErrAbandoned) {
		t.Errorf("abandoned ticket err = %v, want ErrAbandoned", err)
	}
	res, err := alive.Wait(context.Background())
	if err != nil || len(res.Results) != 8 {
		t.Fatalf("live ticket: %d results, err %v", len(res.Results), err)
	}
	st := s.State()
	if st.QuestionsPublished != 8 {
		t.Errorf("published %d questions, want only the live job's 8", st.QuestionsPublished)
	}
	for _, line := range st.Budget.Jobs {
		if line.Job == "job00" && line.Spent != 0 {
			t.Errorf("abandoned job charged %v", line.Spent)
		}
	}
}

// failingPlatform refuses HITs published under one title (one domain
// group's engine), leaving the other groups to succeed.
type failingPlatform struct {
	engine.Platform
	failTitle string
}

func (p failingPlatform) Publish(hit crowd.HIT, n int) (engine.Run, error) {
	if hit.Title == p.failTitle {
		return nil, errors.New("platform down for this domain")
	}
	return p.Platform.Publish(hit, n)
}

// TestSchedulerPartialFailureKeepsCost: when one domain group dies the
// ticket surfaces the error together with the surviving groups'
// results and their attributed cost — the spend the ledger recorded
// must be visible to the job's accounting.
func TestSchedulerPartialFailureKeepsCost(t *testing.T) {
	binary := []string{"yes", "no"}
	var s *Scheduler
	s = newTestScheduler(t, func(c *Config) {
		c.Engine.DisableSampling = true
		c.Golden = nil
		c.Platform = failingPlatform{Platform: c.Platform, failTitle: "sched/" + DomainKey(binary)}
	})
	qs := append(workload(1, 6, 0)["job00"],
		crowd.Question{ID: "bin/a", Text: "binary one?", Domain: binary, Truth: "yes"},
		crowd.Question{ID: "bin/b", Text: "binary two?", Domain: binary, Truth: "no"},
	)
	ticket, err := s.Enqueue(Request{Job: "job00", Questions: qs})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(context.Background()); err == nil {
		t.Fatal("flush succeeded despite a dead domain group")
	}
	res, err := ticket.Wait(context.Background())
	if err == nil {
		t.Fatal("ticket resolved without the group error")
	}
	if len(res.Results) != 6 {
		t.Errorf("surviving results = %d, want the sentiment group's 6", len(res.Results))
	}
	if res.Cost <= 0 {
		t.Error("surviving groups' spend lost from the partial result")
	}
	if !close2(res.Cost, s.Ledger().Spent()) {
		t.Errorf("partial result cost %.6f != ledger spend %.6f", res.Cost, s.Ledger().Spent())
	}
}

func TestSchedulerEnqueueValidation(t *testing.T) {
	s := newTestScheduler(t, nil)
	ok := crowd.Question{ID: "q", Text: "t", Domain: testDomain}
	cases := []struct {
		name string
		req  Request
	}{
		{"no job", Request{Questions: []crowd.Question{ok}}},
		{"no questions", Request{Job: "j"}},
		{"negative budget", Request{Job: "j", Budget: -1, Questions: []crowd.Question{ok}}},
		{"empty question id", Request{Job: "j", Questions: []crowd.Question{{Text: "t", Domain: testDomain}}}},
		{"duplicate ids", Request{Job: "j", Questions: []crowd.Question{ok, ok}}},
		{"small domain", Request{Job: "j", Questions: []crowd.Question{{ID: "x", Text: "t", Domain: []string{"only"}}}}},
	}
	for _, c := range cases {
		if _, err := s.Enqueue(c.req); err == nil {
			t.Errorf("%s: Enqueue accepted an invalid request", c.name)
		}
	}
}

func TestSchedulerClose(t *testing.T) {
	s := newTestScheduler(t, nil)
	qs := workload(1, 3, 0)["job00"]
	ticket, err := s.Enqueue(Request{Job: "job00", Questions: qs})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := ticket.Wait(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("pending ticket err = %v, want ErrClosed", err)
	}
	if _, err := s.Enqueue(Request{Job: "late", Questions: qs}); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close Enqueue err = %v, want ErrClosed", err)
	}
	if err := s.Flush(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close Flush err = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

func TestTicketWaitCancelled(t *testing.T) {
	s := newTestScheduler(t, nil)
	ticket, err := s.Enqueue(Request{Job: "j", Questions: workload(1, 3, 0)["job00"]})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ticket.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Wait err = %v, want context.Canceled", err)
	}
}

// TestSchedulerAutoFlush: a background FlushInterval drains enqueued
// work without manual flushes.
func TestSchedulerAutoFlush(t *testing.T) {
	s := newTestScheduler(t, func(c *Config) { c.FlushInterval = 5 * time.Millisecond })
	ticket, err := s.Enqueue(Request{Job: "auto", Questions: workload(1, 6, 0)["job00"]})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := ticket.Wait(ctx)
	if err != nil {
		t.Fatalf("auto-flushed ticket: %v", err)
	}
	if len(res.Results) != 6 {
		t.Errorf("got %d results, want 6", len(res.Results))
	}
}
