package online

import (
	"math"
	"testing"

	"cdas/internal/core/verification"
)

// completionOracle enumerates every possible completion of the remaining
// workers (each answering any domain answer, all with accuracy meanAcc)
// and returns the minimum final probability of the current best answer
// and the maximum final probability of any other answer — the exact
// quantities CurrentBounds approximates with the paper's "all remaining
// vote the runner-up" argument.
func completionOracle(t *testing.T, votes []verification.Vote, domain []string, rem int, meanAcc float64) (minBest, maxRunner float64) {
	t.Helper()
	base, err := verification.Verify(votes, len(domain))
	if err != nil {
		t.Fatal(err)
	}
	best := base.Best().Answer

	minBest = math.Inf(1)
	maxRunner = 0.0
	assignment := make([]int, rem)
	var recurse func(i int)
	recurse = func(i int) {
		if i == rem {
			full := append([]verification.Vote(nil), votes...)
			for _, d := range assignment {
				full = append(full, verification.Vote{Accuracy: meanAcc, Answer: domain[d]})
			}
			res, err := verification.Verify(full, len(domain))
			if err != nil {
				t.Fatal(err)
			}
			if p := res.Confidence(best); p < minBest {
				minBest = p
			}
			for _, s := range res.Ranked {
				if s.Answer != best && s.Confidence > maxRunner {
					maxRunner = s.Confidence
				}
			}
			return
		}
		for d := range domain {
			assignment[i] = d
			recurse(i + 1)
		}
	}
	recurse(0)
	return minBest, maxRunner
}

func TestBoundsMatchExhaustiveCompletions(t *testing.T) {
	domain := []string{"a", "b", "c"}
	const meanAcc = 0.7
	cases := [][]verification.Vote{
		{{Accuracy: 0.8, Answer: "a"}},
		{{Accuracy: 0.8, Answer: "a"}, {Accuracy: 0.6, Answer: "b"}},
		{{Accuracy: 0.9, Answer: "a"}, {Accuracy: 0.85, Answer: "a"}, {Accuracy: 0.55, Answer: "c"}},
		{{Accuracy: 0.6, Answer: "b"}, {Accuracy: 0.6, Answer: "b"}, {Accuracy: 0.6, Answer: "a"}},
	}
	for ci, votes := range cases {
		for rem := 1; rem <= 3; rem++ {
			total := len(votes) + rem
			v, err := NewVerifier(total, len(domain), meanAcc)
			if err != nil {
				t.Fatal(err)
			}
			for _, vote := range votes {
				if err := v.Add(vote); err != nil {
					t.Fatal(err)
				}
			}
			b, err := v.CurrentBounds()
			if err != nil {
				t.Fatal(err)
			}
			oracleMin, oracleMax := completionOracle(t, votes, domain, rem, meanAcc)
			// The adversarial single-answer completion must coincide with
			// the exhaustive extremes: concentrating all remaining votes
			// on the strongest competitor minimises the leader and
			// maximises that competitor.
			if math.Abs(b.MinBest-oracleMin) > 1e-9 {
				t.Errorf("case %d rem %d: MinBest %v, exhaustive %v", ci, rem, b.MinBest, oracleMin)
			}
			if math.Abs(b.MaxRunner-oracleMax) > 1e-9 {
				t.Errorf("case %d rem %d: MaxRunner %v, exhaustive %v", ci, rem, b.MaxRunner, oracleMax)
			}
		}
	}
}

func TestMinMaxNeverFiresWhenOvertakable(t *testing.T) {
	// Safety property of the Section 4.2.2 bounds: whenever MinMax says
	// "terminate", no completion (with mean-accuracy workers) can make
	// any rival's probability exceed the leader's minimum.
	domain := []string{"a", "b"}
	const meanAcc = 0.75
	votes := []verification.Vote{
		{Accuracy: 0.95, Answer: "a"},
		{Accuracy: 0.9, Answer: "a"},
		{Accuracy: 0.85, Answer: "a"},
	}
	for rem := 1; rem <= 3; rem++ {
		total := len(votes) + rem
		v, err := NewVerifier(total, len(domain), meanAcc)
		if err != nil {
			t.Fatal(err)
		}
		for _, vote := range votes {
			if err := v.Add(vote); err != nil {
				t.Fatal(err)
			}
		}
		if !v.Terminated(MinMax) {
			continue // not fired at this rem; nothing to check
		}
		oracleMin, oracleMax := completionOracle(t, votes, domain, rem, meanAcc)
		if oracleMin <= oracleMax {
			t.Errorf("rem %d: MinMax fired but a completion overturns the leader (%v <= %v)",
				rem, oracleMin, oracleMax)
		}
	}
}
