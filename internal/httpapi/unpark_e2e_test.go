package httpapi

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cdas/internal/jobs"
)

// TestUnparkOverHTTP drives the budget-parking loop end to end through
// the API: a submitted job parks when its runner reports budget
// exhaustion, GET shows the parked state, POST /jobs/{name}/unpark
// resumes it, and it completes.
func TestUnparkOverHTTP(t *testing.T) {
	svc, err := jobs.OpenService(jobs.ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	var overBudget atomic.Bool
	overBudget.Store(true)
	disp, err := jobs.NewDispatcher(svc, func(ctx context.Context, job jobs.Job, report func(float64, float64)) error {
		if overBudget.Load() {
			return fmt.Errorf("%w: estimate over cap", jobs.ErrParked)
		}
		report(1, 0.5)
		return nil
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	disp.Start()
	defer disp.Stop()
	api := NewServer()
	api.SetJobs(disp)
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()

	body := `{"name":"strapped","keywords":["thor"],"required_accuracy":0.9,` +
		`"domain":["Positive","Neutral","Negative"],"window":"24h","budget":0.0001,"priority":1}`
	resp, err := ts.Client().Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	state := func() jobs.State {
		st, _ := svc.Status("strapped")
		return st.State
	}
	waitState := func(want jobs.State) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if state() == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for state %s (at %s)", want, state())
	}
	waitState(jobs.StateParked)

	// Unparking while still over budget just parks it again — never a
	// failure, never a burned attempt.
	unpark := func() int {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/jobs/strapped/unpark", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := unpark(); code != http.StatusOK {
		t.Fatalf("unpark: status %d", code)
	}
	waitState(jobs.StateParked)
	st, _ := svc.Status("strapped")
	if st.Attempts != 0 {
		t.Errorf("park cycles burned %d attempts", st.Attempts)
	}

	// With budget available the unparked job runs to completion.
	overBudget.Store(false)
	if code := unpark(); code != http.StatusOK {
		t.Fatalf("second unpark: status %d", code)
	}
	waitState(jobs.StateDone)

	// Unparking a done job is a conflict; unknown jobs are 404.
	if code := unpark(); code != http.StatusConflict {
		t.Errorf("unpark(done): status %d, want 409", code)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/jobs/ghost/unpark", nil)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unpark(unknown): status %d, want 404", resp.StatusCode)
	}
}
