package api

import (
	"encoding/json"
	"errors"
	"testing"
)

func TestJobStateValidTerminal(t *testing.T) {
	cases := []struct {
		s        JobState
		valid    bool
		terminal bool
	}{
		{JobPending, true, false},
		{JobRunning, true, false},
		{JobParked, true, false},
		{JobDone, true, true},
		{JobFailed, true, true},
		{JobCancelled, true, true},
		{JobState("limbo"), false, false},
		{JobState(""), false, false},
	}
	for _, c := range cases {
		if got := c.s.Valid(); got != c.valid {
			t.Errorf("%q.Valid() = %v, want %v", c.s, got, c.valid)
		}
		if got := c.s.Terminal(); got != c.terminal {
			t.Errorf("%q.Terminal() = %v, want %v", c.s, got, c.terminal)
		}
	}
}

func TestErrorFormatting(t *testing.T) {
	e := NotFound("no such job %q", "x")
	if e.Code != CodeNotFound || e.Status != 404 {
		t.Errorf("NotFound built %+v", e)
	}
	if got := e.Error(); got != `not_found (404): no such job "x"` {
		t.Errorf("Error() = %q", got)
	}
	e.Detail = "try listing jobs"
	if got := e.Error(); got != `not_found (404): no such job "x": try listing jobs` {
		t.Errorf("Error() with detail = %q", got)
	}
}

func TestErrorConstructors(t *testing.T) {
	cases := []struct {
		err    *Error
		code   string
		status int
	}{
		{InvalidArgument("x"), CodeInvalidArgument, 400},
		{NotFound("x"), CodeNotFound, 404},
		{Conflict("x"), CodeConflict, 409},
		{Unavailable("x"), CodeUnavailable, 503},
		{Internal("x"), CodeInternal, 500},
	}
	for _, c := range cases {
		if c.err.Code != c.code || c.err.Status != c.status {
			t.Errorf("constructor built %+v, want code %s status %d", c.err, c.code, c.status)
		}
	}
}

// TestErrorEnvelopeRoundTrip pins the envelope wire shape and that a
// decoded Error still works with errors.As.
func TestErrorEnvelopeRoundTrip(t *testing.T) {
	b, err := json.Marshal(ErrorResponse{Error: Conflict("job already registered")})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"error":{"code":"conflict","status":409,"message":"job already registered"}}`
	if string(b) != want {
		t.Errorf("envelope = %s, want %s", b, want)
	}
	var decoded ErrorResponse
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	var apiErr *Error
	if !errors.As(error(decoded.Error), &apiErr) || apiErr.Status != 409 {
		t.Errorf("decoded envelope lost the typed error: %+v", decoded.Error)
	}
}
