// Example enumeration demonstrates open-ended enumeration queries:
// HITs ask workers to contribute set members ("list all X") instead of
// votes, free-text answers are canonicalized and deduped into a growing
// result set, a Chao92 species estimate tracks completeness live, and
// the budget ledger's marginal-value admission stops buying batches
// once expected discovery no longer covers the HIT price. Every batch
// commits a durable mark, so the example kills the service mid-run —
// kill -9, morally — reopens the store and shows the replay resuming at
// the next batch without re-charging the crowd for committed ones.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"cdas/internal/crowd"
	"cdas/internal/engine"
	"cdas/internal/enum"
	"cdas/internal/jobs"
	"cdas/internal/metrics"
	"cdas/internal/scheduler"
	"cdas/internal/stats"
	"cdas/internal/textgen"
	"cdas/internal/tsa"
)

const (
	seed     = 7
	jobName  = "us-states"
	universe = 30
)

func main() {
	dir, err := os.MkdirTemp("", "cdas-enum-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Printf("job store: %s\n\n", dir)

	counters := metrics.NewRegistry()

	// ---- First incarnation: buy a few batches, then pull the plug. ----
	svc, err := jobs.OpenService(jobs.ServiceConfig{Dir: dir, Counters: counters})
	if err != nil {
		log.Fatal(err)
	}
	disp := newIncarnation(svc, counters, 40*time.Millisecond)
	disp.Start()
	if _, err := disp.Submit(enumerationJob()); err != nil {
		log.Fatal(err)
	}
	// Wait for two durably committed batches, then cut the process down:
	// the store stops accepting writes first, so whatever the runner was
	// doing next never reaches disk.
	for {
		if mark, ok := svc.StreamMarkFor(jobName); ok && mark.Window >= 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	svc.Close()
	disp.Stop()
	mark, _ := svc.StreamMarkFor(jobName)
	fmt.Printf("\ncrash after batch %d: committed spend=$%.2f contributions=%d distinct=%d\n\n",
		mark.Window, mark.Spent, mark.Seen, mark.Matched)

	// ---- Second incarnation: replay the store and resume the hunt. ----
	svc2, err := jobs.OpenService(jobs.ServiceConfig{Dir: dir, Counters: counters})
	if err != nil {
		log.Fatal(err)
	}
	defer svc2.Close()
	mark2, _ := svc2.StreamMarkFor(jobName)
	fmt.Printf("replay recovered enumeration mark: batch=%d spend=$%.2f distinct=%d\n", mark2.Window, mark2.Spent, mark2.Matched)
	for _, name := range svc2.Resumed() {
		fmt.Printf("replay resumed interrupted job %q\n", name)
	}
	fmt.Println()
	disp2 := newIncarnation(svc2, counters, 0)
	disp2.Start()
	for {
		st, ok := disp2.Status(jobName)
		if ok && st.State.Terminal() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	disp2.Stop()

	final, _ := svc2.StreamMarkFor(jobName)
	st, _ := disp2.Status(jobName)
	fmt.Printf("\nfinal: state=%s batches=%d contributions=%d distinct=%d of %d true members, spend=$%.2f, stopped=%s\n",
		st.State, final.Window+1, final.Seen, final.Matched, universe, final.Spent, final.Enum.Stopped)
	fmt.Printf("counters: enum_batches=%d enum_contributions=%d enum_items_discovered=%d\n",
		counters.Get("enum_batches"),
		counters.Get("enum_contributions"),
		counters.Get("enum_items_discovered"))
}

// enumerationJob is the demo query: an open-ended collection over a
// hidden set of 30 members drawn with a Zipf popularity skew, a budget
// generous enough that the marginal-value rule — not the money — is
// what ends the job.
func enumerationJob() jobs.Job {
	return jobs.Job{
		Name:   jobName,
		Kind:   jobs.KindEnumeration,
		Budget: 5,
		Query: jobs.Query{
			Keywords: []string{"US state"},
		},
		Enum: &jobs.EnumSpec{
			ItemValue:  0.05,
			Universe:   universe,
			SourceSeed: seed,
		},
	}
}

// newIncarnation wires one process lifetime: scheduler, enumeration
// runner and a single-worker dispatcher, with the persisted budget
// ledger restored. delay paces each simulated HIT batch so the first
// incarnation has a mid-run moment to die in.
func newIncarnation(svc *jobs.Service, counters *metrics.Registry, delay time.Duration) *jobs.Dispatcher {
	platform, err := crowd.NewPlatform(crowd.DefaultConfig(seed))
	if err != nil {
		log.Fatal(err)
	}
	golden, err := textgen.Generate(textgen.Config{
		Seed: seed + 2, Movies: []string{"The Calibration Reel"}, TweetsPerMovie: 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	sched, err := scheduler.New(scheduler.Config{
		Platform: engine.CrowdPlatform{Platform: platform},
		Engine:   engine.Config{RequiredAccuracy: 0.9, HITSize: 20, MaxInflightHITs: 2, Seed: seed},
		Golden:   tsa.GoldenQuestions(golden),
		Counters: counters,
	})
	if err != nil {
		log.Fatal(err)
	}
	persisted := svc.Budget()
	lines := make(map[string]scheduler.JobBudget, len(persisted.Jobs))
	for name, spent := range persisted.Jobs {
		lines[name] = scheduler.JobBudget{Spent: spent}
	}
	sched.Ledger().Restore(persisted.GlobalSpent, lines)

	source := enum.SourceFactory(nil)
	if delay > 0 {
		source = func(job jobs.Job) (enum.Source, error) {
			inner, err := enum.NewSimSource(job)
			if err != nil {
				return nil, err
			}
			return slowSource{Source: inner, delay: delay}, nil
		}
	}
	runner := enum.NewRunner(enum.RunnerConfig{
		Scheduler: sched,
		Source:    source,
		Marks:     svc,
		OnCharge: func(job string, amount float64) {
			if err := svc.ChargeBudget(job, amount); err != nil {
				log.Printf("enumeration: recording charge for %q: %v", job, err)
			}
		},
		Counters: counters,
		Publish:  printBatch,
	})
	disp, err := jobs.NewDispatcher(svc, runner, 1)
	if err != nil {
		log.Fatal(err)
	}
	return disp
}

// printBatch renders each batch completion (and the terminal event) as
// one line — the example's stand-in for the SSE stream.
func printBatch(job jobs.Job, batch *enum.BatchResult, items []enum.Item, mark jobs.StreamMark, est stats.SpeciesEstimate, done bool) {
	if batch == nil {
		if done {
			fmt.Printf("  enumeration done: %d distinct, estimate %.1f, spend=$%.2f\n",
				len(items), est.Total, mark.Spent)
		}
		return
	}
	news := ""
	for _, it := range batch.NewItems {
		news += " +" + it.Text
	}
	fmt.Printf("  batch %d: contributions=%-2d new=%d cost=$%.2f estimate~%.1f complete=%.0f%%%s\n",
		batch.Batch, batch.Contributions, len(batch.NewItems), batch.Cost,
		est.Total, est.Completeness()*100, news)
}

// slowSource delays each batch draw, simulating a marketplace where
// assignments take real time.
type slowSource struct {
	enum.Source
	delay time.Duration
}

func (s slowSource) Batch(i int) []enum.Contribution {
	time.Sleep(s.delay)
	return s.Source.Batch(i)
}
