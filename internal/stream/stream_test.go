package stream

import (
	"testing"
	"time"

	"cdas/internal/crowd"
	"cdas/internal/engine"
	"cdas/internal/exec"
	"cdas/internal/httpapi"
	"cdas/internal/textgen"
	"cdas/internal/tsa"
)

var streamStart = time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)

func testEngine(t *testing.T, seed uint64) *engine.Engine {
	t.Helper()
	cfg := crowd.DefaultConfig(seed)
	cfg.Workers = 150
	platform, err := crowd.NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(engine.CrowdPlatform{Platform: platform}, nil, engine.Config{
		JobName:          "stream-test",
		RequiredAccuracy: 0.85,
		SamplingRate:     0.2,
		HITSize:          15,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func testConfig(t *testing.T, seed uint64, sink Sink) Config {
	t.Helper()
	golden, err := textgen.Generate(textgen.Config{
		Seed: seed + 100, Movies: []string{"The Calibration Reel"}, TweetsPerMovie: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Name:    "thor",
		Query:   tsa.Query("Thor", 0.85, streamStart, 24*time.Hour),
		Engine:  testEngine(t, seed),
		Golden:  tsa.GoldenQuestions(golden),
		Convert: tweetConverter(t, seed),
		Sink:    sink,
	}
}

// tweetConverter regenerates the tweet set so items can be mapped back to
// questions with ground truth.
func tweetConverter(t *testing.T, seed uint64) Convert {
	t.Helper()
	tweets := generateTweets(t, seed)
	byID := make(map[string]textgen.Tweet, len(tweets))
	for _, tw := range tweets {
		byID[tw.ID] = tw
	}
	return func(it exec.Item) crowd.Question {
		return byID[it.ID].Question()
	}
}

func generateTweets(t *testing.T, seed uint64) []textgen.Tweet {
	t.Helper()
	tweets, err := textgen.Generate(textgen.Config{
		Seed: seed, Movies: []string{"Thor", "Roommate"}, TweetsPerMovie: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tweets
}

func items(tweets []textgen.Tweet) []exec.Item {
	out := make([]exec.Item, len(tweets))
	for i, tw := range tweets {
		out[i] = exec.Item{ID: tw.ID, Text: tw.Text, At: tw.At}
	}
	return out
}

func TestNewProcessorValidation(t *testing.T) {
	valid := testConfig(t, 1, nil)
	mutations := map[string]func(*Config){
		"no engine":      func(c *Config) { c.Engine = nil },
		"no convert":     func(c *Config) { c.Convert = nil },
		"no name":        func(c *Config) { c.Name = "" },
		"bad query":      func(c *Config) { c.Query.Keywords = nil },
		"bad batch size": func(c *Config) { c.BatchSize = -1 },
	}
	for name, mutate := range mutations {
		cfg := valid
		mutate(&cfg)
		if _, err := NewProcessor(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := NewProcessor(valid); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestStreamFiltersAndBatches(t *testing.T) {
	cfg := testConfig(t, 2, nil)
	cfg.BatchSize = 10
	p, err := NewProcessor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tweets := generateTweets(t, 2)
	for _, it := range items(tweets) {
		if err := p.Offer(it); err != nil {
			t.Fatal(err)
		}
	}
	seen, matched, answered := p.Stats()
	if seen != 60 {
		t.Errorf("seen = %d, want 60", seen)
	}
	if matched != 30 {
		t.Errorf("matched = %d, want 30 (Thor only)", matched)
	}
	// Three full batches of 10 should have been processed.
	if answered != 30 {
		t.Errorf("answered = %d, want 30", answered)
	}
	if p.Spent <= 0 {
		t.Error("no spend recorded")
	}
}

func TestStreamFlushHandlesRemainder(t *testing.T) {
	cfg := testConfig(t, 3, nil)
	cfg.BatchSize = 12
	p, err := NewProcessor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tweets := generateTweets(t, 3)
	for _, it := range items(tweets) {
		if err := p.Offer(it); err != nil {
			t.Fatal(err)
		}
	}
	// 30 matched items with batch 12: 24 processed, 6 buffered.
	if _, _, answered := p.Stats(); answered != 24 {
		t.Fatalf("answered before flush = %d, want 24", answered)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, answered := p.Stats(); answered != 30 {
		t.Errorf("answered after flush = %d, want 30", answered)
	}
	if !p.Done() || p.Progress() != 1 {
		t.Error("flush should complete the query")
	}
	if err := p.Offer(exec.Item{}); err != ErrDone {
		t.Errorf("Offer after flush err = %v, want ErrDone", err)
	}
	if err := p.Flush(); err != ErrDone {
		t.Errorf("second Flush err = %v, want ErrDone", err)
	}
}

func TestStreamPublishesToSink(t *testing.T) {
	sink := httpapi.NewServer()
	cfg := testConfig(t, 4, sink)
	cfg.BatchSize = 10
	cfg.ExpectedItems = 30
	p, err := NewProcessor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tweets := generateTweets(t, 4)
	its := items(tweets)
	// Tweets are generated movie-by-movie; interleave so the first half
	// of the stream carries only half the Thor tweets.
	var firstHalf, secondHalf []exec.Item
	for i, it := range its {
		if i%2 == 0 {
			firstHalf = append(firstHalf, it)
		} else {
			secondHalf = append(secondHalf, it)
		}
	}
	for _, it := range firstHalf {
		if err := p.Offer(it); err != nil {
			t.Fatal(err)
		}
	}
	st, ok := sink.Get("thor")
	if !ok {
		t.Fatal("sink never updated")
	}
	if st.Done {
		t.Error("query marked done mid-stream")
	}
	if st.Progress <= 0 || st.Progress >= 1 {
		t.Errorf("mid-stream progress = %v", st.Progress)
	}
	for _, it := range secondHalf {
		if err := p.Offer(it); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	st, _ = sink.Get("thor")
	if !st.Done || st.Progress != 1 {
		t.Errorf("final state = %+v", st)
	}
	total := 0.0
	for _, label := range textgen.Labels {
		total += st.Percentages[label]
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("percentages sum to %v", total)
	}
}

func TestStreamSummaryAccuracy(t *testing.T) {
	cfg := testConfig(t, 5, nil)
	var outcomes []exec.Outcome
	cfg.OnOutcome = func(oc exec.Outcome) { outcomes = append(outcomes, oc) }
	p, err := NewProcessor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tweets := generateTweets(t, 5)
	truths := make(map[string]string)
	for _, tw := range tweets {
		truths[tw.ID] = tw.Truth
	}
	for _, it := range items(tweets) {
		if err := p.Offer(it); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for _, oc := range outcomes {
		total++
		if oc.Accepted == truths[oc.ItemID] {
			correct++
		}
	}
	if total == 0 {
		t.Fatal("no outcomes")
	}
	if acc := float64(correct) / float64(total); acc < 0.7 {
		t.Errorf("streaming accuracy = %v, want >= 0.7", acc)
	}
}

// TestStreamEvictsTextsAfterBatch is the regression test for the
// unbounded texts map: item texts must be held only while their items
// wait in the current batch, and evicted the moment their outcomes fold
// into the summary. Before the fix the map grew with every matched item
// ever seen, leaking memory for the lifetime of a standing query.
func TestStreamEvictsTextsAfterBatch(t *testing.T) {
	cfg := testConfig(t, 7, nil)
	cfg.BatchSize = 4
	p, err := NewProcessor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tweets := generateTweets(t, 7)
	for i, it := range items(tweets) {
		if err := p.Offer(it); err != nil {
			t.Fatal(err)
		}
		if got := p.bufferedTexts(); got != p.buffer.Len() {
			t.Fatalf("after item %d: %d retained texts, want %d (only the buffered batch)",
				i, got, p.buffer.Len())
		}
		if got := p.bufferedTexts(); got >= cfg.BatchSize {
			t.Fatalf("after item %d: %d retained texts breach the batch bound %d",
				i, got, cfg.BatchSize)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := p.bufferedTexts(); got != 0 {
		t.Fatalf("after flush: %d retained texts, want 0", got)
	}
	// The summary must survive eviction: reasons still render from the
	// folded word tallies.
	sum := p.Summary()
	if sum.Items == 0 {
		t.Fatal("no items summarised")
	}
	reasons := 0
	for _, words := range sum.Reasons {
		reasons += len(words)
	}
	if reasons == 0 {
		t.Error("eviction lost the reason tallies")
	}
}

func TestProgressWithoutExpectation(t *testing.T) {
	cfg := testConfig(t, 6, nil)
	p, err := NewProcessor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Progress() != 0 {
		t.Error("progress without expectation should be 0 until flush")
	}
}
