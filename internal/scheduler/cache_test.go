package scheduler

import (
	"testing"
	"time"
)

func TestAnswerCachePutGet(t *testing.T) {
	c := NewAnswerCache(0, nil)
	if _, ok := c.Get("missing"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("k", "pos", 0.97, 11)
	e, ok := c.Get("k")
	if !ok {
		t.Fatal("stored entry not found")
	}
	if e.Answer != "pos" || e.Confidence != 0.97 || e.Votes != 11 {
		t.Errorf("entry = %+v", e)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	// Zero TTL never expires.
	if _, ok := c.Get("k"); !ok {
		t.Error("zero-TTL entry expired")
	}
}

func TestAnswerCacheTTL(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c := NewAnswerCache(time.Hour, clock)
	c.Put("k", "pos", 0.9, 5)
	now = now.Add(59 * time.Minute)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("entry expired before its TTL")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry survived past its TTL")
	}
	if c.Len() != 0 {
		t.Errorf("expired entry not dropped on access: Len = %d", c.Len())
	}
	// Refreshing restarts the clock.
	c.Put("k", "neg", 0.8, 3)
	now = now.Add(30 * time.Minute)
	if e, ok := c.Get("k"); !ok || e.Answer != "neg" {
		t.Errorf("refreshed entry = %+v, ok=%v", e, ok)
	}
}

func TestAnswerCacheSweep(t *testing.T) {
	now := time.Unix(0, 0)
	c := NewAnswerCache(time.Minute, func() time.Time { return now })
	c.Put("a", "x", 1, 1)
	c.Put("b", "y", 1, 1)
	now = now.Add(2 * time.Minute)
	c.Put("c", "z", 1, 1)
	if removed := c.Sweep(); removed != 2 {
		t.Errorf("Sweep removed %d, want 2", removed)
	}
	if c.Len() != 1 {
		t.Errorf("Len after sweep = %d, want 1", c.Len())
	}
}
