// Package exec implements the CDAS program executor (Section 2.1): the
// computer-oriented half of a processing plan. For the TSA application it
// filters the incoming stream against the query's keywords and window,
// buffers candidates into HIT-sized batches for the crowdsourcing engine,
// and summarises accepted answers into the percentage-plus-reasons
// presentation of Section 4.3 (Table 1 / Figure 4).
package exec

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"cdas/internal/jobs"
	"cdas/internal/textutil"
)

// Item is one stream element (e.g. a tweet) examined by the executor.
type Item struct {
	ID   string
	Text string
	At   time.Time
}

// Filter applies the query's keyword and window predicates to a stream
// slice, preserving order.
func Filter(items []Item, q jobs.Query) []Item {
	out := make([]Item, 0, len(items))
	for _, it := range items {
		if q.Matches(it.Text, it.At) {
			out = append(out, it)
		}
	}
	return out
}

// Buffer batches items for the engine: when Add fills the buffer it
// returns the completed batch. The zero value is unusable; use NewBuffer.
type Buffer struct {
	size  int
	items []Item
}

// NewBuffer creates a buffer emitting batches of size items. It panics if
// size <= 0.
func NewBuffer(size int) *Buffer {
	if size <= 0 {
		panic(fmt.Sprintf("exec: buffer size must be positive, got %d", size))
	}
	return &Buffer{size: size, items: make([]Item, 0, size)}
}

// Add appends an item; when the buffer reaches its size the full batch is
// returned and the buffer reset.
func (b *Buffer) Add(it Item) ([]Item, bool) {
	b.items = append(b.items, it)
	if len(b.items) >= b.size {
		return b.flushLocked(), true
	}
	return nil, false
}

// Flush returns any buffered items (possibly none) and resets the buffer.
func (b *Buffer) Flush() []Item { return b.flushLocked() }

// Len reports the number of currently buffered items.
func (b *Buffer) Len() int { return len(b.items) }

func (b *Buffer) flushLocked() []Item {
	out := b.items
	b.items = make([]Item, 0, b.size)
	return out
}

// Outcome is the engine's verdict for one item, as consumed by the
// presentation layer. Exactly one of the two forms applies:
//   - Accepted != "": the answer was accepted (termination condition met);
//   - Accepted == "": no answer accepted yet; Confidences carries ρ(r).
type Outcome struct {
	ItemID      string
	Accepted    string
	Confidences map[string]float64
	// Confidence is the aggregator's confidence in the accepted answer
	// (0 when nothing is accepted yet).
	Confidence float64
	// Quality is the share of the item's voters that agreed with the
	// accepted answer.
	Quality float64
}

// Percentages computes the Section 4.3 result presentation: for each
// domain answer r, the mean over items of h_ti(r), where h is 1 if r was
// accepted for the item, 0 if another answer was accepted, and ρ_ti(r)
// when nothing is accepted yet. An empty outcome list yields all zeros.
func Percentages(domain []string, outcomes []Outcome) map[string]float64 {
	out := make(map[string]float64, len(domain))
	for _, r := range domain {
		out[r] = 0
	}
	if len(outcomes) == 0 {
		return out
	}
	for _, oc := range outcomes {
		if oc.Accepted != "" {
			if _, ok := out[oc.Accepted]; ok {
				out[oc.Accepted] += 1
			}
			continue
		}
		for r, p := range oc.Confidences {
			if _, ok := out[r]; ok {
				out[r] += p
			}
		}
	}
	n := float64(len(outcomes))
	for r := range out {
		out[r] /= n
	}
	return out
}

// Reasons extracts, per answer, the most frequent content words of the
// items that got that answer — the "reasons" column of Table 1 ("these
// keywords are the most frequent keywords submitted by the workers who
// have provided the answer"; our simulated workers submit the item's
// sentiment-bearing content words). topK bounds the list per answer.
// exclude lists words to skip — typically the query keywords, which
// appear in every matched item and would drown real reasons.
func Reasons(outcomes []Outcome, texts map[string]string, topK int, exclude ...string) map[string][]string {
	if topK <= 0 {
		topK = 3
	}
	excluded := make(map[string]struct{})
	for _, e := range exclude {
		for _, tok := range textutil.Tokenize(e) {
			excluded[tok] = struct{}{}
		}
	}
	freq := make(map[string]map[string]int)
	for _, oc := range outcomes {
		if oc.Accepted == "" {
			continue
		}
		text, ok := texts[oc.ItemID]
		if !ok {
			continue
		}
		m := freq[oc.Accepted]
		if m == nil {
			m = make(map[string]int)
			freq[oc.Accepted] = m
		}
		for _, tok := range textutil.ContentTokens(text) {
			if _, skip := excluded[tok]; skip {
				continue
			}
			m[tok]++
		}
	}
	return topWords(freq, topK)
}

// topWords renders a per-answer word-frequency tally into the topK most
// frequent words per answer (count descending, word ascending on ties) —
// the shared presentation step of Reasons and Fold.
func topWords(freq map[string]map[string]int, topK int) map[string][]string {
	out := make(map[string][]string, len(freq))
	for answer, counts := range freq {
		type wc struct {
			word  string
			count int
		}
		ws := make([]wc, 0, len(counts))
		for w, c := range counts {
			ws = append(ws, wc{w, c})
		}
		sort.Slice(ws, func(i, j int) bool {
			if ws[i].count != ws[j].count {
				return ws[i].count > ws[j].count
			}
			return ws[i].word < ws[j].word
		})
		if len(ws) > topK {
			ws = ws[:topK]
		}
		words := make([]string, len(ws))
		for i, w := range ws {
			words[i] = w.word
		}
		out[answer] = words
	}
	return out
}

// Accumulator folds outcomes into a running Summary as HITs finish — the
// streaming counterpart of Summarise for consumers of the engine's
// concurrent pipeline. It is safe for concurrent use, so several batch
// goroutines (or a collector draining them) can feed one accumulator.
type Accumulator struct {
	mu       sync.Mutex
	domain   []string
	exclude  []string
	outcomes []Outcome
	texts    map[string]string
}

// NewAccumulator creates an accumulator over the query's answer domain.
// exclude lists words (e.g. the query keywords) kept out of reasons.
func NewAccumulator(domain []string, exclude ...string) *Accumulator {
	return &Accumulator{
		domain:  append([]string(nil), domain...),
		exclude: append([]string(nil), exclude...),
		texts:   make(map[string]string),
	}
}

// AddText registers an item's original text for reason extraction.
func (a *Accumulator) AddText(itemID, text string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.texts[itemID] = text
}

// Observe folds finished outcomes into the running summary.
func (a *Accumulator) Observe(outcomes ...Outcome) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.outcomes = append(a.outcomes, outcomes...)
}

// Items reports how many outcomes have been observed.
func (a *Accumulator) Items() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.outcomes)
}

// Progress reports the completed fraction against an expected total:
// observed outcomes over total, clamped to [0, 1]. A non-positive
// total yields 0 — the caller doesn't know the workload size yet.
func (a *Accumulator) Progress(total int) float64 {
	if total <= 0 {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	p := float64(len(a.outcomes)) / float64(total)
	if p > 1 {
		return 1
	}
	return p
}

// Outcomes returns a copy of the observed outcomes.
func (a *Accumulator) Outcomes() []Outcome {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Outcome(nil), a.outcomes...)
}

// Summary renders the current percentages-plus-reasons presentation.
func (a *Accumulator) Summary() Summary {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Summarise(a.domain, a.outcomes, a.texts, a.exclude...)
}

// Summary is a rendered analytics result: the full presentation of
// Table 1 for one query.
type Summary struct {
	Domain      []string
	Percentages map[string]float64
	Reasons     map[string][]string
	Items       int
	// Confidence is the mean aggregator confidence over items with an
	// accepted answer; zero when none carried one.
	Confidence float64
	// Quality is the mean voter agreement with the accepted answers
	// over the same items; zero when none carried one.
	Quality float64
}

// Fold is a constant-memory Summary accumulator: outcomes are folded in
// one at a time and their texts can be discarded immediately afterwards,
// so a long-running stream holds O(domain x vocabulary) state instead of
// every outcome and every matched item's text. Its Summary is
// bit-identical to Summarise over the same outcomes in the same order
// (per-answer float sums accumulate in observation order, exactly as
// Summarise's loops do). Not safe for concurrent use.
type Fold struct {
	domain   []string
	inDomain map[string]struct{}
	excluded map[string]struct{}
	percSums map[string]float64
	freq     map[string]map[string]int
	items    int
	accepted int
	confSum  float64
	qualSum  float64
}

// NewFold creates a fold over the query's answer domain. exclude lists
// words (e.g. the query keywords) kept out of the reason lists.
func NewFold(domain []string, exclude ...string) *Fold {
	f := &Fold{
		domain:   append([]string(nil), domain...),
		inDomain: make(map[string]struct{}, len(domain)),
		excluded: make(map[string]struct{}),
		percSums: make(map[string]float64, len(domain)),
		freq:     make(map[string]map[string]int),
	}
	for _, r := range domain {
		f.inDomain[r] = struct{}{}
		f.percSums[r] = 0
	}
	for _, e := range exclude {
		for _, tok := range textutil.Tokenize(e) {
			f.excluded[tok] = struct{}{}
		}
	}
	return f
}

// Observe folds one outcome in. text is the item's original text for
// reason extraction; an empty text is treated like Summarise's "text
// missing" case (the outcome still counts, but contributes no reasons).
// The caller may drop the text after Observe returns — the fold retains
// only its content-word tally.
func (f *Fold) Observe(oc Outcome, text string) {
	f.items++
	if oc.Accepted == "" {
		for r, p := range oc.Confidences {
			if _, ok := f.inDomain[r]; ok {
				f.percSums[r] += p
			}
		}
		return
	}
	if _, ok := f.inDomain[oc.Accepted]; ok {
		f.percSums[oc.Accepted]++
	}
	f.accepted++
	f.confSum += oc.Confidence
	f.qualSum += oc.Quality
	if text == "" {
		return
	}
	m := f.freq[oc.Accepted]
	if m == nil {
		m = make(map[string]int)
		f.freq[oc.Accepted] = m
	}
	for _, tok := range textutil.ContentTokens(text) {
		if _, skip := f.excluded[tok]; skip {
			continue
		}
		m[tok]++
	}
}

// Items reports how many outcomes have been folded in.
func (f *Fold) Items() int { return f.items }

// Summary renders the current percentages-plus-reasons presentation.
func (f *Fold) Summary() Summary {
	perc := make(map[string]float64, len(f.domain))
	for _, r := range f.domain {
		perc[r] = 0
	}
	if f.items > 0 {
		n := float64(f.items)
		for r := range perc {
			perc[r] = f.percSums[r] / n
		}
	}
	s := Summary{
		Domain:      append([]string(nil), f.domain...),
		Percentages: perc,
		Reasons:     topWords(f.freq, 3),
		Items:       f.items,
	}
	if f.accepted > 0 {
		s.Confidence = f.confSum / float64(f.accepted)
		s.Quality = f.qualSum / float64(f.accepted)
	}
	return s
}

// Summarise builds a Summary from outcomes. exclude lists words (e.g. the
// query keywords) to keep out of the reason lists.
func Summarise(domain []string, outcomes []Outcome, texts map[string]string, exclude ...string) Summary {
	confSum, qualSum, accepted := 0.0, 0.0, 0
	for _, oc := range outcomes {
		if oc.Accepted == "" {
			continue
		}
		accepted++
		confSum += oc.Confidence
		qualSum += oc.Quality
	}
	s := Summary{
		Domain:      append([]string(nil), domain...),
		Percentages: Percentages(domain, outcomes),
		Reasons:     Reasons(outcomes, texts, 3, exclude...),
		Items:       len(outcomes),
	}
	if accepted > 0 {
		s.Confidence = confSum / float64(accepted)
		s.Quality = qualSum / float64(accepted)
	}
	return s
}
