package httpapi

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"cdas/api"
)

// These tests are the openapi lint the CI workflow runs: the spec at
// api/openapi.yaml must document every served v1 route and declare
// every error code the surface can emit. The parse is deliberately
// line-based — the repo takes no YAML dependency — and leans on the
// file's stable two-space indentation.

func readSpec(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "api", "openapi.yaml"))
	if err != nil {
		t.Fatalf("reading spec: %v", err)
	}
	return string(b)
}

// specOperations extracts {path -> set of methods} from the spec's
// paths section. Path keys sit at two spaces ("  /v1/jobs:"), methods
// at four ("    get:"); the section ends at the top-level components
// key.
func specOperations(t *testing.T, spec string) map[string]map[string]bool {
	t.Helper()
	pathKey := regexp.MustCompile(`^  (/\S+):\s*$`)
	methodKey := regexp.MustCompile(`^    (get|put|post|patch|delete):\s*$`)
	ops := make(map[string]map[string]bool)
	inPaths := false
	current := ""
	for _, line := range strings.Split(spec, "\n") {
		switch {
		case line == "paths:":
			inPaths = true
		case inPaths && !strings.HasPrefix(line, " ") && strings.TrimSpace(line) != "":
			inPaths = false
		case inPaths:
			if m := pathKey.FindStringSubmatch(line); m != nil {
				current = m[1]
				if ops[current] == nil {
					ops[current] = make(map[string]bool)
				}
			} else if m := methodKey.FindStringSubmatch(line); m != nil && current != "" {
				ops[current][strings.ToUpper(m[1])] = true
			}
		}
	}
	if len(ops) == 0 {
		t.Fatal("no paths parsed from openapi.yaml — has the layout changed?")
	}
	return ops
}

// TestOpenAPICoversServedRoutes fails the build when the served v1
// surface and the spec drift apart, in either direction: a route
// registered in v1Routes but absent from openapi.yaml, or a documented
// operation no handler backs.
func TestOpenAPICoversServedRoutes(t *testing.T) {
	ops := specOperations(t, readSpec(t))
	served := make(map[string]map[string]bool)
	for _, r := range NewServer().v1Routes() {
		doc := r.doc
		if doc == "" {
			doc = r.path
		}
		if served[doc] == nil {
			served[doc] = make(map[string]bool)
		}
		served[doc][r.method] = true
		if !ops[doc][r.method] {
			t.Errorf("served route %s %s is not documented in openapi.yaml", r.method, doc)
		}
	}
	for path, methods := range ops {
		if !strings.HasPrefix(path, "/v1/") {
			continue
		}
		for method := range methods {
			if !served[path][method] {
				t.Errorf("openapi.yaml documents %s %s but no v1 route serves it", method, path)
			}
		}
	}
}

// specErrorCodes extracts the Error schema's code enum.
func specErrorCodes(t *testing.T, spec string) []string {
	t.Helper()
	// The enum line lives under schemas > Error > code. "    Error:"
	// also names the shared response component, which comes first —
	// anchor on the last occurrence, the schema.
	idx := strings.LastIndex(spec, "\n    Error:\n")
	if idx < 0 {
		t.Fatal("Error schema not found in openapi.yaml")
	}
	enumLine := regexp.MustCompile(`(?m)^\s+enum: \[([^\]]+)\]`).FindStringSubmatch(spec[idx:])
	if enumLine == nil {
		t.Fatal("Error.code enum not found in openapi.yaml")
	}
	var codes []string
	for _, c := range strings.Split(enumLine[1], ",") {
		codes = append(codes, strings.TrimSpace(c))
	}
	return codes
}

// TestOpenAPIErrorCodeEnum pins the spec's Error.code enum to
// api.Codes(), the single source of truth, as equal sets.
func TestOpenAPIErrorCodeEnum(t *testing.T) {
	inSpec := make(map[string]bool)
	for _, c := range specErrorCodes(t, readSpec(t)) {
		inSpec[c] = true
	}
	declared := make(map[string]bool)
	for _, c := range api.Codes() {
		declared[c] = true
		if !inSpec[c] {
			t.Errorf("api.Codes() entry %q missing from the openapi Error.code enum", c)
		}
	}
	for c := range inSpec {
		if !declared[c] {
			t.Errorf("openapi Error.code enum entry %q is not in api.Codes()", c)
		}
	}
}

// TestEmittedErrorCodesDeclared scans this package's sources for api
// error-constructor calls and checks each one's code is in api.Codes().
// Raw api.Errorf calls (which could mint an undeclared code) are
// forbidden outside package api; errors must go through the typed
// constructors.
func TestEmittedErrorCodesDeclared(t *testing.T) {
	ctorCode := map[string]string{
		"InvalidArgument":   api.CodeInvalidArgument,
		"UnknownAggregator": api.CodeUnknownAggregator,
		"NotFound":          api.CodeNotFound,
		"Conflict":          api.CodeConflict,
		"Unavailable":       api.CodeUnavailable,
		"Internal":          api.CodeInternal,
	}
	declared := make(map[string]bool)
	for _, c := range api.Codes() {
		declared[c] = true
	}
	ctor := regexp.MustCompile(`api\.([A-Z]\w*)\(`)
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	emitted := 0
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(src), "api.Errorf(") {
			t.Errorf("%s calls api.Errorf directly; use a typed constructor so the code stays in api.Codes()", f)
		}
		for _, m := range ctor.FindAllStringSubmatch(string(src), -1) {
			code, ok := ctorCode[m[1]]
			if !ok {
				continue // not an error constructor (api.NewClient etc.)
			}
			emitted++
			if !declared[code] {
				t.Errorf("%s emits error code %q (api.%s) which api.Codes() does not declare", f, code, m[1])
			}
		}
	}
	if emitted == 0 {
		t.Fatal("no error-constructor calls found — has the scan broken?")
	}
}
