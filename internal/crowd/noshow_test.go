package crowd

import (
	"math"
	"testing"
)

func TestNoShowValidation(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.NoShowFraction = -0.1
	if _, err := NewPlatform(cfg); err == nil {
		t.Error("negative no-show fraction accepted")
	}
	cfg.NoShowFraction = 1
	if _, err := NewPlatform(cfg); err == nil {
		t.Error("no-show fraction 1 accepted")
	}
}

func TestNoShowReducesDeliveries(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.NoShowFraction = 0.3
	p, err := NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const hits, n = 40, 20
	delivered := 0
	for i := 0; i < hits; i++ {
		run, err := p.Publish(HIT{Questions: []Question{binaryQuestion("q")}}, n)
		if err != nil {
			t.Fatal(err)
		}
		delivered += len(run.Drain())
	}
	rate := float64(delivered) / float64(hits*n)
	if math.Abs(rate-0.7) > 0.05 {
		t.Errorf("delivery rate %v, want ~0.7 with 30%% no-shows", rate)
	}
}

func TestNoShowsAreNotCharged(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.NoShowFraction = 0.5
	p, err := NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := p.Publish(HIT{Questions: []Question{binaryQuestion("q")}}, 20)
	if err != nil {
		t.Fatal(err)
	}
	got := len(run.Drain())
	fee := cfg.Economics.PerAssignment()
	if want := float64(got) * fee; math.Abs(run.Charged()-want) > 1e-12 {
		t.Errorf("charged %v for %d deliveries, want %v", run.Charged(), got, want)
	}
}

func TestZeroNoShowDeliversAll(t *testing.T) {
	p, err := NewPlatform(DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	run, err := p.Publish(HIT{Questions: []Question{binaryQuestion("q")}}, 15)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(run.Drain()); got != 15 {
		t.Errorf("delivered %d, want all 15", got)
	}
}
