// Bridging helper between the crowdsourcing engine's verdicts and the
// executor's presentation layer.
package exec

import "cdas/internal/engine"

// OutcomesFromResults converts engine question verdicts into the
// outcomes the summary layer consumes: one accepted answer per item,
// with the aggregator's confidence and the voters' agreement attached.
func OutcomesFromResults(rs []engine.QuestionResult) []Outcome {
	out := make([]Outcome, len(rs))
	for i, qr := range rs {
		out[i] = Outcome{
			ItemID:     qr.Question.ID,
			Accepted:   qr.Answer,
			Confidence: qr.Confidence,
			Quality:    qr.Quality,
		}
	}
	return out
}
